module github.com/gridmeta/hybridcat

go 1.22

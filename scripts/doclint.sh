#!/bin/sh
# doclint.sh: fail if any exported top-level declaration in the given
# files lacks a doc comment. Stdlib-only repo, so this is a grep-level
# check rather than a full linter: a line declaring an exported func,
# method, type, var, or const must be directly preceded by a // comment.
#
#   sh scripts/doclint.sh internal/cache/*.go hybridcat.go
#
# Test files are skipped; make docs passes the swept packages.
status=0
for f in "$@"; do
	case "$f" in
	*_test.go) continue ;;
	esac
	awk -v file="$f" '
		/^(func|type|var|const) [A-Z]/ || /^func \([A-Za-z0-9_]+ \*?[A-Z][^)]*\) [A-Z]/ {
			if (prev !~ /^\/\//) {
				printf "%s:%d: exported declaration without doc comment: %s\n", file, NR, $0
				bad = 1
			}
		}
		{ prev = $0 }
		END { exit bad }
	' "$f" || status=1
done
exit $status

package hybridcat_test

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"github.com/gridmeta/hybridcat"
)

// TestPublicAPIQuickstart exercises the README quickstart through the
// public façade only.
func TestPublicAPIQuickstart(t *testing.T) {
	cat, err := hybridcat.OpenLEAD(hybridcat.Options{})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := cat.RegisterAttr("grid", "ARPS", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"dx", "dz"} {
		if _, err := cat.RegisterElem(p, "ARPS", grid.ID, hybridcat.DTFloat, ""); err != nil {
			t.Fatal(err)
		}
	}
	stretch, err := cat.RegisterAttr("grid-stretching", "ARPS", grid.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"dzmin", "reference-height"} {
		if _, err := cat.RegisterElem(p, "ARPS", stretch.ID, hybridcat.DTFloat, ""); err != nil {
			t.Fatal(err)
		}
	}
	id, err := cat.IngestXML("alice", hybridcat.Figure3Document)
	if err != nil {
		t.Fatal(err)
	}
	q := &hybridcat.Query{}
	g := q.Attr("grid", "ARPS")
	g.AddElem("dx", "ARPS", hybridcat.OpEq, hybridcat.Int(1000))
	sub := &hybridcat.AttrCriteria{Name: "grid-stretching", Source: "ARPS"}
	sub.AddElem("dzmin", "ARPS", hybridcat.OpEq, hybridcat.Int(100))
	g.AddSub(sub)
	resp, err := cat.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 1 || resp[0].ObjectID != id {
		t.Fatalf("resp = %+v", resp)
	}
	doc, err := hybridcat.ParseXML(resp[0].XML)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Tag != "LEADresource" {
		t.Errorf("root = %s", doc.Tag)
	}
}

func TestPublicAPIValueConstructorsAndOps(t *testing.T) {
	if hybridcat.Int(5).I != 5 || hybridcat.Float(2.5).F != 2.5 ||
		hybridcat.Str("x").S != "x" || !hybridcat.Bool(true).AsBool() {
		t.Error("value constructors misbehaved")
	}
	ops := []hybridcat.CmpOp{hybridcat.OpEq, hybridcat.OpNe, hybridcat.OpLt,
		hybridcat.OpLe, hybridcat.OpGt, hybridcat.OpGe}
	if len(ops) != 6 {
		t.Error("operators missing")
	}
	if !hybridcat.OpLe.Holds(hybridcat.Int(1), hybridcat.Int(2)) {
		t.Error("OpLe wrong")
	}
}

func TestPublicAPISchemaDSLAndErrors(t *testing.T) {
	s, err := hybridcat.ParseSchemaDSL("mini", "root\n  a *\n  dyn !+")
	if err != nil {
		t.Fatal(err)
	}
	if s.AttributeByTag("a") == nil || s.AttributeByTag("dyn") == nil {
		t.Error("DSL attributes missing")
	}
	if _, err := hybridcat.ParseSchemaDSL("bad", "root\n  leaf"); err == nil {
		t.Error("rule-violating DSL should fail")
	}
	if hybridcat.LEADSchema().Root.Tag != "LEADresource" {
		t.Error("LEADSchema wrong")
	}
	// Unknown definition surfaces through the façade's error value.
	cat, _ := hybridcat.OpenLEAD(hybridcat.Options{})
	q := &hybridcat.Query{}
	q.Attr("never-registered", "X")
	if _, err := cat.Evaluate(q); !errors.Is(err, hybridcat.ErrUnknownDefinition) {
		t.Errorf("err = %v", err)
	}
}

func TestPublicAPIXPath(t *testing.T) {
	doc, err := hybridcat.ParseXML(hybridcat.Figure3Document)
	if err != nil {
		t.Fatal(err)
	}
	e, err := hybridcat.XPath("//attr[attrlabl='dx']")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Matches(doc) {
		t.Error("XPath should match Figure 3")
	}
	if _, err := hybridcat.XPath("not a path"); err == nil {
		t.Error("bad xpath should fail")
	}
}

func TestPublicAPIDynamicSpecAndDocument(t *testing.T) {
	if hybridcat.FGDCDynamicSpec.NameTag != "enttypl" {
		t.Error("FGDCDynamicSpec wrong")
	}
	doc, _ := hybridcat.ParseXML("<a><b>x</b></a>")
	if doc.ChildText("b") != "x" || !strings.Contains(doc.String(), "<b>x</b>") {
		t.Error("Document alias misbehaved")
	}
}

func TestPublicAPIXSDAndSnapshotWrappers(t *testing.T) {
	data, err := os.ReadFile("testdata/lead.xsd")
	if err != nil {
		t.Fatal(err)
	}
	s, err := hybridcat.ParseXSD("LEAD", string(data), "LEADresource")
	if err != nil {
		t.Fatal(err)
	}
	cat, err := hybridcat.Open(s, hybridcat.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defs, err := os.ReadFile("testdata/figure3-defs.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.LoadDefinitionsJSON(defs); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.IngestXML("u", hybridcat.Figure3Document); err != nil {
		t.Fatal(err)
	}
	qdata, err := os.ReadFile("testdata/worked-query.json")
	if err != nil {
		t.Fatal(err)
	}
	q, err := hybridcat.ParseQueryJSON(qdata)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := cat.Evaluate(q)
	if err != nil || len(ids) != 1 {
		t.Fatalf("testdata worked query = %v, %v", ids, err)
	}
	// Snapshot wrappers.
	var buf bytes.Buffer
	if err := cat.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := hybridcat.LoadCatalog(s, hybridcat.Options{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ObjectCount() != 1 {
		t.Errorf("loaded objects = %d", loaded.ObjectCount())
	}
	// Marshal wrapper round trips.
	out, err := hybridcat.MarshalQueryJSON(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hybridcat.ParseQueryJSON(out); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPICollectionsAndOntology(t *testing.T) {
	cat, err := hybridcat.OpenLEAD(hybridcat.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, err := cat.IngestXML("alice", `<LEADresource><resourceID>r</resourceID><data><idinfo><keywords>
	  <theme><themekt>CF</themekt><themekey>air_temperature</themekey></theme>
	</keywords></idinfo></data></LEADresource>`)
	if err != nil {
		t.Fatal(err)
	}
	coll, err := cat.CreateCollection("c", "alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddToCollection(coll, id); err != nil {
		t.Fatal(err)
	}
	ont, err := hybridcat.ParseOntology(hybridcat.CFKeywords)
	if err != nil {
		t.Fatal(err)
	}
	q := &hybridcat.Query{}
	q.Attr("theme", "").AddElem("themekey", "", hybridcat.OpEq, hybridcat.Str("temperature"))
	ids, err := cat.EvaluateInContext(coll, hybridcat.ExpandQuery(ont, q))
	if err != nil || len(ids) != 1 {
		t.Fatalf("context+ontology = %v, %v", ids, err)
	}
	// NewOntology builder path.
	o2 := hybridcat.NewOntology()
	if err := o2.Add("root-term", ""); err != nil {
		t.Fatal(err)
	}
	if !o2.Has("root-term") {
		t.Error("NewOntology Add failed")
	}
	if infos := cat.Collections(); len(infos) != 1 || infos[0].Name != "c" {
		t.Errorf("collections = %+v", infos)
	}
}

// Geospatial search example: purely structural metadata attributes of
// the LEAD/FGDC profile — bounding boxes as a structural sub-attribute
// (spdom/bounding) and keyword themes — queried with typed range
// predicates, the clearinghouse-style discovery workload of the paper's
// introduction.
package main

import (
	"fmt"
	"log"

	"github.com/gridmeta/hybridcat"
)

// region describes one synthetic dataset footprint.
type region struct {
	name                     string
	west, east, south, north float64
	keyword                  string
}

func main() {
	cat, err := hybridcat.OpenLEAD(hybridcat.Options{})
	if err != nil {
		log.Fatal(err)
	}

	regions := []region{
		{"okc-metro-radar", -98.2, -96.9, 34.9, 35.9, "radar_reflectivity"},
		{"central-plains-temps", -102.0, -94.0, 33.0, 40.0, "air_temperature"},
		{"gulf-moisture", -97.5, -88.0, 25.0, 31.0, "relative_humidity"},
		{"front-range-winds", -106.5, -103.0, 38.5, 41.0, "eastward_wind"},
		{"ks-mesonet", -102.0, -94.6, 37.0, 40.0, "air_temperature"},
	}
	for _, r := range regions {
		doc := fmt.Sprintf(`<LEADresource>
  <resourceID>%s</resourceID>
  <data>
    <idinfo>
      <citation><origin>NWS</origin><pubdate>2006-05-01</pubdate><title>%s</title></citation>
      <keywords>
        <theme><themekt>CF NetCDF</themekt><themekey>%s</themekey></theme>
      </keywords>
    </idinfo>
    <geospatial>
      <spdom>
        <bounding>
          <westbc>%.1f</westbc><eastbc>%.1f</eastbc>
          <northbc>%.1f</northbc><southbc>%.1f</southbc>
        </bounding>
      </spdom>
    </geospatial>
  </data>
</LEADresource>`, r.name, r.name, r.keyword, r.west, r.east, r.north, r.south)
		if _, err := cat.IngestXML("geo", doc); err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
	}
	fmt.Printf("cataloged %d datasets\n\n", len(cat.Objects()))

	show := func(label string, q *hybridcat.Query) {
		ids, err := cat.Evaluate(q)
		if err != nil {
			log.Fatal(err)
		}
		var names []string
		for _, id := range ids {
			doc, err := cat.FetchDocument(id)
			if err != nil {
				log.Fatal(err)
			}
			names = append(names, doc.ChildText("resourceID"))
		}
		fmt.Printf("%-52s -> %v\n", label, names)
	}

	// Datasets whose box overlaps Oklahoma-ish coordinates: west edge
	// west of -96, east edge east of -98, spanning latitude 35.
	q := &hybridcat.Query{}
	sp := q.Attr("spdom", "")
	box := &hybridcat.AttrCriteria{Name: "bounding"}
	box.AddElem("westbc", "", hybridcat.OpLe, hybridcat.Float(-96)).
		AddElem("eastbc", "", hybridcat.OpGe, hybridcat.Float(-98)).
		AddElem("southbc", "", hybridcat.OpLe, hybridcat.Float(35)).
		AddElem("northbc", "", hybridcat.OpGe, hybridcat.Float(35))
	sp.AddSub(box)
	show("boxes covering ~(35N, 97W)", q)

	// Keyword search.
	q = &hybridcat.Query{}
	q.Attr("theme", "").AddElem("themekey", "", hybridcat.OpEq, hybridcat.Str("air_temperature"))
	show("datasets tagged air_temperature", q)

	// Combined: temperature datasets reaching north of 39N.
	q = &hybridcat.Query{}
	q.Attr("theme", "").AddElem("themekey", "", hybridcat.OpEq, hybridcat.Str("air_temperature"))
	sp = q.Attr("spdom", "")
	box = &hybridcat.AttrCriteria{Name: "bounding"}
	box.AddElem("northbc", "", hybridcat.OpGe, hybridcat.Float(39))
	sp.AddSub(box)
	show("air_temperature datasets reaching 39N", q)
}

// Quickstart: the paper's worked example end to end — open a catalog
// over the LEAD schema, register the grid/ARPS dynamic definitions,
// ingest the Figure 3 document, run the §4 query, and print the
// reconstructed response.
package main

import (
	"fmt"
	"log"

	"github.com/gridmeta/hybridcat"
)

func main() {
	cat, err := hybridcat.OpenLEAD(hybridcat.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Dynamic metadata attributes are identified by (name, source) and
	// validated on insert: here the ARPS grid namelist group with two
	// float parameters and a nested grid-stretching group.
	grid, err := cat.RegisterAttr("grid", "ARPS", 0, "")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []string{"dx", "dz"} {
		if _, err := cat.RegisterElem(p, "ARPS", grid.ID, hybridcat.DTFloat, ""); err != nil {
			log.Fatal(err)
		}
	}
	stretching, err := cat.RegisterAttr("grid-stretching", "ARPS", grid.ID, "")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []string{"dzmin", "reference-height"} {
		if _, err := cat.RegisterElem(p, "ARPS", stretching.ID, hybridcat.DTFloat, ""); err != nil {
			log.Fatal(err)
		}
	}

	// Ingest shreds the document into per-attribute CLOBs plus queryable
	// rows.
	id, err := cat.IngestXML("alice", hybridcat.Figure3Document)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested Figure 3 document as object %d\n", id)

	// "Which files have horizontal grid spacing 1000 m and grid
	// stretching with minimum vertical spacing 100 m?" — the unordered
	// attribute query replacing the paper's XQuery FLWOR expression.
	q := &hybridcat.Query{}
	g := q.Attr("grid", "ARPS")
	g.AddElem("dx", "ARPS", hybridcat.OpEq, hybridcat.Int(1000))
	sub := &hybridcat.AttrCriteria{Name: "grid-stretching", Source: "ARPS"}
	sub.AddElem("dzmin", "ARPS", hybridcat.OpEq, hybridcat.Int(100))
	g.AddSub(sub)

	responses, err := cat.Search(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d object(s) match\n\n", len(responses))
	for _, r := range responses {
		doc, err := hybridcat.ParseXML(r.XML)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(doc.Pretty())
	}
}

// Curation example: the catalog features beyond single-document search —
// aggregating objects into a project/experiment hierarchy (the paper's
// "files or aggregations"), containment-scoped context queries, the
// broader-context direction ("which experiments contain matching data"),
// ontology-widened keyword search (§3's "connected to an ontology"), and
// snapshot persistence across process restarts.
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/gridmeta/hybridcat"
)

func main() {
	cat, err := hybridcat.OpenLEAD(hybridcat.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// A spring campaign with two experiments.
	project, err := cat.CreateCollection("spring06", "alice", 0)
	if err != nil {
		log.Fatal(err)
	}
	expA, err := cat.CreateCollection("radar-assim", "alice", project)
	if err != nil {
		log.Fatal(err)
	}
	expB, err := cat.CreateCollection("control", "alice", project)
	if err != nil {
		log.Fatal(err)
	}

	// Tagged datasets, split across the experiments.
	type dataset struct {
		name, keyword string
		coll          int64
	}
	for _, d := range []dataset{
		{"radar-001", "radar_reflectivity", expA},
		{"precip-fc", "convective_precipitation_amount", expA},
		{"precip-obs", "stratiform_precipitation_amount", expB},
		{"temps", "air_temperature", expB},
		{"scratch", "eastward_wind", 0}, // uncurated
	} {
		xml := fmt.Sprintf(`<LEADresource><resourceID>%s</resourceID><data><idinfo><keywords>
		  <theme><themekt>CF</themekt><themekey>%s</themekey></theme>
		</keywords></idinfo></data></LEADresource>`, d.name, d.keyword)
		id, err := cat.IngestXML("alice", xml)
		if err != nil {
			log.Fatal(err)
		}
		if d.coll != 0 {
			if err := cat.AddToCollection(d.coll, id); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("cataloged %d datasets in %d collections\n\n", len(cat.Objects()), len(cat.Collections()))

	// Ontology-widened keyword search: "precipitation" finds datasets
	// tagged only with narrower CF terms.
	ont, err := hybridcat.ParseOntology(hybridcat.CFKeywords)
	if err != nil {
		log.Fatal(err)
	}
	q := &hybridcat.Query{}
	q.Attr("theme", "").AddElem("themekey", "", hybridcat.OpEq, hybridcat.Str("precipitation"))
	plain, _ := cat.Evaluate(q)
	expanded, err := cat.Evaluate(hybridcat.ExpandQuery(ont, q))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("keyword 'precipitation': %d hits unexpanded, %d with ontology expansion\n",
		len(plain), len(expanded))

	// Containment viewpoint: scope the expanded query to each experiment.
	for _, scope := range []struct {
		name string
		id   int64
	}{{"spring06", project}, {"radar-assim", expA}, {"control", expB}} {
		ids, err := cat.EvaluateInContext(scope.id, hybridcat.ExpandQuery(ont, q))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  within %-12s -> %d dataset(s)\n", scope.name, len(ids))
	}

	// Broader context: which collections hold precipitation data at all.
	colls, err := cat.CollectionsContaining(hybridcat.ExpandQuery(ont, q))
	if err != nil {
		log.Fatal(err)
	}
	names := map[int64]string{}
	for _, ci := range cat.Collections() {
		names[ci.ID] = ci.Name
	}
	fmt.Print("collections containing precipitation data:")
	for _, id := range colls {
		fmt.Printf(" %s", names[id])
	}
	fmt.Println()

	// Snapshot persistence: serialize, reload, and query the clone.
	var buf bytes.Buffer
	if err := cat.Save(&buf); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	reloaded, err := hybridcat.LoadCatalog(hybridcat.LEADSchema(), hybridcat.Options{}, &buf)
	if err != nil {
		log.Fatal(err)
	}
	again, err := reloaded.EvaluateInContext(expA, hybridcat.ExpandQuery(ont, q))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot: %d bytes; reloaded catalog answers the scoped query with %d dataset(s)\n",
		size, len(again))
}

// Service example: how a downstream project wraps the catalog public API
// in its own HTTP endpoints — ingest, query, fetch — and drives them as a
// client, all in one process. (The full-featured server ships as
// cmd/mdserver.)
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"

	"github.com/gridmeta/hybridcat"
)

func main() {
	cat, err := hybridcat.OpenLEAD(hybridcat.Options{})
	if err != nil {
		log.Fatal(err)
	}
	grid, err := cat.RegisterAttr("grid", "ARPS", 0, "")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []string{"dx", "dz"} {
		if _, err := cat.RegisterElem(p, "ARPS", grid.ID, hybridcat.DTFloat, ""); err != nil {
			log.Fatal(err)
		}
	}
	gs, err := cat.RegisterAttr("grid-stretching", "ARPS", grid.ID, "")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []string{"dzmin", "reference-height"} {
		if _, err := cat.RegisterElem(p, "ARPS", gs.ID, hybridcat.DTFloat, ""); err != nil {
			log.Fatal(err)
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /documents", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := cat.IngestXML(r.URL.Query().Get("owner"), string(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]int64{"id": id})
	})
	mux.HandleFunc("GET /documents/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		doc, err := cat.FetchDocument(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		_ = doc.WriteTo(w, 2)
	})
	mux.HandleFunc("GET /search", func(w http.ResponseWriter, r *http.Request) {
		// A simple query surface: /search?grid.dx=1000
		q := &hybridcat.Query{}
		g := q.Attr("grid", "ARPS")
		if v := r.URL.Query().Get("dx"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			g.AddElem("dx", "ARPS", hybridcat.OpEq, hybridcat.Float(f))
		}
		ids, err := cat.Evaluate(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		_ = json.NewEncoder(w).Encode(map[string][]int64{"ids": ids})
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() {
		if err := http.Serve(ln, mux); err != nil && !strings.Contains(err.Error(), "use of closed") {
			log.Print(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Println("catalog service listening at", base)

	// Drive it as a client.
	resp, err := http.Post(base+"/documents?owner=alice", "application/xml",
		strings.NewReader(hybridcat.Figure3Document))
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("POST /documents -> %s: %s", resp.Status, body)

	resp, err = http.Get(base + "/search?dx=1000")
	if err != nil {
		log.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("GET /search?dx=1000 -> %s: %s", resp.Status, body)

	resp, err = http.Get(base + "/documents/1")
	if err != nil {
		log.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.SplitN(string(body), "\n", 4)
	fmt.Printf("GET /documents/1 -> %s:\n%s\n...\n", resp.Status, strings.Join(lines[:3], "\n"))
}

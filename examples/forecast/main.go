// Forecast-ensemble example: a custom community schema (defined in the
// annotation DSL), a fleet of simulated ARPS/WRF ensemble runs whose
// namelist parameters land in dynamic metadata attributes, and the query
// patterns a scientist would run — "find members with dx = 2 km", "find
// members whose stretching starts below 40 m", "which members used the
// Lin microphysics".
package main

import (
	"fmt"
	"log"

	"github.com/gridmeta/hybridcat"
)

// The community schema: a minimal forecast profile with one repeating
// keyword attribute, a run-status attribute, and a dynamic namelist
// region (the '!' marker uses the FGDC enttyp/attr convention).
const forecastSchema = `
forecast
  runID *
  meta
    experiment *
      campaign
      member
    status *
      state
      queued
    keywords
      tag *+
        vocab
        term +
  model
    namelists
      detailed !+
`

func main() {
	schema, err := hybridcat.ParseSchemaDSL("forecast", forecastSchema)
	if err != nil {
		log.Fatal(err)
	}
	cat, err := hybridcat.Open(schema, hybridcat.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Namelist vocabulary: ARPS grid group with nested stretching, WRF
	// physics group. Typed so bad member metadata is rejected at insert.
	grid, err := cat.RegisterAttr("grid", "ARPS", 0, "")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []string{"dx", "dy", "dz"} {
		if _, err := cat.RegisterElem(p, "ARPS", grid.ID, hybridcat.DTFloat, ""); err != nil {
			log.Fatal(err)
		}
	}
	stretch, err := cat.RegisterAttr("grid-stretching", "ARPS", grid.ID, "")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cat.RegisterElem("dzmin", "ARPS", stretch.ID, hybridcat.DTFloat, ""); err != nil {
		log.Fatal(err)
	}
	physics, err := cat.RegisterAttr("physics", "WRF", 0, "")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cat.RegisterElem("mp_physics", "WRF", physics.ID, hybridcat.DTString, ""); err != nil {
		log.Fatal(err)
	}
	if _, err := cat.RegisterElem("radt", "WRF", physics.ID, hybridcat.DTInt, ""); err != nil {
		log.Fatal(err)
	}

	// Sixteen ensemble members with varying grid spacing, stretching, and
	// microphysics.
	mps := []string{"Lin", "WSM6", "Thompson", "Morrison"}
	for m := 0; m < 16; m++ {
		dx := 1000 * (1 + m%4)
		dzmin := 20 * (1 + m%5)
		doc := fmt.Sprintf(`<forecast>
  <runID>ens-%02d</runID>
  <meta>
    <experiment><campaign>spring06</campaign><member>%d</member></experiment>
    <status><state>%s</state><queued>2006-05-12</queued></status>
    <keywords>
      <tag><vocab>CF</vocab><term>convective_precipitation_amount</term></tag>
    </keywords>
  </meta>
  <model>
    <namelists>
      <detailed>
        <enttyp><enttypl>grid</enttypl><enttypds>ARPS</enttypds></enttyp>
        <attr><attrlabl>dx</attrlabl><attrdefs>ARPS</attrdefs><attrv>%d</attrv></attr>
        <attr><attrlabl>dy</attrlabl><attrdefs>ARPS</attrdefs><attrv>%d</attrv></attr>
        <attr><attrlabl>grid-stretching</attrlabl><attrdefs>ARPS</attrdefs>
          <attr><attrlabl>dzmin</attrlabl><attrdefs>ARPS</attrdefs><attrv>%d</attrv></attr>
        </attr>
      </detailed>
      <detailed>
        <enttyp><enttypl>physics</enttypl><enttypds>WRF</enttypds></enttyp>
        <attr><attrlabl>mp_physics</attrlabl><attrdefs>WRF</attrdefs><attrv>%s</attrv></attr>
        <attr><attrlabl>radt</attrlabl><attrdefs>WRF</attrdefs><attrv>%d</attrv></attr>
      </detailed>
    </namelists>
  </model>
</forecast>`, m, m, state(m), dx, dx, dzmin, mps[m%len(mps)], 10+m%3)
		if _, err := cat.IngestXML("ensemble", doc); err != nil {
			log.Fatalf("member %d: %v", m, err)
		}
	}
	fmt.Printf("cataloged %d ensemble members\n\n", len(cat.Objects()))

	show := func(label string, q *hybridcat.Query) {
		ids, err := cat.Evaluate(q)
		if err != nil {
			log.Fatal(err)
		}
		names := make([]string, 0, len(ids))
		for _, id := range ids {
			doc, err := cat.FetchDocument(id)
			if err != nil {
				log.Fatal(err)
			}
			names = append(names, doc.ChildText("runID"))
		}
		fmt.Printf("%-48s -> %v\n", label, names)
	}

	q := &hybridcat.Query{}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", hybridcat.OpEq, hybridcat.Int(2000))
	show("members with dx = 2000 m", q)

	q = &hybridcat.Query{}
	g := q.Attr("grid", "ARPS")
	sub := &hybridcat.AttrCriteria{Name: "grid-stretching", Source: "ARPS"}
	sub.AddElem("dzmin", "ARPS", hybridcat.OpLt, hybridcat.Int(40))
	g.AddSub(sub)
	show("members whose stretching starts below 40 m", q)

	q = &hybridcat.Query{}
	q.Attr("physics", "WRF").AddElem("mp_physics", "WRF", hybridcat.OpEq, hybridcat.Str("Lin"))
	q.Attr("status", "").AddElem("state", "", hybridcat.OpEq, hybridcat.Str("Complete"))
	show("completed members using Lin microphysics", q)

	// Validation in action: a member with a non-numeric dx is rejected.
	_, err = cat.IngestXML("ensemble", `<forecast><runID>bad</runID><meta>
	  <status><state>Complete</state><queued>x</queued></status></meta>
	  <model><namelists><detailed>
	    <enttyp><enttypl>grid</enttypl><enttypds>ARPS</enttypds></enttyp>
	    <attr><attrlabl>dx</attrlabl><attrdefs>ARPS</attrdefs><attrv>fast</attrv></attr>
	  </detailed></namelists></model></forecast>`)
	fmt.Printf("\ningesting a member with dx=\"fast\" fails as expected:\n  %v\n", err)
}

func state(m int) string {
	if m%3 == 0 {
		return "In work"
	}
	return "Complete"
}

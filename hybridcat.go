// Package hybridcat is a hybrid XML-relational metadata catalog for
// schema-based grid metadata, reproducing "A Hybrid XML-Relational Grid
// Metadata Catalog" (Jensen, Plale, Pallickara, Sun; ICPP 2006).
//
// A catalog is opened over a community XML schema annotated with
// metadata-attribute partitioning (which interior elements are concepts
// scientists query on). Ingested documents are shredded twice: each
// metadata attribute instance is stored as a CLOB carrying its position
// in the schema-level global ordering, and queryable attributes
// additionally shred into attribute/element rows plus a sub-attribute
// inverted list. Queries are unordered criteria over attributes —
// "which objects carry these attributes with these values" — evaluated
// entirely with set operations; responses are rebuilt as schema-ordered
// XML from the CLOBs and the global ordering, with no external tagging
// step.
//
// Dynamic metadata attributes (the recursive namelist-parameter regions
// of schemas like LEAD's) are resolved by registered (name, source)
// identity rather than document structure, and validated on insert.
//
// Catalogs can be opened durable — OpenDurable commits every mutation
// to a write-ahead log before acknowledging it and recovers from the
// latest checkpoint snapshot plus the log — and observed: a
// MetricsRegistry passed in Options.Metrics collects per-layer counters
// and latency histograms plus a ring of the slowest query traces.
//
// Quickstart:
//
//	cat, _ := hybridcat.OpenLEAD(hybridcat.Options{})
//	grid, _ := cat.RegisterAttr("grid", "ARPS", 0, "")
//	cat.RegisterElem("dx", "ARPS", grid.ID, hybridcat.DTFloat, "")
//	id, _ := cat.IngestXML("alice", document)
//	q := &hybridcat.Query{}
//	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", hybridcat.OpEq, hybridcat.Int(1000))
//	responses, _ := cat.Search(q)
//
// See the examples directory for runnable programs and DESIGN.md for the
// architecture.
package hybridcat

import (
	"io"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/obs"
	"github.com/gridmeta/hybridcat/internal/ontology"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
	"github.com/gridmeta/hybridcat/internal/xpath"
)

// Catalog is a hybrid XML-relational metadata catalog over one community
// schema. See catalog.Catalog for the method set: Ingest, IngestXML,
// AddAttribute, Evaluate, Search, BuildResponse, FetchDocument,
// RegisterAttr, RegisterElem, Delete, Objects.
type Catalog = catalog.Catalog

// Options configures a catalog.
type Options = catalog.Options

// Query is an unordered query over metadata attributes: an object
// matches when it contains a satisfying instance of every top-level
// criterion.
type Query = catalog.Query

// AttrCriteria is one criteria node: an attribute identity with element
// predicates and nested sub-attribute criteria (the myLEAD MyAttr).
type AttrCriteria = catalog.AttrCriteria

// ElemPred is one element predicate inside a criteria node.
type ElemPred = catalog.ElemPred

// Response is one tagged XML document built for a query result.
type Response = catalog.Response

// ObjectInfo describes a cataloged object.
type ObjectInfo = catalog.ObjectInfo

// CacheStats reports the per-layer read-cache counters and the data and
// registry generations entries are stamped with.
type CacheStats = catalog.CacheStats

// ErrUnknownDefinition is returned when a query names an attribute or
// element with no definition visible to the query's owner.
var ErrUnknownDefinition = catalog.ErrUnknownDefinition

// RankSpec asks for BM25 ranked retrieval over attribute text values:
// set Query.Rank and run EvaluateRanked or SearchRanked. Terms are
// analyzed with the index's tokenizer; K bounds the result count.
type RankSpec = catalog.RankSpec

// ScoredID is one ranked result: an object ID with its BM25 score.
type ScoredID = catalog.ScoredID

// RankedResponse is one ranked search result with its rebuilt document.
type RankedResponse = catalog.RankedResponse

// ErrTextIndexDisabled is returned for ranked queries when the catalog
// was opened with Options.DisableTextIndex.
var ErrTextIndexDisabled = catalog.ErrTextIndexDisabled

// DefaultRankK is the ranked-result bound when RankSpec.K is zero.
const DefaultRankK = catalog.DefaultRankK

// Schema is an annotated, finalized community schema.
type Schema = xmlschema.Schema

// SchemaNode is one element declaration in a schema.
type SchemaNode = xmlschema.Node

// DynamicSpec configures how a dynamic attribute container is
// interpreted (entity/name/source/node/value tag names).
type DynamicSpec = xmlschema.DynamicSpec

// FGDCDynamicSpec is the LEAD/FGDC detailed-entity convention.
var FGDCDynamicSpec = xmlschema.FGDCDynamicSpec

// Document is a parsed XML element tree.
type Document = xmldoc.Node

// AttrDef is a metadata attribute definition.
type AttrDef = core.AttrDef

// ElemDef is a metadata element definition.
type ElemDef = core.ElemDef

// DataType is the declared type of a metadata element.
type DataType = core.DataType

// Element data types, validated on insert.
const (
	DTString = core.DTString
	DTInt    = core.DTInt
	DTFloat  = core.DTFloat
	DTBool   = core.DTBool
	DTDate   = core.DTDate
)

// Value is a typed query value.
type Value = relstore.Value

// Int wraps an int64 query value.
func Int(i int64) Value { return relstore.Int(i) }

// Float wraps a float64 query value.
func Float(f float64) Value { return relstore.Float(f) }

// Str wraps a string query value.
func Str(s string) Value { return relstore.Str(s) }

// Bool wraps a boolean query value.
func Bool(b bool) Value { return relstore.Bool(b) }

// CmpOp is a comparison operator for element predicates.
type CmpOp = relstore.CmpOp

// Comparison operators.
const (
	OpEq = relstore.OpEq
	OpNe = relstore.OpNe
	OpLt = relstore.OpLt
	OpLe = relstore.OpLe
	OpGt = relstore.OpGt
	OpGe = relstore.OpGe
)

// Open builds a catalog over a finalized annotated schema.
func Open(schema *Schema, opts Options) (*Catalog, error) {
	return catalog.Open(schema, opts)
}

// OpenLEAD builds a catalog over the paper's partial LEAD schema
// (Figure 2).
func OpenLEAD(opts Options) (*Catalog, error) {
	s, err := xmlschema.LEAD()
	if err != nil {
		return nil, err
	}
	return catalog.Open(s, opts)
}

// DurabilityOptions configures write-ahead durability for OpenDurable.
type DurabilityOptions = catalog.DurabilityOptions

// ErrDurability wraps failures to make an acknowledged mutation durable;
// the in-memory state is rolled back before it is returned.
var ErrDurability = catalog.ErrDurability

// OpenDurable builds a catalog whose mutations are committed to a
// write-ahead log before they return, recovering any existing state from
// the checkpoint snapshot plus the log (see DESIGN.md "Durability and
// recovery").
func OpenDurable(schema *Schema, opts Options, dopts DurabilityOptions) (*Catalog, error) {
	return catalog.OpenDurable(schema, opts, dopts)
}

// LEADSchema returns the paper's partial LEAD schema (Figure 2).
func LEADSchema() *Schema { return xmlschema.MustLEAD() }

// Figure3Document is the paper's Figure 3 example metadata document.
const Figure3Document = xmlschema.Figure3Document

// ParseSchemaDSL builds an annotated schema from the compact
// indentation-based format ('*' attribute, '+' repeats, '!' dynamic
// container, '~' non-queryable); see internal/xmlschema.ParseDSL for the
// grammar.
func ParseSchemaDSL(name, text string) (*Schema, error) {
	return xmlschema.ParseDSL(name, text)
}

// ParseXSD builds an annotated schema from an XML Schema document using
// the supported subset (sequences, refs, maxOccurs) with partitioning
// annotations on a "role" attribute; rootElement "" uses the first
// top-level declaration.
func ParseXSD(name, data, rootElement string) (*Schema, error) {
	return xmlschema.ParseXSD(name, data, rootElement)
}

// ParseXML parses one XML document.
func ParseXML(s string) (*Document, error) { return xmldoc.ParseString(s) }

// XPath compiles an XPath-lite expression (used with Document trees for
// path-style inspection; the catalog itself is queried with Query).
func XPath(src string) (*xpath.Expr, error) { return xpath.Compile(src) }

// CollectionInfo describes one collection (aggregation); collections are
// managed through Catalog.CreateCollection, AddToCollection,
// EvaluateInContext, and CollectionsContaining.
type CollectionInfo = catalog.CollectionInfo

// Ontology is a broader/narrower term hierarchy used to widen keyword
// queries (the §3 "connected to an ontology" enhancement).
type Ontology = ontology.Ontology

// NewOntology returns an empty ontology; add terms with Add.
func NewOntology() *Ontology { return ontology.New() }

// ParseOntology reads the indentation term-hierarchy format.
func ParseOntology(text string) (*Ontology, error) { return ontology.Parse(text) }

// ExpandQuery widens string-equality predicates whose value is a known
// ontology term into OneOf predicates over the term's narrower closure.
// The input query is not modified.
func ExpandQuery(o *Ontology, q *Query) *Query { return ontology.Expand(o, q) }

// CFKeywords is a small CF-standard-name-flavored sample hierarchy.
const CFKeywords = ontology.CFKeywords

// LoadCatalog rebuilds a catalog from a snapshot written by Catalog.Save.
// The schema must match the one the snapshot was written against.
func LoadCatalog(schema *Schema, opts Options, r io.Reader) (*Catalog, error) {
	return catalog.Load(schema, opts, r)
}

// ParseQueryJSON decodes the JSON query wire format (see the mdserver
// endpoints and internal/catalog's format documentation).
func ParseQueryJSON(data []byte) (*Query, error) { return catalog.ParseQueryJSON(data) }

// MarshalQueryJSON renders a query in the JSON wire format.
func MarshalQueryJSON(q *Query) ([]byte, error) { return catalog.MarshalQueryJSON(q) }

// MetricsRegistry is a sharded, atomic metrics registry. Pass one in
// Options.Metrics and the catalog publishes counters and histograms for
// every layer it drives (relational store, read caches, WAL, query
// pipeline); render it with WriteProm or WriteJSON, or diff Snapshot
// calls around a workload. See DESIGN.md "Observability".
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// QueryTrace is one recorded catalog operation with its per-stage
// Figure-4 timings. With metrics on, the catalog keeps the slowest
// traces in a ring readable via Catalog.Traces (served by mdserver at
// /debug/tracez).
type QueryTrace = obs.Trace

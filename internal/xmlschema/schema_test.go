package xmlschema

import (
	"strings"
	"testing"
)

func TestLEADSchemaFinalizes(t *testing.T) {
	s, err := LEAD()
	if err != nil {
		t.Fatal(err)
	}
	if s.Root.Tag != "LEADresource" {
		t.Errorf("root = %s", s.Root.Tag)
	}
	// The figure's partitioning: these tags are metadata attributes.
	wantAttrs := []string{"resourceID", "citation", "status", "timeperd",
		"theme", "place", "stratum", "temporal", "accconst", "useconst",
		"spdom", "spattemp", "detailed", "overview", "procstep"}
	if len(s.Attributes) != len(wantAttrs) {
		t.Fatalf("attribute count = %d, want %d", len(s.Attributes), len(wantAttrs))
	}
	for i, tag := range wantAttrs {
		if s.Attributes[i].Tag != tag {
			t.Errorf("attribute %d = %s, want %s", i, s.Attributes[i].Tag, tag)
		}
	}
	detailed := s.AttributeByTag("detailed")
	if detailed == nil || !detailed.IsDynamic || !detailed.Repeats {
		t.Error("detailed should be a repeating dynamic container")
	}
	if s.AttributeByTag("theme") == nil || s.AttributeByTag("nosuch") != nil {
		t.Error("AttributeByTag misbehaved")
	}
}

func TestGlobalOrderingInvariants(t *testing.T) {
	s := MustLEAD()
	// Preorder: each node's order exceeds its parent's; Ordered is sorted.
	for i, n := range s.Ordered {
		if n.Order != i+1 {
			t.Fatalf("Ordered[%d].Order = %d", i, n.Order)
		}
		if n.Parent != nil && n.Parent.Order >= n.Order {
			t.Errorf("%s: parent order %d >= own %d", n.Tag, n.Parent.Order, n.Order)
		}
		if n.IsAttribute && n.LastChild != n.Order {
			t.Errorf("attribute %s: LastChild = %d, want own order %d", n.Tag, n.LastChild, n.Order)
		}
		if n.LastChild < n.Order {
			t.Errorf("%s: LastChild %d < order %d", n.Tag, n.LastChild, n.Order)
		}
		// LastChild is the max order in the ordered subtree.
		max := n.Order
		var walk func(x *Node)
		walk = func(x *Node) {
			if x.Order > max {
				max = x.Order
			}
			if x.IsAttribute {
				return
			}
			for _, c := range x.Children {
				walk(c)
			}
		}
		if !n.IsAttribute {
			walk(n)
			if n.LastChild != max {
				t.Errorf("%s: LastChild = %d, subtree max = %d", n.Tag, n.LastChild, max)
			}
		}
	}
	// Nodes strictly inside attribute subtrees carry no order.
	theme := s.AttributeByTag("theme")
	for _, c := range theme.Children {
		if c.Order != 0 {
			t.Errorf("node %s inside attribute subtree has order %d", c.Tag, c.Order)
		}
	}
}

func TestOrderingTableGolden(t *testing.T) {
	s := MustLEAD()
	got := strings.Join(s.OrderingTable(), "\n")
	lines := strings.Split(got, "\n")
	if len(lines) != len(s.Ordered) {
		t.Fatalf("table rows = %d, want %d", len(lines), len(s.Ordered))
	}
	// Exact golden for the first rows (structure of Figure 2's numbering).
	head := []string{
		" 1 LEADresource",
		" 2   resourceID [attribute]",
		" 3   data",
		" 4     idinfo",
		" 5       citation [attribute]",
		" 6       status [attribute]",
		" 7       timeperd [attribute]",
		" 8       keywords",
		" 9         theme [attribute]",
		"10         place [attribute]",
		"11         stratum [attribute]",
		"12         temporal [attribute]",
	}
	for i, h := range head {
		if !strings.HasPrefix(lines[i], h) {
			t.Errorf("row %d = %q, want prefix %q", i, lines[i], h)
		}
	}
	// The dynamic container row.
	found := false
	for _, l := range lines {
		if strings.Contains(l, "detailed [dynamic attribute]") {
			found = true
		}
	}
	if !found {
		t.Error("ordering table missing the dynamic attribute row")
	}
}

func TestAncestorsInvertedList(t *testing.T) {
	s := MustLEAD()
	theme := s.AttributeByTag("theme")
	anc := s.Ancestors(theme.Order)
	// Ancestors: LEADresource(1), data, idinfo, keywords.
	if len(anc) != 4 || anc[0] != 1 {
		t.Fatalf("theme ancestors = %v", anc)
	}
	for i := 1; i < len(anc); i++ {
		if anc[i] <= anc[i-1] {
			t.Error("ancestors not ascending")
		}
	}
	tags := make([]string, len(anc))
	for i, o := range anc {
		tags[i] = s.NodeByOrder(o).Tag
	}
	if strings.Join(tags, "/") != "LEADresource/data/idinfo/keywords" {
		t.Errorf("ancestor tags = %v", tags)
	}
	if s.Ancestors(1) == nil || len(s.Ancestors(1)) != 0 {
		t.Errorf("root ancestors = %v", s.Ancestors(1))
	}
	if s.NodeByOrder(0) != nil || s.NodeByOrder(len(s.Ordered)+1) != nil {
		t.Error("NodeByOrder bounds wrong")
	}
}

func TestElementsOfStructuralAttribute(t *testing.T) {
	s := MustLEAD()
	theme := s.AttributeByTag("theme")
	els := ElementsOf(theme)
	if len(els) != 2 || els[0].Tag != "themekt" || els[1].Tag != "themekey" {
		t.Fatalf("theme elements = %+v", els)
	}
	if els[0].Repeats || !els[1].Repeats {
		t.Error("repeat flags wrong")
	}
	if els[0].Owner != "theme" {
		t.Errorf("owner = %s", els[0].Owner)
	}
	// Leaf attribute: resourceID is its own element.
	rid := s.AttributeByTag("resourceID")
	els = ElementsOf(rid)
	if len(els) != 1 || !els[0].Self || els[0].Tag != "resourceID" {
		t.Fatalf("resourceID elements = %+v", els)
	}
	// spdom has sub-attributes: elements are owned by them.
	spdom := s.AttributeByTag("spdom")
	els = ElementsOf(spdom)
	owners := map[string]bool{}
	for _, e := range els {
		owners[e.Owner] = true
	}
	if !owners["bounding"] || !owners["dsgpoly"] || !owners["vertdom"] {
		t.Errorf("spdom element owners = %v", owners)
	}
	subs := SubAttributesOf(spdom)
	if len(subs) != 3 {
		t.Errorf("spdom sub-attributes = %d", len(subs))
	}
}

func TestValidationRules(t *testing.T) {
	// Leaf outside any attribute.
	s, root := New("bad1", "r")
	root.Add("leaf")
	if err := s.Finalize(); err == nil || !strings.Contains(err.Error(), "leaf") {
		t.Errorf("bad1 err = %v", err)
	}
	// Repeating element outside an attribute.
	s, root = New("bad2", "r")
	k := root.Add("k").Repeat()
	k.Add("v")
	if err := s.Finalize(); err == nil || !strings.Contains(err.Error(), "multiple instances") {
		t.Errorf("bad2 err = %v", err)
	}
	// Nested attributes.
	s, root = New("bad3", "r")
	outer := root.Add("outer").Attribute()
	outer.Add("inner").Attribute()
	if err := s.Finalize(); err == nil || !strings.Contains(err.Error(), "nested") {
		t.Errorf("bad3 err = %v", err)
	}
	// XML attributes outside a metadata attribute.
	s, root = New("bad4", "r")
	h := root.Add("h")
	h.HasAttrs = true
	h.Add("x").Attribute()
	if err := s.Finalize(); err == nil || !strings.Contains(err.Error(), "XML attributes") {
		t.Errorf("bad4 err = %v", err)
	}
	// Duplicate attribute tags.
	s, root = New("bad5", "r")
	a := root.Add("sec1")
	a.Add("dup").Attribute()
	b := root.Add("sec2")
	b.Add("dup").Attribute()
	if err := s.Finalize(); err == nil || !strings.Contains(err.Error(), "unique") {
		t.Errorf("bad5 err = %v", err)
	}
	// Valid minimal schema.
	s, root = New("ok", "r")
	root.Add("a").Attribute()
	if err := s.Finalize(); err != nil {
		t.Errorf("ok schema failed: %v", err)
	}
}

func TestParseDSL(t *testing.T) {
	text := `
# a LEAD-like profile
catalog
  id *
  body
    keywords
      theme *+
        themekt
        themekey +
    eainfo
      detailed !+
    notes *~
`
	s, err := ParseDSL("mini", text)
	if err != nil {
		t.Fatal(err)
	}
	if s.Root.Tag != "catalog" {
		t.Errorf("root = %s", s.Root.Tag)
	}
	theme := s.AttributeByTag("theme")
	if theme == nil || !theme.Repeats || !theme.Queryable {
		t.Fatalf("theme = %+v", theme)
	}
	detailed := s.AttributeByTag("detailed")
	if detailed == nil || !detailed.IsDynamic || detailed.Dynamic.NameTag != "enttypl" {
		t.Fatalf("detailed = %+v", detailed)
	}
	notes := s.AttributeByTag("notes")
	if notes == nil || notes.Queryable {
		t.Error("~ marker should make notes non-queryable")
	}
	if len(s.Attributes) != 4 {
		t.Errorf("attributes = %d", len(s.Attributes))
	}
}

func TestParseDSLErrors(t *testing.T) {
	bad := map[string]string{
		"empty":        "",
		"two roots":    "a *\nb *",
		"level jump":   "a\n      b *",
		"odd indent":   "a\n b *",
		"bad marker":   "a\n  b *$",
		"invalid rule": "a\n  b", // leaf outside attribute fails Finalize
	}
	for name, text := range bad {
		if _, err := ParseDSL(name, text); err == nil {
			t.Errorf("%s: ParseDSL should fail", name)
		}
	}
}

func TestLEADDSLRoundTrip(t *testing.T) {
	// The LEAD schema expressed in DSL must produce the same ordering as
	// the programmatic construction.
	text := `
LEADresource
  resourceID *
  data
    idinfo
      citation *
        origin
        pubdate
        title
      status *
        progress
        update
      timeperd *
        current
        begdate
        enddate
      keywords
        theme *+
          themekt
          themekey +
        place *+
          placekt
          placekey +
        stratum *+
          stratkt
          stratkey +
        temporal *+
          tempkt
          tempkey +
      accconst *
      useconst *
    geospatial
      spdom *
        bounding
          westbc
          eastbc
          northbc
          southbc
        dsgpoly
          ring
        vertdom
          vertmin
          vertmax
      spattemp *
      eainfo
        detailed !+
        overview *+
          eaover
          eadetcit
    lineage
      procstep *+
        procdesc
        procdate
`
	fromDSL, err := ParseDSL("LEAD", text)
	if err != nil {
		t.Fatal(err)
	}
	ref := MustLEAD()
	if len(fromDSL.Ordered) != len(ref.Ordered) {
		t.Fatalf("ordered = %d, want %d", len(fromDSL.Ordered), len(ref.Ordered))
	}
	for i := range ref.Ordered {
		a, b := fromDSL.Ordered[i], ref.Ordered[i]
		if a.Tag != b.Tag || a.Order != b.Order || a.LastChild != b.LastChild ||
			a.IsAttribute != b.IsAttribute || a.IsDynamic != b.IsDynamic {
			t.Errorf("order %d: dsl %s(last=%d,attr=%v) vs ref %s(last=%d,attr=%v)",
				i+1, a.Tag, a.LastChild, a.IsAttribute, b.Tag, b.LastChild, b.IsAttribute)
		}
	}
}

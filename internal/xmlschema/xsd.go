package xmlschema

import (
	"fmt"
	"strconv"

	"github.com/gridmeta/hybridcat/internal/xmldoc"
)

// ParseXSD builds an annotated schema from an XML Schema document,
// covering the subset grid community schemas use:
//
//   - top-level <xs:element name="..."> declarations,
//   - anonymous <xs:complexType><xs:sequence> content,
//   - nested <xs:element> with name or ref, minOccurs/maxOccurs
//     (maxOccurs="unbounded" or > 1 marks a repeating element),
//   - leaf elements (no complex content, any type attribute).
//
// Partitioning annotations ride on a "role" attribute of xs:element (any
// namespace prefix; conventionally mdcat:role):
//
//	role="attribute"        metadata attribute (queryable)
//	role="attribute-nq"     metadata attribute, not queryable
//	role="dynamic"          dynamic attribute container (FGDC convention);
//	                        its declared content model is ignored — the
//	                        recursive interior is interpreted through the
//	                        DynamicSpec at shred time
//
// References (ref=) resolve against the top-level declarations; cyclic
// references are only legal inside a dynamic container, where the cycle
// is subsumed by the container's recursion.
//
// rootElement selects the top-level declaration to use as the document
// root ("" = the first one).
func ParseXSD(name, data, rootElement string) (*Schema, error) {
	doc, err := xmldoc.ParseString(data)
	if err != nil {
		return nil, fmt.Errorf("xmlschema: xsd: %w", err)
	}
	if doc.Tag != "schema" {
		return nil, fmt.Errorf("xmlschema: xsd: root element is <%s>, want <xs:schema>", doc.Tag)
	}
	tops := map[string]*xmldoc.Node{}
	var firstTop string
	for _, c := range doc.Children {
		if c.Tag != "element" {
			continue // ignore xs:annotation, named types we don't support, etc.
		}
		n, ok := c.Attr("name")
		if !ok || n == "" {
			return nil, fmt.Errorf("xmlschema: xsd: top-level element without a name")
		}
		if _, dup := tops[n]; dup {
			return nil, fmt.Errorf("xmlschema: xsd: duplicate top-level element %q", n)
		}
		tops[n] = c
		if firstTop == "" {
			firstTop = n
		}
	}
	if firstTop == "" {
		return nil, fmt.Errorf("xmlschema: xsd: no top-level element declarations")
	}
	if rootElement == "" {
		rootElement = firstTop
	}
	rootDecl, ok := tops[rootElement]
	if !ok {
		return nil, fmt.Errorf("xmlschema: xsd: no top-level element %q", rootElement)
	}

	b := &xsdBuilder{tops: tops}
	s, root := New(name, rootElement)
	if err := b.applyAnnotations(root, rootDecl); err != nil {
		return nil, err
	}
	if err := b.fill(root, rootDecl, map[string]bool{rootElement: true}); err != nil {
		return nil, err
	}
	if err := s.Finalize(); err != nil {
		return nil, err
	}
	return s, nil
}

type xsdBuilder struct {
	tops map[string]*xmldoc.Node
}

// applyAnnotations reads role/maxOccurs off an element declaration or
// reference site.
func (b *xsdBuilder) applyAnnotations(node *Node, decl *xmldoc.Node) error {
	if role, ok := decl.Attr("role"); ok {
		switch role {
		case "attribute":
			node.Attribute()
		case "attribute-nq":
			node.Attribute().NonQueryable()
		case "dynamic":
			node.DynamicContainer(FGDCDynamicSpec)
		default:
			return fmt.Errorf("xmlschema: xsd: element %q: unknown role %q", node.Tag, role)
		}
	}
	if mo, ok := decl.Attr("maxOccurs"); ok {
		if mo == "unbounded" {
			node.Repeat()
		} else if n, err := strconv.Atoi(mo); err == nil && n > 1 {
			node.Repeat()
		} else if err != nil {
			return fmt.Errorf("xmlschema: xsd: element %q: bad maxOccurs %q", node.Tag, mo)
		}
	}
	return nil
}

// contentSequence returns the xs:sequence of an element's anonymous
// complexType, or nil for leaves.
func contentSequence(decl *xmldoc.Node) (*xmldoc.Node, error) {
	ct := decl.Child("complexType")
	if ct == nil {
		return nil, nil
	}
	seq := ct.Child("sequence")
	if seq == nil {
		if len(ct.Children) == 0 {
			return nil, nil // empty complexType: treat as leaf
		}
		return nil, fmt.Errorf("xmlschema: xsd: element %q: only <xs:sequence> content is supported", tagOf(decl))
	}
	return seq, nil
}

func tagOf(decl *xmldoc.Node) string {
	if n, ok := decl.Attr("name"); ok {
		return n
	}
	if r, ok := decl.Attr("ref"); ok {
		return r
	}
	return decl.Tag
}

// fill populates node's children from the declaration's sequence.
// visiting guards reference cycles.
func (b *xsdBuilder) fill(node *Node, decl *xmldoc.Node, visiting map[string]bool) error {
	if node.IsDynamic {
		// The dynamic container's declared interior (typically the
		// recursive attr model) is interpreted at shred time.
		return nil
	}
	seq, err := contentSequence(decl)
	if err != nil {
		return err
	}
	if seq == nil {
		return nil // leaf
	}
	for _, childDecl := range seq.Children {
		if childDecl.Tag != "element" {
			return fmt.Errorf("xmlschema: xsd: element %q: unsupported particle <%s>", node.Tag, childDecl.Tag)
		}
		if ref, ok := childDecl.Attr("ref"); ok {
			target, found := b.tops[ref]
			if !found {
				return fmt.Errorf("xmlschema: xsd: element %q references undeclared %q", node.Tag, ref)
			}
			if visiting[ref] {
				// A cycle: legal only inside a dynamic container, which
				// never expands its interior, so reaching here means the
				// recursion sits outside one.
				return fmt.Errorf("xmlschema: xsd: recursive reference to %q outside a dynamic attribute container", ref)
			}
			child := node.Add(ref)
			// Occurrence/role annotations at the reference site win over
			// the declaration's.
			if err := b.applyAnnotations(child, target); err != nil {
				return err
			}
			if err := b.applyAnnotations(child, childDecl); err != nil {
				return err
			}
			visiting[ref] = true
			if err := b.fill(child, target, visiting); err != nil {
				return err
			}
			delete(visiting, ref)
			continue
		}
		cname, ok := childDecl.Attr("name")
		if !ok {
			return fmt.Errorf("xmlschema: xsd: element under %q needs name or ref", node.Tag)
		}
		child := node.Add(cname)
		if err := b.applyAnnotations(child, childDecl); err != nil {
			return err
		}
		if err := b.fill(child, childDecl, visiting); err != nil {
			return err
		}
	}
	return nil
}

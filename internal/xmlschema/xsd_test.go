package xmlschema

import (
	"strings"
	"testing"
)

// leadXSD expresses the Figure 2 partial LEAD schema as an annotated XML
// Schema document; the round-trip test below requires it to reproduce
// the programmatic construction exactly.
const leadXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" xmlns:mdcat="urn:hybridcat">
  <xs:element name="LEADresource">
    <xs:complexType><xs:sequence>
      <xs:element name="resourceID" type="xs:string" mdcat:role="attribute"/>
      <xs:element name="data">
        <xs:complexType><xs:sequence>
          <xs:element name="idinfo">
            <xs:complexType><xs:sequence>
              <xs:element name="citation" mdcat:role="attribute">
                <xs:complexType><xs:sequence>
                  <xs:element name="origin" type="xs:string"/>
                  <xs:element name="pubdate" type="xs:string"/>
                  <xs:element name="title" type="xs:string"/>
                </xs:sequence></xs:complexType>
              </xs:element>
              <xs:element name="status" mdcat:role="attribute">
                <xs:complexType><xs:sequence>
                  <xs:element name="progress" type="xs:string"/>
                  <xs:element name="update" type="xs:string"/>
                </xs:sequence></xs:complexType>
              </xs:element>
              <xs:element name="timeperd" mdcat:role="attribute">
                <xs:complexType><xs:sequence>
                  <xs:element name="current" type="xs:string"/>
                  <xs:element name="begdate" type="xs:string"/>
                  <xs:element name="enddate" type="xs:string"/>
                </xs:sequence></xs:complexType>
              </xs:element>
              <xs:element name="keywords">
                <xs:complexType><xs:sequence>
                  <xs:element name="theme" maxOccurs="unbounded" mdcat:role="attribute">
                    <xs:complexType><xs:sequence>
                      <xs:element name="themekt" type="xs:string"/>
                      <xs:element name="themekey" type="xs:string" maxOccurs="unbounded"/>
                    </xs:sequence></xs:complexType>
                  </xs:element>
                  <xs:element name="place" maxOccurs="unbounded" mdcat:role="attribute">
                    <xs:complexType><xs:sequence>
                      <xs:element name="placekt" type="xs:string"/>
                      <xs:element name="placekey" type="xs:string" maxOccurs="unbounded"/>
                    </xs:sequence></xs:complexType>
                  </xs:element>
                  <xs:element name="stratum" maxOccurs="unbounded" mdcat:role="attribute">
                    <xs:complexType><xs:sequence>
                      <xs:element name="stratkt" type="xs:string"/>
                      <xs:element name="stratkey" type="xs:string" maxOccurs="unbounded"/>
                    </xs:sequence></xs:complexType>
                  </xs:element>
                  <xs:element name="temporal" maxOccurs="unbounded" mdcat:role="attribute">
                    <xs:complexType><xs:sequence>
                      <xs:element name="tempkt" type="xs:string"/>
                      <xs:element name="tempkey" type="xs:string" maxOccurs="unbounded"/>
                    </xs:sequence></xs:complexType>
                  </xs:element>
                </xs:sequence></xs:complexType>
              </xs:element>
              <xs:element name="accconst" type="xs:string" mdcat:role="attribute"/>
              <xs:element name="useconst" type="xs:string" mdcat:role="attribute"/>
            </xs:sequence></xs:complexType>
          </xs:element>
          <xs:element name="geospatial">
            <xs:complexType><xs:sequence>
              <xs:element name="spdom" mdcat:role="attribute">
                <xs:complexType><xs:sequence>
                  <xs:element name="bounding">
                    <xs:complexType><xs:sequence>
                      <xs:element name="westbc" type="xs:double"/>
                      <xs:element name="eastbc" type="xs:double"/>
                      <xs:element name="northbc" type="xs:double"/>
                      <xs:element name="southbc" type="xs:double"/>
                    </xs:sequence></xs:complexType>
                  </xs:element>
                  <xs:element name="dsgpoly">
                    <xs:complexType><xs:sequence>
                      <xs:element name="ring" type="xs:string"/>
                    </xs:sequence></xs:complexType>
                  </xs:element>
                  <xs:element name="vertdom">
                    <xs:complexType><xs:sequence>
                      <xs:element name="vertmin" type="xs:double"/>
                      <xs:element name="vertmax" type="xs:double"/>
                    </xs:sequence></xs:complexType>
                  </xs:element>
                </xs:sequence></xs:complexType>
              </xs:element>
              <xs:element name="spattemp" type="xs:string" mdcat:role="attribute"/>
              <xs:element name="eainfo">
                <xs:complexType><xs:sequence>
                  <xs:element ref="detailed" maxOccurs="unbounded"/>
                  <xs:element name="overview" maxOccurs="unbounded" mdcat:role="attribute">
                    <xs:complexType><xs:sequence>
                      <xs:element name="eaover" type="xs:string"/>
                      <xs:element name="eadetcit" type="xs:string"/>
                    </xs:sequence></xs:complexType>
                  </xs:element>
                </xs:sequence></xs:complexType>
              </xs:element>
            </xs:sequence></xs:complexType>
          </xs:element>
          <xs:element name="lineage">
            <xs:complexType><xs:sequence>
              <xs:element name="procstep" maxOccurs="unbounded" mdcat:role="attribute">
                <xs:complexType><xs:sequence>
                  <xs:element name="procdesc" type="xs:string"/>
                  <xs:element name="procdate" type="xs:string"/>
                </xs:sequence></xs:complexType>
              </xs:element>
            </xs:sequence></xs:complexType>
          </xs:element>
        </xs:sequence></xs:complexType>
      </xs:element>
    </xs:sequence></xs:complexType>
  </xs:element>
  <xs:element name="detailed" mdcat:role="dynamic">
    <xs:complexType><xs:sequence>
      <xs:element name="enttyp">
        <xs:complexType><xs:sequence>
          <xs:element name="enttypl" type="xs:string"/>
          <xs:element name="enttypds" type="xs:string"/>
        </xs:sequence></xs:complexType>
      </xs:element>
      <xs:element ref="attr" maxOccurs="unbounded"/>
    </xs:sequence></xs:complexType>
  </xs:element>
  <xs:element name="attr">
    <xs:complexType><xs:sequence>
      <xs:element name="attrlabl" type="xs:string"/>
      <xs:element name="attrdefs" type="xs:string"/>
      <xs:element name="attrv" type="xs:string" minOccurs="0"/>
      <xs:element ref="attr" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>`

func TestParseXSDLEADRoundTrip(t *testing.T) {
	fromXSD, err := ParseXSD("LEAD", leadXSD, "LEADresource")
	if err != nil {
		t.Fatal(err)
	}
	ref := MustLEAD()
	if len(fromXSD.Ordered) != len(ref.Ordered) {
		t.Fatalf("ordered = %d, want %d\n%s", len(fromXSD.Ordered), len(ref.Ordered),
			strings.Join(fromXSD.OrderingTable(), "\n"))
	}
	for i := range ref.Ordered {
		a, b := fromXSD.Ordered[i], ref.Ordered[i]
		if a.Tag != b.Tag || a.Order != b.Order || a.LastChild != b.LastChild ||
			a.IsAttribute != b.IsAttribute || a.IsDynamic != b.IsDynamic ||
			a.Queryable != b.Queryable || a.Repeats != b.Repeats {
			t.Errorf("order %d: xsd %s(last=%d,attr=%v,dyn=%v) vs ref %s(last=%d,attr=%v,dyn=%v)",
				i+1, a.Tag, a.LastChild, a.IsAttribute, a.IsDynamic,
				b.Tag, b.LastChild, b.IsAttribute, b.IsDynamic)
		}
	}
	// The dynamic container picked up the FGDC spec.
	d := fromXSD.AttributeByTag("detailed")
	if d == nil || d.Dynamic.NameTag != "enttypl" {
		t.Fatalf("detailed = %+v", d)
	}
}

func TestParseXSDDefaultsAndSelection(t *testing.T) {
	const mini = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="rootA">
	    <xs:complexType><xs:sequence>
	      <xs:element name="x" type="xs:string" role="attribute"/>
	    </xs:sequence></xs:complexType>
	  </xs:element>
	  <xs:element name="rootB">
	    <xs:complexType><xs:sequence>
	      <xs:element name="y" type="xs:string" role="attribute-nq"/>
	    </xs:sequence></xs:complexType>
	  </xs:element>
	</xs:schema>`
	// Default root = first declaration; bare "role" attribute works.
	s, err := ParseXSD("m", mini, "")
	if err != nil {
		t.Fatal(err)
	}
	if s.Root.Tag != "rootA" {
		t.Errorf("default root = %s", s.Root.Tag)
	}
	s, err = ParseXSD("m", mini, "rootB")
	if err != nil {
		t.Fatal(err)
	}
	y := s.AttributeByTag("y")
	if y == nil || y.Queryable {
		t.Errorf("attribute-nq role: %+v", y)
	}
	if _, err := ParseXSD("m", mini, "rootC"); err == nil {
		t.Error("unknown root should fail")
	}
}

func TestParseXSDMaxOccursNumeric(t *testing.T) {
	const x = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="r">
	    <xs:complexType><xs:sequence>
	      <xs:element name="k" maxOccurs="5" role="attribute">
	        <xs:complexType><xs:sequence>
	          <xs:element name="v" type="xs:string" maxOccurs="1"/>
	        </xs:sequence></xs:complexType>
	      </xs:element>
	    </xs:sequence></xs:complexType>
	  </xs:element>
	</xs:schema>`
	s, err := ParseXSD("m", x, "")
	if err != nil {
		t.Fatal(err)
	}
	k := s.AttributeByTag("k")
	if !k.Repeats {
		t.Error("maxOccurs=5 should mark repeats")
	}
	if k.Children[0].Repeats {
		t.Error("maxOccurs=1 should not mark repeats")
	}
}

func TestParseXSDErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":      "<broken",
		"wrong root":   "<other/>",
		"no elements":  `<xs:schema xmlns:xs="x"><xs:annotation/></xs:schema>`,
		"nameless top": `<s:schema xmlns:s="x"><s:element/></s:schema>`,
		"bad role": `<s:schema xmlns:s="x"><s:element name="r">
		  <s:complexType><s:sequence><s:element name="a" role="boss"/></s:sequence></s:complexType>
		</s:element></s:schema>`,
		"bad maxOccurs": `<s:schema xmlns:s="x"><s:element name="r">
		  <s:complexType><s:sequence><s:element name="a" maxOccurs="lots" role="attribute"/></s:sequence></s:complexType>
		</s:element></s:schema>`,
		"unsupported particle": `<s:schema xmlns:s="x"><s:element name="r">
		  <s:complexType><s:sequence><s:choice/></s:sequence></s:complexType>
		</s:element></s:schema>`,
		"dangling ref": `<s:schema xmlns:s="x"><s:element name="r">
		  <s:complexType><s:sequence><s:element ref="ghost"/></s:sequence></s:complexType>
		</s:element></s:schema>`,
		"recursion outside dynamic": `<s:schema xmlns:s="x">
		  <s:element name="r"><s:complexType><s:sequence><s:element ref="loop" role="attribute"/></s:sequence></s:complexType></s:element>
		  <s:element name="loop"><s:complexType><s:sequence><s:element ref="loop"/></s:sequence></s:complexType></s:element>
		</s:schema>`,
		"violates partitioning": `<s:schema xmlns:s="x"><s:element name="r">
		  <s:complexType><s:sequence><s:element name="leaf" type="s:string"/></s:sequence></s:complexType>
		</s:element></s:schema>`,
	}
	for name, xsd := range cases {
		if _, err := ParseXSD("m", xsd, ""); err == nil {
			t.Errorf("%s: should fail", name)
		}
	}
}

package xmlschema

import (
	"bufio"
	"fmt"
	"strings"
)

// ParseDSL builds a schema from the compact indentation-based annotation
// format used by the CLI tools. One element per line; indentation (two
// spaces or one tab per level) expresses nesting. Trailing markers
// annotate the element:
//
//	'*'  metadata attribute (queryable)
//	'~'  with '*': non-queryable attribute
//	'+'  allows multiple instances
//	'!'  dynamic attribute container (FGDC enttyp/attr convention)
//
// Lines starting with # (after indentation) are comments. Example:
//
//	LEADresource
//	  resourceID *
//	  data
//	    idinfo
//	      status *
//	        progress
//	        update
//	      keywords
//	        theme *+
//	          themekt
//	          themekey +
//	    geospatial
//	      eainfo
//	        detailed !+
func ParseDSL(name, text string) (*Schema, error) {
	type frame struct {
		node  *Node
		depth int
	}
	var s *Schema
	var stack []frame
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		trimmed := strings.TrimLeft(raw, " \t")
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		indent := 0
		for _, r := range raw[:len(raw)-len(trimmed)] {
			if r == '\t' {
				indent += 2
			} else {
				indent++
			}
		}
		if indent%2 != 0 {
			return nil, fmt.Errorf("xmlschema: dsl line %d: odd indentation", lineNo)
		}
		depth := indent / 2

		fields := strings.Fields(trimmed)
		tag := fields[0]
		markers := strings.Join(fields[1:], "")
		// Markers may also be glued to the tag (theme*+).
		for len(tag) > 0 && strings.ContainsRune("*+!~", rune(tag[len(tag)-1])) {
			markers = string(tag[len(tag)-1]) + markers
			tag = tag[:len(tag)-1]
		}
		if tag == "" {
			return nil, fmt.Errorf("xmlschema: dsl line %d: missing element tag", lineNo)
		}

		var node *Node
		if depth == 0 {
			if s != nil {
				return nil, fmt.Errorf("xmlschema: dsl line %d: multiple roots", lineNo)
			}
			s, node = New(name, tag)
			stack = []frame{{node, 0}}
		} else {
			if s == nil {
				return nil, fmt.Errorf("xmlschema: dsl line %d: indented line before root", lineNo)
			}
			for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
				stack = stack[:len(stack)-1]
			}
			if len(stack) == 0 || stack[len(stack)-1].depth != depth-1 {
				return nil, fmt.Errorf("xmlschema: dsl line %d: indentation jumps a level", lineNo)
			}
			node = stack[len(stack)-1].node.Add(tag)
			stack = append(stack, frame{node, depth})
		}

		for _, m := range markers {
			switch m {
			case '*':
				node.Attribute()
			case '+':
				node.Repeat()
			case '!':
				node.DynamicContainer(FGDCDynamicSpec)
			case '~':
				node.NonQueryable()
			default:
				return nil, fmt.Errorf("xmlschema: dsl line %d: unknown marker %q", lineNo, m)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("xmlschema: dsl: empty schema")
	}
	if err := s.Finalize(); err != nil {
		return nil, err
	}
	return s, nil
}

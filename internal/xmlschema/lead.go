package xmlschema

// LEAD reconstructs the partial LEAD schema of the paper's Figure 2. The
// structure follows the figure: an FGDC-derived profile whose idinfo
// section holds citation/status/timeperd/keywords, whose keyword groups
// (theme/place/stratum/temporal) are repeating structural metadata
// attributes, and whose eainfo/detailed subtree is the recursive dynamic
// metadata attribute container carrying ARPS/WRF namelist parameters
// (Figure 3).
//
// The figure's circled numbers are reproduced by Finalize's preorder
// numbering; the golden test in the catalog package pins the full
// ordering table.
func LEAD() (*Schema, error) {
	s, root := New("LEAD", "LEADresource")

	// resourceID is both a metadata attribute and a metadata element: a
	// leaf directly under the root.
	root.Add("resourceID").Attribute()

	data := root.Add("data")
	idinfo := data.Add("idinfo")

	citation := idinfo.Add("citation").Attribute()
	citation.Add("origin")
	citation.Add("pubdate")
	citation.Add("title")

	status := idinfo.Add("status").Attribute()
	status.Add("progress")
	status.Add("update")

	timeperd := idinfo.Add("timeperd").Attribute()
	timeperd.Add("current")
	timeperd.Add("begdate")
	timeperd.Add("enddate")

	keywords := idinfo.Add("keywords")
	theme := keywords.Add("theme").Attribute().Repeat()
	theme.Add("themekt")
	theme.Add("themekey").Repeat()
	place := keywords.Add("place").Attribute().Repeat()
	place.Add("placekt")
	place.Add("placekey").Repeat()
	stratum := keywords.Add("stratum").Attribute().Repeat()
	stratum.Add("stratkt")
	stratum.Add("stratkey").Repeat()
	temporal := keywords.Add("temporal").Attribute().Repeat()
	temporal.Add("tempkt")
	temporal.Add("tempkey").Repeat()

	idinfo.Add("accconst").Attribute()
	idinfo.Add("useconst").Attribute()

	geospatial := data.Add("geospatial")
	spdom := geospatial.Add("spdom").Attribute()
	bounding := spdom.Add("bounding")
	bounding.Add("westbc")
	bounding.Add("eastbc")
	bounding.Add("northbc")
	bounding.Add("southbc")
	dsgpoly := spdom.Add("dsgpoly")
	dsgpoly.Add("ring")
	vertdom := spdom.Add("vertdom")
	vertdom.Add("vertmin")
	vertdom.Add("vertmax")
	geospatial.Add("spattemp").Attribute()

	eainfo := geospatial.Add("eainfo")
	// The dynamic metadata attribute container (Figure 2's detailed
	// element): repeating, recursive, identified by enttypl/enttypds.
	eainfo.Add("detailed").Repeat().DynamicContainer(FGDCDynamicSpec)
	overview := eainfo.Add("overview").Attribute().Repeat()
	overview.Add("eaover")
	overview.Add("eadetcit")

	lineage := data.Add("lineage")
	procstep := lineage.Add("procstep").Attribute().Repeat()
	procstep.Add("procdesc")
	procstep.Add("procdate")

	if err := s.Finalize(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustLEAD returns the LEAD schema or panics; construction is static so
// failure is a programming error.
func MustLEAD() *Schema {
	s, err := LEAD()
	if err != nil {
		panic(err)
	}
	return s
}

// Figure3Document is the metadata document of the paper's Figure 3,
// completed with the idinfo skeleton the figure elides ("..."): two theme
// structural attributes (CF NetCDF keyword groups) and one dynamic
// detailed attribute named grid/ARPS carrying dx, dz, and a
// grid-stretching sub-attribute with dzmin and reference-height.
const Figure3Document = `<LEADresource>
  <resourceID>lead:resource/arps/2006-05-12/0001</resourceID>
  <data>
    <idinfo>
      <keywords>
        <theme>
          <themekt>CF NetCDF</themekt>
          <themekey>convective_precipitation_amount</themekey>
          <themekey>convective_precipitation_flux</themekey>
        </theme>
        <theme>
          <themekt>CF NetCDF</themekt>
          <themekey>air_pressure_at_cloud_base</themekey>
          <themekey>air_pressure_at_cloud_top</themekey>
        </theme>
      </keywords>
    </idinfo>
    <geospatial>
      <eainfo>
        <detailed>
          <enttyp>
            <enttypl>grid</enttypl>
            <enttypds>ARPS</enttypds>
          </enttyp>
          <attr>
            <attrlabl>grid-stretching</attrlabl>
            <attrdefs>ARPS</attrdefs>
            <attr>
              <attrlabl>dzmin</attrlabl>
              <attrdefs>ARPS</attrdefs>
              <attrv>100.000</attrv>
            </attr>
            <attr>
              <attrlabl>reference-height</attrlabl>
              <attrdefs>ARPS</attrdefs>
              <attrv>0</attrv>
            </attr>
          </attr>
          <attr>
            <attrlabl>dx</attrlabl>
            <attrdefs>ARPS</attrdefs>
            <attrv>1000.000</attrv>
          </attr>
          <attr>
            <attrlabl>dz</attrlabl>
            <attrdefs>ARPS</attrdefs>
            <attrv>500.000</attrv>
          </attr>
        </detailed>
      </eainfo>
    </geospatial>
  </data>
</LEADresource>`

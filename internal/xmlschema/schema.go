// Package xmlschema models the grid community schema and the paper's §2
// partitioning of it into metadata attributes: interior concept nodes are
// annotated as metadata attributes, leaves below them are metadata
// elements, and a schema-level global ordering (Figure 2's circled
// numbers) is assigned to every node at or above a metadata attribute.
//
// Finalize enforces the paper's partitioning rules and computes the
// global ordering, the last-child order used for set-based close tags
// (§5), and the ancestor inverted list.
package xmlschema

import (
	"fmt"
	"sort"
	"strings"
)

// DynamicSpec configures how a dynamic metadata attribute container (the
// LEAD schema's "detailed" element, §3) is interpreted: the nested tag
// names that carry the attribute's name and source, and the recursive
// node tag holding sub-attributes and elements.
type DynamicSpec struct {
	EntityTag     string // wrapper of the container's identity (enttyp)
	NameTag       string // container name element (enttypl)
	SourceTag     string // container source element (enttypds)
	NodeTag       string // recursive node tag (attr)
	NodeNameTag   string // node name element (attrlabl)
	NodeSourceTag string // node source element (attrdefs)
	ValueTag      string // leaf value element (attrv)
}

// FGDCDynamicSpec is the LEAD/FGDC "detailed entity" convention used
// throughout the paper's examples.
var FGDCDynamicSpec = DynamicSpec{
	EntityTag:     "enttyp",
	NameTag:       "enttypl",
	SourceTag:     "enttypds",
	NodeTag:       "attr",
	NodeNameTag:   "attrlabl",
	NodeSourceTag: "attrdefs",
	ValueTag:      "attrv",
}

// Node is one element declaration in the schema graph.
type Node struct {
	Tag      string
	Parent   *Node
	Children []*Node

	// Structure flags.
	Repeats   bool // maxOccurs > 1
	HasAttrs  bool // declares XML attribute nodes
	Recursive bool // subtree may recur (a child re-enters this declaration)

	// Partitioning annotations (§2).
	IsAttribute bool // annotated as a metadata attribute
	Queryable   bool // included in the shredded query tables
	IsDynamic   bool // dynamic attribute container (implies IsAttribute)
	Dynamic     DynamicSpec

	// Assigned by Finalize for nodes at or above metadata attributes;
	// zero for nodes inside an attribute subtree.
	Order     int
	LastChild int
	Depth     int
}

// Add appends a child declaration and returns it.
func (n *Node) Add(tag string) *Node {
	c := &Node{Tag: tag, Parent: n}
	n.Children = append(n.Children, c)
	return c
}

// Attribute marks n as a queryable metadata attribute and returns it.
func (n *Node) Attribute() *Node {
	n.IsAttribute = true
	n.Queryable = true
	return n
}

// NonQueryable clears the queryable flag (the attribute is stored as a
// CLOB but not shredded for querying).
func (n *Node) NonQueryable() *Node {
	n.Queryable = false
	return n
}

// Repeat marks the element as allowing multiple instances.
func (n *Node) Repeat() *Node {
	n.Repeats = true
	return n
}

// DynamicContainer marks n as a dynamic metadata attribute container with
// the given interpretation spec.
func (n *Node) DynamicContainer(spec DynamicSpec) *Node {
	n.IsAttribute = true
	n.Queryable = true
	n.IsDynamic = true
	n.Recursive = true
	n.Dynamic = spec
	return n
}

// enclosingAttribute returns the nearest ancestor-or-self annotated as a
// metadata attribute.
func (n *Node) enclosingAttribute() *Node {
	for x := n; x != nil; x = x.Parent {
		if x.IsAttribute {
			return x
		}
	}
	return nil
}

// Schema is a finalized community schema.
type Schema struct {
	Name string
	Root *Node

	// Ordered lists the nodes carrying a global order, by order (1-based;
	// Ordered[0].Order == 1).
	Ordered []*Node
	// Attributes lists the metadata attribute nodes in order.
	Attributes []*Node
	// byTag maps attribute tags to their declarations.
	byTag map[string]*Node
	// ancestors[i] holds the orders of the strict ancestors of
	// Ordered[i-1]; indexed by order.
	ancestors map[int][]int
}

// New builds an unfinalized schema with the given root tag.
func New(name, rootTag string) (*Schema, *Node) {
	root := &Node{Tag: rootTag}
	return &Schema{Name: name, Root: root}, root
}

// Finalize validates the paper's §2 partitioning rules and computes the
// global ordering. It must be called once after construction.
func (s *Schema) Finalize() error {
	if s.Root == nil {
		return fmt.Errorf("xmlschema: %s: no root", s.Name)
	}
	if err := s.validate(); err != nil {
		return err
	}
	// Global ordering: preorder DFS over nodes at or above metadata
	// attributes. Attribute nodes are ordered; their interiors are not
	// (their CLOBs are inherently ordered, §2).
	s.Ordered = nil
	s.Attributes = nil
	s.byTag = make(map[string]*Node)
	order := 0
	var assign func(n *Node, depth int) int // returns max order in subtree
	assign = func(n *Node, depth int) int {
		order++
		n.Order = order
		n.Depth = depth
		last := n.Order
		s.Ordered = append(s.Ordered, n)
		if n.IsAttribute {
			s.Attributes = append(s.Attributes, n)
			// For attribute nodes the last child order equals the node
			// order: the subtree lives inside the CLOB.
			n.LastChild = n.Order
			return last
		}
		for _, c := range n.Children {
			if m := assign(c, depth+1); m > last {
				last = m
			}
		}
		n.LastChild = last
		return last
	}
	assign(s.Root, 0)

	for _, a := range s.Attributes {
		if prev, dup := s.byTag[a.Tag]; dup {
			return fmt.Errorf("xmlschema: %s: metadata attribute tag %q declared at both %s and %s; attribute tags must be unique",
				s.Name, a.Tag, pathOf(prev), pathOf(a))
		}
		s.byTag[a.Tag] = a
	}

	// Ancestor inverted list (§5): order -> orders of strict ancestors.
	s.ancestors = make(map[int][]int, len(s.Ordered))
	for _, n := range s.Ordered {
		anc := make([]int, 0, n.Depth)
		for p := n.Parent; p != nil; p = p.Parent {
			anc = append(anc, p.Order)
		}
		sort.Ints(anc)
		s.ancestors[n.Order] = anc
	}
	return nil
}

// validate enforces the §2 rules.
func (s *Schema) validate() error {
	var firstErr error
	report := func(format string, args ...any) {
		if firstErr == nil {
			firstErr = fmt.Errorf("xmlschema: %s: %s", s.Name, fmt.Sprintf(format, args...))
		}
	}
	var walk func(n *Node, inAttr *Node)
	walk = func(n *Node, inAttr *Node) {
		if n.IsAttribute {
			if inAttr != nil {
				// Attributes may not nest; sub-attributes inside a CLOB are
				// not annotated in the schema (dynamic/recursive regions).
				report("metadata attribute %s is nested inside attribute %s; only one metadata attribute may appear on any root-to-leaf path",
					pathOf(n), pathOf(inAttr))
			}
			inAttr = n
		}
		if n.IsDynamic && !n.IsAttribute {
			report("dynamic container %s must be a metadata attribute", pathOf(n))
		}
		// Rule: multi-instance elements must be contained within (or be) a
		// metadata attribute.
		if n.Repeats && inAttr == nil {
			report("element %s allows multiple instances but is not contained within a metadata attribute", pathOf(n))
		}
		// Rule: elements with XML attribute nodes must be at/within a
		// metadata attribute.
		if n.HasAttrs && inAttr == nil {
			report("element %s declares XML attributes but is not contained within a metadata attribute", pathOf(n))
		}
		// Rule: recursion must be contained within a metadata attribute.
		if n.Recursive && inAttr == nil {
			report("recursive element %s is not contained within a metadata attribute", pathOf(n))
		}
		// Rule: every leaf must be contained within a metadata attribute.
		if len(n.Children) == 0 && !n.Recursive && inAttr == nil {
			report("leaf element %s is not contained within a metadata attribute", pathOf(n))
		}
		for _, c := range n.Children {
			walk(c, inAttr)
		}
	}
	walk(s.Root, nil)
	return firstErr
}

func pathOf(n *Node) string {
	var tags []string
	for x := n; x != nil; x = x.Parent {
		tags = append(tags, x.Tag)
	}
	for i, j := 0, len(tags)-1; i < j; i, j = i+1, j-1 {
		tags[i], tags[j] = tags[j], tags[i]
	}
	return "/" + strings.Join(tags, "/")
}

// AttributeByTag returns the metadata attribute declaration with the given
// tag, or nil.
func (s *Schema) AttributeByTag(tag string) *Node {
	return s.byTag[tag]
}

// NodeByOrder returns the ordered node with the given global order, or
// nil.
func (s *Schema) NodeByOrder(order int) *Node {
	if order < 1 || order > len(s.Ordered) {
		return nil
	}
	return s.Ordered[order-1]
}

// Ancestors returns the global orders of the strict ancestors of the node
// with the given order, ascending. The returned slice must not be
// modified.
func (s *Schema) Ancestors(order int) []int {
	return s.ancestors[order]
}

// ElementsOf returns the metadata element declarations of a structural
// attribute: the leaf tags in its subtree paired with their local order.
// Interior nodes inside the attribute are sub-attribute declarations.
func ElementsOf(attr *Node) []ElementDecl {
	var out []ElementDecl
	var walk func(n *Node, owner string)
	walk = func(n *Node, owner string) {
		for _, c := range n.Children {
			if len(c.Children) == 0 {
				out = append(out, ElementDecl{Tag: c.Tag, Owner: owner, Repeats: c.Repeats})
			} else {
				walk(c, c.Tag)
			}
		}
	}
	if len(attr.Children) == 0 {
		// Attribute that is itself an element (e.g. resourceID).
		out = append(out, ElementDecl{Tag: attr.Tag, Owner: attr.Tag, Repeats: attr.Repeats, Self: true})
		return out
	}
	walk(attr, attr.Tag)
	return out
}

// ElementDecl describes one metadata element (or the leaf identity of an
// attribute that is both attribute and element).
type ElementDecl struct {
	Tag     string
	Owner   string // owning attribute or sub-attribute tag
	Repeats bool
	Self    bool // the attribute is its own element (leaf attribute)
}

// SubAttributesOf returns the interior nodes inside a structural
// attribute's subtree (its sub-attribute declarations), preorder.
func SubAttributesOf(attr *Node) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, c := range n.Children {
			if len(c.Children) > 0 {
				out = append(out, c)
				walk(c)
			}
		}
	}
	walk(attr)
	return out
}

// OrderingTable renders the global ordering as printable rows (order,
// tag, last-child order, depth, attribute marker); used by golden tests
// and the mdcat CLI to reproduce Figure 2.
func (s *Schema) OrderingTable() []string {
	rows := make([]string, 0, len(s.Ordered))
	for _, n := range s.Ordered {
		mark := ""
		switch {
		case n.IsDynamic:
			mark = " [dynamic attribute]"
		case n.IsAttribute && !n.Queryable:
			mark = " [attribute, non-queryable]"
		case n.IsAttribute:
			mark = " [attribute]"
		}
		rows = append(rows, fmt.Sprintf("%2d %s%s%s (last=%d)",
			n.Order, strings.Repeat("  ", n.Depth), n.Tag, mark, n.LastChild))
	}
	return rows
}

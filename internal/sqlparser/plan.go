package sqlparser

import (
	"fmt"
	"strings"

	"github.com/gridmeta/hybridcat/internal/relstore"
)

// Engine executes parsed SQL statements against a relstore database.
type Engine struct {
	DB *relstore.Database
}

// NewEngine wraps db.
func NewEngine(db *relstore.Database) *Engine { return &Engine{DB: db} }

// Exec runs a statement that returns no rows, reporting the number of rows
// affected.
func (e *Engine) Exec(sqlText string, args []relstore.Value) (int64, error) {
	st, err := Parse(sqlText)
	if err != nil {
		return 0, err
	}
	switch s := st.(type) {
	case SelectStmt:
		return 0, fmt.Errorf("sql: Exec of a SELECT; use Query")
	case CreateTableStmt:
		_, err := e.DB.CreateTable(s.Name, colDefs(s.Cols)...)
		return 0, err
	case CreateIndexStmt:
		t := e.DB.Table(s.Table)
		if t == nil {
			return 0, fmt.Errorf("sql: no table %q", s.Table)
		}
		kind := relstore.BTreeIndex
		if s.Using == "HASH" {
			kind = relstore.HashIndex
		}
		_, err := t.CreateIndex(s.Name, kind, s.Unique, s.Cols...)
		return 0, err
	case DropTableStmt:
		return 0, e.DB.DropTable(s.Name)
	case InsertStmt:
		return e.execInsert(s, args)
	case UpdateStmt:
		return e.execUpdate(s, args)
	case DeleteStmt:
		return e.execDelete(s, args)
	}
	return 0, fmt.Errorf("sql: unsupported statement %T", st)
}

// Query runs a SELECT and returns its row stream.
func (e *Engine) Query(sqlText string, args []relstore.Value) (relstore.Iterator, error) {
	st, err := Parse(sqlText)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: Query of a non-SELECT; use Exec")
	}
	return e.planSelect(sel, args)
}

// NumParams reports how many ? placeholders the statement carries.
func NumParams(sqlText string) (int, error) {
	toks, err := Lex(sqlText)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, t := range toks {
		if t.Kind == TParam {
			n++
		}
	}
	return n, nil
}

// IsQuery reports whether the statement is a SELECT.
func IsQuery(sqlText string) bool {
	toks, err := Lex(sqlText)
	if err != nil || len(toks) == 0 {
		return false
	}
	return toks[0].Kind == TKeyword && toks[0].Text == "SELECT"
}

func colDefs(defs []ColDef) []relstore.Column {
	cols := make([]relstore.Column, len(defs))
	for i, d := range defs {
		cols[i] = relstore.Column{Name: d.Name, Type: d.Type, NotNull: d.NotNull}
	}
	return cols
}

func (e *Engine) execInsert(s InsertStmt, args []relstore.Value) (int64, error) {
	t := e.DB.Table(s.Table)
	if t == nil {
		return 0, fmt.Errorf("sql: no table %q", s.Table)
	}
	schema := t.Schema
	cols := s.Cols
	if cols == nil {
		cols = make([]string, len(schema.Columns))
		for i, c := range schema.Columns {
			cols[i] = c.Name
		}
	}
	idx, err := schema.ColIndexes(cols...)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(cols) {
			return n, fmt.Errorf("sql: INSERT row has %d values, want %d", len(exprRow), len(cols))
		}
		row := make(relstore.Row, len(schema.Columns))
		for i, ex := range exprRow {
			ce, err := compileExpr(ex, emptyEnv, args)
			if err != nil {
				return n, err
			}
			row[idx[i]] = ce.Eval(nil)
		}
		if _, err := t.Insert(row); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func (e *Engine) execUpdate(s UpdateStmt, args []relstore.Value) (int64, error) {
	t := e.DB.Table(s.Table)
	if t == nil {
		return 0, fmt.Errorf("sql: no table %q", s.Table)
	}
	env := envOfTable(t, s.Table, "")
	pred, err := compileOptionalPred(s.Where, env, args)
	if err != nil {
		return 0, err
	}
	type change struct {
		id  int64
		row relstore.Row
	}
	var sets []struct {
		col int
		ex  relstore.Expr
	}
	for _, sc := range s.Set {
		ci := t.Schema.ColIndex(sc.Col)
		if ci < 0 {
			return 0, fmt.Errorf("sql: no column %q in %q", sc.Col, s.Table)
		}
		ce, err := compileExpr(sc.Expr, env, args)
		if err != nil {
			return 0, err
		}
		sets = append(sets, struct {
			col int
			ex  relstore.Expr
		}{ci, ce})
	}
	var changes []change
	t.Scan(func(id int64, r relstore.Row) bool {
		if pred(r) {
			nr := relstore.CloneRow(r)
			for _, sc := range sets {
				nr[sc.col] = sc.ex.Eval(r)
			}
			changes = append(changes, change{id, nr})
		}
		return true
	})
	for _, c := range changes {
		if err := t.Update(c.id, c.row); err != nil {
			return 0, err
		}
	}
	return int64(len(changes)), nil
}

func (e *Engine) execDelete(s DeleteStmt, args []relstore.Value) (int64, error) {
	t := e.DB.Table(s.Table)
	if t == nil {
		return 0, fmt.Errorf("sql: no table %q", s.Table)
	}
	env := envOfTable(t, s.Table, "")
	pred, err := compileOptionalPred(s.Where, env, args)
	if err != nil {
		return 0, err
	}
	var ids []int64
	t.Scan(func(id int64, r relstore.Row) bool {
		if pred(r) {
			ids = append(ids, id)
		}
		return true
	})
	for _, id := range ids {
		t.Delete(id)
	}
	return int64(len(ids)), nil
}

// env maps qualified column names to positions in the current row layout.
type env struct {
	cols []envCol
}

type envCol struct {
	qual string // alias or table name, "" for synthetic
	name string
}

var emptyEnv = &env{}

func envOfTable(t *relstore.Table, table, alias string) *env {
	q := table
	if alias != "" {
		q = alias
	}
	en := &env{}
	for _, c := range t.Schema.Columns {
		en.cols = append(en.cols, envCol{qual: q, name: c.Name})
	}
	return en
}

func (en *env) concat(other *env) *env {
	out := &env{cols: make([]envCol, 0, len(en.cols)+len(other.cols))}
	out.cols = append(out.cols, en.cols...)
	out.cols = append(out.cols, other.cols...)
	return out
}

// resolve finds the position of a (possibly qualified) column.
func (en *env) resolve(qual, name string) (int, error) {
	found := -1
	for i, c := range en.cols {
		if c.name != name {
			continue
		}
		if qual != "" && c.qual != qual {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column %q", name)
		}
		found = i
	}
	if found < 0 {
		if qual != "" {
			return 0, fmt.Errorf("sql: unknown column %s.%s", qual, name)
		}
		return 0, fmt.Errorf("sql: unknown column %q", name)
	}
	return found, nil
}

func (en *env) names() []string {
	out := make([]string, len(en.cols))
	for i, c := range en.cols {
		out[i] = c.name
	}
	return out
}

// compileExpr lowers an AST expression onto the row layout described by
// env. Aggregate calls are rejected; the SELECT planner replaces them
// before projection compilation.
func compileExpr(ex Expr, en *env, args []relstore.Value) (relstore.Expr, error) {
	switch x := ex.(type) {
	case EIdent:
		i, err := en.resolve(x.Qual, x.Name)
		if err != nil {
			return nil, err
		}
		return relstore.ColRef{Idx: i, Name: x.Name}, nil
	case ELit:
		return relstore.Const{V: x.V}, nil
	case EParam:
		if x.Idx >= len(args) {
			return nil, fmt.Errorf("sql: statement has parameter %d but only %d arguments bound", x.Idx+1, len(args))
		}
		return relstore.Const{V: args[x.Idx]}, nil
	case EBin:
		switch x.Op {
		case "AND", "OR":
			l, err := compileExpr(x.L, en, args)
			if err != nil {
				return nil, err
			}
			r, err := compileExpr(x.R, en, args)
			if err != nil {
				return nil, err
			}
			op := relstore.OpAnd
			if x.Op == "OR" {
				op = relstore.OpOr
			}
			return relstore.Logic{Op: op, Args: []relstore.Expr{l, r}}, nil
		case "=", "==", "<>", "!=", "<", "<=", ">", ">=":
			l, err := compileExpr(x.L, en, args)
			if err != nil {
				return nil, err
			}
			r, err := compileExpr(x.R, en, args)
			if err != nil {
				return nil, err
			}
			op, err := relstore.ParseCmpOp(x.Op)
			if err != nil {
				return nil, err
			}
			return relstore.Cmp{Op: op, L: l, R: r}, nil
		case "+", "-", "*", "/", "%":
			l, err := compileExpr(x.L, en, args)
			if err != nil {
				return nil, err
			}
			r, err := compileExpr(x.R, en, args)
			if err != nil {
				return nil, err
			}
			var op relstore.ArithOp
			switch x.Op {
			case "+":
				op = relstore.OpAdd
			case "-":
				op = relstore.OpSub
			case "*":
				op = relstore.OpMul
			case "/":
				op = relstore.OpDiv
			case "%":
				op = relstore.OpMod
			}
			return relstore.Arith{Op: op, L: l, R: r}, nil
		}
		return nil, fmt.Errorf("sql: unsupported operator %q", x.Op)
	case EUnary:
		inner, err := compileExpr(x.X, en, args)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			return relstore.Logic{Op: relstore.OpNot, Args: []relstore.Expr{inner}}, nil
		case "-":
			return relstore.Arith{Op: relstore.OpSub, L: relstore.Const{V: relstore.Int(0)}, R: inner}, nil
		}
		return nil, fmt.Errorf("sql: unsupported unary operator %q", x.Op)
	case ECall:
		if aggFuncs[x.Name] {
			return nil, fmt.Errorf("sql: aggregate %s not allowed here", x.Name)
		}
		fargs := make([]relstore.Expr, len(x.Args))
		for i, a := range x.Args {
			ca, err := compileExpr(a, en, args)
			if err != nil {
				return nil, err
			}
			fargs[i] = ca
		}
		return relstore.FuncExpr{Name: x.Name, Args: fargs}, nil
	case EIsNull:
		inner, err := compileExpr(x.X, en, args)
		if err != nil {
			return nil, err
		}
		return relstore.IsNullExpr{Arg: inner, Neg: x.Neg}, nil
	case ELike:
		inner, err := compileExpr(x.X, en, args)
		if err != nil {
			return nil, err
		}
		pat, err := compileExpr(x.Pattern, en, args)
		if err != nil {
			return nil, err
		}
		pc, ok := pat.(relstore.Const)
		if !ok {
			return nil, fmt.Errorf("sql: LIKE pattern must be a literal or parameter")
		}
		var like relstore.Expr = relstore.LikeExpr{Arg: inner, Pattern: pc.V.AsString()}
		if x.Neg {
			like = relstore.Logic{Op: relstore.OpNot, Args: []relstore.Expr{like}}
		}
		return like, nil
	case EIn:
		inner, err := compileExpr(x.X, en, args)
		if err != nil {
			return nil, err
		}
		ors := make([]relstore.Expr, 0, len(x.List))
		for _, item := range x.List {
			ci, err := compileExpr(item, en, args)
			if err != nil {
				return nil, err
			}
			ors = append(ors, relstore.Cmp{Op: relstore.OpEq, L: inner, R: ci})
		}
		var in relstore.Expr = relstore.Logic{Op: relstore.OpOr, Args: ors}
		if x.Neg {
			in = relstore.Logic{Op: relstore.OpNot, Args: []relstore.Expr{in}}
		}
		return in, nil
	case EBetween:
		inner, err := compileExpr(x.X, en, args)
		if err != nil {
			return nil, err
		}
		lo, err := compileExpr(x.Lo, en, args)
		if err != nil {
			return nil, err
		}
		hi, err := compileExpr(x.Hi, en, args)
		if err != nil {
			return nil, err
		}
		var btw relstore.Expr = relstore.Logic{Op: relstore.OpAnd, Args: []relstore.Expr{
			relstore.Cmp{Op: relstore.OpGe, L: inner, R: lo},
			relstore.Cmp{Op: relstore.OpLe, L: inner, R: hi},
		}}
		if x.Neg {
			btw = relstore.Logic{Op: relstore.OpNot, Args: []relstore.Expr{btw}}
		}
		return btw, nil
	}
	return nil, fmt.Errorf("sql: unsupported expression %T", ex)
}

func compileOptionalPred(ex Expr, en *env, args []relstore.Value) (func(relstore.Row) bool, error) {
	if ex == nil {
		return func(relstore.Row) bool { return true }, nil
	}
	ce, err := compileExpr(ex, en, args)
	if err != nil {
		return nil, err
	}
	return relstore.PredOf(ce), nil
}

// exprIter lazily evaluates a projection list.
type exprIter struct {
	in    relstore.Iterator
	exprs []relstore.Expr
	cols  []string
}

func (e *exprIter) Columns() []string { return e.cols }

func (e *exprIter) Next() (relstore.Row, bool) {
	r, ok := e.in.Next()
	if !ok {
		return nil, false
	}
	out := make(relstore.Row, len(e.exprs))
	for i, ex := range e.exprs {
		out[i] = ex.Eval(r)
	}
	return out, true
}

// planSelect lowers a SELECT onto the relstore executor. For single-table
// queries the planner replaces the scan with an index probe when a WHERE
// conjunct covers an index (equality on any index; range on a B-tree's
// first column); residual conjuncts filter the probe.
func (e *Engine) planSelect(s SelectStmt, args []relstore.Value) (relstore.Iterator, error) {
	if len(s.From) == 1 && len(s.Joins) == 0 && s.Where != nil {
		if probed, residual, used, err := e.tryIndexScanPlan(s.From[0], s.Where, args); err != nil {
			return nil, err
		} else if used != "" {
			s.Where = residual
			return e.planSelectFromIter(s, probed, args)
		}
	}
	it, en, err := e.planFrom(s, args)
	if err != nil {
		return nil, err
	}
	return e.finishSelect(s, it, en, args)
}

// planSelectFromIter continues planning with a pre-built base iterator
// for the single FROM table.
func (e *Engine) planSelectFromIter(s SelectStmt, it relstore.Iterator, args []relstore.Value) (relstore.Iterator, error) {
	t := e.DB.Table(s.From[0].Table)
	en := envOfTable(t, s.From[0].Table, s.From[0].Alias)
	return e.finishSelect(s, it, en, args)
}

// finishSelect applies WHERE, aggregation, projection, DISTINCT, ORDER
// BY, and LIMIT to a base iterator.
func (e *Engine) finishSelect(s SelectStmt, it relstore.Iterator, en *env, args []relstore.Value) (relstore.Iterator, error) {
	var err error
	if s.Where != nil {
		pred, err := compileOptionalPred(s.Where, en, args)
		if err != nil {
			return nil, err
		}
		it = relstore.Filter(it, pred)
	}

	needAgg := len(s.GroupBy) > 0 || s.Having != nil
	for _, item := range s.Items {
		if !item.Star && HasAggregate(item.Expr) {
			needAgg = true
		}
	}
	if needAgg {
		it, en, err = planAggregate(it, en, s, args)
		if err != nil {
			return nil, err
		}
		if s.Having != nil {
			s.Having = rewriteAggs(s.Having)
			pred, err := compileOptionalPred(s.Having, en, args)
			if err != nil {
				return nil, err
			}
			it = relstore.Filter(it, pred)
		}
	}

	// Projection.
	var exprs []relstore.Expr
	var names []string
	for _, item := range s.Items {
		if item.Star {
			for i, c := range en.cols {
				exprs = append(exprs, relstore.ColRef{Idx: i, Name: c.name})
				names = append(names, c.name)
			}
			continue
		}
		ce, err := compileExpr(item.Expr, en, args)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, ce)
		name := item.As
		if name == "" {
			if id, ok := item.Expr.(EIdent); ok {
				name = id.Name
			} else {
				name = ce.String()
			}
		}
		names = append(names, name)
	}
	it = &exprIter{in: it, exprs: exprs, cols: names}

	if s.Distinct {
		it = relstore.Distinct(it)
	}
	if len(s.OrderBy) > 0 {
		specs, err := orderSpecs(s.OrderBy, names)
		if err != nil {
			return nil, err
		}
		it = relstore.Sort(it, specs...)
	}
	if s.Limit != nil {
		n, err := constInt(s.Limit, args)
		if err != nil {
			return nil, fmt.Errorf("sql: LIMIT: %w", err)
		}
		var off int64
		if s.Offset != nil {
			off, err = constInt(s.Offset, args)
			if err != nil {
				return nil, fmt.Errorf("sql: OFFSET: %w", err)
			}
		}
		it = relstore.Limit(it, off, n)
	}
	return it, nil
}

func constInt(ex Expr, args []relstore.Value) (int64, error) {
	ce, err := compileExpr(ex, emptyEnv, args)
	if err != nil {
		return 0, err
	}
	v := ce.Eval(nil)
	i, ok := v.AsInt()
	if !ok {
		return 0, fmt.Errorf("expected integer, got %s", v)
	}
	return i, nil
}

func orderSpecs(items []OrderItem, outNames []string) ([]relstore.SortSpec, error) {
	specs := make([]relstore.SortSpec, len(items))
	for i, it := range items {
		switch x := it.Expr.(type) {
		case ELit:
			pos, ok := x.V.AsInt()
			if !ok || pos < 1 || int(pos) > len(outNames) {
				return nil, fmt.Errorf("sql: ORDER BY position %s out of range", x.V)
			}
			specs[i] = relstore.SortSpec{Col: int(pos) - 1, Desc: it.Desc}
		case EIdent:
			found := -1
			for j, n := range outNames {
				if n == x.Name {
					found = j
					break
				}
			}
			if found < 0 {
				return nil, fmt.Errorf("sql: ORDER BY references %q, which is not an output column", x.Name)
			}
			specs[i] = relstore.SortSpec{Col: found, Desc: it.Desc}
		default:
			return nil, fmt.Errorf("sql: ORDER BY supports output columns and positions only")
		}
	}
	return specs, nil
}

// Explain describes how a SELECT's base access path would execute:
// which index (if any) serves the WHERE clause and what remains as a
// filter. It plans without executing row retrieval beyond the probe.
func (e *Engine) Explain(sqlText string, args []relstore.Value) (string, error) {
	st, err := Parse(sqlText)
	if err != nil {
		return "", err
	}
	sel, ok := st.(SelectStmt)
	if !ok {
		return "", fmt.Errorf("sql: EXPLAIN supports SELECT only")
	}
	if len(sel.From) != 1 || len(sel.Joins) > 0 {
		return fmt.Sprintf("scan %s with joins (%d join(s), %d extra table(s)); WHERE on the filter path",
			sel.From[0].Table, len(sel.Joins), len(sel.From)-1), nil
	}
	if sel.Where == nil {
		return fmt.Sprintf("table scan %s (no WHERE)", sel.From[0].Table), nil
	}
	_, residual, used, err := e.tryIndexScanPlan(sel.From[0], sel.Where, args)
	if err != nil {
		return "", err
	}
	if used == "" {
		return fmt.Sprintf("table scan %s; WHERE on the filter path", sel.From[0].Table), nil
	}
	desc := fmt.Sprintf("index probe %s on %s", used, sel.From[0].Table)
	if residual != nil {
		desc += "; residual filter applied"
	}
	return desc, nil
}

// tryIndexScanPlan attempts to serve a single-table WHERE through one of
// the table's indexes. It returns the probe iterator, the residual WHERE
// expression (nil when fully consumed), and the name of the index used
// ("" when none applied).
func (e *Engine) tryIndexScanPlan(ref TableRef, where Expr, args []relstore.Value) (relstore.Iterator, Expr, string, error) {
	t := e.DB.Table(ref.Table)
	if t == nil {
		return nil, nil, "", fmt.Errorf("sql: no table %q", ref.Table)
	}
	en := envOfTable(t, ref.Table, ref.Alias)
	conjuncts := splitAnd(where)

	// Classify conjuncts: col-vs-constant comparisons keyed by column.
	type bound struct {
		op   string
		val  relstore.Value
		conj int // index into conjuncts
	}
	byCol := map[string][]bound{}
	for i, cj := range conjuncts {
		b, ok := cj.(EBin)
		if !ok {
			continue
		}
		col, val, op, ok := colConstCompare(b, en, args)
		if !ok {
			continue
		}
		byCol[col] = append(byCol[col], bound{op: op, val: val, conj: i})
	}
	if len(byCol) == 0 {
		return nil, nil, "", nil
	}

	colName := func(pos int) string { return t.Schema.Columns[pos].Name }
	used := map[int]bool{}
	var rowIDs []int64
	usedIndex := ""

	// Preference 1: full equality cover of any index.
	for _, ix := range t.Indexes() {
		vals := make([]relstore.Value, 0, len(ix.Cols))
		marks := make([]int, 0, len(ix.Cols))
		covered := true
		for _, pos := range ix.Cols {
			eq := -1
			for _, b := range byCol[colName(pos)] {
				if b.op == "=" {
					eq = b.conj
					vals = append(vals, b.val)
					break
				}
			}
			if eq < 0 {
				covered = false
				break
			}
			marks = append(marks, eq)
		}
		if !covered {
			continue
		}
		ids, err := t.LookupEqual(ix.Name, vals...)
		if err != nil {
			return nil, nil, "", err
		}
		rowIDs = ids
		for _, m := range marks {
			used[m] = true
		}
		usedIndex = ix.Name
		break
	}

	// Preference 2: range on a B-tree index's first column.
	if usedIndex == "" {
		for _, ix := range t.Indexes() {
			if ix.Kind != relstore.BTreeIndex {
				continue
			}
			bounds := byCol[colName(ix.Cols[0])]
			if len(bounds) == 0 {
				continue
			}
			var lo, hi relstore.RangeBound
			var marks []int
			for _, b := range bounds {
				switch b.op {
				case ">", ">=":
					lo = relstore.RangeBound{Vals: []relstore.Value{b.val}, Inclusive: b.op == ">=", Set: true}
					marks = append(marks, b.conj)
				case "<", "<=":
					hi = relstore.RangeBound{Vals: []relstore.Value{b.val}, Inclusive: b.op == "<=", Set: true}
					marks = append(marks, b.conj)
				case "=":
					lo = relstore.RangeBound{Vals: []relstore.Value{b.val}, Inclusive: true, Set: true}
					hi = lo
					marks = append(marks, b.conj)
				}
			}
			if !lo.Set && !hi.Set {
				continue
			}
			ids, err := t.LookupRange(ix.Name, lo, hi)
			if err != nil {
				return nil, nil, "", err
			}
			rowIDs = ids
			for _, m := range marks {
				used[m] = true
			}
			usedIndex = ix.Name
			break
		}
	}
	if usedIndex == "" {
		return nil, nil, "", nil
	}

	var residual Expr
	for i, cj := range conjuncts {
		if used[i] {
			continue
		}
		if residual == nil {
			residual = cj
		} else {
			residual = EBin{Op: "AND", L: residual, R: cj}
		}
	}
	return relstore.ScanRowIDs(t, rowIDs), residual, usedIndex, nil
}

// colConstCompare matches a conjunct of the form col OP const (either
// side), resolving the column against the single-table env and folding
// the constant.
func colConstCompare(b EBin, en *env, args []relstore.Value) (col string, val relstore.Value, op string, ok bool) {
	flip := map[string]string{"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "==": "="}
	if _, known := flip[b.Op]; !known {
		return "", relstore.Value{}, "", false
	}
	constOf := func(ex Expr) (relstore.Value, bool) {
		switch x := ex.(type) {
		case ELit:
			// NULL never compares equal in SQL; keep such conjuncts on
			// the filter path.
			return x.V, !x.V.IsNull()
		case EParam:
			if x.Idx < len(args) {
				return args[x.Idx], !args[x.Idx].IsNull()
			}
		}
		return relstore.Value{}, false
	}
	if id, isID := b.L.(EIdent); isID {
		if _, err := en.resolve(id.Qual, id.Name); err == nil {
			if v, isConst := constOf(b.R); isConst {
				o := b.Op
				if o == "==" {
					o = "="
				}
				return id.Name, v, o, true
			}
		}
	}
	if id, isID := b.R.(EIdent); isID {
		if _, err := en.resolve(id.Qual, id.Name); err == nil {
			if v, isConst := constOf(b.L); isConst {
				return id.Name, v, flip[b.Op], true
			}
		}
	}
	return "", relstore.Value{}, "", false
}

// planFrom builds the join tree and the environment describing its output
// row layout.
func (e *Engine) planFrom(s SelectStmt, args []relstore.Value) (relstore.Iterator, *env, error) {
	if len(s.From) == 0 {
		return nil, nil, fmt.Errorf("sql: SELECT requires FROM")
	}
	it, en, err := e.scanRef(s.From[0])
	if err != nil {
		return nil, nil, err
	}
	// Cross-join additional FROM tables.
	for _, ref := range s.From[1:] {
		rit, ren, err := e.scanRef(ref)
		if err != nil {
			return nil, nil, err
		}
		it = relstore.HashJoin(it, rit, nil, nil, relstore.InnerJoin)
		en = en.concat(ren)
	}
	// JOIN chain.
	for _, jc := range s.Joins {
		rit, ren, err := e.scanRef(jc.Table)
		if err != nil {
			return nil, nil, err
		}
		leftKeys, rightKeys, residual, err := splitJoinOn(jc.On, en, ren)
		if err != nil {
			return nil, nil, err
		}
		joined := en.concat(ren)
		kind := relstore.InnerJoin
		if jc.Left {
			kind = relstore.LeftJoin
			if residual != nil {
				return nil, nil, fmt.Errorf("sql: LEFT JOIN supports equality conditions only")
			}
		}
		it = relstore.HashJoin(it, rit, leftKeys, rightKeys, kind)
		en = joined
		if residual != nil {
			pred, err := compileOptionalPred(residual, en, args)
			if err != nil {
				return nil, nil, err
			}
			it = relstore.Filter(it, pred)
		}
	}
	return it, en, nil
}

func (e *Engine) scanRef(ref TableRef) (relstore.Iterator, *env, error) {
	t := e.DB.Table(ref.Table)
	if t == nil {
		return nil, nil, fmt.Errorf("sql: no table %q", ref.Table)
	}
	return relstore.ScanTable(t), envOfTable(t, ref.Table, ref.Alias), nil
}

// splitJoinOn extracts equi-join key pairs from an ON expression. AND
// conjuncts of the form left.col = right.col become hash keys; everything
// else is returned as a residual filter over the joined layout.
func splitJoinOn(on Expr, left, right *env) (leftKeys, rightKeys []int, residual Expr, err error) {
	conjuncts := splitAnd(on)
	for _, c := range conjuncts {
		b, ok := c.(EBin)
		if ok && (b.Op == "=" || b.Op == "==") {
			li, ri, ok2 := sideIndexes(b.L, b.R, left, right)
			if ok2 {
				leftKeys = append(leftKeys, li)
				rightKeys = append(rightKeys, ri)
				continue
			}
		}
		if residual == nil {
			residual = c
		} else {
			residual = EBin{Op: "AND", L: residual, R: c}
		}
	}
	if len(leftKeys) == 0 && residual == nil {
		return nil, nil, nil, fmt.Errorf("sql: JOIN requires an ON condition")
	}
	return leftKeys, rightKeys, residual, nil
}

func splitAnd(e Expr) []Expr {
	if b, ok := e.(EBin); ok && b.Op == "AND" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []Expr{e}
}

// sideIndexes resolves a = b where one side is a left column and the other
// a right column. The returned right index is relative to the right env.
func sideIndexes(a, b Expr, left, right *env) (li, ri int, ok bool) {
	ai, aok := a.(EIdent)
	bi, bok := b.(EIdent)
	if !aok || !bok {
		return 0, 0, false
	}
	if l, err := left.resolve(ai.Qual, ai.Name); err == nil {
		if r, err2 := right.resolve(bi.Qual, bi.Name); err2 == nil {
			return l, r, true
		}
		return 0, 0, false
	}
	if l, err := left.resolve(bi.Qual, bi.Name); err == nil {
		if r, err2 := right.resolve(ai.Qual, ai.Name); err2 == nil {
			return l, r, true
		}
	}
	return 0, 0, false
}

// planAggregate rewrites the pipeline for GROUP BY/aggregates: it projects
// an extended row carrying group keys and aggregate arguments, applies
// relstore.GroupBy, and returns an environment where group keys keep their
// names and each aggregate call is addressable by its canonical spelling.
func planAggregate(it relstore.Iterator, en *env, s SelectStmt, args []relstore.Value) (relstore.Iterator, *env, error) {
	// Collect aggregate calls from select items and HAVING, deduplicated
	// by canonical spelling.
	var calls []ECall
	callPos := map[string]int{}
	collect := func(ex Expr) {
		walkAggregates(ex, func(c ECall) {
			k := canonCall(c)
			if _, dup := callPos[k]; !dup {
				callPos[k] = len(calls)
				calls = append(calls, c)
			}
		})
	}
	for _, item := range s.Items {
		if !item.Star {
			collect(item.Expr)
		}
	}
	if s.Having != nil {
		collect(s.Having)
	}

	// Extended row: group keys first, then one argument column per call.
	var extExprs []relstore.Expr
	var extNames []envCol
	keyIdx := make([]int, len(s.GroupBy))
	for i, g := range s.GroupBy {
		ce, err := compileExpr(g, en, args)
		if err != nil {
			return nil, nil, err
		}
		keyIdx[i] = len(extExprs)
		name := ce.String()
		qual := ""
		if id, ok := g.(EIdent); ok {
			name, qual = id.Name, id.Qual
		}
		extExprs = append(extExprs, ce)
		extNames = append(extNames, envCol{qual: qual, name: name})
	}
	aggSpecs := make([]relstore.AggSpec, len(calls))
	for i, c := range calls {
		spec := relstore.AggSpec{Name: canonCall(c)}
		switch {
		case c.Star:
			spec.Func = relstore.AggCount
			spec.Col = 0
		default:
			if len(c.Args) != 1 {
				return nil, nil, fmt.Errorf("sql: %s expects one argument", c.Name)
			}
			ce, err := compileExpr(c.Args[0], en, args)
			if err != nil {
				return nil, nil, err
			}
			spec.Col = len(extExprs)
			extExprs = append(extExprs, ce)
			extNames = append(extNames, envCol{name: spec.Name})
			switch c.Name {
			case "COUNT":
				if c.Distinct {
					spec.Func = relstore.AggCountDistinct
				} else {
					spec.Func = relstore.AggCountCol
				}
			case "SUM":
				spec.Func = relstore.AggSum
			case "MIN":
				spec.Func = relstore.AggMin
			case "MAX":
				spec.Func = relstore.AggMax
			case "AVG":
				spec.Func = relstore.AggAvg
			default:
				return nil, nil, fmt.Errorf("sql: unknown aggregate %s", c.Name)
			}
			if c.Distinct && c.Name != "COUNT" {
				return nil, nil, fmt.Errorf("sql: DISTINCT is supported in COUNT only")
			}
		}
		aggSpecs[i] = spec
	}

	extCols := make([]string, len(extNames))
	for i, c := range extNames {
		extCols[i] = c.name
	}
	ext := &exprIter{in: it, exprs: extExprs, cols: extCols}
	grouped := relstore.GroupBy(ext, keyIdx, aggSpecs)

	// Output env: group keys (original names) then aggregate results named
	// by canonical spelling, which compileExpr resolves via rewriting.
	outEnv := &env{}
	for _, i := range keyIdx {
		outEnv.cols = append(outEnv.cols, extNames[i])
	}
	for _, spec := range aggSpecs {
		outEnv.cols = append(outEnv.cols, envCol{name: spec.Name})
	}

	// Rewrite select items and HAVING so aggregate calls become EIdent
	// references to the grouped output.
	for i := range s.Items {
		if !s.Items[i].Star {
			s.Items[i].Expr = rewriteAggs(s.Items[i].Expr)
		}
	}
	return grouped, outEnv, nil
}

func walkAggregates(e Expr, fn func(ECall)) {
	switch x := e.(type) {
	case ECall:
		if aggFuncs[x.Name] {
			fn(x)
			return
		}
		for _, a := range x.Args {
			walkAggregates(a, fn)
		}
	case EBin:
		walkAggregates(x.L, fn)
		walkAggregates(x.R, fn)
	case EUnary:
		walkAggregates(x.X, fn)
	case EIsNull:
		walkAggregates(x.X, fn)
	case ELike:
		walkAggregates(x.X, fn)
	case EIn:
		walkAggregates(x.X, fn)
		for _, a := range x.List {
			walkAggregates(a, fn)
		}
	case EBetween:
		walkAggregates(x.X, fn)
		walkAggregates(x.Lo, fn)
		walkAggregates(x.Hi, fn)
	}
}

// rewriteAggs replaces aggregate calls with identifiers naming the grouped
// output column.
func rewriteAggs(e Expr) Expr {
	switch x := e.(type) {
	case ECall:
		if aggFuncs[x.Name] {
			return EIdent{Name: canonCall(x)}
		}
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = rewriteAggs(a)
		}
		return ECall{Name: x.Name, Args: args}
	case EBin:
		return EBin{Op: x.Op, L: rewriteAggs(x.L), R: rewriteAggs(x.R)}
	case EUnary:
		return EUnary{Op: x.Op, X: rewriteAggs(x.X)}
	case EIsNull:
		return EIsNull{X: rewriteAggs(x.X), Neg: x.Neg}
	case ELike:
		return ELike{X: rewriteAggs(x.X), Pattern: x.Pattern, Neg: x.Neg}
	case EIn:
		list := make([]Expr, len(x.List))
		for i, a := range x.List {
			list[i] = rewriteAggs(a)
		}
		return EIn{X: rewriteAggs(x.X), List: list, Neg: x.Neg}
	case EBetween:
		return EBetween{X: rewriteAggs(x.X), Lo: rewriteAggs(x.Lo), Hi: rewriteAggs(x.Hi), Neg: x.Neg}
	}
	return e
}

// canonCall renders an aggregate call canonically, e.g. COUNT(*),
// COUNT(DISTINCT a.b), SUM(x).
func canonCall(c ECall) string {
	if c.Star {
		return c.Name + "(*)"
	}
	var parts []string
	for _, a := range c.Args {
		parts = append(parts, canonExpr(a))
	}
	inner := strings.Join(parts, ", ")
	if c.Distinct {
		inner = "DISTINCT " + inner
	}
	return c.Name + "(" + inner + ")"
}

func canonExpr(e Expr) string {
	switch x := e.(type) {
	case EIdent:
		if x.Qual != "" {
			return x.Qual + "." + x.Name
		}
		return x.Name
	case ELit:
		return x.V.String()
	case EBin:
		return "(" + canonExpr(x.L) + " " + x.Op + " " + canonExpr(x.R) + ")"
	case EUnary:
		return "(" + x.Op + " " + canonExpr(x.X) + ")"
	case ECall:
		return canonCall(x)
	case EParam:
		return fmt.Sprintf("?%d", x.Idx)
	}
	return fmt.Sprintf("%T", e)
}

package sqlparser

import (
	"testing"

	"github.com/gridmeta/hybridcat/internal/relstore"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, 'it''s', 3.5, ? FROM t -- comment\nWHERE x >= 2")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	want := []string{"SELECT", "a", ",", "it's", ",", "3.5", ",", "?", "FROM", "t", "WHERE", "x", ">=", "2", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[3] != TString || kinds[7] != TParam || kinds[12] != TOp {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestLexQuotedIdentAndErrors(t *testing.T) {
	toks, err := Lex(`SELECT "Select" FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TIdent || toks[1].Text != "Select" {
		t.Errorf("quoted ident = %v", toks[1])
	}
	if _, err := Lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex("SELECT a # b"); err == nil {
		t.Error("bad character should fail")
	}
}

func TestParseCreateTable(t *testing.T) {
	st, err := Parse("CREATE TABLE t (id BIGINT NOT NULL, name VARCHAR(40), score DOUBLE, data BLOB, ok BOOLEAN)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(CreateTableStmt)
	if ct.Name != "t" || len(ct.Cols) != 5 {
		t.Fatalf("parsed %+v", ct)
	}
	if !ct.Cols[0].NotNull || ct.Cols[0].Type != relstore.KInt {
		t.Errorf("col0 = %+v", ct.Cols[0])
	}
	if ct.Cols[1].Type != relstore.KString || ct.Cols[2].Type != relstore.KFloat ||
		ct.Cols[3].Type != relstore.KBytes || ct.Cols[4].Type != relstore.KBool {
		t.Errorf("types wrong: %+v", ct.Cols)
	}
}

func TestParseCreateIndex(t *testing.T) {
	st, err := Parse("CREATE UNIQUE INDEX pk ON t (a, b) USING HASH")
	if err != nil {
		t.Fatal(err)
	}
	ci := st.(CreateIndexStmt)
	if !ci.Unique || ci.Table != "t" || len(ci.Cols) != 2 || ci.Using != "HASH" {
		t.Errorf("parsed %+v", ci)
	}
	st, _ = Parse("CREATE INDEX i ON t (a)")
	if ci := st.(CreateIndexStmt); ci.Using != "BTREE" || ci.Unique {
		t.Errorf("defaults wrong: %+v", ci)
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (?, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(InsertStmt)
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Cols) != 2 {
		t.Fatalf("parsed %+v", ins)
	}
	if p, ok := ins.Rows[1][0].(EParam); !ok || p.Idx != 0 {
		t.Errorf("param = %+v", ins.Rows[1][0])
	}
}

func TestParseSelectFull(t *testing.T) {
	st, err := Parse(`SELECT a.x AS ax, COUNT(*) n FROM t1 a
		JOIN t2 b ON a.id = b.id AND b.flag = 1
		LEFT JOIN t3 c ON b.id = c.id
		WHERE a.x > 10 AND b.name LIKE 'w%'
		GROUP BY a.x HAVING COUNT(*) >= 2
		ORDER BY n DESC, 1 ASC LIMIT 5 OFFSET 2`)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(SelectStmt)
	if len(sel.Items) != 2 || sel.Items[0].As != "ax" || sel.Items[1].As != "n" {
		t.Errorf("items = %+v", sel.Items)
	}
	if len(sel.Joins) != 2 || !sel.Joins[1].Left || sel.Joins[0].Table.Alias != "b" {
		t.Errorf("joins = %+v", sel.Joins)
	}
	if sel.Where == nil || len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("missing clauses")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order = %+v", sel.OrderBy)
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Error("limit/offset missing")
	}
}

func TestParsePredicates(t *testing.T) {
	st, err := Parse("SELECT * FROM t WHERE a IS NOT NULL AND b IN (1,2,3) AND c NOT LIKE 'x%' AND d BETWEEN 1 AND 5 AND NOT e = 1")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(SelectStmt)
	conj := splitAnd(sel.Where)
	if len(conj) != 5 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if n, ok := conj[0].(EIsNull); !ok || !n.Neg {
		t.Errorf("conj0 = %+v", conj[0])
	}
	if in, ok := conj[1].(EIn); !ok || len(in.List) != 3 || in.Neg {
		t.Errorf("conj1 = %+v", conj[1])
	}
	if lk, ok := conj[2].(ELike); !ok || !lk.Neg {
		t.Errorf("conj2 = %+v", conj[2])
	}
	if bt, ok := conj[3].(EBetween); !ok || bt.Neg {
		t.Errorf("conj3 = %+v", conj[3])
	}
	if u, ok := conj[4].(EUnary); !ok || u.Op != "NOT" {
		t.Errorf("conj4 = %+v", conj[4])
	}
}

func TestParsePrecedence(t *testing.T) {
	st, err := Parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	or := st.(SelectStmt).Where.(EBin)
	if or.Op != "OR" {
		t.Fatalf("top = %+v", or)
	}
	if and, ok := or.R.(EBin); !ok || and.Op != "AND" {
		t.Errorf("AND should bind tighter: %+v", or.R)
	}
	// Arithmetic precedence.
	st, _ = Parse("SELECT 1 + 2 * 3 FROM t")
	add := st.(SelectStmt).Items[0].Expr.(EBin)
	if add.Op != "+" {
		t.Fatalf("top arith = %+v", add)
	}
	if mul, ok := add.R.(EBin); !ok || mul.Op != "*" {
		t.Errorf("* should bind tighter: %+v", add.R)
	}
}

func TestParseNegativeNumbersAndUpdateDelete(t *testing.T) {
	st, err := Parse("UPDATE t SET a = -5, b = b + 1 WHERE c < -2.5")
	if err != nil {
		t.Fatal(err)
	}
	up := st.(UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("update = %+v", up)
	}
	if lit, ok := up.Set[0].Expr.(ELit); !ok || lit.V.I != -5 {
		t.Errorf("negative literal folded wrong: %+v", up.Set[0].Expr)
	}
	st, err = Parse("DELETE FROM t WHERE x = 1")
	if err != nil {
		t.Fatal(err)
	}
	if del := st.(DeleteStmt); del.Table != "t" || del.Where == nil {
		t.Errorf("delete = %+v", del)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"INSERT INTO t VALUES",
		"CREATE TABLE t (a UNKNOWN_TYPE)",
		"CREATE UNIQUE TABLE t (a INT)",
		"SELECT * FROM t JOIN u",
		"SELECT * FROM t extra garbage tokens (",
		"DROP INDEX i",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestHasAggregate(t *testing.T) {
	st, _ := Parse("SELECT COUNT(*) + 1, UPPER(name), SUM(x) FROM t")
	items := st.(SelectStmt).Items
	if !HasAggregate(items[0].Expr) {
		t.Error("COUNT(*)+1 has aggregate")
	}
	if HasAggregate(items[1].Expr) {
		t.Error("UPPER(name) has no aggregate")
	}
	if !HasAggregate(items[2].Expr) {
		t.Error("SUM(x) has aggregate")
	}
}

func TestNumParamsAndIsQuery(t *testing.T) {
	n, err := NumParams("SELECT * FROM t WHERE a = ? AND b = ?")
	if err != nil || n != 2 {
		t.Errorf("NumParams = %d, %v", n, err)
	}
	if !IsQuery("SELECT 1 FROM t") || IsQuery("INSERT INTO t VALUES (1)") {
		t.Error("IsQuery misbehaved")
	}
}

package sqlparser

import (
	"strings"
	"testing"

	"github.com/gridmeta/hybridcat/internal/relstore"
)

func TestExplain(t *testing.T) {
	e := newIndexedEngine(t)
	cases := []struct {
		sql  string
		want string
	}{
		{"SELECT * FROM ix WHERE id = 1", "index probe ix_pk"},
		{"SELECT * FROM ix WHERE grp = 1", "index probe ix_grp"},
		{"SELECT * FROM ix WHERE val > 5.0", "index probe ix_val"},
		{"SELECT * FROM ix WHERE grp = 1 AND val > 5.0", "residual filter"},
		{"SELECT * FROM ix WHERE name = 'n1'", "table scan ix"},
		{"SELECT * FROM ix", "table scan ix (no WHERE)"},
		{"SELECT * FROM ix a JOIN noix b ON a.id = b.id", "joins"},
		{"SELECT * FROM noix WHERE id = 1", "table scan noix"},
	}
	for _, c := range cases {
		got, err := e.Explain(c.sql, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		if !strings.Contains(got, c.want) {
			t.Errorf("Explain(%s) = %q, want substring %q", c.sql, got, c.want)
		}
	}
	if _, err := e.Explain("DELETE FROM ix", nil); err == nil {
		t.Error("EXPLAIN of non-SELECT should fail")
	}
	if _, err := e.Explain("SELECT * FROM missing WHERE a = 1", nil); err == nil {
		t.Error("EXPLAIN of missing table should fail")
	}
	// Params participate in planning.
	got, err := e.Explain("SELECT * FROM ix WHERE id = ?", []relstore.Value{relstore.Int(5)})
	if err != nil || !strings.Contains(got, "index probe") {
		t.Errorf("param explain = %q, %v", got, err)
	}
}

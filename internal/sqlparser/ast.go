package sqlparser

import (
	"github.com/gridmeta/hybridcat/internal/relstore"
)

// Stmt is a parsed SQL statement.
type Stmt interface{ stmt() }

// ColDef is one column definition in CREATE TABLE.
type ColDef struct {
	Name    string
	Type    relstore.Kind
	NotNull bool
}

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Name string
	Cols []ColDef
	Temp bool
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX ... ON table (cols) [USING kind].
type CreateIndexStmt struct {
	Name   string
	Table  string
	Cols   []string
	Unique bool
	Using  string // "HASH" or "BTREE" (default)
}

// DropTableStmt is DROP TABLE.
type DropTableStmt struct{ Name string }

// InsertStmt is INSERT INTO ... VALUES.
type InsertStmt struct {
	Table string
	Cols  []string // nil = all columns in schema order
	Rows  [][]Expr
}

// UpdateStmt is UPDATE ... SET ... [WHERE].
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Col  string
	Expr Expr
}

// DeleteStmt is DELETE FROM ... [WHERE].
type DeleteStmt struct {
	Table string
	Where Expr
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef // cross-joined bases; From[0] carries the JOIN chain
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr
	Offset   Expr
}

// SelectItem is one projection: an expression with an optional alias, or *.
type SelectItem struct {
	Star bool
	Expr Expr
	As   string
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// JoinClause is one JOIN ... ON ....
type JoinClause struct {
	Left  bool // LEFT [OUTER] JOIN
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (CreateTableStmt) stmt() {}
func (CreateIndexStmt) stmt() {}
func (DropTableStmt) stmt()   {}
func (InsertStmt) stmt()      {}
func (UpdateStmt) stmt()      {}
func (DeleteStmt) stmt()      {}
func (SelectStmt) stmt()      {}

// Expr is an unresolved expression AST node.
type Expr interface{ expr() }

// EIdent is a possibly-qualified column reference.
type EIdent struct{ Qual, Name string }

// ELit is a literal value.
type ELit struct{ V relstore.Value }

// EParam is a ? placeholder, numbered left to right from 0.
type EParam struct{ Idx int }

// EBin is a binary operation; Op is the SQL spelling ("+", "=", "AND", ...).
type EBin struct {
	Op   string
	L, R Expr
}

// EUnary is NOT or unary minus.
type EUnary struct {
	Op string
	X  Expr
}

// ECall is a function or aggregate call.
type ECall struct {
	Name     string // upper-cased
	Distinct bool
	Star     bool // COUNT(*)
	Args     []Expr
}

// EIsNull is X IS [NOT] NULL.
type EIsNull struct {
	X   Expr
	Neg bool
}

// ELike is X [NOT] LIKE pattern.
type ELike struct {
	X       Expr
	Pattern Expr
	Neg     bool
}

// EIn is X [NOT] IN (list).
type EIn struct {
	X    Expr
	List []Expr
	Neg  bool
}

// EBetween is X [NOT] BETWEEN lo AND hi.
type EBetween struct {
	X, Lo, Hi Expr
	Neg       bool
}

func (EIdent) expr()   {}
func (ELit) expr()     {}
func (EParam) expr()   {}
func (EBin) expr()     {}
func (EUnary) expr()   {}
func (ECall) expr()    {}
func (EIsNull) expr()  {}
func (ELike) expr()    {}
func (EIn) expr()      {}
func (EBetween) expr() {}

// aggFuncs names the aggregate functions the planner groups by.
var aggFuncs = map[string]bool{"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true}

// HasAggregate reports whether e contains an aggregate call.
func HasAggregate(e Expr) bool {
	switch x := e.(type) {
	case ECall:
		if aggFuncs[x.Name] {
			return true
		}
		for _, a := range x.Args {
			if HasAggregate(a) {
				return true
			}
		}
	case EBin:
		return HasAggregate(x.L) || HasAggregate(x.R)
	case EUnary:
		return HasAggregate(x.X)
	case EIsNull:
		return HasAggregate(x.X)
	case ELike:
		return HasAggregate(x.X) || HasAggregate(x.Pattern)
	case EIn:
		if HasAggregate(x.X) {
			return true
		}
		for _, a := range x.List {
			if HasAggregate(a) {
				return true
			}
		}
	case EBetween:
		return HasAggregate(x.X) || HasAggregate(x.Lo) || HasAggregate(x.Hi)
	}
	return false
}

package sqlparser

import (
	"fmt"
	"testing"

	"github.com/gridmeta/hybridcat/internal/relstore"
)

// newEngineWithData builds a small two-table database used across the
// planner tests.
func newEngineWithData(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(relstore.NewDatabase())
	stmts := []string{
		"CREATE TABLE emp (id BIGINT NOT NULL, name TEXT NOT NULL, dept BIGINT, salary DOUBLE)",
		"CREATE TABLE dept (id BIGINT NOT NULL, dname TEXT NOT NULL)",
		"CREATE UNIQUE INDEX emp_pk ON emp (id)",
		"INSERT INTO dept VALUES (1, 'eng'), (2, 'sci'), (3, 'empty')",
		"INSERT INTO emp VALUES (1, 'ada', 1, 120.0), (2, 'grace', 1, 130.0), (3, 'carl', 2, 90.0), (4, 'nil', NULL, 50.0)",
	}
	for _, s := range stmts {
		if _, err := e.Exec(s, nil); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	return e
}

func mustQuery(t *testing.T, e *Engine, q string, args ...relstore.Value) []relstore.Row {
	t.Helper()
	it, err := e.Query(q, args)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return relstore.Collect(it)
}

func TestSelectWhereProjection(t *testing.T) {
	e := newEngineWithData(t)
	rows := mustQuery(t, e, "SELECT name, salary FROM emp WHERE salary > 100 ORDER BY name")
	if len(rows) != 2 || rows[0][0].S != "ada" || rows[1][0].S != "grace" {
		t.Fatalf("rows = %v", rows)
	}
	it, _ := e.Query("SELECT name, salary FROM emp WHERE salary > 100", nil)
	cols := it.Columns()
	if cols[0] != "name" || cols[1] != "salary" {
		t.Errorf("columns = %v", cols)
	}
}

func TestSelectStar(t *testing.T) {
	e := newEngineWithData(t)
	rows := mustQuery(t, e, "SELECT * FROM dept ORDER BY id")
	if len(rows) != 3 || len(rows[0]) != 2 || rows[0][1].S != "eng" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestParameterBinding(t *testing.T) {
	e := newEngineWithData(t)
	rows := mustQuery(t, e, "SELECT name FROM emp WHERE dept = ? AND salary >= ?",
		relstore.Int(1), relstore.Float(125))
	if len(rows) != 1 || rows[0][0].S != "grace" {
		t.Fatalf("rows = %v", rows)
	}
	// Too few arguments is an error.
	if _, err := e.Query("SELECT name FROM emp WHERE dept = ?", nil); err == nil {
		t.Error("missing parameter should fail")
	}
}

func TestInnerJoin(t *testing.T) {
	e := newEngineWithData(t)
	rows := mustQuery(t, e, `SELECT e.name, d.dname FROM emp e JOIN dept d ON e.dept = d.id ORDER BY e.name`)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].S != "ada" || rows[0][1].S != "eng" {
		t.Errorf("row0 = %v", rows[0])
	}
	// NULL dept never joins.
	for _, r := range rows {
		if r[0].S == "nil" {
			t.Error("NULL key joined")
		}
	}
}

func TestLeftJoin(t *testing.T) {
	e := newEngineWithData(t)
	rows := mustQuery(t, e, `SELECT d.dname, e.name FROM dept d LEFT JOIN emp e ON d.id = e.dept ORDER BY d.dname, e.name`)
	// eng×2, sci×1, empty×1(null)
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	var sawEmpty bool
	for _, r := range rows {
		if r[0].S == "empty" {
			sawEmpty = true
			if !r[1].IsNull() {
				t.Errorf("unmatched left row has non-NULL right: %v", r)
			}
		}
	}
	if !sawEmpty {
		t.Error("LEFT JOIN dropped the unmatched row")
	}
}

func TestJoinResidualCondition(t *testing.T) {
	e := newEngineWithData(t)
	rows := mustQuery(t, e, `SELECT e.name FROM emp e JOIN dept d ON e.dept = d.id AND e.salary > 100 ORDER BY e.name`)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCrossJoinViaComma(t *testing.T) {
	e := newEngineWithData(t)
	rows := mustQuery(t, e, `SELECT e.name FROM emp e, dept d WHERE e.dept = d.id AND d.dname = 'sci'`)
	if len(rows) != 1 || rows[0][0].S != "carl" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestGroupByHaving(t *testing.T) {
	e := newEngineWithData(t)
	rows := mustQuery(t, e, `SELECT dept, COUNT(*) AS n, SUM(salary) AS total, MAX(salary) AS top
		FROM emp WHERE dept IS NOT NULL GROUP BY dept HAVING COUNT(*) >= 1 ORDER BY dept`)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].I != 1 || rows[0][1].I != 2 || rows[0][2].F != 250 || rows[0][3].F != 130 {
		t.Errorf("group1 = %v", rows[0])
	}
	rows = mustQuery(t, e, `SELECT dept, COUNT(*) AS n FROM emp WHERE dept IS NOT NULL GROUP BY dept HAVING COUNT(*) > 1`)
	if len(rows) != 1 || rows[0][0].I != 1 {
		t.Fatalf("having rows = %v", rows)
	}
}

func TestGlobalAggregates(t *testing.T) {
	e := newEngineWithData(t)
	rows := mustQuery(t, e, "SELECT COUNT(*), COUNT(dept), COUNT(DISTINCT dept), AVG(salary) FROM emp")
	if len(rows) != 1 {
		t.Fatal("expected one row")
	}
	r := rows[0]
	if r[0].I != 4 || r[1].I != 3 || r[2].I != 2 {
		t.Errorf("counts = %v", r)
	}
	if r[3].F < 97 || r[3].F > 98 { // (120+130+90+50)/4 = 97.5
		t.Errorf("avg = %v", r[3])
	}
}

func TestAggregateExpression(t *testing.T) {
	e := newEngineWithData(t)
	rows := mustQuery(t, e, "SELECT COUNT(*) * 10 AS x FROM emp")
	if len(rows) != 1 || rows[0][0].I != 40 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestDistinctLimitOffset(t *testing.T) {
	e := newEngineWithData(t)
	rows := mustQuery(t, e, "SELECT DISTINCT dept FROM emp WHERE dept IS NOT NULL ORDER BY dept")
	if len(rows) != 2 {
		t.Fatalf("distinct rows = %v", rows)
	}
	rows = mustQuery(t, e, "SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 1")
	if len(rows) != 2 || rows[0][0].I != 2 || rows[1][0].I != 3 {
		t.Fatalf("limit rows = %v", rows)
	}
}

func TestUpdateAndDelete(t *testing.T) {
	e := newEngineWithData(t)
	n, err := e.Exec("UPDATE emp SET salary = salary + 10 WHERE dept = 1", nil)
	if err != nil || n != 2 {
		t.Fatalf("update = %d, %v", n, err)
	}
	rows := mustQuery(t, e, "SELECT salary FROM emp WHERE name = 'ada'")
	if rows[0][0].F != 130 {
		t.Errorf("salary = %v", rows[0][0])
	}
	n, err = e.Exec("DELETE FROM emp WHERE dept IS NULL", nil)
	if err != nil || n != 1 {
		t.Fatalf("delete = %d, %v", n, err)
	}
	rows = mustQuery(t, e, "SELECT COUNT(*) FROM emp")
	if rows[0][0].I != 3 {
		t.Errorf("count after delete = %v", rows[0][0])
	}
}

func TestInsertPartialColumnsAndMultiRow(t *testing.T) {
	e := newEngineWithData(t)
	if _, err := e.Exec("INSERT INTO emp (id, name) VALUES (10, 'partial')", nil); err != nil {
		t.Fatal(err)
	}
	rows := mustQuery(t, e, "SELECT dept, salary FROM emp WHERE id = 10")
	if !rows[0][0].IsNull() || !rows[0][1].IsNull() {
		t.Errorf("unlisted columns should default NULL: %v", rows[0])
	}
	// Unique index enforcement through SQL.
	if _, err := e.Exec("INSERT INTO emp VALUES (10, 'dup', 1, 1.0)", nil); err == nil {
		t.Error("duplicate pk should fail")
	}
}

func TestInBetweenLikeThroughPlanner(t *testing.T) {
	e := newEngineWithData(t)
	rows := mustQuery(t, e, "SELECT name FROM emp WHERE id IN (1, 3) ORDER BY name")
	if len(rows) != 2 || rows[0][0].S != "ada" || rows[1][0].S != "carl" {
		t.Fatalf("IN rows = %v", rows)
	}
	rows = mustQuery(t, e, "SELECT name FROM emp WHERE salary BETWEEN 90 AND 120 ORDER BY name")
	if len(rows) != 3 { // ada 120, carl 90... nil 50 no. 120,90 plus? grace 130 no. So ada, carl = 2
		// recompute: salaries 120,130,90,50 → between 90 and 120: ada, carl.
		if len(rows) != 2 {
			t.Fatalf("BETWEEN rows = %v", rows)
		}
	}
	rows = mustQuery(t, e, "SELECT name FROM emp WHERE name LIKE 'g%'")
	if len(rows) != 1 || rows[0][0].S != "grace" {
		t.Fatalf("LIKE rows = %v", rows)
	}
}

func TestAmbiguousAndUnknownColumns(t *testing.T) {
	e := newEngineWithData(t)
	if _, err := e.Query("SELECT id FROM emp e JOIN dept d ON e.dept = d.id", nil); err == nil {
		t.Error("ambiguous column should fail")
	}
	if _, err := e.Query("SELECT nosuch FROM emp", nil); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := e.Query("SELECT x.name FROM emp e", nil); err == nil {
		t.Error("unknown qualifier should fail")
	}
}

func TestOrderByPositionAndAlias(t *testing.T) {
	e := newEngineWithData(t)
	rows := mustQuery(t, e, "SELECT name AS n, salary AS s FROM emp ORDER BY 2 DESC LIMIT 1")
	if rows[0][0].S != "grace" {
		t.Fatalf("rows = %v", rows)
	}
	rows = mustQuery(t, e, "SELECT name AS n, salary AS s FROM emp ORDER BY s LIMIT 1")
	if rows[0][0].S != "nil" {
		t.Fatalf("rows = %v", rows)
	}
	if _, err := e.Query("SELECT name FROM emp ORDER BY salary + 1", nil); err == nil {
		t.Error("ORDER BY arbitrary expression should be rejected")
	}
}

func TestScalarFunctionsThroughSQL(t *testing.T) {
	e := newEngineWithData(t)
	rows := mustQuery(t, e, "SELECT UPPER(name), LENGTH(name) FROM emp WHERE id = 1")
	if rows[0][0].S != "ADA" || rows[0][1].I != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestExecQueryMismatch(t *testing.T) {
	e := newEngineWithData(t)
	if _, err := e.Exec("SELECT * FROM emp", nil); err == nil {
		t.Error("Exec(SELECT) should fail")
	}
	if _, err := e.Query("DELETE FROM emp", nil); err == nil {
		t.Error("Query(DELETE) should fail")
	}
}

// TestPlannerAgainstBruteForce cross-checks WHERE evaluation against a
// straight scan with compiled expressions over a generated table.
func TestPlannerAgainstBruteForce(t *testing.T) {
	e := NewEngine(relstore.NewDatabase())
	if _, err := e.Exec("CREATE TABLE n (a BIGINT, b BIGINT, c TEXT)", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		q := fmt.Sprintf("INSERT INTO n VALUES (%d, %d, 'v%d')", i, i%7, i%13)
		if _, err := e.Exec(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	queries := []struct {
		sql  string
		pred func(a, b int, c string) bool
	}{
		{"SELECT a FROM n WHERE b = 3", func(a, b int, c string) bool { return b == 3 }},
		{"SELECT a FROM n WHERE a >= 50 AND a < 60", func(a, b int, c string) bool { return a >= 50 && a < 60 }},
		{"SELECT a FROM n WHERE b IN (1, 2) OR c = 'v5'", func(a, b int, c string) bool { return b == 1 || b == 2 || c == "v5" }},
		{"SELECT a FROM n WHERE NOT (b = 0) AND a % 2 = 0", func(a, b int, c string) bool { return b != 0 && a%2 == 0 }},
		{"SELECT a FROM n WHERE c LIKE 'v1%'", func(a, b int, c string) bool { return len(c) >= 2 && c[:2] == "v1" }},
	}
	for _, q := range queries {
		rows := mustQuery(t, e, q.sql)
		want := 0
		for i := 0; i < 200; i++ {
			if q.pred(i, i%7, fmt.Sprintf("v%d", i%13)) {
				want++
			}
		}
		if len(rows) != want {
			t.Errorf("%s: got %d rows, want %d", q.sql, len(rows), want)
		}
	}
}

package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/gridmeta/hybridcat/internal/relstore"
)

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(input string) (Stmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, nparam: 0}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(TOp, ";")
	if p.peek().Kind != TEOF {
		return nil, p.errf("trailing input starting at %q", p.peek().Text)
	}
	return st, nil
}

type parser struct {
	toks   []Token
	pos    int
	nparam int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TEOF {
		p.pos++
	}
	return t
}

// accept consumes the next token when it matches kind/text.
func (p *parser) accept(kind TokKind, text string) bool {
	t := p.peek()
	if t.Kind == kind && (text == "" || t.Text == text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	t := p.peek()
	if t.Kind == kind && (text == "" || t.Text == text) {
		p.pos++
		return t, nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return t, p.errf("expected %s, found %q", want, t.Text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: at offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.Kind != TKeyword {
		return nil, p.errf("expected statement keyword, found %q", t.Text)
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	}
	return nil, p.errf("unsupported statement %q", t.Text)
}

func (p *parser) parseIdent() (string, error) {
	t := p.peek()
	if t.Kind == TIdent {
		p.pos++
		return t.Text, nil
	}
	return "", p.errf("expected identifier, found %q", t.Text)
}

func (p *parser) parseCreate() (Stmt, error) {
	p.next() // CREATE
	unique := p.accept(TKeyword, "UNIQUE")
	switch {
	case p.accept(TKeyword, "TABLE"):
		if unique {
			return nil, p.errf("UNIQUE applies to indexes, not tables")
		}
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TOp, "("); err != nil {
			return nil, err
		}
		var cols []ColDef
		for {
			cname, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			kind, err := p.parseType()
			if err != nil {
				return nil, err
			}
			cd := ColDef{Name: cname, Type: kind}
			if p.accept(TKeyword, "NOT") {
				if _, err := p.expect(TKeyword, "NULL"); err != nil {
					return nil, err
				}
				cd.NotNull = true
			}
			cols = append(cols, cd)
			if p.accept(TOp, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(TOp, ")"); err != nil {
			return nil, err
		}
		return CreateTableStmt{Name: name, Cols: cols}, nil
	case p.accept(TKeyword, "INDEX"):
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TKeyword, "ON"); err != nil {
			return nil, err
		}
		table, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TOp, "("); err != nil {
			return nil, err
		}
		var cols []string
		for {
			c, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if !p.accept(TOp, ",") {
				break
			}
		}
		if _, err := p.expect(TOp, ")"); err != nil {
			return nil, err
		}
		using := "BTREE"
		if p.accept(TKeyword, "USING") {
			t := p.next()
			if t.Text != "HASH" && t.Text != "BTREE" {
				return nil, p.errf("USING expects HASH or BTREE, found %q", t.Text)
			}
			using = t.Text
		}
		return CreateIndexStmt{Name: name, Table: table, Cols: cols, Unique: unique, Using: using}, nil
	}
	return nil, p.errf("expected TABLE or INDEX after CREATE")
}

func (p *parser) parseType() (relstore.Kind, error) {
	t := p.next()
	if t.Kind != TKeyword {
		return 0, p.errf("expected type name, found %q", t.Text)
	}
	switch t.Text {
	case "BIGINT", "INTEGER", "INT":
		return relstore.KInt, nil
	case "DOUBLE", "FLOAT", "REAL":
		return relstore.KFloat, nil
	case "TEXT", "VARCHAR", "CLOB":
		// VARCHAR(n): accept and ignore the length.
		if p.accept(TOp, "(") {
			p.next()
			if _, err := p.expect(TOp, ")"); err != nil {
				return 0, err
			}
		}
		return relstore.KString, nil
	case "BLOB":
		return relstore.KBytes, nil
	case "BOOLEAN":
		return relstore.KBool, nil
	}
	return 0, p.errf("unknown type %q", t.Text)
}

func (p *parser) parseDrop() (Stmt, error) {
	p.next() // DROP
	if _, err := p.expect(TKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	return DropTableStmt{Name: name}, nil
}

func (p *parser) parseInsert() (Stmt, error) {
	p.next() // INSERT
	if _, err := p.expect(TKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.accept(TOp, "(") {
		for {
			c, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if !p.accept(TOp, ",") {
				break
			}
		}
		if _, err := p.expect(TOp, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TKeyword, "VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Expr
	for {
		if _, err := p.expect(TOp, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(TOp, ",") {
				break
			}
		}
		if _, err := p.expect(TOp, ")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if !p.accept(TOp, ",") {
			break
		}
	}
	return InsertStmt{Table: table, Cols: cols, Rows: rows}, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	p.next() // UPDATE
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TKeyword, "SET"); err != nil {
		return nil, err
	}
	var sets []SetClause
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TOp, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sets = append(sets, SetClause{Col: col, Expr: e})
		if !p.accept(TOp, ",") {
			break
		}
	}
	var where Expr
	if p.accept(TKeyword, "WHERE") {
		where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return UpdateStmt{Table: table, Set: sets, Where: where}, nil
}

func (p *parser) parseDelete() (Stmt, error) {
	p.next() // DELETE
	if _, err := p.expect(TKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	var where Expr
	if p.accept(TKeyword, "WHERE") {
		where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return DeleteStmt{Table: table, Where: where}, nil
}

func (p *parser) parseSelect() (Stmt, error) {
	p.next() // SELECT
	var sel SelectStmt
	sel.Distinct = p.accept(TKeyword, "DISTINCT")
	for {
		if p.accept(TOp, "*") {
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(TKeyword, "AS") {
				a, err := p.parseIdent()
				if err != nil {
					return nil, err
				}
				item.As = a
			} else if p.peek().Kind == TIdent {
				item.As = p.next().Text
			}
			sel.Items = append(sel.Items, item)
		}
		if !p.accept(TOp, ",") {
			break
		}
	}
	if _, err := p.expect(TKeyword, "FROM"); err != nil {
		return nil, err
	}
	ref, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	sel.From = append(sel.From, ref)
	for {
		if p.accept(TOp, ",") {
			r, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, r)
			continue
		}
		left := false
		save := p.pos
		if p.accept(TKeyword, "LEFT") {
			p.accept(TKeyword, "OUTER")
			left = true
		} else if p.accept(TKeyword, "INNER") {
			// fall through to JOIN
		}
		if !p.accept(TKeyword, "JOIN") {
			p.pos = save
			break
		}
		r, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, JoinClause{Left: left, Table: r, On: on})
	}
	if p.accept(TKeyword, "WHERE") {
		sel.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(TKeyword, "GROUP") {
		if _, err := p.expect(TKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(TOp, ",") {
				break
			}
		}
	}
	if p.accept(TKeyword, "HAVING") {
		sel.Having, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(TKeyword, "ORDER") {
		if _, err := p.expect(TKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(TKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(TKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(TOp, ",") {
				break
			}
		}
	}
	if p.accept(TKeyword, "LIMIT") {
		sel.Limit, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(TKeyword, "OFFSET") {
			sel.Offset, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
	}
	return sel, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.parseIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.accept(TKeyword, "AS") {
		a, err := p.parseIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a
	} else if p.peek().Kind == TIdent {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

// Expression grammar (lowest to highest precedence):
//
//	orExpr    := andExpr (OR andExpr)*
//	andExpr   := notExpr (AND notExpr)*
//	notExpr   := NOT notExpr | predicate
//	predicate := addExpr [cmpOp addExpr | IS [NOT] NULL | [NOT] LIKE addExpr
//	             | [NOT] IN (...) | [NOT] BETWEEN addExpr AND addExpr]
//	addExpr   := mulExpr (("+"|"-") mulExpr)*
//	mulExpr   := unary (("*"|"/"|"%") unary)*
//	unary     := "-" unary | primary
//	primary   := literal | ? | ident[.ident] | func(args) | (orExpr)
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = EBin{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = EBin{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(TKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return EUnary{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TOp {
		switch t.Text {
		case "=", "==", "<>", "!=", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return EBin{Op: t.Text, L: l, R: r}, nil
		}
	}
	neg := false
	save := p.pos
	if p.accept(TKeyword, "NOT") {
		neg = true
	}
	switch {
	case p.accept(TKeyword, "LIKE"):
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return ELike{X: l, Pattern: r, Neg: neg}, nil
	case p.accept(TKeyword, "IN"):
		if _, err := p.expect(TOp, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(TOp, ",") {
				break
			}
		}
		if _, err := p.expect(TOp, ")"); err != nil {
			return nil, err
		}
		return EIn{X: l, List: list, Neg: neg}, nil
	case p.accept(TKeyword, "BETWEEN"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return EBetween{X: l, Lo: lo, Hi: hi, Neg: neg}, nil
	case !neg && p.accept(TKeyword, "IS"):
		isNeg := p.accept(TKeyword, "NOT")
		if _, err := p.expect(TKeyword, "NULL"); err != nil {
			return nil, err
		}
		return EIsNull{X: l, Neg: isNeg}, nil
	}
	if neg {
		p.pos = save // the NOT belonged to a boolean context; rewind
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TOp && (t.Text == "+" || t.Text == "-") {
			p.next()
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = EBin{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TOp && (t.Text == "*" || t.Text == "/" || t.Text == "%") {
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = EBin{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(ELit); ok {
			switch lit.V.K {
			case relstore.KInt:
				return ELit{V: relstore.Int(-lit.V.I)}, nil
			case relstore.KFloat:
				return ELit{V: relstore.Float(-lit.V.F)}, nil
			}
		}
		return EUnary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TNumber:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return ELit{V: relstore.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.Text)
		}
		return ELit{V: relstore.Int(i)}, nil
	case TString:
		p.next()
		return ELit{V: relstore.Str(t.Text)}, nil
	case TParam:
		p.next()
		e := EParam{Idx: p.nparam}
		p.nparam++
		return e, nil
	case TKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return ELit{V: relstore.Null()}, nil
		case "TRUE":
			p.next()
			return ELit{V: relstore.Bool(true)}, nil
		case "FALSE":
			p.next()
			return ELit{V: relstore.Bool(false)}, nil
		case "COUNT", "SUM", "MIN", "MAX", "AVG":
			p.next()
			return p.parseCallTail(t.Text)
		}
		return nil, p.errf("unexpected keyword %q in expression", t.Text)
	case TIdent:
		p.next()
		name := t.Text
		if p.accept(TOp, "(") {
			p.pos-- // rewind the paren for parseCallTail
			return p.parseCallTail(strings.ToUpper(name))
		}
		if p.accept(TOp, ".") {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			return EIdent{Qual: name, Name: col}, nil
		}
		return EIdent{Name: name}, nil
	case TOp:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TOp, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", t.Text)
}

// parseCallTail parses "( [DISTINCT] args | * )" for a call whose name was
// already consumed.
func (p *parser) parseCallTail(name string) (Expr, error) {
	if _, err := p.expect(TOp, "("); err != nil {
		return nil, err
	}
	call := ECall{Name: name}
	if p.accept(TOp, "*") {
		call.Star = true
		if _, err := p.expect(TOp, ")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	call.Distinct = p.accept(TKeyword, "DISTINCT")
	if !p.accept(TOp, ")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, e)
			if !p.accept(TOp, ",") {
				break
			}
		}
		if _, err := p.expect(TOp, ")"); err != nil {
			return nil, err
		}
	}
	return call, nil
}

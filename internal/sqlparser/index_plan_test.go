package sqlparser

import (
	"fmt"
	"testing"

	"github.com/gridmeta/hybridcat/internal/relstore"
)

// newIndexedEngine builds a table with hash and B-tree indexes plus an
// identical unindexed twin for result cross-checking.
func newIndexedEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(relstore.NewDatabase())
	stmts := []string{
		"CREATE TABLE ix (id BIGINT NOT NULL, grp BIGINT, val DOUBLE, name TEXT)",
		"CREATE TABLE noix (id BIGINT NOT NULL, grp BIGINT, val DOUBLE, name TEXT)",
		"CREATE UNIQUE INDEX ix_pk ON ix (id)",
		"CREATE INDEX ix_grp ON ix (grp) USING HASH",
		"CREATE INDEX ix_val ON ix (val)",
		"CREATE INDEX ix_grp_name ON ix (grp, name)",
	}
	for _, s := range stmts {
		if _, err := e.Exec(s, nil); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	for i := 0; i < 300; i++ {
		row := fmt.Sprintf("(%d, %d, %d.5, 'n%d')", i, i%7, i, i%13)
		for _, tbl := range []string{"ix", "noix"} {
			if _, err := e.Exec("INSERT INTO "+tbl+" VALUES "+row, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	return e
}

// queriesMustAgree runs the query against both tables and compares.
func queriesMustAgree(t *testing.T, e *Engine, where string, args ...relstore.Value) int {
	t.Helper()
	a := mustQuery(t, e, "SELECT id FROM ix WHERE "+where+" ORDER BY id", args...)
	b := mustQuery(t, e, "SELECT id FROM noix WHERE "+where+" ORDER BY id", args...)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("WHERE %s: indexed %d rows, scan %d rows", where, len(a), len(b))
	}
	return len(a)
}

func TestIndexScanEquivalence(t *testing.T) {
	e := newIndexedEngine(t)
	cases := []struct {
		where string
		want  int
	}{
		{"id = 42", 1},
		{"42 = id", 1},
		{"grp = 3", 43},
		{"val >= 100.0 AND val < 110.0", 10},
		{"val > 290.0", 10}, // vals are i+0.5: 290.5..299.5
		{"val <= 9.0", 9},
		{"grp = 3 AND name = 'n3'", 4}, // composite index: i≡3 (mod 91)
		{"grp = 2 AND val < 50.0", 7},  // index + residual
		{"id = 42 AND name = 'n3'", 1}, // pk + residual (42%13==3)
		{"name = 'n1' AND grp = 1", 4}, // reordered conjuncts
		{"id = 9999", 0},               // miss
	}
	for _, c := range cases {
		if got := queriesMustAgree(t, e, c.where); got != c.want {
			t.Errorf("WHERE %s: %d rows, want %d", c.where, got, c.want)
		}
	}
}

func TestIndexScanWithParams(t *testing.T) {
	e := newIndexedEngine(t)
	n := queriesMustAgree(t, e, "id = ?", relstore.Int(7))
	if n != 1 {
		t.Errorf("param probe = %d rows", n)
	}
	queriesMustAgree(t, e, "val >= ? AND val <= ?", relstore.Float(10), relstore.Float(20))
}

func TestIndexScanNullNeverMatches(t *testing.T) {
	e := newIndexedEngine(t)
	if _, err := e.Exec("INSERT INTO ix (id) VALUES (1000)", nil); err != nil {
		t.Fatal(err)
	}
	// grp IS NULL on row 1000; "grp = NULL" must return nothing even
	// though a hash index on grp exists.
	rows := mustQuery(t, e, "SELECT id FROM ix WHERE grp = NULL")
	if len(rows) != 0 {
		t.Errorf("col = NULL matched %d rows", len(rows))
	}
	rows = mustQuery(t, e, "SELECT id FROM ix WHERE grp = ?", relstore.Null())
	if len(rows) != 0 {
		t.Errorf("col = NULL-param matched %d rows", len(rows))
	}
}

func TestIndexScanNotUsedAcrossJoins(t *testing.T) {
	// Joined queries keep the safe scan path; results must still be
	// correct.
	e := newIndexedEngine(t)
	rows := mustQuery(t, e, `SELECT a.id FROM ix a JOIN noix b ON a.id = b.id WHERE a.id = 5`)
	if len(rows) != 1 || rows[0][0].I != 5 {
		t.Fatalf("join rows = %v", rows)
	}
}

func TestIndexScanOrderingStillApplies(t *testing.T) {
	e := newIndexedEngine(t)
	rows := mustQuery(t, e, "SELECT id, val FROM ix WHERE val >= 200.0 ORDER BY id DESC LIMIT 3")
	if len(rows) != 3 || rows[0][0].I != 299 || rows[2][0].I != 297 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestIndexScanAggregatesOnProbe(t *testing.T) {
	e := newIndexedEngine(t)
	rows := mustQuery(t, e, "SELECT COUNT(*), MIN(val), MAX(val) FROM ix WHERE grp = 0")
	if rows[0][0].I != 43 {
		t.Fatalf("count = %v", rows[0])
	}
}

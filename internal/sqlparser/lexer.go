// Package sqlparser implements a lexer, recursive-descent parser, and
// planner for the SQL subset the hybrid catalog and its tools use:
// CREATE TABLE / CREATE INDEX / DROP TABLE, INSERT ... VALUES, SELECT with
// joins, WHERE, GROUP BY/HAVING, ORDER BY, LIMIT/OFFSET, UPDATE, and
// DELETE. Queries plan onto the relstore executor.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexer tokens.
type TokKind uint8

// Token kinds.
const (
	TEOF TokKind = iota
	TIdent
	TKeyword
	TNumber
	TString
	TOp    // operators and punctuation
	TParam // ? placeholder
)

// Token is one lexed token. Keywords are upper-cased in Text; identifiers
// keep their original spelling (double-quoted identifiers preserve case and
// may contain any characters).
type Token struct {
	Kind TokKind
	Text string
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "INDEX": true, "UNIQUE": true, "DROP": true, "ON": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "AND": true,
	"OR": true, "NOT": true, "NULL": true, "IS": true, "LIKE": true,
	"AS": true, "DISTINCT": true, "COUNT": true, "SUM": true, "MIN": true,
	"MAX": true, "AVG": true, "TRUE": true, "FALSE": true, "USING": true,
	"HASH": true, "BTREE": true, "IN": true, "BETWEEN": true,
	"BIGINT": true, "INTEGER": true, "INT": true, "DOUBLE": true,
	"FLOAT": true, "REAL": true, "TEXT": true, "VARCHAR": true,
	"BLOB": true, "BOOLEAN": true, "CLOB": true,
}

// Lex tokenizes input, returning a token slice ending with TEOF.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sql: unterminated string at %d", start)
				}
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			toks = append(toks, Token{Kind: TString, Text: sb.String(), Pos: start})
		case c == '"':
			start := i
			i++
			var sb strings.Builder
			for i < n && input[i] != '"' {
				sb.WriteByte(input[i])
				i++
			}
			if i >= n {
				return nil, fmt.Errorf("sql: unterminated quoted identifier at %d", start)
			}
			i++
			toks = append(toks, Token{Kind: TIdent, Text: sb.String(), Pos: start})
		case c == '?':
			toks = append(toks, Token{Kind: TParam, Text: "?", Pos: i})
			i++
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			start := i
			for i < n && (isDigit(input[i]) || input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
				((input[i] == '+' || input[i] == '-') && i > start && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, Token{Kind: TNumber, Text: input[start:i], Pos: start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TIdent, Text: word, Pos: start})
			}
		default:
			start := i
			var op string
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=", "==":
				op = two
				i += 2
			default:
				switch c {
				case '=', '<', '>', '(', ')', ',', '*', '+', '-', '/', '%', '.', ';':
					op = string(c)
					i++
				default:
					return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
				}
			}
			toks = append(toks, Token{Kind: TOp, Text: op, Pos: start})
		}
	}
	toks = append(toks, Token{Kind: TEOF, Pos: n})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '$' || unicode.IsLetter(rune(c)) || isDigit(c)
}

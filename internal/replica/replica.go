// Package replica implements WAL-shipped read replicas: a tailer
// long-polls the primary's /wal/stream endpoint, replays the records
// into a follower catalog through the same recovery machinery crash
// replay uses, and serves Figure-4 queries with bounded staleness. The
// stream carries the primary's on-disk record frames verbatim, so every
// byte is covered by the log's per-record checksum: a torn response is
// detected (and silently re-requested from the cursor), a corrupted one
// is refused, and re-delivery after a reconnect deduplicates by
// sequence number.
package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/retry"
	"github.com/gridmeta/hybridcat/internal/wal"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// errGap marks a 409 from the stream: a checkpoint truncated records
// the replica still needs, so it must re-bootstrap from a snapshot.
var errGap = errors.New("replica: stream gap (primary checkpointed past cursor)")

// Options configures a replica.
type Options struct {
	// Primary is the primary server's base URL, e.g. "http://host:8080".
	Primary string
	// Schema must match the primary's (snapshots verify the signature).
	Schema *xmlschema.Schema
	// Catalog configures the follower catalog(s) the tailer builds; a
	// metrics registry here also receives the replica_* instruments.
	Catalog catalog.Options
	// Client performs the HTTP requests; nil uses http.DefaultClient.
	// Fault tests inject a faultio.FlakyTransport through it.
	Client *http.Client
	// Retry is the reconnect backoff policy; the zero value uses
	// retry.DefaultPolicy.
	Retry retry.Policy
	// PollWait is the long-poll window passed as ?wait_ms; 0 defaults
	// to 10s. Shorter values poll harder — tests use milliseconds.
	PollWait time.Duration
}

// Stats reports the tailer's counters.
type Stats struct {
	AppliedSeq uint64 `json:"applied_seq"`
	PrimarySeq uint64 `json:"primary_seq"`
	Polls      uint64 `json:"polls"`
	Records    uint64 `json:"records_applied"`
	Reconnects uint64 `json:"reconnects"`
	Bootstraps uint64 `json:"bootstraps"`
}

// Replica tails a primary into a live follower catalog. It satisfies
// service.ReplicaSource, so a service.Server can serve reads from it
// directly.
type Replica struct {
	opts   Options
	client *http.Client

	cat        atomic.Pointer[catalog.Catalog]
	primarySeq atomic.Uint64
	polls      atomic.Uint64
	records    atomic.Uint64
	reconnects atomic.Uint64
	bootstraps atomic.Uint64
}

// New builds a replica with an empty follower catalog; it serves (empty)
// reads immediately and converges once Run starts tailing. No network
// traffic happens here.
func New(opts Options) (*Replica, error) {
	if opts.Primary == "" {
		return nil, fmt.Errorf("replica: primary URL required")
	}
	if _, err := url.Parse(opts.Primary); err != nil {
		return nil, fmt.Errorf("replica: bad primary URL: %w", err)
	}
	if opts.PollWait <= 0 {
		opts.PollWait = 10 * time.Second
	}
	c, err := catalog.OpenFollower(opts.Schema, opts.Catalog)
	if err != nil {
		return nil, err
	}
	r := &Replica{opts: opts, client: opts.Client}
	if r.client == nil {
		r.client = http.DefaultClient
	}
	r.cat.Store(c)
	if reg := opts.Catalog.Metrics; reg != nil {
		reg.GaugeFunc("replica_applied_seq", func() int64 { return int64(r.AppliedSeq()) })
		reg.GaugeFunc("replica_lag_records", func() int64 {
			applied, primary := r.AppliedSeq(), r.PrimarySeq()
			if primary <= applied {
				return 0
			}
			return int64(primary - applied)
		})
	}
	return r, nil
}

// Catalog returns the follower catalog currently serving reads. A
// re-bootstrap swaps in a fresh catalog; callers must re-fetch per
// operation rather than caching the pointer.
func (r *Replica) Catalog() *catalog.Catalog { return r.cat.Load() }

// AppliedSeq is the replication cursor: the last primary record whose
// effects local readers can see.
func (r *Replica) AppliedSeq() uint64 { return r.cat.Load().AppliedSeq() }

// PrimarySeq is the primary's last observed log watermark.
func (r *Replica) PrimarySeq() uint64 { return r.primarySeq.Load() }

// Stats snapshots the tailer counters.
func (r *Replica) Stats() Stats {
	return Stats{
		AppliedSeq: r.AppliedSeq(),
		PrimarySeq: r.PrimarySeq(),
		Polls:      r.polls.Load(),
		Records:    r.records.Load(),
		Reconnects: r.reconnects.Load(),
		Bootstraps: r.bootstraps.Load(),
	}
}

// Run tails the primary until ctx cancels, which is the only way it
// returns. Transient failures — refused connections, torn responses,
// primary restarts — back off with the configured jittered policy and
// reconnect from the cursor; a stream gap re-bootstraps from a
// snapshot. The tailer never gives up: MaxAttempts in the policy is
// ignored here, since a replica's job is to outwait its primary's
// outages.
func (r *Replica) Run(ctx context.Context) error {
	p := r.opts.Retry
	p.MaxAttempts = 0
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := r.syncOnce(ctx)
		if err == nil {
			attempt = 0
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
		if errors.Is(err, errGap) {
			// Bootstrap with its own retry budget; on success the cursor
			// jumps to the snapshot watermark and streaming resumes.
			if berr := r.bootstrap(ctx); berr == nil {
				attempt = 0
				continue
			} else if ctx.Err() != nil {
				return ctx.Err()
			}
		}
		r.reconnects.Add(1)
		if serr := sleepCtx(ctx, p.Backoff(attempt)); serr != nil {
			return serr
		}
		attempt++
	}
}

// syncOnce performs one stream poll: request records above the cursor,
// decode whatever intact frames arrive, apply them. An empty poll (the
// long-poll window expired with no commits) is a success.
func (r *Replica) syncOnce(ctx context.Context) error {
	c := r.cat.Load()
	from := c.AppliedSeq()
	u := fmt.Sprintf("%s/wal/stream?from=%d&wait_ms=%d",
		r.opts.Primary, from, r.opts.PollWait.Milliseconds())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	r.polls.Add(1)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		return errGap
	default:
		return fmt.Errorf("replica: stream: primary answered %s", resp.Status)
	}
	if last, err := strconv.ParseUint(resp.Header.Get("X-WAL-Last-Seq"), 10, 64); err == nil {
		storeMax(&r.primarySeq, last)
	}
	// A torn connection surfaces as a short body; the frame decoder
	// drops the torn tail and the next poll re-requests it from the
	// cursor, so no error handling is needed for the read itself.
	body, err := io.ReadAll(resp.Body)
	if err != nil && len(body) == 0 {
		return err
	}
	recs, derr := wal.DecodeFrames(body)
	if len(recs) > 0 {
		if aerr := c.ApplyWAL(recs); aerr != nil {
			return aerr
		}
		r.records.Add(uint64(len(recs)))
		storeMax(&r.primarySeq, recs[len(recs)-1].Seq)
	}
	if derr != nil {
		// Interior corruption: the valid prefix is applied, the rest is
		// garbage — reconnect and re-request from the new cursor.
		return derr
	}
	return err
}

// bootstrap replaces the follower catalog with one restored from the
// primary's snapshot endpoint — the recovery path for a cursor the
// primary's checkpoints have truncated away. Retries under the
// configured policy; a torn snapshot download fails its checksum and
// retries like any other transient fault.
func (r *Replica) bootstrap(ctx context.Context) error {
	return retry.Do(ctx, r.opts.Retry, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.opts.Primary+"/wal/snapshot", nil)
		if err != nil {
			return retry.Permanent(err)
		}
		resp, err := r.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("replica: snapshot: primary answered %s", resp.Status)
		}
		c, err := catalog.LoadFollower(r.opts.Schema, r.opts.Catalog, resp.Body)
		if err != nil {
			return err // torn/corrupt download: checksum catches it; retry
		}
		r.cat.Store(c)
		r.bootstraps.Add(1)
		storeMax(&r.primarySeq, c.AppliedSeq())
		return nil
	})
}

// storeMax advances a to v if v is larger (monotonic watermark).
func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// sleepCtx waits d or until ctx cancels.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

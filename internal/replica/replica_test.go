package replica

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/faultio"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/retry"
	"github.com/gridmeta/hybridcat/internal/service"
	"github.com/gridmeta/hybridcat/internal/wal"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// The replication fault suite: a real primary (durable catalog behind
// the real service handler) is tailed through a scripted flaky
// transport that refuses connections and tears response bodies at exact
// byte offsets — including inside every single stream record. After
// every injected fault the replica must converge to exactly the state
// the primary acknowledged, proven by comparing full external
// fingerprints (objects, documents, collections, definitions).

const testWAL = "primary.wal"

// primary bundles a durable group-commit catalog with its HTTP server.
type primary struct {
	mem *faultio.MemFS
	cat *catalog.Catalog
	srv *service.Server
	ts  *httptest.Server
	// handler indirection so restart tests can swap the catalog without
	// changing the URL the replica polls.
	mu sync.Mutex
}

func newPrimary(t *testing.T, every int) *primary {
	t.Helper()
	p := &primary{mem: faultio.NewMemFS()}
	p.open(t, every)
	p.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		h := p.srv
		p.mu.Unlock()
		if h == nil {
			http.Error(w, "primary down", http.StatusBadGateway)
			return
		}
		h.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		p.ts.Close()
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.cat != nil {
			p.cat.Close()
		}
	})
	return p
}

func (p *primary) open(t *testing.T, every int) {
	t.Helper()
	c, err := catalog.OpenDurable(xmlschema.MustLEAD(), catalog.Options{}, catalog.DurabilityOptions{
		FS: p.mem, WALPath: testWAL, CheckpointEvery: every,
		GroupCommit: true, GroupCommitWait: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	p.cat = c
	p.srv = service.New(c)
	p.mu.Unlock()
}

// crash closes the primary abruptly-ish (Close also checkpoints; the
// restart test wants the WAL replay path, so it drops the page cache
// without Close) and reopens it from the surviving bytes.
func (p *primary) restart(t *testing.T, every int) {
	t.Helper()
	p.mu.Lock()
	p.srv = nil
	old := p.cat
	p.cat = nil
	p.mu.Unlock()
	_ = old // abandoned without Close: the WAL replay path must cover it
	p.mem.Crash()
	p.open(t, every)
}

// workload commits a deterministic mutation sequence and returns the
// number of acknowledged operations.
func workload(t *testing.T, c *catalog.Catalog) int {
	t.Helper()
	n := 0
	step := func(name string, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n++
	}
	grid, err := c.RegisterAttr("grid", "ARPS", 0, "")
	step("register-grid", err)
	_, err = c.RegisterElem("dx", "ARPS", grid.ID, core.DTFloat, "")
	step("register-dx", err)
	stretch, err := c.RegisterAttr("grid-stretching", "ARPS", grid.ID, "")
	step("register-stretching", err)
	_, err = c.RegisterElem("dzmin", "ARPS", stretch.ID, core.DTFloat, "")
	step("register-dzmin", err)
	_, err = c.RegisterElem("reference-height", "ARPS", stretch.ID, core.DTFloat, "")
	step("register-refheight", err)
	for i := 0; i < 3; i++ {
		_, err = c.IngestXML("scientist", xmlschema.Figure3Document)
		step(fmt.Sprintf("ingest-%d", i), err)
	}
	collID, err := c.CreateCollection("storms", "scientist", 0)
	step("create-collection", err)
	step("add-member-1", c.AddToCollection(collID, 1))
	step("add-member-2", c.AddToCollection(collID, 2))
	step("publish-1", c.SetPublished(1, true))
	ok, err := c.Delete(3)
	if err == nil && !ok {
		err = errors.New("delete reported not found")
	}
	step("delete-3", err)
	return n
}

// fingerprint renders a catalog's externally observable state through
// the public API only, so the primary and the follower can be compared
// across package boundaries.
func fingerprint(t *testing.T, c *catalog.Catalog) string {
	t.Helper()
	out := ""
	defs, err := c.DumpDefinitionsJSON()
	out += fmt.Sprintf("defs err=%v\n%s\n", err, defs)
	for _, o := range c.Objects() {
		doc, err := c.FetchDocument(o.ID)
		if err != nil {
			out += fmt.Sprintf("obj %d fetch err %v\n", o.ID, err)
			continue
		}
		out += fmt.Sprintf("obj %d pub=%v\n%s\n", o.ID, o.Published, doc.String())
	}
	for _, ci := range c.Collections() {
		ids, err := c.CollectionObjects(ci.ID)
		out += fmt.Sprintf("coll %d %q parent=%d objs=%v err=%v\n", ci.ID, ci.Name, ci.ParentID, ids, err)
	}
	return out
}

// tailUntil runs the replica until its cursor reaches seq (or the
// deadline passes), then stops the tailer.
func tailUntil(t *testing.T, r *Replica, seq uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- r.Run(ctx) }()
	for r.AppliedSeq() < seq {
		if ctx.Err() != nil {
			t.Fatalf("replica stuck at seq %d, want %d (stats %+v)", r.AppliedSeq(), seq, r.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
}

// fastRetry keeps injected-fault tests quick without spinning.
var fastRetry = retry.Policy{Initial: time.Millisecond, Max: 5 * time.Millisecond, Factor: 2, Jitter: 0}

func newReplica(t *testing.T, p *primary, transport http.RoundTripper) *Replica {
	t.Helper()
	client := p.ts.Client()
	if transport != nil {
		client = &http.Client{Transport: transport}
	}
	r, err := New(Options{
		Primary:  p.ts.URL,
		Schema:   xmlschema.MustLEAD(),
		Client:   client,
		Retry:    fastRetry,
		PollWait: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestReplicaConverges(t *testing.T) {
	p := newPrimary(t, 1000)
	workload(t, p.cat)
	target := p.cat.PublishedSeq()

	r := newReplica(t, p, nil)
	tailUntil(t, r, target)

	if got, want := fingerprint(t, r.Catalog()), fingerprint(t, p.cat); got != want {
		t.Fatalf("replica state diverges from primary:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// The follower serves Figure-4 queries over the replicated state.
	q := &catalog.Query{}
	q.Attr("theme", "").AddElem("themekey", "", relstore.OpEq,
		relstore.Str("convective_precipitation_amount"))
	ids, err := r.Catalog().Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 { // objects 1 and 2 survive (3 was deleted)
		t.Fatalf("replica query returned %v, want two objects", ids)
	}
	// And refuses mutations.
	if _, err := r.Catalog().IngestXML("x", xmlschema.Figure3Document); !errors.Is(err, catalog.ErrReadOnlyReplica) {
		t.Fatalf("follower ingest: %v, want ErrReadOnlyReplica", err)
	}
	if r.PrimarySeq() < target {
		t.Fatalf("primary watermark %d, want >= %d", r.PrimarySeq(), target)
	}
}

// TestReplicaSurvivesTearAtEveryRecordOffset tears the very first
// stream response at byte offsets covering every record: at each
// record's frame start, one byte in (split length prefix), mid-payload,
// and one byte before its end. Whatever intact prefix arrives must be
// applied; the torn tail must be silently re-requested from the cursor,
// and the replica must still converge to the full primary state.
func TestReplicaSurvivesTearAtEveryRecordOffset(t *testing.T) {
	p := newPrimary(t, 1000)
	workload(t, p.cat)
	target := p.cat.PublishedSeq()
	want := fingerprint(t, p.cat)

	recs, _, gap, err := p.cat.WALSince(0)
	if err != nil || gap {
		t.Fatalf("WALSince: gap=%v err=%v", gap, err)
	}
	if len(recs) == 0 {
		t.Fatal("no records to tear")
	}
	offsets := []int64{0}
	var pos int64
	for _, rec := range recs {
		n := int64(len(wal.EncodeRecord(rec.Seq, rec.Payload)))
		offsets = append(offsets, pos+1, pos+n/2, pos+n-1, pos+n)
		pos += n
	}
	seen := map[int64]bool{}
	for _, cut := range offsets {
		if cut < 0 || seen[cut] {
			continue
		}
		seen[cut] = true
		t.Run(fmt.Sprintf("cut-%d", cut), func(t *testing.T) {
			ft := &faultio.FlakyTransport{
				Base: p.ts.Client().Transport,
				Plan: []faultio.NetFault{{CutAfter: cut}},
			}
			r := newReplica(t, p, ft)
			tailUntil(t, r, target)
			if got := fingerprint(t, r.Catalog()); got != want {
				t.Fatalf("cut at %d: replica diverged:\n%s", cut, got)
			}
			if ft.Requests() < 2 {
				t.Fatalf("cut at %d: replica converged in %d request(s); the tear was not exercised", cut, ft.Requests())
			}
		})
	}
}

// TestReplicaSurvivesConnectFailures drops whole connections — several
// in a row — between successful polls; the tailer must back off,
// reconnect, and converge.
func TestReplicaSurvivesConnectFailures(t *testing.T) {
	p := newPrimary(t, 1000)
	workload(t, p.cat)
	target := p.cat.PublishedSeq()

	fail := faultio.NetFault{FailConnect: true}
	ft := &faultio.FlakyTransport{
		Base: p.ts.Client().Transport,
		// Refused before the first byte, then after a partial apply, then
		// a burst of three.
		Plan: []faultio.NetFault{fail, {CutAfter: 40}, fail, fail, fail},
	}
	r := newReplica(t, p, ft)
	tailUntil(t, r, target)
	if got, want := fingerprint(t, r.Catalog()), fingerprint(t, p.cat); got != want {
		t.Fatalf("replica diverged after connect failures:\n%s", got)
	}
	if st := r.Stats(); st.Reconnects < 4 {
		t.Fatalf("stats %+v: want >= 4 reconnects", st)
	}
}

// TestReplicaSurvivesPrimaryRestart kills the primary mid-replication
// (page cache dropped, WAL-recovered reopen) and keeps committing; the
// replica must ride through the outage window and converge on the
// post-restart state without a bootstrap.
func TestReplicaSurvivesPrimaryRestart(t *testing.T) {
	p := newPrimary(t, 1000)
	workload(t, p.cat)
	mid := p.cat.PublishedSeq()

	r := newReplica(t, p, nil)
	tailUntil(t, r, mid)

	p.restart(t, 1000)
	// The recovered primary must resume the same sequence numbering.
	if got := p.cat.PublishedSeq(); got != mid {
		t.Fatalf("recovered primary at seq %d, want %d", got, mid)
	}
	id, err := p.cat.IngestXML("scientist", xmlschema.Figure3Document)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cat.SetPublished(id, true); err != nil {
		t.Fatal(err)
	}
	target := p.cat.PublishedSeq()
	if target <= mid {
		t.Fatalf("post-restart commits did not advance the log: %d <= %d", target, mid)
	}
	tailUntil(t, r, target)
	if got, want := fingerprint(t, r.Catalog()), fingerprint(t, p.cat); got != want {
		t.Fatalf("replica diverged across primary restart:\n%s", got)
	}
}

// TestReplicaBootstrapsAfterCheckpointTruncation starts a replica from
// scratch against a primary whose checkpoints have already truncated
// the log: the stream answers 409, the replica must fall back to the
// snapshot endpoint, and then resume streaming the post-snapshot tail.
func TestReplicaBootstrapsAfterCheckpointTruncation(t *testing.T) {
	p := newPrimary(t, 2) // checkpoint every 2 records: log stays short
	workload(t, p.cat)
	if err := p.cat.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Verify the premise: seq 0 is truly unreachable over the stream.
	if _, _, gap, _ := p.cat.WALSince(0); !gap {
		t.Fatal("log not truncated; the test exercises nothing")
	}
	// Post-snapshot tail the replica must stream after bootstrapping.
	if _, err := p.cat.IngestXML("scientist", xmlschema.Figure3Document); err != nil {
		t.Fatal(err)
	}
	target := p.cat.PublishedSeq()

	// The snapshot download itself gets torn once, to prove the
	// container checksum refuses it and the bootstrap retries.
	ft := &faultio.FlakyTransport{
		Base: p.ts.Client().Transport,
		Plan: []faultio.NetFault{Pass(), {CutAfter: 64}},
	}
	r := newReplica(t, p, ft)
	tailUntil(t, r, target)
	if got, want := fingerprint(t, r.Catalog()), fingerprint(t, p.cat); got != want {
		t.Fatalf("replica diverged after snapshot bootstrap:\n%s", got)
	}
	if st := r.Stats(); st.Bootstraps != 1 {
		t.Fatalf("stats %+v: want exactly one bootstrap", st)
	}
}

// TestReplicaConvergesUnderLiveIngest runs the tailer while a writer
// keeps committing through a flaky transport plan, then checks the
// final states match — replication and ingest racing, not phased.
func TestReplicaConvergesUnderLiveIngest(t *testing.T) {
	p := newPrimary(t, 1000)
	workload(t, p.cat)

	plan := make([]faultio.NetFault, 0, 40)
	for i := 0; i < 40; i++ {
		switch i % 4 {
		case 1:
			plan = append(plan, faultio.NetFault{CutAfter: int64(i * 13)})
		case 3:
			plan = append(plan, faultio.NetFault{FailConnect: true})
		default:
			plan = append(plan, Pass())
		}
	}
	ft := &faultio.FlakyTransport{Base: p.ts.Client().Transport, Plan: plan}
	r := newReplica(t, p, ft)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load() && i < 50; i++ {
			if _, err := p.cat.IngestXML("scientist", xmlschema.Figure3Document); err != nil {
				t.Errorf("live ingest: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	stop.Store(true)
	target := p.cat.PublishedSeq()
	tailUntil(t, r, target)
	if got, want := fingerprint(t, r.Catalog()), fingerprint(t, p.cat); got != want {
		t.Fatalf("replica diverged under live ingest:\n%s", got)
	}
}

// Pass returns the no-fault plan entry (helper keeping plans readable).
func Pass() faultio.NetFault { return faultio.Pass }

// Package cache provides the catalog's read-cache substrate: a sharded
// LRU keyed by any comparable type, with singleflight request collapsing
// and generation-stamped invalidation.
//
// Every entry is stamped with the generation the caller observed when it
// was stored. A lookup presents the generation it currently observes; an
// entry whose stamp differs is treated as a miss and dropped. Mutators
// (catalog ingest, delete, publish, registration) bump the generation
// once, so invalidating every derived result — evaluated query IDs,
// rebuilt response documents, memoized index probes — is a single atomic
// increment with no per-entry dependency tracking.
//
// The monotonicity contract: a value stored under generation g must have
// been computed from state that was current while the generation was
// still g (the catalog guarantees this by computing and storing under
// its read lock, which excludes generation bumps). Values computed from
// *newer* state than their stamp are harmless only for grow-only state
// (the definitions registry); see the catalog wiring for where that
// weaker contract is relied on.
package cache

import (
	"sync"

	"github.com/gridmeta/hybridcat/internal/obs"
)

// Stats is a point-in-time snapshot of one cache's counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Stale     uint64 `json:"stale"`     // entries dropped on generation mismatch
	Collapses uint64 `json:"collapses"` // loads answered by joining an in-flight compute
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// Cache is a sharded, generation-stamped LRU. The zero value and the nil
// cache are both valid "disabled" caches: every lookup misses without
// recording stats and GetOrCompute degenerates to calling the loader.
type Cache[K comparable, V any] struct {
	shards []shard[K, V]
	hash   func(K) uint64
	cap    int // total capacity across shards

	// Counters are obs handles so a registry can adopt them; New starts
	// them detached. They are swapped only by Instrument, before the
	// cache is shared (see Instrument).
	hits, misses, evictions, stale, collapses *obs.Counter
}

// entry is one cached value; entries form the shard's LRU list.
type entry[K comparable, V any] struct {
	key        K
	gen        uint64
	val        V
	prev, next *entry[K, V]
}

// call is one in-flight computation joiners wait on.
type call[V any] struct {
	gen  uint64
	done chan struct{}
	val  V
	err  error
}

type shard[K comparable, V any] struct {
	mu       sync.Mutex
	entries  map[K]*entry[K, V]
	inflight map[K]*call[V]
	// LRU list: head is most recent, tail next to be evicted.
	head, tail *entry[K, V]
	cap        int
}

// New builds a cache holding up to capacity entries, split across shards
// sized for low lock contention. hash maps a key to its shard; use
// StringHash/Int64Hash or any well-mixed function. capacity <= 0 returns
// nil — a valid, always-miss cache.
func New[K comparable, V any](capacity int, hash func(K) uint64) *Cache[K, V] {
	if capacity <= 0 {
		return nil
	}
	nShards := 16
	for nShards > 1 && capacity/nShards < 8 {
		nShards /= 2
	}
	c := &Cache[K, V]{shards: make([]shard[K, V], nShards), hash: hash, cap: capacity}
	c.hits, c.misses, c.evictions = obs.NewCounter(), obs.NewCounter(), obs.NewCounter()
	c.stale, c.collapses = obs.NewCounter(), obs.NewCounter()
	per := (capacity + nShards - 1) / nShards
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].entries = make(map[K]*entry[K, V])
		c.shards[i].inflight = make(map[K]*call[V])
	}
	return c
}

func (c *Cache[K, V]) shardFor(key K) *shard[K, V] {
	return &c.shards[c.hash(key)%uint64(len(c.shards))]
}

// Get returns the value stored for key at the given generation. An entry
// stamped with a different generation counts as stale and is dropped.
func (c *Cache[K, V]) Get(gen uint64, key K) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	v, ok := s.get(c, gen, key)
	s.mu.Unlock()
	return v, ok
}

// get is Get under the shard lock.
func (s *shard[K, V]) get(c *Cache[K, V], gen uint64, key K) (V, bool) {
	var zero V
	e := s.entries[key]
	if e == nil {
		c.misses.Inc()
		return zero, false
	}
	if e.gen != gen {
		s.unlink(e)
		delete(s.entries, key)
		c.stale.Inc()
		c.misses.Inc()
		return zero, false
	}
	s.moveFront(e)
	c.hits.Inc()
	return e.val, true
}

// Put stores a value stamped with the given generation, evicting the
// least recently used entry if the shard is full.
func (c *Cache[K, V]) Put(gen uint64, key K, val V) {
	if c == nil {
		return
	}
	s := c.shardFor(key)
	s.mu.Lock()
	s.put(c, gen, key, val)
	s.mu.Unlock()
}

// put is Put under the shard lock.
func (s *shard[K, V]) put(c *Cache[K, V], gen uint64, key K, val V) {
	if e := s.entries[key]; e != nil {
		e.gen, e.val = gen, val
		s.moveFront(e)
		return
	}
	e := &entry[K, V]{key: key, gen: gen, val: val}
	s.entries[key] = e
	s.pushFront(e)
	if len(s.entries) > s.cap {
		victim := s.tail
		s.unlink(victim)
		delete(s.entries, victim.key)
		c.evictions.Inc()
	}
}

// GetOrCompute returns the cached value for key at the given generation,
// or runs load to produce it. Concurrent callers for the same key at the
// same generation collapse onto one load (singleflight); the others
// block and share its result. Errors are returned to every collapsed
// caller and never cached. A caller presenting a different generation
// than an in-flight load computes independently rather than joining.
func (c *Cache[K, V]) GetOrCompute(gen uint64, key K, load func() (V, error)) (V, error) {
	if c == nil {
		return load()
	}
	s := c.shardFor(key)
	s.mu.Lock()
	if v, ok := s.get(c, gen, key); ok {
		s.mu.Unlock()
		return v, nil
	}
	if fl := s.inflight[key]; fl != nil && fl.gen == gen {
		s.mu.Unlock()
		<-fl.done
		c.collapses.Inc()
		return fl.val, fl.err
	}
	fl := &call[V]{gen: gen, done: make(chan struct{})}
	s.inflight[key] = fl
	s.mu.Unlock()

	fl.val, fl.err = load()
	s.mu.Lock()
	if s.inflight[key] == fl {
		delete(s.inflight, key)
	}
	if fl.err == nil {
		s.put(c, gen, key, fl.val)
	}
	s.mu.Unlock()
	close(fl.done)
	return fl.val, fl.err
}

// Purge drops every entry. In-flight computations are unaffected.
func (c *Cache[K, V]) Purge() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[K]*entry[K, V])
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
}

// Instrument re-homes the cache's counters onto reg under the
// cache_hits_total / cache_misses_total / cache_evictions_total /
// cache_stale_total / cache_collapses_total families labeled
// {layer="..."}, and registers cache_entries and cache_capacity gauges
// sampled at exposition time. Stats keeps reporting the same numbers
// through the shared handles. Call it once, after New and before the
// cache is shared between goroutines; counts recorded while detached
// are not carried over. No-op on a nil cache or nil registry.
func (c *Cache[K, V]) Instrument(reg *obs.Registry, layer string) {
	if c == nil || reg == nil {
		return
	}
	l := obs.L("layer", layer)
	c.hits = reg.Counter("cache_hits_total", l)
	c.misses = reg.Counter("cache_misses_total", l)
	c.evictions = reg.Counter("cache_evictions_total", l)
	c.stale = reg.Counter("cache_stale_total", l)
	c.collapses = reg.Counter("cache_collapses_total", l)
	reg.GaugeFunc("cache_entries", func() int64 { return int64(c.Len()) }, l)
	cap := int64(c.cap)
	reg.GaugeFunc("cache_capacity", func() int64 { return cap }, l)
}

// Stats snapshots the counters. A nil cache reports zeros.
func (c *Cache[K, V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evictions.Value(),
		Stale:     c.stale.Value(),
		Collapses: c.collapses.Value(),
		Capacity:  c.cap,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// Len returns the number of live entries.
func (c *Cache[K, V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// LRU list helpers; the caller holds the shard lock.

func (s *shard[K, V]) pushFront(e *entry[K, V]) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard[K, V]) moveFront(e *entry[K, V]) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// StringHash is FNV-1a over the key bytes; a good default shard hash for
// string keys.
func StringHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Int64Hash mixes an int64 key (splitmix64 finalizer), so sequential IDs
// spread across shards.
func Int64Hash(v int64) uint64 {
	x := uint64(v)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetPutAndGenerationInvalidation(t *testing.T) {
	c := New[string, int](64, StringHash)
	if _, ok := c.Get(1, "a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(1, "a", 10)
	if v, ok := c.Get(1, "a"); !ok || v != 10 {
		t.Fatalf("Get = %d,%v want 10,true", v, ok)
	}
	// A different generation must miss and drop the entry.
	if _, ok := c.Get(2, "a"); ok {
		t.Fatal("stale entry served across generations")
	}
	st := c.Stats()
	if st.Stale != 1 {
		t.Errorf("stale = %d, want 1", st.Stale)
	}
	if st.Hits != 1 || st.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 1/2", st.Hits, st.Misses)
	}
	if c.Len() != 0 {
		t.Errorf("len = %d after stale drop, want 0", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity 8 collapses to a single shard of 8.
	c := New[string, int](8, StringHash)
	if len(c.shards) != 1 {
		t.Fatalf("shards = %d, want 1 for capacity 8", len(c.shards))
	}
	for i := 0; i < 8; i++ {
		c.Put(1, fmt.Sprintf("k%d", i), i)
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := c.Get(1, "k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Put(1, "k8", 8)
	if _, ok := c.Get(1, "k1"); ok {
		t.Fatal("LRU victim k1 survived")
	}
	if _, ok := c.Get(1, "k0"); !ok {
		t.Fatal("recently used k0 evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if c.Len() != 8 {
		t.Errorf("len = %d, want 8", c.Len())
	}
}

func TestPutOverwritesAndRestamps(t *testing.T) {
	c := New[string, int](16, StringHash)
	c.Put(1, "a", 1)
	c.Put(2, "a", 2)
	if v, ok := c.Get(2, "a"); !ok || v != 2 {
		t.Fatalf("Get = %d,%v want 2,true", v, ok)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
}

func TestGetOrComputeSingleflight(t *testing.T) {
	c := New[string, int](64, StringHash)
	var computes atomic.Int64
	inLoad := make(chan struct{})
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]int, waiters)
	run := func(i int) {
		defer wg.Done()
		v, err := c.GetOrCompute(1, "k", func() (int, error) {
			computes.Add(1)
			close(inLoad)
			<-release
			return 42, nil
		})
		if err != nil {
			t.Errorf("GetOrCompute: %v", err)
		}
		results[i] = v
	}
	// Start one loader, wait until it is inside the compute, then pile the
	// rest on: with the value unstored and the flight registered, every
	// joiner must collapse onto it.
	wg.Add(1)
	go run(0)
	<-inLoad
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go run(i)
	}
	// Each joiner records its miss under the same lock hold that commits
	// it to the flight, so misses == waiters means everyone joined.
	for c.Stats().Misses < waiters {
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("loader ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("waiter %d got %d, want 42", i, v)
		}
	}
	if st := c.Stats(); st.Collapses != waiters-1 {
		t.Errorf("collapses = %d, want %d", st.Collapses, waiters-1)
	}
	// The computed value is now cached.
	if v, ok := c.Get(1, "k"); !ok || v != 42 {
		t.Fatalf("Get after compute = %d,%v want 42,true", v, ok)
	}
}

func TestGetOrComputeErrorNotCached(t *testing.T) {
	c := New[string, int](64, StringHash)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, err := c.GetOrCompute(1, "k", func() (int, error) {
			calls++
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if calls != 2 {
		t.Errorf("loader ran %d times, want 2 (errors are not cached)", calls)
	}
	if c.Len() != 0 {
		t.Errorf("len = %d after errors, want 0", c.Len())
	}
}

func TestGetOrComputeDifferentGenerationDoesNotJoin(t *testing.T) {
	c := New[string, int](64, StringHash)
	inLoad := make(chan struct{})
	release := make(chan struct{})
	done := make(chan int)
	go func() {
		v, _ := c.GetOrCompute(1, "k", func() (int, error) {
			close(inLoad)
			<-release
			return 1, nil
		})
		done <- v
	}()
	<-inLoad
	// A newer-generation caller must not wait on the gen-1 flight.
	v, err := c.GetOrCompute(2, "k", func() (int, error) { return 2, nil })
	if err != nil || v != 2 {
		t.Fatalf("gen-2 GetOrCompute = %d,%v want 2,nil", v, err)
	}
	close(release)
	if v := <-done; v != 1 {
		t.Fatalf("gen-1 flight returned %d, want 1", v)
	}
	// The gen-2 value was stored after the gen-1 flight started; whichever
	// stamp won, a gen-2 read must never see the gen-1 value.
	if v, ok := c.Get(2, "k"); ok && v != 2 {
		t.Fatalf("gen-2 read returned gen-1 value %d", v)
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache[string, int]
	if _, ok := c.Get(1, "a"); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(1, "a", 1)
	v, err := c.GetOrCompute(1, "a", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("nil GetOrCompute = %d,%v want 7,nil", v, err)
	}
	c.Purge()
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil stats = %+v, want zero", st)
	}
	if New[string, int](0, StringHash) != nil {
		t.Fatal("capacity 0 should build a nil (disabled) cache")
	}
}

func TestPurge(t *testing.T) {
	c := New[int64, string](128, Int64Hash)
	for i := int64(0); i < 50; i++ {
		c.Put(3, i, "v")
	}
	if c.Len() != 50 {
		t.Fatalf("len = %d, want 50", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d, want 0", c.Len())
	}
	if _, ok := c.Get(3, int64(7)); ok {
		t.Fatal("purged entry served")
	}
}

// TestConcurrentMixedUse hammers one cache from many goroutines across
// generations; run under -race this validates the locking discipline.
func TestConcurrentMixedUse(t *testing.T) {
	c := New[int64, int64](256, Int64Hash)
	var gen atomic.Uint64
	gen.Store(1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				g := gen.Load()
				key := int64(i % 97)
				switch i % 5 {
				case 0:
					c.Put(g, key, key*2)
				case 1:
					if v, ok := c.Get(g, key); ok && v != key*2 {
						t.Errorf("Get(%d) = %d, want %d", key, v, key*2)
						return
					}
				case 2:
					v, err := c.GetOrCompute(g, key, func() (int64, error) { return key * 2, nil })
					if err != nil || v != key*2 {
						t.Errorf("GetOrCompute(%d) = %d,%v", key, v, err)
						return
					}
				case 3:
					if w == 0 && i%251 == 0 {
						gen.Add(1)
					}
				case 4:
					if w == 1 && i%503 == 0 {
						c.Purge()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("expected both hits and misses, got %+v", st)
	}
}

// Package retry implements jittered exponential backoff for operations
// against flaky transports — the replication tailer's reconnect policy.
// Randomness is injected (Policy.Rand), so tests get byte-identical
// backoff schedules, and waiting respects context cancellation.
package retry

import (
	"context"
	"errors"
	"math/rand/v2"
	"time"
)

// Policy describes a backoff schedule. The zero value is usable and
// equals DefaultPolicy's shape with no attempt cap.
type Policy struct {
	// Initial is the first delay; 0 defaults to 100ms.
	Initial time.Duration
	// Max caps the delay growth; 0 defaults to 5s.
	Max time.Duration
	// Factor is the per-attempt growth multiplier; values <= 1 default
	// to 2.
	Factor float64
	// Jitter is the fraction of each delay that is randomized: the
	// delay for attempt n is backoff(n) * (1 - Jitter + Jitter*r) with
	// r uniform in [0, 1). 0 means deterministic full delays; values
	// outside [0, 1] are clamped.
	Jitter float64
	// MaxAttempts gives up after that many failed attempts; 0 retries
	// until the context cancels.
	MaxAttempts int
	// Rand supplies the jitter's randomness as a uniform [0, 1) draw.
	// nil uses math/rand/v2. Tests inject a deterministic sequence.
	Rand func() float64
	// Sleep, when non-nil, replaces the context-aware wait; tests
	// inject it to run schedules instantly while recording the delays.
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultPolicy is a sensible reconnect policy: 100ms doubling to a 5s
// cap with half-width jitter, retrying until cancelled.
var DefaultPolicy = Policy{
	Initial: 100 * time.Millisecond,
	Max:     5 * time.Second,
	Factor:  2,
	Jitter:  0.5,
}

// ErrGiveUp wraps the last attempt's error once MaxAttempts is
// exhausted, so callers can distinguish "ran out of retries" from a
// permanent refusal.
var ErrGiveUp = errors.New("retry: attempts exhausted")

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Do stops immediately and returns it unwrapped:
// the operation failed in a way more attempts cannot fix (a protocol
// violation, an auth refusal — not a torn connection).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// norm returns the policy with defaults and clamps applied.
func (p Policy) norm() Policy {
	if p.Initial <= 0 {
		p.Initial = DefaultPolicy.Initial
	}
	if p.Max <= 0 {
		p.Max = DefaultPolicy.Max
	}
	if p.Factor <= 1 {
		p.Factor = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	return p
}

// Backoff returns the delay before retry attempt n (0-based): the
// exponential Initial*Factor^n, capped at Max, with the configured
// jitter fraction drawn from Rand. Deterministic given a deterministic
// Rand.
func (p Policy) Backoff(n int) time.Duration {
	p = p.norm()
	d := float64(p.Initial)
	for i := 0; i < n; i++ {
		d *= p.Factor
		if d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 {
		d *= 1 - p.Jitter + p.Jitter*p.Rand()
	}
	return time.Duration(d)
}

// Do runs fn until it succeeds, returns a Permanent error, the context
// cancels, or MaxAttempts is exhausted (then the last error arrives
// wrapped in ErrGiveUp). Between attempts it waits the jittered backoff
// for the attempt number, resetting nothing — the schedule restarts
// with each Do call.
func Do(ctx context.Context, p Policy, fn func() error) error {
	p = p.norm()
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	var last error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return errors.Join(err, last)
			}
			return err
		}
		err := fn()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		last = err
		if p.MaxAttempts > 0 && attempt+1 >= p.MaxAttempts {
			return errors.Join(ErrGiveUp, last)
		}
		if err := sleep(ctx, p.Backoff(attempt)); err != nil {
			return errors.Join(err, last)
		}
	}
}

// sleepCtx waits d or until the context cancels.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

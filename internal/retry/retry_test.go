package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// seqRand returns a Rand that replays the given [0,1) values in order.
func seqRand(vals ...float64) func() float64 {
	i := 0
	return func() float64 {
		v := vals[i%len(vals)]
		i++
		return v
	}
}

func TestBackoffDeterministicJitter(t *testing.T) {
	p := Policy{Initial: 100 * time.Millisecond, Max: 5 * time.Second, Factor: 2, Jitter: 0.5,
		Rand: seqRand(0, 0.5, 1.0-1e-9)}
	// Jitter 0.5: delay scales by 1-0.5+0.5*r = 0.5 + r/2.
	if got := p.Backoff(0); got != 50*time.Millisecond {
		t.Errorf("attempt 0 (r=0): %v, want 50ms", got)
	}
	if got := p.Backoff(1); got != 150*time.Millisecond { // 200ms * 0.75
		t.Errorf("attempt 1 (r=0.5): %v, want 150ms", got)
	}
	if got := p.Backoff(2); got < 399*time.Millisecond || got > 400*time.Millisecond {
		t.Errorf("attempt 2 (r~1): %v, want ~400ms", got)
	}
	// Identical Rand sequences give identical schedules.
	a := Policy{Jitter: 0.5, Rand: seqRand(0.1, 0.9, 0.3)}
	b := Policy{Jitter: 0.5, Rand: seqRand(0.1, 0.9, 0.3)}
	for n := 0; n < 3; n++ {
		if a.Backoff(n) != b.Backoff(n) {
			t.Errorf("attempt %d: schedules diverge", n)
		}
	}
}

func TestBackoffCap(t *testing.T) {
	p := Policy{Initial: time.Second, Max: 4 * time.Second, Factor: 2, Jitter: 0}
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 4 * time.Second, 4 * time.Second}
	for n, w := range want {
		if got := p.Backoff(n); got != w {
			t.Errorf("attempt %d: %v, want %v", n, got, w)
		}
	}
	// A huge attempt number must not overflow past the cap.
	if got := p.Backoff(500); got != 4*time.Second {
		t.Errorf("attempt 500: %v, want 4s", got)
	}
}

func TestDoRetriesThenSucceeds(t *testing.T) {
	var slept []time.Duration
	p := Policy{Initial: 10 * time.Millisecond, Factor: 2, Jitter: 0,
		Sleep: func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil }}
	calls := 0
	err := Do(context.Background(), p, func() error {
		calls++
		if calls < 4 {
			return fmt.Errorf("flaky %d", calls)
		}
		return nil
	})
	if err != nil || calls != 4 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if fmt.Sprint(slept) != fmt.Sprint(want) {
		t.Errorf("slept %v, want %v", slept, want)
	}
}

func TestDoGivesUp(t *testing.T) {
	p := Policy{MaxAttempts: 3, Jitter: 0,
		Sleep: func(context.Context, time.Duration) error { return nil }}
	calls := 0
	boom := errors.New("boom")
	err := Do(context.Background(), p, func() error { calls++; return boom })
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, ErrGiveUp) || !errors.Is(err, boom) {
		t.Errorf("err = %v, want ErrGiveUp wrapping boom", err)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	calls := 0
	refused := errors.New("refused")
	err := Do(context.Background(), Policy{}, func() error {
		calls++
		return Permanent(refused)
	})
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, refused) || errors.Is(err, ErrGiveUp) {
		t.Errorf("err = %v, want bare refused", err)
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
}

func TestDoContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{Sleep: func(ctx context.Context, _ time.Duration) error {
		cancel() // cancelled while waiting for the next attempt
		return ctx.Err()
	}}
	err := Do(ctx, p, func() error { calls++; return errors.New("flaky") })
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want Canceled", err)
	}
	// Pre-cancelled: fn never runs.
	err = Do(ctx, Policy{}, func() error { t.Error("fn ran"); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want Canceled", err)
	}
}

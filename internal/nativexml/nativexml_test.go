package nativexml

import (
	"testing"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
	"github.com/gridmeta/hybridcat/internal/xpath"
)

func fig3(t *testing.T) *xmldoc.Node {
	t.Helper()
	d, err := xmldoc.ParseString(xmlschema.Figure3Document)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestIngestClonesDocuments(t *testing.T) {
	s := New(xmlschema.MustLEAD())
	doc := fig3(t)
	id, err := s.Ingest("u", doc)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's tree must not affect the stored copy.
	doc.FindAll("themekt")[0].Text = "MUTATED"
	resp, err := s.Fetch([]int64{id})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := xmldoc.ParseString(resp[0].XML)
	if got.FindAll("themekt")[0].Text != "CF NetCDF" {
		t.Error("store shares storage with caller document")
	}
}

func TestIndexPreselectionMatchesFullScan(t *testing.T) {
	indexed := New(xmlschema.MustLEAD(), "themekey")
	plain := New(xmlschema.MustLEAD())
	docs := []*xmldoc.Node{fig3(t)}
	alt := fig3(t)
	alt.FindAll("themekey")[0].Text = "unique_keyword"
	docs = append(docs, alt)
	for _, d := range docs {
		if _, err := indexed.Ingest("u", d); err != nil {
			t.Fatal(err)
		}
		if _, err := plain.Ingest("u", d); err != nil {
			t.Fatal(err)
		}
	}
	q := &catalog.Query{}
	q.Attr("theme", "").AddElem("themekey", "", relstore.OpEq, relstore.Str("unique_keyword"))
	a, err := indexed.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Fatalf("indexed %v vs plain %v", a, b)
	}
	// Non-equality predicates bypass the index but still answer.
	q = &catalog.Query{}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpGe, relstore.Int(500))
	if ids, err := indexed.Evaluate(q); err != nil || len(ids) != 2 {
		t.Fatalf("range through index store = %v, %v", ids, err)
	}
}

func TestSelectPathAcrossCollection(t *testing.T) {
	s := New(xmlschema.MustLEAD())
	for i := 0; i < 3; i++ {
		d := fig3(t)
		if i == 1 {
			for _, a := range d.FindAll("attr") {
				if a.ChildText("attrlabl") == "dx" {
					a.Child("attrv").Text = "250"
				}
			}
		}
		if _, err := s.Ingest("u", d); err != nil {
			t.Fatal(err)
		}
	}
	hits := s.SelectPath(xpath.MustCompile("//attr[attrlabl='dx'][attrv=250]"))
	if len(hits) != 1 || hits[0] != 2 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestStorageAndEmptyQuery(t *testing.T) {
	s := New(xmlschema.MustLEAD(), "themekey")
	if _, err := s.Ingest("u", fig3(t)); err != nil {
		t.Fatal(err)
	}
	if s.StorageBytes() <= 0 {
		t.Error("storage should be positive")
	}
	if _, err := s.Evaluate(&catalog.Query{}); err == nil {
		t.Error("empty query should fail")
	}
	if resp, _ := s.Fetch([]int64{99}); len(resp) != 0 {
		t.Error("unknown fetch should be empty")
	}
}

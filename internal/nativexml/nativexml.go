// Package nativexml is the Xindice-like native XML store used to
// reproduce the paper's §1 throughput claim: documents live as parsed
// trees in named collections, optional value indexes map (tag, text) to
// document IDs, and queries evaluate tree patterns per candidate
// document.
package nativexml

import (
	"fmt"
	"sort"
	"sync"

	"github.com/gridmeta/hybridcat/internal/baseline"
	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
	"github.com/gridmeta/hybridcat/internal/xpath"
)

// Store is an in-memory native XML collection store.
type Store struct {
	Schema *xmlschema.Schema

	mu      sync.RWMutex
	nextID  int64
	docs    map[int64]*xmldoc.Node
	indexes map[string]map[string][]int64 // tag -> text -> doc IDs
}

// New creates an empty collection. Indexed tags get a value index used
// to preselect candidates for equality predicates (Xindice's element
// value indexes).
func New(schema *xmlschema.Schema, indexedTags ...string) *Store {
	s := &Store{
		Schema:  schema,
		docs:    make(map[int64]*xmldoc.Node),
		indexes: make(map[string]map[string][]int64),
	}
	for _, t := range indexedTags {
		s.indexes[t] = make(map[string][]int64)
	}
	return s
}

// Name implements baseline.Store.
func (s *Store) Name() string { return "nativexml" }

// Ingest implements baseline.Store. The tree is cloned so later caller
// mutations cannot corrupt the collection.
func (s *Store) Ingest(owner string, doc *xmldoc.Node) (int64, error) {
	_ = owner
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := s.nextID
	c := doc.Clone()
	s.docs[id] = c
	for tag, ix := range s.indexes {
		for _, n := range c.FindAll(tag) {
			if n.IsLeaf() {
				ix[n.Text] = append(ix[n.Text], id)
			}
		}
	}
	return id, nil
}

// Evaluate implements baseline.Store: candidates are narrowed through the
// value index when a top-level criterion has an indexed equality
// predicate; each candidate is then pattern-matched against its tree.
func (s *Store) Evaluate(q *catalog.Query) ([]int64, error) {
	if len(q.Attrs) == 0 {
		return nil, fmt.Errorf("nativexml: empty query")
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	candidates := s.candidateIDs(q)
	var out []int64
	for _, id := range candidates {
		if baseline.DocMatches(s.Schema, s.docs[id], q) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// candidateIDs returns the IDs to pattern-match: the hits of the first
// usable indexed equality predicate, or every document.
func (s *Store) candidateIDs(q *catalog.Query) []int64 {
	for _, crit := range q.Attrs {
		for _, p := range crit.Elems {
			if p.Op.String() != "=" {
				continue
			}
			ix, ok := s.indexes[p.Name]
			if !ok {
				continue
			}
			hits := ix[p.Value.AsString()]
			out := append([]int64(nil), hits...)
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return dedupSorted(out)
		}
	}
	all := make([]int64, 0, len(s.docs))
	for id := range s.docs {
		all = append(all, id)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

func dedupSorted(ids []int64) []int64 {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// SelectPath evaluates an XPath-lite expression across the collection,
// returning matching document IDs — the Xindice-style query interface.
func (s *Store) SelectPath(expr *xpath.Expr) []int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []int64
	for id, doc := range s.docs {
		if expr.Matches(doc) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Fetch implements baseline.Store: documents serialize on the way out.
func (s *Store) Fetch(ids []int64) ([]catalog.Response, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []catalog.Response
	for _, id := range ids {
		if doc, ok := s.docs[id]; ok {
			out = append(out, catalog.Response{ObjectID: id, XML: doc.String()})
		}
	}
	return out, nil
}

// StorageBytes implements baseline.Store: tree nodes dominate, estimated
// per element plus text payloads plus index postings.
func (s *Store) StorageBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, doc := range s.docs {
		doc.Walk(func(n *xmldoc.Node) bool {
			total += 96 // node struct + slice headers
			total += int64(len(n.Tag)) + int64(len(n.Text))
			return true
		})
	}
	for _, ix := range s.indexes {
		for text, ids := range ix {
			total += int64(len(text)) + int64(8*len(ids))
		}
	}
	return total
}

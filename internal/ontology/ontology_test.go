package ontology

import (
	"fmt"
	"testing"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

func TestAddAndRelations(t *testing.T) {
	o := New()
	if err := o.Add("a", ""); err != nil {
		t.Fatal(err)
	}
	if err := o.Add("b", "a"); err != nil {
		t.Fatal(err)
	}
	if err := o.Add("c", "a"); err != nil {
		t.Fatal(err)
	}
	if err := o.Add("d", "b"); err != nil {
		t.Fatal(err)
	}
	if o.Broader("d") != "b" || o.Broader("a") != "" {
		t.Error("Broader wrong")
	}
	if fmt.Sprint(o.Narrower("a")) != "[b c]" {
		t.Errorf("Narrower = %v", o.Narrower("a"))
	}
	if fmt.Sprint(o.Closure("a")) != "[a b c d]" {
		t.Errorf("Closure = %v", o.Closure("a"))
	}
	if fmt.Sprint(o.Closure("unknown")) != "[unknown]" {
		t.Errorf("unknown closure = %v", o.Closure("unknown"))
	}
	if o.Len() != 4 || !o.Has("d") || o.Has("z") {
		t.Error("Len/Has wrong")
	}
	// Errors.
	if err := o.Add("b", ""); err == nil {
		t.Error("duplicate should fail")
	}
	if err := o.Add("", "a"); err == nil {
		t.Error("empty term should fail")
	}
	if err := o.Add("x", "nothere"); err == nil {
		t.Error("unknown broader should fail")
	}
}

func TestParse(t *testing.T) {
	o, err := Parse(CFKeywords)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Has("precipitation") || !o.Has("eastward_wind") {
		t.Error("terms missing")
	}
	cl := o.Closure("precipitation")
	if len(cl) != 4 {
		t.Errorf("precipitation closure = %v", cl)
	}
	// Errors.
	for name, text := range map[string]string{
		"odd indent": "a\n b",
		"level jump": "a\n    b",
		"dup":        "a\na",
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("%s should fail", name)
		}
	}
}

// TestExpandAgainstCatalog runs an ontology-expanded keyword query
// against a real catalog: a search for the broad term "precipitation"
// finds objects tagged only with narrower terms.
func TestExpandAgainstCatalog(t *testing.T) {
	o, err := Parse(CFKeywords)
	if err != nil {
		t.Fatal(err)
	}
	c, err := catalog.Open(xmlschema.MustLEAD(), catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(key string) string {
		return `<LEADresource><resourceID>` + key + `</resourceID><data><idinfo><keywords>
		  <theme><themekt>CF</themekt><themekey>` + key + `</themekey></theme>
		</keywords></idinfo></data></LEADresource>`
	}
	for _, key := range []string{"convective_precipitation_amount", "air_temperature", "stratiform_precipitation_amount"} {
		if _, err := c.IngestXML("u", mk(key)); err != nil {
			t.Fatal(err)
		}
	}
	q := &catalog.Query{}
	q.Attr("theme", "").AddElem("themekey", "", relstore.OpEq, relstore.Str("precipitation"))

	// Unexpanded: no object carries the broad term itself.
	ids, err := c.Evaluate(q)
	if err != nil || len(ids) != 0 {
		t.Fatalf("unexpanded = %v, %v", ids, err)
	}
	// Expanded: both precipitation-tagged objects match.
	eq := Expand(o, q)
	ids, err = c.Evaluate(eq)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ids) != "[1 3]" {
		t.Fatalf("expanded = %v", ids)
	}
	// The original query is untouched.
	if len(q.Attrs[0].Elems[0].OneOf) != 0 {
		t.Error("Expand mutated the input query")
	}
	// Non-matching broad term still matches nothing.
	q2 := &catalog.Query{}
	q2.Attr("theme", "").AddElem("themekey", "", relstore.OpEq, relstore.Str("wind"))
	if ids, _ := c.Evaluate(Expand(o, q2)); len(ids) != 0 {
		t.Fatalf("wind expanded = %v", ids)
	}
}

func TestExpandLeavesOtherPredicatesAlone(t *testing.T) {
	o, _ := Parse(CFKeywords)
	q := &catalog.Query{}
	a := q.Attr("grid", "ARPS")
	a.AddElem("dx", "ARPS", relstore.OpGe, relstore.Int(1000))          // numeric
	a.AddElem("label", "", relstore.OpEq, relstore.Str("not-a-term"))   // unknown term
	a.AddElem("kind", "", relstore.OpNe, relstore.Str("precipitation")) // non-equality
	sub := &catalog.AttrCriteria{Name: "s", Source: "ARPS"}
	sub.AddElem("key", "", relstore.OpEq, relstore.Str("pressure")) // known term in sub
	a.AddSub(sub)
	e := Expand(o, q)
	ep := e.Attrs[0].Elems
	if len(ep[0].OneOf) != 0 || len(ep[1].OneOf) != 0 || len(ep[2].OneOf) != 0 {
		t.Errorf("non-expandable predicates were expanded: %+v", ep)
	}
	if got := len(e.Attrs[0].Subs[0].Elems[0].OneOf); got != 4 {
		t.Errorf("sub expansion = %d values", got)
	}
}

// TestExpandLeafTermNoChange: a term with no narrower terms stays a plain
// equality (closure of size 1).
func TestExpandLeafTermNoChange(t *testing.T) {
	o, _ := Parse(CFKeywords)
	q := &catalog.Query{}
	q.Attr("theme", "").AddElem("themekey", "", relstore.OpEq, relstore.Str("air_temperature"))
	e := Expand(o, q)
	p := e.Attrs[0].Elems[0]
	if len(p.OneOf) != 0 || p.Value.S != "air_temperature" {
		t.Errorf("leaf term changed: %+v", p)
	}
}

// TestOneOfThroughJSON checks the wire format round trip for expanded
// queries.
func TestOneOfThroughJSON(t *testing.T) {
	o, _ := Parse(CFKeywords)
	q := &catalog.Query{}
	q.Attr("theme", "").AddElem("themekey", "", relstore.OpEq, relstore.Str("pressure"))
	e := Expand(o, q)
	data, err := catalog.MarshalQueryJSON(e)
	if err != nil {
		t.Fatal(err)
	}
	back, err := catalog.ParseQueryJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Attrs[0].Elems[0].OneOf) != 4 {
		t.Errorf("round trip OneOf = %+v", back.Attrs[0].Elems[0])
	}
}

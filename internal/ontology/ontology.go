// Package ontology implements the enhancement the paper's §3 sketches:
// "by validating dynamic metadata attributes on insert, the catalog
// provides a consistent, but dynamic set of definitions for query
// purposes that could also be connected to an ontology for enhanced
// search capabilities."
//
// An Ontology is a broader/narrower term hierarchy (a CF-standard-name
// or GCMD keyword tree, say). Expand rewrites equality predicates whose
// value is a known term into OneOf predicates over the term's narrower
// closure, so a query for "precipitation" also finds objects tagged with
// "convective_precipitation_amount".
package ontology

import (
	"bufio"
	"fmt"
	"sort"
	"strings"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/relstore"
)

// Ontology is a forest of terms related by broader/narrower edges. Terms
// are case-sensitive strings; each term has at most one broader term.
type Ontology struct {
	parent   map[string]string
	children map[string][]string
}

// New returns an empty ontology.
func New() *Ontology {
	return &Ontology{parent: map[string]string{}, children: map[string][]string{}}
}

// Add inserts term with the given broader term ("" makes it a root).
// Adding a term twice or creating a cycle fails.
func (o *Ontology) Add(term, broader string) error {
	if term == "" {
		return fmt.Errorf("ontology: empty term")
	}
	if _, dup := o.parent[term]; dup {
		return fmt.Errorf("ontology: term %q already defined", term)
	}
	if broader != "" {
		if _, ok := o.parent[broader]; !ok {
			return fmt.Errorf("ontology: broader term %q not defined", broader)
		}
		for b := broader; b != ""; b = o.parent[b] {
			if b == term {
				return fmt.Errorf("ontology: cycle through %q", term)
			}
		}
	}
	o.parent[term] = broader
	if broader != "" {
		o.children[broader] = append(o.children[broader], term)
	}
	return nil
}

// Has reports whether the term is defined.
func (o *Ontology) Has(term string) bool {
	_, ok := o.parent[term]
	return ok
}

// Broader returns the term's broader term, or "".
func (o *Ontology) Broader(term string) string { return o.parent[term] }

// Narrower returns the term's direct narrower terms, sorted.
func (o *Ontology) Narrower(term string) []string {
	out := append([]string(nil), o.children[term]...)
	sort.Strings(out)
	return out
}

// Closure returns term and every transitively narrower term, sorted.
// Unknown terms yield just themselves.
func (o *Ontology) Closure(term string) []string {
	seen := map[string]bool{term: true}
	frontier := []string{term}
	for len(frontier) > 0 {
		var next []string
		for _, t := range frontier {
			for _, c := range o.children[t] {
				if !seen[c] {
					seen[c] = true
					next = append(next, c)
				}
			}
		}
		frontier = next
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of defined terms.
func (o *Ontology) Len() int { return len(o.parent) }

// Parse reads the indentation format (two spaces per level; '#' comments;
// multiple roots allowed):
//
//	precipitation
//	  convective_precipitation_amount
//	  convective_precipitation_flux
//	pressure
//	  air_pressure_at_cloud_base
func Parse(text string) (*Ontology, error) {
	o := New()
	type frame struct {
		term  string
		depth int
	}
	var stack []frame
	sc := bufio.NewScanner(strings.NewReader(text))
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Text()
		trimmed := strings.TrimLeft(raw, " \t")
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		indent := 0
		for _, r := range raw[:len(raw)-len(trimmed)] {
			if r == '\t' {
				indent += 2
			} else {
				indent++
			}
		}
		if indent%2 != 0 {
			return nil, fmt.Errorf("ontology: line %d: odd indentation", line)
		}
		depth := indent / 2
		for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
			stack = stack[:len(stack)-1]
		}
		broader := ""
		if depth > 0 {
			if len(stack) == 0 || stack[len(stack)-1].depth != depth-1 {
				return nil, fmt.Errorf("ontology: line %d: indentation jumps a level", line)
			}
			broader = stack[len(stack)-1].term
		}
		term := strings.TrimSpace(trimmed)
		if err := o.Add(term, broader); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		stack = append(stack, frame{term, depth})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return o, nil
}

// Expand returns a copy of q in which every string-equality element
// predicate whose value is a defined term is widened to OneOf over the
// term's narrower closure. Predicates with unknown values, non-equality
// operators, or non-string values pass through unchanged. The input
// query is not modified.
func Expand(o *Ontology, q *catalog.Query) *catalog.Query {
	out := &catalog.Query{Owner: q.Owner}
	for _, a := range q.Attrs {
		out.Attrs = append(out.Attrs, expandCriteria(o, a))
	}
	return out
}

func expandCriteria(o *Ontology, a *catalog.AttrCriteria) *catalog.AttrCriteria {
	c := &catalog.AttrCriteria{Name: a.Name, Source: a.Source}
	for _, p := range a.Elems {
		np := p
		if p.Op == relstore.OpEq && len(p.OneOf) == 0 && p.Value.K == relstore.KString && o.Has(p.Value.S) {
			closure := o.Closure(p.Value.S)
			if len(closure) > 1 {
				np.OneOf = make([]relstore.Value, len(closure))
				for i, t := range closure {
					np.OneOf[i] = relstore.Str(t)
				}
				np.Value = relstore.Value{}
			}
		}
		c.Elems = append(c.Elems, np)
	}
	for _, s := range a.Subs {
		c.Subs = append(c.Subs, expandCriteria(o, s))
	}
	return c
}

// CFKeywords is a small CF-standard-name-flavored sample hierarchy used
// by tests, examples, and the demo tooling.
const CFKeywords = `
precipitation
  convective_precipitation_amount
  convective_precipitation_flux
  stratiform_precipitation_amount
pressure
  air_pressure_at_cloud_base
  air_pressure_at_cloud_top
  tendency_of_air_pressure
wind
  eastward_wind
  northward_wind
temperature
  air_temperature
`

package catalog

import (
	"strings"
	"testing"

	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

const fig3Defs = `[
  {"kind":"attribute","name":"grid","source":"ARPS"},
  {"kind":"attribute","name":"grid-stretching","source":"ARPS","parent":"grid"},
  {"kind":"element","name":"dx","source":"ARPS","parent":"grid","type":"float"},
  {"kind":"element","name":"dz","source":"ARPS","parent":"grid","type":"float"},
  {"kind":"element","name":"dzmin","source":"ARPS","parent":"grid-stretching","type":"float"},
  {"kind":"element","name":"reference-height","source":"ARPS","parent":"grid-stretching","type":"float"}
]`

func TestLoadDefinitionsJSON(t *testing.T) {
	c, err := Open(xmlschema.MustLEAD(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadDefinitionsJSON([]byte(fig3Defs)); err != nil {
		t.Fatal(err)
	}
	// The loaded definitions support the worked query end to end.
	if _, err := c.IngestXML("u", xmlschema.Figure3Document); err != nil {
		t.Fatal(err)
	}
	q := &Query{}
	g := q.Attr("grid", "ARPS")
	g.AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(1000))
	sub := &AttrCriteria{Name: "grid-stretching", Source: "ARPS"}
	sub.AddElem("dzmin", "ARPS", relstore.OpEq, relstore.Int(100))
	g.AddSub(sub)
	ids, err := c.Evaluate(q)
	if err != nil || len(ids) != 1 {
		t.Fatalf("query = %v, %v", ids, err)
	}
}

func TestDefinitionsJSONRoundTrip(t *testing.T) {
	c, err := Open(xmlschema.MustLEAD(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadDefinitionsJSON([]byte(fig3Defs)); err != nil {
		t.Fatal(err)
	}
	dump, err := c.DumpDefinitionsJSON()
	if err != nil {
		t.Fatal(err)
	}
	// The dump loads into a fresh catalog and dumps identically.
	c2, _ := Open(xmlschema.MustLEAD(), Options{})
	if err := c2.LoadDefinitionsJSON(dump); err != nil {
		t.Fatal(err)
	}
	dump2, _ := c2.DumpDefinitionsJSON()
	if string(dump) != string(dump2) {
		t.Errorf("round trip differs:\n%s\nvs\n%s", dump, dump2)
	}
	// Structural definitions are not dumped.
	if strings.Contains(string(dump), `"theme"`) {
		t.Error("dump should carry dynamic definitions only")
	}
}

func TestLoadDefinitionsJSONErrors(t *testing.T) {
	c, _ := Open(xmlschema.MustLEAD(), Options{})
	bad := []string{
		`not json`,
		`[{"kind":"mystery","name":"x"}]`,
		`[{"kind":"attribute","name":"a","parent":"ghost"}]`,
		`[{"kind":"element","name":"e","parent":"ghost","type":"int"}]`,
		`[{"kind":"attribute","name":"a","source":"s"},
		  {"kind":"element","name":"e","parent":"a","type":"complex128"}]`,
	}
	for _, s := range bad {
		if err := c.LoadDefinitionsJSON([]byte(s)); err == nil {
			t.Errorf("LoadDefinitionsJSON(%s) should fail", s)
		}
	}
}

func TestSearchPage(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	for i := 0; i < 7; i++ {
		if _, err := c.IngestXML("u", fig3Variant(t, "1000")); err != nil {
			t.Fatal(err)
		}
	}
	q := &Query{}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(1000))

	resp, total, err := c.SearchPage(q, 0, 3)
	if err != nil || total != 7 || len(resp) != 3 || resp[0].ObjectID != 1 {
		t.Fatalf("page0 = %d results, total %d, %v", len(resp), total, err)
	}
	resp, total, _ = c.SearchPage(q, 6, 3)
	if total != 7 || len(resp) != 1 || resp[0].ObjectID != 7 {
		t.Fatalf("last page = %d results, total %d", len(resp), total)
	}
	resp, total, _ = c.SearchPage(q, 10, 3)
	if total != 7 || len(resp) != 0 {
		t.Fatalf("past-end page = %d results", len(resp))
	}
	// limit <= 0 means everything.
	resp, _, _ = c.SearchPage(q, 2, 0)
	if len(resp) != 5 {
		t.Fatalf("unlimited tail = %d results", len(resp))
	}
}

package catalog

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
)

// DocError ties one batch ingest failure to the input index of the
// document that caused it.
type DocError struct {
	Index int
	Err   error
}

func (e *DocError) Error() string {
	return fmt.Sprintf("document %d: %v", e.Index, e.Err)
}

func (e *DocError) Unwrap() error { return e.Err }

// BatchError reports every failing document of a batch, ordered by input
// index. The ordering is deterministic regardless of which shredding
// goroutine finished first.
type BatchError struct {
	Docs []DocError
}

func (e *BatchError) Error() string {
	if len(e.Docs) == 1 {
		return fmt.Sprintf("catalog: batch document %d: %v", e.Docs[0].Index, e.Docs[0].Err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "catalog: %d batch documents failed:", len(e.Docs))
	for i := range e.Docs {
		fmt.Fprintf(&b, "\n  document %d: %v", e.Docs[i].Index, e.Docs[i].Err)
	}
	return b.String()
}

// Unwrap exposes the per-document causes to errors.Is/As.
func (e *BatchError) Unwrap() []error {
	out := make([]error, len(e.Docs))
	for i := range e.Docs {
		out[i] = &e.Docs[i]
	}
	return out
}

// IngestBatch shreds documents concurrently and inserts the results in
// document order, returning the assigned object IDs. Shredding is the
// CPU-bound phase (tree walks, serialization, validation) and
// parallelizes across workers; row insertion stays serialized under the
// catalog lock for multi-table consistency.
//
// The batch is all-or-nothing: if any document fails validation, nothing
// is stored and the returned *BatchError lists every failing document by
// input index, ascending. workers <= 0 uses GOMAXPROCS.
func (c *Catalog) IngestBatch(owner string, docs []*xmldoc.Node, workers int) ([]int64, error) {
	if len(docs) == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) {
		workers = len(docs)
	}

	// Phase 1: parallel shredding.
	results := make([]*core.ShredResult, len(docs))
	errs := make([]error, len(docs))
	var wg sync.WaitGroup
	next := make(chan int, len(docs))
	for i := range docs {
		next <- i
	}
	close(next)
	opts := core.Options{Owner: owner, AutoRegister: c.opts.AutoRegister, Lenient: c.opts.Lenient}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = c.shredder.Shred(docs[i], opts)
			}
		}()
	}
	wg.Wait()
	var failed []DocError
	for i, err := range errs {
		if err != nil {
			failed = append(failed, DocError{Index: i, Err: err})
		}
	}
	if len(failed) > 0 {
		return nil, &BatchError{Docs: failed}
	}

	// Phase 2: ordered insertion. The whole batch runs as one mutation
	// and so becomes one write-ahead log record: all-or-nothing on disk,
	// and one fsync amortized over every document.
	c.mu.Lock()
	defer c.mu.Unlock()
	var ids []int64
	err := c.mutateLocked(func() error {
		if c.opts.AutoRegister {
			if err := c.syncDefTables(); err != nil {
				return err
			}
		}
		objT := c.wtab(TObjects)
		ids = make([]int64, 0, len(docs))
		created := c.clock().UTC().Format(time.RFC3339)
		for i, doc := range docs {
			id := objT.NextAutoID()
			name := doc.Tag
			if rid := doc.Child("resourceID"); rid != nil {
				name = rid.Text
			}
			if _, err := objT.Insert(relstore.Row{
				relstore.Int(id), relstore.Str(name), relstore.Str(owner), relstore.Str(created),
				relstore.Bool(false),
			}); err != nil {
				return err
			}
			if err := c.insertShred(id, results[i]); err != nil {
				return &BatchError{Docs: []DocError{{Index: i, Err: err}}}
			}
			ids = append(ids, id)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ids, nil
}

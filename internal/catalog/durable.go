package catalog

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/faultio"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/wal"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// Durability: every mutating catalog operation runs inside mutateLocked,
// which applies fn's row operations to a copy-on-write relstore
// transaction, captures them (via the relstore journal hook), commits
// them as ONE write-ahead log record, and only then publishes the built
// version with the atomic pointer swap. The journaled commit is
// therefore build-version → append WAL → swap pointer: a mutation that
// fails, or whose record cannot be made durable, simply aborts the
// builder — there is no rollback code to get wrong, and readers never
// observe a state the log does not contain. A multi-table mutation — an
// ingest touching five tables, a whole batch — is atomic both on disk
// and in memory: after a crash it is replayed entirely or not at all,
// and no concurrent reader ever sees it half-applied.
//
// The log is physical (row contents), not logical (catalog operations),
// so replay is deterministic: it does not depend on the clock, on
// auto-registration ordering, or on any other state the original
// execution observed. Row IDs are an in-memory artifact and are not
// stable across restarts; replay locates rows to delete or update by
// content instead.
//
// Checkpoints bound recovery time: every CheckpointEvery commits the
// catalog writes an atomic snapshot (temp + fsync + rename) carrying the
// WAL high-water mark, then swaps in a fresh log. Replay skips records
// at or below the snapshot's mark, so a crash between the snapshot
// rename and the log swap — which leaves old records behind — recovers
// correctly: the stale records are recognized and ignored.

// ErrDurability marks a mutation that failed because its write-ahead
// record (or a checkpoint) could not be made durable. The in-memory
// state has been rolled back; the catalog still serves reads and may
// accept later mutations if the underlying fault was transient.
var ErrDurability = errors.New("catalog: durability failure")

// DurabilityOptions configures OpenDurable.
type DurabilityOptions struct {
	// FS is the filesystem the log and snapshots live on; nil uses the
	// real one. Tests inject a faultio.Faulty/MemFS here.
	FS faultio.FS
	// WALPath is the write-ahead log file. Required.
	WALPath string
	// SnapshotPath is the checkpoint snapshot file; defaults to
	// WALPath + ".snap".
	SnapshotPath string
	// CheckpointEvery checkpoints after that many committed records;
	// 0 disables automatic checkpoints (explicit Checkpoint/Close only).
	CheckpointEvery int
	// NoSync skips the per-commit fsync; for measuring fsync cost only.
	NoSync bool
}

// durability is the catalog's attached log + checkpoint state; all
// fields are guarded by the catalog's write lock.
type durability struct {
	fs       faultio.FS
	w        *wal.Writer
	snapPath string
	every    int

	sinceCheckpoint   int
	checkpoints       uint64
	lastCheckpointErr error
}

// DurabilityStats reports the durability subsystem's counters.
type DurabilityStats struct {
	Enabled             bool      `json:"enabled"`
	WAL                 wal.Stats `json:"wal"`
	Checkpoints         uint64    `json:"checkpoints"`
	SinceCheckpoint     int       `json:"records_since_checkpoint"`
	CheckpointEvery     int       `json:"checkpoint_every"`
	LastCheckpointError string    `json:"last_checkpoint_error,omitempty"`
}

// OpenDurable opens a catalog backed by a write-ahead log: it recovers
// state from the latest snapshot (if any) plus the log's intact records,
// then attaches the log so every subsequent mutation is made durable
// before it is acknowledged. A torn final log record (a crashed append)
// is truncated away; a corrupt snapshot or corrupt interior log record
// is refused.
func OpenDurable(schema *xmlschema.Schema, opts Options, dopts DurabilityOptions) (*Catalog, error) {
	if dopts.WALPath == "" {
		return nil, fmt.Errorf("catalog: durability requires a WAL path")
	}
	fs := dopts.FS
	if fs == nil {
		fs = faultio.OS{}
	}
	snapPath := dopts.SnapshotPath
	if snapPath == "" {
		snapPath = dopts.WALPath + ".snap"
	}

	var c *Catalog
	var fromSeq uint64
	if _, err := fs.Size(snapPath); err == nil {
		f, err := fs.Open(snapPath)
		if err != nil {
			return nil, fmt.Errorf("catalog: recovery: %w", err)
		}
		c, fromSeq, err = loadSnapshot(schema, opts, f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("catalog: recovering snapshot %s: %w", snapPath, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("catalog: recovery: %w", err)
	} else if c, err = Open(schema, opts); err != nil {
		return nil, err
	}

	// Replay all intact records into one relstore transaction: later
	// records must observe earlier ones (content-based row lookup), and
	// one commit publishes the whole recovered state at a single epoch.
	replayed := 0
	var w *wal.Writer
	err := c.withTx(func() error {
		var werr error
		w, werr = wal.Open(fs, dopts.WALPath, func(rec wal.Record) error {
			if rec.Seq <= fromSeq {
				return nil // already contained in the snapshot
			}
			ops, err := decodeOps(rec.Payload)
			if err != nil {
				return fmt.Errorf("record %d: %w", rec.Seq, err)
			}
			if err := c.replayOps(ops); err != nil {
				return fmt.Errorf("record %d: %w", rec.Seq, err)
			}
			replayed++
			c.obsv.replayRecords.Inc()
			c.obsv.replayOps.Add(uint64(len(ops)))
			return nil
		})
		return werr
	})
	if err != nil {
		if w != nil {
			w.Close()
		}
		return nil, fmt.Errorf("catalog: recovering log %s: %w", dopts.WALPath, err)
	}
	if replayed > 0 {
		// Replayed records may have added dynamic definitions; rebuild the
		// registry from the (journaled, hence replayed) definition tables.
		if err := c.restoreRegistryFromTables(); err != nil {
			w.Close()
			return nil, fmt.Errorf("catalog: recovery: %w", err)
		}
		c.fixAutoIDs()
	}
	w.SetNextSeq(fromSeq + 1)
	w.NoSync = dopts.NoSync
	w.SetMetrics(c.obsv.reg)
	c.dur = &durability{fs: fs, w: w, snapPath: snapPath, every: dopts.CheckpointEvery}
	return c, nil
}

// mutate runs fn under the write lock with durability semantics.
func (c *Catalog) mutate(fn func() error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mutateLocked(fn)
}

// mutateLocked is the single funnel every mutation goes through,
// implementing the journaled commit as build-version → append WAL →
// swap pointer. fn's row operations apply to a copy-on-write relstore
// transaction (fn must address tables through c.wtab) and are captured
// via the journal hook; if fn fails, or the captured operations cannot
// be committed to the write-ahead log, the builder is aborted and the
// published version never changes — readers cannot observe a state
// recovery would not rebuild. Requires c.mu held for writing.
func (c *Catalog) mutateLocked(fn func() error) error {
	if c.capturing {
		// Nested mutation (a caller composing mutating helpers): the
		// outermost frame owns the transaction, capture, and commit.
		return fn()
	}
	// The outermost frame is also the traced "mutate" operation; the
	// write lock guards curTrace, which carries the WAL commit span.
	tr, done := c.beginOp("mutate", c.obsv.opMutate)
	defer done()
	c.curTrace = tr
	defer func() { c.curTrace = nil }()
	tx := c.DB.Begin()
	c.tx = tx
	c.capturing = true
	c.captured = c.captured[:0]
	err := fn()
	ops := c.captured
	c.capturing = false
	if err != nil {
		c.tx = nil
		tx.Abort()
		return err
	}
	if c.dur != nil && len(ops) > 0 {
		payload, derr := encodeOps(ops)
		if derr == nil {
			start := time.Now()
			_, derr = c.dur.w.Commit(payload)
			if derr == nil {
				d := time.Since(start)
				c.obsv.walCommitNanos.Observe(d.Nanoseconds())
				c.curTrace.AddStage("wal_commit", start, d, int64(len(ops)))
			}
		}
		if derr == nil && c.crashAfterWALCommit != nil {
			// Fault-injection point for the crash matrix: the record is
			// durable but the pointer swap has not happened yet.
			derr = c.crashAfterWALCommit()
		}
		if derr != nil {
			c.tx = nil
			tx.Abort()
			return fmt.Errorf("%w: %v", ErrDurability, derr)
		}
	}
	c.tx = nil
	tx.Commit()
	c.obsv.versionSwaps.Inc()
	if c.dur != nil && len(ops) > 0 {
		c.dur.sinceCheckpoint++
		if c.dur.every > 0 && c.dur.sinceCheckpoint >= c.dur.every {
			// A failed automatic checkpoint must not fail the mutation —
			// the record IS durable in the log; surface it via stats. The
			// snapshot runs after the swap, so it sees the new version.
			c.dur.lastCheckpointErr = c.checkpointLocked()
		}
	}
	return nil
}

// withTx runs fn with c.tx bound to one relstore transaction, without
// journal capture or WAL involvement: the recovery paths (log replay,
// snapshot load) use it to batch restored rows into a single published
// version, and nested use composes with an already-open transaction.
func (c *Catalog) withTx(fn func() error) error {
	if c.tx != nil {
		return fn()
	}
	tx := c.DB.Begin()
	c.tx = tx
	err := fn()
	c.tx = nil
	if err != nil {
		tx.Abort()
		return err
	}
	tx.Commit()
	return nil
}

// wtab returns the handle mutations (and reads that must observe the
// in-flight mutation) address the named table through: the open
// transaction's when one is bound, the live database's otherwise.
func (c *Catalog) wtab(name string) *relstore.Table {
	if c.tx != nil {
		return c.tx.MustTable(name)
	}
	return c.DB.MustTable(name)
}

// walOp is the serialized form of one journaled row operation. RowID is
// deliberately absent: it is meaningless in another process.
type walOp struct {
	Table string
	Kind  uint8
	Row   relstore.Row // inserted/new row
	Prev  relstore.Row // deleted/old row
}

func encodeOps(ops []relstore.TableOp) ([]byte, error) {
	out := make([]walOp, len(ops))
	for i, op := range ops {
		out[i] = walOp{Table: op.Table, Kind: uint8(op.Kind), Row: op.Row, Prev: op.Prev}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeOps(payload []byte) ([]walOp, error) {
	var ops []walOp
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ops); err != nil {
		return nil, err
	}
	return ops, nil
}

// replayOps applies one log record's operations during recovery. It
// runs inside the recovery transaction (see OpenDurable), so each
// record's content-based row lookups observe every earlier record.
func (c *Catalog) replayOps(ops []walOp) error {
	for _, op := range ops {
		t := c.tx.Table(op.Table)
		if t == nil {
			return fmt.Errorf("replay references unknown table %q", op.Table)
		}
		switch relstore.OpKind(op.Kind) {
		case relstore.OpInsert:
			if _, err := t.Insert(op.Row); err != nil {
				return fmt.Errorf("replay insert into %s: %w", op.Table, err)
			}
		case relstore.OpDelete:
			id, ok := findRowID(t, op.Prev)
			if !ok {
				return fmt.Errorf("replay delete from %s: row not found", op.Table)
			}
			t.Delete(id)
		case relstore.OpUpdate:
			id, ok := findRowID(t, op.Prev)
			if !ok {
				return fmt.Errorf("replay update of %s: row not found", op.Table)
			}
			if err := t.Update(id, op.Row); err != nil {
				return fmt.Errorf("replay update of %s: %w", op.Table, err)
			}
		default:
			return fmt.Errorf("replay: unknown op kind %d", op.Kind)
		}
	}
	return nil
}

// findRowID locates a live row by content. Duplicate rows are
// interchangeable — deleting either yields the same table state.
func findRowID(t *relstore.Table, row relstore.Row) (int64, bool) {
	found, ok := int64(0), false
	t.Scan(func(id int64, r relstore.Row) bool {
		if rowsIdentical(r, row) {
			found, ok = id, true
			return false
		}
		return true
	})
	return found, ok
}

// rowsIdentical is exact (kind-sensitive, bit-exact for floats) row
// equality — stricter than relstore.Compare, which orders numerics
// across kinds.
func rowsIdentical(a, b relstore.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		av, bv := a[i], b[i]
		if av.K != bv.K || av.I != bv.I || av.S != bv.S ||
			math.Float64bits(av.F) != math.Float64bits(bv.F) ||
			!bytes.Equal(av.B, bv.B) {
			return false
		}
	}
	return true
}

// restoreRegistryFromTables rebuilds the attribute/element registry from
// the mirrored definition tables; used after log replay, which restores
// those tables but cannot touch the registry directly.
func (c *Catalog) restoreRegistryFromTables() error {
	var attrs []core.AttrDef
	c.DB.MustTable(TAttrDef).Scan(func(_ int64, r relstore.Row) bool {
		attrs = append(attrs, core.AttrDef{
			ID: r[0].I, Name: r[1].S, Source: r[2].S, ParentID: r[3].I,
			SchemaOrder: int(r[4].I), Queryable: r[5].AsBool(),
			Dynamic: r[6].AsBool(), Owner: r[7].S,
		})
		return true
	})
	var elems []core.ElemDef
	var elemErr error
	c.DB.MustTable(TElemDef).Scan(func(_ int64, r relstore.Row) bool {
		dt, err := core.ParseDataType(r[4].S)
		if err != nil {
			elemErr = fmt.Errorf("elem_def %d: %w", r[0].I, err)
			return false
		}
		elems = append(elems, core.ElemDef{
			ID: r[0].I, AttrID: r[1].I, Name: r[2].S, Source: r[3].S,
			Type: dt, Owner: r[5].S,
		})
		return true
	})
	if elemErr != nil {
		return elemErr
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].ID < attrs[j].ID })
	sort.Slice(elems, func(i, j int) bool { return elems[i].ID < elems[j].ID })
	return c.Reg.Restore(attrs, elems)
}

// Checkpoint writes an atomic snapshot and swaps in a fresh log. Safe to
// call at any time on a durable catalog.
func (c *Catalog) Checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dur == nil {
		return fmt.Errorf("catalog: not opened with durability")
	}
	return c.checkpointLocked()
}

// checkpointLocked implements the checkpoint protocol: write the
// snapshot (carrying the log's high-water mark) atomically, then replace
// the log. A crash or failure after the snapshot rename but before the
// log swap is benign — recovery skips replayed records at or below the
// snapshot's mark.
func (c *Catalog) checkpointLocked() error {
	d := c.dur
	if err := c.saveFileLocked(d.fs, d.snapPath); err != nil {
		return fmt.Errorf("%w: checkpoint snapshot: %v", ErrDurability, err)
	}
	// The snapshot is durable: recovery no longer needs the log records.
	d.sinceCheckpoint = 0
	d.checkpoints++
	c.obsv.checkpoints.Inc()
	if err := d.w.Reset(d.w.LastSeq() + 1); err != nil {
		return fmt.Errorf("%w: log reset after checkpoint: %v", ErrDurability, err)
	}
	return nil
}

// Close checkpoints (when durable) and releases the log. The catalog
// must not be used afterwards.
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dur == nil {
		return nil
	}
	err := c.checkpointLocked()
	if cerr := c.dur.w.Close(); err == nil {
		err = cerr
	}
	c.dur = nil
	return err
}

// DurabilityStats returns the durability counters; zero-valued when the
// catalog was opened without durability.
func (c *Catalog) DurabilityStats() DurabilityStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.dur == nil {
		return DurabilityStats{}
	}
	s := DurabilityStats{
		Enabled:         true,
		WAL:             c.dur.w.Stats(),
		Checkpoints:     c.dur.checkpoints,
		SinceCheckpoint: c.dur.sinceCheckpoint,
		CheckpointEvery: c.dur.every,
	}
	if c.dur.lastCheckpointErr != nil {
		s.LastCheckpointError = c.dur.lastCheckpointErr.Error()
	}
	return s
}

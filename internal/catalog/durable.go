package catalog

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/faultio"
	"github.com/gridmeta/hybridcat/internal/obs"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/wal"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// Durability: every mutating catalog operation runs inside mutateLocked,
// which applies fn's row operations to a copy-on-write relstore
// transaction, captures them (via the relstore journal hook), commits
// them as ONE write-ahead log record, and only then publishes the built
// version with the atomic pointer swap. The journaled commit is
// therefore build-version → append WAL → swap pointer: a mutation that
// fails, or whose record cannot be made durable, simply aborts the
// builder — there is no rollback code to get wrong, and readers never
// observe a state the log does not contain. A multi-table mutation — an
// ingest touching five tables, a whole batch — is atomic both on disk
// and in memory: after a crash it is replayed entirely or not at all,
// and no concurrent reader ever sees it half-applied.
//
// The log is physical (row contents), not logical (catalog operations),
// so replay is deterministic: it does not depend on the clock, on
// auto-registration ordering, or on any other state the original
// execution observed. Row IDs are an in-memory artifact and are not
// stable across restarts; replay locates rows to delete or update by
// content instead.
//
// Checkpoints bound recovery time: every CheckpointEvery commits the
// catalog writes an atomic snapshot (temp + fsync + rename) carrying the
// WAL high-water mark, then swaps in a fresh log. Replay skips records
// at or below the snapshot's mark, so a crash between the snapshot
// rename and the log swap — which leaves old records behind — recovers
// correctly: the stale records are recognized and ignored.

// ErrDurability marks a mutation that failed because its write-ahead
// record (or a checkpoint) could not be made durable. The in-memory
// state has been rolled back; the catalog still serves reads and may
// accept later mutations if the underlying fault was transient.
var ErrDurability = errors.New("catalog: durability failure")

// DurabilityOptions configures OpenDurable.
type DurabilityOptions struct {
	// FS is the filesystem the log and snapshots live on; nil uses the
	// real one. Tests inject a faultio.Faulty/MemFS here.
	FS faultio.FS
	// WALPath is the write-ahead log file. Required.
	WALPath string
	// SnapshotPath is the checkpoint snapshot file; defaults to
	// WALPath + ".snap".
	SnapshotPath string
	// CheckpointEvery checkpoints after that many committed records;
	// 0 disables automatic checkpoints (explicit Checkpoint/Close only).
	CheckpointEvery int
	// NoSync skips the per-commit fsync; for measuring fsync cost only.
	NoSync bool
	// GroupCommit coalesces concurrent mutations' log records into
	// shared fsyncs: each mutation stages its version (invisible to
	// readers), enqueues its record with the batching group writer, and
	// publishes only after the batch fsync — so "readers never observe a
	// state the log does not contain" holds exactly as in
	// fsync-per-commit mode, while N concurrent writers pay ~1 fsync per
	// batch instead of N.
	GroupCommit bool
	// GroupCommitWait is the batch leader's collection window; 0 flushes
	// immediately (still coalescing whatever queued while the previous
	// batch synced). Ignored without GroupCommit.
	GroupCommitWait time.Duration
	// GroupCommitBatch caps a batch's record count (values < 1 default
	// to 64). Ignored without GroupCommit.
	GroupCommitBatch int
}

// durability is the catalog's attached log + checkpoint state; all
// fields are guarded by the catalog's write lock except where noted.
type durability struct {
	fs       faultio.FS
	w        *wal.Writer
	gw       *wal.GroupWriter // nil in fsync-per-commit mode
	snapPath string
	every    int

	// publishedSeq is the log sequence of the last mutation whose
	// version readers can see — the replication watermark a snapshot
	// carries. In group-commit mode it trails the log's LastSeq while
	// staged commits await their batch fsync.
	publishedSeq uint64
	// staged is the chain of precommitted-but-unpublished group commits,
	// in epoch (= enqueue = log sequence) order.
	staged []*stagedCommit
	// notify is closed and replaced on every publish; the replication
	// stream's long poll waits on it instead of busy-polling.
	notify chan struct{}

	sinceCheckpoint   int
	checkpoints       uint64
	lastCheckpointErr error
}

// stagedCommit pairs one group-committed mutation's frozen version with
// the log ticket that will make its record durable.
type stagedCommit struct {
	staged *relstore.Staged
	ticket *wal.Ticket
	nops   int
}

// DurabilityStats reports the durability subsystem's counters.
type DurabilityStats struct {
	Enabled             bool           `json:"enabled"`
	WAL                 wal.Stats      `json:"wal"`
	GroupCommit         bool           `json:"group_commit"`
	Group               wal.GroupStats `json:"group,omitempty"`
	PublishedSeq        uint64         `json:"published_seq"`
	StagedDepth         int            `json:"staged_depth"`
	Checkpoints         uint64         `json:"checkpoints"`
	SinceCheckpoint     int            `json:"records_since_checkpoint"`
	CheckpointEvery     int            `json:"checkpoint_every"`
	LastCheckpointError string         `json:"last_checkpoint_error,omitempty"`
}

// OpenDurable opens a catalog backed by a write-ahead log: it recovers
// state from the latest snapshot (if any) plus the log's intact records,
// then attaches the log so every subsequent mutation is made durable
// before it is acknowledged. A torn final log record (a crashed append)
// is truncated away; a corrupt snapshot or corrupt interior log record
// is refused.
func OpenDurable(schema *xmlschema.Schema, opts Options, dopts DurabilityOptions) (*Catalog, error) {
	if dopts.WALPath == "" {
		return nil, fmt.Errorf("catalog: durability requires a WAL path")
	}
	fs := dopts.FS
	if fs == nil {
		fs = faultio.OS{}
	}
	snapPath := dopts.SnapshotPath
	if snapPath == "" {
		snapPath = dopts.WALPath + ".snap"
	}

	var c *Catalog
	var fromSeq uint64
	if _, err := fs.Size(snapPath); err == nil {
		f, err := fs.Open(snapPath)
		if err != nil {
			return nil, fmt.Errorf("catalog: recovery: %w", err)
		}
		c, fromSeq, err = loadSnapshot(schema, opts, f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("catalog: recovering snapshot %s: %w", snapPath, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("catalog: recovery: %w", err)
	} else if c, err = Open(schema, opts); err != nil {
		return nil, err
	}

	// Replay all intact records into one relstore transaction: later
	// records must observe earlier ones (content-based row lookup), and
	// one commit publishes the whole recovered state at a single epoch.
	replayed := 0
	var w *wal.Writer
	err := c.withTx(func() error {
		var werr error
		w, werr = wal.Open(fs, dopts.WALPath, func(rec wal.Record) error {
			if rec.Seq <= fromSeq {
				return nil // already contained in the snapshot
			}
			ops, err := decodeOps(rec.Payload)
			if err != nil {
				return fmt.Errorf("record %d: %w", rec.Seq, err)
			}
			if err := c.replayOps(ops); err != nil {
				return fmt.Errorf("record %d: %w", rec.Seq, err)
			}
			replayed++
			c.obsv.replayRecords.Inc()
			c.obsv.replayOps.Add(uint64(len(ops)))
			return nil
		})
		return werr
	})
	if err != nil {
		if w != nil {
			w.Close()
		}
		return nil, fmt.Errorf("catalog: recovering log %s: %w", dopts.WALPath, err)
	}
	if replayed > 0 {
		// Replayed records may have added dynamic definitions; rebuild the
		// registry from the (journaled, hence replayed) definition tables.
		if err := c.restoreRegistryFromTables(); err != nil {
			w.Close()
			return nil, fmt.Errorf("catalog: recovery: %w", err)
		}
		c.fixAutoIDs()
	}
	w.SetNextSeq(fromSeq + 1)
	w.NoSync = dopts.NoSync
	w.SetMetrics(c.obsv.reg)
	c.dur = &durability{
		fs:           fs,
		w:            w,
		snapPath:     snapPath,
		every:        dopts.CheckpointEvery,
		publishedSeq: w.LastSeq(),
		notify:       make(chan struct{}),
	}
	if dopts.GroupCommit {
		c.dur.gw = wal.NewGroupWriter(w, dopts.GroupCommitWait, dopts.GroupCommitBatch)
		c.dur.gw.SetMetrics(c.obsv.reg)
	}
	return c, nil
}

// mutate runs fn under the write lock with durability semantics.
func (c *Catalog) mutate(fn func() error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mutateLocked(fn)
}

// mutateLocked is the single funnel every mutation goes through,
// implementing the journaled commit as build-version → append WAL →
// swap pointer. fn's row operations apply to a copy-on-write relstore
// transaction (fn must address tables through c.wtab) and are captured
// via the journal hook; if fn fails, or the captured operations cannot
// be committed to the write-ahead log, the builder is aborted and the
// published version never changes — readers cannot observe a state
// recovery would not rebuild. Requires c.mu held for writing.
func (c *Catalog) mutateLocked(fn func() error) error {
	if c.capturing {
		// Nested mutation (a caller composing mutating helpers): the
		// outermost frame owns the transaction, capture, and commit.
		return fn()
	}
	if c.follower {
		return ErrReadOnlyReplica
	}
	tr, done := c.beginOp("mutate", c.obsv.opMutate)
	defer done()
	tx := c.DB.Begin()
	c.tx = tx
	c.capturing = true
	c.captured = c.captured[:0]
	err := fn()
	ops := c.captured
	c.capturing = false
	if err != nil {
		c.tx = nil
		tx.Abort()
		return err
	}
	if c.dur != nil && len(ops) > 0 && c.dur.gw != nil {
		return c.groupCommitLocked(tr, tx, ops)
	}
	if c.dur != nil && len(ops) > 0 {
		payload, derr := encodeOps(ops)
		var seq uint64
		if derr == nil {
			start := time.Now()
			seq, derr = c.dur.w.Commit(payload)
			if derr == nil {
				d := time.Since(start)
				c.obsv.walCommitNanos.Observe(d.Nanoseconds())
				tr.AddStage("wal_commit", start, d, int64(len(ops)))
			}
		}
		if derr == nil && c.crashAfterWALCommit != nil {
			// Fault-injection point for the crash matrix: the record is
			// durable but the pointer swap has not happened yet.
			derr = c.crashAfterWALCommit()
		}
		if derr != nil {
			c.tx = nil
			tx.Abort()
			return fmt.Errorf("%w: %v", ErrDurability, derr)
		}
		c.tx = nil
		tx.Commit()
		c.obsv.versionSwaps.Inc()
		c.dur.publishedSeq = seq
		c.notifyCommitLocked()
		c.dur.sinceCheckpoint++
		if c.dur.every > 0 && c.dur.sinceCheckpoint >= c.dur.every {
			// A failed automatic checkpoint must not fail the mutation —
			// the record IS durable in the log; surface it via stats. The
			// snapshot runs after the swap, so it sees the new version.
			c.dur.lastCheckpointErr = c.checkpointLocked()
		}
		return nil
	}
	if c.dur != nil && c.dur.gw != nil && len(ops) == 0 {
		// A no-op mutation in group mode must NOT publish: its builder
		// was based on the staged (possibly not yet durable) head, and
		// committing it would leak staged writes to readers before their
		// batch fsync. Nothing changed, so aborting loses nothing.
		c.tx = nil
		tx.Abort()
		return nil
	}
	c.tx = nil
	tx.Commit()
	c.obsv.versionSwaps.Inc()
	return nil
}

// groupCommitLocked finishes a mutation on the group-commit path: it
// freezes the built version as the staging head (invisible to readers,
// but the base for the next mutation — so writers pipeline), enqueues
// the record with the batching group writer, releases the catalog lock
// for the duration of the shared fsync, and on reacquiring it publishes
// every staged version whose record is durable, in log order. A batch
// failure runs the heal protocol instead: publish the durable prefix of
// the staged chain, abandon the rest, and un-poison the group.
//
// fn-visible reads during a group-committed mutation observe the staged
// chain (relstore.Begin bases on the staging head), which is exactly
// the state the log will contain once the already-enqueued batches
// sync — so the recovery invariant is preserved: no acknowledged or
// published state exists that replay would not rebuild.
func (c *Catalog) groupCommitLocked(tr *obs.Trace, tx *relstore.Tx, ops []relstore.TableOp) error {
	d := c.dur
	payload, derr := encodeOps(ops)
	if derr != nil {
		c.tx = nil
		tx.Abort()
		return fmt.Errorf("%w: %v", ErrDurability, derr)
	}
	c.tx = nil
	staged := tx.Precommit()
	sc := &stagedCommit{staged: staged, ticket: d.gw.Enqueue(payload), nops: len(ops)}
	d.staged = append(d.staged, sc)

	c.mu.Unlock()
	start := time.Now()
	_, werr := sc.ticket.Wait()
	dur := time.Since(start)
	c.mu.Lock()

	if c.dur == nil {
		// Closed while we waited: Close drained and published the whole
		// staged chain before detaching, so a successful ticket's version
		// is already visible; Publish is an idempotent no-op. A failed
		// ticket's version was abandoned by the close-time heal.
		if werr == nil {
			c.DB.Publish(staged)
			return nil
		}
		return fmt.Errorf("%w: %v", ErrDurability, werr)
	}
	if werr != nil {
		c.healGroupLocked()
		return fmt.Errorf("%w: %v", ErrDurability, werr)
	}
	c.obsv.walCommitNanos.Observe(dur.Nanoseconds())
	tr.AddStage("wal_commit", start, dur, int64(len(ops)))
	c.publishStagedLocked()
	if d.every > 0 && d.sinceCheckpoint >= d.every {
		d.lastCheckpointErr = c.checkpointLocked()
	}
	return nil
}

// publishStagedLocked publishes the longest prefix of the staged chain
// whose records are durable, advancing the replication watermark and
// waking stream long-polls. Stops at the first still-pending or failed
// entry; the heal path owns failed suffixes.
func (c *Catalog) publishStagedLocked() {
	d := c.dur
	published := false
	for len(d.staged) > 0 {
		sc := d.staged[0]
		if !sc.ticket.Done() {
			break
		}
		seq, err := sc.ticket.Result()
		if err != nil {
			break
		}
		c.DB.Publish(sc.staged)
		d.publishedSeq = seq
		d.staged = d.staged[1:]
		d.sinceCheckpoint++
		c.obsv.versionSwaps.Inc()
		published = true
	}
	if published {
		c.notifyCommitLocked()
	}
}

// healGroupLocked reconciles in-memory state with the log after a group
// batch failure: the durable prefix of the staged chain is published,
// the failed suffix — whose records were rolled back out of the log and
// whose sequence numbers were never consumed — is abandoned (the next
// Begin bases on the published version again), and the group writer is
// un-poisoned so later mutations proceed. Idempotent: every failed
// waiter calls it on reacquiring the lock, and all but the first find
// nothing to do.
func (c *Catalog) healGroupLocked() {
	d := c.dur
	c.publishStagedLocked()
	if len(d.staged) == 0 {
		return
	}
	// A failure poisons everything queued behind it, so if the head of
	// the remaining chain failed, the whole remainder did — and every
	// entry is already resolved (the group writer fails queued tickets
	// synchronously when it poisons).
	head := d.staged[0]
	if !head.ticket.Done() {
		return
	}
	if _, err := head.ticket.Result(); err == nil {
		return
	}
	d.staged = d.staged[:0]
	c.DB.ResetHead()
	if d.gw.Poisoned() != nil {
		// Heal fails only if the log writer itself is wedged; leave the
		// poison in place then — Wedged()/healthz surface it.
		_ = d.gw.Heal()
	}
}

// notifyCommitLocked wakes everything blocked on CommitNotify by
// closing and replacing the notification channel.
func (c *Catalog) notifyCommitLocked() {
	close(c.dur.notify)
	c.dur.notify = make(chan struct{})
}

// withTx runs fn with c.tx bound to one relstore transaction, without
// journal capture or WAL involvement: the recovery paths (log replay,
// snapshot load) use it to batch restored rows into a single published
// version, and nested use composes with an already-open transaction.
func (c *Catalog) withTx(fn func() error) error {
	if c.tx != nil {
		return fn()
	}
	tx := c.DB.Begin()
	c.tx = tx
	err := fn()
	c.tx = nil
	if err != nil {
		tx.Abort()
		return err
	}
	tx.Commit()
	return nil
}

// wtab returns the handle mutations (and reads that must observe the
// in-flight mutation) address the named table through: the open
// transaction's when one is bound, the live database's otherwise.
func (c *Catalog) wtab(name string) *relstore.Table {
	if c.tx != nil {
		return c.tx.MustTable(name)
	}
	return c.DB.MustTable(name)
}

// walOp is the serialized form of one journaled row operation. RowID is
// deliberately absent: it is meaningless in another process.
type walOp struct {
	Table string
	Kind  uint8
	Row   relstore.Row // inserted/new row
	Prev  relstore.Row // deleted/old row
}

func encodeOps(ops []relstore.TableOp) ([]byte, error) {
	out := make([]walOp, len(ops))
	for i, op := range ops {
		out[i] = walOp{Table: op.Table, Kind: uint8(op.Kind), Row: op.Row, Prev: op.Prev}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeOps(payload []byte) ([]walOp, error) {
	var ops []walOp
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ops); err != nil {
		return nil, err
	}
	return ops, nil
}

// replayOps applies one log record's operations during recovery. It
// runs inside the recovery transaction (see OpenDurable), so each
// record's content-based row lookups observe every earlier record.
func (c *Catalog) replayOps(ops []walOp) error {
	for _, op := range ops {
		t := c.tx.Table(op.Table)
		if t == nil {
			return fmt.Errorf("replay references unknown table %q", op.Table)
		}
		switch relstore.OpKind(op.Kind) {
		case relstore.OpInsert:
			if _, err := t.Insert(op.Row); err != nil {
				return fmt.Errorf("replay insert into %s: %w", op.Table, err)
			}
		case relstore.OpDelete:
			id, ok := findRowID(t, op.Prev)
			if !ok {
				return fmt.Errorf("replay delete from %s: row not found", op.Table)
			}
			t.Delete(id)
		case relstore.OpUpdate:
			id, ok := findRowID(t, op.Prev)
			if !ok {
				return fmt.Errorf("replay update of %s: row not found", op.Table)
			}
			if err := t.Update(id, op.Row); err != nil {
				return fmt.Errorf("replay update of %s: %w", op.Table, err)
			}
		default:
			return fmt.Errorf("replay: unknown op kind %d", op.Kind)
		}
	}
	return nil
}

// findRowID locates a live row by content. Duplicate rows are
// interchangeable — deleting either yields the same table state.
func findRowID(t *relstore.Table, row relstore.Row) (int64, bool) {
	found, ok := int64(0), false
	t.Scan(func(id int64, r relstore.Row) bool {
		if rowsIdentical(r, row) {
			found, ok = id, true
			return false
		}
		return true
	})
	return found, ok
}

// rowsIdentical is exact (kind-sensitive, bit-exact for floats) row
// equality — stricter than relstore.Compare, which orders numerics
// across kinds.
func rowsIdentical(a, b relstore.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		av, bv := a[i], b[i]
		if av.K != bv.K || av.I != bv.I || av.S != bv.S ||
			math.Float64bits(av.F) != math.Float64bits(bv.F) ||
			!bytes.Equal(av.B, bv.B) {
			return false
		}
	}
	return true
}

// restoreRegistryFromTables rebuilds the attribute/element registry from
// the mirrored definition tables; used after log replay, which restores
// those tables but cannot touch the registry directly.
func (c *Catalog) restoreRegistryFromTables() error {
	var attrs []core.AttrDef
	c.DB.MustTable(TAttrDef).Scan(func(_ int64, r relstore.Row) bool {
		attrs = append(attrs, core.AttrDef{
			ID: r[0].I, Name: r[1].S, Source: r[2].S, ParentID: r[3].I,
			SchemaOrder: int(r[4].I), Queryable: r[5].AsBool(),
			Dynamic: r[6].AsBool(), Owner: r[7].S,
		})
		return true
	})
	var elems []core.ElemDef
	var elemErr error
	c.DB.MustTable(TElemDef).Scan(func(_ int64, r relstore.Row) bool {
		dt, err := core.ParseDataType(r[4].S)
		if err != nil {
			elemErr = fmt.Errorf("elem_def %d: %w", r[0].I, err)
			return false
		}
		elems = append(elems, core.ElemDef{
			ID: r[0].I, AttrID: r[1].I, Name: r[2].S, Source: r[3].S,
			Type: dt, Owner: r[5].S,
		})
		return true
	})
	if elemErr != nil {
		return elemErr
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].ID < attrs[j].ID })
	sort.Slice(elems, func(i, j int) bool { return elems[i].ID < elems[j].ID })
	return c.Reg.Restore(attrs, elems)
}

// Checkpoint writes an atomic snapshot and swaps in a fresh log. Safe to
// call at any time on a durable catalog.
func (c *Catalog) Checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dur == nil {
		return fmt.Errorf("catalog: not opened with durability")
	}
	return c.checkpointLocked()
}

// checkpointLocked implements the checkpoint protocol: write the
// snapshot (carrying the log's high-water mark) atomically, then replace
// the log. A crash or failure after the snapshot rename but before the
// log swap is benign — recovery skips replayed records at or below the
// snapshot's mark.
func (c *Catalog) checkpointLocked() error {
	d := c.dur
	if d.gw != nil {
		// Quiesce the group first: wait out in-flight batches (their
		// flushes run on waiter goroutines that do not need the catalog
		// lock we hold), publish everything durable, and heal any failed
		// suffix — so the snapshot sees a state where publishedSeq equals
		// the log's last sequence and the log swap below loses nothing.
		d.gw.Drain()
		c.publishStagedLocked()
		c.healGroupLocked()
	}
	if err := c.saveFileLocked(d.fs, d.snapPath); err != nil {
		return fmt.Errorf("%w: checkpoint snapshot: %v", ErrDurability, err)
	}
	// The snapshot is durable: recovery no longer needs the log records.
	d.sinceCheckpoint = 0
	d.checkpoints++
	c.obsv.checkpoints.Inc()
	if err := d.w.Reset(d.w.LastSeq() + 1); err != nil {
		return fmt.Errorf("%w: log reset after checkpoint: %v", ErrDurability, err)
	}
	return nil
}

// Close checkpoints (when durable) and releases the log. The catalog
// must not be used afterwards.
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dur == nil {
		return nil
	}
	err := c.checkpointLocked()
	if cerr := c.dur.w.Close(); err == nil {
		err = cerr
	}
	c.dur = nil
	return err
}

// Wedged returns the error that wedged the durability layer — a failed
// post-failure cleanup left the log tail in an unknown state, so every
// further mutation is refused — or nil while the catalog is healthy (or
// was opened without durability). Health endpoints report it without
// attempting a commit.
func (c *Catalog) Wedged() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.dur == nil {
		return nil
	}
	return c.dur.w.Broken()
}

// PublishedSeq returns the log sequence of the last mutation whose
// effects readers can observe: the replication watermark.
func (c *Catalog) PublishedSeq() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.dur == nil {
		return 0
	}
	return c.dur.publishedSeq
}

// WALSince returns the durable log records with sequence numbers above
// from, along with the log's last sequence, for the replication stream.
// gap reports that a checkpoint has truncated records the caller still
// needs — it must bootstrap from a snapshot instead (see
// ReplicationSnapshot). Requires durability.
func (c *Catalog) WALSince(from uint64) (recs []wal.Record, lastSeq uint64, gap bool, err error) {
	c.mu.RLock()
	w := c.durWriter()
	c.mu.RUnlock()
	if w == nil {
		return nil, 0, false, fmt.Errorf("catalog: not opened with durability")
	}
	// The writer has its own mutex; holding the catalog lock across the
	// file read would stall mutations for every stream poll.
	return w.RecordsSince(from)
}

// durWriter returns the attached log writer (caller holds c.mu).
func (c *Catalog) durWriter() *wal.Writer {
	if c.dur == nil {
		return nil
	}
	return c.dur.w
}

// CommitNotify returns a channel that is closed the next time a
// mutation publishes (equivalently: the next time new log records may
// be available to stream). Callers re-fetch a fresh channel after each
// wake-up; the replication stream's long poll uses it instead of
// busy-polling WALSince.
func (c *Catalog) CommitNotify() <-chan struct{} {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.dur == nil {
		closed := make(chan struct{})
		close(closed)
		return closed
	}
	return c.dur.notify
}

// ReplicationSnapshot writes a bootstrap snapshot for a replica that
// hit a log gap, returning the watermark the snapshot contains (the
// replica resumes streaming from it). Requires durability.
func (c *Catalog) ReplicationSnapshot(w io.Writer) (uint64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.dur == nil {
		return 0, fmt.Errorf("catalog: not opened with durability")
	}
	seq := c.dur.publishedSeq
	return seq, c.saveLocked(w)
}

// DurabilityStats returns the durability counters; zero-valued when the
// catalog was opened without durability.
func (c *Catalog) DurabilityStats() DurabilityStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.dur == nil {
		return DurabilityStats{}
	}
	s := DurabilityStats{
		Enabled:         true,
		WAL:             c.dur.w.Stats(),
		GroupCommit:     c.dur.gw != nil,
		PublishedSeq:    c.dur.publishedSeq,
		StagedDepth:     len(c.dur.staged),
		Checkpoints:     c.dur.checkpoints,
		SinceCheckpoint: c.dur.sinceCheckpoint,
		CheckpointEvery: c.dur.every,
	}
	if c.dur.gw != nil {
		s.Group = c.dur.gw.Stats()
	}
	if c.dur.lastCheckpointErr != nil {
		s.LastCheckpointError = c.dur.lastCheckpointErr.Error()
	}
	return s
}

package catalog

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"slices"

	"github.com/gridmeta/hybridcat/internal/relstore"
)

// Collections implement the paper's aggregations (§1: scientists query
// for "objects (files or aggregations)") and the containment-viewpoint
// context queries of §7: objects are organized into a per-user hierarchy
// (project → experiment → collection in myLEAD), a query can be scoped to
// a collection subtree, and the broader-context direction — which
// experiments contain matching objects — is answered by the same
// membership tables.

// Collection table names.
const (
	TCollections = "collections"
	TMembers     = "collection_members"
)

// CollectionInfo describes one collection.
type CollectionInfo struct {
	ID       int64
	Name     string
	Owner    string
	ParentID int64 // 0 = root collection
}

// initCollections creates the collection tables; called from Open.
func (c *Catalog) initCollections() error {
	if _, err := c.DB.CreateTable(TCollections,
		col("coll_id", relstore.KInt, true),
		col("name", relstore.KString, true),
		col("owner", relstore.KString, false),
		col("parent_coll_id", relstore.KInt, false),
	); err != nil {
		return err
	}
	collT := c.DB.MustTable(TCollections)
	if _, err := collT.CreateIndex("collections_pk", relstore.BTreeIndex, true, "coll_id"); err != nil {
		return err
	}
	if _, err := collT.CreateIndex("collections_by_parent", relstore.HashIndex, false, "parent_coll_id"); err != nil {
		return err
	}
	if _, err := c.DB.CreateTable(TMembers,
		col("coll_id", relstore.KInt, true),
		col("object_id", relstore.KInt, true),
	); err != nil {
		return err
	}
	memT := c.DB.MustTable(TMembers)
	if _, err := memT.CreateIndex("members_pk", relstore.BTreeIndex, true, "coll_id", "object_id"); err != nil {
		return err
	}
	if _, err := memT.CreateIndex("members_by_object", relstore.HashIndex, false, "object_id"); err != nil {
		return err
	}
	return nil
}

// CreateCollection creates a collection (aggregation). parentID 0 makes a
// root collection; otherwise the parent must exist.
func (c *Catalog) CreateCollection(name, owner string, parentID int64) (int64, error) {
	if name == "" {
		return 0, fmt.Errorf("catalog: collection needs a name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var id int64
	if err := c.mutateLocked(func() error {
		// Reads run inside the mutation so they see the staged base, not a
		// published version that may lag it under group-commit pipelining.
		collT := c.wtab(TCollections)
		if parentID != 0 {
			ids, err := collT.LookupEqual("collections_pk", relstore.Int(parentID))
			if err != nil {
				return err
			}
			if len(ids) == 0 {
				return fmt.Errorf("catalog: no collection %d", parentID)
			}
		}
		id = collT.NextAutoID()
		parent := relstore.Null()
		if parentID != 0 {
			parent = relstore.Int(parentID)
		}
		_, err := collT.Insert(relstore.Row{relstore.Int(id), relstore.Str(name), relstore.Str(owner), parent})
		return err
	}); err != nil {
		return 0, err
	}
	return id, nil
}

// AddToCollection places an object into a collection. Membership is
// idempotent; an object may belong to several collections.
func (c *Catalog) AddToCollection(collID, objectID int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mutateLocked(func() error {
		// All checks run against the staged base (see CreateCollection).
		ids, err := c.wtab(TCollections).LookupEqual("collections_pk", relstore.Int(collID))
		if err != nil {
			return err
		}
		if len(ids) == 0 {
			return fmt.Errorf("catalog: no collection %d", collID)
		}
		objIDs, err := c.wtab(TObjects).LookupEqual("objects_pk", relstore.Int(objectID))
		if err != nil {
			return err
		}
		if len(objIDs) == 0 {
			return fmt.Errorf("catalog: no object %d", objectID)
		}
		memT := c.wtab(TMembers)
		existing, err := memT.LookupEqual("members_pk", relstore.Int(collID), relstore.Int(objectID))
		if err != nil {
			return err
		}
		if len(existing) > 0 {
			return nil
		}
		_, err = memT.Insert(relstore.Row{relstore.Int(collID), relstore.Int(objectID)})
		return err
	})
}

// RemoveFromCollection removes a membership, reporting whether it
// existed. A durability failure leaves the membership in place.
func (c *Catalog) RemoveFromCollection(collID, objectID int64) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.mutateLocked(func() error {
		// Lookup runs against the staged base (see CreateCollection).
		t := c.wtab(TMembers)
		ids, _ := t.LookupEqual("members_pk", relstore.Int(collID), relstore.Int(objectID))
		if len(ids) == 0 {
			return errNotFound
		}
		for _, rid := range ids {
			t.Delete(rid)
		}
		return nil
	}); err != nil {
		if errors.Is(err, errNotFound) {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// Collections lists all collections in ID order.
func (c *Catalog) Collections() []CollectionInfo {
	var out []CollectionInfo
	c.DB.MustTable(TCollections).Scan(func(_ int64, r relstore.Row) bool {
		info := CollectionInfo{ID: r[0].I, Name: r[1].S, Owner: r[2].S}
		if !r[3].IsNull() {
			info.ParentID = r[3].I
		}
		out = append(out, info)
		return true
	})
	slices.SortFunc(out, func(a, b CollectionInfo) int { return cmp.Compare(a.ID, b.ID) })
	return out
}

// subtreeCollections returns collID and all transitive child collection
// IDs, walked entirely within the pinned snapshot.
func (v *view) subtreeCollections(collID int64) ([]int64, error) {
	collT := v.tab(TCollections)
	ids, err := collT.LookupEqual("collections_pk", relstore.Int(collID))
	if err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("catalog: no collection %d", collID)
	}
	out := []int64{collID}
	frontier := []int64{collID}
	for len(frontier) > 0 {
		var next []int64
		for _, id := range frontier {
			childRows, err := collT.LookupEqual("collections_by_parent", relstore.Int(id))
			if err != nil {
				return nil, err
			}
			for _, rid := range childRows {
				if r := collT.Get(rid); r != nil {
					next = append(next, r[0].I)
				}
			}
		}
		out = append(out, next...)
		frontier = next
	}
	return out, nil
}

// CollectionObjects returns the object IDs in the collection subtree,
// ascending and de-duplicated.
func (c *Catalog) CollectionObjects(collID int64) ([]int64, error) {
	return c.pinView().collectionObjects(collID)
}

// collectionObjects is CollectionObjects within one pinned view.
func (v *view) collectionObjects(collID int64) ([]int64, error) {
	colls, err := v.subtreeCollections(collID)
	if err != nil {
		return nil, err
	}
	memT := v.tab(TMembers)
	seen := map[int64]bool{}
	var out []int64
	for _, cid := range colls {
		rows, err := memT.LookupRange("members_pk",
			relstore.RangeBound{Vals: []relstore.Value{relstore.Int(cid)}, Inclusive: true, Set: true},
			relstore.RangeBound{Vals: []relstore.Value{relstore.Int(cid)}, Inclusive: true, Set: true})
		if err != nil {
			return nil, err
		}
		for _, rid := range rows {
			if r := memT.Get(rid); r != nil && !seen[r[1].I] {
				seen[r[1].I] = true
				out = append(out, r[1].I)
			}
		}
	}
	slices.Sort(out)
	return out, nil
}

// EvaluateInContext runs the query scoped to a collection subtree — the
// containment viewpoint: only objects aggregated under the collection
// can match.
func (c *Catalog) EvaluateInContext(collID int64, q *Query) ([]int64, error) {
	return c.EvaluateInContextCtx(context.Background(), collID, q)
}

// EvaluateInContextCtx is EvaluateInContext honoring ctx cancellation
// ("context" in the name refers to the collection containment scope;
// ctx is Go cancellation, checked between pipeline stages).
func (c *Catalog) EvaluateInContextCtx(ctx context.Context, collID int64, q *Query) ([]int64, error) {
	// One pinned view covers both the scope walk and the evaluation, so
	// membership and match results come from the same epoch.
	v := c.pinViewCtx(ctx)
	scope, err := v.collectionObjects(collID)
	if err != nil {
		return nil, err
	}
	if len(scope) == 0 {
		return nil, nil
	}
	ids, err := v.evaluateTraced(q, nil)
	if err != nil {
		return nil, err
	}
	inScope := make(map[int64]bool, len(scope))
	for _, id := range scope {
		inScope[id] = true
	}
	var out []int64
	for _, id := range ids {
		if inScope[id] {
			out = append(out, id)
		}
	}
	return out, nil
}

// CollectionsContaining answers the broader-context direction the
// paper's §7 calls out: which collections (directly or through their
// subtree) contain at least one object matching the query.
func (c *Catalog) CollectionsContaining(q *Query) ([]int64, error) {
	v := c.pinView()
	ids, err := v.evaluateTraced(q, nil)
	if err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		return nil, nil
	}
	matched := make(map[int64]bool, len(ids))
	for _, id := range ids {
		matched[id] = true
	}
	// Direct memberships of matching objects.
	memT := v.tab(TMembers)
	direct := map[int64]bool{}
	for _, id := range ids {
		rows, err := memT.LookupEqual("members_by_object", relstore.Int(id))
		if err != nil {
			return nil, err
		}
		for _, rid := range rows {
			if r := memT.Get(rid); r != nil {
				direct[r[0].I] = true
			}
		}
	}
	// Ancestors of those collections also contain the objects.
	collT := v.tab(TCollections)
	parentOf := map[int64]int64{}
	collT.Scan(func(_ int64, r relstore.Row) bool {
		if !r[3].IsNull() {
			parentOf[r[0].I] = r[3].I
		}
		return true
	})
	all := map[int64]bool{}
	for cid := range direct {
		for id := cid; id != 0; id = parentOf[id] {
			if all[id] {
				break
			}
			all[id] = true
		}
	}
	out := make([]int64, 0, len(all))
	for id := range all {
		out = append(out, id)
	}
	slices.Sort(out)
	return out, nil
}

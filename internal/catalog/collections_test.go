package catalog

import (
	"fmt"
	"testing"

	"github.com/gridmeta/hybridcat/internal/relstore"
)

// collFixture builds a catalog with a project/experiment hierarchy:
//
//	project (p)
//	├── exp-a: objects with dx 500, 1000
//	└── exp-b: objects with dx 1000, 2000
//	loose object (dx 1000) in no collection
func collFixture(t *testing.T) (c *Catalog, p, expA, expB int64, objs []int64) {
	t.Helper()
	c = newLEADCatalog(t, Options{})
	var err error
	p, err = c.CreateCollection("spring06", "alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	expA, err = c.CreateCollection("exp-a", "alice", p)
	if err != nil {
		t.Fatal(err)
	}
	expB, err = c.CreateCollection("exp-b", "alice", p)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range []struct {
		dx   string
		coll int64
	}{
		{"500", expA}, {"1000", expA}, {"1000", expB}, {"2000", expB}, {"1000", 0},
	} {
		id, err := c.IngestXML("alice", fig3Variant(t, spec.dx))
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		objs = append(objs, id)
		if spec.coll != 0 {
			if err := c.AddToCollection(spec.coll, id); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c, p, expA, expB, objs
}

func TestCollectionLifecycle(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	if _, err := c.CreateCollection("", "u", 0); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := c.CreateCollection("x", "u", 999); err == nil {
		t.Error("missing parent should fail")
	}
	p, err := c.CreateCollection("p", "u", 0)
	if err != nil {
		t.Fatal(err)
	}
	child, err := c.CreateCollection("c", "u", p)
	if err != nil {
		t.Fatal(err)
	}
	infos := c.Collections()
	if len(infos) != 2 || infos[0].ID != p || infos[1].ParentID != p {
		t.Fatalf("collections = %+v", infos)
	}
	// Membership validation.
	if err := c.AddToCollection(child, 42); err == nil {
		t.Error("missing object should fail")
	}
	id := ingestFig3(t, c)
	if err := c.AddToCollection(999, id); err == nil {
		t.Error("missing collection should fail")
	}
	if err := c.AddToCollection(child, id); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := c.AddToCollection(child, id); err != nil {
		t.Fatal(err)
	}
	got, err := c.CollectionObjects(child)
	if err != nil || len(got) != 1 {
		t.Fatalf("objects = %v, %v", got, err)
	}
	removed, err := c.RemoveFromCollection(child, id)
	if err != nil || !removed {
		t.Errorf("remove = %v, %v", removed, err)
	}
	removed, err = c.RemoveFromCollection(child, id)
	if err != nil || removed {
		t.Errorf("second remove = %v, %v", removed, err)
	}
}

func TestCollectionObjectsTransitive(t *testing.T) {
	c, p, expA, expB, objs := collFixture(t)
	all, err := c.CollectionObjects(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 { // everything except the loose object
		t.Fatalf("project objects = %v", all)
	}
	a, _ := c.CollectionObjects(expA)
	if fmt.Sprint(a) != fmt.Sprint(objs[:2]) {
		t.Fatalf("exp-a = %v", a)
	}
	b, _ := c.CollectionObjects(expB)
	if len(b) != 2 {
		t.Fatalf("exp-b = %v", b)
	}
	if _, err := c.CollectionObjects(12345); err == nil {
		t.Error("missing collection should fail")
	}
}

func TestEvaluateInContext(t *testing.T) {
	c, p, expA, expB, objs := collFixture(t)
	q := &Query{}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(1000))

	// Whole catalog: three matches (exp-a, exp-b, loose).
	ids, err := c.Evaluate(q)
	if err != nil || len(ids) != 3 {
		t.Fatalf("global = %v, %v", ids, err)
	}
	// Project scope: excludes the loose object.
	ids, err = c.EvaluateInContext(p, q)
	if err != nil || len(ids) != 2 {
		t.Fatalf("project = %v, %v", ids, err)
	}
	// Experiment scopes.
	ids, _ = c.EvaluateInContext(expA, q)
	if len(ids) != 1 || ids[0] != objs[1] {
		t.Fatalf("exp-a = %v", ids)
	}
	ids, _ = c.EvaluateInContext(expB, q)
	if len(ids) != 1 || ids[0] != objs[2] {
		t.Fatalf("exp-b = %v", ids)
	}
	// Empty collection scope.
	empty, _ := c.CreateCollection("empty", "alice", 0)
	ids, err = c.EvaluateInContext(empty, q)
	if err != nil || len(ids) != 0 {
		t.Fatalf("empty = %v, %v", ids, err)
	}
}

func TestCollectionsContaining(t *testing.T) {
	c, p, expA, expB, _ := collFixture(t)
	// dx=500 lives only in exp-a (and therefore the project).
	q := &Query{}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(500))
	colls, err := c.CollectionsContaining(q)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(colls) != fmt.Sprint([]int64{p, expA}) {
		t.Fatalf("colls = %v, want [%d %d]", colls, p, expA)
	}
	// dx=1000 is in both experiments.
	q = &Query{}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(1000))
	colls, _ = c.CollectionsContaining(q)
	if fmt.Sprint(colls) != fmt.Sprint([]int64{p, expA, expB}) {
		t.Fatalf("colls = %v", colls)
	}
	// No matches -> no collections.
	q = &Query{}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(77777))
	colls, err = c.CollectionsContaining(q)
	if err != nil || colls != nil {
		t.Fatalf("no-match = %v, %v", colls, err)
	}
}

func TestDeleteObjectRemovesMemberships(t *testing.T) {
	c, p, expA, _, objs := collFixture(t)
	if ok, err := c.Delete(objs[0]); err != nil || !ok {
		t.Fatalf("delete = %v, %v", ok, err)
	}
	a, _ := c.CollectionObjects(expA)
	if len(a) != 1 {
		t.Fatalf("exp-a after delete = %v", a)
	}
	all, _ := c.CollectionObjects(p)
	if len(all) != 3 {
		t.Fatalf("project after delete = %v", all)
	}
}

package catalog

import (
	"fmt"

	"github.com/gridmeta/hybridcat/internal/wal"
)

// ImportWAL applies another catalog's log records to this catalog as
// ONE local durable mutation — the rebalance catch-up path: a shard
// being moved bootstraps its new instance from a snapshot, then imports
// the source's WAL tail until the two are identical. Unlike ApplyWAL
// (the follower path), the records' sequence numbers belong to the
// SOURCE's log and are not tracked here: the replayed row operations
// are captured by the journal hook and re-committed under this
// catalog's own log, so the import is exactly as durable as any local
// write. The caller owns cursor arithmetic and must pass each source
// record at most once, in order.
func (c *Catalog) ImportWAL(recs []wal.Record) error {
	if len(recs) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	defTouched, idTouched := false, false
	err := c.mutateLocked(func() error {
		for _, rec := range recs {
			ops, err := decodeOps(rec.Payload)
			if err != nil {
				return fmt.Errorf("catalog: import record %d: %w", rec.Seq, err)
			}
			for _, op := range ops {
				switch op.Table {
				case TAttrDef, TElemDef:
					defTouched = true
				case TObjects, TCollections:
					idTouched = true
				}
			}
			if err := c.replayOps(ops); err != nil {
				return fmt.Errorf("catalog: import record %d: %w", rec.Seq, err)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if defTouched {
		// Imported records may carry dynamic definitions; rebuild the
		// registry from the replayed definition tables.
		if err := c.restoreRegistryFromTables(); err != nil {
			return err
		}
	}
	if idTouched {
		c.fixAutoIDs()
	}
	return nil
}

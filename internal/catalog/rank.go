package catalog

import (
	"context"
	"errors"
	"fmt"

	"github.com/gridmeta/hybridcat/internal/obs"
	"github.com/gridmeta/hybridcat/internal/textindex"
)

// Ranked content-and-structure retrieval: the rank plan operator. A
// query carrying a RankSpec is answered by BM25 top-k over an inverted
// index of every attribute element's text value (internal/textindex),
// composed with the structural pipeline: when the query also has
// attribute criteria, only objects the structural plan admits are
// scored; without criteria, ranking runs over everything the owner may
// see. The index is epoch-stamped like every other read-cache layer —
// built lazily from the pinned snapshot on the first ranked query after
// a mutation, then shared read-only by concurrent rankers.
//
// For sharded deployments, scoring is a two-phase scatter: TextStats
// collects each shard's corpus statistics, the router sums them
// (textindex.Stats.Merge), and EvaluateRankedStats scores every shard
// with the global statistics — making the k-way merged ranking
// bit-identical to a single catalog holding the union of the shards.

// DefaultRankK is the result bound when RankSpec.K is zero.
const DefaultRankK = 10

// ErrTextIndexDisabled is returned for ranked queries when the catalog
// was opened with Options.DisableTextIndex.
var ErrTextIndexDisabled = errors.New("catalog: text index disabled")

// RankSpec asks for BM25 ranked retrieval: free-text terms (analyzed by
// the same tokenizer that indexes values) and the result bound k.
type RankSpec struct {
	Terms []string
	K     int
}

// ScoredID is one ranked result: an object and its BM25 score, ordered
// score-descending with ties broken by ascending ID.
type ScoredID struct {
	ID    int64   `json:"id"`
	Score float64 `json:"score"`
}

// stampedText is the epoch-stamped immutable text index held in
// Catalog.text.
type stampedText struct {
	epoch uint64
	idx   *textindex.Index
}

// textIndexAt returns the text index for the view's pinned epoch,
// building (and publishing) it when the cached one is missing or
// stale. The double-checked mutex makes concurrent ranked queries
// after a mutation build once; the publish keeps the newest epoch, so
// a reader pinned behind the current version never regresses the
// shared index.
func (c *Catalog) textIndexAt(v *view) (*textindex.Index, error) {
	if c.opts.DisableTextIndex {
		return nil, ErrTextIndexDisabled
	}
	epoch := v.snap.Epoch()
	if cur := c.text.Load(); cur != nil && cur.epoch == epoch {
		return cur.idx, nil
	}
	c.textMu.Lock()
	defer c.textMu.Unlock()
	if cur := c.text.Load(); cur != nil && cur.epoch == epoch {
		return cur.idx, nil
	}
	b := textindex.NewBuilder()
	// elem_data: object_id at column 0, sval at column 5 — every textual
	// element value of every attribute instance, credited to its object.
	v.tab(TElemData).ScanTextPostings(0, 5, b.Add)
	idx := b.Build()
	c.obsv.textBuilds.Inc()
	if cur := c.text.Load(); cur == nil || cur.epoch <= epoch {
		c.text.Store(&stampedText{epoch: epoch, idx: idx})
	}
	return idx, nil
}

// EvaluateRanked runs a ranked query and returns the BM25 top-k object
// IDs with scores, composed with the query's structural criteria and
// owner scoping.
func (c *Catalog) EvaluateRanked(q *Query) ([]ScoredID, error) {
	return c.EvaluateRankedStats(context.Background(), q, nil)
}

// EvaluateRankedContext is EvaluateRanked honoring ctx between stages.
func (c *Catalog) EvaluateRankedContext(ctx context.Context, q *Query) ([]ScoredID, error) {
	return c.EvaluateRankedStats(ctx, q, nil)
}

// EvaluateRankedStats is EvaluateRankedContext scoring with the given
// corpus statistics instead of the local index's own — the shard
// scatter passes globally summed statistics here so per-shard scores
// agree with a single-catalog ranking. A nil st scores locally.
func (c *Catalog) EvaluateRankedStats(ctx context.Context, q *Query, st *textindex.Stats) ([]ScoredID, error) {
	tr, done := c.beginOp("rank", c.obsv.opRank)
	defer done()
	return c.pinViewCtx(ctx).evaluateRanked(q, st, tr)
}

// evaluateRanked is the rank operator body: structural candidates (or
// owner visibility) gate admission, then the text index scores the
// analyzed terms over one pinned snapshot.
func (v *view) evaluateRanked(q *Query, st *textindex.Stats, tr *obs.Trace) ([]ScoredID, error) {
	c := v.c
	if q.Rank == nil || len(q.Rank.Terms) == 0 {
		return nil, fmt.Errorf("catalog: ranked query has no rank terms")
	}
	idx, err := c.textIndexAt(v)
	if err != nil {
		return nil, err
	}
	var allow func(int64) bool
	if len(q.Attrs) > 0 {
		// Structural composition: run the Figure-4 plan (through the
		// evaluate cache; visibility already applied) and admit only its
		// matches into scoring.
		structural := *q
		structural.Rank = nil
		ids, err := v.evaluateTraced(&structural, tr)
		if err != nil {
			return nil, err
		}
		member := make(map[int64]bool, len(ids))
		for _, id := range ids {
			member[id] = true
		}
		allow = func(id int64) bool { return member[id] }
	} else {
		allow = func(id int64) bool { return v.visibleTo(q.Owner, id) }
	}
	if err := v.ctxErr(); err != nil {
		return nil, err
	}
	k := q.Rank.K
	if k <= 0 {
		k = DefaultRankK
	}
	endRank := c.stageTimer(tr, "rank", c.obsv.stageRank)
	terms := textindex.AnalyzeTerms(q.Rank.Terms)
	scored := idx.TopK(terms, k, st, allow)
	endRank(int64(len(scored)))
	out := make([]ScoredID, len(scored))
	for i, s := range scored {
		out[i] = ScoredID{ID: s.Doc, Score: s.Score}
	}
	return out, nil
}

// TextStats returns this catalog's corpus statistics for the analyzed
// query terms — phase one of the sharded two-phase ranking.
func (c *Catalog) TextStats(terms []string) (textindex.Stats, error) {
	v := c.pinView()
	idx, err := c.textIndexAt(v)
	if err != nil {
		return textindex.Stats{}, err
	}
	return idx.StatsFor(textindex.AnalyzeTerms(terms)), nil
}

// RankedResponse is one ranked search result with its rebuilt document.
type RankedResponse struct {
	ObjectID int64
	Score    float64
	XML      string
}

// SearchRanked evaluates a ranked query and builds the tagged response
// documents, preserving score order, against one pinned snapshot.
func (c *Catalog) SearchRanked(ctx context.Context, q *Query) ([]RankedResponse, error) {
	tr, done := c.beginOp("search", c.obsv.opSearch)
	defer done()
	v := c.pinViewCtx(ctx)
	scored, err := v.evaluateRanked(q, nil, tr)
	if err != nil {
		return nil, err
	}
	ids := make([]int64, len(scored))
	scoreOf := make(map[int64]float64, len(scored))
	for i, s := range scored {
		ids[i] = s.ID
		scoreOf[s.ID] = s.Score
	}
	resp, err := v.buildResponseTraced(ids, tr)
	if err != nil {
		return nil, err
	}
	out := make([]RankedResponse, len(resp))
	for i, r := range resp {
		out[i] = RankedResponse{ObjectID: r.ObjectID, Score: scoreOf[r.ObjectID], XML: r.XML}
	}
	return out, nil
}

// explainRank renders the rank operator's explain lines: the analyzed
// terms with per-term document frequencies, the index dimensions, and
// the admitted top-k count. structural carries the structural plan's
// visible matches (ignored for rank-only queries, which admit by owner
// visibility instead).
func (v *view) explainRank(q *Query, structural []int64, rankOnly bool) ([]string, error) {
	idx, err := v.c.textIndexAt(v)
	if err != nil {
		return nil, err
	}
	terms := textindex.AnalyzeTerms(q.Rank.Terms)
	k := q.Rank.K
	if k <= 0 {
		k = DefaultRankK
	}
	var lines []string
	if rankOnly {
		lines = append(lines, "query: 0 criteria node(s), ranked retrieval only")
		lines = append(lines, "plan: rank()")
	}
	lines = append(lines, fmt.Sprintf("rank: %d analyzed term(s) %v, k=%d over text index (docs=%d, terms=%d)",
		len(terms), terms, k, idx.Docs(), idx.Terms()))
	for _, t := range terms {
		lines = append(lines, fmt.Sprintf("rank: term %q df=%d", t, idx.DocFreq(t)))
	}
	var allow func(int64) bool
	if rankOnly {
		allow = func(id int64) bool { return v.visibleTo(q.Owner, id) }
	} else {
		member := make(map[int64]bool, len(structural))
		for _, id := range structural {
			member[id] = true
		}
		allow = func(id int64) bool { return member[id] }
	}
	scored := idx.TopK(terms, k, nil, allow)
	lines = append(lines, fmt.Sprintf("rank: top-%d -> %d ranked result(s)", k, len(scored)))
	return lines, nil
}

package catalog

import (
	"runtime"
	"sync"
)

// DefaultParallelRowThreshold is the indexed-row count above which the
// read path fans work out across goroutines. Below it a query runs
// sequentially: for small catalogs the per-criterion probes finish in
// microseconds and goroutine handoff would dominate.
const DefaultParallelRowThreshold = 4096

// fanoutWorkers sizes the worker pool for units independent work items
// over a table of rows candidate rows. A result of 1 means "run
// sequentially on the calling goroutine".
func (c *Catalog) fanoutWorkers(units, rows int) int {
	if units <= 1 {
		return 1
	}
	w := c.opts.QueryWorkers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w <= 1 {
		return 1
	}
	thr := c.opts.ParallelRowThreshold
	if thr == 0 {
		thr = DefaultParallelRowThreshold
	}
	if thr > 0 && rows < thr {
		return 1
	}
	if w > units {
		w = units
	}
	return w
}

// runParallel runs fn(i) for every i in [0, n) across at most workers
// goroutines and returns the error of the smallest failing index — the
// same error a sequential loop would surface, so callers see
// deterministic failures regardless of goroutine scheduling.
func runParallel(workers, n int, fn func(int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// chunkContiguous splits ids into at most n contiguous, order-preserving
// chunks of near-equal size.
func chunkContiguous(ids []int64, n int) [][]int64 {
	if n < 1 {
		n = 1
	}
	per := (len(ids) + n - 1) / n
	if per < 1 {
		per = 1
	}
	var out [][]int64
	for i := 0; i < len(ids); i += per {
		j := i + per
		if j > len(ids) {
			j = len(ids)
		}
		out = append(out, ids[i:j])
	}
	return out
}

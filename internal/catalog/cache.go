package catalog

import (
	"fmt"
	"math"
	"strings"

	"github.com/gridmeta/hybridcat/internal/bitset"
	"github.com/gridmeta/hybridcat/internal/cache"
	"github.com/gridmeta/hybridcat/internal/relstore"
)

// The catalog's read caches. The hot read path recomputes nothing it has
// already answered since the last mutation:
//
//   - evaluate: whole Figure-4 results ([]int64 object IDs) keyed by a
//     canonical serialization of (Owner, criteria tree),
//   - resolve: the shredded-and-resolved criteria nodes for the same key,
//     stamped by the *registry* generation so they survive data ingest,
//   - probe: per-criterion directly-satisfied instance rows keyed by the
//     resolved definition IDs and predicates, shared across queries that
//     repeat a criterion (row-path oracle only),
//   - postings: the bitmap pipeline's twin of the probe layer — the same
//     keys, but holding compressed posting lists (*bitset.Set) instead
//     of row slices; cached sets are immutable and shared read-only
//     across concurrent evaluations,
//   - response: per-object rebuilt XML documents keyed by object ID, so
//     repeated fetches and overlapping result sets skip the §5
//     HashJoin/ancestor reconstruction.
//
// All four are generation-stamped: evaluate/probe/response by the
// epoch of the reader's pinned snapshot (every committed transaction —
// ingest, delete, publish, membership, definition mirroring — publishes
// a new epoch), resolve by the pinned registry generation (bumped by
// dynamic registration). A mutation invalidates by publishing a new
// epoch; no cache entry is ever tracked or walked.
//
// Consistency argument: a reader pins an immutable snapshot at epoch g
// before touching any table, computes only from that snapshot, and
// stamps what it stores with g — so a value stamped g was computed from
// exactly the table state of epoch g, no lock required. The cache
// serves an entry only to readers presenting the same stamp, so a
// reader pinned at g can never see a value computed at any other epoch,
// even while writers publish g+1, g+2, ... concurrently. (A
// behind-the-current reader may re-store an old-stamped value over a
// newer one; that costs a recompute later, never correctness.) The
// resolve layer stamps with the pinned *registry* generation, which
// survives data-only epochs; resolved trees are pure functions of the
// pinned definition set, so equal generation means equal resolution.

// DefaultCacheSize is the per-layer entry cap when Options.CacheSize is
// zero.
const DefaultCacheSize = 4096

// catCaches groups the four read-cache layers. All nil means caching is
// disabled; the layers are enabled and sized together.
type catCaches struct {
	eval     *cache.Cache[string, []int64]
	resolve  *cache.Cache[string, resolvedQuery]
	probe    *cache.Cache[string, []relstore.Row]
	postings *cache.Cache[string, *bitset.Set]
	response *cache.Cache[int64, string]
}

// resolvedQuery is a cached resolve() result. qNodes are immutable after
// resolution, so one resolved tree is shared by any number of concurrent
// evaluations.
type resolvedQuery struct {
	all, tops []*qNode
}

// initCaches builds the cache layers per the catalog options; called
// from Open.
func (c *Catalog) initCaches() {
	size := c.opts.CacheSize
	if c.opts.DisableCache || size < 0 {
		return
	}
	if size == 0 {
		size = DefaultCacheSize
	}
	c.caches.eval = cache.New[string, []int64](size, cache.StringHash)
	c.caches.resolve = cache.New[string, resolvedQuery](size, cache.StringHash)
	c.caches.probe = cache.New[string, []relstore.Row](size, cache.StringHash)
	c.caches.postings = cache.New[string, *bitset.Set](size, cache.StringHash)
	c.caches.response = cache.New[int64, string](size, cache.Int64Hash)
	c.caches.eval.Instrument(c.obsv.reg, "evaluate")
	c.caches.resolve.Instrument(c.obsv.reg, "resolve")
	c.caches.probe.Instrument(c.obsv.reg, "probe")
	c.caches.postings.Instrument(c.obsv.reg, "postings")
	c.caches.response.Instrument(c.obsv.reg, "response")
}

// CachingEnabled reports whether the read caches are active.
func (c *Catalog) CachingEnabled() bool { return c.caches.eval != nil }

// CacheStats reports the per-layer cache counters and the two
// generations entries are stamped with. Zero layers with Enabled=false
// mean caching is off.
type CacheStats struct {
	Enabled            bool        `json:"enabled"`
	DataGeneration     uint64      `json:"data_generation"`
	RegistryGeneration uint64      `json:"registry_generation"`
	Evaluate           cache.Stats `json:"evaluate"`
	Resolve            cache.Stats `json:"resolve"`
	Probe              cache.Stats `json:"probe"`
	Postings           cache.Stats `json:"postings"`
	Response           cache.Stats `json:"response"`
}

// CacheStats snapshots the read-cache counters.
func (c *Catalog) CacheStats() CacheStats {
	return CacheStats{
		Enabled:            c.CachingEnabled(),
		DataGeneration:     c.DB.Generation(),
		RegistryGeneration: c.Reg.Generation(),
		Evaluate:           c.caches.eval.Stats(),
		Resolve:            c.caches.resolve.Stats(),
		Probe:              c.caches.probe.Stats(),
		Postings:           c.caches.postings.Stats(),
		Response:           c.caches.response.Stats(),
	}
}

// resolveCached resolves the query through the resolve layer, keyed by
// the same canonical query key as the evaluate layer but stamped by the
// pinned registry generation, so resolved criteria trees survive data
// mutations. Resolution errors are never cached: a criterion that fails
// today may resolve after the next registration.
func (v *view) resolveCached(q *Query, key string) ([]*qNode, []*qNode, error) {
	c := v.c
	if c.caches.resolve == nil || key == "" {
		return v.resolve(q)
	}
	rq, err := c.caches.resolve.GetOrCompute(v.reg.Generation(), key, func() (resolvedQuery, error) {
		all, tops, err := v.resolve(q)
		if err != nil {
			return resolvedQuery{}, err
		}
		return resolvedQuery{all: all, tops: tops}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rq.all, rq.tops, nil
}

// queryCacheKey canonically serializes (Owner, criteria tree) into the
// evaluate/resolve cache key. Every variable-length field is
// length-prefixed, so distinct queries can never collide.
func queryCacheKey(q *Query) string {
	var b strings.Builder
	b.WriteByte('o')
	writeLenPrefixed(&b, q.Owner)
	for _, a := range q.Attrs {
		writeCritKey(&b, a)
	}
	if q.Rank != nil {
		// Defensive: ranked queries strip Rank before the evaluate cache,
		// but a keyed rank can never alias a structural query.
		b.WriteString("R(")
		for _, t := range q.Rank.Terms {
			writeLenPrefixed(&b, t)
		}
		fmt.Fprintf(&b, "k%d)", q.Rank.K)
	}
	return b.String()
}

func writeLenPrefixed(b *strings.Builder, s string) {
	fmt.Fprintf(b, "%d:%s", len(s), s)
}

func writeCritKey(b *strings.Builder, a *AttrCriteria) {
	b.WriteString("A(")
	writeLenPrefixed(b, a.Name)
	writeLenPrefixed(b, a.Source)
	for _, e := range a.Elems {
		b.WriteString("E(")
		writeLenPrefixed(b, e.Name)
		writeLenPrefixed(b, e.Source)
		fmt.Fprintf(b, "%d", e.Op)
		writeValueKey(b, e.Value)
		for _, v := range e.OneOf {
			writeValueKey(b, v)
		}
		b.WriteByte(')')
	}
	for _, s := range a.Subs {
		writeCritKey(b, s)
	}
	b.WriteByte(')')
}

// writeValueKey serializes a predicate value with its kind, so Int(5),
// Float(5), and Str("5") key differently — they probe different indexes.
func writeValueKey(b *strings.Builder, v relstore.Value) {
	switch v.K {
	case relstore.KInt:
		fmt.Fprintf(b, "i%d", v.I)
	case relstore.KFloat:
		fmt.Fprintf(b, "f%016x", math.Float64bits(v.F))
	case relstore.KString:
		b.WriteByte('s')
		writeLenPrefixed(b, v.S)
	case relstore.KBytes:
		fmt.Fprintf(b, "b%d:%s", len(v.B), v.B)
	case relstore.KBool:
		fmt.Fprintf(b, "t%d", v.I)
	default:
		b.WriteByte('n')
	}
}

// probeKeyOf builds a criteria node's probe-layer key from its resolved
// definition IDs and predicates. Two nodes with the same key — within
// one query or across queries — satisfy identical instance sets, so the
// probe layer memoizes the stage-1+2 rows once per data generation.
func probeKeyOf(n *qNode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "d%d", n.def.ID)
	for _, qe := range n.elems {
		fmt.Fprintf(&b, "e%d,%d", qe.def.ID, qe.pred.Op)
		writeValueKey(&b, qe.pred.Value)
		for _, v := range qe.pred.OneOf {
			writeValueKey(&b, v)
		}
	}
	return b.String()
}

package catalog

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countdownCtx is a context whose Err turns non-nil after a fixed
// number of checks, letting a test cancel deterministically at each
// stage boundary of the pipeline instead of racing a timer.
type countdownCtx struct {
	checks atomic.Int64
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.checks.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// allow returns a context whose first n Err checks pass.
func allow(n int64) *countdownCtx {
	c := &countdownCtx{}
	c.checks.Store(n)
	return c
}

func TestEvaluateContextCancelledAtEveryStage(t *testing.T) {
	for _, bitmaps := range []bool{false, true} {
		// The cache layers are off so every call runs the pipeline (and
		// therefore hits every stage-boundary check).
		c := newLEADCatalog(t, Options{DisableBitmaps: !bitmaps, DisableCache: true})
		ingestFig3(t, c)
		q := dxQuery("")

		// Fully-live context: sanity-check the query has a match.
		ids, err := c.EvaluateContext(context.Background(), q)
		if err != nil || len(ids) != 1 {
			t.Fatalf("bitmaps=%v: live evaluate = %v, %v", bitmaps, ids, err)
		}

		// Count how many boundary checks one full run makes, then rerun
		// cancelling at each boundary in turn.
		probe := allow(1 << 30)
		if _, err := c.EvaluateContext(probe, q); err != nil {
			t.Fatal(err)
		}
		boundaries := 1<<30 - probe.checks.Load()
		if boundaries < 3 {
			t.Fatalf("bitmaps=%v: expected >= 3 boundary checks, saw %d", bitmaps, boundaries)
		}
		for n := int64(0); n < boundaries; n++ {
			ids, err := c.EvaluateContext(allow(n), q)
			if !errors.Is(err, context.Canceled) {
				t.Errorf("bitmaps=%v: cancel at check %d: got %v, %v; want context.Canceled",
					bitmaps, n, ids, err)
			}
		}
	}
}

func TestEvaluateContextPreCancelled(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	ingestFig3(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.EvaluateContext(ctx, dxQuery("")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := c.EvaluateInContextCtx(ctx, 1, dxQuery("")); !errors.Is(err, context.Canceled) {
		// The scope walk may fail on the missing collection before the
		// pipeline runs; either way the call must not succeed.
		if err == nil {
			t.Fatal("pre-cancelled scoped evaluate succeeded")
		}
	}
}

// TestEvaluateContextSingleflightCancel drives concurrent evaluations of
// one query where some callers' contexts are cancelled mid-flight:
// callers with live contexts must never surface another caller's
// context.Canceled out of a shared singleflight computation.
func TestEvaluateContextSingleflightCancel(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	ingestFig3(t, c)
	q := dxQuery("")
	var wg sync.WaitGroup
	for round := 0; round < 50; round++ {
		for i := 0; i < 4; i++ {
			wg.Add(2)
			go func(n int64) {
				defer wg.Done()
				// Cancelled partway through: must error with Canceled or
				// (if the cache answered first) succeed with the result.
				ids, err := c.EvaluateContext(allow(n), q)
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Errorf("cancelled caller: unexpected error %v", err)
				}
				if err == nil && len(ids) != 1 {
					t.Errorf("cancelled caller: ids = %v", ids)
				}
			}(int64(round % 3))
			go func() {
				defer wg.Done()
				ids, err := c.EvaluateContext(context.Background(), q)
				if err != nil || len(ids) != 1 {
					t.Errorf("live caller: ids = %v, err = %v", ids, err)
				}
			}()
		}
	}
	wg.Wait()
}

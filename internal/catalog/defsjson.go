package catalog

import (
	"encoding/json"
	"fmt"

	"github.com/gridmeta/hybridcat/internal/core"
)

// DefJSON is the wire format for dynamic definitions, shared by the CLI
// (mdgen -defs / mdcat -defs) and the service's GET /defs endpoint:
//
//	[{"kind":"attribute","name":"grid","source":"ARPS"},
//	 {"kind":"attribute","name":"grid-stretching","source":"ARPS","parent":"grid"},
//	 {"kind":"element","name":"dx","source":"ARPS","parent":"grid","type":"float"}]
//
// Attributes must appear before any element or sub-attribute that names
// them as parent. Parent references are by attribute name.
type DefJSON struct {
	Kind   string `json:"kind"` // "attribute" or "element"
	Name   string `json:"name"`
	Source string `json:"source"`
	Parent string `json:"parent,omitempty"`
	Type   string `json:"type,omitempty"` // elements only
	Owner  string `json:"owner,omitempty"`
}

// LoadDefinitionsJSON registers dynamic definitions from the DefJSON
// format.
func (c *Catalog) LoadDefinitionsJSON(data []byte) error {
	var defs []DefJSON
	if err := json.Unmarshal(data, &defs); err != nil {
		return fmt.Errorf("catalog: bad definitions JSON: %w", err)
	}
	byName := map[string]int64{}
	for _, d := range defs {
		if d.Kind != "attribute" {
			continue
		}
		parent := int64(0)
		if d.Parent != "" {
			id, ok := byName[d.Parent]
			if !ok {
				return fmt.Errorf("catalog: attribute %q references undefined parent %q (parents must appear first)", d.Name, d.Parent)
			}
			parent = id
		}
		def, err := c.RegisterAttr(d.Name, d.Source, parent, d.Owner)
		if err != nil {
			return fmt.Errorf("catalog: attribute %s: %w", d.Name, err)
		}
		byName[d.Name] = def.ID
	}
	for _, d := range defs {
		switch d.Kind {
		case "attribute":
		case "element":
			dt, err := core.ParseDataType(d.Type)
			if err != nil {
				return fmt.Errorf("catalog: element %s: %w", d.Name, err)
			}
			parent, ok := byName[d.Parent]
			if !ok {
				return fmt.Errorf("catalog: element %q references undefined attribute %q", d.Name, d.Parent)
			}
			if _, err := c.RegisterElem(d.Name, d.Source, parent, dt, d.Owner); err != nil {
				return fmt.Errorf("catalog: element %s: %w", d.Name, err)
			}
		default:
			return fmt.Errorf("catalog: unknown definition kind %q", d.Kind)
		}
	}
	return nil
}

// DumpDefinitionsJSON renders the catalog's dynamic definitions in the
// DefJSON format (parents before children).
func (c *Catalog) DumpDefinitionsJSON() ([]byte, error) {
	var out []DefJSON
	attrName := map[int64]string{}
	for _, a := range c.Reg.Attrs() {
		attrName[a.ID] = a.Name
		if !a.Dynamic {
			continue
		}
		d := DefJSON{Kind: "attribute", Name: a.Name, Source: a.Source, Owner: a.Owner}
		if a.ParentID != 0 {
			d.Parent = attrName[a.ParentID]
		}
		out = append(out, d)
	}
	for _, e := range c.Reg.Elems() {
		owner := c.Reg.AttrByID(e.AttrID)
		if owner == nil || !owner.Dynamic {
			continue
		}
		out = append(out, DefJSON{
			Kind: "element", Name: e.Name, Source: e.Source,
			Parent: owner.Name, Type: e.Type.String(), Owner: e.Owner,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// SearchPage evaluates the query and builds responses for one page of the
// result set: objects [offset, offset+limit) of the ascending ID order.
// total is the full match count. limit <= 0 means no limit.
func (c *Catalog) SearchPage(q *Query, offset, limit int) (resp []Response, total int, err error) {
	// One pinned view covers the evaluation and the page's response
	// build, so the page is internally consistent.
	v := c.pinView()
	ids, err := v.evaluateTraced(q, nil)
	if err != nil {
		return nil, 0, err
	}
	total = len(ids)
	if offset >= len(ids) {
		return nil, total, nil
	}
	ids = ids[offset:]
	if limit > 0 && limit < len(ids) {
		ids = ids[:limit]
	}
	resp, err = v.buildResponseTraced(ids, nil)
	return resp, total, err
}

package catalog

import (
	"encoding/json"
	"fmt"

	"github.com/gridmeta/hybridcat/internal/relstore"
)

// JSON wire format for queries, used by the HTTP service and the CLI:
//
//	{
//	  "owner": "alice",
//	  "attrs": [{
//	    "name": "grid", "source": "ARPS",
//	    "elems": [{"name": "dx", "source": "ARPS", "op": ">=", "value": 1000}],
//	    "subs":  [{"name": "grid-stretching", "source": "ARPS",
//	               "elems": [{"name": "dzmin", "source": "ARPS", "op": "=", "value": 100}]}]
//	  }]
//	}
//
// Values may be JSON numbers (typed numeric comparison), strings, or
// booleans.
//
// A "rank" object turns the query into BM25 ranked retrieval, composed
// with any structural attrs (both may be present; attrs alone is a
// plain structural query):
//
//	{"owner": "alice", "rank": {"terms": ["storm", "surge"], "k": 10}}

type jsonQuery struct {
	Owner string     `json:"owner,omitempty"`
	Attrs []jsonAttr `json:"attrs,omitempty"`
	Rank  *jsonRank  `json:"rank,omitempty"`
}

type jsonRank struct {
	Terms []string `json:"terms"`
	K     int      `json:"k,omitempty"`
}

type jsonAttr struct {
	Name   string     `json:"name"`
	Source string     `json:"source,omitempty"`
	Elems  []jsonElem `json:"elems,omitempty"`
	Subs   []jsonAttr `json:"subs,omitempty"`
}

type jsonElem struct {
	Name   string            `json:"name"`
	Source string            `json:"source,omitempty"`
	Op     string            `json:"op"`
	Value  json.RawMessage   `json:"value,omitempty"`
	Values []json.RawMessage `json:"values,omitempty"` // OneOf (op must be "=")
}

// ParseQueryJSON decodes the JSON wire format into a Query.
func ParseQueryJSON(data []byte) (*Query, error) {
	var jq jsonQuery
	if err := json.Unmarshal(data, &jq); err != nil {
		return nil, fmt.Errorf("catalog: bad query JSON: %w", err)
	}
	if len(jq.Attrs) == 0 && jq.Rank == nil {
		return nil, fmt.Errorf("catalog: query JSON has no attrs")
	}
	q := &Query{Owner: jq.Owner}
	for _, ja := range jq.Attrs {
		crit, err := jsonToCriteria(ja)
		if err != nil {
			return nil, err
		}
		q.Attrs = append(q.Attrs, crit)
	}
	if jq.Rank != nil {
		if len(jq.Rank.Terms) == 0 {
			return nil, fmt.Errorf("catalog: query JSON rank has no terms")
		}
		q.Rank = &RankSpec{Terms: jq.Rank.Terms, K: jq.Rank.K}
	}
	return q, nil
}

func jsonToCriteria(ja jsonAttr) (*AttrCriteria, error) {
	if ja.Name == "" {
		return nil, fmt.Errorf("catalog: query attr missing name")
	}
	crit := &AttrCriteria{Name: ja.Name, Source: ja.Source}
	for _, je := range ja.Elems {
		op, err := relstore.ParseCmpOp(je.Op)
		if err != nil {
			return nil, err
		}
		pred := ElemPred{Name: je.Name, Source: je.Source, Op: op}
		if len(je.Values) > 0 {
			if op != relstore.OpEq {
				return nil, fmt.Errorf("catalog: element %s: values requires op \"=\"", je.Name)
			}
			for _, raw := range je.Values {
				v, err := jsonValue(raw)
				if err != nil {
					return nil, fmt.Errorf("catalog: element %s: %w", je.Name, err)
				}
				pred.OneOf = append(pred.OneOf, v)
			}
		} else {
			v, err := jsonValue(je.Value)
			if err != nil {
				return nil, fmt.Errorf("catalog: element %s: %w", je.Name, err)
			}
			pred.Value = v
		}
		crit.Elems = append(crit.Elems, pred)
	}
	for _, js := range ja.Subs {
		sub, err := jsonToCriteria(js)
		if err != nil {
			return nil, err
		}
		crit.Subs = append(crit.Subs, sub)
	}
	return crit, nil
}

func jsonValue(raw json.RawMessage) (relstore.Value, error) {
	if len(raw) == 0 {
		return relstore.Value{}, fmt.Errorf("missing value")
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return relstore.Value{}, err
	}
	switch x := v.(type) {
	case float64:
		if x == float64(int64(x)) {
			return relstore.Int(int64(x)), nil
		}
		return relstore.Float(x), nil
	case string:
		return relstore.Str(x), nil
	case bool:
		return relstore.Bool(x), nil
	case nil:
		return relstore.Null(), nil
	}
	return relstore.Value{}, fmt.Errorf("unsupported value %s", raw)
}

// MarshalQueryJSON renders a Query in the wire format (for logging and
// client tooling).
func MarshalQueryJSON(q *Query) ([]byte, error) {
	jq := jsonQuery{Owner: q.Owner}
	for _, a := range q.Attrs {
		jq.Attrs = append(jq.Attrs, criteriaToJSON(a))
	}
	if q.Rank != nil {
		jq.Rank = &jsonRank{Terms: q.Rank.Terms, K: q.Rank.K}
	}
	return json.MarshalIndent(jq, "", "  ")
}

func marshalValue(v relstore.Value) json.RawMessage {
	var raw json.RawMessage
	switch v.K {
	case relstore.KInt:
		raw, _ = json.Marshal(v.I)
	case relstore.KFloat:
		raw, _ = json.Marshal(v.F)
	case relstore.KBool:
		raw, _ = json.Marshal(v.I != 0)
	default:
		raw, _ = json.Marshal(v.AsString())
	}
	return raw
}

func criteriaToJSON(a *AttrCriteria) jsonAttr {
	ja := jsonAttr{Name: a.Name, Source: a.Source}
	for _, e := range a.Elems {
		je := jsonElem{Name: e.Name, Source: e.Source, Op: e.Op.String()}
		if len(e.OneOf) > 0 {
			for _, v := range e.OneOf {
				je.Values = append(je.Values, marshalValue(v))
			}
		} else {
			je.Value = marshalValue(e.Value)
		}
		ja.Elems = append(ja.Elems, je)
	}
	for _, s := range a.Subs {
		ja.Subs = append(ja.Subs, criteriaToJSON(s))
	}
	return ja
}

package catalog

import (
	"errors"
	"fmt"
	"io"

	"github.com/gridmeta/hybridcat/internal/wal"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// Follower mode: a read-only replica catalog whose state advances only
// by replaying the primary's write-ahead log records (shipped over the
// replication stream; see internal/replica). The replay path is the
// same physical row-op machinery crash recovery uses, so a replica is
// exactly "a recovery that never finishes": every applied record leaves
// the replica at a state the primary's log contains, published with the
// same single pointer swap readers everywhere rely on.

// ErrReadOnlyReplica marks a mutation attempted on a follower catalog.
// The service maps it to 503 so clients retry against the primary.
var ErrReadOnlyReplica = errors.New("catalog: read-only replica")

// OpenFollower builds an empty follower catalog: read-only, fed by
// ApplyWAL from the primary's record sequence 1.
func OpenFollower(schema *xmlschema.Schema, opts Options) (*Catalog, error) {
	c, err := Open(schema, opts)
	if err != nil {
		return nil, err
	}
	c.follower = true
	return c, nil
}

// LoadFollower bootstraps a follower from a primary snapshot (see
// ReplicationSnapshot) and returns it with its replication cursor set
// to the snapshot's watermark: ApplyWAL continues from the next record.
func LoadFollower(schema *xmlschema.Schema, opts Options, r io.Reader) (*Catalog, error) {
	c, seq, err := loadSnapshot(schema, opts, r)
	if err != nil {
		return nil, err
	}
	c.follower = true
	c.applied = seq
	return c, nil
}

// IsFollower reports whether the catalog is a read-only replica.
func (c *Catalog) IsFollower() bool { return c.follower }

// AppliedSeq returns the follower's replication cursor: the sequence of
// the last primary log record whose effects are visible to readers.
func (c *Catalog) AppliedSeq() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.applied
}

// ApplyWAL replays a run of primary log records into the follower, in
// one relstore transaction: readers see the whole run or none of it,
// and a failed apply (decode error, replay divergence) leaves the
// cursor unmoved so the tailer can retry or re-bootstrap. Records at or
// below the cursor are skipped — re-delivery after a torn stream is the
// normal case, not an error — and a record beyond cursor+1 fails: the
// stream has a hole and the tailer must resume from the cursor.
func (c *Catalog) ApplyWAL(recs []wal.Record) error {
	if !c.follower {
		return fmt.Errorf("catalog: ApplyWAL on a non-follower catalog")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	next := c.applied
	defTouched, idTouched := false, false
	err := c.withTx(func() error {
		for _, rec := range recs {
			if rec.Seq <= next {
				continue
			}
			if rec.Seq != next+1 {
				return fmt.Errorf("catalog: replication hole: record %d after %d", rec.Seq, next)
			}
			ops, err := decodeOps(rec.Payload)
			if err != nil {
				return fmt.Errorf("catalog: record %d: %w", rec.Seq, err)
			}
			for _, op := range ops {
				switch op.Table {
				case TAttrDef, TElemDef:
					defTouched = true
				case TObjects, TCollections:
					idTouched = true
				}
			}
			if err := c.replayOps(ops); err != nil {
				return fmt.Errorf("catalog: record %d: %w", rec.Seq, err)
			}
			next = rec.Seq
		}
		return nil
	})
	if err != nil {
		return err
	}
	if defTouched {
		// The run added dynamic definitions; rebuild the registry from
		// the replayed definition tables so resolution sees them.
		if err := c.restoreRegistryFromTables(); err != nil {
			return err
		}
	}
	if idTouched {
		c.fixAutoIDs()
	}
	c.applied = next
	return nil
}

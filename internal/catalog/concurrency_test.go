package catalog

import (
	"fmt"
	"math/rand"
	"os"
	"slices"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
)

// The stress test below races writer goroutines (Ingest, AddAttribute,
// SetPublished, Delete, collection membership) against reader goroutines
// (Evaluate, FetchDocument, collection queries) over a seeded workload
// and then verifies, object by object, that nothing was lost and every
// reconstructed document canonically matches its expected DOM. The
// HYBRIDCAT_STRESS environment variable raises the per-writer iteration
// count (the Makefile's stress target sets it); -short lowers it.

// objState tracks one object's expected state under the tracker lock.
// versions holds every DOM a concurrent reader may legitimately observe
// (grown before each AddAttribute commits); the last entry is the
// current expected document.
type objState struct {
	versions []*xmldoc.Node
	dx       float64
	deleted  bool
}

type tracker struct {
	mu            sync.Mutex
	objs          map[int64]*objState
	everPublished map[int64]bool
}

func (tr *tracker) add(id int64, dx float64, doc *xmldoc.Node) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.objs[id] = &objState{versions: []*xmldoc.Node{doc}, dx: dx}
}

func (tr *tracker) pushVersion(id int64, doc *xmldoc.Node) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	st := tr.objs[id]
	st.versions = append(st.versions, doc)
}

func (tr *tracker) latest(id int64) *xmldoc.Node {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	st := tr.objs[id]
	return st.versions[len(st.versions)-1]
}

func (tr *tracker) markDeleted(id int64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.objs[id].deleted = true
}

func (tr *tracker) markPublished(id int64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.everPublished[id] = true
}

// snapshot returns the tracked IDs and, for one chosen ID, the states a
// reader may legitimately observe right now.
func (tr *tracker) pick(r *rand.Rand) (id int64, versions []*xmldoc.Node, deleted bool, ok bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.objs) == 0 {
		return 0, nil, false, false
	}
	ids := make([]int64, 0, len(tr.objs))
	for oid := range tr.objs {
		ids = append(ids, oid)
	}
	id = ids[r.Intn(len(ids))]
	st := tr.objs[id]
	return id, append([]*xmldoc.Node(nil), st.versions...), st.deleted, true
}

func (tr *tracker) known(id int64) bool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	_, ok := tr.objs[id]
	return ok
}

// liveSet returns the tracked IDs not yet marked for deletion. Because
// an ID enters the tracker only after its ingest committed, and the
// deletion mark is set before the delete commits, an ID live in two
// liveSet snapshots existed in the catalog at every moment in between.
func (tr *tracker) liveSet() map[int64]bool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make(map[int64]bool, len(tr.objs))
	for id, st := range tr.objs {
		if !st.deleted {
			out[id] = true
		}
	}
	return out
}

func (tr *tracker) wasPublished(id int64) bool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.everPublished[id]
}

// withExtraTheme returns a copy of doc with a new <theme> fragment
// inserted where the catalog's reconstruction places it: among the
// keywords children, directly after the last existing theme (same
// global order, next clob_seq).
func withExtraTheme(t *testing.T, doc *xmldoc.Node, frag *xmldoc.Node) *xmldoc.Node {
	t.Helper()
	nd := doc.Clone()
	kws := nd.FindAll("keywords")
	if len(kws) == 0 {
		t.Fatal("document has no keywords node")
	}
	kw := kws[0]
	last := -1
	for i, ch := range kw.Children {
		if ch.Tag == "theme" {
			last = i
		}
	}
	fragCopy := frag.Clone()
	out := make([]*xmldoc.Node, 0, len(kw.Children)+1)
	out = append(out, kw.Children[:last+1]...)
	out = append(out, fragCopy)
	out = append(out, kw.Children[last+1:]...)
	kw.Children = out
	fragCopy.Parent = kw
	return nd
}

func themeFrag(t *testing.T, key string) *xmldoc.Node {
	t.Helper()
	frag, err := xmldoc.ParseString("<theme><themekt>stress</themekt><themekey>" + key + "</themekey></theme>")
	if err != nil {
		t.Fatal(err)
	}
	return frag
}

func stressIterations(t *testing.T) int {
	if s := os.Getenv("HYBRIDCAT_STRESS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad HYBRIDCAT_STRESS value %q", s)
		}
		return n
	}
	if testing.Short() {
		return 8
	}
	return 32
}

func TestConcurrentReadersWritersStress(t *testing.T) {
	// Force the fan-out path regardless of table size so the per-query
	// worker pool itself runs under the race detector.
	c := newLEADCatalog(t, Options{QueryWorkers: 4, ParallelRowThreshold: -1})
	iters := stressIterations(t)

	// Pre-flight: validate the withExtraTheme oracle sequentially before
	// trusting it inside the storm.
	{
		id, err := c.IngestXML("preflight", fig3Variant(t, "17"))
		if err != nil {
			t.Fatal(err)
		}
		before, err := c.FetchDocument(id)
		if err != nil {
			t.Fatal(err)
		}
		frag := themeFrag(t, "preflight-key")
		want := withExtraTheme(t, before, frag)
		if err := c.AddAttribute(id, "preflight", frag); err != nil {
			t.Fatal(err)
		}
		after, err := c.FetchDocument(id)
		if err != nil {
			t.Fatal(err)
		}
		if !xmldoc.Equal(after, want) {
			t.Fatalf("withExtraTheme oracle diverges from reconstruction:\nwant: %s\ngot:  %s",
				want.String(), after.String())
		}
		if ok, err := c.Delete(id); err != nil || !ok {
			t.Fatalf("preflight delete = %v, %v", ok, err)
		}
	}

	tr := &tracker{objs: map[int64]*objState{}, everPublished: map[int64]bool{}}
	collID, err := c.CreateCollection("stress", "admin", 0)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const readers = 4

	// Seed a few objects per writer so readers have work immediately.
	seedDx := func(w, i int) float64 { return float64(1000 + w*100 + i) }
	ownedBy := make([][]int64, writers)
	for w := 0; w < writers; w++ {
		for i := 0; i < 3; i++ {
			dx := seedDx(w, i)
			id, err := c.IngestXML(fmt.Sprintf("writer%d", w), fig3Variant(t, formatDx(dx)))
			if err != nil {
				t.Fatal(err)
			}
			doc, err := c.FetchDocument(id)
			if err != nil {
				t.Fatal(err)
			}
			tr.add(id, dx, doc)
			ownedBy[w] = append(ownedBy[w], id)
		}
	}

	done := make(chan struct{})
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			owner := fmt.Sprintf("writer%d", w)
			owned := ownedBy[w]
			for it := 0; it < iters; it++ {
				switch it % 4 {
				case 0: // ingest a fresh object with a unique dx
					dx := float64(2_000_000 + w*100_000 + it)
					id, err := c.IngestXML(owner, fig3Variant(t, formatDx(dx)))
					if err != nil {
						t.Errorf("writer %d: ingest: %v", w, err)
						return
					}
					doc, err := c.FetchDocument(id)
					if err != nil {
						t.Errorf("writer %d: fetch after ingest: %v", w, err)
						return
					}
					tr.add(id, dx, doc)
					owned = append(owned, id)
					if err := c.AddToCollection(collID, id); err != nil {
						t.Errorf("writer %d: add to collection: %v", w, err)
						return
					}
				case 1: // extend an owned object with another theme
					if len(owned) == 0 {
						continue
					}
					id := owned[it%len(owned)]
					frag := themeFrag(t, fmt.Sprintf("added-%d-%d", w, it))
					// Publish the post state to the tracker first: a reader
					// fetching between the commit and a later tracker update
					// must already find the new version listed.
					next := withExtraTheme(t, tr.latest(id), frag)
					tr.pushVersion(id, next)
					if err := c.AddAttribute(id, owner, frag); err != nil {
						t.Errorf("writer %d: add attribute: %v", w, err)
						return
					}
				case 2: // publish an owned object
					if len(owned) == 0 {
						continue
					}
					id := owned[it%len(owned)]
					// Mark before the commit so a stranger's query can never
					// observe a published object the tracker denies.
					tr.markPublished(id)
					if err := c.SetPublished(id, true); err != nil {
						t.Errorf("writer %d: publish: %v", w, err)
						return
					}
				case 3: // delete the oldest owned object
					if len(owned) < 2 {
						continue
					}
					id := owned[0]
					owned = owned[1:]
					tr.markDeleted(id)
					if ok, err := c.Delete(id); err != nil || !ok {
						t.Errorf("writer %d: delete of %d = %v, %v", w, id, ok, err)
						return
					}
				}
			}
		}(w)
	}
	go func() {
		wwg.Wait()
		close(done)
	}()

	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			rng := rand.New(rand.NewSource(int64(7 + r)))
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				switch i % 4 {
				case 0: // fetch a tracked object and canonical-compare
					id, versions, deleted, ok := tr.pick(rng)
					if !ok {
						continue
					}
					doc, err := c.FetchDocument(id)
					if err != nil {
						if !strings.Contains(err.Error(), "no object") {
							t.Errorf("reader %d: unexpected fetch error: %v", r, err)
							return
						}
						// A fetch may only fail once a delete is in flight,
						// and the deletion mark is set before the delete
						// commits — so the mark must be visible by now.
						tr.mu.Lock()
						del := deleted || tr.objs[id].deleted
						tr.mu.Unlock()
						if !del {
							t.Errorf("reader %d: fetch of live object %d failed: %v", r, id, err)
							return
						}
						continue
					}
					// The fetched DOM must equal some version the tracker
					// has advertised. Re-pick the versions after the fetch
					// too: the write may have committed before our fetch but
					// after the first snapshot.
					match := docInVersions(doc, versions)
					if !match {
						tr.mu.Lock()
						if st := tr.objs[id]; st != nil {
							match = docInVersions(doc, st.versions)
						}
						tr.mu.Unlock()
					}
					if !match {
						t.Errorf("reader %d: object %d fetched a document matching no advertised version:\n%s",
							r, id, doc.String())
						return
					}
				case 1: // superuser theme query: no lost reads
					// Every object live both before and after the query
					// existed throughout it, and every seeded document has
					// theme attributes — so all such objects must appear.
					pre := tr.liveSet()
					q := &Query{}
					q.Attr("theme", "")
					ids, err := c.Evaluate(q)
					if err != nil {
						t.Errorf("reader %d: evaluate: %v", r, err)
						return
					}
					post := tr.liveSet()
					got := make(map[int64]bool, len(ids))
					for _, id := range ids {
						got[id] = true
					}
					for id := range pre {
						if post[id] && !got[id] {
							t.Errorf("reader %d: query lost object %d that was live throughout", r, id)
							return
						}
					}
				case 2: // stranger sees only ever-published objects
					q := &Query{Owner: "stranger"}
					q.Attr("theme", "")
					ids, err := c.Evaluate(q)
					if err != nil {
						t.Errorf("reader %d: stranger evaluate: %v", r, err)
						return
					}
					for _, id := range ids {
						if !tr.wasPublished(id) {
							t.Errorf("reader %d: stranger saw never-published object %d", r, id)
							return
						}
					}
				case 3: // collection scope stays inside tracked objects
					// Memberships are added only after the tracker knows the
					// object, so every listed member must be tracked.
					ids, err := c.CollectionObjects(collID)
					if err != nil {
						t.Errorf("reader %d: collection objects: %v", r, err)
						return
					}
					for _, id := range ids {
						if !tr.known(id) {
							t.Errorf("reader %d: collection lists unknown object %d", r, id)
							return
						}
					}
					q := &Query{}
					q.Attr("theme", "")
					if _, err := c.EvaluateInContext(collID, q); err != nil {
						t.Errorf("reader %d: context evaluate: %v", r, err)
						return
					}
				}
			}
		}(r)
	}
	rwg.Wait()
	// A reader that failed returns before done closes; make sure every
	// writer has quiesced before the strict verification below.
	wwg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Quiesced: strict, object-by-object verification.
	tr.mu.Lock()
	defer tr.mu.Unlock()
	live := 0
	for id, st := range tr.objs {
		if st.deleted {
			if _, err := c.FetchDocument(id); err == nil {
				t.Errorf("deleted object %d still reconstructs", id)
			}
			continue
		}
		live++
		doc, err := c.FetchDocument(id)
		if err != nil {
			t.Errorf("lost update: live object %d cannot be fetched: %v", id, err)
			continue
		}
		want := st.versions[len(st.versions)-1]
		if !xmldoc.Equal(doc, want) {
			t.Errorf("object %d: reconstructed document diverges from expected DOM:\nwant: %s\ngot:  %s",
				id, want.String(), doc.String())
		}
		// The unique-dx point query must find exactly this object.
		q := &Query{}
		q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpEq, relstore.Float(st.dx))
		ids, err := c.Evaluate(q)
		if err != nil {
			t.Errorf("object %d: dx query: %v", id, err)
			continue
		}
		if len(ids) != 1 || ids[0] != id {
			t.Errorf("object %d: dx=%v query returned %v, want exactly [%d]", id, st.dx, ids, id)
		}
	}
	if got := c.ObjectCount(); got != live {
		t.Errorf("object count = %d, tracker expects %d live objects", got, live)
	}
}

func docInVersions(doc *xmldoc.Node, versions []*xmldoc.Node) bool {
	for _, v := range versions {
		if xmldoc.Equal(doc, v) {
			return true
		}
	}
	return false
}

// formatDx renders a dx value the way the Figure 3 document carries it.
func formatDx(dx float64) string {
	return strconv.FormatFloat(dx, 'f', -1, 64)
}

// TestCachedUncachedOracleStress races readers over a cached and an
// uncached catalog that receive identical mutations in lockstep. Writers
// hold the pair lock exclusively while mutating both catalogs, so at
// every reader observation the two are byte-identical state machines:
// any divergence in evaluated IDs or reconstructed XML is a stale cache
// read. Readers repeat each query, so most answers come from the cache,
// and several readers share keys concurrently, driving the singleflight
// path under the race detector. A DOM oracle pins the reconstructed
// documents to the ingested originals.
func TestCachedUncachedOracleStress(t *testing.T) {
	cached := newLEADCatalog(t, Options{QueryWorkers: 4, ParallelRowThreshold: -1})
	plain := newLEADCatalog(t, Options{DisableCache: true})
	iters := stressIterations(t) * 3

	// pair: writers take the write side to mutate both catalogs and the
	// oracle map as one atomic step; readers take the read side to see a
	// consistent (cached, uncached, dom) triple.
	var pair sync.RWMutex
	dom := map[int64]*xmldoc.Node{} // expected DOM per live object
	var liveIDs []int64
	var published []int64

	ingestBoth := func(dx float64) error {
		src := fig3Variant(t, formatDx(dx))
		id1, err := cached.IngestXML("sci", src)
		if err != nil {
			return err
		}
		id2, err := plain.IngestXML("sci", src)
		if err != nil {
			return err
		}
		if id1 != id2 {
			return fmt.Errorf("lockstep ingest diverged: ids %d vs %d", id1, id2)
		}
		doc, err := xmldoc.ParseString(src)
		if err != nil {
			return err
		}
		dom[id1] = doc
		liveIDs = append(liveIDs, id1)
		return nil
	}

	pair.Lock()
	for i := 0; i < 6; i++ {
		if err := ingestBoth(float64(3000 + i)); err != nil {
			t.Fatal(err)
		}
	}
	pair.Unlock()

	done := make(chan struct{})
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		for it := 0; it < iters; it++ {
			pair.Lock()
			switch it % 4 {
			case 0, 1: // grow: fresh unique dx
				if err := ingestBoth(float64(5_000_000 + it)); err != nil {
					t.Error(err)
					pair.Unlock()
					return
				}
			case 2: // publish the oldest unpublished object
				if len(liveIDs) > 0 {
					id := liveIDs[it%len(liveIDs)]
					if err := cached.SetPublished(id, true); err != nil {
						t.Error(err)
						pair.Unlock()
						return
					}
					if err := plain.SetPublished(id, true); err != nil {
						t.Error(err)
						pair.Unlock()
						return
					}
					published = append(published, id)
				}
			case 3: // shrink: delete the oldest live object
				if len(liveIDs) > 2 {
					id := liveIDs[0]
					liveIDs = liveIDs[1:]
					delete(dom, id)
					ok1, err1 := cached.Delete(id)
					ok2, err2 := plain.Delete(id)
					if !ok1 || !ok2 || err1 != nil || err2 != nil {
						t.Errorf("lockstep delete of %d failed: %v/%v, %v/%v", id, ok1, ok2, err1, err2)
						pair.Unlock()
						return
					}
				}
			}
			pair.Unlock()
		}
	}()
	go func() {
		wwg.Wait()
		close(done)
	}()

	const readers = 4
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			rng := rand.New(rand.NewSource(int64(31 + r)))
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				pair.RLock()
				q := &Query{}
				if i%3 == 2 {
					q.Owner = "stranger" // only sees published objects
				}
				if i%2 == 0 {
					q.Attr("theme", "")
				} else {
					q.Attr("grid", "ARPS")
				}
				// Evaluate twice on the cached side so the second answer is
				// served from the cache, then require exact agreement with
				// the uncached catalog at the same locked state.
				first, err1 := cached.Evaluate(q)
				again, err1b := cached.Evaluate(q)
				want, err2 := plain.Evaluate(q)
				if (err1 == nil) != (err2 == nil) || err1b != nil && err1 == nil {
					t.Errorf("reader %d: error divergence: %v / %v / %v", r, err1, err1b, err2)
					pair.RUnlock()
					return
				}
				if !slices.Equal(first, want) || !slices.Equal(again, want) {
					t.Errorf("reader %d: stale cached result: cold %v warm %v oracle %v", r, first, again, want)
					pair.RUnlock()
					return
				}
				// DOM oracle: a random live object must reconstruct, from
				// the cached catalog, to exactly its ingested document.
				if len(liveIDs) > 0 {
					id := liveIDs[rng.Intn(len(liveIDs))]
					doc, err := cached.FetchDocument(id)
					if err != nil {
						t.Errorf("reader %d: fetch live %d: %v", r, id, err)
						pair.RUnlock()
						return
					}
					if wantDoc := dom[id]; !xmldoc.Equal(doc, wantDoc) {
						t.Errorf("reader %d: object %d reconstruction diverged from DOM oracle:\nwant: %s\ngot:  %s",
							r, id, wantDoc.String(), doc.String())
						pair.RUnlock()
						return
					}
				}
				pair.RUnlock()
			}
		}(r)
	}
	rwg.Wait()
	wwg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Quiesced: every live object agrees across both catalogs and with
	// its DOM, and the stranger's view is exactly the published set.
	for id, want := range dom {
		for _, cat := range []*Catalog{cached, plain} {
			doc, err := cat.FetchDocument(id)
			if err != nil {
				t.Errorf("object %d: %v", id, err)
				continue
			}
			if !xmldoc.Equal(doc, want) {
				t.Errorf("object %d diverged after quiesce", id)
			}
		}
	}
	q := &Query{Owner: "stranger"}
	q.Attr("theme", "")
	a, err1 := cached.Evaluate(q)
	b, err2 := plain.Evaluate(q)
	if err1 != nil || err2 != nil || !slices.Equal(a, b) {
		t.Errorf("published view diverged: %v (%v) vs %v (%v)", a, err1, b, err2)
	}
	stats := cached.CacheStats()
	if stats.Evaluate.Hits == 0 {
		t.Errorf("stress never hit the evaluate cache: %+v", stats.Evaluate)
	}
}

package catalog

import (
	"strings"
	"testing"

	"github.com/gridmeta/hybridcat/internal/relstore"
)

func TestExplainQueryTracesPipeline(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	ingestFig3(t, c)
	if _, err := c.IngestXML("scientist", fig3Variant(t, "2000")); err != nil {
		t.Fatal(err)
	}
	q := &Query{}
	g := q.Attr("grid", "ARPS")
	g.AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(1000))
	st := &AttrCriteria{Name: "grid-stretching", Source: "ARPS"}
	st.AddElem("dzmin", "ARPS", relstore.OpEq, relstore.Int(100))
	g.AddSub(st)

	lines, err := c.ExplainQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		"2 criteria node(s), 1 top-level (bitmap set ops)",
		`dynamic attribute "grid"`,
		`dynamic attribute "grid-stretching"`,
		"containment rollup over 1 child criterion(s)",
		"[set: card=", // posting-list representation per node
		"candidate object(s) [set:",
		"objects satisfying all 1 top-level criteria",
		": 1", // final match count
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("explain missing %q:\n%s", want, joined)
		}
	}
	// The explain result agrees with Evaluate.
	ids, err := c.Evaluate(q)
	if err != nil || len(ids) != 1 {
		t.Fatalf("evaluate = %v, %v", ids, err)
	}

	// The row-path oracle explains the same pipeline without set shapes.
	cOff := newLEADCatalog(t, Options{DisableBitmaps: true})
	ingestFig3(t, cOff)
	offLines, err := cOff.ExplainQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	offJoined := strings.Join(offLines, "\n")
	if strings.Contains(offJoined, "[set:") || strings.Contains(offJoined, "bitmap set ops") {
		t.Errorf("row-path explain should not report set shapes:\n%s", offJoined)
	}
	if !strings.Contains(offJoined, "containment rollup over 1 child criterion(s)") {
		t.Errorf("row-path explain missing rollup line:\n%s", offJoined)
	}

	// Errors propagate.
	if _, err := c.ExplainQuery(&Query{}); err == nil {
		t.Error("empty query should fail")
	}
	bad := &Query{}
	bad.Attr("nope", "X")
	if _, err := c.ExplainQuery(bad); err == nil {
		t.Error("unknown definition should fail")
	}
}

func TestExplainQueryRespectsVisibility(t *testing.T) {
	c, _, _ := privacyFixture(t)
	lines, err := c.ExplainQuery(dxQuery("carol"))
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, `(visible to "carol"): 0`) {
		t.Errorf("explain should report visibility filtering:\n%s", joined)
	}
}

package catalog

import (
	"fmt"
	"strings"

	"github.com/gridmeta/hybridcat/internal/obs"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
)

// Response is one tagged XML document built for a query result.
type Response struct {
	ObjectID int64
	XML      string
}

// Event kinds in the sorted outer union. The numeric order makes the
// final sort place an opening tag before the content at the same global
// order, and content before closing tags anchored at the same last-child
// order.
const (
	evOpen    = 0
	evContent = 1
	evClose   = 2
)

// BuildResponse reconstructs the schema-ordered XML documents for the
// given object IDs using only set operations (§5):
//
//  1. fetch the objects' CLOB rows (index join; the CLOB column is not
//     touched until the final concatenation),
//  2. join the node-ancestor inverted list for the distinct required
//     ancestors,
//  3. join the global-ordering table for each ancestor's tag, last-child
//     order, and depth, emitting opening and closing tag events,
//  4. union with the CLOB content events and sort by (object, order,
//     kind, tie) — the concatenated result is already tagged, with no
//     external tagger.
//
// Responses come back in the order of ids; unknown IDs are skipped.
func (c *Catalog) BuildResponse(ids []int64) ([]Response, error) {
	tr, done := c.beginOp("response", c.obsv.opResponse)
	defer done()
	return c.pinView().buildResponseTraced(ids, tr)
}

// buildResponseTraced builds responses against the view's pinned
// snapshot; the whole build is one "response" stage span on the
// (possibly nil) trace, annotated with the response-cache hit/miss
// split. The per-object builds are independent, so with enough CLOB
// rows the requested IDs split into contiguous chunks built by a
// bounded worker pool; each worker runs the full sorted-outer-union
// plan over only its chunk's rows, and the chunk maps merge back in the
// caller's order.
//
// With the response cache on, per-object documents recalled at the
// pinned epoch skip the build entirely; only cache misses go through
// the §5 plan, and their results are stored for the next overlapping
// result set. Objects that do not exist produce no map entry and are
// never cached, so a later ingest of that ID is visible immediately.
func (v *view) buildResponseTraced(ids []int64, tr *obs.Trace) ([]Response, error) {
	c := v.c
	if len(ids) == 0 {
		return nil, nil
	}
	end := c.stageTimer(tr, "response", c.obsv.stageResponse)
	// De-duplicate, preserving first-occurrence order.
	uniq := make([]int64, 0, len(ids))
	seen := make(map[int64]bool, len(ids))
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			uniq = append(uniq, id)
		}
	}
	gen := v.snap.Epoch()
	byObject := make(map[int64]string, len(uniq))
	need := uniq
	if c.caches.response != nil {
		need = make([]int64, 0, len(uniq))
		for _, id := range uniq {
			if xml, ok := c.caches.response.Get(gen, id); ok {
				byObject[id] = xml
			} else {
				need = append(need, id)
			}
		}
		if tr != nil {
			tr.Annotate(fmt.Sprintf("response-cache hits=%d misses=%d", len(uniq)-len(need), len(need)))
		}
	}
	if len(need) > 0 {
		workers := c.fanoutWorkers(len(need), v.tab(TClobs).Len())
		if workers <= 1 {
			m, err := v.buildResponseChunk(need)
			if err != nil {
				return nil, err
			}
			for id, xml := range m {
				byObject[id] = xml
				c.caches.response.Put(gen, id, xml)
			}
		} else {
			chunks := chunkContiguous(need, workers)
			maps := make([]map[int64]string, len(chunks))
			err := runParallel(workers, len(chunks), func(i int) error {
				m, err := v.buildResponseChunk(chunks[i])
				maps[i] = m
				return err
			})
			if err != nil {
				return nil, err
			}
			for _, m := range maps {
				for id, xml := range m {
					byObject[id] = xml
					c.caches.response.Put(gen, id, xml)
				}
			}
		}
	}
	var out []Response
	for _, id := range uniq {
		if xml, ok := byObject[id]; ok {
			out = append(out, Response{ObjectID: id, XML: xml})
		}
	}
	end(int64(len(out)))
	return out, nil
}

// buildResponseChunk runs the §5 set-based plan for one batch of object
// IDs against the pinned snapshot and returns each object's tagged XML.
func (v *view) buildResponseChunk(ids []int64) (map[int64]string, error) {
	clobT := v.tab(TClobs)
	ancT := v.tab(TNodeAncestors)
	nodeT := v.tab(TSchemaNodes)

	// Step 1: CLOB rows for the requested objects, via the per-object
	// B-tree index.
	var clobRowIDs []int64
	for _, id := range ids {
		rowIDs, err := clobT.LookupRange("clobs_by_object",
			relstore.RangeBound{Vals: []relstore.Value{relstore.Int(id)}, Inclusive: true, Set: true},
			relstore.RangeBound{Vals: []relstore.Value{relstore.Int(id)}, Inclusive: true, Set: true})
		if err != nil {
			return nil, err
		}
		clobRowIDs = append(clobRowIDs, rowIDs...)
	}
	if len(clobRowIDs) == 0 {
		return map[int64]string{}, nil
	}

	// Content events: [object, order, kind, tie, text]. The CLOB column
	// is carried only here, in the final union input.
	content := relstore.Project(relstore.ScanRowIDs(clobT, clobRowIDs),
		[]int{0, 1, 2, 5}, []string{"object_id", "node_order", "clob_seq", "clob"})
	contentEvents := &eventIter{
		in:   content,
		cols: eventCols,
		make: func(r relstore.Row) []relstore.Row {
			return []relstore.Row{{r[0], r[1], relstore.Int(evContent), r[2], r[3]}}
		},
	}

	// Step 2: distinct (object, node_order) pairs joined with the
	// ancestor inverted list -> distinct (object, anc_order).
	positions := relstore.Distinct(relstore.Project(relstore.ScanRowIDs(clobT, clobRowIDs),
		[]int{0, 1}, []string{"object_id", "node_order"}))
	ancRows := relstore.HashJoin(positions, relstore.ScanTable(ancT), []int{1}, []int{0}, relstore.InnerJoin)
	required := relstore.Distinct(relstore.Project(ancRows, []int{0, 3}, []string{"object_id", "anc_order"}))

	// Step 3: join the global ordering for tags and last-child orders;
	// each required ancestor yields an open and a close event.
	withTags := relstore.HashJoin(required, relstore.ScanTable(nodeT), []int{1}, []int{0}, relstore.InnerJoin)
	// Columns: object_id, anc_order, node_order, tag, parent, last_child, depth, is_attr
	tagEvents := &eventIter{
		in:   withTags,
		cols: eventCols,
		make: func(r relstore.Row) []relstore.Row {
			object, order := r[0], r[1]
			tag, last, depth := r[3].S, r[5], r[6].I
			return []relstore.Row{
				{object, order, relstore.Int(evOpen), relstore.Int(depth), relstore.Str("<" + tag + ">")},
				{object, last, relstore.Int(evClose), relstore.Int(-depth), relstore.Str("</" + tag + ">")},
			}
		},
	}

	// Step 4: sorted outer union.
	events := relstore.Sort(relstore.Union(contentEvents, tagEvents),
		relstore.SortSpec{Col: 0}, // object
		relstore.SortSpec{Col: 1}, // global order
		relstore.SortSpec{Col: 2}, // kind: open, content, close
		relstore.SortSpec{Col: 3}, // tie: depth / clob_seq / -depth
	)

	// Concatenate per object.
	byObject := make(map[int64]*strings.Builder)
	for {
		r, ok := events.Next()
		if !ok {
			break
		}
		b := byObject[r[0].I]
		if b == nil {
			b = &strings.Builder{}
			byObject[r[0].I] = b
		}
		b.WriteString(r[4].S)
	}
	out := make(map[int64]string, len(byObject))
	for id, b := range byObject {
		out[id] = b.String()
	}
	return out, nil
}

// eventCols is the shared layout of response events.
var eventCols = []string{"object_id", "pos", "kind", "tie", "text"}

// eventIter expands each input row into one or more event rows.
type eventIter struct {
	in      relstore.Iterator
	cols    []string
	make    func(relstore.Row) []relstore.Row
	pending []relstore.Row
}

func (e *eventIter) Columns() []string { return e.cols }

func (e *eventIter) Next() (relstore.Row, bool) {
	for {
		if len(e.pending) > 0 {
			r := e.pending[0]
			e.pending = e.pending[1:]
			return r, true
		}
		r, ok := e.in.Next()
		if !ok {
			return nil, false
		}
		e.pending = e.make(r)
	}
}

// Search evaluates a query and builds the tagged responses for every
// matching object — the full Figure 1 pipeline — against one pinned
// snapshot, so the evaluated IDs and the built documents are one
// consistent version even while writers commit concurrently.
func (c *Catalog) Search(q *Query) ([]Response, error) {
	tr, done := c.beginOp("search", c.obsv.opSearch)
	defer done()
	v := c.pinView()
	ids, err := v.evaluateTraced(q, tr)
	if err != nil {
		return nil, err
	}
	return v.buildResponseTraced(ids, tr)
}

// FetchDocument reconstructs one object's full document.
func (c *Catalog) FetchDocument(id int64) (*xmldoc.Node, error) {
	resp, err := c.pinView().buildResponseTraced([]int64{id}, nil)
	if err != nil {
		return nil, err
	}
	if len(resp) == 0 {
		return nil, fmt.Errorf("catalog: no object %d", id)
	}
	return xmldoc.ParseString(resp[0].XML)
}

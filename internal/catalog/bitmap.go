package catalog

import (
	"errors"
	"fmt"
	"slices"

	"github.com/gridmeta/hybridcat/internal/bitset"
	"github.com/gridmeta/hybridcat/internal/relstore"
)

// Bitmap set algebra for the plan executor's set strategy (exec.go).
// What flows between the Figure-4 stages under that strategy is a
// compressed bitset of attribute-instance keys instead of
// []relstore.Row: probes emit posting lists straight off the B-tree
// (relstore postings.go), element predicates and the rollup combine
// them with word-at-a-time ANDs ordered by ascending cardinality, and
// the intersect stage ANDs per-criterion *object* sets the same way.
// Any query whose keys cannot be packed falls back to the row strategy
// per evaluation (errBitmapRange).

// An attribute instance (object_id, seq_id) packs into one uint64 key:
// object in the high bits, seq in the low instSeqBits. Sequence IDs are
// per-object attribute-instance ordinals, so 2^20 of them is far past
// any real document; objects get the remaining 43 bits (the top bit
// stays clear so keys round-trip through int64 arithmetic).
const (
	instSeqBits   = 20
	instSeqMask   = 1<<instSeqBits - 1
	maxInstObject = int64(1)<<(63-instSeqBits) - 1
)

// errBitmapRange aborts a bitmap evaluation whose IDs cannot be packed
// into instance keys; evaluateUncached catches it and reruns the query
// on the row path.
var errBitmapRange = errors.New("catalog: id out of bitmap instance-key range")

// instKey packs (object, seq) into one set key.
func instKey(object, seq int64) (uint64, error) {
	if object < 0 || object > maxInstObject || seq < 0 || seq > instSeqMask {
		return 0, fmt.Errorf("%w: object %d seq %d", errBitmapRange, object, seq)
	}
	return uint64(object)<<instSeqBits | uint64(seq), nil
}

// objectSet projects an instance-key set onto its distinct object IDs.
// Iteration is ascending, so duplicate objects arrive consecutively and
// one lag value deduplicates.
func objectSet(instances *bitset.Set) *bitset.Set {
	out := bitset.New()
	prev := ^uint64(0)
	instances.Iterate(func(k uint64) bool {
		if obj := k >> instSeqBits; obj != prev {
			out.Add(obj)
			prev = obj
		}
		return true
	})
	out.Optimize()
	return out
}

// andAscending intersects the sets smallest-first — each AND against
// the running result only walks chunks both sides still have — with an
// empty-result early exit. Operands are never mutated; with one operand
// the result aliases it, which is safe because every consumer treats
// sets read-only.
func andAscending(sets []*bitset.Set) *bitset.Set {
	if len(sets) == 0 {
		return bitset.New()
	}
	ordered := slices.Clone(sets)
	slices.SortStableFunc(ordered, func(a, b *bitset.Set) int { return a.Card() - b.Card() })
	out := ordered[0]
	for _, s := range ordered[1:] {
		if out.IsEmpty() {
			break
		}
		out = out.And(s)
	}
	return out
}

// instanceSet converts a posting list of tab's row IDs into the set of
// instance keys, applying the optional row post-filter. Both attr_data
// and elem_data carry object_id at column 0 and seq_id at column 2.
func (v *view) instanceSet(tab *relstore.Table, rowSet *bitset.Set, post func(relstore.Row) bool) (*bitset.Set, error) {
	out := bitset.New()
	var err error
	rowSet.Iterate(func(id uint64) bool {
		r := tab.Get(int64(id))
		if r == nil || (post != nil && !post(r)) {
			return true
		}
		var k uint64
		if k, err = instKey(r[0].I, r[2].I); err != nil {
			return false
		}
		out.Add(k)
		return true
	})
	if err != nil {
		return nil, err
	}
	out.Optimize()
	return out, nil
}

// rollupSet narrows n's posting list to instances containing a
// satisfied instance of every child criterion: for each child, the
// cover set unions the ancestor instance keys of the inverted-list rows
// whose (object, child_seq) is in the child's set, and the covers AND
// against n's own set smallest-first. With the inverted list disabled
// (A1 ablation) it chases depth-1 parent links recursively instead, so
// the ablation contrasts like with like.
func (v *view) rollupSet(n *qNode, sets map[int]*bitset.Set) (*bitset.Set, error) {
	if v.c.opts.DisableInvertedList {
		return v.recursiveRollupSet(n, sets)
	}
	subT := v.tab(TSubAttrs)
	covers := make([]*bitset.Set, 0, len(n.children)+1)
	for _, child := range n.children {
		ids, err := subT.LookupEqual("sub_attrs_by_child", relstore.Int(child.def.ID))
		if err != nil {
			return nil, err
		}
		childSet := sets[child.id]
		cover := bitset.New()
		for _, rid := range ids {
			r := subT.Get(rid)
			// r: object, child_attr, child_seq, anc_attr, anc_seq, depth
			if r == nil || r[3].I != n.def.ID {
				continue
			}
			ck, err := instKey(r[0].I, r[2].I)
			if err != nil {
				return nil, err
			}
			if !childSet.Contains(ck) {
				continue
			}
			ak, err := instKey(r[0].I, r[4].I)
			if err != nil {
				return nil, err
			}
			cover.Add(ak)
		}
		cover.Optimize()
		covers = append(covers, cover)
	}
	covers = append(covers, sets[n.id])
	return andAscending(covers), nil
}

// recursiveRollupSet is the bitmap twin of recursiveRollup: with only
// depth-1 links stored, each child's cover set is found by chasing
// parents level by level.
func (v *view) recursiveRollupSet(n *qNode, sets map[int]*bitset.Set) (*bitset.Set, error) {
	subT := v.tab(TSubAttrs)
	type inst struct{ object, attrID, seq int64 }
	covers := make([]*bitset.Set, 0, len(n.children)+1)
	for _, child := range n.children {
		var frontier []inst
		sets[child.id].Iterate(func(k uint64) bool {
			frontier = append(frontier, inst{int64(k >> instSeqBits), child.def.ID, int64(k & instSeqMask)})
			return true
		})
		seen := make(map[inst]bool)
		cover := bitset.New()
		for len(frontier) > 0 {
			var next []inst
			for _, f := range frontier {
				ids, err := subT.LookupEqual("sub_attrs_by_child", relstore.Int(f.attrID))
				if err != nil {
					return nil, err
				}
				for _, rid := range ids {
					r := subT.Get(rid)
					if r == nil || r[5].I != 1 || r[0].I != f.object || r[2].I != f.seq {
						continue
					}
					parent := inst{r[0].I, r[3].I, r[4].I}
					if seen[parent] {
						continue
					}
					seen[parent] = true
					if parent.attrID == n.def.ID {
						k, err := instKey(parent.object, parent.seq)
						if err != nil {
							return nil, err
						}
						cover.Add(k)
					}
					next = append(next, parent)
				}
			}
			frontier = next
		}
		cover.Optimize()
		covers = append(covers, cover)
	}
	covers = append(covers, sets[n.id])
	return andAscending(covers), nil
}

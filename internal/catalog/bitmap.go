package catalog

import (
	"errors"
	"fmt"
	"slices"

	"github.com/gridmeta/hybridcat/internal/bitset"
	"github.com/gridmeta/hybridcat/internal/obs"
	"github.com/gridmeta/hybridcat/internal/relstore"
)

// Bitmap Figure-4 pipeline. The stages are the same as the row path in
// query.go — probe, containment rollup, cross-criteria intersect — but
// what flows between them is a compressed bitset of attribute-instance
// keys instead of []relstore.Row: probes emit posting lists straight
// off the B-tree (relstore postings.go), element predicates and the
// rollup combine them with word-at-a-time ANDs ordered by ascending
// cardinality, and the final stage intersects per-criterion *object*
// sets the same way. The row path stays compiled in as the oracle
// behind Options.DisableBitmaps, and any query whose keys cannot be
// packed falls back to it per evaluation (errBitmapRange).

// An attribute instance (object_id, seq_id) packs into one uint64 key:
// object in the high bits, seq in the low instSeqBits. Sequence IDs are
// per-object attribute-instance ordinals, so 2^20 of them is far past
// any real document; objects get the remaining 43 bits (the top bit
// stays clear so keys round-trip through int64 arithmetic).
const (
	instSeqBits   = 20
	instSeqMask   = 1<<instSeqBits - 1
	maxInstObject = int64(1)<<(63-instSeqBits) - 1
)

// errBitmapRange aborts a bitmap evaluation whose IDs cannot be packed
// into instance keys; evaluateUncached catches it and reruns the query
// on the row path.
var errBitmapRange = errors.New("catalog: id out of bitmap instance-key range")

// instKey packs (object, seq) into one set key.
func instKey(object, seq int64) (uint64, error) {
	if object < 0 || object > maxInstObject || seq < 0 || seq > instSeqMask {
		return 0, fmt.Errorf("%w: object %d seq %d", errBitmapRange, object, seq)
	}
	return uint64(object)<<instSeqBits | uint64(seq), nil
}

// evaluateBitmap is the bitmap pipeline body, mirroring evaluateRows
// stage for stage (same stage names, histograms, and trace spans, so
// /debug/tracez compares the two paths directly).
func (v *view) evaluateBitmap(q *Query, key string, tr *obs.Trace) ([]int64, error) {
	c := v.c
	tr.Annotate("repr=bitmap")
	if err := v.ctxErr(); err != nil {
		return nil, err
	}

	// Stage 1+2: resolve, then per criteria node the posting list of
	// instances directly satisfying its element predicates.
	endProbe := c.stageTimer(tr, "probe", c.obsv.stageProbe)
	all, tops, err := v.resolveCached(q, key)
	if err != nil {
		return nil, err
	}
	sets, err := v.bitmapSatisfyAll(all, tr)
	if err != nil {
		return nil, err
	}
	endProbe(int64(len(all)))
	if err := v.ctxErr(); err != nil {
		return nil, err
	}

	// Stage 3: containment rollup, children before parents (DFS reverse),
	// each cover set ANDed in ascending-cardinality order.
	endRollup := c.stageTimer(tr, "rollup", c.obsv.stageRollup)
	rolled := int64(0)
	for i := len(all) - 1; i >= 0; i-- {
		n := all[i]
		if len(n.children) == 0 {
			continue
		}
		narrowed, err := v.rollupSet(n, sets)
		if err != nil {
			return nil, err
		}
		sets[n.id] = narrowed
		rolled++
	}
	endRollup(rolled)
	if err := v.ctxErr(); err != nil {
		return nil, err
	}

	// Stage 4: project each top-level criterion's instance set onto
	// objects, then chain bitmap ANDs from the smallest set up.
	endIntersect := c.stageTimer(tr, "intersect", c.obsv.stageIntersect)
	objSets := make([]*bitset.Set, len(tops))
	for i, top := range tops {
		os := objectSet(sets[top.id])
		c.obsv.intersectCardinality.Observe(int64(os.Card()))
		objSets[i] = os
	}
	result := andAscending(objSets)
	ids := make([]int64, 0, result.Card())
	result.Iterate(func(k uint64) bool {
		ids = append(ids, int64(k))
		return true
	})
	visible := v.filterVisible(q.Owner, ids)
	endIntersect(int64(len(visible)))
	return visible, nil
}

// objectSet projects an instance-key set onto its distinct object IDs.
// Iteration is ascending, so duplicate objects arrive consecutively and
// one lag value deduplicates.
func objectSet(instances *bitset.Set) *bitset.Set {
	out := bitset.New()
	prev := ^uint64(0)
	instances.Iterate(func(k uint64) bool {
		if obj := k >> instSeqBits; obj != prev {
			out.Add(obj)
			prev = obj
		}
		return true
	})
	out.Optimize()
	return out
}

// andAscending intersects the sets smallest-first — each AND against
// the running result only walks chunks both sides still have — with an
// empty-result early exit. Operands are never mutated; with one operand
// the result aliases it, which is safe because every consumer treats
// sets read-only.
func andAscending(sets []*bitset.Set) *bitset.Set {
	if len(sets) == 0 {
		return bitset.New()
	}
	ordered := slices.Clone(sets)
	slices.SortStableFunc(ordered, func(a, b *bitset.Set) int { return a.Card() - b.Card() })
	out := ordered[0]
	for _, s := range ordered[1:] {
		if out.IsEmpty() {
			break
		}
		out = out.And(s)
	}
	return out
}

// bitmapSatisfyAll computes stage 1+2 posting lists for every criteria
// node, through the postings cache layer when enabled. The fan-out
// decision and instrumentation mirror directSatisfyAll: the same worker
// pool, the same path counters, and query_criterion_rows observes each
// set's cardinality. Additionally every produced set's container mix
// feeds query_bitmap_containers_total{kind}.
func (v *view) bitmapSatisfyAll(all []*qNode, tr *obs.Trace) (map[int]*bitset.Set, error) {
	c := v.c
	workers := c.fanoutWorkers(len(all), v.tab(TElemData).Len())
	if workers > 1 {
		c.obsv.pathParallel.Inc()
		if tr != nil {
			tr.Annotate(fmt.Sprintf("path=parallel workers=%d", workers))
		}
	} else {
		c.obsv.pathSequential.Inc()
		tr.Annotate("path=sequential")
	}
	sets := make([]*bitset.Set, len(all))
	err := runParallel(workers, len(all), func(i int) error {
		s, err := v.directSatisfiedSetCached(all[i])
		if err != nil {
			return err
		}
		sets[i] = s
		c.obsv.criterionRows.Observe(int64(s.Card()))
		st := s.Stats()
		c.obsv.bitmapContainersArray.Add(uint64(st.Array))
		c.obsv.bitmapContainersBitmap.Add(uint64(st.Bitmap))
		c.obsv.bitmapContainersRun.Add(uint64(st.Run))
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[int]*bitset.Set, len(all))
	for i, n := range all {
		out[n.id] = sets[i]
	}
	return out, nil
}

// directSatisfiedSetCached memoizes one node's posting list in the
// postings cache layer, keyed by the node's probeKey and stamped with
// the pinned epoch — exactly the contract of the row path's probe
// layer (see cache.go). Cached sets are shared read-only.
func (v *view) directSatisfiedSetCached(n *qNode) (*bitset.Set, error) {
	if v.c.caches.postings == nil {
		return v.directSatisfiedSet(n)
	}
	return v.c.caches.postings.GetOrCompute(v.snap.Epoch(), n.probeKey, func() (*bitset.Set, error) {
		return v.directSatisfiedSet(n)
	})
}

// directSatisfiedSet computes the instances of n's definition satisfying
// all of n's element predicates as a posting list: the bitmap twin of
// directSatisfied. An instance satisfies every predicate iff it is in
// the intersection of the per-predicate instance sets — the set form of
// the row path's count-distinct-tags check.
func (v *view) directSatisfiedSet(n *qNode) (*bitset.Set, error) {
	if len(n.elems) == 0 {
		// No element criteria: every instance of the definition.
		attrT := v.tab(TAttrData)
		rowSet := bitset.New()
		if err := attrT.LookupEqualPostings("attr_data_by_attr", rowSet, relstore.Int(n.def.ID)); err != nil {
			return nil, err
		}
		return v.instanceSet(attrT, rowSet, nil)
	}
	sets := make([]*bitset.Set, len(n.elems))
	for k, qe := range n.elems {
		s, err := v.probeElemSet(qe)
		if err != nil {
			return nil, err
		}
		sets[k] = s
	}
	return andAscending(sets), nil
}

// instanceSet converts a posting list of tab's row IDs into the set of
// instance keys, applying the optional row post-filter. Both attr_data
// and elem_data carry object_id at column 0 and seq_id at column 2.
func (v *view) instanceSet(tab *relstore.Table, rowSet *bitset.Set, post func(relstore.Row) bool) (*bitset.Set, error) {
	out := bitset.New()
	var err error
	rowSet.Iterate(func(id uint64) bool {
		r := tab.Get(int64(id))
		if r == nil || (post != nil && !post(r)) {
			return true
		}
		var k uint64
		if k, err = instKey(r[0].I, r[2].I); err != nil {
			return false
		}
		out.Add(k)
		return true
	})
	if err != nil {
		return nil, err
	}
	out.Optimize()
	return out, nil
}

// probeElemSet returns the posting list of instances with an element
// row matching the predicate: probeElem rebuilt on the emission path.
// The B-tree probes stream row IDs directly into one row-ID set —
// OneOf unions its per-value equality probes there, before a single
// row→instance conversion.
func (v *view) probeElemSet(qe qElem) (*bitset.Set, error) {
	elemT := v.tab(TElemData)
	rowSet := bitset.New()
	if len(qe.pred.OneOf) > 0 {
		if qe.pred.Op != relstore.OpEq {
			return nil, fmt.Errorf("catalog: OneOf requires an equality predicate")
		}
		for _, val := range qe.pred.OneOf {
			single := qe
			single.pred.OneOf = nil
			single.pred.Value = val
			if err := v.probeElemRowIDs(single, rowSet); err != nil {
				return nil, err
			}
		}
		return v.instanceSet(elemT, rowSet, nil)
	}
	post, err := v.probeElemRowIDsPost(qe, rowSet)
	if err != nil {
		return nil, err
	}
	return v.instanceSet(elemT, rowSet, post)
}

// probeElemRowIDs emits one predicate's matching elem_data row IDs into
// rowSet, failing if the predicate needs a post-filter (OneOf members
// are equality-only, so they never do).
func (v *view) probeElemRowIDs(qe qElem, rowSet *bitset.Set) error {
	post, err := v.probeElemRowIDsPost(qe, rowSet)
	if err != nil {
		return err
	}
	if post != nil {
		return fmt.Errorf("catalog: unexpected post-filter for equality probe")
	}
	return nil
}

// probeElemRowIDsPost emits the predicate's index probe into rowSet and
// returns the row post-filter the caller must apply (nil for exact
// probes). The index selection, range bounds, and post-filters are
// identical to probeElem's — the two paths must stay in lockstep for
// the oracle equivalence suite.
func (v *view) probeElemRowIDsPost(qe qElem, rowSet *bitset.Set) (func(relstore.Row) bool, error) {
	elemT := v.tab(TElemData)
	eid := relstore.Int(qe.def.ID)
	var err error
	var post func(relstore.Row) bool

	numeric := false
	if f, ok := qe.pred.Value.AsFloat(); ok && (qe.pred.Value.K == relstore.KInt || qe.pred.Value.K == relstore.KFloat) {
		numeric = true
		nv := relstore.Float(f)
		switch qe.pred.Op {
		case relstore.OpEq:
			err = elemT.LookupEqualPostings("elem_data_by_nval", rowSet, eid, nv)
		case relstore.OpLt:
			err = elemT.LookupRangePostings("elem_data_by_nval", rowSet,
				relstore.RangeBound{Vals: []relstore.Value{eid}, Inclusive: true, Set: true},
				relstore.RangeBound{Vals: []relstore.Value{eid, nv}, Inclusive: false, Set: true})
			post = notNullNval
		case relstore.OpLe:
			err = elemT.LookupRangePostings("elem_data_by_nval", rowSet,
				relstore.RangeBound{Vals: []relstore.Value{eid}, Inclusive: true, Set: true},
				relstore.RangeBound{Vals: []relstore.Value{eid, nv}, Inclusive: true, Set: true})
			post = notNullNval
		case relstore.OpGt:
			err = elemT.LookupRangePostings("elem_data_by_nval", rowSet,
				relstore.RangeBound{Vals: []relstore.Value{eid, nv}, Inclusive: false, Set: true},
				relstore.RangeBound{Vals: []relstore.Value{eid}, Inclusive: true, Set: true})
		case relstore.OpGe:
			err = elemT.LookupRangePostings("elem_data_by_nval", rowSet,
				relstore.RangeBound{Vals: []relstore.Value{eid, nv}, Inclusive: true, Set: true},
				relstore.RangeBound{Vals: []relstore.Value{eid}, Inclusive: true, Set: true})
		case relstore.OpNe:
			err = elemT.LookupRangePostings("elem_data_by_nval", rowSet,
				relstore.RangeBound{Vals: []relstore.Value{eid}, Inclusive: true, Set: true},
				relstore.RangeBound{Vals: []relstore.Value{eid}, Inclusive: true, Set: true})
			post = func(r relstore.Row) bool { return !r[6].IsNull() && r[6].F != f }
		}
	}
	if !numeric {
		sv := relstore.Str(qe.pred.Value.AsString())
		switch qe.pred.Op {
		case relstore.OpEq:
			err = elemT.LookupEqualPostings("elem_data_by_sval", rowSet, eid, sv)
		case relstore.OpNe:
			err = elemT.LookupRangePostings("elem_data_by_sval", rowSet,
				relstore.RangeBound{Vals: []relstore.Value{eid}, Inclusive: true, Set: true},
				relstore.RangeBound{Vals: []relstore.Value{eid}, Inclusive: true, Set: true})
			post = func(r relstore.Row) bool { return r[5].S != sv.S }
		case relstore.OpLt:
			err = elemT.LookupRangePostings("elem_data_by_sval", rowSet,
				relstore.RangeBound{Vals: []relstore.Value{eid}, Inclusive: true, Set: true},
				relstore.RangeBound{Vals: []relstore.Value{eid, sv}, Inclusive: false, Set: true})
		case relstore.OpLe:
			err = elemT.LookupRangePostings("elem_data_by_sval", rowSet,
				relstore.RangeBound{Vals: []relstore.Value{eid}, Inclusive: true, Set: true},
				relstore.RangeBound{Vals: []relstore.Value{eid, sv}, Inclusive: true, Set: true})
		case relstore.OpGt:
			err = elemT.LookupRangePostings("elem_data_by_sval", rowSet,
				relstore.RangeBound{Vals: []relstore.Value{eid, sv}, Inclusive: false, Set: true},
				relstore.RangeBound{Vals: []relstore.Value{eid}, Inclusive: true, Set: true})
		case relstore.OpGe:
			err = elemT.LookupRangePostings("elem_data_by_sval", rowSet,
				relstore.RangeBound{Vals: []relstore.Value{eid, sv}, Inclusive: true, Set: true},
				relstore.RangeBound{Vals: []relstore.Value{eid}, Inclusive: true, Set: true})
		}
	}
	return post, err
}

// rollupSet narrows n's posting list to instances containing a
// satisfied instance of every child criterion: for each child, the
// cover set unions the ancestor instance keys of the inverted-list rows
// whose (object, child_seq) is in the child's set, and the covers AND
// against n's own set smallest-first. With the inverted list disabled
// (A1 ablation) it chases depth-1 parent links recursively instead, so
// the ablation contrasts like with like.
func (v *view) rollupSet(n *qNode, sets map[int]*bitset.Set) (*bitset.Set, error) {
	if v.c.opts.DisableInvertedList {
		return v.recursiveRollupSet(n, sets)
	}
	subT := v.tab(TSubAttrs)
	covers := make([]*bitset.Set, 0, len(n.children)+1)
	for _, child := range n.children {
		ids, err := subT.LookupEqual("sub_attrs_by_child", relstore.Int(child.def.ID))
		if err != nil {
			return nil, err
		}
		childSet := sets[child.id]
		cover := bitset.New()
		for _, rid := range ids {
			r := subT.Get(rid)
			// r: object, child_attr, child_seq, anc_attr, anc_seq, depth
			if r == nil || r[3].I != n.def.ID {
				continue
			}
			ck, err := instKey(r[0].I, r[2].I)
			if err != nil {
				return nil, err
			}
			if !childSet.Contains(ck) {
				continue
			}
			ak, err := instKey(r[0].I, r[4].I)
			if err != nil {
				return nil, err
			}
			cover.Add(ak)
		}
		cover.Optimize()
		covers = append(covers, cover)
	}
	covers = append(covers, sets[n.id])
	return andAscending(covers), nil
}

// recursiveRollupSet is the bitmap twin of recursiveRollup: with only
// depth-1 links stored, each child's cover set is found by chasing
// parents level by level.
func (v *view) recursiveRollupSet(n *qNode, sets map[int]*bitset.Set) (*bitset.Set, error) {
	subT := v.tab(TSubAttrs)
	type inst struct{ object, attrID, seq int64 }
	covers := make([]*bitset.Set, 0, len(n.children)+1)
	for _, child := range n.children {
		var frontier []inst
		sets[child.id].Iterate(func(k uint64) bool {
			frontier = append(frontier, inst{int64(k >> instSeqBits), child.def.ID, int64(k & instSeqMask)})
			return true
		})
		seen := make(map[inst]bool)
		cover := bitset.New()
		for len(frontier) > 0 {
			var next []inst
			for _, f := range frontier {
				ids, err := subT.LookupEqual("sub_attrs_by_child", relstore.Int(f.attrID))
				if err != nil {
					return nil, err
				}
				for _, rid := range ids {
					r := subT.Get(rid)
					if r == nil || r[5].I != 1 || r[0].I != f.object || r[2].I != f.seq {
						continue
					}
					parent := inst{r[0].I, r[3].I, r[4].I}
					if seen[parent] {
						continue
					}
					seen[parent] = true
					if parent.attrID == n.def.ID {
						k, err := instKey(parent.object, parent.seq)
						if err != nil {
							return nil, err
						}
						cover.Add(k)
					}
					next = append(next, parent)
				}
			}
			frontier = next
		}
		cover.Optimize()
		covers = append(covers, cover)
	}
	covers = append(covers, sets[n.id])
	return andAscending(covers), nil
}

package catalog

import (
	"context"

	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/relstore"
)

// view is one read operation's pinned state: an immutable relstore
// snapshot plus a registry snapshot, taken together at the operation's
// start. Everything the Figure-4 pipeline and the §5 response builder
// touch resolves through the view, so a whole query — probes, rollups,
// intersection, response construction, worker-pool fan-out — observes
// exactly one epoch and runs without any lock, concurrently with
// writers publishing later versions.
//
// Pin order is database first, then registry. Dynamic registration
// mutates the registry before mirroring it into the definition tables,
// so for any database epoch the registry holds at least the definitions
// that epoch's rows reference; pinning the registry second can only see
// *more* definitions, and the registry is grow-only, so resolution is
// never missing a definition the pinned data uses. The reverse order
// could pin a registry from before a definition whose mirrored rows the
// data snapshot already contains.
type view struct {
	c    *Catalog
	snap *relstore.Snapshot
	reg  *core.RegSnap
	// ctx, when non-nil, carries the caller's cancellation: the pipeline
	// checks it between stages so an abandoned request stops early
	// instead of finishing work nobody will read.
	ctx context.Context
}

// pinView pins the current database version and registry version.
func (c *Catalog) pinView() *view {
	v := &view{c: c, snap: c.DB.Snapshot(), reg: c.Reg.Snapshot()}
	c.obsv.snapshotPins.Inc()
	return v
}

// pinViewCtx is pinView attaching a cancellation context. Background
// (and nil) contexts never cancel, so they are not stored at all and
// ctxErr stays a nil check on the hot path.
func (c *Catalog) pinViewCtx(ctx context.Context) *view {
	v := c.pinView()
	if ctx != nil && ctx != context.Background() {
		v.ctx = ctx
	}
	return v
}

// ctxErr reports the pinned context's cancellation status; views pinned
// without a context never cancel.
func (v *view) ctxErr() error {
	if v.ctx == nil {
		return nil
	}
	return v.ctx.Err()
}

// tab returns the pinned handle for an internal table.
func (v *view) tab(name string) *relstore.Table {
	return v.snap.MustTable(name)
}

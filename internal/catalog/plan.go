package catalog

import (
	"fmt"
	"strings"

	"github.com/gridmeta/hybridcat/internal/relstore"
)

// Query planner. compile lowers a resolved criteria tree (query.go)
// into an explicit plan: a tree of operator nodes that one executor
// (exec.go) walks under either physical materialization — compressed
// bitmap posting lists or row slices. The criterion dispatch that used
// to be hand-woven three times (row path, bitmap path, explain) happens
// exactly once here: every element predicate compiles to a probeSpec
// naming the index, the equality key or range bounds, and the residual
// row filter, and both materialization strategies execute the same
// spec. ExplainQuery renders the plan after an execution annotated it
// with per-node cardinalities, physical shapes, and cache hits.
//
// Operator vocabulary:
//
//	postings-scan  equality probe emitting the index's posting list
//	range-scan     B-tree range probe (bounds from the predicate)
//	or             union of equality probes (OneOf / ontology expansion)
//	scan-all       every instance of the definition (no element criteria)
//	scan           per-criterion AND over its element probes (stage 1+2)
//	rollup         inverted-list containment rollup (stage 3)
//	rollup-recursive  depth-1 parent chasing (A1 ablation)
//	intersect      cross-criteria object AND + visibility (stage 4)
//	rank           BM25 top-k over the text index (rank.go)
//	page           offset/limit over the intersect order (EvaluatePage)
const (
	opPostingsScan = "postings-scan"
	opRangeScan    = "range-scan"
	opOrUnion      = "or"
	opScanAll      = "scan-all"
	opScan         = "scan"
	opRollup       = "rollup"
	opRollupRec    = "rollup-recursive"
	opIntersect    = "intersect"
	opRank         = "rank"
	opPage         = "page"
)

// probeSpec is one element predicate compiled to a physical index
// probe: which index to hit, the equality key or range bounds, and the
// residual row filter both materializations must apply. This is the
// single home of the operator/index dispatch.
type probeSpec struct {
	index  string
	eq     []relstore.Value // equality probe key (nil when ranged)
	ranged bool
	lo, hi relstore.RangeBound
	post   func(relstore.Row) bool // residual filter; nil for exact probes
}

// probePlan is one element predicate's compiled probe: its operator
// (postings-scan, range-scan, or an or-union of equality probes) plus
// the specs to execute. An unsupported comparison operator compiles to
// zero specs — an empty result, matching the legacy paths.
type probePlan struct {
	op    string
	elem  qElem
	specs []probeSpec
}

// planNode is one operator in a compiled query plan. The executor
// annotates nodes as it runs them — cardinality, physical shape, cache
// hit — and ExplainQuery renders those annotations; plans are compiled
// per evaluation, so annotating is race-free.
type planNode struct {
	op       string
	q        *qNode     // criteria node (scan and rollup operators)
	probe    *probePlan // probe-leaf detail
	children []*planNode

	card       int    // instances (or objects, for intersect) produced
	beforeCard int    // rollup only: instances before narrowing
	shape      string // physical representation, e.g. "[set: card=…]"; "" for rows
	cacheHit   bool   // served from the probe/postings cache layer
}

// topObjects is the intersect stage's per-top-criterion annotation:
// each top-level criterion's candidate object set entering the AND
// chain (bitmap strategy only — the row strategy counts objects in one
// group-by and has no per-top set to describe).
type topObjects struct {
	id    int
	card  int
	shape string
}

// queryPlan is a compiled query: the resolved criteria nodes plus the
// operator tree over them. scans aligns with all; rollups is in
// reverse-DFS order (children before parents), which is execution
// order.
type queryPlan struct {
	all     []*qNode
	tops    []*qNode
	scans   []*planNode
	rollups []*planNode
	root    *planNode // intersect; its children are the per-top operator subtrees
	rank    *planNode // non-nil when the query carries a RankSpec
	topObjs []topObjects
}

// compile resolves the query (through the resolve cache when key is
// non-empty) and lowers it into a plan tree.
func (v *view) compile(q *Query, key string) (*queryPlan, error) {
	all, tops, err := v.resolveCached(q, key)
	if err != nil {
		return nil, err
	}
	p := &queryPlan{all: all, tops: tops}
	nodeOf := make(map[int]*planNode, len(all))
	for _, n := range all {
		sc := &planNode{op: opScan, q: n}
		for _, qe := range n.elems {
			pp, err := compileProbe(qe)
			if err != nil {
				return nil, err
			}
			sc.children = append(sc.children, &planNode{op: pp.op, q: n, probe: pp})
		}
		if len(n.elems) == 0 {
			sc.children = append(sc.children, &planNode{op: opScanAll, q: n, probe: &probePlan{op: opScanAll}})
		}
		p.scans = append(p.scans, sc)
		nodeOf[n.id] = sc
	}
	rollOp := opRollup
	if v.c.opts.DisableInvertedList {
		rollOp = opRollupRec
	}
	for i := len(all) - 1; i >= 0; i-- {
		n := all[i]
		if len(n.children) == 0 {
			continue
		}
		rn := &planNode{op: rollOp, q: n, children: []*planNode{nodeOf[n.id]}}
		for _, ch := range n.children {
			rn.children = append(rn.children, nodeOf[ch.id])
		}
		nodeOf[n.id] = rn
		p.rollups = append(p.rollups, rn)
	}
	p.root = &planNode{op: opIntersect}
	for _, top := range tops {
		p.root.children = append(p.root.children, nodeOf[top.id])
	}
	if q.Rank != nil {
		p.rank = &planNode{op: opRank, children: []*planNode{p.root}}
	}
	return p, nil
}

// compileProbe lowers one element predicate into its probe plan. OneOf
// becomes an or-union of equality specs; everything else is a single
// postings or range scan.
func compileProbe(qe qElem) (*probePlan, error) {
	if len(qe.pred.OneOf) > 0 {
		if qe.pred.Op != relstore.OpEq {
			return nil, fmt.Errorf("catalog: OneOf requires an equality predicate")
		}
		pp := &probePlan{op: opOrUnion, elem: qe}
		for _, val := range qe.pred.OneOf {
			single := qe.pred
			single.OneOf = nil
			single.Value = val
			spec, ok := compileSpec(qe.def.ID, single)
			if !ok {
				continue
			}
			pp.specs = append(pp.specs, spec)
		}
		return pp, nil
	}
	spec, ok := compileSpec(qe.def.ID, qe.pred)
	pp := &probePlan{op: opPostingsScan, elem: qe}
	if ok {
		if spec.ranged {
			pp.op = opRangeScan
		}
		pp.specs = []probeSpec{spec}
	}
	return pp, nil
}

// incl and excl build the range bounds used below.
func incl(vals ...relstore.Value) relstore.RangeBound {
	return relstore.RangeBound{Vals: vals, Inclusive: true, Set: true}
}

func excl(vals ...relstore.Value) relstore.RangeBound {
	return relstore.RangeBound{Vals: vals, Inclusive: false, Set: true}
}

// compileSpec maps (definition, operator, value) to the physical probe:
// typed numeric predicates hit the nval B-tree, everything else the
// sval B-tree. ok=false means the operator is unsupported and the probe
// produces nothing — the same silent-empty contract the legacy dispatch
// had.
func compileSpec(defID int64, pred ElemPred) (probeSpec, bool) {
	eid := relstore.Int(defID)
	if f, isNum := pred.Value.AsFloat(); isNum && (pred.Value.K == relstore.KInt || pred.Value.K == relstore.KFloat) {
		const ix = "elem_data_by_nval"
		nv := relstore.Float(f)
		switch pred.Op {
		case relstore.OpEq:
			return probeSpec{index: ix, eq: []relstore.Value{eid, nv}}, true
		case relstore.OpLt:
			return probeSpec{index: ix, ranged: true, lo: incl(eid), hi: excl(eid, nv), post: notNullNval}, true
		case relstore.OpLe:
			return probeSpec{index: ix, ranged: true, lo: incl(eid), hi: incl(eid, nv), post: notNullNval}, true
		case relstore.OpGt:
			return probeSpec{index: ix, ranged: true, lo: excl(eid, nv), hi: incl(eid)}, true
		case relstore.OpGe:
			return probeSpec{index: ix, ranged: true, lo: incl(eid, nv), hi: incl(eid)}, true
		case relstore.OpNe:
			// Inequality: scan the definition's rows and filter.
			return probeSpec{index: ix, ranged: true, lo: incl(eid), hi: incl(eid),
				post: func(r relstore.Row) bool { return !r[6].IsNull() && r[6].F != f }}, true
		}
		return probeSpec{}, false
	}
	const ix = "elem_data_by_sval"
	sv := relstore.Str(pred.Value.AsString())
	switch pred.Op {
	case relstore.OpEq:
		return probeSpec{index: ix, eq: []relstore.Value{eid, sv}}, true
	case relstore.OpNe:
		return probeSpec{index: ix, ranged: true, lo: incl(eid), hi: incl(eid),
			post: func(r relstore.Row) bool { return r[5].S != sv.S }}, true
	case relstore.OpLt:
		return probeSpec{index: ix, ranged: true, lo: incl(eid), hi: excl(eid, sv)}, true
	case relstore.OpLe:
		return probeSpec{index: ix, ranged: true, lo: incl(eid), hi: incl(eid, sv)}, true
	case relstore.OpGt:
		return probeSpec{index: ix, ranged: true, lo: excl(eid, sv), hi: incl(eid)}, true
	case relstore.OpGe:
		return probeSpec{index: ix, ranged: true, lo: incl(eid, sv), hi: incl(eid)}, true
	}
	return probeSpec{}, false
}

// notNullNval filters out rows whose numeric column is null (a string
// value landed in the range scan's key space).
func notNullNval(r relstore.Row) bool { return !r[6].IsNull() }

// planString renders the operator tree in one line, e.g.
// "intersect(rollup#1(scan#1[range-scan], scan#2[postings-scan]))".
func (p *queryPlan) planString() string {
	var b strings.Builder
	root := p.root
	if p.rank != nil {
		root = p.rank
	}
	renderPlanNode(&b, root)
	return b.String()
}

func renderPlanNode(b *strings.Builder, pn *planNode) {
	switch pn.op {
	case opScan:
		fmt.Fprintf(b, "scan#%d[", pn.q.id)
		for i, c := range pn.children {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(c.op)
		}
		b.WriteByte(']')
	case opRollup, opRollupRec:
		fmt.Fprintf(b, "%s#%d(", pn.op, pn.q.id)
		for i, c := range pn.children {
			if i > 0 {
				b.WriteString(", ")
			}
			renderPlanNode(b, c)
		}
		b.WriteByte(')')
	default:
		b.WriteString(pn.op)
		b.WriteByte('(')
		for i, c := range pn.children {
			if i > 0 {
				b.WriteString(", ")
			}
			renderPlanNode(b, c)
		}
		b.WriteByte(')')
	}
}

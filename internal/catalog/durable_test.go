package catalog

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/gridmeta/hybridcat/internal/faultio"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// runWorkload applies the full crash workload, failing the test on any
// error.
func runWorkload(t *testing.T, c *Catalog) {
	t.Helper()
	for _, op := range crashWorkload(t) {
		if err := op.run(c); err != nil {
			t.Fatalf("%s: %v", op.name, err)
		}
	}
}

func TestDurableCheckpointBoundsLog(t *testing.T) {
	mem := faultio.NewMemFS()
	c, err := openDurableLEAD(t, mem, 2)
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, c)
	st := c.DurabilityStats()
	if st.Checkpoints == 0 {
		t.Fatalf("no automatic checkpoints ran: %+v", st)
	}
	if st.SinceCheckpoint >= 2 {
		t.Fatalf("uncheckpointed records accumulated: %+v", st)
	}
	if st.LastCheckpointError != "" {
		t.Fatalf("checkpoint error: %s", st.LastCheckpointError)
	}
	// Close checkpoints and resets; the log shrinks to its bare header.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if n, _ := mem.Size(crashWAL); n != 8 {
		t.Fatalf("log size after close = %d, want 8 (header only)", n)
	}
	// The snapshot alone reproduces the state.
	rec, err := openDurableLEAD(t, mem, 2)
	if err != nil {
		t.Fatal(err)
	}
	oracle := newOracleLEAD(t)
	runWorkload(t, oracle)
	if got, want := stateFingerprint(rec), stateFingerprint(oracle); got != want {
		t.Fatalf("state after checkpoint-only recovery diverges:\n%s", diffFingerprint(want, got))
	}
}

// TestFaultTransientSyncRollsBack: a single failing fsync must surface
// as ErrDurability, leave no trace of the mutation in memory, and not
// poison later mutations once the fault clears.
func TestFaultTransientSyncRollsBack(t *testing.T) {
	for _, kind := range []faultio.OpKind{faultio.OpWrite, faultio.OpSync} {
		t.Run(string(kind), func(t *testing.T) {
			// Counting run: how many ops of this kind happen before the
			// first ingest (workload step 7)?
			ops := crashWorkload(t)
			faulty := faultio.NewFaulty(faultio.NewMemFS(), faultio.Fault{})
			c, err := openDurableLEAD(t, faulty, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range ops[:6] {
				if err := op.run(c); err != nil {
					t.Fatal(err)
				}
			}
			n := faulty.Counts()[kind]

			// Real run: the (n+1)th op of the kind is the ingest's commit.
			mem := faultio.NewMemFS()
			faulty = faultio.NewFaulty(mem, faultio.Fault{Op: kind, N: n + 1, Mode: faultio.FailOp})
			c, err = openDurableLEAD(t, faulty, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range ops[:6] {
				if err := op.run(c); err != nil {
					t.Fatal(err)
				}
			}
			before := stateFingerprint(c)
			_, err = c.IngestXML("scientist", xmlschema.Figure3Document)
			if !errors.Is(err, ErrDurability) {
				t.Fatalf("ingest under fault = %v, want ErrDurability", err)
			}
			if got := stateFingerprint(c); got != before {
				t.Fatalf("failed ingest left state behind:\n%s", diffFingerprint(before, got))
			}
			// The fault was transient: the retry must succeed and be durable.
			if _, err := c.IngestXML("scientist", xmlschema.Figure3Document); err != nil {
				t.Fatalf("retry after transient fault: %v", err)
			}
			mem.Crash()
			rec, err := openDurableLEAD(t, mem, 0)
			if err != nil {
				t.Fatal(err)
			}
			if rec.ObjectCount() != 1 {
				t.Fatalf("recovered %d objects, want 1", rec.ObjectCount())
			}
		})
	}
}

// TestFaultWedgedWriterKeepsAckedState: when the post-failure cleanup
// also fails (sticky crash), further mutations are refused but every
// acknowledged object remains readable.
func TestFaultWedgedWriterKeepsAckedState(t *testing.T) {
	ops := crashWorkload(t)
	faulty := faultio.NewFaulty(faultio.NewMemFS(), faultio.Fault{})
	c, err := openDurableLEAD(t, faulty, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[:7] { // through ingest-1
		if err := op.run(c); err != nil {
			t.Fatal(err)
		}
	}
	n := faulty.Counts()[faultio.OpWrite]

	mem := faultio.NewMemFS()
	faulty = faultio.NewFaulty(mem, faultio.Fault{Op: faultio.OpWrite, N: n + 1, Mode: faultio.CrashOp})
	c, err = openDurableLEAD(t, faulty, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[:7] {
		if err := op.run(c); err != nil {
			t.Fatal(err)
		}
	}
	before := stateFingerprint(c)
	if _, err := c.IngestXML("scientist", fig3Variant(t, "9")); !errors.Is(err, ErrDurability) {
		t.Fatalf("ingest on dead disk = %v, want ErrDurability", err)
	}
	if _, err := c.IngestXML("scientist", fig3Variant(t, "10")); !errors.Is(err, ErrDurability) {
		t.Fatalf("second ingest on dead disk = %v, want ErrDurability", err)
	}
	if got := stateFingerprint(c); got != before {
		t.Fatalf("failed mutations altered acknowledged state:\n%s", diffFingerprint(before, got))
	}
	if doc, err := c.FetchDocument(1); err != nil || doc == nil {
		t.Fatalf("read of acknowledged object after disk death: %v", err)
	}
}

// TestFaultConcurrentMutationsAndReads exercises the durability funnel
// under the race detector: concurrent writers with occasional injected
// transient faults against concurrent readers, then a crash-recovery
// equivalence check against a serial oracle of the acknowledged ops.
func TestFaultConcurrentMutationsAndReads(t *testing.T) {
	mem := faultio.NewMemFS()
	c, err := openDurableLEAD(t, mem, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Register the definitions up front (single-writer phase).
	ops := crashWorkload(t)
	for _, op := range ops[:6] {
		if err := op.run(c); err != nil {
			t.Fatal(err)
		}
	}

	const writers, perWriter = 4, 8
	var mu sync.Mutex
	acked := map[string]bool{} // dx value -> acknowledged
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				dx := fmt.Sprintf("%d", 1000+w*100+i)
				if _, err := c.IngestXML("scientist", fig3Variant(t, dx)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				mu.Lock()
				acked[dx] = true
				mu.Unlock()
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				for _, o := range c.Objects() {
					if _, err := c.FetchDocument(o.ID); err != nil {
						t.Errorf("reader: fetch %d: %v", o.ID, err)
						return
					}
				}
				c.DurabilityStats()
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	mem.Crash()
	rec, err := openDurableLEAD(t, mem, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rec.ObjectCount(), writers*perWriter; got != want {
		t.Fatalf("recovered %d objects, want %d", got, want)
	}
	// Every acknowledged document must reconstruct with its dx intact.
	seen := map[string]bool{}
	for _, o := range rec.Objects() {
		doc, err := rec.FetchDocument(o.ID)
		if err != nil {
			t.Fatalf("fetch %d: %v", o.ID, err)
		}
		for _, a := range doc.FindAll("attr") {
			if a.ChildText("attrlabl") == "dx" {
				seen[a.ChildText("attrv")] = true
			}
		}
	}
	for dx := range acked {
		if !seen[dx] {
			t.Errorf("acknowledged document dx=%s lost in recovery", dx)
		}
	}
}

// TestFaultCorruptWALRefusedAtBoot: rotted interior log bytes must stop
// recovery rather than silently load partial history.
func TestFaultCorruptWALRefusedAtBoot(t *testing.T) {
	mem := faultio.NewMemFS()
	c, err := openDurableLEAD(t, mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, c)
	data := mem.Bytes(crashWAL)
	if len(data) < 100 {
		t.Fatalf("log unexpectedly small: %d bytes", len(data))
	}
	mutated := append([]byte(nil), data...)
	mutated[len(data)/2] ^= 0x20 // interior record body
	mem.SetBytes(crashWAL, mutated)
	if _, err := openDurableLEAD(t, mem, 0); err == nil {
		t.Fatal("recovery accepted a corrupt log interior")
	}
}

// TestDurableSnapshotCompatibleWithPlainLoad: a durable catalog's
// checkpoint snapshot loads through the plain Load path too.
func TestDurableSnapshotCompatibleWithPlainLoad(t *testing.T) {
	mem := faultio.NewMemFS()
	c, err := openDurableLEAD(t, mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(xmlschema.MustLEAD(), Options{}, mem, crashWAL+".snap")
	if err != nil {
		t.Fatal(err)
	}
	oracle := newOracleLEAD(t)
	runWorkload(t, oracle)
	if got, want := stateFingerprint(loaded), stateFingerprint(oracle); got != want {
		t.Fatalf("plain load of checkpoint snapshot diverges:\n%s", diffFingerprint(want, got))
	}
}

// TestDurableRequiresWALPath documents the configuration contract.
func TestDurableRequiresWALPath(t *testing.T) {
	_, err := OpenDurable(xmlschema.MustLEAD(), Options{}, DurabilityOptions{FS: faultio.NewMemFS()})
	if err == nil {
		t.Fatal("OpenDurable accepted an empty WAL path")
	}
}

// TestFaultSnapshotTruncationRefused: Load must error on every strict
// prefix of a snapshot — never panic, never half-load.
func TestFaultSnapshotTruncationRefused(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	ingestFig3(t, c)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := Load(xmlschema.MustLEAD(), Options{}, bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes loaded successfully", cut, len(full))
		}
	}
	if _, err := Load(xmlschema.MustLEAD(), Options{}, bytes.NewReader(full)); err != nil {
		t.Fatalf("intact snapshot refused: %v", err)
	}
}

// TestFaultSnapshotBitFlipRefused: a single flipped bit anywhere in the
// snapshot must be detected by the container checksum (or header
// validation) — never panic, never half-load.
func TestFaultSnapshotBitFlipRefused(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	ingestFig3(t, c)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for off := 0; off < len(full); off++ {
		mutated := append([]byte(nil), full...)
		mutated[off] ^= 0x10
		if _, err := Load(xmlschema.MustLEAD(), Options{}, bytes.NewReader(mutated)); err == nil {
			t.Fatalf("bit flip at offset %d of %d loaded successfully", off, len(full))
		}
	}
}

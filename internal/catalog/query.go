package catalog

import (
	"context"
	"errors"
	"fmt"
	"slices"

	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/obs"
	"github.com/gridmeta/hybridcat/internal/relstore"
)

// ErrUnknownDefinition is wrapped by query resolution failures: a
// criterion names an attribute or element with no catalog definition.
var ErrUnknownDefinition = errors.New("catalog: unknown definition")

// ElemPred is one element criterion inside an attribute criterion: the
// element's (name, source) identity, a comparison operator, and the value.
// Numeric values compare against the typed nval column; strings against
// sval.
//
// OneOf, when non-empty, replaces Value for equality predicates: the
// element satisfies the criterion when it equals any listed value. This
// is the hook the paper's §3 mentions for connecting definitions "to an
// ontology for enhanced search" — ontology expansion rewrites an equality
// on a broad term into OneOf over its narrower terms (see the ontology
// package).
type ElemPred struct {
	Name   string
	Source string
	Op     relstore.CmpOp
	Value  relstore.Value
	OneOf  []relstore.Value
}

// AttrCriteria is one node of the unordered attribute-criteria tree (§4):
// an attribute identity, required element predicates, and required
// sub-attribute criteria. A criteria node matches an attribute instance
// that satisfies every element predicate and contains (at any depth, via
// the inverted list) a satisfying instance of every sub-criterion.
type AttrCriteria struct {
	Name   string
	Source string
	Elems  []ElemPred
	Subs   []*AttrCriteria
}

// AddElem appends an element predicate and returns the criteria node for
// chaining; it mirrors the myLEAD Java API's MyAttr.addElement.
func (a *AttrCriteria) AddElem(name, source string, op relstore.CmpOp, value relstore.Value) *AttrCriteria {
	a.Elems = append(a.Elems, ElemPred{Name: name, Source: source, Op: op, Value: value})
	return a
}

// AddSub appends a sub-attribute criterion (MyAttr.addAttribute).
func (a *AttrCriteria) AddSub(sub *AttrCriteria) *AttrCriteria {
	a.Subs = append(a.Subs, sub)
	return a
}

// Query is an unordered query over metadata attributes (§4): an object
// matches when it contains a satisfying instance of every top-level
// criterion. Owner scopes resolution to the user's private definitions
// and restricts results to objects the user may see — their own plus
// published ones (§1's privacy requirement). The empty Owner is the
// catalog-internal superuser and sees everything.
type Query struct {
	Owner string
	Attrs []*AttrCriteria
	// Rank, when non-nil, turns the query into ranked retrieval: BM25
	// top-k over the text index, composed with the structural criteria
	// (rank.go). Ranked queries go through EvaluateRanked; Evaluate
	// rejects them so a caller can never silently drop the ranking.
	Rank *RankSpec
}

// Attr creates a top-level criterion and adds it to the query.
func (q *Query) Attr(name, source string) *AttrCriteria {
	a := &AttrCriteria{Name: name, Source: source}
	q.Attrs = append(q.Attrs, a)
	return a
}

// qNode is one resolved criteria node, numbered in DFS order. Nodes are
// immutable after resolve, so a resolved tree may be cached and shared
// by concurrent evaluations.
type qNode struct {
	id       int
	parent   *qNode
	def      *core.AttrDef
	elems    []qElem
	children []*qNode
	// probeKey identifies the node's directly-satisfied instance set in
	// the probe cache layer: definition IDs plus predicates (cache.go).
	probeKey string
}

type qElem struct {
	def  *core.ElemDef
	pred ElemPred
}

// resolve shreds the query into numbered nodes (the paper's "queries are
// first shredded" step), resolving every identity against the view's
// pinned registry.
func (v *view) resolve(q *Query) ([]*qNode, []*qNode, error) {
	var all, tops []*qNode
	var build func(crit *AttrCriteria, parent *qNode) (*qNode, error)
	build = func(crit *AttrCriteria, parent *qNode) (*qNode, error) {
		parentID := int64(0)
		if parent != nil {
			parentID = parent.def.ID
		}
		def := v.reg.LookupAttr(crit.Name, crit.Source, parentID, q.Owner)
		if def == nil {
			return nil, fmt.Errorf("%w: attribute %q (source %q)", ErrUnknownDefinition, crit.Name, crit.Source)
		}
		if !def.Queryable {
			return nil, fmt.Errorf("catalog: attribute %q (source %q) is not queryable", crit.Name, crit.Source)
		}
		n := &qNode{id: len(all) + 1, parent: parent, def: def}
		all = append(all, n)
		for _, ep := range crit.Elems {
			edef := v.reg.LookupElem(ep.Name, ep.Source, def.ID, q.Owner)
			if edef == nil {
				return nil, fmt.Errorf("%w: element %q (source %q) in attribute %q", ErrUnknownDefinition, ep.Name, ep.Source, crit.Name)
			}
			n.elems = append(n.elems, qElem{def: edef, pred: ep})
		}
		for _, sub := range crit.Subs {
			child, err := build(sub, n)
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, child)
		}
		n.probeKey = probeKeyOf(n)
		return n, nil
	}
	for _, crit := range q.Attrs {
		top, err := build(crit, nil)
		if err != nil {
			return nil, nil, err
		}
		tops = append(tops, top)
	}
	return all, tops, nil
}

// Evaluate runs the Figure-4 pipeline and returns the matching object
// IDs, ascending. Each evaluation pins a snapshot at its start and runs
// lock-free against it, so any number of them run concurrently — with
// each other and with writers.
func (c *Catalog) Evaluate(q *Query) ([]int64, error) {
	return c.EvaluateContext(context.Background(), q)
}

// EvaluateContext is Evaluate honoring ctx: cancellation is checked
// between pipeline stages (probe, rollup, intersect), so an abandoned
// HTTP request stops before running the stages it no longer needs. A
// cancelled evaluation returns the context's error.
func (c *Catalog) EvaluateContext(ctx context.Context, q *Query) ([]int64, error) {
	tr, done := c.beginOp("evaluate", c.obsv.opEvaluate)
	defer done()
	return c.pinViewCtx(ctx).evaluateTraced(q, tr)
}

// evaluateTraced answers the query through the evaluate cache layer,
// stamping tr (which may be nil) along the way. A hit skips the whole
// pipeline; concurrent misses for the same key at the same pinned epoch
// collapse onto one computation (singleflight). The cached slice is
// cloned on every hit so callers may mutate their result freely.
func (v *view) evaluateTraced(q *Query, tr *obs.Trace) ([]int64, error) {
	c := v.c
	if q.Rank != nil {
		return nil, fmt.Errorf("catalog: ranked query must go through EvaluateRanked")
	}
	if len(q.Attrs) == 0 {
		return nil, fmt.Errorf("catalog: query has no attribute criteria")
	}
	if c.caches.eval == nil {
		return v.evaluateUncached(q, "", tr)
	}
	key := queryCacheKey(q)
	computed := false
	ids, err := c.caches.eval.GetOrCompute(v.snap.Epoch(), key, func() ([]int64, error) {
		computed = true
		return v.evaluateUncached(q, key, tr)
	})
	if err != nil {
		if !computed && v.ctxErr() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// We joined another caller's in-flight computation and
			// inherited *its* cancellation; our own context is live, so
			// run the pipeline ourselves.
			return v.evaluateUncached(q, key, tr)
		}
		return nil, err
	}
	if !computed {
		// Answered from the evaluate cache (or by joining another
		// caller's in-flight computation) — no pipeline stages ran.
		tr.Annotate("evaluate-cache hit")
	}
	return slices.Clone(ids), nil
}

// evaluateUncached is the Figure-4 pipeline body, run entirely against
// the view's pinned snapshot. key is the canonical query key when
// caching is on ("" otherwise), reused for the resolve layer. tr (which
// may be nil) receives one span per pipeline stage; the stage
// histograms are recorded regardless.
//
// The query compiles to one plan (plan.go) that a single executor
// (exec.go) walks. By default it runs under the compressed-bitmap
// strategy; Options.DisableBitmaps selects the row-slice strategy —
// the original row-at-a-time pipeline, kept as the correctness oracle —
// and a query whose IDs cannot be packed into instance keys falls back
// to it for that evaluation only.
func (v *view) evaluateUncached(q *Query, key string, tr *obs.Trace) ([]int64, error) {
	if !v.c.opts.DisableBitmaps {
		ids, _, err := v.execPlan(q, key, tr, setStrategy{})
		if err == nil || !errors.Is(err, errBitmapRange) {
			return ids, err
		}
		tr.Annotate("bitmap-range fallback to row path")
	}
	ids, _, err := v.execPlan(q, key, tr, rowStrategy{})
	return ids, err
}

// satisfiedCols is the row layout flowing between the pipeline stages.
var satisfiedCols = []string{"object_id", "seq_id"}

// containmentRollup narrows n's directly-satisfied instances to those
// containing a satisfied instance of every child criterion, via the
// sub-attribute inverted list — set-based, no recursion over the data
// (§4). With the inverted list disabled (A1 ablation) it falls back to
// recursive parent-chasing over direct-parent links, which the ablation
// benchmark contrasts.
func (v *view) containmentRollup(n *qNode, satisfied map[int]relstore.Iterator) (relstore.Iterator, error) {
	if v.c.opts.DisableInvertedList {
		return v.recursiveRollup(n, satisfied)
	}
	subT := v.tab(TSubAttrs)
	var parts []relstore.Iterator
	for _, child := range n.children {
		// Inverted-list rows of the child's definition, narrowed to
		// ancestors of n's definition.
		ids, err := subT.LookupEqual("sub_attrs_by_child", relstore.Int(child.def.ID))
		if err != nil {
			return nil, err
		}
		links := relstore.Filter(relstore.ScanRowIDs(subT, ids), func(r relstore.Row) bool {
			return r[3].I == n.def.ID
		})
		// Join with the child's satisfied instances on (object, child
		// instance) to get the ancestor instances covering this child.
		joined := relstore.HashJoin(links, satisfied[child.id], []int{0, 2}, []int{0, 1}, relstore.SemiJoin)
		anc := relstore.Project(joined, []int{0, 4}, []string{"object_id", "seq_id"})
		parts = append(parts, tagIter(relstore.Distinct(anc), int64(child.id)))
	}
	counted := relstore.GroupBy(relstore.Union(parts...), []int{0, 1}, []relstore.AggSpec{
		{Func: relstore.AggCountDistinct, Col: 2, Name: "n_children"},
	})
	need := int64(len(n.children))
	covered := relstore.Filter(counted, func(r relstore.Row) bool { return r[2].I == need })
	coveredProj := relstore.Project(covered, []int{0, 1}, []string{"object_id", "seq_id"})
	// Intersect with the node's own directly-satisfied instances.
	return relstore.HashJoin(satisfied[n.id], coveredProj, []int{0, 1}, []int{0, 1}, relstore.SemiJoin), nil
}

// recursiveRollup is the non-inverted-list fallback (A1 ablation): with
// only direct-parent (depth-1) links stored, the ancestor instances of
// each satisfied child must be found by chasing parents level by level —
// the per-level self-joins that hinder the edge-table approach (§6).
func (v *view) recursiveRollup(n *qNode, satisfied map[int]relstore.Iterator) (relstore.Iterator, error) {
	subT := v.tab(TSubAttrs)
	type inst struct{ object, attrID, seq int64 }
	var parts []relstore.Iterator
	for _, child := range n.children {
		var frontier []inst
		for _, r := range relstore.Collect(satisfied[child.id]) {
			frontier = append(frontier, inst{r[0].I, child.def.ID, r[1].I})
		}
		seen := make(map[inst]bool)
		var anc []relstore.Row
		for len(frontier) > 0 {
			var next []inst
			for _, f := range frontier {
				// Depth-1 rows with this instance as the child.
				ids, err := subT.LookupEqual("sub_attrs_by_child", relstore.Int(f.attrID))
				if err != nil {
					return nil, err
				}
				for _, rid := range ids {
					r := subT.Get(rid)
					// r: object, child_attr, child_seq, anc_attr, anc_seq, depth
					if r == nil || r[5].I != 1 || r[0].I != f.object || r[2].I != f.seq {
						continue
					}
					parent := inst{r[0].I, r[3].I, r[4].I}
					if seen[parent] {
						continue
					}
					seen[parent] = true
					if parent.attrID == n.def.ID {
						anc = append(anc, relstore.Row{r[0], r[4]})
					}
					next = append(next, parent)
				}
			}
			frontier = next
		}
		parts = append(parts, tagIter(relstore.NewSliceIter([]string{"object_id", "seq_id"}, anc), int64(child.id)))
	}
	counted := relstore.GroupBy(relstore.Union(parts...), []int{0, 1}, []relstore.AggSpec{
		{Func: relstore.AggCountDistinct, Col: 2, Name: "n_children"},
	})
	need := int64(len(n.children))
	covered := relstore.Filter(counted, func(r relstore.Row) bool { return r[2].I == need })
	coveredProj := relstore.Project(covered, []int{0, 1}, []string{"object_id", "seq_id"})
	return relstore.HashJoin(satisfied[n.id], coveredProj, []int{0, 1}, []int{0, 1}, relstore.SemiJoin), nil
}

// tagIter appends a constant tag column to every row.
func tagIter(in relstore.Iterator, tag int64) relstore.Iterator {
	cols := append(append([]string{}, in.Columns()...), "tag")
	return &taggedIter{in: in, cols: cols, tag: relstore.Int(tag)}
}

type taggedIter struct {
	in   relstore.Iterator
	cols []string
	tag  relstore.Value
}

func (t *taggedIter) Columns() []string { return t.cols }

func (t *taggedIter) Next() (relstore.Row, bool) {
	r, ok := t.in.Next()
	if !ok {
		return nil, false
	}
	out := make(relstore.Row, 0, len(r)+1)
	out = append(out, r...)
	return append(out, t.tag), true
}

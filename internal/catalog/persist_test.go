package catalog

import (
	"bytes"
	"strings"
	"testing"

	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	c, p, expA, _, objs := collFixture(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}

	loaded, err := Load(xmlschema.MustLEAD(), Options{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same objects.
	if loaded.ObjectCount() != c.ObjectCount() {
		t.Fatalf("objects = %d, want %d", loaded.ObjectCount(), c.ObjectCount())
	}
	// Queries answer identically.
	q := &Query{}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(1000))
	a, err := c.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("query after load: %v vs %v", a, b)
	}
	// Documents reconstruct identically.
	d1, err := c.FetchDocument(objs[0])
	if err != nil {
		t.Fatal(err)
	}
	d2, err := loaded.FetchDocument(objs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !xmldoc.Equal(d1, d2) {
		t.Fatalf("documents differ after load: %s", xmldoc.Diff(d1, d2))
	}
	// Collections survive.
	got, err := loaded.EvaluateInContext(expA, q)
	if err != nil || len(got) != 1 {
		t.Fatalf("context query after load: %v, %v", got, err)
	}
	_ = p
}

func TestLoadedCatalogAcceptsNewWork(t *testing.T) {
	c, _, _, _, _ := collFixture(t)
	before := c.ObjectCount()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(xmlschema.MustLEAD(), Options{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// New ingests continue past the restored IDs.
	id, err := loaded.IngestXML("alice", fig3Variant(t, "4242"))
	if err != nil {
		t.Fatal(err)
	}
	if id != int64(before+1) {
		t.Errorf("new id = %d, want %d", id, before+1)
	}
	// New dynamic definitions register past restored definition IDs.
	def, err := loaded.RegisterAttr("fresh", "WRF", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Reg.AttrByID(def.ID) == nil {
		t.Error("fresh definition missing")
	}
	// New collection IDs don't collide.
	cid, err := loaded.CreateCollection("post-load", "alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.AddToCollection(cid, id); err != nil {
		t.Fatal(err)
	}
	got, _ := loaded.CollectionObjects(cid)
	if len(got) != 1 || got[0] != id {
		t.Fatalf("post-load collection = %v", got)
	}
}

func TestLoadRejectsMismatchedSchemaAndGarbage(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	ingestFig3(t, c)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A different schema must be rejected.
	other, err := xmlschema.ParseDSL("other", "root\n  a *")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(other, Options{}, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("mismatched schema should fail")
	}
	// Garbage input.
	if _, err := Load(xmlschema.MustLEAD(), Options{}, strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage should fail")
	}
	// Truncated snapshot.
	if _, err := Load(xmlschema.MustLEAD(), Options{}, bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated snapshot should fail")
	}
}

func TestUserPrivateDefsSurviveSnapshot(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	alice, err := c.RegisterAttr("tuning", "WRF", 0, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterElem("nudge", "WRF", alice.ID, 2 /* DTFloat */, "alice"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(xmlschema.MustLEAD(), Options{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Reg.LookupAttr("tuning", "WRF", 0, "alice")
	if got == nil || got.ID != alice.ID || got.Owner != "alice" {
		t.Fatalf("private def after load = %+v", got)
	}
	if loaded.Reg.LookupAttr("tuning", "WRF", 0, "bob") != nil {
		t.Error("private def leaked to other users after load")
	}
}

package catalog

import (
	"fmt"
	"slices"

	"github.com/gridmeta/hybridcat/internal/bitset"
	"github.com/gridmeta/hybridcat/internal/obs"
	"github.com/gridmeta/hybridcat/internal/relstore"
)

// Plan executor. execPlan walks a compiled plan (plan.go) through the
// Figure-4 stages — probe, containment rollup, cross-criteria intersect
// — under one of two materialization strategies: compressed bitmap
// posting lists (the default) or row slices (the oracle behind
// Options.DisableBitmaps, and the per-evaluation fallback when instance
// keys overflow the bitmap packing). The stage names, histograms, trace
// spans, cache layers, and path counters are identical under both
// strategies; only what flows between the stages differs.

// instSet is a criterion's satisfied-instance collection under some
// materialization; the executor and explain renderer see cardinality
// and physical shape, the owning strategy sees through to the data.
type instSet interface {
	card() int
	shape() string // e.g. "[set: card=…]"; "" for rows
}

// setInst materializes instances as a compressed bitset of packed
// (object, seq) keys.
type setInst struct{ s *bitset.Set }

func (x setInst) card() int     { return x.s.Card() }
func (x setInst) shape() string { return fmt.Sprintf("[set: %s]", x.s.Stats()) }

// rowsInst materializes instances as [object_id, seq_id] rows.
type rowsInst struct{ rows []relstore.Row }

func (x rowsInst) card() int     { return len(x.rows) }
func (x rowsInst) shape() string { return "" }

// execStrategy is one physical materialization of the plan operators.
// probe runs one criterion's scan node (through that strategy's cache
// layer, reporting hits), rollup one containment-rollup node, and
// intersect the final cross-criteria object AND plus visibility.
type execStrategy interface {
	name() string
	probe(v *view, sc *planNode) (instSet, bool, error)
	rollup(v *view, rn *planNode, sets map[int]instSet) (instSet, error)
	intersect(v *view, q *Query, p *queryPlan, sets map[int]instSet) ([]int64, error)
}

// execPlan compiles the query and executes the plan tree under the
// strategy, annotating every plan node with its cardinality, shape, and
// cache outcome as it goes. It returns the visible matching object IDs
// ascending (row strategy: sorted; set strategy: set iteration order)
// together with the annotated plan for ExplainQuery.
func (v *view) execPlan(q *Query, key string, tr *obs.Trace, st execStrategy) ([]int64, *queryPlan, error) {
	c := v.c
	tr.Annotate("repr=" + st.name())
	if err := v.ctxErr(); err != nil {
		return nil, nil, err
	}

	// Stage 1+2: compile, then per criteria node the instances directly
	// satisfying its element predicates.
	endProbe := c.stageTimer(tr, "probe", c.obsv.stageProbe)
	p, err := v.compile(q, key)
	if err != nil {
		return nil, nil, err
	}
	sets, err := v.probeStage(p, tr, st)
	if err != nil {
		return nil, nil, err
	}
	endProbe(int64(len(p.all)))
	if err := v.ctxErr(); err != nil {
		return nil, nil, err
	}

	// Stage 3: containment rollup, children before parents (p.rollups is
	// in reverse-DFS order).
	endRollup := c.stageTimer(tr, "rollup", c.obsv.stageRollup)
	for _, rn := range p.rollups {
		rn.beforeCard = sets[rn.q.id].card()
		narrowed, err := st.rollup(v, rn, sets)
		if err != nil {
			return nil, nil, err
		}
		sets[rn.q.id] = narrowed
		rn.card = narrowed.card()
		rn.shape = narrowed.shape()
	}
	endRollup(int64(len(p.rollups)))
	if err := v.ctxErr(); err != nil {
		return nil, nil, err
	}

	// Stage 4: objects containing a satisfying instance of every
	// top-level criterion, restricted to what the owner may see.
	endIntersect := c.stageTimer(tr, "intersect", c.obsv.stageIntersect)
	visible, err := st.intersect(v, q, p, sets)
	if err != nil {
		return nil, nil, err
	}
	p.root.card = len(visible)
	endIntersect(int64(len(visible)))
	return visible, p, nil
}

// probeStage runs every scan node, fanning out across the worker pool
// when the criteria count and indexed-row volume warrant it. This is
// the one home of the fan-out decision and its instrumentation (path
// counters, per-criterion cardinality, bitmap container census) that
// the row and bitmap pipelines used to duplicate.
func (v *view) probeStage(p *queryPlan, tr *obs.Trace, st execStrategy) (map[int]instSet, error) {
	c := v.c
	workers := c.fanoutWorkers(len(p.all), v.tab(TElemData).Len())
	if workers > 1 {
		c.obsv.pathParallel.Inc()
		if tr != nil {
			tr.Annotate(fmt.Sprintf("path=parallel workers=%d", workers))
		}
	} else {
		c.obsv.pathSequential.Inc()
		tr.Annotate("path=sequential")
	}
	results := make([]instSet, len(p.all))
	err := runParallel(workers, len(p.all), func(i int) error {
		sc := p.scans[i]
		s, hit, err := st.probe(v, sc)
		if err != nil {
			return err
		}
		results[i] = s
		sc.card = s.card()
		sc.shape = s.shape()
		sc.cacheHit = hit
		c.obsv.criterionRows.Observe(int64(s.card()))
		if si, ok := s.(setInst); ok {
			cs := si.s.Stats()
			c.obsv.bitmapContainersArray.Add(uint64(cs.Array))
			c.obsv.bitmapContainersBitmap.Add(uint64(cs.Bitmap))
			c.obsv.bitmapContainersRun.Add(uint64(cs.Run))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sets := make(map[int]instSet, len(p.all))
	for i, n := range p.all {
		sets[n.id] = results[i]
	}
	return sets, nil
}

// setStrategy executes the plan on compressed bitmaps of packed
// instance keys (bitmap.go holds the set algebra).
type setStrategy struct{}

func (setStrategy) name() string { return "bitmap" }

// probe answers the scan node from the postings cache layer when
// enabled (keyed by the criterion's probeKey, stamped with the pinned
// epoch; cached sets are shared read-only), computing via scanSet on a
// miss.
func (setStrategy) probe(v *view, sc *planNode) (instSet, bool, error) {
	if v.c.caches.postings == nil {
		s, err := v.scanSet(sc)
		if err != nil {
			return nil, false, err
		}
		return setInst{s}, false, nil
	}
	hit := true
	s, err := v.c.caches.postings.GetOrCompute(v.snap.Epoch(), sc.q.probeKey, func() (*bitset.Set, error) {
		hit = false
		return v.scanSet(sc)
	})
	if err != nil {
		return nil, false, err
	}
	return setInst{s}, hit, nil
}

func (setStrategy) rollup(v *view, rn *planNode, sets map[int]instSet) (instSet, error) {
	n := rn.q
	m := make(map[int]*bitset.Set, len(n.children)+1)
	m[n.id] = sets[n.id].(setInst).s
	for _, child := range n.children {
		m[child.id] = sets[child.id].(setInst).s
	}
	s, err := v.rollupSet(n, m)
	if err != nil {
		return nil, err
	}
	return setInst{s}, nil
}

// intersect projects each top-level criterion's instance set onto
// objects, then chains bitmap ANDs from the smallest set up, recording
// each candidate set's cardinality and shape on the plan.
func (setStrategy) intersect(v *view, q *Query, p *queryPlan, sets map[int]instSet) ([]int64, error) {
	c := v.c
	objSets := make([]*bitset.Set, len(p.tops))
	for i, top := range p.tops {
		os := objectSet(sets[top.id].(setInst).s)
		c.obsv.intersectCardinality.Observe(int64(os.Card()))
		p.topObjs = append(p.topObjs, topObjects{
			id: top.id, card: os.Card(), shape: fmt.Sprintf("[set: %s]", os.Stats()),
		})
		objSets[i] = os
	}
	result := andAscending(objSets)
	ids := make([]int64, 0, result.Card())
	result.Iterate(func(k uint64) bool {
		ids = append(ids, int64(k))
		return true
	})
	return v.filterVisible(q.Owner, ids), nil
}

// rowStrategy executes the plan on materialized [object_id, seq_id]
// row slices through volcano iterators and group-by maps — the original
// row-at-a-time pipeline, kept as the correctness oracle.
type rowStrategy struct{}

func (rowStrategy) name() string { return "rows" }

// probe answers the scan node from the probe cache layer when enabled
// (same key and stamp contract as the postings layer), computing via
// scanRows on a miss. Cached row slices are shared read-only; every
// consumer builds its own cursor.
func (rowStrategy) probe(v *view, sc *planNode) (instSet, bool, error) {
	if v.c.caches.probe == nil {
		rows, err := v.scanRows(sc)
		if err != nil {
			return nil, false, err
		}
		return rowsInst{rows}, false, nil
	}
	hit := true
	rows, err := v.c.caches.probe.GetOrCompute(v.snap.Epoch(), sc.q.probeKey, func() ([]relstore.Row, error) {
		hit = false
		return v.scanRows(sc)
	})
	if err != nil {
		return nil, false, err
	}
	return rowsInst{rows}, hit, nil
}

func (rowStrategy) rollup(v *view, rn *planNode, sets map[int]instSet) (instSet, error) {
	n := rn.q
	iters := make(map[int]relstore.Iterator, len(n.children)+1)
	iters[n.id] = relstore.NewSliceIter(satisfiedCols, sets[n.id].(rowsInst).rows)
	for _, child := range n.children {
		iters[child.id] = relstore.NewSliceIter(satisfiedCols, sets[child.id].(rowsInst).rows)
	}
	it, err := v.containmentRollup(n, iters)
	if err != nil {
		return nil, err
	}
	return rowsInst{relstore.Collect(it)}, nil
}

// intersect tags each top-level criterion's rows, group-by counts
// distinct criteria per object, and keeps objects covering all of them.
func (rowStrategy) intersect(v *view, q *Query, p *queryPlan, sets map[int]instSet) ([]int64, error) {
	var tagged []relstore.Iterator
	for _, top := range p.tops {
		it := relstore.NewSliceIter(satisfiedCols, sets[top.id].(rowsInst).rows)
		tagged = append(tagged, relstore.Project(
			tagIter(it, int64(top.id)),
			[]int{0, 2}, []string{"object_id", "q_id"},
		))
	}
	counts := relstore.GroupBy(relstore.Union(tagged...), []int{0}, []relstore.AggSpec{
		{Func: relstore.AggCountDistinct, Col: 1, Name: "n_tops"},
	})
	need := int64(len(p.tops))
	hits := relstore.Filter(counts, func(r relstore.Row) bool { return r[1].I == need })

	var ids []int64
	for {
		r, ok := hits.Next()
		if !ok {
			break
		}
		ids = append(ids, r[0].I)
	}
	slices.Sort(ids)
	return v.filterVisible(q.Owner, ids), nil
}

// scanSet executes one scan node as a posting list: each child probe's
// specs stream row IDs off the B-tree into a bitset, convert to packed
// instance keys, and the per-predicate sets AND smallest-first (the set
// form of the row path's count-distinct check).
func (v *view) scanSet(sc *planNode) (*bitset.Set, error) {
	n := sc.q
	if len(n.elems) == 0 {
		// scan-all: every instance of the definition.
		attrT := v.tab(TAttrData)
		rowSet := bitset.New()
		if err := attrT.LookupEqualPostings("attr_data_by_attr", rowSet, relstore.Int(n.def.ID)); err != nil {
			return nil, err
		}
		return v.instanceSet(attrT, rowSet, nil)
	}
	sets := make([]*bitset.Set, len(sc.children))
	for k, pc := range sc.children {
		s, err := v.probeSet(pc.probe)
		if err != nil {
			return nil, err
		}
		sets[k] = s
	}
	return andAscending(sets), nil
}

// probeSet executes one compiled probe as an instance-key set. An
// or-union streams every member spec into one row-ID set before a
// single row→instance conversion (members are equality probes, so
// there is never a post-filter to thread through the union).
func (v *view) probeSet(pp *probePlan) (*bitset.Set, error) {
	elemT := v.tab(TElemData)
	rowSet := bitset.New()
	if pp.op == opOrUnion {
		for _, spec := range pp.specs {
			if err := emitSpec(elemT, spec, rowSet); err != nil {
				return nil, err
			}
		}
		return v.instanceSet(elemT, rowSet, nil)
	}
	if len(pp.specs) == 0 {
		return bitset.New(), nil
	}
	spec := pp.specs[0]
	if err := emitSpec(elemT, spec, rowSet); err != nil {
		return nil, err
	}
	return v.instanceSet(elemT, rowSet, spec.post)
}

// emitSpec streams one spec's matching row IDs into dst.
func emitSpec(t *relstore.Table, spec probeSpec, dst *bitset.Set) error {
	if spec.ranged {
		return t.LookupRangePostings(spec.index, dst, spec.lo, spec.hi)
	}
	return t.LookupEqualPostings(spec.index, dst, spec.eq...)
}

// scanRows executes one scan node as materialized rows: one probe per
// element predicate, tagged with its criterion index; instances
// satisfying all predicates have a full distinct count (the paper's
// required-element-count check).
func (v *view) scanRows(sc *planNode) ([]relstore.Row, error) {
	n := sc.q
	if len(n.elems) == 0 {
		attrT := v.tab(TAttrData)
		ids, err := attrT.LookupEqual("attr_data_by_attr", relstore.Int(n.def.ID))
		if err != nil {
			return nil, err
		}
		it := relstore.Project(relstore.ScanRowIDs(attrT, ids), []int{0, 2}, satisfiedCols)
		return relstore.Collect(it), nil
	}
	var parts []relstore.Iterator
	for k, pc := range sc.children {
		probe, err := v.probeRows(pc.probe)
		if err != nil {
			return nil, err
		}
		parts = append(parts, tagIter(probe, int64(k)))
	}
	counted := relstore.GroupBy(relstore.Union(parts...), []int{0, 1}, []relstore.AggSpec{
		{Func: relstore.AggCountDistinct, Col: 2, Name: "n_elems"},
	})
	need := int64(len(n.elems))
	ok := relstore.Filter(counted, func(r relstore.Row) bool { return r[2].I == need })
	return relstore.Collect(relstore.Project(ok, []int{0, 1}, satisfiedCols)), nil
}

// probeRows executes one compiled probe as a row iterator. An or-union
// unions its member probes and deduplicates.
func (v *view) probeRows(pp *probePlan) (relstore.Iterator, error) {
	elemT := v.tab(TElemData)
	if pp.op == opOrUnion {
		var parts []relstore.Iterator
		for _, spec := range pp.specs {
			it, err := specRows(elemT, spec)
			if err != nil {
				return nil, err
			}
			parts = append(parts, it)
		}
		return relstore.Distinct(relstore.Union(parts...)), nil
	}
	if len(pp.specs) == 0 {
		return relstore.NewSliceIter(satisfiedCols, nil), nil
	}
	return specRows(elemT, pp.specs[0])
}

// specRows executes one spec via the slice-form lookups, applying the
// residual filter, projected to [object_id, seq_id].
func specRows(t *relstore.Table, spec probeSpec) (relstore.Iterator, error) {
	var ids []int64
	var err error
	if spec.ranged {
		ids, err = t.LookupRange(spec.index, spec.lo, spec.hi)
	} else {
		ids, err = t.LookupEqual(spec.index, spec.eq...)
	}
	if err != nil {
		return nil, err
	}
	it := relstore.ScanRowIDs(t, ids)
	if spec.post != nil {
		it = relstore.Filter(it, spec.post)
	}
	return relstore.Project(it, []int{0, 2}, satisfiedCols), nil
}

package catalog

import (
	"strings"
	"testing"

	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

func dxEqQuery(dx int64) *Query {
	q := &Query{}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(dx))
	return q
}

func TestCacheHitAndMutationInvalidation(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	if !c.CachingEnabled() {
		t.Fatal("caching should default on")
	}
	first := ingestFig3(t, c)

	q := dxEqQuery(1000)
	ids, err := c.Evaluate(q)
	if err != nil || len(ids) != 1 || ids[0] != first {
		t.Fatalf("cold evaluate = %v, %v", ids, err)
	}
	before := c.CacheStats()
	ids, err = c.Evaluate(q)
	if err != nil || len(ids) != 1 || ids[0] != first {
		t.Fatalf("warm evaluate = %v, %v", ids, err)
	}
	after := c.CacheStats()
	if after.Evaluate.Hits != before.Evaluate.Hits+1 {
		t.Fatalf("warm evaluate did not hit: %+v -> %+v", before.Evaluate, after.Evaluate)
	}

	// Ingest bumps the data generation: the cached result must not be
	// served for the new state.
	second, err := c.IngestXML("scientist", fig3Variant(t, "1000"))
	if err != nil {
		t.Fatal(err)
	}
	ids, err = c.Evaluate(q)
	if err != nil || len(ids) != 2 || ids[0] != first || ids[1] != second {
		t.Fatalf("evaluate after ingest = %v, %v", ids, err)
	}

	// Delete invalidates the same way.
	if ok, err := c.Delete(first); err != nil || !ok {
		t.Fatalf("delete = %v, %v", ok, err)
	}
	ids, err = c.Evaluate(q)
	if err != nil || len(ids) != 1 || ids[0] != second {
		t.Fatalf("evaluate after delete = %v, %v", ids, err)
	}
	if st := c.CacheStats(); st.Evaluate.Stale == 0 {
		t.Fatalf("mutations should have dropped stale entries: %+v", st.Evaluate)
	}
}

func TestCacheInvalidationOnPublish(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	id, err := c.IngestXML("alice", xmlschema.Figure3Document)
	if err != nil {
		t.Fatal(err)
	}

	q := dxEqQuery(1000)
	q.Owner = "bob"
	for i := 0; i < 2; i++ { // twice, so the second answer comes from cache
		if ids, err := c.Evaluate(q); err != nil || len(ids) != 0 {
			t.Fatalf("unpublished object visible to bob: %v, %v", ids, err)
		}
	}
	if err := c.SetPublished(id, true); err != nil {
		t.Fatal(err)
	}
	if ids, err := c.Evaluate(q); err != nil || len(ids) != 1 || ids[0] != id {
		t.Fatalf("published object not visible to bob: %v, %v", ids, err)
	}
	if err := c.SetPublished(id, false); err != nil {
		t.Fatal(err)
	}
	if ids, err := c.Evaluate(q); err != nil || len(ids) != 0 {
		t.Fatalf("unpublish not reflected: %v, %v", ids, err)
	}
}

func TestRegistrationInvalidatesResolveCache(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	ingestFig3(t, c)

	q := dxEqQuery(1000)
	if _, err := c.Evaluate(q); err != nil {
		t.Fatal(err)
	}
	// A data mutation leaves the resolve layer warm (it is stamped by the
	// registry generation, not the data generation): re-evaluating after
	// an ingest misses the evaluate cache but reuses the resolution.
	if _, err := c.IngestXML("scientist", fig3Variant(t, "4242")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Evaluate(q); err != nil {
		t.Fatal(err)
	}
	before := c.CacheStats()
	if before.Resolve.Hits == 0 {
		t.Fatalf("resolve cache never hit: %+v", before.Resolve)
	}

	// Dynamic registration bumps the registry generation; the next
	// evaluation must drop and recompute its cached resolution (a newly
	// registered user-private definition may shadow the admin one).
	if _, err := c.RegisterAttr("extra", "SRC", 0, ""); err != nil {
		t.Fatal(err)
	}
	if ids, err := c.Evaluate(q); err != nil || len(ids) != 1 {
		t.Fatalf("evaluate after registration = %v, %v", ids, err)
	}
	after := c.CacheStats()
	if after.Resolve.Stale != before.Resolve.Stale+1 {
		t.Fatalf("registration did not invalidate resolve cache: %+v -> %+v", before.Resolve, after.Resolve)
	}
	if after.RegistryGeneration <= before.RegistryGeneration {
		t.Fatalf("registry generation did not advance: %d -> %d", before.RegistryGeneration, after.RegistryGeneration)
	}

	// Resolution errors must not be cached: an unknown criterion resolves
	// once its definition is registered.
	uq := &Query{}
	uq.Attr("later", "SRC")
	if _, err := c.Evaluate(uq); err == nil {
		t.Fatal("unknown attribute should fail to resolve")
	}
	if _, err := c.RegisterAttr("later", "SRC", 0, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Evaluate(uq); err != nil {
		t.Fatalf("resolve error was cached past registration: %v", err)
	}
}

func TestResponseCacheServesCurrentDocuments(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	id := ingestFig3(t, c)

	q := dxEqQuery(1000)
	resp1, err := c.Search(q)
	if err != nil || len(resp1) != 1 {
		t.Fatalf("cold search = %v, %v", resp1, err)
	}
	before := c.CacheStats()
	resp2, err := c.Search(q)
	if err != nil || len(resp2) != 1 || resp2[0].XML != resp1[0].XML {
		t.Fatalf("warm search differs: %v, %v", resp2, err)
	}
	after := c.CacheStats()
	if after.Response.Hits != before.Response.Hits+1 {
		t.Fatalf("warm search did not hit response cache: %+v -> %+v", before.Response, after.Response)
	}

	// A missing object is never cached as an empty document: once it is
	// ingested, the same ID fetches.
	missing := id + 100
	if _, err := c.FetchDocument(missing); err == nil {
		t.Fatal("fetch of missing object should fail")
	}
	for i := int64(0); i < 100; i++ {
		if _, err := c.IngestXML("scientist", fig3Variant(t, "2000")); err != nil {
			t.Fatal(err)
		}
	}
	doc, err := c.FetchDocument(missing)
	if err != nil {
		t.Fatalf("fetch after ingest: %v", err)
	}
	if doc.ChildText("idinfo") == "" && len(doc.Children) == 0 {
		t.Fatal("fetched document is empty")
	}
}

func TestCacheOffMatchesCacheOn(t *testing.T) {
	cached := newLEADCatalog(t, Options{})
	plain := newLEADCatalog(t, Options{DisableCache: true})
	if plain.CachingEnabled() {
		t.Fatal("DisableCache ignored")
	}
	if st := plain.CacheStats(); st.Enabled || st.Evaluate.Hits != 0 {
		t.Fatalf("disabled cache stats = %+v", st)
	}
	neg := newLEADCatalog(t, Options{CacheSize: -1})
	if neg.CachingEnabled() {
		t.Fatal("negative CacheSize should disable caching")
	}

	docs := []string{
		xmlschema.Figure3Document,
		fig3Variant(t, "2000"),
		fig3Variant(t, "1000"),
		fig3Variant(t, "500"),
	}
	for _, d := range docs {
		if _, err := cached.IngestXML("scientist", d); err != nil {
			t.Fatal(err)
		}
		if _, err := plain.IngestXML("scientist", d); err != nil {
			t.Fatal(err)
		}
	}
	queries := []*Query{dxEqQuery(1000), dxEqQuery(2000), dxEqQuery(500), dxEqQuery(9999)}
	tq := &Query{}
	tq.Attr("theme", "").AddElem("themekey", "", relstore.OpEq, relstore.Str("convective_precipitation_amount"))
	queries = append(queries, tq)
	// A compound query sharing the dx=1000 criterion exercises the probe
	// layer: its grid node reuses the probe memoized by dxEqQuery(1000).
	cq := dxEqQuery(1000)
	cq.Attr("theme", "").AddElem("themekt", "", relstore.OpEq, relstore.Str("CF NetCDF"))
	queries = append(queries, cq)
	for round := 0; round < 3; round++ { // repeat so later rounds are warm
		if round == 2 {
			// A lockstep mutation bumps the data generation: evaluate
			// entries go stale while resolutions stay warm, and both
			// catalogs must still agree.
			for _, cat := range []*Catalog{cached, plain} {
				if _, err := cat.IngestXML("scientist", fig3Variant(t, "7777")); err != nil {
					t.Fatal(err)
				}
			}
		}
		for qi, q := range queries {
			want, err1 := plain.Evaluate(q)
			got, err2 := cached.Evaluate(q)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("round %d query %d: err %v vs %v", round, qi, err1, err2)
			}
			if len(want) != len(got) {
				t.Fatalf("round %d query %d: ids %v vs %v", round, qi, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("round %d query %d: ids %v vs %v", round, qi, got, want)
				}
			}
			wr, _ := plain.Search(q)
			gr, _ := cached.Search(q)
			if len(wr) != len(gr) {
				t.Fatalf("round %d query %d: responses %d vs %d", round, qi, len(gr), len(wr))
			}
			for i := range wr {
				if wr[i].XML != gr[i].XML {
					t.Fatalf("round %d query %d: response %d differs", round, qi, i)
				}
			}
		}
	}
	// The default bitmap pipeline memoizes criterion probes in the
	// postings layer; the row-slice probe layer only sees traffic with
	// DisableBitmaps.
	if st := cached.CacheStats(); st.Evaluate.Hits == 0 || st.Postings.Hits == 0 || st.Response.Hits == 0 {
		t.Fatalf("warm rounds should have hit all layers: %+v", st)
	}
}

func TestCacheEvictionUnderSmallCapacity(t *testing.T) {
	c := newLEADCatalog(t, Options{CacheSize: 4})
	ingestFig3(t, c)
	for dx := int64(1); dx <= 40; dx++ {
		if _, err := c.Evaluate(dxEqQuery(dx * 100)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.CacheStats()
	if st.Evaluate.Evictions == 0 {
		t.Fatalf("40 distinct queries through capacity 4 should evict: %+v", st.Evaluate)
	}
	if got := st.Evaluate.Entries; got > 4 {
		t.Fatalf("entries %d exceed capacity", got)
	}
}

func TestQueryCacheKeyDistinguishesQueries(t *testing.T) {
	mk := func(f func(q *Query)) string {
		q := &Query{}
		f(q)
		return queryCacheKey(q)
	}
	keys := []string{
		mk(func(q *Query) { q.Attr("grid", "ARPS") }),
		mk(func(q *Query) { q.Owner = "alice"; q.Attr("grid", "ARPS") }),
		mk(func(q *Query) { q.Attr("grid", "") }),
		mk(func(q *Query) { q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(5)) }),
		mk(func(q *Query) { q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpEq, relstore.Float(5)) }),
		mk(func(q *Query) { q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpEq, relstore.Str("5")) }),
		mk(func(q *Query) { q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpGe, relstore.Int(5)) }),
		mk(func(q *Query) {
			a := q.Attr("grid", "ARPS")
			a.AddSub(&AttrCriteria{Name: "grid-stretching", Source: "ARPS"})
		}),
		// Sub-criterion vs a sibling element with the same name must not
		// collide, and length prefixes keep adjacent fields apart.
		mk(func(q *Query) { q.Attr("ab", "c") }),
		mk(func(q *Query) { q.Attr("a", "bc") }),
	}
	seen := map[string]int{}
	for i, k := range keys {
		if j, dup := seen[k]; dup {
			t.Fatalf("queries %d and %d share key %q", j, i, k)
		}
		seen[k] = i
	}
	// Same query, same key.
	if a, b := mk(func(q *Query) { q.Attr("grid", "ARPS") }), keys[0]; a != b {
		t.Fatalf("identical queries key differently: %q vs %q", a, b)
	}
}

// TestCachedDocumentsStayWellFormed guards the response cache against
// serving a partially built document: every cached fetch must still
// parse and match the DOM of the ingested original.
func TestCachedDocumentsStayWellFormed(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	id := ingestFig3(t, c)
	want, _ := xmldoc.ParseString(xmlschema.Figure3Document)
	for i := 0; i < 3; i++ {
		resp, err := c.BuildResponse([]int64{id})
		if err != nil || len(resp) != 1 {
			t.Fatalf("build %d: %v, %v", i, resp, err)
		}
		got, err := xmldoc.ParseString(resp[0].XML)
		if err != nil {
			t.Fatalf("build %d not well-formed: %v", i, err)
		}
		if !xmldoc.Equal(want, got) {
			t.Fatalf("build %d differs: %s", i, xmldoc.Diff(want, got))
		}
		if !strings.Contains(resp[0].XML, "<LEADresource>") {
			t.Fatalf("build %d lost root tag", i)
		}
	}
}

package catalog

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// Snapshot persistence: Save serializes the catalog's definitions and
// data rows; Load rebuilds a catalog over the same schema. The schema
// itself is code (or DSL) and travels separately — Load verifies the
// provided schema matches by name and ordering signature, then replays
// the rows through the normal insert path so all indexes rebuild.

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// dataTables are the tables whose rows a snapshot carries; definition and
// schema tables are re-derived at load.
var dataTables = []string{TObjects, TAttrData, TElemData, TSubAttrs, TClobs, TCollections, TMembers}

type snapshot struct {
	Version    int
	SchemaName string
	SchemaSig  string
	Attrs      []core.AttrDef
	Elems      []core.ElemDef
	Tables     map[string][]relstore.Row
}

// schemaSig fingerprints the global ordering so Load rejects a
// mismatched schema.
func schemaSig(s *xmlschema.Schema) string {
	sig := ""
	for _, n := range s.Ordered {
		sig += fmt.Sprintf("%s/%d/%d;", n.Tag, n.Order, n.LastChild)
	}
	return sig
}

// Save writes a snapshot of the catalog (definitions plus all object,
// shredded, CLOB, and collection rows).
func (c *Catalog) Save(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	snap := snapshot{
		Version:    snapshotVersion,
		SchemaName: c.Schema.Name,
		SchemaSig:  schemaSig(c.Schema),
		Tables:     make(map[string][]relstore.Row, len(dataTables)),
	}
	for _, d := range c.Reg.Attrs() {
		snap.Attrs = append(snap.Attrs, *d)
	}
	for _, d := range c.Reg.Elems() {
		snap.Elems = append(snap.Elems, *d)
	}
	for _, name := range dataTables {
		t := c.DB.MustTable(name)
		rows := make([]relstore.Row, 0, t.Len())
		t.Scan(func(_ int64, r relstore.Row) bool {
			rows = append(rows, r)
			return true
		})
		snap.Tables[name] = rows
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load rebuilds a catalog from a snapshot over the given schema. The
// schema must match the one the snapshot was written against.
func Load(schema *xmlschema.Schema, opts Options, r io.Reader) (*Catalog, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("catalog: corrupt snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("catalog: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if snap.SchemaName != schema.Name || snap.SchemaSig != schemaSig(schema) {
		return nil, fmt.Errorf("catalog: snapshot was written against schema %q with a different ordering", snap.SchemaName)
	}
	c, err := Open(schema, opts)
	if err != nil {
		return nil, err
	}
	if err := c.Reg.Restore(snap.Attrs, snap.Elems); err != nil {
		return nil, err
	}
	// Refresh the mirrored definition tables (Open seeded structural
	// rows; drop and re-mirror so IDs match the restored registry).
	for _, name := range []string{TAttrDef, TElemDef} {
		t := c.DB.MustTable(name)
		var ids []int64
		t.Scan(func(id int64, _ relstore.Row) bool {
			ids = append(ids, id)
			return true
		})
		for _, id := range ids {
			t.Delete(id)
		}
	}
	if err := c.syncDefTables(); err != nil {
		return nil, err
	}
	// Replay data rows through the normal insert path so every index
	// rebuilds, and advance the auto-ID counters past restored IDs.
	for _, name := range dataTables {
		t := c.DB.MustTable(name)
		for _, row := range snap.Tables[name] {
			if _, err := t.Insert(row); err != nil {
				return nil, fmt.Errorf("catalog: restoring %s: %w", name, err)
			}
		}
	}
	maxID := func(name string, col int) int64 {
		var m int64
		c.DB.MustTable(name).Scan(func(_ int64, r relstore.Row) bool {
			if r[col].I > m {
				m = r[col].I
			}
			return true
		})
		return m
	}
	c.DB.MustTable(TObjects).EnsureAutoID(maxID(TObjects, 0))
	c.DB.MustTable(TCollections).EnsureAutoID(maxID(TCollections, 0))
	return c, nil
}

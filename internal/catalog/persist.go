package catalog

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/faultio"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// Snapshot persistence: Save serializes the catalog's definitions and
// data rows; Load rebuilds a catalog over the same schema. The schema
// itself is code (or DSL) and travels separately — Load verifies the
// provided schema matches by name and ordering signature, then replays
// the rows through the normal insert path so all indexes rebuild.
//
// On-disk container (version 2):
//
//	magic    8 bytes  "HCSNAP02"
//	length   u64      gob payload length
//	crc      u32      CRC-32C of the gob payload
//	payload  gob-encoded snapshot struct
//
// The header makes truncation and bit rot loud: Load verifies the length
// and checksum before decoding, so a torn or corrupted snapshot returns
// an error instead of half-loading. SaveFile writes the container
// atomically (temp file + fsync + rename), the checkpoint protocol's
// first half; see durable.go for the WAL side.

const (
	snapshotMagic = "HCSNAP02"
	// snapshotVersion guards the gob payload format. Version 2 added the
	// checksummed container and the WalSeq watermark.
	snapshotVersion = 2
	// maxSnapshotBytes bounds the decoded payload so a corrupt length
	// field cannot drive a giant allocation.
	maxSnapshotBytes = int64(1) << 40
)

// dataTables are the tables whose rows a snapshot carries; definition and
// schema tables are re-derived at load.
var dataTables = []string{TObjects, TAttrData, TElemData, TSubAttrs, TClobs, TCollections, TMembers}

type snapshot struct {
	Version    int
	SchemaName string
	SchemaSig  string
	// WalSeq is the write-ahead log high-water mark whose effects the
	// snapshot contains; recovery replays only records above it.
	WalSeq uint64
	Attrs  []core.AttrDef
	Elems  []core.ElemDef
	Tables map[string][]relstore.Row
}

// schemaSig fingerprints the global ordering so Load rejects a
// mismatched schema.
func schemaSig(s *xmlschema.Schema) string {
	sig := ""
	for _, n := range s.Ordered {
		sig += fmt.Sprintf("%s/%d/%d;", n.Tag, n.Order, n.LastChild)
	}
	return sig
}

// Save writes a snapshot of the catalog (definitions plus all object,
// shredded, CLOB, and collection rows) in the checksummed container
// format.
func (c *Catalog) Save(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.saveLocked(w)
}

// saveLocked is Save with c.mu already held (read or write).
func (c *Catalog) saveLocked(w io.Writer) error {
	// The watermark is the PUBLISHED sequence, not the log's LastSeq: in
	// group-commit mode the log may hold records whose staged versions
	// are not yet visible, and the snapshot's tables do not contain
	// them — claiming their sequences would make recovery skip them.
	var seq uint64
	if c.dur != nil {
		seq = c.dur.publishedSeq
	}
	snap := snapshot{
		Version:    snapshotVersion,
		SchemaName: c.Schema.Name,
		SchemaSig:  schemaSig(c.Schema),
		WalSeq:     seq,
		Tables:     make(map[string][]relstore.Row, len(dataTables)),
	}
	for _, d := range c.Reg.Attrs() {
		snap.Attrs = append(snap.Attrs, *d)
	}
	for _, d := range c.Reg.Elems() {
		snap.Elems = append(snap.Elems, *d)
	}
	for _, name := range dataTables {
		t := c.DB.MustTable(name)
		rows := make([]relstore.Row, 0, t.Len())
		t.Scan(func(_ int64, r relstore.Row) bool {
			rows = append(rows, r)
			return true
		})
		snap.Tables[name] = rows
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&snap); err != nil {
		return err
	}
	var header [20]byte
	copy(header[:8], snapshotMagic)
	binary.LittleEndian.PutUint64(header[8:], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(header[16:], crc32.Checksum(payload.Bytes(), snapshotCRC))
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// Load rebuilds a catalog from a snapshot over the given schema. The
// schema must match the one the snapshot was written against. Truncated
// or corrupted snapshot bytes return an error; nothing half-loads.
func Load(schema *xmlschema.Schema, opts Options, r io.Reader) (*Catalog, error) {
	c, _, err := loadSnapshot(schema, opts, r)
	return c, err
}

// loadSnapshot is Load exposing the snapshot's WAL watermark, which
// recovery needs to know where replay starts.
func loadSnapshot(schema *xmlschema.Schema, opts Options, r io.Reader) (*Catalog, uint64, error) {
	snap, err := readSnapshot(r)
	if err != nil {
		return nil, 0, err
	}
	if snap.Version != snapshotVersion {
		return nil, 0, fmt.Errorf("catalog: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if snap.SchemaName != schema.Name || snap.SchemaSig != schemaSig(schema) {
		return nil, 0, fmt.Errorf("catalog: snapshot was written against schema %q with a different ordering", snap.SchemaName)
	}
	c, err := Open(schema, opts)
	if err != nil {
		return nil, 0, err
	}
	if err := c.Reg.Restore(snap.Attrs, snap.Elems); err != nil {
		return nil, 0, err
	}
	// The whole restore runs as one relstore transaction: one published
	// version, not a copy-on-write commit per restored row.
	err = c.withTx(func() error {
		// Refresh the mirrored definition tables (Open seeded structural
		// rows; drop and re-mirror so IDs match the restored registry).
		for _, name := range []string{TAttrDef, TElemDef} {
			t := c.wtab(name)
			var ids []int64
			t.Scan(func(id int64, _ relstore.Row) bool {
				ids = append(ids, id)
				return true
			})
			for _, id := range ids {
				t.Delete(id)
			}
		}
		if err := c.syncDefTables(); err != nil {
			return err
		}
		// Replay data rows through the normal insert path so every index
		// rebuilds.
		for _, name := range dataTables {
			t := c.wtab(name)
			for _, row := range snap.Tables[name] {
				if _, err := t.Insert(row); err != nil {
					return fmt.Errorf("catalog: restoring %s: %w", name, err)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	// Advance the auto-ID counters past restored IDs.
	c.fixAutoIDs()
	return c, snap.WalSeq, nil
}

// readSnapshot validates the container header and decodes the payload.
func readSnapshot(r io.Reader) (*snapshot, error) {
	var header [20]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("catalog: corrupt snapshot: short header: %w", err)
	}
	if string(header[:8]) != snapshotMagic {
		return nil, fmt.Errorf("catalog: corrupt snapshot: bad magic %q", header[:8])
	}
	length := binary.LittleEndian.Uint64(header[8:])
	sum := binary.LittleEndian.Uint32(header[16:])
	if int64(length) < 0 || int64(length) > maxSnapshotBytes {
		return nil, fmt.Errorf("catalog: corrupt snapshot: implausible payload length %d", length)
	}
	// The declared length is unverified input: read incrementally rather
	// than allocating it up front, so a rotted length field costs at most
	// the bytes actually present before EOF.
	var payload bytes.Buffer
	if length < 1<<20 {
		payload.Grow(int(length))
	}
	if n, err := io.CopyN(&payload, r, int64(length)); err != nil {
		return nil, fmt.Errorf("catalog: corrupt snapshot: truncated payload (%d of %d bytes): %w", n, length, err)
	}
	if crc32.Checksum(payload.Bytes(), snapshotCRC) != sum {
		return nil, fmt.Errorf("catalog: corrupt snapshot: checksum mismatch")
	}
	var snap snapshot
	if err := gob.NewDecoder(&payload).Decode(&snap); err != nil {
		return nil, fmt.Errorf("catalog: corrupt snapshot: %w", err)
	}
	return &snap, nil
}

// fixAutoIDs advances the auto-ID counters past the highest restored
// IDs. The caller holds no locks the tables care about (recovery is
// single-goroutine).
func (c *Catalog) fixAutoIDs() {
	maxID := func(name string, col int) int64 {
		var m int64
		c.DB.MustTable(name).Scan(func(_ int64, r relstore.Row) bool {
			if r[col].I > m {
				m = r[col].I
			}
			return true
		})
		return m
	}
	c.DB.MustTable(TObjects).EnsureAutoID(maxID(TObjects, 0))
	c.DB.MustTable(TCollections).EnsureAutoID(maxID(TCollections, 0))
}

// SaveFile atomically writes a snapshot to path: the container is
// written to path+".tmp", synced to stable storage, and renamed over
// path, so a crash at any instant leaves either the old snapshot or the
// new one — never a torn file. A nil fs uses the real filesystem.
func (c *Catalog) SaveFile(fs faultio.FS, path string) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.saveFileLocked(fs, path)
}

// saveFileLocked is SaveFile with c.mu already held (read or write).
func (c *Catalog) saveFileLocked(fs faultio.FS, path string) error {
	if fs == nil {
		fs = faultio.OS{}
	}
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	err = c.saveLocked(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	return fs.Rename(tmp, path)
}

// LoadFile rebuilds a catalog from a snapshot file written by SaveFile.
// A nil fs uses the real filesystem.
func LoadFile(schema *xmlschema.Schema, opts Options, fs faultio.FS, path string) (*Catalog, error) {
	if fs == nil {
		fs = faultio.OS{}
	}
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(schema, opts, f)
}

package catalog

import (
	"bytes"
	"testing"

	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// privacyFixture ingests one object per owner; none published yet.
func privacyFixture(t *testing.T) (*Catalog, int64, int64) {
	t.Helper()
	c := newLEADCatalog(t, Options{})
	aliceObj, err := c.IngestXML("alice", fig3Variant(t, "1000"))
	if err != nil {
		t.Fatal(err)
	}
	bobObj, err := c.IngestXML("bob", fig3Variant(t, "1000"))
	if err != nil {
		t.Fatal(err)
	}
	return c, aliceObj, bobObj
}

func dxQuery(owner string) *Query {
	q := &Query{Owner: owner}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(1000))
	return q
}

func TestUnpublishedObjectsArePrivate(t *testing.T) {
	c, aliceObj, bobObj := privacyFixture(t)

	// Each owner sees only their own unpublished object.
	ids, err := c.Evaluate(dxQuery("alice"))
	if err != nil || len(ids) != 1 || ids[0] != aliceObj {
		t.Fatalf("alice sees %v, %v", ids, err)
	}
	ids, _ = c.Evaluate(dxQuery("bob"))
	if len(ids) != 1 || ids[0] != bobObj {
		t.Fatalf("bob sees %v", ids)
	}
	// A third user sees nothing.
	ids, _ = c.Evaluate(dxQuery("carol"))
	if len(ids) != 0 {
		t.Fatalf("carol sees %v", ids)
	}
	// The superuser (empty owner) sees everything.
	ids, _ = c.Evaluate(dxQuery(""))
	if len(ids) != 2 {
		t.Fatalf("superuser sees %v", ids)
	}
}

func TestPublishingMakesObjectsVisible(t *testing.T) {
	c, aliceObj, bobObj := privacyFixture(t)
	if err := c.SetPublished(aliceObj, true); err != nil {
		t.Fatal(err)
	}
	ids, _ := c.Evaluate(dxQuery("carol"))
	if len(ids) != 1 || ids[0] != aliceObj {
		t.Fatalf("carol sees %v after publish", ids)
	}
	ids, _ = c.Evaluate(dxQuery("bob"))
	if len(ids) != 2 {
		t.Fatalf("bob sees %v (own + published)", ids)
	}
	// Unpublish reverses it.
	if err := c.SetPublished(aliceObj, false); err != nil {
		t.Fatal(err)
	}
	ids, _ = c.Evaluate(dxQuery("carol"))
	if len(ids) != 0 {
		t.Fatalf("carol sees %v after unpublish", ids)
	}
	// Objects listing reflects the flag.
	for _, o := range c.Objects() {
		if o.ID == aliceObj && o.Published {
			t.Error("published flag should be cleared")
		}
		_ = bobObj
	}
	// Missing object errors.
	if err := c.SetPublished(999, true); err == nil {
		t.Error("publishing a missing object should fail")
	}
}

func TestPrivacySurvivesSnapshot(t *testing.T) {
	c, aliceObj, _ := privacyFixture(t)
	if err := c.SetPublished(aliceObj, true); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(xmlschema.MustLEAD(), Options{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := loaded.Evaluate(dxQuery("carol"))
	if len(ids) != 1 || ids[0] != aliceObj {
		t.Fatalf("carol sees %v after reload", ids)
	}
	ids, _ = loaded.Evaluate(dxQuery("bob"))
	if len(ids) != 2 {
		t.Fatalf("bob sees %v after reload", ids)
	}
}

func TestPrivacyAppliesThroughSearchAndContext(t *testing.T) {
	c, aliceObj, bobObj := privacyFixture(t)
	resp, err := c.Search(dxQuery("alice"))
	if err != nil || len(resp) != 1 || resp[0].ObjectID != aliceObj {
		t.Fatalf("search = %+v, %v", resp, err)
	}
	// Context-scoped queries filter too.
	coll, err := c.CreateCollection("shared", "alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddToCollection(coll, aliceObj); err != nil {
		t.Fatal(err)
	}
	if err := c.AddToCollection(coll, bobObj); err != nil {
		t.Fatal(err)
	}
	ids, err := c.EvaluateInContext(coll, dxQuery("alice"))
	if err != nil || len(ids) != 1 || ids[0] != aliceObj {
		t.Fatalf("context query = %v, %v", ids, err)
	}
}

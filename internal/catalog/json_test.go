package catalog

import (
	"strings"
	"testing"

	"github.com/gridmeta/hybridcat/internal/relstore"
)

func TestParseQueryJSON(t *testing.T) {
	data := []byte(`{
	  "owner": "alice",
	  "attrs": [{
	    "name": "grid", "source": "ARPS",
	    "elems": [{"name": "dx", "source": "ARPS", "op": ">=", "value": 1000},
	              {"name": "note", "op": "=", "value": "coarse"}],
	    "subs": [{"name": "grid-stretching", "source": "ARPS",
	              "elems": [{"name": "dzmin", "source": "ARPS", "op": "=", "value": 100.5}]}]
	  }, {"name": "theme", "elems": [{"name": "themekt", "op": "=", "value": "CF"}]}]
	}`)
	q, err := ParseQueryJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.Owner != "alice" || len(q.Attrs) != 2 {
		t.Fatalf("query = %+v", q)
	}
	g := q.Attrs[0]
	if g.Name != "grid" || len(g.Elems) != 2 || len(g.Subs) != 1 {
		t.Fatalf("grid = %+v", g)
	}
	if g.Elems[0].Op != relstore.OpGe || g.Elems[0].Value.K != relstore.KInt || g.Elems[0].Value.I != 1000 {
		t.Errorf("dx pred = %+v", g.Elems[0])
	}
	if g.Elems[1].Value.K != relstore.KString {
		t.Errorf("note pred = %+v", g.Elems[1])
	}
	if g.Subs[0].Elems[0].Value.K != relstore.KFloat {
		t.Errorf("dzmin pred = %+v", g.Subs[0].Elems[0])
	}
}

func TestParseQueryJSONErrors(t *testing.T) {
	bad := []string{
		``,
		`{}`,
		`{"attrs": []}`,
		`{"attrs": [{"source": "x"}]}`,
		`{"attrs": [{"name": "a", "elems": [{"name": "e", "op": "~~", "value": 1}]}]}`,
		`{"attrs": [{"name": "a", "elems": [{"name": "e", "op": "="}]}]}`,
		`{"attrs": [{"name": "a", "elems": [{"name": "e", "op": "=", "value": [1,2]}]}]}`,
	}
	for _, s := range bad {
		if _, err := ParseQueryJSON([]byte(s)); err == nil {
			t.Errorf("ParseQueryJSON(%s) should fail", s)
		}
	}
}

func TestQueryJSONRoundTrip(t *testing.T) {
	q := &Query{Owner: "bob"}
	g := q.Attr("grid", "ARPS")
	g.AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(1000))
	g.AddElem("label", "", relstore.OpNe, relstore.Str("x"))
	sub := &AttrCriteria{Name: "s", Source: "ARPS"}
	sub.AddElem("v", "ARPS", relstore.OpLt, relstore.Float(2.5))
	g.AddSub(sub)

	data, err := MarshalQueryJSON(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"dx"`) {
		t.Errorf("marshal output: %s", data)
	}
	back, err := ParseQueryJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := MarshalQueryJSON(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(d2) {
		t.Errorf("round trip differs:\n%s\nvs\n%s", data, d2)
	}
}

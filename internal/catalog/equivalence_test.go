// The equivalence suite lives in an external test package so it can use
// the baseline package's DOM oracle (baseline imports catalog, so an
// internal test would cycle).
package catalog_test

import (
	"fmt"
	"testing"

	"github.com/gridmeta/hybridcat/internal/baseline"
	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/ontology"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/workload"
)

// TestParallelSequentialOracleEquivalence proves the fan-out and the
// set representation change no results: for 200 seeded workload
// queries — point, range, nested, structural theme, multi-criteria,
// and ontology-expanded OneOf — a catalog forced onto the parallel
// path, a catalog forced sequential (both on the default bitmap
// posting-list pipeline), a catalog forced onto the row-at-a-time
// oracle path (DisableBitmaps), and the DOM oracle must agree exactly,
// and containment-scoped context queries must agree as well.
func TestParallelSequentialOracleEquivalence(t *testing.T) {
	cfg := workload.Default()
	cfg.Docs = 120
	g := workload.New(cfg)
	corpus := g.Corpus()

	open := func(opts catalog.Options) *catalog.Catalog {
		t.Helper()
		c, err := catalog.Open(g.Schema, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.RegisterDefinitions(c); err != nil {
			t.Fatal(err)
		}
		for i, d := range corpus {
			id, err := c.Ingest("lab", d)
			if err != nil {
				t.Fatalf("doc %d: %v", i, err)
			}
			if id != int64(i+1) {
				t.Fatalf("doc %d got object ID %d", i, id)
			}
		}
		return c
	}
	// Forced parallel: fan out even though the corpus is small, with more
	// workers than this machine has cores.
	par := open(catalog.Options{QueryWorkers: 8, ParallelRowThreshold: -1})
	// Forced sequential: the pre-fan-out code path.
	seq := open(catalog.Options{QueryWorkers: 1})
	// Row-at-a-time oracle path: bitmaps off, volcano iterators between
	// the Figure-4 stages.
	rows := open(catalog.Options{DisableBitmaps: true})

	ont, err := ontology.Parse(ontology.CFKeywords)
	if err != nil {
		t.Fatal(err)
	}
	broadTerms := []string{"precipitation", "pressure", "wind", "temperature"}

	type testCase struct {
		name string
		q    *catalog.Query
	}
	var cases []testCase
	for i := 0; len(cases) < 200; i++ {
		switch i % 6 {
		case 0:
			cases = append(cases, testCase{fmt.Sprintf("point-%d", i), g.PointQuery(i, i, i)})
		case 1:
			frac := 0.2 + float64(i%4)*0.2
			cases = append(cases, testCase{fmt.Sprintf("range-%d", i), g.RangeQuery(i, i+1, frac)})
		case 2:
			cases = append(cases, testCase{fmt.Sprintf("nested-%d", i), g.NestedQuery(i, i, 1+i%2)})
		case 3:
			cases = append(cases, testCase{fmt.Sprintf("theme-%d", i), g.ThemeQuery(i)})
		case 4:
			cases = append(cases, testCase{fmt.Sprintf("multi-%d", i), g.MultiQuery(i, 2+i%2)})
		case 5:
			// Equality on a broad term, widened by the ontology into a
			// OneOf over its narrower closure.
			q := &catalog.Query{}
			q.Attr("theme", "").AddElem("themekey", "", relstore.OpEq,
				relstore.Str(broadTerms[i%len(broadTerms)]))
			expanded := ontology.Expand(ont, q)
			if len(expanded.Attrs[0].Elems[0].OneOf) == 0 {
				t.Fatalf("case %d: ontology expansion produced no OneOf", i)
			}
			cases = append(cases, testCase{fmt.Sprintf("oneof-%d", i), expanded})
		}
	}

	oracle := func(q *catalog.Query) []int64 {
		var ids []int64
		for i, d := range corpus {
			if baseline.DocMatches(g.Schema, d, q) {
				ids = append(ids, int64(i+1))
			}
		}
		return ids
	}

	nonEmpty := 0
	for _, tc := range cases {
		want := oracle(tc.q)
		pids, err := par.Evaluate(tc.q)
		if err != nil {
			t.Fatalf("%s: parallel evaluate: %v", tc.name, err)
		}
		sids, err := seq.Evaluate(tc.q)
		if err != nil {
			t.Fatalf("%s: sequential evaluate: %v", tc.name, err)
		}
		rids, err := rows.Evaluate(tc.q)
		if err != nil {
			t.Fatalf("%s: row-path evaluate: %v", tc.name, err)
		}
		if !equalIDs(pids, sids) {
			t.Errorf("%s: parallel %v != sequential %v", tc.name, pids, sids)
		}
		if !equalIDs(pids, rids) {
			t.Errorf("%s: bitmap %v != row path %v", tc.name, pids, rids)
		}
		if !equalIDs(pids, want) {
			t.Errorf("%s: catalog %v != DOM oracle %v", tc.name, pids, want)
		}
		if len(want) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < len(cases)/4 {
		t.Fatalf("only %d/%d queries matched anything — workload too sparse to prove equivalence", nonEmpty, len(cases))
	}

	// Search must agree too: the parallel chunked response builder and
	// the sequential one must produce identical XML for the same query.
	for _, tc := range cases[:24] {
		presp, err := par.Search(tc.q)
		if err != nil {
			t.Fatalf("%s: parallel search: %v", tc.name, err)
		}
		sresp, err := seq.Search(tc.q)
		if err != nil {
			t.Fatalf("%s: sequential search: %v", tc.name, err)
		}
		if len(presp) != len(sresp) {
			t.Fatalf("%s: search sizes diverge: %d vs %d", tc.name, len(presp), len(sresp))
		}
		for i := range presp {
			if presp[i].ObjectID != sresp[i].ObjectID || presp[i].XML != sresp[i].XML {
				t.Errorf("%s: search response %d diverges between parallel and sequential", tc.name, i)
			}
		}
	}

	// Containment scope: identical collection trees on both catalogs,
	// then context-scoped evaluation must equal oracle ∩ scope.
	scope := map[int64]bool{}
	var rootID int64
	for _, c := range []*catalog.Catalog{par, seq, rows} {
		root, err := c.CreateCollection("experiment", "lab", 0)
		if err != nil {
			t.Fatal(err)
		}
		child, err := c.CreateCollection("run-1", "lab", root)
		if err != nil {
			t.Fatal(err)
		}
		rootID = root
		for i := range corpus {
			id := int64(i + 1)
			switch {
			case i%3 == 0:
				if err := c.AddToCollection(root, id); err != nil {
					t.Fatal(err)
				}
				scope[id] = true
			case i%3 == 1:
				if err := c.AddToCollection(child, id); err != nil {
					t.Fatal(err)
				}
				scope[id] = true
			}
		}
	}
	for _, tc := range cases[:48] {
		var scopedWant []int64
		for _, id := range oracle(tc.q) {
			if scope[id] {
				scopedWant = append(scopedWant, id)
			}
		}
		pids, err := par.EvaluateInContext(rootID, tc.q)
		if err != nil {
			t.Fatalf("%s: parallel context evaluate: %v", tc.name, err)
		}
		sids, err := seq.EvaluateInContext(rootID, tc.q)
		if err != nil {
			t.Fatalf("%s: sequential context evaluate: %v", tc.name, err)
		}
		rids, err := rows.EvaluateInContext(rootID, tc.q)
		if err != nil {
			t.Fatalf("%s: row-path context evaluate: %v", tc.name, err)
		}
		if !equalIDs(pids, sids) {
			t.Errorf("%s: scoped parallel %v != sequential %v", tc.name, pids, sids)
		}
		if !equalIDs(pids, rids) {
			t.Errorf("%s: scoped bitmap %v != row path %v", tc.name, pids, rids)
		}
		if !equalIDs(pids, scopedWant) {
			t.Errorf("%s: scoped catalog %v != oracle∩scope %v", tc.name, pids, scopedWant)
		}
	}
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

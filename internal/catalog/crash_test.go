package catalog

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/faultio"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// The crash matrix: a deterministic mutation workload runs against a
// durable catalog on a fault-injected filesystem that "kills the
// process" (every filesystem operation fails, the crashing write torn)
// at the Nth write/sync/rename/create/truncate — for every N a
// fault-free counting run observed. After each crash the in-memory page
// cache is dropped (unsynced bytes vanish), the catalog recovers from
// what is on disk, and the recovered state must byte-for-byte equal a
// lockstep in-memory oracle of either the acknowledged operations or
// the acknowledged operations plus the one in flight (a crash can land
// after the record became durable but before the caller saw success).

// crashClock pins every ingest timestamp so the oracle and the durable
// catalog produce identical rows.
var crashClock = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

const crashWAL = "cat.wal"

// crashOp is one step of the scripted workload. Each step is exactly
// one atomic catalog mutation (= at most one WAL record), so "the
// operation in flight" is well-defined at every fault point.
type crashOp struct {
	name string
	run  func(c *Catalog) error
}

func crashWorkload(t *testing.T) []crashOp {
	t.Helper()
	docA := xmlschema.Figure3Document
	docB := fig3Variant(t, "250")
	batch1, err := xmldoc.ParseString(fig3Variant(t, "375"))
	if err != nil {
		t.Fatal(err)
	}
	batch2, err := xmldoc.ParseString(fig3Variant(t, "500"))
	if err != nil {
		t.Fatal(err)
	}
	frag := themeFrag(t, "crash-key")
	expectOK := func(ok bool, err error, what string) error {
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%s reported not found", what)
		}
		return nil
	}
	return []crashOp{
		{"register-grid", func(c *Catalog) error {
			_, err := c.RegisterAttr("grid", "ARPS", 0, "")
			return err
		}},
		{"register-dx", func(c *Catalog) error {
			_, err := c.RegisterElem("dx", "ARPS", mustAttrID(c, "grid"), core.DTFloat, "")
			return err
		}},
		{"register-dz", func(c *Catalog) error {
			_, err := c.RegisterElem("dz", "ARPS", mustAttrID(c, "grid"), core.DTFloat, "")
			return err
		}},
		{"register-stretching", func(c *Catalog) error {
			_, err := c.RegisterAttr("grid-stretching", "ARPS", mustAttrID(c, "grid"), "")
			return err
		}},
		{"register-dzmin", func(c *Catalog) error {
			_, err := c.RegisterElem("dzmin", "ARPS", mustAttrID(c, "grid-stretching"), core.DTFloat, "")
			return err
		}},
		{"register-refheight", func(c *Catalog) error {
			_, err := c.RegisterElem("reference-height", "ARPS", mustAttrID(c, "grid-stretching"), core.DTFloat, "")
			return err
		}},
		{"ingest-1", func(c *Catalog) error {
			_, err := c.IngestXML("scientist", docA)
			return err
		}},
		{"ingest-2", func(c *Catalog) error {
			_, err := c.IngestXML("scientist", docB)
			return err
		}},
		{"create-collection", func(c *Catalog) error {
			_, err := c.CreateCollection("storms", "scientist", 0)
			return err
		}},
		{"add-member-1", func(c *Catalog) error { return c.AddToCollection(1, 1) }},
		{"publish-1", func(c *Catalog) error { return c.SetPublished(1, true) }},
		{"ingest-batch", func(c *Catalog) error {
			_, err := c.IngestBatch("scientist", []*xmldoc.Node{batch1, batch2}, 1)
			return err
		}},
		{"add-member-3", func(c *Catalog) error { return c.AddToCollection(1, 3) }},
		{"add-attribute-1", func(c *Catalog) error {
			return c.AddAttribute(1, "scientist", frag)
		}},
		{"remove-member-1", func(c *Catalog) error {
			ok, err := c.RemoveFromCollection(1, 1)
			return expectOK(ok, err, "remove member")
		}},
		{"delete-2", func(c *Catalog) error {
			ok, err := c.Delete(2)
			return expectOK(ok, err, "delete object 2")
		}},
		{"create-subcollection", func(c *Catalog) error {
			_, err := c.CreateCollection("cases", "scientist", 1)
			return err
		}},
		{"add-member-4", func(c *Catalog) error { return c.AddToCollection(2, 4) }},
		{"unpublish-1", func(c *Catalog) error { return c.SetPublished(1, false) }},
	}
}

// mustAttrID resolves a registered dynamic attribute's ID by name; the
// workload uses it so later steps don't depend on captured variables.
func mustAttrID(c *Catalog, name string) int64 {
	for _, d := range c.Reg.Attrs() {
		if d.Name == name {
			return d.ID
		}
	}
	return 0
}

// stateFingerprint renders the complete externally observable state of
// a catalog: every data and definition row (sorted by content, since
// physical row IDs are not stable across recovery), the registry dump,
// and the reconstructed XML of every object.
func stateFingerprint(c *Catalog) string {
	var b strings.Builder
	tables := append(append([]string{}, dataTables...), TAttrDef, TElemDef)
	for _, name := range tables {
		rows := []string{}
		c.DB.MustTable(name).Scan(func(_ int64, r relstore.Row) bool {
			var rb strings.Builder
			for _, v := range r {
				fmt.Fprintf(&rb, "%d\x01%d\x01%s\x01%x\x02", v.K, v.I, v.S, math.Float64bits(v.F))
			}
			rows = append(rows, rb.String())
			return true
		})
		sort.Strings(rows)
		fmt.Fprintf(&b, "== %s (%d)\n%s\n", name, len(rows), strings.Join(rows, "\n"))
	}
	defs, err := c.DumpDefinitionsJSON()
	fmt.Fprintf(&b, "== defs\n%s err=%v\n", defs, err)
	for _, o := range c.Objects() {
		doc, err := c.FetchDocument(o.ID)
		if err != nil {
			fmt.Fprintf(&b, "== obj %d fetch err %v\n", o.ID, err)
			continue
		}
		fmt.Fprintf(&b, "== obj %d pub=%v\n%s\n", o.ID, o.Published, doc.String())
	}
	for _, ci := range c.Collections() {
		ids, err := c.CollectionObjects(ci.ID)
		fmt.Fprintf(&b, "== coll %d %q parent=%d objs=%v err=%v\n", ci.ID, ci.Name, ci.ParentID, ids, err)
	}
	return b.String()
}

func openDurableLEAD(t *testing.T, fs faultio.FS, every int) (*Catalog, error) {
	t.Helper()
	c, err := OpenDurable(xmlschema.MustLEAD(), Options{}, DurabilityOptions{
		FS: fs, WALPath: crashWAL, CheckpointEvery: every,
	})
	if err != nil {
		return nil, err
	}
	c.clock = func() time.Time { return crashClock }
	return c, nil
}

func newOracleLEAD(t *testing.T) *Catalog {
	t.Helper()
	c, err := Open(xmlschema.MustLEAD(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.clock = func() time.Time { return crashClock }
	return c
}

// checkpointEvery for the matrix: small enough that checkpoints (and
// their crash windows) interleave with the workload several times.
const matrixCheckpointEvery = 4

// durableOpener builds the catalog under test; the matrix runs once
// with the plain fsync-per-commit opener and once with group commit.
type durableOpener func(t *testing.T, fs faultio.FS, every int) (*Catalog, error)

// countCrashPoints runs the workload fault-free on a counting wrapper
// and returns the per-kind operation totals that size the matrix.
func countCrashPoints(t *testing.T, ops []crashOp, open durableOpener) map[faultio.OpKind]int {
	t.Helper()
	faulty := faultio.NewFaulty(faultio.NewMemFS(), faultio.Fault{})
	c, err := open(t, faulty, matrixCheckpointEvery)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := op.run(c); err != nil {
			t.Fatalf("fault-free %s: %v", op.name, err)
		}
	}
	return faulty.Counts()
}

func TestCrashMatrix(t *testing.T) {
	ops := crashWorkload(t)
	counts := countCrashPoints(t, ops, openDurableLEAD)
	total := 0
	for _, kind := range []faultio.OpKind{faultio.OpWrite, faultio.OpSync, faultio.OpRename, faultio.OpCreate, faultio.OpTruncate} {
		n := counts[kind]
		if kind == faultio.OpWrite || kind == faultio.OpSync {
			if n < len(ops) {
				t.Fatalf("counting run saw only %d %s ops for %d workload steps", n, kind, len(ops))
			}
		}
		total += n
		for i := 1; i <= n; i++ {
			kind, i := kind, i
			t.Run(fmt.Sprintf("%s-%d", kind, i), func(t *testing.T) {
				runCrashPoint(t, ops, faultio.Fault{
					Op: kind, N: i, Mode: faultio.CrashOp, Torn: (i * 7) % 23,
				}, openDurableLEAD)
			})
		}
	}
	t.Logf("crash matrix: %d fault points (%v)", total, counts)
}

// runCrashPoint drives the workload into one crash point, recovers from
// the surviving bytes, and checks the recovered state against the
// oracle.
func runCrashPoint(t *testing.T, ops []crashOp, fault faultio.Fault, open durableOpener) {
	mem := faultio.NewMemFS()
	faulty := faultio.NewFaulty(mem, fault)
	oracle := newOracleLEAD(t)

	acked := 0
	var inFlight *crashOp
	c, err := open(t, faulty, matrixCheckpointEvery)
	if err == nil {
		for i := range ops {
			op := &ops[i]
			if err := op.run(c); err != nil {
				// The workload is all-valid, so any failure must trace back
				// to the injected crash — not to a latent bug.
				if !errors.Is(err, faultio.ErrInjected) && !errors.Is(err, ErrDurability) {
					t.Fatalf("%s failed with a non-injected error: %v", op.name, err)
				}
				inFlight = op
				break
			}
			acked++
			if err := op.run(oracle); err != nil {
				t.Fatalf("oracle %s: %v", op.name, err)
			}
		}
	}

	// The process dies: unsynced page-cache contents are dropped.
	mem.Crash()
	rec, err := open(t, mem, matrixCheckpointEvery)
	if err != nil {
		t.Fatalf("recovery after crash at %+v (acked %d): %v", fault, acked, err)
	}
	got := stateFingerprint(rec)
	pre := stateFingerprint(oracle)
	if got != pre {
		// The in-flight record may have become durable before the crash
		// point: also accept acked+1.
		if inFlight == nil {
			t.Fatalf("crash at %+v: recovered state diverges from the %d acknowledged ops:\n%s", fault, acked, diffFingerprint(pre, got))
		}
		if err := inFlight.run(oracle); err != nil {
			t.Fatalf("oracle %s: %v", inFlight.name, err)
		}
		post := stateFingerprint(oracle)
		if got != post {
			t.Fatalf("crash at %+v during %q: recovered state matches neither %d acked ops nor acked+1:\nvs acked+1:\n%s",
				fault, inFlight.name, acked, diffFingerprint(post, got))
		}
	}

	// The recovered catalog must accept new durable mutations.
	if _, err := rec.CreateCollection("post-crash", "ops", 0); err != nil {
		t.Fatalf("mutation after recovery: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
}

// diffFingerprint returns the first diverging lines of two fingerprints
// so matrix failures are readable.
func diffFingerprint(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\nwant: %s\ngot:  %s", i, w[i], g[i])
		}
	}
	return fmt.Sprintf("lengths differ: want %d lines, got %d", len(w), len(g))
}

// TestCrashMatrixSwapPoints covers the crash window the filesystem
// matrix cannot name precisely: after the WAL record is durable but
// before the version-pointer swap publishes it. The crashAfterWALCommit
// hook kills each workload step exactly there. Two things must hold:
// the live catalog must not have published the record (the snapshot
// epoch is unchanged and the caller got ErrDurability, so the op is
// unacknowledged), and recovery from the surviving bytes must land on
// the acked+1 branch of the oracle, because the record did reach the
// log before the process died.
func TestCrashMatrixSwapPoints(t *testing.T) {
	ops := crashWorkload(t)
	for k := range ops {
		k := k
		t.Run(fmt.Sprintf("swap-%d-%s", k, ops[k].name), func(t *testing.T) {
			mem := faultio.NewMemFS()
			oracle := newOracleLEAD(t)
			c, err := openDurableLEAD(t, mem, matrixCheckpointEvery)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < k; i++ {
				if err := ops[i].run(c); err != nil {
					t.Fatalf("%s: %v", ops[i].name, err)
				}
				if err := ops[i].run(oracle); err != nil {
					t.Fatalf("oracle %s: %v", ops[i].name, err)
				}
			}

			injected := errors.New("crash between WAL append and pointer swap")
			c.crashAfterWALCommit = func() error { return injected }
			preEpoch := c.DB.Generation()
			err = ops[k].run(c)
			if err == nil {
				t.Fatalf("%s succeeded despite the swap-point crash", ops[k].name)
			}
			if !errors.Is(err, ErrDurability) {
				t.Fatalf("%s failed with %v, want ErrDurability", ops[k].name, err)
			}
			if got := c.DB.Generation(); got != preEpoch {
				t.Fatalf("%s: version pointer swapped (epoch %d -> %d) although the commit failed",
					ops[k].name, preEpoch, got)
			}

			// The process dies; the page cache is dropped. The WAL record
			// was fsynced before the hook fired, so it survives.
			mem.Crash()
			rec, err := openDurableLEAD(t, mem, matrixCheckpointEvery)
			if err != nil {
				t.Fatalf("recovery after swap-point crash at %q: %v", ops[k].name, err)
			}
			if err := ops[k].run(oracle); err != nil {
				t.Fatalf("oracle %s: %v", ops[k].name, err)
			}
			if got, want := stateFingerprint(rec), stateFingerprint(oracle); got != want {
				t.Fatalf("swap-point crash during %q: recovery must replay the durable record (acked+1):\n%s",
					ops[k].name, diffFingerprint(want, got))
			}
			if _, err := rec.CreateCollection("post-crash", "ops", 0); err != nil {
				t.Fatalf("mutation after recovery: %v", err)
			}
			if err := rec.Close(); err != nil {
				t.Fatalf("close after recovery: %v", err)
			}
		})
	}
}

// TestCrashRecoveryFullWorkload crashes only at the very end: every
// operation acknowledged, nothing checkpointed since the last automatic
// one, recovery must reproduce the full oracle state.
func TestCrashRecoveryFullWorkload(t *testing.T) {
	mem := faultio.NewMemFS()
	c, err := openDurableLEAD(t, mem, matrixCheckpointEvery)
	if err != nil {
		t.Fatal(err)
	}
	oracle := newOracleLEAD(t)
	for _, op := range crashWorkload(t) {
		if err := op.run(c); err != nil {
			t.Fatalf("%s: %v", op.name, err)
		}
		if err := op.run(oracle); err != nil {
			t.Fatalf("oracle %s: %v", op.name, err)
		}
	}
	mem.Crash()
	rec, err := openDurableLEAD(t, mem, matrixCheckpointEvery)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stateFingerprint(rec), stateFingerprint(oracle); got != want {
		t.Fatalf("recovered state diverges:\n%s", diffFingerprint(want, got))
	}
	st := rec.DurabilityStats()
	if !st.Enabled || st.CheckpointEvery != matrixCheckpointEvery {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCrashRecoveryIsIdempotent recovers, crashes again without writing,
// and recovers again: replay must not double-apply.
func TestCrashRecoveryIsIdempotent(t *testing.T) {
	mem := faultio.NewMemFS()
	c, err := openDurableLEAD(t, mem, 0) // no checkpoints: pure log replay
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range crashWorkload(t) {
		if err := op.run(c); err != nil {
			t.Fatalf("%s: %v", op.name, err)
		}
	}
	mem.Crash()
	r1, err := openDurableLEAD(t, mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	f1 := stateFingerprint(r1)
	mem.Crash()
	r2, err := openDurableLEAD(t, mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f2 := stateFingerprint(r2); f1 != f2 {
		t.Fatalf("second recovery diverges:\n%s", diffFingerprint(f1, f2))
	}
}

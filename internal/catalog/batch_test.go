package catalog

import (
	"errors"
	"strings"
	"testing"

	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

func batchDocs(t *testing.T, n int) []*xmldoc.Node {
	t.Helper()
	docs := make([]*xmldoc.Node, n)
	for i := range docs {
		doc, err := xmldoc.ParseString(fig3Variant(t, strings.Repeat("1", 1+i%4)+"000"))
		if err != nil {
			t.Fatal(err)
		}
		docs[i] = doc
	}
	return docs
}

func TestIngestBatchMatchesSerialIngest(t *testing.T) {
	docs := batchDocs(t, 24)

	serial := newLEADCatalog(t, Options{})
	for _, d := range docs {
		if _, err := serial.Ingest("u", d.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	batch := newLEADCatalog(t, Options{})
	ids, err := batch.IngestBatch("u", docs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(docs) {
		t.Fatalf("ids = %v", ids)
	}
	for i, id := range ids {
		if id != int64(i+1) {
			t.Fatalf("batch ids not ordered: %v", ids)
		}
	}
	// Same table contents drive the same query answers and documents.
	for _, tbl := range []string{TObjects, TAttrData, TElemData, TSubAttrs, TClobs} {
		if a, b := serial.DB.MustTable(tbl).Len(), batch.DB.MustTable(tbl).Len(); a != b {
			t.Errorf("%s rows: serial %d vs batch %d", tbl, a, b)
		}
	}
	q := &Query{}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(11000))
	a, _ := serial.Evaluate(q)
	b, _ := batch.Evaluate(q)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("query: serial %v vs batch %v", a, b)
	}
	d1, err := serial.FetchDocument(3)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := batch.FetchDocument(3)
	if err != nil {
		t.Fatal(err)
	}
	if !xmldoc.Equal(d1, d2) {
		t.Error("batch-ingested document differs")
	}
}

func TestIngestBatchAllOrNothing(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	docs := batchDocs(t, 5)
	bad, _ := xmldoc.ParseString(fig3Variant(t, "not-numeric"))
	docs[3] = bad
	_, err := c.IngestBatch("u", docs, 3)
	if err == nil || !strings.Contains(err.Error(), "document 3") {
		t.Fatalf("err = %v", err)
	}
	if c.ObjectCount() != 0 {
		t.Errorf("failed batch left %d objects", c.ObjectCount())
	}
	for _, tbl := range []string{TAttrData, TElemData, TClobs} {
		if n := c.DB.MustTable(tbl).Len(); n != 0 {
			t.Errorf("%s retains %d rows", tbl, n)
		}
	}
}

// TestIngestBatchReportsAllFailures pins the per-document error
// contract: a batch with several invalid documents reports every
// failure, indexed by input position, in ascending order, regardless of
// which worker hit which document first.
func TestIngestBatchReportsAllFailures(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	docs := batchDocs(t, 9)
	for _, i := range []int{1, 4, 7} {
		bad, err := xmldoc.ParseString(fig3Variant(t, "not-numeric"))
		if err != nil {
			t.Fatal(err)
		}
		docs[i] = bad
	}
	_, err := c.IngestBatch("u", docs, 4)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T %v, want *BatchError", err, err)
	}
	if len(be.Docs) != 3 {
		t.Fatalf("reported %d failures, want 3: %v", len(be.Docs), be)
	}
	for i, want := range []int{1, 4, 7} {
		if be.Docs[i].Index != want {
			t.Errorf("failure %d has index %d, want %d (order must be ascending by input position)",
				i, be.Docs[i].Index, want)
		}
		if be.Docs[i].Err == nil {
			t.Errorf("failure %d carries no cause", i)
		}
	}
	for _, want := range []string{"3 batch documents failed", "document 1", "document 4", "document 7"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error message %q missing %q", err.Error(), want)
		}
	}
	if c.ObjectCount() != 0 {
		t.Errorf("failed batch left %d objects", c.ObjectCount())
	}

	// A single failing document keeps the pre-existing one-line form.
	docs = batchDocs(t, 5)
	bad, err := xmldoc.ParseString(fig3Variant(t, "not-numeric"))
	if err != nil {
		t.Fatal(err)
	}
	docs[2] = bad
	_, err = c.IngestBatch("u", docs, 4)
	if !errors.As(err, &be) || len(be.Docs) != 1 || be.Docs[0].Index != 2 {
		t.Fatalf("single failure err = %v", err)
	}
	if !strings.Contains(err.Error(), "catalog: batch document 2:") {
		t.Errorf("single-failure message %q lost the one-line form", err.Error())
	}
}

func TestIngestBatchEdgeCases(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	if ids, err := c.IngestBatch("u", nil, 4); err != nil || ids != nil {
		t.Errorf("empty batch = %v, %v", ids, err)
	}
	// workers > docs and workers <= 0 both work.
	docs := batchDocs(t, 3)
	if _, err := c.IngestBatch("u", docs[:2], 16); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestBatch("u", docs[2:], -1); err != nil {
		t.Fatal(err)
	}
	if c.ObjectCount() != 3 {
		t.Errorf("objects = %d", c.ObjectCount())
	}
}

// TestIngestBatchAutoRegisterRace exercises concurrent auto-registration
// of identical dynamic definitions across workers.
func TestIngestBatchAutoRegisterRace(t *testing.T) {
	c, err := Open(xmlschema.MustLEAD(), Options{AutoRegister: true})
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]*xmldoc.Node, 32)
	for i := range docs {
		doc, err := xmldoc.ParseString(xmlschema.Figure3Document)
		if err != nil {
			t.Fatal(err)
		}
		docs[i] = doc
	}
	ids, err := c.IngestBatch("u", docs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 32 {
		t.Fatalf("ids = %d", len(ids))
	}
	// Exactly one grid definition despite 32 racing registrations.
	count := 0
	for _, d := range c.Reg.Attrs() {
		if d.Name == "grid" && d.Source == "ARPS" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("grid registered %d times", count)
	}
	q := &Query{}
	q.Attr("grid", "ARPS")
	hits, err := c.Evaluate(q)
	if err != nil || len(hits) != 32 {
		t.Fatalf("query = %d hits, %v", len(hits), err)
	}
}

package catalog

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
)

// FuzzSnapshotSwapInterleavings drives fuzz-chosen interleavings of
// every mutation class that publishes a new version — ingest, document
// extension, publication, deletion, and registry rebuilds (dynamic
// definition registration, which swaps the registry pointer AND commits
// the def-table mirror) — against concurrent readers on the lock-free
// snapshot path. It extends the baseline package's
// FuzzConcurrentIngestEvaluate to the swap machinery itself: readers
// assert the database epoch and registry generation never move
// backwards, and reuse the DOM oracle from concurrency_test.go to pin
// every fetched document to a version the tracker advertised. Each op
// byte selects the mutation kind and its publish bit, so the corpus
// explores orderings (e.g. a registry swap racing a pinned evaluation)
// that the fixed-schedule stress test never hits.
func FuzzSnapshotSwapInterleavings(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(int64(5), []byte{0xff, 0x3c, 0x81, 0x00, 0x42, 0x99})
	f.Add(int64(9), []byte("swap the pointer"))
	f.Add(int64(13), []byte{4, 4, 4, 1, 1, 0})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) == 0 {
			t.Skip("no operations")
		}
		if len(ops) > 24 {
			ops = ops[:24]
		}
		c := newLEADCatalog(t, Options{QueryWorkers: 4, ParallelRowThreshold: -1})
		tr := &tracker{objs: map[int64]*objState{}, everPublished: map[int64]bool{}}

		// Seed two objects so readers have work from the first iteration.
		var owned []int64
		for i := 0; i < 2; i++ {
			dx := float64(9000 + i)
			id, err := c.IngestXML("alice", fig3Variant(t, formatDx(dx)))
			if err != nil {
				t.Fatal(err)
			}
			doc, err := c.FetchDocument(id)
			if err != nil {
				t.Fatal(err)
			}
			tr.add(id, dx, doc)
			owned = append(owned, id)
		}

		done := make(chan struct{})
		var wwg sync.WaitGroup
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			defer close(done)
			for i, b := range ops {
				switch b % 5 {
				case 0: // ingest a fresh object, publish if the high bit says so
					dx := float64(7_000_000 + i)
					id, err := c.IngestXML("alice", fig3Variant(t, formatDx(dx)))
					if err != nil {
						t.Errorf("op %d: ingest: %v", i, err)
						return
					}
					doc, err := c.FetchDocument(id)
					if err != nil {
						t.Errorf("op %d: fetch after ingest: %v", i, err)
						return
					}
					tr.add(id, dx, doc)
					owned = append(owned, id)
					if b&0x80 != 0 {
						tr.markPublished(id)
						if err := c.SetPublished(id, true); err != nil {
							t.Errorf("op %d: publish: %v", i, err)
							return
						}
					}
				case 1: // extend an owned document with another theme
					if len(owned) == 0 {
						continue
					}
					id := owned[int(b)%len(owned)]
					frag := themeFrag(t, fmt.Sprintf("fuzz-%d-%d", i, b))
					next := withExtraTheme(t, tr.latest(id), frag)
					tr.pushVersion(id, next)
					if err := c.AddAttribute(id, "alice", frag); err != nil {
						t.Errorf("op %d: add attribute: %v", i, err)
						return
					}
				case 2: // publish an owned object
					if len(owned) == 0 {
						continue
					}
					id := owned[int(b)%len(owned)]
					tr.markPublished(id)
					if err := c.SetPublished(id, true); err != nil {
						t.Errorf("op %d: publish: %v", i, err)
						return
					}
				case 3: // delete the oldest owned object
					if len(owned) < 2 {
						continue
					}
					id := owned[0]
					owned = owned[1:]
					tr.markDeleted(id)
					if ok, err := c.Delete(id); err != nil || !ok {
						t.Errorf("op %d: delete of %d = %v, %v", i, id, ok, err)
						return
					}
				case 4: // registry rebuild: register a fresh dynamic definition
					def, err := c.RegisterAttr(fmt.Sprintf("fuzzattr%d", i), "ARPS", 0, "")
					if err != nil {
						t.Errorf("op %d: register attr: %v", i, err)
						return
					}
					if _, err := c.RegisterElem(fmt.Sprintf("fuzzelem%d", i), "ARPS", def.ID, core.DTString, ""); err != nil {
						t.Errorf("op %d: register elem: %v", i, err)
						return
					}
				}
			}
		}()

		const readers = 2
		var rwg sync.WaitGroup
		for r := 0; r < readers; r++ {
			rwg.Add(1)
			go func(r int) {
				defer rwg.Done()
				rng := rand.New(rand.NewSource(seed + int64(r)))
				var lastEpoch, lastReg uint64
				for i := 0; ; i++ {
					select {
					case <-done:
						return
					default:
					}
					// The swap-path invariant: published versions only move
					// forward, on both atomic pointers.
					if e := c.DB.Generation(); e < lastEpoch {
						t.Errorf("reader %d: db epoch went backwards: %d after %d", r, e, lastEpoch)
						return
					} else {
						lastEpoch = e
					}
					if g := c.Reg.Generation(); g < lastReg {
						t.Errorf("reader %d: registry generation went backwards: %d after %d", r, g, lastReg)
						return
					} else {
						lastReg = g
					}
					switch i % 3 {
					case 0: // DOM oracle on a tracked object
						id, versions, deleted, ok := tr.pick(rng)
						if !ok {
							continue
						}
						doc, err := c.FetchDocument(id)
						if err != nil {
							if !strings.Contains(err.Error(), "no object") {
								t.Errorf("reader %d: unexpected fetch error: %v", r, err)
								return
							}
							tr.mu.Lock()
							del := deleted || tr.objs[id].deleted
							tr.mu.Unlock()
							if !del {
								t.Errorf("reader %d: fetch of live object %d failed: %v", r, id, err)
								return
							}
							continue
						}
						match := docInVersions(doc, versions)
						if !match {
							tr.mu.Lock()
							if st := tr.objs[id]; st != nil {
								match = docInVersions(doc, st.versions)
							}
							tr.mu.Unlock()
						}
						if !match {
							t.Errorf("reader %d: object %d fetched a document matching no advertised version:\n%s",
								r, id, doc.String())
							return
						}
					case 1: // superuser theme query: no lost reads across swaps
						pre := tr.liveSet()
						q := &Query{}
						q.Attr("theme", "")
						ids, err := c.Evaluate(q)
						if err != nil {
							t.Errorf("reader %d: evaluate: %v", r, err)
							return
						}
						post := tr.liveSet()
						got := make(map[int64]bool, len(ids))
						for _, id := range ids {
							got[id] = true
						}
						for id := range pre {
							if post[id] && !got[id] {
								t.Errorf("reader %d: query lost object %d that was live throughout", r, id)
								return
							}
						}
					case 2: // stranger privacy across registry rebuilds
						q := &Query{Owner: "stranger"}
						q.Attr("theme", "")
						ids, err := c.Evaluate(q)
						if err != nil {
							t.Errorf("reader %d: stranger evaluate: %v", r, err)
							return
						}
						for _, id := range ids {
							if !tr.wasPublished(id) {
								t.Errorf("reader %d: stranger saw never-published object %d", r, id)
								return
							}
						}
					}
				}
			}(r)
		}
		rwg.Wait()
		wwg.Wait()
		if t.Failed() {
			t.FailNow()
		}

		// Quiesced: every live object reconstructs to its final tracked DOM.
		tr.mu.Lock()
		defer tr.mu.Unlock()
		for id, st := range tr.objs {
			if st.deleted {
				if _, err := c.FetchDocument(id); err == nil {
					t.Errorf("deleted object %d still reconstructs", id)
				}
				continue
			}
			doc, err := c.FetchDocument(id)
			if err != nil {
				t.Errorf("live object %d cannot be fetched: %v", id, err)
				continue
			}
			if want := st.versions[len(st.versions)-1]; !xmldoc.Equal(doc, want) {
				t.Errorf("object %d diverged after quiesce:\nwant: %s\ngot:  %s",
					id, want.String(), doc.String())
			}
		}
	})
}

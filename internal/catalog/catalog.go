// Package catalog ties the hybrid core to the relational engine: it owns
// the catalog's relational schema (attribute/element data, sub-attribute
// inverted lists, per-attribute CLOBs, and the schema-level global
// ordering tables), the Figure-4 set-based query pipeline, and the §5
// set-based response builder.
package catalog

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/obs"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// Table names of the hybrid catalog's relational schema.
const (
	TObjects       = "objects"
	TAttrData      = "attr_data"
	TElemData      = "elem_data"
	TSubAttrs      = "sub_attrs"
	TClobs         = "clobs"
	TAttrDef       = "attr_def"
	TElemDef       = "elem_def"
	TSchemaNodes   = "schema_nodes"
	TNodeAncestors = "node_ancestors"
)

// Options configures a catalog instance.
type Options struct {
	// AutoRegister creates definitions for unknown dynamic attributes at
	// ingest instead of leaving them CLOB-only.
	AutoRegister bool
	// Lenient ignores unknown structural elements instead of rejecting
	// the document.
	Lenient bool
	// DisableInvertedList drops sub-attribute inverted-list maintenance
	// and forces queries onto a recursive fallback; for the A1 ablation
	// only.
	DisableInvertedList bool
	// DisableBitmaps runs the Figure-4 pipeline on the original
	// row-at-a-time representation instead of compressed bitmap posting
	// lists (bitmap.go). The row path is the correctness oracle for the
	// equivalence suite and the baseline for bench experiment B1.
	DisableBitmaps bool
	// QueryWorkers bounds the per-query worker pool that fans out the
	// Figure-4 per-criterion probes and per-object response construction.
	// 0 uses runtime.GOMAXPROCS(0); 1 forces the sequential path.
	QueryWorkers int
	// ParallelRowThreshold is the indexed-row count below which a query
	// runs sequentially even when QueryWorkers allows fan-out, so small
	// catalogs pay no goroutine overhead. 0 uses
	// DefaultParallelRowThreshold; negative always fans out.
	ParallelRowThreshold int
	// CacheSize bounds each read-cache layer (evaluate, resolve, probe,
	// response) in entries. 0 uses DefaultCacheSize; negative disables
	// caching entirely.
	CacheSize int
	// DisableCache turns the generation-stamped read caches off; every
	// evaluation and response build recomputes from the base tables.
	DisableCache bool
	// DisableTextIndex turns off the BM25 text index; ranked queries
	// (Query.Rank) fail with ErrTextIndexDisabled while the structural
	// pipeline is unaffected.
	DisableTextIndex bool
	// Metrics, when non-nil, instruments the catalog and everything under
	// it (relstore tables, cache layers, the WAL, the query pipeline)
	// onto the given registry, and enables the slow-query trace ring.
	// Nil — the default — disables all instrumentation at nil-check cost.
	Metrics *obs.Registry
	// TraceDepth bounds the ring of slowest per-query traces kept for
	// /debug/tracez. 0 uses DefaultTraceDepth; negative disables tracing
	// while keeping metrics. Ignored without Metrics.
	TraceDepth int
}

// Catalog is a hybrid XML-relational metadata catalog over one community
// schema.
type Catalog struct {
	Schema *xmlschema.Schema
	Reg    *core.Registry
	DB     *relstore.Database

	shredder *core.Shredder
	opts     Options

	// mu serializes mutations (ingest, delete, publish, collection
	// membership, dynamic registration) and guards the durability state
	// (c.dur, c.tx, capture buffers). The read path does NOT
	// take it: every read operation pins an immutable snapshot via
	// pinView and runs lock-free against it (see view.go), overlapping
	// freely with writers — who build the next version copy-on-write and
	// publish it with one atomic pointer swap. Only Save and
	// DurabilityStats still take the read side, to exclude writers while
	// walking multiple live tables or the durability counters.
	mu    sync.RWMutex
	clock func() time.Time

	// caches are the generation-stamped read caches (see cache.go). Cache
	// reads and writes happen only under the read lock, so every stored
	// value was computed from exactly the table state of the generation
	// it is stamped with.
	caches catCaches

	// Write-ahead capture (see durable.go). capturing/captured are only
	// touched under the write lock: the relstore journal hook appends
	// every applied row operation to captured while a mutation runs, so
	// mutateLocked can commit them as one log record before the version
	// swap, or abort the builder.
	capturing bool
	captured  []relstore.TableOp
	dur       *durability

	// tx is the relstore transaction of the mutation currently holding
	// the write lock (nil outside mutations); interior helpers address
	// tables through c.wtab so their writes land in this builder instead
	// of auto-committing per row. Guarded by the write lock.
	tx *relstore.Tx

	// crashAfterWALCommit, when set by the fault-injection tests, runs
	// after the WAL record is durable but before the version swap; a
	// non-nil return aborts the builder, simulating a crash in that
	// window.
	crashAfterWALCommit func() error

	// follower marks a read-only replica catalog: every local mutation
	// is refused with ErrReadOnlyReplica, and state advances only
	// through ApplyWAL replaying the primary's log records (see
	// follower.go). applied is its replication cursor, guarded by mu.
	follower bool
	applied  uint64

	// obsv holds the instrument handles and the slow-trace ring (see
	// obs.go); zero-valued (all no-ops) without Options.Metrics.
	obsv catObs

	// text holds the epoch-stamped BM25 text index (rank.go), rebuilt
	// lazily on the first ranked query after a mutation; textMu
	// serializes rebuilds so concurrent ranked queries build it once.
	text   atomic.Pointer[stampedText]
	textMu sync.Mutex
}

// Open builds a catalog for a finalized schema: it creates the relational
// schema, seeds the definition tables from the registry, and loads the
// global ordering tables.
func Open(schema *xmlschema.Schema, opts Options) (*Catalog, error) {
	reg, err := core.NewRegistry(schema)
	if err != nil {
		return nil, err
	}
	c := &Catalog{
		Schema:   schema,
		Reg:      reg,
		DB:       relstore.NewDatabase(),
		shredder: core.NewShredder(schema, reg),
		opts:     opts,
		clock:    time.Now,
	}
	c.initObs()
	c.DB.SetMetrics(c.obsv.reg)
	c.initCaches()
	c.DB.SetJournal(func(op relstore.TableOp) {
		if c.capturing {
			c.captured = append(c.captured, op)
		}
	})
	if err := c.createTables(); err != nil {
		return nil, err
	}
	if err := c.initCollections(); err != nil {
		return nil, err
	}
	// Batch the bulk seeding into one transaction: one published version
	// instead of a copy-on-write commit per row.
	err = c.withTx(func() error {
		if err := c.loadSchemaTables(); err != nil {
			return err
		}
		return c.syncDefTables()
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

func col(name string, k relstore.Kind, notNull bool) relstore.Column {
	return relstore.Column{Name: name, Type: k, NotNull: notNull}
}

func (c *Catalog) createTables() error {
	type tdef struct {
		name string
		cols []relstore.Column
	}
	tables := []tdef{
		{TObjects, []relstore.Column{
			col("object_id", relstore.KInt, true),
			col("name", relstore.KString, false),
			col("owner", relstore.KString, false),
			col("created", relstore.KString, false),
			col("published", relstore.KBool, false),
		}},
		{TAttrData, []relstore.Column{
			col("object_id", relstore.KInt, true),
			col("attr_id", relstore.KInt, true),
			col("seq_id", relstore.KInt, true),
			col("clob_seq", relstore.KInt, false),
		}},
		{TElemData, []relstore.Column{
			col("object_id", relstore.KInt, true),
			col("attr_id", relstore.KInt, true),
			col("seq_id", relstore.KInt, true),
			col("elem_id", relstore.KInt, true),
			col("elem_seq", relstore.KInt, true),
			col("sval", relstore.KString, false),
			col("nval", relstore.KFloat, false),
		}},
		{TSubAttrs, []relstore.Column{
			col("object_id", relstore.KInt, true),
			col("child_attr_id", relstore.KInt, true),
			col("child_seq", relstore.KInt, true),
			col("anc_attr_id", relstore.KInt, true),
			col("anc_seq", relstore.KInt, true),
			col("depth", relstore.KInt, true),
		}},
		{TClobs, []relstore.Column{
			col("object_id", relstore.KInt, true),
			col("node_order", relstore.KInt, true),
			col("clob_seq", relstore.KInt, true),
			col("attr_id", relstore.KInt, false),
			col("seq_id", relstore.KInt, false),
			col("clob", relstore.KString, true),
		}},
		{TAttrDef, []relstore.Column{
			col("attr_id", relstore.KInt, true),
			col("name", relstore.KString, true),
			col("source", relstore.KString, false),
			col("parent_attr_id", relstore.KInt, false),
			col("schema_order", relstore.KInt, false),
			col("queryable", relstore.KBool, false),
			col("dynamic", relstore.KBool, false),
			col("owner", relstore.KString, false),
		}},
		{TElemDef, []relstore.Column{
			col("elem_id", relstore.KInt, true),
			col("attr_id", relstore.KInt, true),
			col("name", relstore.KString, true),
			col("source", relstore.KString, false),
			col("dtype", relstore.KString, false),
			col("owner", relstore.KString, false),
		}},
		{TSchemaNodes, []relstore.Column{
			col("node_order", relstore.KInt, true),
			col("tag", relstore.KString, true),
			col("parent_order", relstore.KInt, false),
			col("last_child_order", relstore.KInt, true),
			col("depth", relstore.KInt, true),
			col("is_attr", relstore.KBool, false),
		}},
		{TNodeAncestors, []relstore.Column{
			col("node_order", relstore.KInt, true),
			col("anc_order", relstore.KInt, true),
		}},
	}
	for _, td := range tables {
		if _, err := c.DB.CreateTable(td.name, td.cols...); err != nil {
			return err
		}
	}
	type idef struct {
		table, name string
		kind        relstore.IndexKind
		unique      bool
		cols        []string
	}
	indexes := []idef{
		{TObjects, "objects_pk", relstore.BTreeIndex, true, []string{"object_id"}},
		{TAttrData, "attr_data_by_attr", relstore.HashIndex, false, []string{"attr_id"}},
		{TAttrData, "attr_data_by_object", relstore.HashIndex, false, []string{"object_id"}},
		{TElemData, "elem_data_by_sval", relstore.BTreeIndex, false, []string{"elem_id", "sval"}},
		{TElemData, "elem_data_by_nval", relstore.BTreeIndex, false, []string{"elem_id", "nval"}},
		{TElemData, "elem_data_by_object", relstore.HashIndex, false, []string{"object_id"}},
		{TSubAttrs, "sub_attrs_by_child", relstore.HashIndex, false, []string{"child_attr_id"}},
		{TSubAttrs, "sub_attrs_by_object", relstore.HashIndex, false, []string{"object_id"}},
		{TClobs, "clobs_by_object", relstore.BTreeIndex, false, []string{"object_id", "node_order", "clob_seq"}},
		{TAttrDef, "attr_def_pk", relstore.BTreeIndex, true, []string{"attr_id"}},
		{TElemDef, "elem_def_pk", relstore.BTreeIndex, true, []string{"elem_id"}},
		{TSchemaNodes, "schema_nodes_pk", relstore.BTreeIndex, true, []string{"node_order"}},
		{TNodeAncestors, "node_ancestors_by_node", relstore.HashIndex, false, []string{"node_order"}},
	}
	for _, id := range indexes {
		if _, err := c.DB.MustTable(id.table).CreateIndex(id.name, id.kind, id.unique, id.cols...); err != nil {
			return err
		}
	}
	return nil
}

// loadSchemaTables fills schema_nodes and node_ancestors from the
// finalized schema's global ordering (Figure 2).
func (c *Catalog) loadSchemaTables() error {
	nodes := c.wtab(TSchemaNodes)
	ancs := c.wtab(TNodeAncestors)
	for _, n := range c.Schema.Ordered {
		parent := 0
		if n.Parent != nil {
			parent = n.Parent.Order
		}
		_, err := nodes.Insert(relstore.Row{
			relstore.Int(int64(n.Order)), relstore.Str(n.Tag),
			relstore.Int(int64(parent)), relstore.Int(int64(n.LastChild)),
			relstore.Int(int64(n.Depth)), relstore.Bool(n.IsAttribute),
		})
		if err != nil {
			return err
		}
		for _, a := range c.Schema.Ancestors(n.Order) {
			if _, err := ancs.Insert(relstore.Row{relstore.Int(int64(n.Order)), relstore.Int(int64(a))}); err != nil {
				return err
			}
		}
	}
	return nil
}

// syncDefTables mirrors the registry into attr_def/elem_def. Called at
// Open and after dynamic registration so the definition tables stay
// queryable through SQL.
func (c *Catalog) syncDefTables() error {
	attrT := c.wtab(TAttrDef)
	elemT := c.wtab(TElemDef)
	have := make(map[int64]bool)
	attrT.Scan(func(_ int64, r relstore.Row) bool {
		have[r[0].I] = true
		return true
	})
	for _, d := range c.Reg.Attrs() {
		if have[d.ID] {
			continue
		}
		_, err := attrT.Insert(relstore.Row{
			relstore.Int(d.ID), relstore.Str(d.Name), relstore.Str(d.Source),
			relstore.Int(d.ParentID), relstore.Int(int64(d.SchemaOrder)),
			relstore.Bool(d.Queryable), relstore.Bool(d.Dynamic), relstore.Str(d.Owner),
		})
		if err != nil {
			return err
		}
	}
	haveE := make(map[int64]bool)
	elemT.Scan(func(_ int64, r relstore.Row) bool {
		haveE[r[0].I] = true
		return true
	})
	for _, d := range c.Reg.Elems() {
		if haveE[d.ID] {
			continue
		}
		_, err := elemT.Insert(relstore.Row{
			relstore.Int(d.ID), relstore.Int(d.AttrID), relstore.Str(d.Name),
			relstore.Str(d.Source), relstore.Str(d.Type.String()), relstore.Str(d.Owner),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// RegisterAttr registers a dynamic attribute definition and mirrors it
// into the definition tables. parentID 0 registers a top-level dynamic
// attribute located at the schema's first dynamic container.
func (c *Catalog) RegisterAttr(name, source string, parentID int64, owner string) (*core.AttrDef, error) {
	order := 0
	for _, a := range c.Schema.Attributes {
		if a.IsDynamic {
			order = a.Order
			break
		}
	}
	if order == 0 {
		return nil, fmt.Errorf("catalog: schema %s has no dynamic attribute container", c.Schema.Name)
	}
	def, err := c.Reg.RegisterAttr(name, source, parentID, order, owner)
	if err != nil {
		return nil, err
	}
	if err := c.mutate(c.syncDefTables); err != nil {
		return nil, err
	}
	return def, nil
}

// RegisterElem registers a dynamic element definition under an attribute.
func (c *Catalog) RegisterElem(name, source string, attrID int64, dt core.DataType, owner string) (*core.ElemDef, error) {
	def, err := c.Reg.RegisterElem(name, source, attrID, dt, owner)
	if err != nil {
		return nil, err
	}
	if err := c.mutate(c.syncDefTables); err != nil {
		return nil, err
	}
	return def, nil
}

// Ingest shreds a document and stores it for the given owner, returning
// the new object ID. On validation failure nothing is stored.
func (c *Catalog) Ingest(owner string, doc *xmldoc.Node) (int64, error) {
	res, err := c.shredder.Shred(doc, core.Options{
		Owner:        owner,
		AutoRegister: c.opts.AutoRegister,
		Lenient:      c.opts.Lenient,
	})
	if err != nil {
		return 0, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	var id int64
	err = c.mutateLocked(func() error {
		if c.opts.AutoRegister {
			if err := c.syncDefTables(); err != nil {
				return err
			}
		}
		objT := c.wtab(TObjects)
		id = objT.NextAutoID()
		name := doc.Tag
		if rid := doc.Child("resourceID"); rid != nil {
			name = rid.Text
		}
		if _, err := objT.Insert(relstore.Row{
			relstore.Int(id), relstore.Str(name), relstore.Str(owner),
			relstore.Str(c.clock().UTC().Format(time.RFC3339)), relstore.Bool(false),
		}); err != nil {
			return err
		}
		if err := c.insertShred(id, res); err != nil {
			return fmt.Errorf("catalog: ingest of object %d failed: %w", id, err)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return id, nil
}

// IngestXML parses and ingests a document held in a string.
func (c *Catalog) IngestXML(owner, xml string) (int64, error) {
	doc, err := xmldoc.ParseString(xml)
	if err != nil {
		return 0, err
	}
	return c.Ingest(owner, doc)
}

func (c *Catalog) insertShred(id int64, res *core.ShredResult) error {
	oid := relstore.Int(id)
	attrT := c.wtab(TAttrData)
	for _, a := range res.Attrs {
		if _, err := attrT.Insert(relstore.Row{oid, relstore.Int(a.AttrID), relstore.Int(int64(a.Seq)), relstore.Null()}); err != nil {
			return err
		}
	}
	elemT := c.wtab(TElemData)
	for _, e := range res.Elems {
		nval := relstore.Null()
		if e.HasNum {
			nval = relstore.Float(e.Num)
		}
		_, err := elemT.Insert(relstore.Row{
			oid, relstore.Int(e.AttrID), relstore.Int(int64(e.AttrSeq)),
			relstore.Int(e.ElemID), relstore.Int(int64(e.ElemSeq)),
			relstore.Str(e.Value), nval,
		})
		if err != nil {
			return err
		}
	}
	subT := c.wtab(TSubAttrs)
	for _, sa := range res.SubAttrs {
		// With the inverted list disabled (A1 ablation) only direct-parent
		// links are kept; queries then chase parents recursively.
		if c.opts.DisableInvertedList && sa.Depth != 1 {
			continue
		}
		_, err := subT.Insert(relstore.Row{
			oid, relstore.Int(sa.ChildAttrID), relstore.Int(int64(sa.ChildSeq)),
			relstore.Int(sa.AncAttrID), relstore.Int(int64(sa.AncSeq)),
			relstore.Int(int64(sa.Depth)),
		})
		if err != nil {
			return err
		}
	}
	clobT := c.wtab(TClobs)
	for _, cl := range res.Clobs {
		attrID := relstore.Null()
		seq := relstore.Null()
		if cl.AttrID != 0 {
			attrID = relstore.Int(cl.AttrID)
			seq = relstore.Int(int64(cl.AttrSeq))
		}
		_, err := clobT.Insert(relstore.Row{
			oid, relstore.Int(int64(cl.NodeOrder)), relstore.Int(int64(cl.ClobSeq)),
			attrID, seq, relstore.Str(cl.XML),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// AddAttribute appends one metadata attribute instance to an existing
// object (§5): the fragment is shredded with sequence counters continuing
// from the object's current state. The schema-level global ordering makes
// this O(rows inserted) — no per-document renumbering (the E7
// experiment's point).
func (c *Catalog) AddAttribute(objectID int64, owner string, frag *xmldoc.Node) error {
	decl := c.Schema.AttributeByTag(frag.Tag)
	if decl == nil {
		return fmt.Errorf("catalog: <%s> is not a metadata attribute of schema %s", frag.Tag, c.Schema.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// All reads run inside the mutation's transaction (c.wtab): under
	// group commit another writer's staged-but-unpublished version may
	// be the base of this transaction, and reading the published tables
	// instead would compute stale sibling counters.
	return c.mutateLocked(func() error {
		ids, err := c.wtab(TObjects).LookupEqual("objects_pk", relstore.Int(objectID))
		if err != nil {
			return err
		}
		if len(ids) == 0 {
			return fmt.Errorf("catalog: no object %d", objectID)
		}
		// Current same-sibling counters for the object.
		clobSeq := map[int]int{}
		clobT := c.wtab(TClobs)
		rowIDs, err := clobT.LookupRange("clobs_by_object",
			relstore.RangeBound{Vals: []relstore.Value{relstore.Int(objectID)}, Inclusive: true, Set: true},
			relstore.RangeBound{Vals: []relstore.Value{relstore.Int(objectID)}, Inclusive: true, Set: true})
		if err != nil {
			return err
		}
		for _, rid := range rowIDs {
			if r := clobT.Get(rid); r != nil {
				if int(r[2].I) > clobSeq[int(r[1].I)] {
					clobSeq[int(r[1].I)] = int(r[2].I)
				}
			}
		}
		attrSeq := map[int64]int{}
		attrT := c.wtab(TAttrData)
		aids, err := attrT.LookupEqual("attr_data_by_object", relstore.Int(objectID))
		if err != nil {
			return err
		}
		for _, rid := range aids {
			if r := attrT.Get(rid); r != nil {
				if int(r[2].I) > attrSeq[r[1].I] {
					attrSeq[r[1].I] = int(r[2].I)
				}
			}
		}
		res, err := c.shredder.ShredAttribute(frag, decl, core.Options{
			Owner:        owner,
			AutoRegister: c.opts.AutoRegister,
			Lenient:      c.opts.Lenient,
		}, clobSeq, attrSeq)
		if err != nil {
			return err
		}
		if c.opts.AutoRegister {
			if err := c.syncDefTables(); err != nil {
				return err
			}
		}
		return c.insertShred(objectID, res)
	})
}

// Delete removes an object and all its rows, reporting whether it
// existed. A durability failure leaves the object in place.
func (c *Catalog) Delete(id int64) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	existed := false
	if err := c.mutateLocked(func() error {
		// The existence check reads the transaction's view: a staged
		// (group-committed, not yet published) ingest of this object must
		// count as existing or the delete would silently no-op.
		ids, _ := c.wtab(TObjects).LookupEqual("objects_pk", relstore.Int(id))
		if len(ids) == 0 {
			return errNotFound
		}
		existed = true
		c.removeObjectLocked(id)
		return nil
	}); err != nil && !errors.Is(err, errNotFound) {
		return false, err
	}
	return existed, nil
}

// errNotFound is an internal sentinel for mutations whose target does
// not exist: it aborts the transaction without surfacing an error when
// the API reports absence through a return value instead.
var errNotFound = errors.New("catalog: not found")

func (c *Catalog) removeObjectLocked(id int64) {
	for table, index := range map[string]string{
		TObjects:  "objects_pk",
		TAttrData: "attr_data_by_object",
		TElemData: "elem_data_by_object",
		TSubAttrs: "sub_attrs_by_object",
		TMembers:  "members_by_object",
	} {
		t := c.wtab(table)
		ids, _ := t.LookupEqual(index, relstore.Int(id))
		for _, rid := range ids {
			t.Delete(rid)
		}
	}
	clobT := c.wtab(TClobs)
	ids, _ := clobT.LookupRange("clobs_by_object",
		relstore.RangeBound{Vals: []relstore.Value{relstore.Int(id)}, Inclusive: true, Set: true},
		relstore.RangeBound{Vals: []relstore.Value{relstore.Int(id)}, Inclusive: true, Set: true})
	for _, rid := range ids {
		clobT.Delete(rid)
	}
}

// ObjectCount returns the number of cataloged objects.
func (c *Catalog) ObjectCount() int {
	return c.DB.MustTable(TObjects).Len()
}

// StorageBytes reports the catalog's resident data size (E5).
func (c *Catalog) StorageBytes() int64 {
	return c.DB.StorageBytes()
}

// ObjectInfo describes one cataloged object.
type ObjectInfo struct {
	ID        int64
	Name      string
	Owner     string
	Created   string
	Published bool
}

// Objects lists cataloged objects in ID order.
func (c *Catalog) Objects() []ObjectInfo {
	var out []ObjectInfo
	it := relstore.Sort(relstore.ScanTable(c.DB.MustTable(TObjects)), relstore.SortSpec{Col: 0})
	for {
		r, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, ObjectInfo{ID: r[0].I, Name: r[1].S, Owner: r[2].S, Created: r[3].S, Published: r[4].AsBool()})
	}
}

// SetPublished publishes or unpublishes an object. Unpublished objects
// are visible only to their owner's queries (§1: the catalog must
// "ensure the privacy of unpublished data and results").
func (c *Catalog) SetPublished(id int64, published bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mutateLocked(func() error {
		t := c.wtab(TObjects)
		ids, err := t.LookupEqual("objects_pk", relstore.Int(id))
		if err != nil {
			return err
		}
		if len(ids) == 0 {
			return fmt.Errorf("catalog: no object %d", id)
		}
		r := relstore.CloneRow(t.Get(ids[0]))
		r[4] = relstore.Bool(published)
		return t.Update(ids[0], r)
	})
}

// visibleTo reports whether the object may appear in results for the
// given querying user: owners see their own objects, everyone sees
// published ones, and the empty user is the catalog-internal superuser.
func (v *view) visibleTo(user string, objectID int64) bool {
	if user == "" {
		return true
	}
	objT := v.tab(TObjects)
	ids, _ := objT.LookupEqual("objects_pk", relstore.Int(objectID))
	if len(ids) == 0 {
		return false
	}
	r := objT.Get(ids[0])
	return r[2].S == user || r[4].AsBool()
}

// filterVisible keeps the object IDs visible to the user.
func (v *view) filterVisible(user string, ids []int64) []int64 {
	if user == "" {
		return ids
	}
	out := ids[:0]
	for _, id := range ids {
		if v.visibleTo(user, id) {
			out = append(out, id)
		}
	}
	return out
}

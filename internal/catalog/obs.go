package catalog

import (
	"time"

	"github.com/gridmeta/hybridcat/internal/obs"
)

// DefaultTraceDepth is the slow-trace ring capacity when Options.Metrics
// is set and Options.TraceDepth is zero.
const DefaultTraceDepth = 32

// catObs groups the catalog's instrument handles. Every field is nil
// when the catalog was opened without Options.Metrics; nil handles are
// no-ops, so the pipeline code records unconditionally.
//
// Families (see DESIGN.md "Observability" for the naming scheme):
//
//	catalog_op_nanos{op}      top-level operation latency
//	query_stage_nanos{stage}  Figure-4 stage latency
//	query_criterion_rows      materialized rows (or posting-list
//	                          cardinality) per criterion probe
//	query_path_total{path}    parallel vs sequential fan-out decisions
//	query_bitmap_containers_total{kind}  containers (array/bitmap/run)
//	                          across criterion posting lists
//	query_intersect_cardinality          per-criterion object-set size
//	                          entering the bitmap intersect stage
//	catalog_wal_commit_nanos  full WAL commit (append + fsync) latency
//	catalog_checkpoints_total
//	catalog_recovery_replayed_records_total / _ops_total
//	catalog_wedged                    1 when durability refuses mutations
//	catalog_snapshot_epoch            published relstore version epoch
//	catalog_registry_generation       definition-registry generation
//	catalog_version_swaps_total       committed version publications
//	catalog_snapshot_pins_total       read-path snapshot pins
type catObs struct {
	reg  *obs.Registry
	ring *obs.TraceRing

	opEvaluate *obs.Histogram
	opSearch   *obs.Histogram
	opResponse *obs.Histogram
	opMutate   *obs.Histogram
	opRank     *obs.Histogram

	stageProbe     *obs.Histogram
	stageRollup    *obs.Histogram
	stageIntersect *obs.Histogram
	stageResponse  *obs.Histogram
	stageRank      *obs.Histogram

	textBuilds *obs.Counter

	criterionRows  *obs.Histogram
	pathParallel   *obs.Counter
	pathSequential *obs.Counter

	bitmapContainersArray  *obs.Counter
	bitmapContainersBitmap *obs.Counter
	bitmapContainersRun    *obs.Counter
	intersectCardinality   *obs.Histogram

	walCommitNanos *obs.Histogram
	checkpoints    *obs.Counter
	replayRecords  *obs.Counter
	replayOps      *obs.Counter

	versionSwaps *obs.Counter
	snapshotPins *obs.Counter
}

// initObs resolves the catalog's instrument handles from Options.Metrics
// and builds the slow-trace ring; called once from Open, before any
// table or cache is used.
func (c *Catalog) initObs() {
	reg := c.opts.Metrics
	if reg == nil {
		return
	}
	depth := c.opts.TraceDepth
	if depth == 0 {
		depth = DefaultTraceDepth
	}
	op := func(name string) *obs.Histogram { return reg.Histogram("catalog_op_nanos", obs.L("op", name)) }
	stage := func(name string) *obs.Histogram {
		return reg.Histogram("query_stage_nanos", obs.L("stage", name))
	}
	c.obsv = catObs{
		reg:  reg,
		ring: obs.NewTraceRing(depth), // negative depth disables tracing

		opEvaluate: op("evaluate"),
		opSearch:   op("search"),
		opResponse: op("response"),
		opMutate:   op("mutate"),
		opRank:     op("rank"),

		stageProbe:     stage("probe"),
		stageRollup:    stage("rollup"),
		stageIntersect: stage("intersect"),
		stageResponse:  stage("response"),
		stageRank:      stage("rank"),

		textBuilds: reg.Counter("textindex_builds_total"),

		criterionRows:  reg.Histogram("query_criterion_rows"),
		pathParallel:   reg.Counter("query_path_total", obs.L("path", "parallel")),
		pathSequential: reg.Counter("query_path_total", obs.L("path", "sequential")),

		bitmapContainersArray:  reg.Counter("query_bitmap_containers_total", obs.L("kind", "array")),
		bitmapContainersBitmap: reg.Counter("query_bitmap_containers_total", obs.L("kind", "bitmap")),
		bitmapContainersRun:    reg.Counter("query_bitmap_containers_total", obs.L("kind", "run")),
		intersectCardinality:   reg.Histogram("query_intersect_cardinality"),

		walCommitNanos: reg.Histogram("catalog_wal_commit_nanos"),
		checkpoints:    reg.Counter("catalog_checkpoints_total"),
		replayRecords:  reg.Counter("catalog_recovery_replayed_records_total"),
		replayOps:      reg.Counter("catalog_recovery_replayed_ops_total"),

		versionSwaps: reg.Counter("catalog_version_swaps_total"),
		snapshotPins: reg.Counter("catalog_snapshot_pins_total"),
	}
	// Epoch gauges read the atomic pointers directly, so scraping them
	// never touches a lock.
	reg.GaugeFunc("catalog_snapshot_epoch", func() int64 { return int64(c.DB.Generation()) })
	// Text-index gauges read the atomic stamped-index pointer; zero
	// until the first ranked query builds it.
	reg.GaugeFunc("textindex_docs", func() int64 {
		if st := c.text.Load(); st != nil {
			return int64(st.idx.Docs())
		}
		return 0
	})
	reg.GaugeFunc("textindex_terms", func() int64 {
		if st := c.text.Load(); st != nil {
			return int64(st.idx.Terms())
		}
		return 0
	})
	reg.GaugeFunc("catalog_registry_generation", func() int64 { return int64(c.Reg.Generation()) })
	// catalog_wedged is 1 once the durability layer refuses further
	// mutations (failed post-failure cleanup left the log tail unknown);
	// /healthz reports the same condition.
	reg.GaugeFunc("catalog_wedged", func() int64 {
		if c.Wedged() != nil {
			return 1
		}
		return 0
	})
}

// Metrics returns the catalog's metrics registry, or nil when the
// catalog was opened without one.
func (c *Catalog) Metrics() *obs.Registry { return c.obsv.reg }

// Traces returns the ring of slowest recorded traces, or nil when
// tracing is off (no registry, or a negative TraceDepth).
func (c *Catalog) Traces() *obs.TraceRing { return c.obsv.ring }

// noopStage is the shared no-op stage closure for uninstrumented paths.
var noopStage = func(int64) {}

// beginOp opens a top-level traced operation: a trace destined for the
// slow ring plus a total-latency observation on h. The returned closure
// finishes both; with no registry everything degenerates to no-ops.
func (c *Catalog) beginOp(name string, h *obs.Histogram) (*obs.Trace, func()) {
	if c.obsv.reg == nil {
		return nil, func() {}
	}
	tr := c.obsv.ring.Begin(name)
	start := time.Now()
	return tr, func() {
		h.Observe(time.Since(start).Nanoseconds())
		c.obsv.ring.Finish(tr)
	}
}

// stageTimer times one pipeline stage into both the trace and the stage
// histogram; either (or both) may be nil.
func (c *Catalog) stageTimer(tr *obs.Trace, name string, h *obs.Histogram) func(rows int64) {
	if tr == nil && h == nil {
		return noopStage
	}
	end := tr.StartStage(name)
	start := time.Now()
	return func(rows int64) {
		end(rows)
		h.Observe(time.Since(start).Nanoseconds())
	}
}

package catalog

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// newLEADCatalog opens a catalog over the LEAD schema with the Figure 3
// dynamic definitions registered.
func newLEADCatalog(t *testing.T, opts Options) *Catalog {
	t.Helper()
	c, err := Open(xmlschema.MustLEAD(), opts)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := c.RegisterAttr("grid", "ARPS", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []string{"dx", "dy", "dz"} {
		if _, err := c.RegisterElem(e, "ARPS", grid.ID, core.DTFloat, ""); err != nil {
			t.Fatal(err)
		}
	}
	gs, err := c.RegisterAttr("grid-stretching", "ARPS", grid.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []string{"dzmin", "reference-height"} {
		if _, err := c.RegisterElem(e, "ARPS", gs.ID, core.DTFloat, ""); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func ingestFig3(t *testing.T, c *Catalog) int64 {
	t.Helper()
	id, err := c.IngestXML("scientist", xmlschema.Figure3Document)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// fig3Variant returns the Figure 3 document with dx replaced.
func fig3Variant(t *testing.T, dx string) string {
	t.Helper()
	doc, err := xmldoc.ParseString(xmlschema.Figure3Document)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range doc.FindAll("attr") {
		if a.ChildText("attrlabl") == "dx" {
			a.Child("attrv").Text = dx
		}
	}
	return doc.String()
}

func TestIngestStoresAllRowKinds(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	id := ingestFig3(t, c)
	if id != 1 || c.ObjectCount() != 1 {
		t.Fatalf("id = %d, count = %d", id, c.ObjectCount())
	}
	for table, want := range map[string]int{
		TClobs:    4, // resourceID, theme x2, detailed
		TAttrData: 5, // resourceID, theme x2, grid, grid-stretching
		TSubAttrs: 1, // grid-stretching -> grid
	} {
		if got := c.DB.MustTable(table).Len(); got != want {
			t.Errorf("%s rows = %d, want %d", table, got, want)
		}
	}
	if got := c.DB.MustTable(TElemData).Len(); got != 11 {
		// resourceID, 2x(themekt+2 themekey), dx, dz, dzmin, ref-height
		t.Errorf("elem rows = %d, want 11", got)
	}
	objs := c.Objects()
	if len(objs) != 1 || objs[0].Owner != "scientist" || !strings.HasPrefix(objs[0].Name, "lead:resource") {
		t.Errorf("objects = %+v", objs)
	}
}

// TestFigure1RoundTrip drives the full hybrid pipeline of Figure 1:
// shred -> store -> query on attributes -> build the ordered XML
// response, and checks the response reproduces the original document.
func TestFigure1RoundTrip(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	id := ingestFig3(t, c)

	q := &Query{}
	q.Attr("theme", "").AddElem("themekey", "", relstore.OpEq, relstore.Str("convective_precipitation_amount"))
	resp, err := c.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 1 || resp[0].ObjectID != id {
		t.Fatalf("resp = %+v", resp)
	}
	got, err := xmldoc.ParseString(resp[0].XML)
	if err != nil {
		t.Fatalf("response is not well-formed: %v\n%s", err, resp[0].XML)
	}
	want, _ := xmldoc.ParseString(xmlschema.Figure3Document)
	if !xmldoc.Equal(want, got) {
		t.Fatalf("round trip differs: %s\ngot: %s", xmldoc.Diff(want, got), resp[0].XML)
	}
}

// TestFigure4WorkedQuery runs the paper's §4 example: objects with a
// grid/ARPS attribute having dx = 1000 that also contain a
// grid-stretching sub-attribute with dzmin = 100.
func TestFigure4WorkedQuery(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	match := ingestFig3(t, c)
	// Distractors: wrong dx; missing grid-stretching criteria value.
	if _, err := c.IngestXML("scientist", fig3Variant(t, "2000")); err != nil {
		t.Fatal(err)
	}

	q := &Query{}
	grid := q.Attr("grid", "ARPS")
	grid.AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(1000))
	st := &AttrCriteria{Name: "grid-stretching", Source: "ARPS"}
	st.AddElem("dzmin", "", relstore.OpEq, relstore.Int(100))
	// The paper's Java API omits the source on dzmin's addElement; our
	// resolution requires the registered identity.
	st.Elems[0].Source = "ARPS"
	grid.AddSub(st)

	ids, err := c.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != match {
		t.Fatalf("ids = %v, want [%d]", ids, match)
	}
}

func TestQueryAttributeOnlyAndMultiCriteria(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	id := ingestFig3(t, c)

	// Existence of any grid/ARPS attribute.
	q := &Query{}
	q.Attr("grid", "ARPS")
	ids, err := c.Evaluate(q)
	if err != nil || len(ids) != 1 || ids[0] != id {
		t.Fatalf("existence query = %v, %v", ids, err)
	}

	// Two top-level criteria: both must hold.
	q = &Query{}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(1000))
	q.Attr("theme", "").AddElem("themekt", "", relstore.OpEq, relstore.Str("CF NetCDF"))
	if ids, _ = c.Evaluate(q); len(ids) != 1 {
		t.Fatalf("two-criteria query = %v", ids)
	}

	// Second criterion failing removes the object.
	q = &Query{}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(1000))
	q.Attr("theme", "").AddElem("themekt", "", relstore.OpEq, relstore.Str("GCMD"))
	if ids, _ = c.Evaluate(q); len(ids) != 0 {
		t.Fatalf("failing second criterion = %v", ids)
	}
}

func TestQuerySameInstanceSemantics(t *testing.T) {
	// Both element predicates must hold on the SAME attribute instance:
	// doc has theme A (kt=CF, key=alpha) and theme B (kt=GCMD, key=beta);
	// a query for kt=CF AND key=beta must not match.
	c := newLEADCatalog(t, Options{})
	xml := `<LEADresource><resourceID>r</resourceID><data><idinfo><keywords>
	  <theme><themekt>CF</themekt><themekey>alpha</themekey></theme>
	  <theme><themekt>GCMD</themekt><themekey>beta</themekey></theme>
	</keywords></idinfo></data></LEADresource>`
	if _, err := c.IngestXML("u", xml); err != nil {
		t.Fatal(err)
	}
	q := &Query{}
	q.Attr("theme", "").
		AddElem("themekt", "", relstore.OpEq, relstore.Str("CF")).
		AddElem("themekey", "", relstore.OpEq, relstore.Str("beta"))
	ids, err := c.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("cross-instance match leaked: %v", ids)
	}
	// Same instance matches.
	q = &Query{}
	q.Attr("theme", "").
		AddElem("themekt", "", relstore.OpEq, relstore.Str("CF")).
		AddElem("themekey", "", relstore.OpEq, relstore.Str("alpha"))
	if ids, _ = c.Evaluate(q); len(ids) != 1 {
		t.Fatalf("same-instance query = %v", ids)
	}
}

func TestQueryRangeOperators(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	for _, dx := range []string{"500", "1000", "1500", "2000"} {
		if _, err := c.IngestXML("u", fig3Variant(t, dx)); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		op   relstore.CmpOp
		val  int64
		want int
	}{
		{relstore.OpEq, 1000, 1},
		{relstore.OpNe, 1000, 3},
		{relstore.OpLt, 1500, 2},
		{relstore.OpLe, 1500, 3},
		{relstore.OpGt, 1500, 1},
		{relstore.OpGe, 1500, 2},
	}
	for _, tc := range cases {
		q := &Query{}
		q.Attr("grid", "ARPS").AddElem("dx", "ARPS", tc.op, relstore.Int(tc.val))
		ids, err := c.Evaluate(q)
		if err != nil {
			t.Fatalf("%v: %v", tc.op, err)
		}
		if len(ids) != tc.want {
			t.Errorf("dx %v %d matched %d objects, want %d", tc.op, tc.val, len(ids), tc.want)
		}
	}
	// String comparison on a structural element.
	q := &Query{}
	q.Attr("theme", "").AddElem("themekt", "", relstore.OpGe, relstore.Str("CF"))
	if ids, _ := c.Evaluate(q); len(ids) != 4 {
		t.Errorf("string >= matched %d", len(ids))
	}
}

func TestQueryUnknownDefinitions(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	ingestFig3(t, c)
	q := &Query{}
	q.Attr("nonexistent", "ARPS")
	_, err := c.Evaluate(q)
	if !errors.Is(err, ErrUnknownDefinition) {
		t.Errorf("err = %v, want ErrUnknownDefinition", err)
	}
	q = &Query{}
	q.Attr("grid", "ARPS").AddElem("nope", "ARPS", relstore.OpEq, relstore.Int(1))
	if _, err := c.Evaluate(q); !errors.Is(err, ErrUnknownDefinition) {
		t.Errorf("elem err = %v", err)
	}
	// Empty query.
	if _, err := c.Evaluate(&Query{}); err == nil {
		t.Error("empty query should fail")
	}
}

func TestResponseMultipleObjectsOrderedAndTagged(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	id1 := ingestFig3(t, c)
	id2, err := c.IngestXML("u", fig3Variant(t, "2000"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.BuildResponse([]int64{id2, id1, id2}) // duplicate + reversed
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 2 || resp[0].ObjectID != id2 || resp[1].ObjectID != id1 {
		t.Fatalf("resp order = %+v", resp)
	}
	for _, r := range resp {
		if _, err := xmldoc.ParseString(r.XML); err != nil {
			t.Errorf("object %d response not well-formed: %v", r.ObjectID, err)
		}
	}
	// Unknown IDs are skipped.
	resp, _ = c.BuildResponse([]int64{9999})
	if len(resp) != 0 {
		t.Errorf("unknown id resp = %+v", resp)
	}
	if resp, _ := c.BuildResponse(nil); resp != nil {
		t.Error("empty request should return nil")
	}
}

func TestFetchDocumentAndDelete(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	id := ingestFig3(t, c)
	doc, err := c.FetchDocument(id)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := xmldoc.ParseString(xmlschema.Figure3Document)
	if !xmldoc.Equal(want, doc) {
		t.Fatalf("fetch differs: %s", xmldoc.Diff(want, doc))
	}
	if ok, err := c.Delete(id); err != nil || !ok {
		t.Fatalf("delete = %v, %v", ok, err)
	}
	if ok, err := c.Delete(id); err != nil || ok {
		t.Errorf("double delete = %v, %v", ok, err)
	}
	if _, err := c.FetchDocument(id); err == nil {
		t.Error("fetch after delete should fail")
	}
	// All rows gone.
	for _, table := range []string{TObjects, TAttrData, TElemData, TSubAttrs, TClobs} {
		if n := c.DB.MustTable(table).Len(); n != 0 {
			t.Errorf("%s retains %d rows after delete", table, n)
		}
	}
}

func TestIngestValidationFailureStoresNothing(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	bad := fig3Variant(t, "not-numeric") // dx declared DTFloat
	if _, err := c.IngestXML("u", bad); err == nil {
		t.Fatal("type-invalid document should fail")
	}
	if c.ObjectCount() != 0 {
		t.Error("failed ingest left an object behind")
	}
	for _, table := range []string{TAttrData, TElemData, TClobs} {
		if n := c.DB.MustTable(table).Len(); n != 0 {
			t.Errorf("%s retains %d rows after failed ingest", table, n)
		}
	}
}

func TestUnmatchedDynamicAttrStaysClobOnlyButFetchable(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	doc, _ := xmldoc.ParseString(xmlschema.Figure3Document)
	doc.FindAll("enttypl")[0].Text = "mystery-model"
	id, err := c.Ingest("u", doc)
	if err != nil {
		t.Fatal(err)
	}
	// Not queryable.
	q := &Query{}
	q.Attr("grid", "ARPS")
	if ids, _ := c.Evaluate(q); len(ids) != 0 {
		t.Error("unmatched dynamic attr should not be queryable")
	}
	// But fully reconstructable from the CLOB.
	got, err := c.FetchDocument(id)
	if err != nil {
		t.Fatal(err)
	}
	if !xmldoc.Equal(doc, got) {
		t.Errorf("clob-only fetch differs: %s", xmldoc.Diff(doc, got))
	}
}

func TestDeepSubAttributeQueryAndAblation(t *testing.T) {
	run := func(opts Options) {
		c := newLEADCatalog(t, opts)
		grid := c.Reg.LookupAttr("grid", "ARPS", 0, "")
		gs := c.Reg.LookupAttr("grid-stretching", "ARPS", grid.ID, "")
		lvl3, err := c.RegisterAttr("level3", "ARPS", gs.ID, "")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RegisterElem("deep", "ARPS", lvl3.ID, core.DTInt, ""); err != nil {
			t.Fatal(err)
		}
		xml := `<LEADresource><resourceID>r</resourceID><data><geospatial><eainfo>
		  <detailed>
		    <enttyp><enttypl>grid</enttypl><enttypds>ARPS</enttypds></enttyp>
		    <attr><attrlabl>grid-stretching</attrlabl><attrdefs>ARPS</attrdefs>
		      <attr><attrlabl>level3</attrlabl><attrdefs>ARPS</attrdefs>
		        <attr><attrlabl>deep</attrlabl><attrdefs>ARPS</attrdefs><attrv>7</attrv></attr>
		      </attr>
		    </attr>
		  </detailed>
		</eainfo></geospatial></data></LEADresource>`
		id, err := c.IngestXML("u", xml)
		if err != nil {
			t.Fatal(err)
		}
		// Three-level nested criteria.
		q := &Query{}
		g := q.Attr("grid", "ARPS")
		s := &AttrCriteria{Name: "grid-stretching", Source: "ARPS"}
		l := &AttrCriteria{Name: "level3", Source: "ARPS"}
		l.AddElem("deep", "ARPS", relstore.OpEq, relstore.Int(7))
		s.AddSub(l)
		g.AddSub(s)
		ids, err := c.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 1 || ids[0] != id {
			t.Fatalf("opts %+v: deep query = %v", opts, ids)
		}
		// Skipping the middle level also matches: containment is
		// any-depth via the inverted list.
		if !opts.DisableInvertedList {
			q = &Query{}
			g = q.Attr("grid", "ARPS")
			l = &AttrCriteria{Name: "level3", Source: "ARPS"}
			l.Elems = nil
			g.AddSub(l)
			// level3's parent in the registry is grid-stretching, so the
			// criteria tree must follow registry identity; resolving
			// level3 directly under grid fails by definition.
			if _, err := c.Evaluate(q); !errors.Is(err, ErrUnknownDefinition) {
				t.Errorf("level3 under grid should be unknown, got %v", err)
			}
		}
		// Wrong deep value does not match.
		q = &Query{}
		g = q.Attr("grid", "ARPS")
		s = &AttrCriteria{Name: "grid-stretching", Source: "ARPS"}
		l = &AttrCriteria{Name: "level3", Source: "ARPS"}
		l.AddElem("deep", "ARPS", relstore.OpEq, relstore.Int(8))
		s.AddSub(l)
		g.AddSub(s)
		if ids, _ := c.Evaluate(q); len(ids) != 0 {
			t.Errorf("opts %+v: wrong value matched %v", opts, ids)
		}
	}
	run(Options{})
	run(Options{DisableInvertedList: true})
}

func TestMultiInstanceSubAttributeContainment(t *testing.T) {
	// Two grid instances in one object; only one contains a stretching
	// sub-attribute with dzmin=100. A query requiring dx=2000 AND
	// dzmin=100 on the SAME grid instance must not match, while dx=1000
	// AND dzmin=100 must.
	c := newLEADCatalog(t, Options{})
	xml := `<LEADresource><resourceID>r</resourceID><data><geospatial><eainfo>
	  <detailed>
	    <enttyp><enttypl>grid</enttypl><enttypds>ARPS</enttypds></enttyp>
	    <attr><attrlabl>dx</attrlabl><attrdefs>ARPS</attrdefs><attrv>1000</attrv></attr>
	    <attr><attrlabl>grid-stretching</attrlabl><attrdefs>ARPS</attrdefs>
	      <attr><attrlabl>dzmin</attrlabl><attrdefs>ARPS</attrdefs><attrv>100</attrv></attr>
	    </attr>
	  </detailed>
	  <detailed>
	    <enttyp><enttypl>grid</enttypl><enttypds>ARPS</enttypds></enttyp>
	    <attr><attrlabl>dx</attrlabl><attrdefs>ARPS</attrdefs><attrv>2000</attrv></attr>
	  </detailed>
	</eainfo></geospatial></data></LEADresource>`
	if _, err := c.IngestXML("u", xml); err != nil {
		t.Fatal(err)
	}
	mk := func(dx int64) *Query {
		q := &Query{}
		g := q.Attr("grid", "ARPS")
		g.AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(dx))
		s := &AttrCriteria{Name: "grid-stretching", Source: "ARPS"}
		s.AddElem("dzmin", "ARPS", relstore.OpEq, relstore.Int(100))
		g.AddSub(s)
		return q
	}
	if ids, err := c.Evaluate(mk(1000)); err != nil || len(ids) != 1 {
		t.Fatalf("dx=1000: %v, %v", ids, err)
	}
	if ids, err := c.Evaluate(mk(2000)); err != nil || len(ids) != 0 {
		t.Fatalf("dx=2000 leaked cross-instance containment: %v, %v", ids, err)
	}
}

func TestUserPrivateDefinitions(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	// Alice registers a private attribute; the same identity is not
	// visible to Bob's queries.
	alice, err := c.RegisterAttr("tuning", "WRF", 0, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterElem("nudge", "WRF", alice.ID, core.DTFloat, "alice"); err != nil {
		t.Fatal(err)
	}
	xml := `<LEADresource><resourceID>r</resourceID><data><geospatial><eainfo>
	  <detailed>
	    <enttyp><enttypl>tuning</enttypl><enttypds>WRF</enttypds></enttyp>
	    <attr><attrlabl>nudge</attrlabl><attrdefs>WRF</attrdefs><attrv>0.5</attrv></attr>
	  </detailed>
	</eainfo></geospatial></data></LEADresource>`
	if _, err := c.IngestXML("alice", xml); err != nil {
		t.Fatal(err)
	}
	qa := &Query{Owner: "alice"}
	qa.Attr("tuning", "WRF").AddElem("nudge", "WRF", relstore.OpEq, relstore.Float(0.5))
	if ids, err := c.Evaluate(qa); err != nil || len(ids) != 1 {
		t.Fatalf("alice query = %v, %v", ids, err)
	}
	qb := &Query{Owner: "bob"}
	qb.Attr("tuning", "WRF")
	if _, err := c.Evaluate(qb); !errors.Is(err, ErrUnknownDefinition) {
		t.Errorf("bob should not resolve alice's definition: %v", err)
	}
}

func TestDefinitionTablesQueryableThroughSQL(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	// The mirrored definition tables participate in relational scans.
	attrT := c.DB.MustTable(TAttrDef)
	found := false
	attrT.Scan(func(_ int64, r relstore.Row) bool {
		if r[1].S == "grid" && r[2].S == "ARPS" {
			found = true
			if !r[6].AsBool() {
				t.Error("grid should be marked dynamic")
			}
		}
		return true
	})
	if !found {
		t.Error("grid definition not mirrored")
	}
	if c.DB.MustTable(TSchemaNodes).Len() != len(c.Schema.Ordered) {
		t.Error("schema_nodes incomplete")
	}
}

func TestConcurrentIngestAndQuery(t *testing.T) {
	c := newLEADCatalog(t, Options{})
	done := make(chan error, 8)
	for w := 0; w < 4; w++ {
		go func(w int) {
			var err error
			for i := 0; i < 20 && err == nil; i++ {
				_, err = c.IngestXML("u", fig3Variant(t, fmt.Sprint(500+w*100+i)))
			}
			done <- err
		}(w)
	}
	for r := 0; r < 4; r++ {
		go func() {
			var err error
			for i := 0; i < 20 && err == nil; i++ {
				q := &Query{}
				q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpGe, relstore.Int(0))
				_, err = c.Evaluate(q)
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if c.ObjectCount() != 80 {
		t.Errorf("objects = %d", c.ObjectCount())
	}
}

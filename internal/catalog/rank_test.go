// Ranked-retrieval suite: the rank operator's guard rails, the
// epoch-stamped index rebuild, and the content-and-structure
// composition invariants checked against the DOM oracle — in the
// external test package for the same baseline-import reason as the
// equivalence suite.
package catalog_test

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/gridmeta/hybridcat/internal/baseline"
	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/obs"
	"github.com/gridmeta/hybridcat/internal/workload"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
)

// openRanked builds a catalog over the workload corpus for the ranked
// tests.
func openRanked(t *testing.T, g *workload.Generator, opts catalog.Options, docs []*xmldoc.Node) *catalog.Catalog {
	t.Helper()
	c, err := catalog.Open(g.Schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RegisterDefinitions(c); err != nil {
		t.Fatal(err)
	}
	for i, d := range docs {
		if _, err := c.Ingest("lab", d); err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
	}
	return c
}

func TestRankedGuards(t *testing.T) {
	cfg := workload.Default()
	cfg.Docs = 10
	g := workload.New(cfg)
	c := openRanked(t, g, catalog.Options{}, g.Corpus())

	// A ranked query refuses the plain evaluate entry points: scores
	// would be silently dropped.
	rq := &catalog.Query{Rank: &catalog.RankSpec{Terms: []string{"pressure"}}}
	if _, err := c.Evaluate(rq); err == nil {
		t.Fatal("Evaluate accepted a ranked query")
	}
	// And the ranked entry point refuses a query with no terms.
	if _, err := c.EvaluateRanked(&catalog.Query{}); err == nil {
		t.Fatal("EvaluateRanked accepted a query with no rank spec")
	}
	if _, err := c.EvaluateRanked(&catalog.Query{Rank: &catalog.RankSpec{}}); err == nil {
		t.Fatal("EvaluateRanked accepted an empty term list")
	}

	// DisableTextIndex turns every ranked entry point into a typed
	// refusal.
	off := openRanked(t, g, catalog.Options{DisableTextIndex: true}, g.Corpus())
	if _, err := off.EvaluateRanked(rq); !errors.Is(err, catalog.ErrTextIndexDisabled) {
		t.Fatalf("disabled index: got %v, want ErrTextIndexDisabled", err)
	}
	if _, err := off.TextStats([]string{"pressure"}); !errors.Is(err, catalog.ErrTextIndexDisabled) {
		t.Fatalf("disabled TextStats: got %v, want ErrTextIndexDisabled", err)
	}
}

// TestRankedEpochRebuild proves the text index is epoch-stamped like
// the other read layers: a mutation invalidates it, the next ranked
// query rebuilds it over the new snapshot and sees the new document,
// and an unchanged catalog never rebuilds.
func TestRankedEpochRebuild(t *testing.T) {
	cfg := workload.Default()
	cfg.Docs = 20
	g := workload.New(cfg)
	reg := obs.NewRegistry()
	c := openRanked(t, g, catalog.Options{Metrics: reg}, g.Corpus())

	q := &catalog.Query{Rank: &catalog.RankSpec{Terms: []string{"radar", "reflectivity"}, K: 100}}
	first, err := c.EvaluateRanked(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EvaluateRanked(q); err != nil {
		t.Fatal(err)
	}
	if builds := reg.Snapshot()["textindex_builds_total"]; builds != 1 {
		t.Fatalf("unchanged catalog rebuilt the index: builds=%v, want 1", builds)
	}

	// Ingest one more document; its keywords must be rankable.
	newID, err := c.Ingest("lab", g.Document(len(g.Corpus())))
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.EvaluateRanked(q)
	if err != nil {
		t.Fatal(err)
	}
	if builds := reg.Snapshot()["textindex_builds_total"]; builds != 2 {
		t.Fatalf("mutation did not trigger a rebuild: builds=%v, want 2", builds)
	}
	// The rebuilt index must be able to surface the new document for a
	// term it carries (every workload document cycles the same themekey
	// vocabulary, so the broad query above admits it).
	found := false
	for _, s := range second {
		if s.ID == newID {
			found = true
		}
	}
	if !found && len(second) > len(first) {
		t.Fatalf("rebuilt ranking grew (%d -> %d) but never surfaced the new document %d",
			len(first), len(second), newID)
	}
}

// TestRankedComposition checks the content-and-structure invariants on
// both executor strategies: ranked+structural results are exactly the
// structural DOM-oracle matches that score, ordered by (score desc, ID
// asc), and the bitmap and row strategies produce bit-identical
// rankings.
func TestRankedComposition(t *testing.T) {
	cfg := workload.Default()
	cfg.Docs = 80
	g := workload.New(cfg)
	corpus := g.Corpus()
	set := openRanked(t, g, catalog.Options{}, corpus)
	rows := openRanked(t, g, catalog.Options{DisableBitmaps: true}, corpus)

	oracle := func(q *catalog.Query) map[int64]bool {
		member := map[int64]bool{}
		for i, d := range corpus {
			if baseline.DocMatches(g.Schema, d, q) {
				member[int64(i+1)] = true
			}
		}
		return member
	}

	for i := 0; i < 40; i++ {
		q := g.RankedStructuralQuery(i)
		q.Rank.K = len(corpus) + 1 // unbounded: every scoring admitted doc
		structural := *q
		structural.Rank = nil
		member := oracle(&structural)

		got, err := set.EvaluateRanked(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		rgot, err := rows.EvaluateRanked(q)
		if err != nil {
			t.Fatalf("query %d (rows): %v", i, err)
		}
		if len(got) != len(rgot) {
			t.Fatalf("query %d: strategies disagree on size: %d vs %d", i, len(got), len(rgot))
		}
		for j := range got {
			if got[j] != rgot[j] {
				t.Fatalf("query %d: rank %d diverges between strategies: %+v vs %+v", i, j, got[j], rgot[j])
			}
		}
		for j, s := range got {
			if !member[s.ID] {
				t.Fatalf("query %d: ranked result %d not admitted by the structural oracle", i, s.ID)
			}
			if s.Score <= 0 {
				t.Fatalf("query %d: non-positive score %v", i, s.Score)
			}
			if j > 0 {
				prev := got[j-1]
				if s.Score > prev.Score || (s.Score == prev.Score && s.ID <= prev.ID) {
					t.Fatalf("query %d: ranking out of order at %d: %+v after %+v", i, j, s, prev)
				}
			}
		}
	}
}

// TestRankedTopKTruncation: the k bound returns exactly the first k of
// the unbounded ranking.
func TestRankedTopKTruncation(t *testing.T) {
	cfg := workload.Default()
	cfg.Docs = 60
	g := workload.New(cfg)
	c := openRanked(t, g, catalog.Options{}, g.Corpus())

	full := &catalog.Query{Rank: &catalog.RankSpec{Terms: []string{"precipitation", "pressure"}, K: 1000}}
	all, err := c.EvaluateRanked(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 10 {
		t.Fatalf("broad ranking only matched %d docs — corpus drifted", len(all))
	}
	for _, k := range []int{1, 3, 10} {
		bounded := &catalog.Query{Rank: &catalog.RankSpec{Terms: full.Rank.Terms, K: k}}
		got, err := c.EvaluateRanked(bounded)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("k=%d returned %d results", k, len(got))
		}
		for i := range got {
			if got[i] != all[i] {
				t.Fatalf("k=%d result %d: %+v != unbounded prefix %+v", k, i, got[i], all[i])
			}
		}
	}
}

// TestRankedConcurrentWithWriter runs ranked readers against a
// concurrent ingest writer: every rebuild of the epoch-stamped index
// races real queries (run under -race by the Makefile search target).
func TestRankedConcurrentWithWriter(t *testing.T) {
	cfg := workload.Default()
	cfg.Docs = 30
	g := workload.New(cfg)
	c := openRanked(t, g, catalog.Options{}, g.Corpus())

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := g.RankedQuery(r*1000 + i)
				if _, err := c.EvaluateRanked(q); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				i++
			}
		}(r)
	}
	for i := 0; i < 16; i++ {
		if _, err := c.Ingest("lab", g.Document(cfg.Docs+i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestRankedSearchResponses: SearchRanked zips scores with the rebuilt
// documents in rank order, and the documents are real response XML.
func TestRankedSearchResponses(t *testing.T) {
	cfg := workload.Default()
	cfg.Docs = 40
	g := workload.New(cfg)
	c := openRanked(t, g, catalog.Options{}, g.Corpus())

	q := &catalog.Query{Rank: &catalog.RankSpec{Terms: []string{"temperature", "humidity"}, K: 8}}
	scored, err := c.EvaluateRanked(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.SearchRanked(t.Context(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != len(scored) {
		t.Fatalf("SearchRanked returned %d docs for %d scored IDs", len(resp), len(scored))
	}
	for i, r := range resp {
		if r.ObjectID != scored[i].ID || r.Score != scored[i].Score {
			t.Fatalf("result %d: (%d, %v) != scored (%d, %v)", i, r.ObjectID, r.Score, scored[i].ID, scored[i].Score)
		}
		if !strings.Contains(r.XML, "<LEADresource>") {
			t.Fatalf("result %d: response is not a rebuilt document: %.80q", i, r.XML)
		}
	}
}

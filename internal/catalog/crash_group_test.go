package catalog

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/gridmeta/hybridcat/internal/faultio"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// The group-commit crash matrix. Group commit moves the durability
// boundary: a batch of records from concurrent writers becomes durable
// with ONE fsync, and every follower in the batch is acknowledged only
// after that fsync returns. Three crash windows need proof beyond the
// base matrix:
//
//   - every filesystem crash point with group commit enabled (the
//     sequential matrix re-run through the batching path),
//   - mid-batch: the crash lands inside a batch's single write or
//     fsync, so the batch is torn — recovery must keep every
//     acknowledged operation and admit nothing that was never issued,
//   - post-fsync-pre-ack: the batch is durable but no follower has
//     been told — recovery must surface the whole batch (acked+batch),
//     the group-commit analogue of the single-writer swap-point window.

// openDurableGroupLEAD mirrors openDurableLEAD with group commit on and
// an immediate (zero-wait) collection window, so the sequential matrix
// stays deterministic while still exercising the batch path.
func openDurableGroupLEAD(t *testing.T, fs faultio.FS, every int) (*Catalog, error) {
	t.Helper()
	c, err := OpenDurable(xmlschema.MustLEAD(), Options{}, DurabilityOptions{
		FS: fs, WALPath: crashWAL, CheckpointEvery: every,
		GroupCommit: true,
	})
	if err != nil {
		return nil, err
	}
	c.clock = func() time.Time { return crashClock }
	return c, nil
}

// TestGroupCrashMatrix re-runs the full filesystem crash matrix with
// group commit enabled: every write/sync/rename/create/truncate crash
// point, recovered state checked against the acked / acked+1 oracle.
func TestGroupCrashMatrix(t *testing.T) {
	ops := crashWorkload(t)
	counts := countCrashPoints(t, ops, openDurableGroupLEAD)
	total := 0
	for _, kind := range []faultio.OpKind{faultio.OpWrite, faultio.OpSync, faultio.OpRename, faultio.OpCreate, faultio.OpTruncate} {
		n := counts[kind]
		total += n
		for i := 1; i <= n; i++ {
			kind, i := kind, i
			t.Run(fmt.Sprintf("%s-%d", kind, i), func(t *testing.T) {
				runCrashPoint(t, ops, faultio.Fault{
					Op: kind, N: i, Mode: faultio.CrashOp, Torn: (i * 7) % 23,
				}, openDurableGroupLEAD)
			})
		}
	}
	t.Logf("group crash matrix: %d fault points (%v)", total, counts)
}

// TestGroupCrashMatrixConcurrentBatches crashes inside real multi-writer
// batches: eight writers race single-record mutations through the group
// path while the filesystem dies at the Nth write or sync. Concurrency
// makes "the operation in flight" a set, so the oracle is containment,
// checked per follower: every ACKED operation must survive recovery
// (the fsync its leader reported covered its record), and nothing that
// was never issued may appear.
func TestGroupCrashMatrixConcurrentBatches(t *testing.T) {
	for _, kind := range []faultio.OpKind{faultio.OpSync, faultio.OpWrite} {
		// Crash points past the run's actual op count simply never fire
		// and degrade to a fault-free run — still a valid oracle check.
		for i := 1; i <= 12; i++ {
			kind, i := kind, i
			t.Run(fmt.Sprintf("%s-%d", kind, i), func(t *testing.T) {
				runGroupBatchCrash(t, faultio.Fault{
					Op: kind, N: i, Mode: faultio.CrashOp, Torn: (i * 5) % 17,
				})
			})
		}
	}
}

func runGroupBatchCrash(t *testing.T, fault faultio.Fault) {
	const writers, perWriter = 8, 6
	mem := faultio.NewMemFS()
	faulty := faultio.NewFaulty(mem, fault)

	var mu sync.Mutex
	acked := map[string]bool{}
	issued := map[string]bool{}

	c, err := OpenDurable(xmlschema.MustLEAD(), Options{}, DurabilityOptions{
		FS: faulty, WALPath: crashWAL, CheckpointEvery: 1000,
		GroupCommit: true, GroupCommitWait: 200 * time.Microsecond,
	})
	if err == nil {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for k := 0; k < perWriter; k++ {
					name := fmt.Sprintf("c-%d-%d", w, k)
					mu.Lock()
					issued[name] = true
					mu.Unlock()
					_, err := c.CreateCollection(name, "ops", 0)
					if err == nil {
						mu.Lock()
						acked[name] = true
						mu.Unlock()
						continue
					}
					if !errors.Is(err, faultio.ErrInjected) && !errors.Is(err, ErrDurability) {
						t.Errorf("%s failed with a non-injected error: %v", name, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}
	if t.Failed() {
		return
	}

	mem.Crash()
	rec, err := openDurableGroupLEAD(t, mem, 1000)
	if err != nil {
		t.Fatalf("recovery after batch crash at %+v (%d acked): %v", fault, len(acked), err)
	}
	got := map[string]bool{}
	for _, ci := range rec.Collections() {
		got[ci.Name] = true
	}
	for name := range acked {
		if !got[name] {
			t.Errorf("acked operation %q lost in recovery (crash at %+v)", name, fault)
		}
	}
	for name := range got {
		if !issued[name] {
			t.Errorf("recovery surfaced %q, which was never issued", name)
		}
	}
	// The recovered catalog must accept new durable work.
	if _, err := rec.CreateCollection("post-crash", "ops", 0); err != nil {
		t.Fatalf("mutation after recovery: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
}

// TestGroupCrashPostFsyncPreAck pins the batch-boundary window the
// filesystem matrix cannot name: the batch's fsync has returned, no
// follower has been acknowledged, and the process dies. The AfterSync
// hook snapshots the page cache (MemFS.Crash) at exactly that instant
// for every workload step; recovery from the snapshot must land on
// acked+batch — the durable record is in the log even though no caller
// ever saw success.
func TestGroupCrashPostFsyncPreAck(t *testing.T) {
	ops := crashWorkload(t)
	for k := range ops {
		k := k
		t.Run(fmt.Sprintf("batch-%d-%s", k, ops[k].name), func(t *testing.T) {
			mem := faultio.NewMemFS()
			oracle := newOracleLEAD(t)
			c, err := openDurableGroupLEAD(t, mem, 1000)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < k; i++ {
				if err := ops[i].run(c); err != nil {
					t.Fatalf("%s: %v", ops[i].name, err)
				}
				if err := ops[i].run(oracle); err != nil {
					t.Fatalf("oracle %s: %v", ops[i].name, err)
				}
			}
			// Arm the window: the batch carrying ops[k] fsyncs, then the
			// page cache freezes before any follower is acked.
			c.dur.gw.AfterSync = func() { mem.Crash() }
			if err := ops[k].run(c); err != nil {
				// The fsync succeeded before the hook fired, so the live
				// process still acks normally.
				t.Fatalf("%s: %v", ops[k].name, err)
			}
			c.dur.gw.AfterSync = nil

			rec, err := openDurableGroupLEAD(t, mem, 1000)
			if err != nil {
				t.Fatalf("recovery after post-fsync-pre-ack crash at %q: %v", ops[k].name, err)
			}
			if err := ops[k].run(oracle); err != nil {
				t.Fatalf("oracle %s: %v", ops[k].name, err)
			}
			if got, want := stateFingerprint(rec), stateFingerprint(oracle); got != want {
				t.Fatalf("post-fsync-pre-ack crash during %q: recovery must replay the durable batch (acked+batch):\n%s",
					ops[k].name, diffFingerprint(want, got))
			}
		})
	}
}

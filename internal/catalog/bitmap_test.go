package catalog

import (
	"errors"
	"fmt"
	"testing"

	"github.com/gridmeta/hybridcat/internal/obs"
	"github.com/gridmeta/hybridcat/internal/relstore"
)

// twinCatalogs returns one catalog on the bitmap pipeline and one on
// the row-path oracle, ingested with the Figure 3 document plus dx
// variants so range and inequality predicates discriminate.
func twinCatalogs(t *testing.T, base Options) (bitmap, oracle *Catalog) {
	t.Helper()
	open := func(disable bool) *Catalog {
		opts := base
		opts.DisableBitmaps = disable
		c := newLEADCatalog(t, opts)
		ingestFig3(t, c)
		for _, dx := range []string{"500", "1000", "2000", "4000"} {
			if _, err := c.IngestXML("scientist", fig3Variant(t, dx)); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	return open(false), open(true)
}

// TestBitmapMatchesRowPathOperators sweeps every comparison operator,
// numeric and string values, OneOf expansion, and the nested rollup,
// asserting the bitmap pipeline and the row-path oracle return
// identical object IDs.
func TestBitmapMatchesRowPathOperators(t *testing.T) {
	bm, or := twinCatalogs(t, Options{})

	dxQ := func(op relstore.CmpOp, v relstore.Value) *Query {
		q := &Query{}
		q.Attr("grid", "ARPS").AddElem("dx", "ARPS", op, v)
		return q
	}
	var queries []*Query
	for _, op := range []relstore.CmpOp{relstore.OpEq, relstore.OpNe, relstore.OpLt, relstore.OpLe, relstore.OpGt, relstore.OpGe} {
		queries = append(queries,
			dxQ(op, relstore.Int(1000)),
			dxQ(op, relstore.Float(2000)),
			dxQ(op, relstore.Int(-5)), // matches all (Ne/Gt/Ge) or none (Eq/Lt/Le)
		)
		// String comparisons probe the sval index.
		sq := &Query{}
		sq.Attr("theme", "").AddElem("themekt", "", op, relstore.Str("CF NetCDF"))
		queries = append(queries, sq)
	}
	// OneOf over mixed hit/miss values.
	oq := &Query{}
	oq.Attr("theme", "").AddElem("themekey", "", relstore.OpEq, relstore.Str("x")).
		Elems[0].OneOf = []relstore.Value{
		relstore.Str("convective_precipitation_amount"),
		relstore.Str("no_such_keyword"),
	}
	queries = append(queries, oq)
	// Nested containment rollup plus a second top-level criterion.
	nq := &Query{}
	ng := nq.Attr("grid", "ARPS")
	ng.AddElem("dx", "ARPS", relstore.OpGe, relstore.Int(1000))
	sub := &AttrCriteria{Name: "grid-stretching", Source: "ARPS"}
	sub.AddElem("dzmin", "ARPS", relstore.OpEq, relstore.Int(100))
	ng.AddSub(sub)
	nq.Attr("theme", "").AddElem("themekt", "", relstore.OpEq, relstore.Str("CF NetCDF"))
	queries = append(queries, nq)
	// No-element criterion: every instance of the definition.
	eq := &Query{}
	eq.Attr("grid", "ARPS")
	queries = append(queries, eq)

	some := 0
	for i, q := range queries {
		want, err1 := or.Evaluate(q)
		got, err2 := bm.Evaluate(q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("query %d: err bitmap=%v oracle=%v", i, err2, err1)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("query %d: bitmap %v != oracle %v", i, got, want)
		}
		if len(want) > 0 {
			some++
		}
	}
	if some < len(queries)/3 {
		t.Fatalf("only %d/%d operator queries matched anything", some, len(queries))
	}
}

// TestBitmapMatchesRowPathAblation runs the recursive-rollup (A1,
// inverted list disabled) variant on both representations.
func TestBitmapMatchesRowPathAblation(t *testing.T) {
	bm, or := twinCatalogs(t, Options{DisableInvertedList: true})
	q := &Query{}
	g := q.Attr("grid", "ARPS")
	g.AddElem("dx", "ARPS", relstore.OpLe, relstore.Int(2000))
	sub := &AttrCriteria{Name: "grid-stretching", Source: "ARPS"}
	sub.AddElem("dzmin", "ARPS", relstore.OpEq, relstore.Int(100))
	g.AddSub(sub)
	want, err := or.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bm.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) || len(want) == 0 {
		t.Fatalf("ablation: bitmap %v != oracle %v", got, want)
	}
}

// TestBitmapObservability asserts the bitmap pipeline feeds the new
// instrument families: container-kind counters and the intersect
// cardinality histogram.
func TestBitmapObservability(t *testing.T) {
	reg := obs.NewRegistry()
	c := newLEADCatalog(t, Options{Metrics: reg})
	ingestFig3(t, c)
	q := &Query{}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpGe, relstore.Int(0))
	q.Attr("theme", "").AddElem("themekt", "", relstore.OpEq, relstore.Str("CF NetCDF"))
	if _, err := c.Evaluate(q); err != nil {
		t.Fatal(err)
	}
	containers := uint64(0)
	for _, kind := range []string{"array", "bitmap", "run"} {
		containers += reg.Counter("query_bitmap_containers_total", obs.L("kind", kind)).Value()
	}
	if containers == 0 {
		t.Error("query_bitmap_containers_total never incremented")
	}
	if reg.Histogram("query_intersect_cardinality").Count() == 0 {
		t.Error("query_intersect_cardinality never observed")
	}
	// The postings layer (not the row probe layer) memoized the probes.
	st := c.CacheStats()
	if st.Postings.Misses == 0 || st.Probe.Misses != 0 {
		t.Errorf("expected postings-layer traffic only: %+v", st)
	}
}

// TestInstKeyRange pins the packing envelope and the sentinel the
// row-path fallback keys on.
func TestInstKeyRange(t *testing.T) {
	k, err := instKey(7, 3)
	if err != nil || k != 7<<instSeqBits|3 {
		t.Fatalf("instKey(7,3) = %d, %v", k, err)
	}
	if k, err := instKey(maxInstObject, instSeqMask); err != nil || k != uint64(maxInstObject)<<instSeqBits|instSeqMask {
		t.Fatalf("instKey(max) = %d, %v", k, err)
	}
	for _, bad := range [][2]int64{{-1, 0}, {0, -1}, {0, instSeqMask + 1}, {maxInstObject + 1, 0}} {
		if _, err := instKey(bad[0], bad[1]); !errors.Is(err, errBitmapRange) {
			t.Errorf("instKey(%d,%d) err = %v, want errBitmapRange", bad[0], bad[1], err)
		}
	}
}

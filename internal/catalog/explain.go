package catalog

import (
	"fmt"

	"github.com/gridmeta/hybridcat/internal/bitset"
	"github.com/gridmeta/hybridcat/internal/relstore"
)

// ExplainQuery runs the Figure-4 pipeline while tracing it: for every
// criteria node it reports the resolved definition and the instance
// counts flowing through direct satisfaction and containment rollup, and
// finally the matching object count. The trace is the textual analogue
// of the paper's Figure 4 flow diagram; mdcat prints it for -explain
// queries.
//
// On the default bitmap pipeline each node line also reports the
// physical shape of its posting list — cardinality plus the
// array/bitmap/run container mix — so plan debugging can see which
// representation each criterion landed in. With Options.DisableBitmaps
// the explain runs (and reports) the row-at-a-time path instead.
func (c *Catalog) ExplainQuery(q *Query) ([]string, error) {
	if len(q.Attrs) == 0 {
		return nil, fmt.Errorf("catalog: query has no attribute criteria")
	}
	v := c.pinView()
	all, tops, err := v.resolve(q)
	if err != nil {
		return nil, err
	}
	if c.opts.DisableBitmaps {
		return v.explainRows(q, all, tops)
	}
	return v.explainBitmap(q, all, tops)
}

// nodeHeader renders the shared per-node prefix of an explain line.
func nodeHeader(n *qNode) string {
	kind := "structural"
	if n.def.Dynamic {
		kind = "dynamic"
	}
	return fmt.Sprintf("node %d: %s attribute %q (source %q, def %d): %d element predicate(s)",
		n.id, kind, n.def.Name, n.def.Source, n.def.ID, len(n.elems))
}

// explainBitmap traces the bitmap pipeline: posting lists per node with
// their container representation, set-based rollup, and the object-set
// intersection.
func (v *view) explainBitmap(q *Query, all, tops []*qNode) ([]string, error) {
	var lines []string
	lines = append(lines, fmt.Sprintf("query: %d criteria node(s), %d top-level (bitmap set ops)", len(all), len(tops)))

	// Stage 1+2: posting lists per node.
	sets := make(map[int]*bitset.Set, len(all))
	for _, n := range all {
		s, err := v.directSatisfiedSet(n)
		if err != nil {
			return nil, err
		}
		sets[n.id] = s
		lines = append(lines, fmt.Sprintf("%s -> %d directly satisfied instance(s) [set: %s]",
			nodeHeader(n), s.Card(), s.Stats()))
	}

	// Stage 3: containment rollup, children first.
	for i := len(all) - 1; i >= 0; i-- {
		n := all[i]
		if len(n.children) == 0 {
			continue
		}
		before := sets[n.id].Card()
		rolled, err := v.rollupSet(n, sets)
		if err != nil {
			return nil, err
		}
		sets[n.id] = rolled
		lines = append(lines, fmt.Sprintf("node %d: containment rollup over %d child criterion(s): %d -> %d instance(s) [set: %s]",
			n.id, len(n.children), before, rolled.Card(), rolled.Stats()))
	}

	// Stage 4: ascending-cardinality AND chain over per-top object sets.
	objSets := make([]*bitset.Set, len(tops))
	for i, top := range tops {
		objSets[i] = objectSet(sets[top.id])
		lines = append(lines, fmt.Sprintf("top node %d: %d candidate object(s) [set: %s]",
			top.id, objSets[i].Card(), objSets[i].Stats()))
	}
	result := andAscending(objSets)
	matches := 0
	result.Iterate(func(k uint64) bool {
		if v.visibleTo(q.Owner, int64(k)) {
			matches++
		}
		return true
	})
	lines = append(lines, fmt.Sprintf("objects satisfying all %d top-level criteria (visible to %q): %d",
		len(tops), q.Owner, matches))
	return lines, nil
}

// explainRows traces the row-at-a-time oracle path.
func (v *view) explainRows(q *Query, all, tops []*qNode) ([]string, error) {
	var lines []string
	lines = append(lines, fmt.Sprintf("query: %d criteria node(s), %d top-level", len(all), len(tops)))

	// Stage 1+2: direct satisfaction, materialized so counts are visible
	// and the rows can feed the rollup.
	satisfied := make(map[int][]relstore.Row, len(all))
	for _, n := range all {
		it, err := v.directSatisfied(n)
		if err != nil {
			return nil, err
		}
		rows := relstore.Collect(it)
		satisfied[n.id] = rows
		lines = append(lines, fmt.Sprintf("%s -> %d directly satisfied instance(s)",
			nodeHeader(n), len(rows)))
	}

	// Stage 3: containment rollup, children first.
	cols := []string{"object_id", "seq_id"}
	for i := len(all) - 1; i >= 0; i-- {
		n := all[i]
		if len(n.children) == 0 {
			continue
		}
		iters := make(map[int]relstore.Iterator, len(all))
		for id, rows := range satisfied {
			iters[id] = relstore.NewSliceIter(cols, rows)
		}
		rolled, err := v.containmentRollup(n, iters)
		if err != nil {
			return nil, err
		}
		rows := relstore.Collect(rolled)
		lines = append(lines, fmt.Sprintf("node %d: containment rollup over %d child criterion(s): %d -> %d instance(s)",
			n.id, len(n.children), len(satisfied[n.id]), len(rows)))
		satisfied[n.id] = rows
	}

	// Stage 4: object counting across top-level criteria.
	perObject := map[int64]map[int]bool{}
	for _, top := range tops {
		for _, r := range satisfied[top.id] {
			m := perObject[r[0].I]
			if m == nil {
				m = map[int]bool{}
				perObject[r[0].I] = m
			}
			m[top.id] = true
		}
	}
	matches := 0
	for id, m := range perObject {
		if len(m) == len(tops) && v.visibleTo(q.Owner, id) {
			matches++
		}
	}
	lines = append(lines, fmt.Sprintf("objects satisfying all %d top-level criteria (visible to %q): %d",
		len(tops), q.Owner, matches))
	return lines, nil
}

package catalog

import (
	"errors"
	"fmt"
)

// ExplainQuery runs the Figure-4 pipeline and renders its compiled,
// executed plan: the operator tree, then per plan node the resolved
// definition, the instance count flowing through it, its physical
// shape (posting-list container mix under the bitmap strategy), and
// whether the probe/postings cache layer answered it — and finally the
// matching object count. The trace is the textual analogue of the
// paper's Figure 4 flow diagram; mdcat prints it for -explain queries.
//
// The explain executes under the same strategy Evaluate would pick
// (bitmap by default, rows under Options.DisableBitmaps or on
// instance-key overflow), so cardinalities and cache hits reflect what
// a real evaluation of the query sees. A ranked query appends the rank
// operator's term statistics and result count.
func (c *Catalog) ExplainQuery(q *Query) ([]string, error) {
	if len(q.Attrs) == 0 && q.Rank == nil {
		return nil, fmt.Errorf("catalog: query has no attribute criteria")
	}
	v := c.pinView()
	if len(q.Attrs) == 0 {
		// Ranked-only: no structural plan to execute.
		return v.explainRank(q, nil, true)
	}

	structural := *q
	structural.Rank = nil
	suffix := " (bitmap set ops)"
	var st execStrategy = setStrategy{}
	if c.opts.DisableBitmaps {
		suffix = ""
		st = rowStrategy{}
	}
	visible, p, err := v.execPlan(&structural, "", nil, st)
	if err != nil && !c.opts.DisableBitmaps && errors.Is(err, errBitmapRange) {
		suffix = ""
		visible, p, err = v.execPlan(&structural, "", nil, rowStrategy{})
	}
	if err != nil {
		return nil, err
	}

	lines := renderPlan(q, p, len(visible), suffix)
	if q.Rank != nil {
		rl, err := v.explainRank(q, visible, false)
		if err != nil {
			return nil, err
		}
		lines = append(lines, rl...)
	}
	return lines, nil
}

// nodeHeader renders the shared per-node prefix of an explain line.
func nodeHeader(n *qNode) string {
	kind := "structural"
	if n.def.Dynamic {
		kind = "dynamic"
	}
	return fmt.Sprintf("node %d: %s attribute %q (source %q, def %d): %d element predicate(s)",
		n.id, kind, n.def.Name, n.def.Source, n.def.ID, len(n.elems))
}

// renderPlan turns an executed plan's node annotations into explain
// lines, one per operator in execution order.
func renderPlan(q *Query, p *queryPlan, visible int, suffix string) []string {
	var lines []string
	lines = append(lines, fmt.Sprintf("query: %d criteria node(s), %d top-level%s", len(p.all), len(p.tops), suffix))
	lines = append(lines, "plan: "+p.planString())
	for _, sc := range p.scans {
		line := fmt.Sprintf("%s -> %d directly satisfied instance(s)", nodeHeader(sc.q), sc.card)
		if sc.shape != "" {
			line += " " + sc.shape
		}
		if sc.cacheHit {
			line += " [cache hit]"
		}
		lines = append(lines, line)
	}
	for _, rn := range p.rollups {
		line := fmt.Sprintf("node %d: containment rollup over %d child criterion(s): %d -> %d instance(s)",
			rn.q.id, len(rn.q.children), rn.beforeCard, rn.card)
		if rn.shape != "" {
			line += " " + rn.shape
		}
		lines = append(lines, line)
	}
	for _, to := range p.topObjs {
		lines = append(lines, fmt.Sprintf("top node %d: %d candidate object(s) %s", to.id, to.card, to.shape))
	}
	lines = append(lines, fmt.Sprintf("objects satisfying all %d top-level criteria (visible to %q): %d",
		len(p.tops), q.Owner, visible))
	return lines
}

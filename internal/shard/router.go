package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
)

// Router semantics. Writes are single-shard: a document belongs to its
// owner's shard, so ingest, delete, and publish go through exactly one
// catalog's group-commit path and the acknowledged-write guarantees are
// the single-node ones. Reads split by query owner:
//
//   - Owner != "": routed to the owner's shard. This is exact for the
//     owner's own objects (all on that shard, §1 privacy default:
//     ingest is unpublished) and for published objects co-located
//     there. Published objects of owners hashed elsewhere require the
//     fan-out read — EvaluateAll/SearchAll — which unions per-shard
//     results under each shard's own visibility filter and therefore
//     reproduces single-catalog semantics exactly.
//   - Owner == "" (superuser): fan out to every shard, merge.
//
// Merged result sets are in ascending global-ID order: per-shard
// Evaluate returns ascending local IDs, the gid encoding preserves that
// order within a shard, and a k-way merge interleaves the shards. The
// order is deterministic for a given cluster, so offset/limit paging
// composes exactly (see SearchPage).

// Ingest routes a parsed document to its owner's shard and returns the
// global object ID.
func (cl *Cluster) Ingest(owner string, doc *xmldoc.Node) (int64, error) {
	idx := cl.ShardFor(owner)
	h := cl.writeHandle(idx)
	defer h.gate.RUnlock()
	local, err := h.cat.Ingest(owner, doc)
	if err != nil {
		return 0, err
	}
	cl.countRoute(idx)
	return cl.GlobalID(idx, local), nil
}

// IngestXML parses and routes an XML document to its owner's shard.
func (cl *Cluster) IngestXML(owner, xml string) (int64, error) {
	idx := cl.ShardFor(owner)
	h := cl.writeHandle(idx)
	defer h.gate.RUnlock()
	local, err := h.cat.IngestXML(owner, xml)
	if err != nil {
		return 0, err
	}
	cl.countRoute(idx)
	return cl.GlobalID(idx, local), nil
}

// Delete removes the object with the given global ID, reporting whether
// it existed.
func (cl *Cluster) Delete(gid int64) (bool, error) {
	idx, local, err := cl.SplitID(gid)
	if err != nil {
		return false, err
	}
	h := cl.writeHandle(idx)
	defer h.gate.RUnlock()
	cl.countRoute(idx)
	return h.cat.Delete(local)
}

// SetPublished publishes or unpublishes the object with the given
// global ID.
func (cl *Cluster) SetPublished(gid int64, published bool) error {
	idx, local, err := cl.SplitID(gid)
	if err != nil {
		return err
	}
	h := cl.writeHandle(idx)
	defer h.gate.RUnlock()
	cl.countRoute(idx)
	return h.cat.SetPublished(local, published)
}

// RegisterAttr registers a dynamic attribute definition on every shard
// (definitions are global: a fan-out query must resolve the same names
// on each instance). Shards assign identical definition IDs because
// they see registrations in the same order; the first shard's
// definition is returned. A mid-broadcast failure leaves earlier shards
// registered — re-issuing the registration is the recovery (it is
// idempotent per shard).
func (cl *Cluster) RegisterAttr(name, source string, parentID int64, owner string) (*core.AttrDef, error) {
	var first *core.AttrDef
	for i := 0; i < cl.n; i++ {
		h := cl.writeHandle(i)
		def, err := h.cat.RegisterAttr(name, source, parentID, owner)
		h.gate.RUnlock()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if first == nil {
			first = def
		}
	}
	return first, nil
}

// RegisterElem registers a dynamic element definition on every shard;
// see RegisterAttr for the broadcast semantics.
func (cl *Cluster) RegisterElem(name, source string, attrID int64, dt core.DataType, owner string) (*core.ElemDef, error) {
	var first *core.ElemDef
	for i := 0; i < cl.n; i++ {
		h := cl.writeHandle(i)
		def, err := h.cat.RegisterElem(name, source, attrID, dt, owner)
		h.gate.RUnlock()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if first == nil {
			first = def
		}
	}
	return first, nil
}

// Evaluate runs the Figure-4 set pipeline. An owner-scoped query routes
// to the owner's shard; a superuser query fans out and merges. Results
// are ascending global IDs.
func (cl *Cluster) Evaluate(q *catalog.Query) ([]int64, error) {
	if q.Owner != "" {
		idx := cl.ShardFor(q.Owner)
		cl.countRoute(idx)
		locals, err := cl.handle(idx).cat.Evaluate(q)
		if err != nil {
			return nil, err
		}
		return cl.globalize(idx, locals), nil
	}
	return cl.EvaluateAll(q)
}

// EvaluateAll fans the query out to every shard and merges, regardless
// of owner. For an owner-scoped query this reproduces single-catalog
// visibility exactly — the owner's objects plus ALL published objects,
// wherever their owners hash — at the cost of touching every shard.
func (cl *Cluster) EvaluateAll(q *catalog.Query) ([]int64, error) {
	cl.fanout.Inc()
	perShard, err := cl.scatterEvaluate(q)
	if err != nil {
		return nil, err
	}
	return cl.mergeIDs(perShard), nil
}

// scatterEvaluate runs Evaluate concurrently on every shard, returning
// per-shard local ID lists. A definition unknown on one shard yields an
// empty contribution; the query fails only if every shard refuses it
// (the definition does not exist anywhere) or a shard fails for any
// other reason.
func (cl *Cluster) scatterEvaluate(q *catalog.Query) ([][]int64, error) {
	t := cl.table.Load()
	perShard := make([][]int64, len(t.shards))
	errs := make([]error, len(t.shards))
	var wg sync.WaitGroup
	for i, h := range t.shards {
		wg.Add(1)
		go func(i int, h *shardHandle) {
			defer wg.Done()
			perShard[i], errs[i] = h.cat.Evaluate(q)
		}(i, h)
	}
	wg.Wait()
	unknown := 0
	var lastUnknown error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, catalog.ErrUnknownDefinition) {
			unknown++
			lastUnknown = err
			perShard[i] = nil
			continue
		}
		return nil, fmt.Errorf("shard %d: %w", i, err)
	}
	if unknown == len(errs) {
		return nil, lastUnknown
	}
	return perShard, nil
}

// globalize maps one shard's ascending local IDs to global IDs
// (ascending, by construction of the encoding).
func (cl *Cluster) globalize(idx int, locals []int64) []int64 {
	out := make([]int64, len(locals))
	for i, id := range locals {
		out[i] = cl.GlobalID(idx, id)
	}
	return out
}

// mergeIDs k-way merges per-shard ascending local ID lists into one
// ascending global ID list.
func (cl *Cluster) mergeIDs(perShard [][]int64) []int64 {
	total := 0
	for _, ids := range perShard {
		total += len(ids)
	}
	out := make([]int64, 0, total)
	heads := make([]int, len(perShard))
	for len(out) < total {
		best, bestGid := -1, int64(0)
		for i, ids := range perShard {
			if heads[i] >= len(ids) {
				continue
			}
			gid := cl.GlobalID(i, ids[heads[i]])
			if best < 0 || gid < bestGid {
				best, bestGid = i, gid
			}
		}
		out = append(out, bestGid)
		heads[best]++
	}
	return out
}

// Search evaluates the query and builds the tagged response documents,
// in ascending global-ID order. Owner-scoped queries route; superuser
// queries fan out.
func (cl *Cluster) Search(q *catalog.Query) ([]catalog.Response, error) {
	resp, _, err := cl.SearchPage(q, 0, 0)
	return resp, err
}

// SearchAll is Search with unconditional fan-out (see EvaluateAll).
func (cl *Cluster) SearchAll(q *catalog.Query) ([]catalog.Response, error) {
	ids, err := cl.EvaluateAll(q)
	if err != nil {
		return nil, err
	}
	return cl.BuildResponse(ids)
}

// SearchPage evaluates the query and builds responses for one page of
// the merged result set: entries [offset, offset+limit) of the
// ascending global-ID order, with the full match count. limit <= 0
// means no limit. Responses are built only for the page, on the owning
// shards — so a deep page over a fan-out query still touches each shard
// for evaluation but builds at most `limit` documents.
func (cl *Cluster) SearchPage(q *catalog.Query, offset, limit int) ([]catalog.Response, int, error) {
	var ids []int64
	var err error
	if q.Owner != "" {
		idx := cl.ShardFor(q.Owner)
		cl.countRoute(idx)
		locals, lerr := cl.handle(idx).cat.Evaluate(q)
		if lerr != nil {
			return nil, 0, lerr
		}
		ids = cl.globalize(idx, locals)
	} else {
		ids, err = cl.EvaluateAll(q)
		if err != nil {
			return nil, 0, err
		}
	}
	total := len(ids)
	if offset > 0 {
		if offset >= len(ids) {
			return nil, total, nil
		}
		ids = ids[offset:]
	}
	if limit > 0 && limit < len(ids) {
		ids = ids[:limit]
	}
	resp, err := cl.BuildResponse(ids)
	if err != nil {
		return nil, 0, err
	}
	return resp, total, nil
}

// BuildResponse reconstructs the response documents for the given
// global IDs, preserving their order. Unknown IDs are skipped, matching
// the single-catalog contract.
func (cl *Cluster) BuildResponse(gids []int64) ([]catalog.Response, error) {
	// Group the page by shard, keeping each shard's locals in request
	// order, then reassemble in the caller's order.
	byShard := make(map[int][]int64)
	for _, gid := range gids {
		idx, local, err := cl.SplitID(gid)
		if err != nil {
			return nil, err
		}
		byShard[idx] = append(byShard[idx], local)
	}
	built := make(map[int64]catalog.Response, len(gids))
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, cl.n)
	for idx, locals := range byShard {
		wg.Add(1)
		go func(idx int, locals []int64) {
			defer wg.Done()
			resp, err := cl.handle(idx).cat.BuildResponse(locals)
			if err != nil {
				errs[idx] = fmt.Errorf("shard %d: %w", idx, err)
				return
			}
			mu.Lock()
			for _, r := range resp {
				gid := cl.GlobalID(idx, r.ObjectID)
				built[gid] = catalog.Response{ObjectID: gid, XML: r.XML}
			}
			mu.Unlock()
		}(idx, locals)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]catalog.Response, 0, len(built))
	for _, gid := range gids {
		if r, ok := built[gid]; ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// FetchDocument reconstructs one object's full document by global ID.
func (cl *Cluster) FetchDocument(gid int64) (*xmldoc.Node, error) {
	idx, local, err := cl.SplitID(gid)
	if err != nil {
		return nil, err
	}
	cl.countRoute(idx)
	return cl.handle(idx).cat.FetchDocument(local)
}

// Objects lists every shard's objects merged in ascending global-ID
// order, with IDs rewritten to global.
func (cl *Cluster) Objects() []catalog.ObjectInfo {
	t := cl.table.Load()
	var out []catalog.ObjectInfo
	for i, h := range t.shards {
		for _, o := range h.cat.Objects() {
			o.ID = cl.GlobalID(i, o.ID)
			out = append(out, o)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// ObjectCount returns the total object count across shards.
func (cl *Cluster) ObjectCount() int {
	n := 0
	for _, h := range cl.table.Load().shards {
		n += h.cat.ObjectCount()
	}
	return n
}

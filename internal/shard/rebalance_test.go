// Rebalance correctness: a live shard move must lose no acknowledged
// write, and the crash matrix drives an injected crash through every
// rename the move performs — bracketing the routing-table flip — then
// recovers the cluster from what is on disk and checks the serving
// invariant: every acknowledged document is served by exactly one
// shard; a crash leaves the old directory serving or the new one,
// never neither and never both.
package shard_test

import (
	"fmt"
	"testing"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/faultio"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/shard"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// rebalanceDoc builds a minimal LEAD document whose themekey is unique
// to the index, so presence after recovery is checkable with one
// superuser point query.
func rebalanceDoc(i int) *xmldoc.Node {
	root := xmldoc.NewNode("LEADresource")
	root.Append(xmldoc.NewLeaf("resourceID", fmt.Sprintf("lead:reb/%04d", i)))
	data := xmldoc.NewNode("data")
	idinfo := xmldoc.NewNode("idinfo")
	keywords := xmldoc.NewNode("keywords")
	theme := xmldoc.NewNode("theme")
	theme.Append(
		xmldoc.NewLeaf("themekt", "none"),
		xmldoc.NewLeaf("themekey", rebalanceKey(i)),
	)
	keywords.Append(theme)
	idinfo.Append(keywords)
	data.Append(idinfo)
	root.Append(data)
	return root
}

func rebalanceKey(i int) string { return fmt.Sprintf("reb-key-%04d", i) }

func rebalanceQuery(i int) *catalog.Query {
	q := &catalog.Query{}
	q.Attr("theme", "").AddElem("themekey", "", relstore.OpEq, relstore.Str(rebalanceKey(i)))
	return q
}

func rebalanceOwner(i int) string { return fmt.Sprintf("tenant-%d", i%6) }

func openRebalanceCluster(fs faultio.FS) (*shard.Cluster, error) {
	return shard.Open(shard.Options{
		Schema:     xmlschema.MustLEAD(),
		Root:       "root",
		Shards:     2,
		Durability: catalog.DurabilityOptions{FS: fs},
	})
}

// TestRebalanceLive moves a shard while writers keep ingesting: every
// acknowledged write — before, during, or after the move — must be
// served afterwards, and the move must survive a clean close/reopen
// (the routing table persists the new directory).
func TestRebalanceLive(t *testing.T) {
	mem := faultio.NewMemFS()
	cl, err := openRebalanceCluster(mem)
	if err != nil {
		t.Fatal(err)
	}
	const before, during = 24, 16
	for i := 0; i < before; i++ {
		if _, err := cl.Ingest(rebalanceOwner(i), rebalanceDoc(i)); err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
	}

	// Writers race the rebalance; the write gate must hand their shard's
	// in-flight mutations to exactly one instance.
	done := make(chan error, 1)
	go func() {
		for i := before; i < before+during; i++ {
			if _, err := cl.Ingest(rebalanceOwner(i), rebalanceDoc(i)); err != nil {
				done <- fmt.Errorf("doc %d: %w", i, err)
				return
			}
		}
		done <- nil
	}()
	if err := cl.Rebalance(1, "root/shard-1-moved"); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	total := before + during
	verify := func(cl *shard.Cluster, phase string) {
		t.Helper()
		if got := cl.ObjectCount(); got != total {
			t.Fatalf("%s: object count %d, want %d", phase, got, total)
		}
		for i := 0; i < total; i++ {
			ids, err := cl.Evaluate(rebalanceQuery(i))
			if err != nil {
				t.Fatalf("%s: doc %d: %v", phase, i, err)
			}
			if len(ids) != 1 {
				t.Fatalf("%s: doc %d served %d times, want exactly once", phase, i, len(ids))
			}
		}
	}
	verify(cl, "after move")
	stats := cl.Stats()
	if stats[1].Dir != "root/shard-1-moved" {
		t.Fatalf("shard 1 dir = %q after move", stats[1].Dir)
	}
	// Post-move writes land on the new instance and survive reopen.
	if _, err := cl.Ingest(rebalanceOwner(total), rebalanceDoc(total)); err != nil {
		t.Fatal(err)
	}
	total++
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := openRebalanceCluster(mem)
	if err != nil {
		t.Fatalf("reopen after move: %v", err)
	}
	defer reopened.Close()
	if got := reopened.Stats()[1].Dir; got != "root/shard-1-moved" {
		t.Fatalf("reopened shard 1 dir = %q", got)
	}
	verify(reopened, "after reopen")
}

// TestRebalanceCrashMatrix enumerates every rename the scenario
// performs (routing-table creation, bootstrap snapshot ship, the
// routing flip, checkpoint snapshots on close) with a fault-free
// counting run, then for each N re-runs it with a crash injected at the
// Nth rename, drops the unsynced page cache, reopens the cluster from
// the surviving files, and checks: acked ⊆ recovered ⊆ issued, and
// every acknowledged document is served exactly once — whichever side
// of the flip the crash landed on.
func TestRebalanceCrashMatrix(t *testing.T) {
	scenario := func(fs faultio.FS) (acked, issued []int) {
		cl, err := openRebalanceCluster(fs)
		if err != nil {
			return nil, nil
		}
		ingest := func(i int) {
			issued = append(issued, i)
			if _, err := cl.Ingest(rebalanceOwner(i), rebalanceDoc(i)); err == nil {
				acked = append(acked, i)
			}
		}
		for i := 0; i < 10; i++ {
			ingest(i)
		}
		moved := cl.Rebalance(1, "root/shard-1-moved") == nil
		if moved {
			for i := 10; i < 15; i++ {
				ingest(i)
			}
		}
		_ = cl.Close()
		return acked, issued
	}

	// Counting run: how many renames does the full scenario perform?
	counter := faultio.NewFaulty(faultio.NewMemFS(), faultio.Fault{})
	if acked, _ := scenario(counter); len(acked) != 15 {
		t.Fatalf("fault-free run acked %d docs, want 15", len(acked))
	}
	renames := counter.Counts()[faultio.OpRename]
	if renames < 4 {
		t.Fatalf("scenario performed only %d renames; matrix would not bracket the flip", renames)
	}

	for n := 1; n <= renames; n++ {
		t.Run(fmt.Sprintf("rename-%d", n), func(t *testing.T) {
			mem := faultio.NewMemFS()
			faulty := faultio.NewFaulty(mem, faultio.Fault{
				Op: faultio.OpRename, N: n, Mode: faultio.CrashOp,
			})
			acked, issued := scenario(faulty)
			mem.Crash()

			recovered, err := openRebalanceCluster(mem)
			if err != nil {
				t.Fatalf("recovery after crash at rename %d: %v", n, err)
			}
			defer recovered.Close()

			count := recovered.ObjectCount()
			if count < len(acked) || count > len(issued) {
				t.Fatalf("recovered %d objects; acked %d, issued %d", count, len(acked), len(issued))
			}
			// Exactly-once serving: the flip is atomic, so each acked doc
			// lives on the old shard instance or the new one — never zero
			// copies (lost write) and never two (double-serving).
			for _, i := range acked {
				ids, err := recovered.Evaluate(rebalanceQuery(i))
				if err != nil {
					t.Fatalf("doc %d: %v", i, err)
				}
				if len(ids) != 1 {
					t.Fatalf("acked doc %d served %d times after crash at rename %d", i, len(ids), n)
				}
			}
		})
	}
}

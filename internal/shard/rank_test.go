// Sharded ranked-retrieval oracle: BM25 rankings produced by the
// two-phase global-statistics scatter on 1-shard and 4-shard clusters
// must be bit-identical (by score, with documents compared as XML so
// topology-dependent IDs drop out) to a single catalog holding the
// union of the shards — for pure ranked queries and for
// content-and-structure compositions. Run under -race by the Makefile
// search target.
package shard_test

import (
	"fmt"
	"sort"
	"testing"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/workload"
)

func TestShardRankedEquivalence(t *testing.T) {
	cfg := workload.Default()
	cfg.Docs = 96
	g := workload.New(cfg)
	raw := g.Corpus()
	corpus := make([]*workloadDoc, len(raw))
	for i, d := range raw {
		corpus[i] = &workloadDoc{owner: equivOwner(i), doc: d}
	}

	single, err := catalog.Open(g.Schema, catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RegisterDefinitions(single); err != nil {
		t.Fatal(err)
	}
	for i, d := range raw {
		if _, err := single.Ingest(equivOwner(i), d); err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
	}

	one, _ := openCluster(t, g, 1, corpus)
	four, _ := openCluster(t, g, 4, corpus)

	// A ranked result set normalized for cross-topology comparison:
	// (score, response XML) pairs sorted score-desc then XML, so shards'
	// differing tie-break IDs cannot split the comparison.
	type cell struct {
		Score float64
		XML   string
	}
	normalize := func(resp []catalog.RankedResponse) []cell {
		out := make([]cell, len(resp))
		for i, r := range resp {
			out[i] = cell{Score: r.Score, XML: r.XML}
		}
		sort.Slice(out, func(a, b int) bool {
			if out[a].Score != out[b].Score {
				return out[a].Score > out[b].Score
			}
			return out[a].XML < out[b].XML
		})
		return out
	}
	singleRanked := func(q *catalog.Query) []cell {
		resp, err := single.SearchRanked(t.Context(), q)
		if err != nil {
			t.Fatal(err)
		}
		return normalize(resp)
	}
	clusterRanked := func(cl interface {
		SearchRanked(*catalog.Query, bool) ([]catalog.RankedResponse, error)
	}, q *catalog.Query) []cell {
		resp, err := cl.SearchRanked(q, true)
		if err != nil {
			t.Fatal(err)
		}
		return normalize(resp)
	}

	nonEmpty := 0
	for i := 0; i < 30; i++ {
		var q *catalog.Query
		if i%2 == 0 {
			q = g.RankedQuery(i)
		} else {
			q = g.RankedStructuralQuery(i)
		}
		q.Rank.K = 25
		name := fmt.Sprintf("ranked-%d", i)

		want := singleRanked(q)
		got1 := clusterRanked(one, q)
		got4 := clusterRanked(four, q)
		if len(want) > 0 {
			nonEmpty++
		}
		// The k-th score may be shared by more documents than k admits;
		// that boundary tie group is cut by ID, which differs across
		// topologies. Scores must agree position-by-position everywhere;
		// documents must agree exactly above the boundary score.
		boundary := 0.0
		if len(want) > 0 {
			boundary = want[len(want)-1].Score
		}
		for _, pair := range []struct {
			label string
			got   []cell
		}{{"1-shard", got1}, {"4-shard", got4}} {
			if len(pair.got) != len(want) {
				t.Fatalf("%s: %s returned %d results, single returned %d",
					name, pair.label, len(pair.got), len(want))
			}
			for j := range want {
				if pair.got[j].Score != want[j].Score {
					t.Errorf("%s: %s score %d: %v != single %v (global-stats scatter must be bit-identical)",
						name, pair.label, j, pair.got[j].Score, want[j].Score)
				}
				if want[j].Score > boundary && pair.got[j].XML != want[j].XML {
					t.Errorf("%s: %s document %d diverges from single catalog", name, pair.label, j)
				}
			}
		}
	}
	if nonEmpty < 10 {
		t.Fatalf("only %d/30 ranked queries matched anything — workload too sparse", nonEmpty)
	}

	// Unbounded rankings (k past the corpus size) have no truncation
	// boundary, so every topology must produce the identical (score,
	// document) multiset.
	for i := 0; i < 10; i++ {
		q := g.RankedQuery(i)
		q.Rank.K = cfg.Docs * 2
		want := singleRanked(q)
		for _, pair := range []struct {
			label string
			got   []cell
		}{{"1-shard", clusterRanked(one, q)}, {"4-shard", clusterRanked(four, q)}} {
			if len(pair.got) != len(want) {
				t.Fatalf("unbounded-%d: %s returned %d results, single returned %d",
					i, pair.label, len(pair.got), len(want))
			}
			for j := range want {
				if pair.got[j] != want[j] {
					t.Errorf("unbounded-%d: %s result %d diverges (score %v vs %v)",
						i, pair.label, j, pair.got[j].Score, want[j].Score)
				}
			}
		}
	}

	// Owner-routed ranked reads resolve on one shard and must at least
	// return that shard's admitted documents in order; sanity-check the
	// route returns something for an owner with matching keywords.
	q := g.RankedQuery(3)
	q.Owner = equivOwner(3)
	scored, err := four.EvaluateRanked(q)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < len(scored); j++ {
		if scored[j].Score > scored[j-1].Score {
			t.Fatalf("owner-routed ranking out of order at %d: %+v after %+v", j, scored[j], scored[j-1])
		}
	}
}

// Package shard partitions the catalog by owner across N embedded
// catalog instances, each with its own write-ahead log and checkpoint
// directory, behind a scatter-gather router. The design follows the
// POOL File Catalog's federation of per-site catalogs behind one lookup
// interface: the shard key is the document owner (FNV-1a hash), so one
// user's private metadata lives entirely on one shard and the common
// case — a user querying their own unpublished data — touches exactly
// one instance. Cross-owner (superuser) queries fan out to every shard
// and merge the per-shard Figure-4 result sets into one stable global
// order.
//
// Object identity: each shard assigns local object IDs independently,
// and the router exposes a global ID that interleaves them,
//
//	gid = local*N + shard
//
// so per-shard ascending ID order maps to ascending global order within
// the shard and a k-way merge of per-shard results is globally sorted.
// The encoding makes the shard count part of the cluster's identity: it
// is fixed when the cluster directory is created, persisted in the
// routing table file, and a reopen with a different -shards value is
// refused. Rebalancing moves a shard to a new directory (snapshot ship
// + WAL tail replay + atomic routing flip, see rebalance.go) but never
// changes N.
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/faultio"
	"github.com/gridmeta/hybridcat/internal/obs"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// RoutingFile is the cluster's routing table file name, under Root.
const RoutingFile = "routing.json"

// walFile is each shard's write-ahead log file name, under its dir.
const walFile = "catalog.wal"

// Options configures Open.
type Options struct {
	// Schema is the metadata schema every shard catalog opens with.
	Schema *xmlschema.Schema
	// Root is the cluster directory: the routing table lives at
	// Root/routing.json and default shard directories at Root/shard-i.
	Root string
	// Shards is the shard count when creating a new cluster; ignored (but
	// validated, if non-zero) when Root already holds a routing table,
	// because the global-ID encoding fixes N at creation. 0 means 1 on
	// creation, "whatever the routing table says" on reopen.
	Shards int
	// Dirs overrides the default shard directories on creation; must have
	// exactly Shards entries. Ignored on reopen — the routing table,
	// which tracks rebalances, wins.
	Dirs []string
	// Catalog is the per-shard catalog configuration. A Metrics registry
	// here is shared by every shard (counters aggregate across shards)
	// and carries the cluster's own shard_* instruments.
	Catalog catalog.Options
	// Durability is the per-shard durability template: FS, NoSync,
	// CheckpointEvery and the group-commit knobs apply to every shard;
	// WALPath and SnapshotPath are derived per shard and ignored here.
	Durability catalog.DurabilityOptions
}

// Cluster is a sharded catalog: N embedded durable catalog instances
// behind an owner-hash router. All methods are safe for concurrent use.
type Cluster struct {
	schema      *xmlschema.Schema
	opts        Options
	fs          faultio.FS
	routingPath string
	n           int

	// table is the live routing table; readers load it lock-free, and a
	// rebalance swaps it atomically after the on-disk flip.
	table atomic.Pointer[routing]
	// rebMu serializes rebalances (one shard move at a time).
	rebMu  sync.Mutex
	closed atomic.Bool

	reg        *obs.Registry
	routeTotal []*obs.Counter
	fanout     *obs.Counter
	rebalances *obs.Counter
}

// routing is one immutable version of the shard table.
type routing struct {
	shards []*shardHandle
}

// shardHandle binds one shard slot to its current catalog instance. The
// gate closes the race between routing and writing: writers hold it
// shared around the shard mutation, and a rebalance holds it exclusive
// across the final WAL drain and the routing flip, so no acknowledged
// write can land on a shard instance after its state was shipped away.
type shardHandle struct {
	idx  int
	dir  string
	cat  *catalog.Catalog
	gate *sync.RWMutex
}

// routingDoc is the persisted routing table. The file is written with
// the same temp + fsync + rename protocol as catalog snapshots, so the
// flip during a rebalance is atomic: a crash at any instant leaves
// either the old table (old shard directory serves) or the new one (new
// directory serves), never a torn file and never both.
type routingDoc struct {
	Version int      `json:"version"`
	Dirs    []string `json:"dirs"`
}

// Open opens (or creates) a sharded cluster under opts.Root. On
// creation it writes the routing table and fresh shard directories; on
// reopen each shard recovers independently from its own snapshot + WAL,
// exactly as a single durable catalog would.
func Open(opts Options) (*Cluster, error) {
	if opts.Schema == nil {
		return nil, fmt.Errorf("shard: Options.Schema is required")
	}
	if opts.Root == "" {
		return nil, fmt.Errorf("shard: Options.Root is required")
	}
	fs := opts.Durability.FS
	if fs == nil {
		fs = faultio.OS{}
	}
	cl := &Cluster{
		schema:      opts.Schema,
		opts:        opts,
		fs:          fs,
		routingPath: filepath.Join(opts.Root, RoutingFile),
		reg:         opts.Catalog.Metrics,
	}
	if _, isOS := fs.(faultio.OS); isOS {
		if err := os.MkdirAll(opts.Root, 0o755); err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
	}

	dirs, err := cl.loadOrCreateRouting()
	if err != nil {
		return nil, err
	}
	cl.n = len(dirs)

	shards := make([]*shardHandle, cl.n)
	for i, dir := range dirs {
		cat, err := cl.openShardCatalog(dir)
		if err != nil {
			for _, h := range shards[:i] {
				_ = h.cat.Close()
			}
			return nil, fmt.Errorf("shard %d (%s): %w", i, dir, err)
		}
		shards[i] = &shardHandle{idx: i, dir: dir, cat: cat, gate: &sync.RWMutex{}}
	}
	cl.table.Store(&routing{shards: shards})
	cl.initMetrics()
	return cl, nil
}

// loadOrCreateRouting reads the routing table, or writes a fresh one
// from Shards/Dirs when the cluster is new. It returns the shard dirs.
func (cl *Cluster) loadOrCreateRouting() ([]string, error) {
	if _, err := cl.fs.Size(cl.routingPath); err == nil {
		doc, err := cl.readRouting()
		if err != nil {
			return nil, err
		}
		if cl.opts.Shards != 0 && cl.opts.Shards != len(doc.Dirs) {
			return nil, fmt.Errorf("shard: cluster at %s has %d shards; -shards %d would corrupt global IDs",
				cl.opts.Root, len(doc.Dirs), cl.opts.Shards)
		}
		return doc.Dirs, nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("shard: routing table: %w", err)
	}
	n := cl.opts.Shards
	if n <= 0 {
		n = 1
	}
	dirs := cl.opts.Dirs
	if len(dirs) == 0 {
		dirs = make([]string, n)
		for i := range dirs {
			dirs[i] = filepath.Join(cl.opts.Root, "shard-"+strconv.Itoa(i))
		}
	} else if len(dirs) != n {
		return nil, fmt.Errorf("shard: %d dirs for %d shards", len(dirs), n)
	}
	if err := cl.saveRouting(dirs); err != nil {
		return nil, err
	}
	return dirs, nil
}

// readRouting loads and validates the persisted routing table.
func (cl *Cluster) readRouting() (*routingDoc, error) {
	f, err := cl.fs.Open(cl.routingPath)
	if err != nil {
		return nil, fmt.Errorf("shard: routing table: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("shard: routing table: %w", err)
	}
	var doc routingDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("shard: routing table %s: %w", cl.routingPath, err)
	}
	if doc.Version != 1 || len(doc.Dirs) == 0 {
		return nil, fmt.Errorf("shard: routing table %s: bad version or empty dirs", cl.routingPath)
	}
	return &doc, nil
}

// saveRouting atomically replaces the routing table file (temp + fsync
// + rename). This write IS the rebalance commit point.
func (cl *Cluster) saveRouting(dirs []string) error {
	data, err := json.MarshalIndent(routingDoc{Version: 1, Dirs: dirs}, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(cl.fs, cl.routingPath, func(w io.Writer) error {
		_, werr := w.Write(append(data, '\n'))
		return werr
	})
}

// atomicWrite writes path via temp + fsync + rename so a crash leaves
// either the old file or the complete new one.
func atomicWrite(fs faultio.FS, path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	return fs.Rename(tmp, path)
}

// openShardCatalog opens one shard's durable catalog under dir, using
// the cluster's durability template.
func (cl *Cluster) openShardCatalog(dir string) (*catalog.Catalog, error) {
	if _, isOS := cl.fs.(faultio.OS); isOS {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	dopts := cl.opts.Durability
	dopts.FS = cl.fs
	dopts.WALPath = filepath.Join(dir, walFile)
	dopts.SnapshotPath = ""
	return catalog.OpenDurable(cl.schema, cl.opts.Catalog, dopts)
}

// initMetrics registers the cluster's shard_* instruments on the shared
// registry. Gauges read through the atomic routing table, so they track
// the live instance across rebalances.
func (cl *Cluster) initMetrics() {
	if cl.reg == nil {
		return
	}
	cl.fanout = cl.reg.Counter("shard_fanout_queries_total")
	cl.rebalances = cl.reg.Counter("shard_rebalance_total")
	cl.routeTotal = make([]*obs.Counter, cl.n)
	for i := 0; i < cl.n; i++ {
		i := i
		label := obs.L("shard", strconv.Itoa(i))
		cl.routeTotal[i] = cl.reg.Counter("shard_route_total", label)
		cl.reg.GaugeFunc("shard_epoch", func() int64 {
			return int64(cl.handle(i).cat.DB.Generation())
		}, label)
		cl.reg.GaugeFunc("shard_published_seq", func() int64 {
			return int64(cl.handle(i).cat.PublishedSeq())
		}, label)
		cl.reg.GaugeFunc("shard_objects", func() int64 {
			return int64(cl.handle(i).cat.ObjectCount())
		}, label)
	}
}

// countRoute bumps the single-shard routing counter for shard idx.
func (cl *Cluster) countRoute(idx int) {
	if cl.routeTotal != nil {
		cl.routeTotal[idx].Inc()
	}
}

// Shards returns the cluster's fixed shard count.
func (cl *Cluster) Shards() int { return cl.n }

// Metrics returns the shared metrics registry (nil when opened without
// one).
func (cl *Cluster) Metrics() *obs.Registry { return cl.reg }

// ShardFor returns the shard index owning the given user's documents:
// FNV-1a over the owner name, mod the shard count.
func (cl *Cluster) ShardFor(owner string) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(owner))
	return int(h.Sum64() % uint64(cl.n))
}

// GlobalID encodes a shard-local object ID as a cluster-global one.
func (cl *Cluster) GlobalID(shard int, local int64) int64 {
	return local*int64(cl.n) + int64(shard)
}

// SplitID decodes a global object ID into its shard index and the
// shard-local ID.
func (cl *Cluster) SplitID(gid int64) (shard int, local int64, err error) {
	if gid < int64(cl.n) {
		return 0, 0, fmt.Errorf("shard: invalid global id %d", gid)
	}
	return int(gid % int64(cl.n)), gid / int64(cl.n), nil
}

// handle returns shard idx's current instance without the write gate —
// the read path. Reads during a rebalance keep hitting the old instance
// until the atomic table swap, which is exactly the flip semantics the
// routing file persists.
func (cl *Cluster) handle(idx int) *shardHandle {
	return cl.table.Load().shards[idx]
}

// writeHandle returns shard idx's current instance with its gate held
// shared; the caller must release h.gate.RUnlock() after the mutation.
// The re-check closes the race with a concurrent rebalance: a writer
// that blocked on the gate during the flip wakes holding the RETIRED
// instance's gate, and retries against the new table — otherwise its
// acknowledged write would land on a catalog whose state was already
// shipped to the new directory, and be lost.
func (cl *Cluster) writeHandle(idx int) *shardHandle {
	for {
		h := cl.table.Load().shards[idx]
		h.gate.RLock()
		if cl.table.Load().shards[idx] == h {
			return h
		}
		h.gate.RUnlock()
	}
}

// ForEachShard runs fn on every shard's catalog in index order,
// stopping at the first error. It is the bootstrap hook for bulk
// definition registration (e.g. workload generators); fn must not
// retain the catalog across a rebalance.
func (cl *Cluster) ForEachShard(fn func(idx int, c *catalog.Catalog) error) error {
	t := cl.table.Load()
	for i, h := range t.shards {
		if err := fn(i, h.cat); err != nil {
			return err
		}
	}
	return nil
}

// ShardStat describes one shard's live instance for operators.
type ShardStat struct {
	Shard        int    `json:"shard"`
	Dir          string `json:"dir"`
	Objects      int    `json:"objects"`
	Epoch        uint64 `json:"epoch"`
	PublishedSeq uint64 `json:"published_seq"`
}

// Stats reports every shard's directory, object count, version epoch,
// and replication watermark.
func (cl *Cluster) Stats() []ShardStat {
	t := cl.table.Load()
	out := make([]ShardStat, len(t.shards))
	for i, h := range t.shards {
		out[i] = ShardStat{
			Shard:        i,
			Dir:          h.dir,
			Objects:      h.cat.ObjectCount(),
			Epoch:        h.cat.DB.Generation(),
			PublishedSeq: h.cat.PublishedSeq(),
		}
	}
	return out
}

// Wedged returns the first shard's wedged error, if any shard's
// durability layer refuses further mutations.
func (cl *Cluster) Wedged() error {
	t := cl.table.Load()
	for i, h := range t.shards {
		if err := h.cat.Wedged(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Close checkpoints and closes every shard. The cluster must not be
// used afterwards.
func (cl *Cluster) Close() error {
	if !cl.closed.CompareAndSwap(false, true) {
		return nil
	}
	var first error
	t := cl.table.Load()
	for i, h := range t.shards {
		if err := h.cat.Close(); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return first
}

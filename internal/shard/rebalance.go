package shard

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/faultio"
)

// Rebalance moves shard idx to newDir while the cluster stays live:
//
//  1. Bootstrap — ship the shard's HCSNAP02 snapshot (the replication
//     snapshot, carrying its WAL watermark) atomically into
//     newDir/catalog.wal.snap, and open a fresh durable catalog there;
//     recovery loads the snapshot exactly as it would after a crash.
//  2. Catch up — stream the source's WAL tail (WALSince from the
//     watermark) into the new instance with ImportWAL, while writers
//     keep landing on the source. A checkpoint-induced log gap restarts
//     the bootstrap.
//  3. Drain — take the shard's write gate exclusively. In-flight writes
//     finish and are imported; new writes block (readers never do).
//  4. Flip — rewrite the routing table file via temp + fsync + rename.
//     The rename is the commit point: a crash before it recovers with
//     the old directory serving the shard, a crash after it with the
//     new one — never neither, never both, because the cluster opens
//     only the directories the routing table names.
//  5. Swap the in-memory table, release the gate (blocked writers retry
//     against the new instance via writeHandle's re-check), and retire
//     the source catalog. The old directory is left on disk for the
//     operator to archive or delete once the move is verified.
//
// Global IDs are unaffected: the shard keeps its index, so gid
// assignments survive the move. One rebalance runs at a time.
func (cl *Cluster) Rebalance(idx int, newDir string) error {
	cl.rebMu.Lock()
	defer cl.rebMu.Unlock()
	if idx < 0 || idx >= cl.n {
		return fmt.Errorf("shard: no shard %d (cluster has %d)", idx, cl.n)
	}
	for _, h := range cl.table.Load().shards {
		if h.dir == newDir {
			return fmt.Errorf("shard: %s already serves shard %d", newDir, h.idx)
		}
	}
	src := cl.handle(idx)

	// Bootstrap + catch-up, restarting if a source checkpoint truncates
	// records the new instance still needs.
	const bootstrapAttempts = 3
	var dst *catalog.Catalog
	var cursor uint64
	var err error
	for attempt := 0; ; attempt++ {
		dst, cursor, err = cl.bootstrapShard(src.cat, newDir)
		if err != nil {
			return fmt.Errorf("shard: rebalance bootstrap: %w", err)
		}
		var gap bool
		cursor, gap, err = cl.catchUp(src.cat, dst, cursor)
		if err != nil {
			_ = dst.Close()
			return fmt.Errorf("shard: rebalance catch-up: %w", err)
		}
		if !gap {
			break
		}
		_ = dst.Close()
		if attempt+1 >= bootstrapAttempts {
			return fmt.Errorf("shard: rebalance: log gap persisted across %d bootstraps (checkpointing faster than catch-up)", bootstrapAttempts)
		}
	}

	// Drain: block writers, import the final tail. The gate guarantees
	// quiescence — every acknowledged write is in the source log, and
	// after this import, in the new instance too.
	src.gate.Lock()
	recs, _, gap, err := src.cat.WALSince(cursor)
	if err == nil && gap {
		err = fmt.Errorf("log gap during drain")
	}
	if err == nil {
		err = dst.ImportWAL(recs)
	}
	if err != nil {
		src.gate.Unlock()
		_ = dst.Close()
		return fmt.Errorf("shard: rebalance drain: %w", err)
	}

	// Flip: persist the new routing table (the commit point), then swap
	// the in-memory table.
	old := cl.table.Load()
	shards := make([]*shardHandle, len(old.shards))
	copy(shards, old.shards)
	shards[idx] = &shardHandle{idx: idx, dir: newDir, cat: dst, gate: new(sync.RWMutex)}
	dirs := make([]string, len(shards))
	for i, h := range shards {
		dirs[i] = h.dir
	}
	if err := cl.saveRouting(dirs); err != nil {
		src.gate.Unlock()
		_ = dst.Close()
		return fmt.Errorf("shard: rebalance flip: %w", err)
	}
	cl.table.Store(&routing{shards: shards})
	src.gate.Unlock()
	cl.rebalances.Inc()
	_ = src.cat.Close()
	return nil
}

// bootstrapShard ships src's replication snapshot into newDir and opens
// a fresh durable catalog there, returning it with the snapshot's WAL
// watermark (the catch-up cursor).
func (cl *Cluster) bootstrapShard(src *catalog.Catalog, newDir string) (*catalog.Catalog, uint64, error) {
	walPath := filepath.Join(newDir, walFile)
	snapPath := walPath + ".snap"
	// A retry bootstraps over a previous attempt's files; remove the old
	// WAL so recovery sees only the new snapshot.
	_ = cl.fs.Remove(walPath)
	var watermark uint64
	if _, isOS := cl.fs.(faultio.OS); isOS {
		if err := os.MkdirAll(newDir, 0o755); err != nil {
			return nil, 0, err
		}
	}
	err := atomicWrite(cl.fs, snapPath, func(w io.Writer) error {
		var serr error
		watermark, serr = src.ReplicationSnapshot(w)
		return serr
	})
	if err != nil {
		return nil, 0, err
	}
	dst, err := cl.openShardCatalog(newDir)
	if err != nil {
		return nil, 0, err
	}
	return dst, watermark, nil
}

// catchUp imports src's WAL records above cursor into dst until the
// source has nothing more to ship, returning the advanced cursor. gap
// reports that a source checkpoint truncated needed records.
func (cl *Cluster) catchUp(src, dst *catalog.Catalog, cursor uint64) (uint64, bool, error) {
	for {
		recs, _, gap, err := src.WALSince(cursor)
		if err != nil {
			return cursor, false, err
		}
		if gap {
			return cursor, true, nil
		}
		if len(recs) == 0 {
			return cursor, false, nil
		}
		if err := dst.ImportWAL(recs); err != nil {
			return cursor, false, err
		}
		cursor = recs[len(recs)-1].Seq
	}
}

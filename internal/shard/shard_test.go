// Shard-vs-single equivalence oracle: the same corpus ingested into a
// plain catalog, a 1-shard cluster, and a 4-shard cluster must yield
// identical Figure-4 result sets (compared as sorted response-XML
// multisets — object IDs differ by topology, document content does
// not), identical fan-out merges, and exact paging: the concatenation
// of SearchPage pages must equal the full result with no duplicate and
// no drop. Run under -race (see the Makefile shard target); the
// concurrent phase mixes readers and writers on the 4-shard cluster.
package shard_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/faultio"
	"github.com/gridmeta/hybridcat/internal/shard"
	"github.com/gridmeta/hybridcat/internal/workload"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
)

const equivOwners = 10

func equivOwner(i int) string { return fmt.Sprintf("user-%02d", i%equivOwners) }

// openCluster builds an n-shard cluster on a fresh MemFS, registers the
// workload definitions on every shard, and ingests the corpus with
// per-document owners.
func openCluster(t *testing.T, g *workload.Generator, n int, corpus []*workloadDoc) (*shard.Cluster, []int64) {
	t.Helper()
	cl, err := shard.Open(shard.Options{
		Schema: g.Schema,
		Root:   "cluster",
		Shards: n,
		Durability: catalog.DurabilityOptions{
			FS: faultio.NewMemFS(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	if err := cl.ForEachShard(func(_ int, c *catalog.Catalog) error {
		return g.RegisterDefinitions(c)
	}); err != nil {
		t.Fatal(err)
	}
	gids := make([]int64, len(corpus))
	for i, d := range corpus {
		gid, err := cl.Ingest(d.owner, d.doc)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		gids[i] = gid
	}
	return cl, gids
}

type workloadDoc struct {
	owner string
	doc   *xmldoc.Node
}

func TestShardEquivalenceOracle(t *testing.T) {
	cfg := workload.Default()
	cfg.Docs = 120
	g := workload.New(cfg)
	raw := g.Corpus()
	corpus := make([]*workloadDoc, len(raw))
	for i, d := range raw {
		corpus[i] = &workloadDoc{owner: equivOwner(i), doc: d}
	}

	// Plain single catalog, the oracle topology.
	single, err := catalog.Open(g.Schema, catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RegisterDefinitions(single); err != nil {
		t.Fatal(err)
	}
	singleIDs := make([]int64, len(raw))
	for i, d := range raw {
		id, err := single.Ingest(equivOwner(i), d)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		singleIDs[i] = id
	}

	one, _ := openCluster(t, g, 1, corpus)
	four, fourGids := openCluster(t, g, 4, corpus)
	if got := four.ObjectCount(); got != len(raw) {
		t.Fatalf("4-shard cluster holds %d objects, want %d", got, len(raw))
	}

	// The query mix: owner-scoped (routed on the clusters) and superuser
	// (fan-out) variants of point, range, nested, and multi queries.
	type tcase struct {
		name string
		q    *catalog.Query
	}
	var cases []tcase
	for i := 0; i < 40; i++ {
		var q *catalog.Query
		switch i % 4 {
		case 0:
			q = g.PointQuery(i, i, i)
		case 1:
			q = g.RangeQuery(i, i+1, 0.2+float64(i%4)*0.2)
		case 2:
			q = g.NestedQuery(i, i, 1+i%2)
		case 3:
			q = g.MultiQuery(i, 2+i%2)
		}
		q.Owner = equivOwner(i)
		cases = append(cases, tcase{fmt.Sprintf("owner-%d", i), q})
		admin := *q
		admin.Owner = ""
		cases = append(cases, tcase{fmt.Sprintf("admin-%d", i), &admin})
	}

	sortedXMLs := func(resp []catalog.Response) []string {
		out := make([]string, len(resp))
		for i, r := range resp {
			out[i] = r.XML
		}
		sort.Strings(out)
		return out
	}
	equal := func(a, b []string) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	nonEmpty := 0
	for _, tc := range cases {
		want, err := single.Search(tc.q)
		if err != nil {
			t.Fatalf("%s: single: %v", tc.name, err)
		}
		oneResp, err := one.Search(tc.q)
		if err != nil {
			t.Fatalf("%s: 1-shard: %v", tc.name, err)
		}
		fourResp, err := four.Search(tc.q)
		if err != nil {
			t.Fatalf("%s: 4-shard: %v", tc.name, err)
		}
		w := sortedXMLs(want)
		if !equal(w, sortedXMLs(oneResp)) {
			t.Errorf("%s: 1-shard diverges from single catalog (%d vs %d results)", tc.name, len(oneResp), len(want))
		}
		if !equal(w, sortedXMLs(fourResp)) {
			t.Errorf("%s: 4-shard diverges from single catalog (%d vs %d results)", tc.name, len(fourResp), len(want))
		}
		if len(want) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < len(cases)/4 {
		t.Fatalf("only %d/%d queries matched anything — corpus too sparse to prove equivalence", nonEmpty, len(cases))
	}

	// Paging boundaries: concatenating pages of every size must equal
	// the full merged order exactly — no duplicate, no drop, stable
	// total — on both the routed and the fan-out path.
	pageQueries := []*catalog.Query{}
	{
		q := g.MultiQuery(3, 2)
		q.Owner = ""
		pageQueries = append(pageQueries, q)
		oq := g.PointQuery(2, 2, 2)
		oq.Owner = equivOwner(2)
		pageQueries = append(pageQueries, oq)
	}
	for qi, q := range pageQueries {
		full, total, err := four.SearchPage(q, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if total != len(full) {
			t.Fatalf("page query %d: total %d != full %d", qi, total, len(full))
		}
		for _, size := range []int{1, 3, 7} {
			var paged []catalog.Response
			for off := 0; ; off += size {
				page, ptotal, err := four.SearchPage(q, off, size)
				if err != nil {
					t.Fatal(err)
				}
				if ptotal != total {
					t.Fatalf("page query %d size %d offset %d: total drifted %d -> %d", qi, size, off, total, ptotal)
				}
				if len(page) == 0 {
					break
				}
				if len(page) > size {
					t.Fatalf("page query %d: page of %d exceeds limit %d", qi, len(page), size)
				}
				paged = append(paged, page...)
			}
			if len(paged) != len(full) {
				t.Fatalf("page query %d size %d: pages concatenate to %d results, want %d", qi, size, len(paged), len(full))
			}
			for i := range paged {
				if paged[i].ObjectID != full[i].ObjectID || paged[i].XML != full[i].XML {
					t.Fatalf("page query %d size %d: result %d diverges from the full order", qi, size, i)
				}
			}
		}
	}

	// Publish a slice of the corpus in every topology: the routed read
	// stays owner-local by design, so cross-owner published visibility
	// must come back through the fan-out read, which reproduces
	// single-catalog semantics exactly.
	for i := range raw {
		if i%7 != 0 {
			continue
		}
		if err := single.SetPublished(singleIDs[i], true); err != nil {
			t.Fatal(err)
		}
		if err := four.SetPublished(fourGids[i], true); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		q := g.PointQuery(i, i, i)
		q.Owner = equivOwner(i + 3) // not the ingest owner for most docs
		want, err := single.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := four.SearchAll(q)
		if err != nil {
			t.Fatal(err)
		}
		if !equal(sortedXMLs(want), sortedXMLs(got)) {
			t.Errorf("published query %d: fan-out read diverges from single catalog (%d vs %d)", i, len(got), len(want))
		}
		// The routed read must return a subset of the fan-out read: the
		// owner's shard's view misses only published objects elsewhere.
		routed, err := four.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		gotSet := map[string]bool{}
		for _, x := range sortedXMLs(got) {
			gotSet[x] = true
		}
		for _, x := range sortedXMLs(routed) {
			if !gotSet[x] {
				t.Errorf("published query %d: routed result not in fan-out result", i)
			}
		}
	}
}

// TestShardConcurrentReadWrite exercises the router under -race:
// readers fan out and route while writers ingest into fresh owners, and
// every acknowledged ingest must be queryable afterwards.
func TestShardConcurrentReadWrite(t *testing.T) {
	cfg := workload.Default()
	cfg.Docs = 60
	g := workload.New(cfg)
	corpus := g.Corpus()
	docs := make([]*workloadDoc, len(corpus))
	for i, d := range corpus {
		docs[i] = &workloadDoc{owner: equivOwner(i), doc: d}
	}
	cl, _ := openCluster(t, g, 4, docs)

	const writers, extra = 2, 15
	var wg sync.WaitGroup
	errCh := make(chan error, writers+4)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < extra; i++ {
				owner := fmt.Sprintf("writer-%d", w)
				if _, err := cl.Ingest(owner, g.Document(1000+w*extra+i)); err != nil {
					errCh <- fmt.Errorf("writer %d doc %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := g.PointQuery(i, i, i)
				if i%2 == 0 {
					q.Owner = equivOwner(i)
				}
				if _, err := cl.Evaluate(q); err != nil {
					errCh <- fmt.Errorf("reader %d query %d: %w", r, i, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got, want := cl.ObjectCount(), len(corpus)+writers*extra; got != want {
		t.Fatalf("object count %d after concurrent ingest, want %d", got, want)
	}
}

// TestShardIdentity covers the global-ID codec and the cluster-identity
// invariants: round-trip encode/decode, invalid IDs, and the refusal to
// reopen a cluster with a different shard count.
func TestShardIdentity(t *testing.T) {
	g := workload.New(workload.Default())
	mem := faultio.NewMemFS()
	opts := shard.Options{
		Schema:     g.Schema,
		Root:       "cluster",
		Shards:     3,
		Durability: catalog.DurabilityOptions{FS: mem},
	}
	cl, err := shard.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 1, 2} {
		for _, local := range []int64{1, 2, 1000} {
			gid := cl.GlobalID(idx, local)
			gotIdx, gotLocal, err := cl.SplitID(gid)
			if err != nil || gotIdx != idx || gotLocal != local {
				t.Fatalf("SplitID(GlobalID(%d,%d)) = (%d,%d,%v)", idx, local, gotIdx, gotLocal, err)
			}
		}
	}
	if _, _, err := cl.SplitID(0); err == nil {
		t.Fatal("SplitID(0) should fail: no shard assigns local ID 0")
	}
	for owner, n := map[string]int{}, 0; n < 50; n++ {
		o := fmt.Sprintf("o%d", n)
		idx := cl.ShardFor(o)
		if idx < 0 || idx >= 3 {
			t.Fatalf("ShardFor(%q) = %d out of range", o, idx)
		}
		if prev, ok := owner[o]; ok && prev != idx {
			t.Fatalf("ShardFor(%q) unstable", o)
		}
		owner[o] = idx
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the persisted count: fine. With a different count: the
	// gid encoding would be reinterpreted, so it must be refused.
	reopened, err := shard.Open(opts)
	if err != nil {
		t.Fatalf("reopen with matching count: %v", err)
	}
	_ = reopened.Close()
	bad := opts
	bad.Shards = 4
	if _, err := shard.Open(bad); err == nil {
		t.Fatal("reopening a 3-shard cluster with -shards 4 must fail")
	}
}

package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/textindex"
)

// Ranked retrieval across shards. BM25 scores depend on corpus-wide
// statistics (document count, average length, per-term document
// frequency), so naive per-shard scoring would rank the same document
// differently depending on which shard holds it. The fan-out read is
// therefore a two-phase scatter:
//
//  1. TextStats on every shard collects its corpus statistics for the
//     query's analyzed terms; the router sums them (textindex.Stats.Merge)
//     into the statistics of the virtual union catalog.
//  2. EvaluateRankedStats on every shard scores with the global
//     statistics, so every shard's scores are exactly what a single
//     catalog holding all the documents would compute.
//
// The merged ranking is then a k-way merge by (score desc, global ID
// asc), truncated to k. Each shard returns its local top-k under the
// global statistics, and any document in the global top-k is
// necessarily in its own shard's top-k, so the truncated merge loses
// nothing. Owner-routed ranked reads (Owner != "") score one shard with
// its local statistics — the same locality trade-off as Evaluate.

// EvaluateRanked runs a BM25 ranked query. An owner-scoped query routes
// to the owner's shard (local statistics); a superuser query fans out
// with globally merged statistics.
func (cl *Cluster) EvaluateRanked(q *catalog.Query) ([]catalog.ScoredID, error) {
	if q.Owner != "" {
		idx := cl.ShardFor(q.Owner)
		cl.countRoute(idx)
		scored, err := cl.handle(idx).cat.EvaluateRanked(q)
		if err != nil {
			return nil, err
		}
		return cl.globalizeScored(idx, scored), nil
	}
	return cl.EvaluateRankedAll(q)
}

// EvaluateRankedAll fans the ranked query out to every shard with the
// two-phase global-statistics scatter and merges by score. For an
// owner-scoped query this reproduces single-catalog ranking exactly,
// wherever published documents hash.
func (cl *Cluster) EvaluateRankedAll(q *catalog.Query) ([]catalog.ScoredID, error) {
	if q.Rank == nil || len(q.Rank.Terms) == 0 {
		return nil, fmt.Errorf("shard: ranked query has no rank terms")
	}
	cl.fanout.Inc()
	t := cl.table.Load()

	// Phase 1: per-shard corpus statistics, summed into the statistics
	// of the union catalog.
	stats := make([]textindex.Stats, len(t.shards))
	errs := make([]error, len(t.shards))
	var wg sync.WaitGroup
	for i, h := range t.shards {
		wg.Add(1)
		go func(i int, h *shardHandle) {
			defer wg.Done()
			stats[i], errs[i] = h.cat.TextStats(q.Rank.Terms)
		}(i, h)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	var global textindex.Stats
	for i := range stats {
		global.Merge(stats[i])
	}

	// Phase 2: score every shard with the global statistics. A
	// definition unknown on one shard contributes nothing, and the query
	// fails only if every shard refuses it — mirroring scatterEvaluate.
	perShard := make([][]catalog.ScoredID, len(t.shards))
	for i, h := range t.shards {
		wg.Add(1)
		go func(i int, h *shardHandle) {
			defer wg.Done()
			perShard[i], errs[i] = h.cat.EvaluateRankedStats(context.Background(), q, &global)
		}(i, h)
	}
	wg.Wait()
	unknown := 0
	var lastUnknown error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, catalog.ErrUnknownDefinition) {
			unknown++
			lastUnknown = err
			perShard[i] = nil
			continue
		}
		return nil, fmt.Errorf("shard %d: %w", i, err)
	}
	if unknown == len(errs) {
		return nil, lastUnknown
	}

	k := q.Rank.K
	if k <= 0 {
		k = catalog.DefaultRankK
	}
	return cl.mergeScored(perShard, k), nil
}

// globalizeScored rewrites one shard's scored local IDs to global IDs,
// preserving rank order.
func (cl *Cluster) globalizeScored(idx int, scored []catalog.ScoredID) []catalog.ScoredID {
	out := make([]catalog.ScoredID, len(scored))
	for i, s := range scored {
		out[i] = catalog.ScoredID{ID: cl.GlobalID(idx, s.ID), Score: s.Score}
	}
	return out
}

// mergeScored merges per-shard rankings (each already score-ordered) by
// (score desc, global ID asc) and truncates to k. Scores were computed
// under identical global statistics, so the order matches a single
// catalog's ranking of the union.
func (cl *Cluster) mergeScored(perShard [][]catalog.ScoredID, k int) []catalog.ScoredID {
	total := 0
	for _, s := range perShard {
		total += len(s)
	}
	out := make([]catalog.ScoredID, 0, total)
	for idx, scored := range perShard {
		out = append(out, cl.globalizeScored(idx, scored)...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].ID < out[b].ID
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// SearchRanked evaluates a ranked query and builds the response
// documents in score order. fanout forces the two-phase global scatter
// regardless of owner.
func (cl *Cluster) SearchRanked(q *catalog.Query, fanout bool) ([]catalog.RankedResponse, error) {
	var scored []catalog.ScoredID
	var err error
	if fanout {
		scored, err = cl.EvaluateRankedAll(q)
	} else {
		scored, err = cl.EvaluateRanked(q)
	}
	if err != nil {
		return nil, err
	}
	gids := make([]int64, len(scored))
	scoreOf := make(map[int64]float64, len(scored))
	for i, s := range scored {
		gids[i] = s.ID
		scoreOf[s.ID] = s.Score
	}
	resp, err := cl.BuildResponse(gids)
	if err != nil {
		return nil, err
	}
	out := make([]catalog.RankedResponse, len(resp))
	for i, r := range resp {
		out[i] = catalog.RankedResponse{ObjectID: r.ObjectID, Score: scoreOf[r.ObjectID], XML: r.XML}
	}
	return out, nil
}

// Package faultio abstracts the handful of filesystem operations the
// durability subsystem needs (create, append, rename, sync, truncate)
// behind an injectable FS interface, so the write-ahead log and the
// snapshot writer can run against the real OS in production and against
// an in-memory, crash-simulating, fault-injecting filesystem in tests.
//
// Three implementations:
//
//   - OS: passthrough to the os package, with directory fsync after
//     renames so the atomic-replace protocol is durable on POSIX.
//   - MemFS: an in-memory filesystem that models the page cache — bytes
//     written but not yet synced are lost by Crash(), which is how the
//     crash-matrix tests catch missing-fsync bugs.
//   - Faulty: a wrapper over any FS that fails (or tears and then fails)
//     the Nth operation of a chosen kind, and counts operations so a
//     test can enumerate every fault point of a workload.
package faultio

import (
	"io"
	"os"
	"path/filepath"
)

// File is the handle surface the durability code writes through. Reads
// are sequential from the start; writes land at the handle's current
// write offset (append for handles returned by OpenAppend).
type File interface {
	io.Reader
	io.Writer
	// Sync forces written bytes to stable storage.
	Sync() error
	Close() error
}

// FS is the filesystem surface the durability code runs on.
type FS interface {
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// OpenAppend opens name for appending, creating it if missing.
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Size reports the length of name in bytes; a missing file is an
	// error satisfying os.IsNotExist / errors.Is(err, os.ErrNotExist).
	Size(name string) (int64, error)
	// Truncate cuts name down to size bytes.
	Truncate(name string, size int64) error
}

// OS is the production FS backed by the os package.
type OS struct{}

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// Open implements FS.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// OpenAppend implements FS.
func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Rename implements FS. After the rename it fsyncs the containing
// directory, so the new directory entry survives a crash — without it,
// write-to-temp + rename is atomic but not durable.
func (OS) Rename(oldpath, newpath string) error {
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	dir, err := os.Open(filepath.Dir(newpath))
	if err != nil {
		return nil // directory sync is best-effort (e.g. read-only FS views)
	}
	defer dir.Close()
	_ = dir.Sync()
	return nil
}

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Size implements FS.
func (OS) Size(name string) (int64, error) {
	st, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Truncate implements FS.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

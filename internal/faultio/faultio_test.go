package faultio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestMemFSCrashDropsUnsynced(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("volatile")); err != nil {
		t.Fatal(err)
	}
	if got := string(fs.Bytes("wal")); got != "durablevolatile" {
		t.Fatalf("pre-crash content %q", got)
	}
	fs.Crash()
	if got := string(fs.Bytes("wal")); got != "durable" {
		t.Fatalf("post-crash content %q, want only the synced prefix", got)
	}
}

func TestMemFSRenameCarriesSyncState(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("tmp")
	_, _ = f.Write([]byte("snapshot"))
	// No sync before rename: the classic torn-snapshot bug. The renamed
	// file must lose its bytes at crash.
	if err := fs.Rename("tmp", "final"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if got := fs.Bytes("final"); len(got) != 0 {
		t.Fatalf("unsynced renamed file survived crash with %d bytes", len(got))
	}

	f2, _ := fs.Create("tmp2")
	_, _ = f2.Write([]byte("snapshot"))
	if err := f2.Sync(); err != nil {
		t.Fatal(err)
	}
	_ = fs.Rename("tmp2", "final2")
	fs.Crash()
	if got := string(fs.Bytes("final2")); got != "snapshot" {
		t.Fatalf("synced renamed file lost data: %q", got)
	}
}

func TestMemFSReadAppendTruncate(t *testing.T) {
	fs := NewMemFS()
	if _, err := fs.Open("missing"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	f, _ := fs.Create("f")
	_, _ = f.Write([]byte("hello "))
	_ = f.Close()
	a, err := fs.OpenAppend("f")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = a.Write([]byte("world"))
	_ = a.Sync()
	r, _ := fs.Open("f")
	data, _ := io.ReadAll(r)
	if string(data) != "hello world" {
		t.Fatalf("read back %q", data)
	}
	if err := fs.Truncate("f", 5); err != nil {
		t.Fatal(err)
	}
	if n, _ := fs.Size("f"); n != 5 {
		t.Fatalf("size after truncate = %d", n)
	}
	fs.Crash() // synced was 11, must clamp to 5, not resurrect bytes
	if got := string(fs.Bytes("f")); got != "hello" {
		t.Fatalf("post-truncate crash content %q", got)
	}
}

func TestFaultyCountsAndFailOp(t *testing.T) {
	fs := NewMemFS()
	faulty := NewFaulty(fs, Fault{Op: OpSync, N: 2, Mode: FailOp})
	f, _ := faulty.Create("f")
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2 should be injected, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 3 after transient fault: %v", err)
	}
	counts := faulty.Counts()
	if counts[OpSync] != 3 || counts[OpWrite] != 1 || counts[OpCreate] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if faulty.Crashed() {
		t.Fatal("FailOp must not be sticky")
	}
}

func TestFaultyCrashOpTornWrite(t *testing.T) {
	fs := NewMemFS()
	faulty := NewFaulty(fs, Fault{Op: OpWrite, N: 2, Mode: CrashOp, Torn: 3})
	f, _ := faulty.Create("f")
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("second")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: %v", err)
	}
	if got := string(fs.Bytes("f")); got != "firstsec" {
		t.Fatalf("torn content %q, want %q", got, "firstsec")
	}
	// Everything after the crash fails.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash sync: %v", err)
	}
	if err := faulty.Rename("f", "g"); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash rename: %v", err)
	}
	if !faulty.Crashed() {
		t.Fatal("Crashed() should report the sticky fault")
	}
}

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fs OS
	p := filepath.Join(dir, "f")
	f, err := fs.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	if err := fs.Rename(p, p+".2"); err != nil {
		t.Fatal(err)
	}
	if n, err := fs.Size(p + ".2"); err != nil || n != 3 {
		t.Fatalf("size = %d, %v", n, err)
	}
	a, err := fs.OpenAppend(p + ".2")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = a.Write([]byte("def"))
	_ = a.Close()
	if err := fs.Truncate(p+".2", 4); err != nil {
		t.Fatal(err)
	}
	r, _ := fs.Open(p + ".2")
	data, _ := io.ReadAll(r)
	if string(data) != "abcd" {
		t.Fatalf("read %q", data)
	}
	if _, err := fs.Size(p); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("old path should be gone: %v", err)
	}
}

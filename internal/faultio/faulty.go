package faultio

import (
	"errors"
	"sync"
)

// ErrInjected is the error every injected fault returns; tests assert
// with errors.Is that failures trace back to the injection, not to a
// genuine bug.
var ErrInjected = errors.New("faultio: injected fault")

// OpKind names the operations Faulty counts and can fail.
type OpKind string

// Countable operation kinds.
const (
	OpWrite    OpKind = "write"
	OpSync     OpKind = "sync"
	OpRename   OpKind = "rename"
	OpCreate   OpKind = "create"
	OpTruncate OpKind = "truncate"
)

// Mode selects what an injected fault does.
type Mode uint8

const (
	// FailOp makes the Nth operation return ErrInjected once; later
	// operations succeed. Models a transient I/O error (EIO, ENOSPC
	// freed later) that a durable server must surface without losing
	// acknowledged state.
	FailOp Mode = iota
	// CrashOp makes the Nth operation fail — a faulting write first
	// applies Torn bytes of its buffer — and every subsequent operation
	// fail too. Models the process dying at that instant; recovery is
	// then exercised on the files left behind.
	CrashOp
)

// Fault selects one injection point: the Nth (1-based) operation of the
// given kind. N == 0 disables injection (the wrapper still counts).
type Fault struct {
	Op   OpKind
	N    int
	Mode Mode
	// Torn is how many bytes of the faulting write's buffer reach the
	// file before the failure (CrashOp writes only).
	Torn int
}

// Faulty wraps an FS, counting operations and injecting the configured
// fault. It is safe for concurrent use.
type Faulty struct {
	fs FS

	mu      sync.Mutex
	fault   Fault
	counts  map[OpKind]int
	crashed bool
}

// NewFaulty wraps fs with the given fault plan.
func NewFaulty(fs FS, fault Fault) *Faulty {
	return &Faulty{fs: fs, fault: fault, counts: make(map[OpKind]int)}
}

// Counts returns a copy of the per-kind operation counters; a fault-free
// run's counts size the crash matrix.
func (f *Faulty) Counts() map[OpKind]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[OpKind]int, len(f.counts))
	for k, v := range f.counts {
		out[k] = v
	}
	return out
}

// Crashed reports whether a CrashOp fault has fired.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step counts one operation and reports whether it must fail. torn is
// meaningful only for OpWrite on a firing CrashOp fault.
func (f *Faulty) step(kind OpKind) (fail bool, torn int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return true, 0
	}
	f.counts[kind]++
	if f.fault.N > 0 && f.fault.Op == kind && f.counts[kind] == f.fault.N {
		if f.fault.Mode == CrashOp {
			f.crashed = true
		}
		return true, f.fault.Torn
	}
	return false, 0
}

// Create implements FS.
func (f *Faulty) Create(name string) (File, error) {
	if fail, _ := f.step(OpCreate); fail {
		return nil, ErrInjected
	}
	file, err := f.fs.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, file: file}, nil
}

// Open implements FS. Reads are never failed — recovery-time read errors
// are the corruption cases the WAL reader handles from file content.
func (f *Faulty) Open(name string) (File, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrInjected
	}
	return f.fs.Open(name)
}

// OpenAppend implements FS.
func (f *Faulty) OpenAppend(name string) (File, error) {
	if fail, _ := f.step(OpCreate); fail {
		return nil, ErrInjected
	}
	file, err := f.fs.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, file: file}, nil
}

// Rename implements FS.
func (f *Faulty) Rename(oldpath, newpath string) error {
	if fail, _ := f.step(OpRename); fail {
		return ErrInjected
	}
	return f.fs.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *Faulty) Remove(name string) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrInjected
	}
	return f.fs.Remove(name)
}

// Size implements FS.
func (f *Faulty) Size(name string) (int64, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return 0, ErrInjected
	}
	return f.fs.Size(name)
}

// Truncate implements FS.
func (f *Faulty) Truncate(name string, size int64) error {
	if fail, _ := f.step(OpTruncate); fail {
		return ErrInjected
	}
	return f.fs.Truncate(name, size)
}

// faultyFile wraps a File, routing writes and syncs through the plan.
type faultyFile struct {
	f    *Faulty
	file File
}

func (ff *faultyFile) Read(p []byte) (int, error) { return ff.file.Read(p) }

func (ff *faultyFile) Write(p []byte) (int, error) {
	if fail, torn := ff.f.step(OpWrite); fail {
		if torn > 0 {
			if torn > len(p) {
				torn = len(p)
			}
			_, _ = ff.file.Write(p[:torn]) // the torn prefix reaches the file
		}
		return 0, ErrInjected
	}
	return ff.file.Write(p)
}

func (ff *faultyFile) Sync() error {
	if fail, _ := ff.f.step(OpSync); fail {
		return ErrInjected
	}
	return ff.file.Sync()
}

func (ff *faultyFile) Close() error { return ff.file.Close() }

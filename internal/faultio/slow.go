package faultio

import "time"

// SlowFS wraps an FS and adds a fixed latency to every File.Sync,
// modeling a storage device whose flush cost dwarfs the page-cache
// write — a spinning disk, a network volume, a cloud block store. The
// group-commit benchmark runs on it so the fsync amortization is
// measured against a realistic sync cost rather than whatever the
// build machine's temp filesystem happens to do.
type SlowFS struct {
	FS
	// SyncDelay is added to every Sync call before delegating.
	SyncDelay time.Duration
}

// NewSlowFS wraps fs with the given per-Sync delay.
func NewSlowFS(fs FS, syncDelay time.Duration) *SlowFS {
	return &SlowFS{FS: fs, SyncDelay: syncDelay}
}

// Create implements FS, wrapping the file so its Sync is delayed.
func (s *SlowFS) Create(name string) (File, error) {
	f, err := s.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &slowFile{File: f, delay: s.SyncDelay}, nil
}

// OpenAppend implements FS, wrapping the file so its Sync is delayed.
func (s *SlowFS) OpenAppend(name string) (File, error) {
	f, err := s.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &slowFile{File: f, delay: s.SyncDelay}, nil
}

type slowFile struct {
	File
	delay time.Duration
}

func (f *slowFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

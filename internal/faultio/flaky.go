package faultio

import (
	"fmt"
	"io"
	"net/http"
	"sync"
)

// FlakyTransport is an http.RoundTripper that injects network faults
// into a scripted sequence of requests: refused connections and torn
// response bodies cut at an exact byte offset. The replication fault
// suite drives the tailer through it to prove the resume protocol
// survives a disconnect at every record boundary and mid-record.
//
// The plan is indexed by request number (1-based, counted per
// transport): request n consults Plan[n-1]; requests beyond the plan
// pass through untouched. It is safe for concurrent use, though plans
// are deterministic only under sequential requests.
type FlakyTransport struct {
	// Base performs the real round trips; http.DefaultTransport if nil.
	Base http.RoundTripper
	// Plan scripts one NetFault per request, in order.
	Plan []NetFault

	mu   sync.Mutex
	reqs int
}

// NetFault scripts the fault (if any) for one request.
type NetFault struct {
	// FailConnect refuses the request outright: RoundTrip returns
	// ErrInjected without reaching the server.
	FailConnect bool
	// CutAfter, when >= 0 and FailConnect is false, truncates the
	// response body after that many bytes. The truncation is silent
	// (early EOF), exactly what a torn connection looks like to a
	// reader that trusts Content-Length it never saw. -1 leaves the
	// body intact.
	CutAfter int64
}

// Pass is the no-fault plan entry.
var Pass = NetFault{CutAfter: -1}

// Requests returns how many round trips the transport has seen.
func (t *FlakyTransport) Requests() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reqs
}

// RoundTrip implements http.RoundTripper.
func (t *FlakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	n := t.reqs
	t.reqs++
	var fault NetFault
	if n < len(t.Plan) {
		fault = t.Plan[n]
	} else {
		fault = Pass
	}
	t.mu.Unlock()

	if fault.FailConnect {
		return nil, fmt.Errorf("%w: connect refused (request %d)", ErrInjected, n+1)
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || fault.CutAfter < 0 {
		return resp, err
	}
	// Tear the body: deliver CutAfter bytes then a clean EOF. The
	// Content-Length header is dropped so the truncation is silent —
	// the reader sees a short body, not an error.
	resp.Body = &cutBody{rc: resp.Body, remain: fault.CutAfter}
	resp.ContentLength = -1
	resp.Header.Del("Content-Length")
	return resp, nil
}

// cutBody delivers at most remain bytes of rc, then EOF.
type cutBody struct {
	rc     io.ReadCloser
	remain int64
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.remain <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > c.remain {
		p = p[:c.remain]
	}
	n, err := c.rc.Read(p)
	c.remain -= int64(n)
	if err == nil && c.remain <= 0 {
		err = io.EOF
	}
	return n, err
}

func (c *cutBody) Close() error { return c.rc.Close() }

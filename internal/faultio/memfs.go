package faultio

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// MemFS is an in-memory FS that models the volatile page cache: every
// write lands in the file's data immediately (visible to readers), but
// only the prefix covered by the last Sync is "on disk". Crash()
// simulates power loss by cutting every file back to its synced prefix,
// so code that renames or acknowledges before syncing loses data under
// test exactly as it would in production.
//
// Renames move the (data, synced) pair and are treated as immediately
// durable — the OS implementation fsyncs the directory to earn the same
// guarantee.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

type memFile struct {
	data   []byte
	synced int // bytes guaranteed to survive Crash
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

// Crash simulates power loss: every file is cut back to its last-synced
// prefix and unsynced bytes are gone.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		f.data = f.data[:f.synced]
	}
}

// Bytes returns a copy of the file's current content (synced or not),
// for test corruption and inspection; nil if the file does not exist.
func (m *MemFS) Bytes(name string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return nil
	}
	return append([]byte(nil), f.data...)
}

// SetBytes replaces the file's content, fully synced; for tests that
// construct truncated or bit-flipped on-disk states directly.
func (m *MemFS) SetBytes(name string, b []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = &memFile{data: append([]byte(nil), b...), synced: len(b)}
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[name] = f
	return &memHandle{fs: m, file: f, writable: true}, nil
}

// Open implements FS.
func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &memHandle{fs: m, file: f}, nil
}

// OpenAppend implements FS.
func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		f = &memFile{}
		m.files[name] = f
	}
	return &memHandle{fs: m, file: f, writable: true, woff: len(f.data)}, nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[oldpath]
	if f == nil {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	m.files[newpath] = f
	delete(m.files, oldpath)
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.files[name] == nil {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// Size implements FS.
func (m *MemFS) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return 0, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
	}
	return int64(len(f.data)), nil
}

// Truncate implements FS.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("faultio: truncate %s to %d outside [0, %d]", name, size, len(f.data))
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

// memHandle is one open descriptor. Reads and writes track independent
// offsets; writes extend or overwrite data at the write offset.
type memHandle struct {
	fs       *MemFS
	file     *memFile
	writable bool
	roff     int
	woff     int
	closed   bool
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	if h.roff >= len(h.file.data) {
		return 0, io.EOF
	}
	n := copy(p, h.file.data[h.roff:])
	h.roff += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	if !h.writable {
		return 0, fmt.Errorf("faultio: write to read-only handle")
	}
	f := h.file
	// Clamp a stale offset (e.g. after an external truncate) to the end.
	if h.woff > len(f.data) {
		h.woff = len(f.data)
	}
	n := copy(f.data[h.woff:], p)
	if n < len(p) {
		f.data = append(f.data, p[n:]...)
	}
	h.woff += len(p)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	h.file.synced = len(h.file.data)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

package bitset

import (
	"math/bits"
	"sort"
)

// Container kinds. A container holds the low 16 bits of every key that
// shares one 48-bit high prefix, in whichever of the three physical
// representations is smallest for its population (see optimize):
//
//   - array: a sorted []uint16, for sparse populations (≤ maxArrayCard),
//   - bitmap: 1024 packed uint64 words, for dense populations — the
//     representation every vectorized (word-at-a-time, popcount) set
//     operation runs on,
//   - run: sorted, non-overlapping [start,last] intervals, for
//     contiguous ID ranges (sequentially assigned row IDs compress to a
//     handful of intervals).
const (
	arrayKind = iota
	bitmapKind
	runKind
)

const (
	// chunkBits is the low-bit width one container covers.
	chunkBits = 16
	// bitmapWords is the word count of a packed bitmap container.
	bitmapWords = (1 << chunkBits) / 64
	// maxArrayCard is the array-container population ceiling; one more
	// add converts to a packed bitmap (the classic roaring threshold:
	// above it the bitmap's fixed 8 KiB is smaller than 2 bytes/value).
	maxArrayCard = 4096
)

// interval is one inclusive [start, last] run of present values.
type interval struct{ start, last uint16 }

// container is one chunk's value set. kind selects which field is live;
// card is maintained by every mutation so Card never rescans.
type container struct {
	kind int
	card int
	arr  []uint16
	bits []uint64
	runs []interval
}

func newArray() *container { return &container{kind: arrayKind} }

func newBitmap() *container {
	return &container{kind: bitmapKind, bits: make([]uint64, bitmapWords)}
}

// clone deep-copies the container.
func (c *container) clone() *container {
	out := &container{kind: c.kind, card: c.card}
	switch c.kind {
	case arrayKind:
		out.arr = append([]uint16(nil), c.arr...)
	case bitmapKind:
		out.bits = append([]uint64(nil), c.bits...)
	case runKind:
		out.runs = append([]interval(nil), c.runs...)
	}
	return out
}

// add inserts v, converting array→bitmap past the population threshold
// and run→array/bitmap (runs are a read-optimized form produced by
// optimize; a post-optimize mutation falls back to a mutable kind).
func (c *container) add(v uint16) {
	switch c.kind {
	case arrayKind:
		i := sort.Search(len(c.arr), func(i int) bool { return c.arr[i] >= v })
		if i < len(c.arr) && c.arr[i] == v {
			return
		}
		if len(c.arr) >= maxArrayCard {
			c.toBitmap()
			c.add(v)
			return
		}
		c.arr = append(c.arr, 0)
		copy(c.arr[i+1:], c.arr[i:])
		c.arr[i] = v
		c.card++
	case bitmapKind:
		w, b := v>>6, uint64(1)<<(v&63)
		if c.bits[w]&b == 0 {
			c.bits[w] |= b
			c.card++
		}
	case runKind:
		if c.contains(v) {
			return
		}
		if c.card > maxArrayCard {
			c.toBitmap()
		} else {
			c.runsToArray()
		}
		c.add(v)
	}
}

// addRange inserts every value in [lo, hi] (inclusive).
func (c *container) addRange(lo, hi uint16) {
	if c.kind != bitmapKind {
		c.toBitmap()
	}
	c.card += setRange(c.bits, lo, hi)
}

// setRange sets bits [lo, hi] word-at-a-time, returning how many were
// newly set.
func setRange(words []uint64, lo, hi uint16) int {
	added := 0
	wLo, wHi := int(lo>>6), int(hi>>6)
	for w := wLo; w <= wHi; w++ {
		mask := ^uint64(0)
		if w == wLo {
			mask &= ^uint64(0) << (lo & 63)
		}
		if w == wHi {
			mask &= ^uint64(0) >> (63 - hi&63)
		}
		added += bits.OnesCount64(mask &^ words[w])
		words[w] |= mask
	}
	return added
}

func (c *container) contains(v uint16) bool {
	switch c.kind {
	case arrayKind:
		i := sort.Search(len(c.arr), func(i int) bool { return c.arr[i] >= v })
		return i < len(c.arr) && c.arr[i] == v
	case bitmapKind:
		return c.bits[v>>6]&(uint64(1)<<(v&63)) != 0
	default:
		i := sort.Search(len(c.runs), func(i int) bool { return c.runs[i].last >= v })
		return i < len(c.runs) && c.runs[i].start <= v
	}
}

// iterate calls fn for every value ascending until fn returns false;
// reports whether iteration ran to completion.
func (c *container) iterate(hi uint64, fn func(uint64) bool) bool {
	base := hi << chunkBits
	switch c.kind {
	case arrayKind:
		for _, v := range c.arr {
			if !fn(base | uint64(v)) {
				return false
			}
		}
	case bitmapKind:
		for w, word := range c.bits {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				if !fn(base | uint64(w<<6|b)) {
					return false
				}
				word &= word - 1
			}
		}
	case runKind:
		for _, r := range c.runs {
			for v := uint64(r.start); v <= uint64(r.last); v++ {
				if !fn(base | v) {
					return false
				}
			}
		}
	}
	return true
}

// Representation conversions.

func (c *container) toBitmap() {
	if c.kind == bitmapKind {
		return
	}
	words := make([]uint64, bitmapWords)
	switch c.kind {
	case arrayKind:
		for _, v := range c.arr {
			words[v>>6] |= uint64(1) << (v & 63)
		}
		c.arr = nil
	case runKind:
		for _, r := range c.runs {
			setRange(words, r.start, r.last)
		}
		c.runs = nil
	}
	c.kind, c.bits = bitmapKind, words
}

func (c *container) bitmapToArray() {
	arr := make([]uint16, 0, c.card)
	for w, word := range c.bits {
		for word != 0 {
			arr = append(arr, uint16(w<<6|bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	c.kind, c.arr, c.bits = arrayKind, arr, nil
}

func (c *container) runsToArray() {
	arr := make([]uint16, 0, c.card)
	for _, r := range c.runs {
		for v := int(r.start); v <= int(r.last); v++ {
			arr = append(arr, uint16(v))
		}
	}
	c.kind, c.arr, c.runs = arrayKind, arr, nil
}

// numRuns counts the container's maximal runs of consecutive values.
func (c *container) numRuns() int {
	switch c.kind {
	case runKind:
		return len(c.runs)
	case arrayKind:
		n := 0
		for i, v := range c.arr {
			if i == 0 || v != c.arr[i-1]+1 {
				n++
			}
		}
		return n
	default:
		n := 0
		var carry uint64 // bit 63 of the previous word
		for _, w := range c.bits {
			// Run starts: set bits whose predecessor bit is clear.
			n += bits.OnesCount64(w &^ (w<<1 | carry))
			carry = w >> 63
		}
		return n
	}
}

// toRuns rewrites the container as sorted intervals; the caller has
// checked that this is the smallest form.
func (c *container) toRuns() {
	if c.kind == runKind {
		return
	}
	var runs []interval
	var cur interval
	open := false
	flush := func() {
		if open {
			runs = append(runs, cur)
			open = false
		}
	}
	c.iterate(0, func(k uint64) bool {
		v := uint16(k)
		if open && v == cur.last+1 {
			cur.last = v
			return true
		}
		flush()
		cur, open = interval{v, v}, true
		return true
	})
	flush()
	c.kind, c.runs, c.arr, c.bits = runKind, runs, nil, nil
}

// optimize converts the container to its smallest representation:
// 4 bytes per run vs 2 per array value vs the bitmap's fixed 8 KiB.
func (c *container) optimize() {
	runBytes := 4 * c.numRuns()
	arrBytes := 2 * c.card
	const bmpBytes = 8 * bitmapWords
	switch {
	case runBytes < arrBytes && runBytes < bmpBytes:
		c.toRuns()
	case c.card <= maxArrayCard:
		if c.kind != arrayKind {
			switch c.kind {
			case bitmapKind:
				c.bitmapToArray()
			case runKind:
				c.runsToArray()
			}
		}
	default:
		c.toBitmap()
	}
}

// Pairwise operations. Results are freshly allocated (inputs are never
// mutated) and normalized: an intersection whose population fits an
// array comes back as an array, so chained ANDs stay cheap.

// and returns a ∩ b, or nil when empty.
func andContainers(a, b *container) *container {
	// Normalize operand order: array ≤ bitmap ≤ run by kind value.
	if a.kind > b.kind {
		a, b = b, a
	}
	switch {
	case a.kind == arrayKind:
		// Probe the smaller array against the other container.
		out := newArray()
		for _, v := range a.arr {
			if b.contains(v) {
				out.arr = append(out.arr, v)
			}
		}
		out.card = len(out.arr)
		return nonEmpty(out)
	case a.kind == bitmapKind && b.kind == bitmapKind:
		out := newBitmap()
		for i := range out.bits {
			w := a.bits[i] & b.bits[i]
			out.bits[i] = w
			out.card += bits.OnesCount64(w)
		}
		if out.card == 0 {
			return nil
		}
		if out.card <= maxArrayCard {
			out.bitmapToArray()
		}
		return out
	case a.kind == bitmapKind: // b is runs
		out := newBitmap()
		for _, r := range b.runs {
			wLo, wHi := int(r.start>>6), int(r.last>>6)
			for w := wLo; w <= wHi; w++ {
				mask := ^uint64(0)
				if w == wLo {
					mask &= ^uint64(0) << (r.start & 63)
				}
				if w == wHi {
					mask &= ^uint64(0) >> (63 - r.last&63)
				}
				got := a.bits[w] & mask
				out.bits[w] |= got
				out.card += bits.OnesCount64(got)
			}
		}
		if out.card == 0 {
			return nil
		}
		if out.card <= maxArrayCard {
			out.bitmapToArray()
		}
		return out
	default: // runs ∩ runs: interval walk
		out := &container{kind: runKind}
		i, j := 0, 0
		for i < len(a.runs) && j < len(b.runs) {
			ra, rb := a.runs[i], b.runs[j]
			lo, hi := max16(ra.start, rb.start), min16(ra.last, rb.last)
			if lo <= hi {
				out.runs = append(out.runs, interval{lo, hi})
				out.card += int(hi) - int(lo) + 1
			}
			if ra.last < rb.last {
				i++
			} else {
				j++
			}
		}
		return nonEmpty(out)
	}
}

// or returns a ∪ b.
func orContainers(a, b *container) *container {
	if a.kind > b.kind {
		a, b = b, a
	}
	switch {
	case a.kind == arrayKind && b.kind == arrayKind:
		if a.card+b.card <= maxArrayCard {
			out := newArray()
			out.arr = mergeUint16(a.arr, b.arr)
			out.card = len(out.arr)
			return out
		}
		fallthrough
	default:
		// Any combination involving a bitmap or runs (or a too-large
		// array merge): materialize onto a bitmap word-at-a-time.
		out := b.clone()
		out.toBitmap()
		switch a.kind {
		case arrayKind:
			for _, v := range a.arr {
				w, bit := v>>6, uint64(1)<<(v&63)
				if out.bits[w]&bit == 0 {
					out.bits[w] |= bit
					out.card++
				}
			}
		case runKind:
			for _, r := range a.runs {
				out.card += setRange(out.bits, r.start, r.last)
			}
		case bitmapKind:
			out.card = 0
			for i := range out.bits {
				out.bits[i] |= a.bits[i]
				out.card += bits.OnesCount64(out.bits[i])
			}
		}
		return out
	}
}

// andNot returns a \ b, or nil when empty.
func andNotContainers(a, b *container) *container {
	switch {
	case a.kind == arrayKind:
		out := newArray()
		for _, v := range a.arr {
			if !b.contains(v) {
				out.arr = append(out.arr, v)
			}
		}
		out.card = len(out.arr)
		return nonEmpty(out)
	case a.kind == bitmapKind && b.kind == bitmapKind:
		out := newBitmap()
		for i := range out.bits {
			w := a.bits[i] &^ b.bits[i]
			out.bits[i] = w
			out.card += bits.OnesCount64(w)
		}
		if out.card == 0 {
			return nil
		}
		if out.card <= maxArrayCard {
			out.bitmapToArray()
		}
		return out
	default:
		// a is bitmap-or-runs: subtract on a bitmap copy of a.
		out := a.clone()
		out.toBitmap()
		bb := b
		if bb.kind != bitmapKind {
			bb = b.clone()
			bb.toBitmap()
		}
		out.card = 0
		for i := range out.bits {
			out.bits[i] &^= bb.bits[i]
			out.card += bits.OnesCount64(out.bits[i])
		}
		if out.card == 0 {
			return nil
		}
		if out.card <= maxArrayCard {
			out.bitmapToArray()
		}
		return out
	}
}

func nonEmpty(c *container) *container {
	if c.card == 0 {
		return nil
	}
	return c
}

func mergeUint16(a, b []uint16) []uint16 {
	out := make([]uint16, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func min16(a, b uint16) uint16 {
	if a < b {
		return a
	}
	return b
}

func max16(a, b uint16) uint16 {
	if a > b {
		return a
	}
	return b
}

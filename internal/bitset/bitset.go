// Package bitset implements compressed integer sets in the roaring
// style: 64-bit keys are split into a 48-bit high prefix and a 16-bit
// low half, and each prefix's population lives in whichever of three
// container forms is smallest — a sorted uint16 array for sparse data,
// a packed 1024-word bitmap for dense data, or [start,last] run
// intervals for contiguous ranges. Set algebra (And/Or/AndNot) runs
// container-against-container, word-at-a-time with 64-bit popcounts on
// the bitmap forms, instead of element-at-a-time.
//
// The catalog's Figure-4 query pipeline uses Sets as posting lists over
// row IDs and attribute-instance keys; see internal/catalog.
//
// Concurrency contract: a Set under construction (Add/AddRange/
// Optimize) belongs to one goroutine. A completed Set may be shared
// read-only by any number of goroutines — And/Or/AndNot/Iterate/
// Contains/Card never mutate their receiver or operand — which is what
// lets the catalog cache posting lists and hand one Set to every
// concurrent reader at the same epoch.
package bitset

import (
	"fmt"
	"sort"
)

// Set is a compressed set of uint64 keys. The zero value is NOT ready
// to use; call New. A nil Set behaves as empty for read operations.
type Set struct {
	chunks []chunk
	// last caches the index of the most recently addressed chunk, so
	// clustered key streams (ascending row IDs, per-object instance
	// keys) skip the binary search.
	last int
}

// chunk pairs one 48-bit high prefix with its low-16-bit container.
type chunk struct {
	hi uint64
	c  *container
}

// New returns an empty set.
func New() *Set { return &Set{} }

// find locates the chunk for hi, returning (index, true) on a hit or
// the insertion index and false.
func (s *Set) find(hi uint64) (int, bool) {
	if s.last < len(s.chunks) && s.chunks[s.last].hi == hi {
		return s.last, true
	}
	i := sort.Search(len(s.chunks), func(i int) bool { return s.chunks[i].hi >= hi })
	if i < len(s.chunks) && s.chunks[i].hi == hi {
		s.last = i
		return i, true
	}
	return i, false
}

// Add inserts key.
func (s *Set) Add(key uint64) {
	hi, lo := key>>chunkBits, uint16(key)
	i, ok := s.find(hi)
	if !ok {
		s.chunks = append(s.chunks, chunk{})
		copy(s.chunks[i+1:], s.chunks[i:])
		s.chunks[i] = chunk{hi: hi, c: newArray()}
		s.last = i
	}
	s.chunks[i].c.add(lo)
}

// AddRange inserts every key in [lo, hi] (inclusive).
func (s *Set) AddRange(lo, hi uint64) {
	if lo > hi {
		return
	}
	for cur := lo >> chunkBits; cur <= hi>>chunkBits; cur++ {
		from, to := uint16(0), uint16(1<<chunkBits-1)
		if cur == lo>>chunkBits {
			from = uint16(lo)
		}
		if cur == hi>>chunkBits {
			to = uint16(hi)
		}
		i, ok := s.find(cur)
		if !ok {
			s.chunks = append(s.chunks, chunk{})
			copy(s.chunks[i+1:], s.chunks[i:])
			s.chunks[i] = chunk{hi: cur, c: newArray()}
			s.last = i
		}
		s.chunks[i].c.addRange(from, to)
	}
}

// Contains reports whether key is present.
func (s *Set) Contains(key uint64) bool {
	if s == nil {
		return false
	}
	i, ok := s.find(key >> chunkBits)
	return ok && s.chunks[i].c.contains(uint16(key))
}

// Card returns the number of keys present.
func (s *Set) Card() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, ch := range s.chunks {
		n += ch.c.card
	}
	return n
}

// IsEmpty reports whether the set has no keys.
func (s *Set) IsEmpty() bool { return s == nil || len(s.chunks) == 0 }

// And returns the intersection s ∩ o as a new set; neither operand is
// mutated. Matching chunks intersect container-wise (word-at-a-time on
// bitmap forms); chunks present on one side only are dropped without
// touching their containers.
func (s *Set) And(o *Set) *Set {
	out := New()
	if s == nil || o == nil {
		return out
	}
	i, j := 0, 0
	for i < len(s.chunks) && j < len(o.chunks) {
		a, b := s.chunks[i], o.chunks[j]
		switch {
		case a.hi < b.hi:
			i++
		case a.hi > b.hi:
			j++
		default:
			if c := andContainers(a.c, b.c); c != nil {
				out.chunks = append(out.chunks, chunk{hi: a.hi, c: c})
			}
			i++
			j++
		}
	}
	return out
}

// Or returns the union s ∪ o as a new set; neither operand is mutated.
func (s *Set) Or(o *Set) *Set {
	out := New()
	var sc, oc []chunk
	if s != nil {
		sc = s.chunks
	}
	if o != nil {
		oc = o.chunks
	}
	i, j := 0, 0
	for i < len(sc) || j < len(oc) {
		switch {
		case j >= len(oc) || (i < len(sc) && sc[i].hi < oc[j].hi):
			out.chunks = append(out.chunks, chunk{hi: sc[i].hi, c: sc[i].c.clone()})
			i++
		case i >= len(sc) || oc[j].hi < sc[i].hi:
			out.chunks = append(out.chunks, chunk{hi: oc[j].hi, c: oc[j].c.clone()})
			j++
		default:
			out.chunks = append(out.chunks, chunk{hi: sc[i].hi, c: orContainers(sc[i].c, oc[j].c)})
			i++
			j++
		}
	}
	return out
}

// AndNot returns the difference s \ o as a new set; neither operand is
// mutated.
func (s *Set) AndNot(o *Set) *Set {
	out := New()
	if s == nil {
		return out
	}
	j := 0
	var oc []chunk
	if o != nil {
		oc = o.chunks
	}
	for _, a := range s.chunks {
		for j < len(oc) && oc[j].hi < a.hi {
			j++
		}
		if j < len(oc) && oc[j].hi == a.hi {
			if c := andNotContainers(a.c, oc[j].c); c != nil {
				out.chunks = append(out.chunks, chunk{hi: a.hi, c: c})
			}
			continue
		}
		out.chunks = append(out.chunks, chunk{hi: a.hi, c: a.c.clone()})
	}
	return out
}

// Iterate calls fn for every key in ascending order until fn returns
// false.
func (s *Set) Iterate(fn func(key uint64) bool) {
	if s == nil {
		return
	}
	for _, ch := range s.chunks {
		if !ch.c.iterate(ch.hi, fn) {
			return
		}
	}
}

// Slice returns the keys in ascending order.
func (s *Set) Slice() []uint64 {
	out := make([]uint64, 0, s.Card())
	s.Iterate(func(k uint64) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Clone deep-copies the set.
func (s *Set) Clone() *Set {
	out := New()
	if s == nil {
		return out
	}
	out.chunks = make([]chunk, len(s.chunks))
	for i, ch := range s.chunks {
		out.chunks[i] = chunk{hi: ch.hi, c: ch.c.clone()}
	}
	return out
}

// Optimize rewrites every container into its smallest representation
// (array vs packed bitmap vs runs). Call it once after bulk
// construction, before a set is cached or shared; set algebra results
// are already normalized and do not need it.
func (s *Set) Optimize() {
	if s == nil {
		return
	}
	for _, ch := range s.chunks {
		ch.c.optimize()
	}
}

// Stats describes a set's physical shape: how many containers of each
// kind hold its keys.
type Stats struct {
	Card   int `json:"card"`
	Array  int `json:"array"`
	Bitmap int `json:"bitmap"`
	Run    int `json:"run"`
}

// Containers returns the total container count.
func (st Stats) Containers() int { return st.Array + st.Bitmap + st.Run }

// String renders the shape compactly, e.g. "card=1520 array=2 run=1".
func (st Stats) String() string {
	out := fmt.Sprintf("card=%d", st.Card)
	if st.Array > 0 {
		out += fmt.Sprintf(" array=%d", st.Array)
	}
	if st.Bitmap > 0 {
		out += fmt.Sprintf(" bitmap=%d", st.Bitmap)
	}
	if st.Run > 0 {
		out += fmt.Sprintf(" run=%d", st.Run)
	}
	return out
}

// Stats reports the set's cardinality and container mix.
func (s *Set) Stats() Stats {
	var st Stats
	if s == nil {
		return st
	}
	for _, ch := range s.chunks {
		st.Card += ch.c.card
		switch ch.c.kind {
		case arrayKind:
			st.Array++
		case bitmapKind:
			st.Bitmap++
		case runKind:
			st.Run++
		}
	}
	return st
}

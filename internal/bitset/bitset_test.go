package bitset

import (
	"math/rand"
	"slices"
	"testing"
)

// oracle is the reference implementation every Set operation is
// cross-checked against: a plain map of ints.
type oracle map[uint64]struct{}

func (o oracle) add(k uint64) { o[k] = struct{}{} }

func (o oracle) addRange(lo, hi uint64) {
	for k := lo; k <= hi; k++ {
		o[k] = struct{}{}
	}
}

func (o oracle) and(p oracle) oracle {
	out := oracle{}
	for k := range o {
		if _, ok := p[k]; ok {
			out[k] = struct{}{}
		}
	}
	return out
}

func (o oracle) or(p oracle) oracle {
	out := oracle{}
	for k := range o {
		out[k] = struct{}{}
	}
	for k := range p {
		out[k] = struct{}{}
	}
	return out
}

func (o oracle) andNot(p oracle) oracle {
	out := oracle{}
	for k := range o {
		if _, ok := p[k]; !ok {
			out[k] = struct{}{}
		}
	}
	return out
}

func (o oracle) slice() []uint64 {
	out := make([]uint64, 0, len(o))
	for k := range o {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// checkEqual verifies s against o on every read surface: Card, Slice
// ordering, Contains probes (present and absent), and Stats card.
func checkEqual(t *testing.T, label string, s *Set, o oracle) {
	t.Helper()
	if got, want := s.Card(), len(o); got != want {
		t.Fatalf("%s: Card = %d, oracle has %d", label, got, want)
	}
	got, want := s.Slice(), o.slice()
	if !slices.Equal(got, want) {
		t.Fatalf("%s: Slice mismatch\n got %v\nwant %v", label, trunc(got), trunc(want))
	}
	if st := s.Stats(); st.Card != len(o) {
		t.Fatalf("%s: Stats.Card = %d, oracle has %d", label, st.Card, len(o))
	}
	for i, k := range want {
		if i%7 == 0 && !s.Contains(k) {
			t.Fatalf("%s: Contains(%d) = false for present key", label, k)
		}
		if !s.Contains(k + 1) {
			if _, ok := o[k+1]; ok {
				t.Fatalf("%s: Contains(%d) = false for present key", label, k+1)
			}
		} else if _, ok := o[k+1]; !ok {
			t.Fatalf("%s: Contains(%d) = true for absent key", label, k+1)
		}
	}
}

func trunc(v []uint64) []uint64 {
	if len(v) > 24 {
		return v[:24]
	}
	return v
}

// patterns generates key sets exercising all three container forms and
// cross-chunk layouts.
func patterns(rng *rand.Rand) []([]uint64) {
	var out [][]uint64

	// Sparse: a few keys scattered across distant chunks (array form).
	sparse := make([]uint64, 0, 50)
	for i := 0; i < 50; i++ {
		sparse = append(sparse, rng.Uint64()>>rng.Intn(40))
	}
	out = append(out, sparse)

	// Dense: > maxArrayCard keys inside one chunk (bitmap form).
	dense := make([]uint64, 0, 6000)
	base := uint64(rng.Intn(4)) << chunkBits
	for i := 0; i < 6000; i++ {
		dense = append(dense, base|uint64(rng.Intn(1<<chunkBits)))
	}
	out = append(out, dense)

	// Runs: contiguous ID blocks, like sequentially assigned row IDs.
	runs := make([]uint64, 0, 3000)
	next := uint64(rng.Intn(100))
	for len(runs) < 3000 {
		blockLen := 1 + rng.Intn(400)
		for i := 0; i < blockLen && len(runs) < 3000; i++ {
			runs = append(runs, next)
			next++
		}
		next += uint64(1 + rng.Intn(1<<17)) // occasionally hop chunks
	}
	out = append(out, runs)

	// Boundary values around chunk edges and the uint16 extremes.
	out = append(out, []uint64{0, 1, 63, 64, 65, 0xFFFF, 0x10000, 0x10001,
		0x1FFFF, 0x20000, 1<<32 - 1, 1 << 32, 1<<48 - 1, 1 << 48, 1<<63 + 5})

	return out
}

func buildPair(keys []uint64) (*Set, oracle) {
	s, o := New(), oracle{}
	for _, k := range keys {
		s.Add(k)
		o.add(k)
	}
	return s, o
}

func TestAddContainsAcrossPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for pi, keys := range patterns(rng) {
		s, o := buildPair(keys)
		checkEqual(t, "built", s, o)
		s.Optimize()
		checkEqual(t, "optimized", s, o)
		// Re-adding everything must be a no-op, including on run
		// containers produced by Optimize.
		for _, k := range keys {
			s.Add(k)
		}
		checkEqual(t, "re-added", s, o)
		c := s.Clone()
		checkEqual(t, "clone", c, o)
		_ = pi
	}
}

func TestSetOpsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pats := patterns(rng)
	for i, ka := range pats {
		for j, kb := range pats {
			sa, oa := buildPair(ka)
			sb, ob := buildPair(kb)
			// Exercise optimized (run/array/bitmap mixed) and raw forms.
			if (i+j)%2 == 0 {
				sa.Optimize()
			}
			if j%2 == 1 {
				sb.Optimize()
			}
			beforeA, beforeB := sa.Slice(), sb.Slice()

			checkEqual(t, "and", sa.And(sb), oa.and(ob))
			checkEqual(t, "or", sa.Or(sb), oa.or(ob))
			checkEqual(t, "andnot", sa.AndNot(sb), oa.andNot(ob))

			// Operands must come back untouched (read-only contract).
			if !slices.Equal(sa.Slice(), beforeA) {
				t.Fatalf("pattern %d/%d: And/Or/AndNot mutated left operand", i, j)
			}
			if !slices.Equal(sb.Slice(), beforeB) {
				t.Fatalf("pattern %d/%d: And/Or/AndNot mutated right operand", i, j)
			}
		}
	}
}

func TestAddRange(t *testing.T) {
	cases := []struct{ lo, hi uint64 }{
		{0, 0},
		{5, 5000},
		{0xFFF0, 0x1000F},        // crosses a chunk boundary
		{0x2FFFF, 0x30000},       // exactly two chunks
		{100, 99},                // empty (lo > hi)
		{1 << 20, 1<<20 + 70000}, // spans a full chunk plus spillover
	}
	for _, tc := range cases {
		s, o := New(), oracle{}
		s.AddRange(tc.lo, tc.hi)
		if tc.lo <= tc.hi {
			o.addRange(tc.lo, tc.hi)
		}
		checkEqual(t, "addrange", s, o)
		s.Optimize()
		checkEqual(t, "addrange-optimized", s, o)
	}
	// Overlapping ranges plus point adds.
	s, o := New(), oracle{}
	s.AddRange(10, 500)
	o.addRange(10, 500)
	s.AddRange(400, 900)
	o.addRange(400, 900)
	s.Add(5)
	o.add(5)
	checkEqual(t, "overlap", s, o)
}

func TestOptimizePicksExpectedKinds(t *testing.T) {
	// A long contiguous range compresses to a run container.
	s := New()
	s.AddRange(0, 9999)
	s.Optimize()
	if st := s.Stats(); st.Run != 1 || st.Array != 0 || st.Bitmap != 0 {
		t.Fatalf("contiguous range: stats = %+v, want 1 run container", st)
	}
	// Sparse values stay an array.
	s = New()
	for i := uint64(0); i < 100; i++ {
		s.Add(i * 131)
	}
	s.Optimize()
	if st := s.Stats(); st.Array != 1 {
		t.Fatalf("sparse: stats = %+v, want 1 array container", st)
	}
	// Dense random fill (no long runs) stays a bitmap.
	s = New()
	rng := rand.New(rand.NewSource(3))
	for s.Card() <= maxArrayCard*2 {
		s.Add(uint64(rng.Intn(1<<chunkBits) * 2)) // even values: no runs
	}
	s.Optimize()
	if st := s.Stats(); st.Bitmap != 1 {
		t.Fatalf("dense: stats = %+v, want 1 bitmap container", st)
	}
}

func TestIterateEarlyStop(t *testing.T) {
	s := New()
	s.AddRange(0, 100)
	s.Add(1 << 30)
	n := 0
	s.Iterate(func(uint64) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d keys, want 10", n)
	}
}

func TestNilAndEmptySets(t *testing.T) {
	var nilSet *Set
	if nilSet.Card() != 0 || !nilSet.IsEmpty() || nilSet.Contains(7) {
		t.Fatal("nil set should read as empty")
	}
	nilSet.Iterate(func(uint64) bool { t.Fatal("nil set iterated"); return false })
	nilSet.Optimize()
	empty := New()
	if got := nilSet.And(empty).Card(); got != 0 {
		t.Fatalf("nil.And(empty) card = %d", got)
	}
	if got := empty.Or(nilSet).Card(); got != 0 {
		t.Fatalf("empty.Or(nil) card = %d", got)
	}
	full := New()
	full.AddRange(0, 9)
	if got := full.Or(nilSet).Card(); got != 10 {
		t.Fatalf("full.Or(nil) card = %d, want 10", got)
	}
	if got := full.AndNot(nilSet).Card(); got != 10 {
		t.Fatalf("full.AndNot(nil) card = %d, want 10", got)
	}
	if got := nilSet.AndNot(full).Card(); got != 0 {
		t.Fatalf("nil.AndNot(full) card = %d", got)
	}
	if s := nilSet.Stats(); s.Containers() != 0 {
		t.Fatalf("nil set stats = %+v", s)
	}
}

func TestStatsString(t *testing.T) {
	s := New()
	s.AddRange(0, 9999) // one run container after optimize
	for i := uint64(0); i < 10; i++ {
		s.Add(1<<20 + i*999) // sparse array container in another chunk
	}
	s.Optimize()
	if got := s.Stats().String(); got != "card=10010 array=1 run=1" {
		t.Fatalf("Stats.String() = %q", got)
	}
	if got := New().Stats().String(); got != "card=0" {
		t.Fatalf("empty Stats.String() = %q", got)
	}
}

// FuzzSetOps replays an opcode tape against both the Set and the map
// oracle, then cross-checks every read surface and the three binary
// ops. Seeds cover container transitions (array→bitmap, run fallback)
// and chunk-boundary keys; `go test -run=FuzzSetOps` replays them as
// the make bitmap step, and -fuzz explores further.
func FuzzSetOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, int64(1))
	f.Add([]byte{0xFF, 0x00, 0xFF, 0x00, 0x80, 0x41, 0x07}, int64(2))
	f.Add([]byte{1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3}, int64(3))
	f.Add([]byte{250, 251, 252, 253, 254, 255, 0, 10, 20}, int64(4))
	f.Fuzz(func(t *testing.T, tape []byte, seed int64) {
		if len(tape) > 512 {
			tape = tape[:512]
		}
		rng := rand.New(rand.NewSource(seed))
		sets := [2]*Set{New(), New()}
		oracles := [2]oracle{{}, {}}
		for _, op := range tape {
			side := int(op) & 1
			s, o := sets[side], oracles[side]
			switch (op >> 1) % 5 {
			case 0: // clustered add (stays within a chunk region)
				k := uint64(rng.Intn(1 << 18))
				s.Add(k)
				o.add(k)
			case 1: // scattered add (arbitrary chunk)
				k := rng.Uint64() >> uint(rng.Intn(48))
				s.Add(k)
				o.add(k)
			case 2: // range add
				lo := uint64(rng.Intn(1 << 18))
				hi := lo + uint64(rng.Intn(1<<14))
				s.AddRange(lo, hi)
				o.addRange(lo, hi)
			case 3: // optimize mid-stream
				s.Optimize()
			case 4: // boundary keys
				for _, k := range []uint64{0, 0xFFFF, 0x10000, 1<<32 - 1} {
					s.Add(k + uint64(op))
					o.add(k + uint64(op))
				}
			}
		}
		checkEqual(t, "fuzz[0]", sets[0], oracles[0])
		checkEqual(t, "fuzz[1]", sets[1], oracles[1])
		checkEqual(t, "fuzz-and", sets[0].And(sets[1]), oracles[0].and(oracles[1]))
		checkEqual(t, "fuzz-or", sets[0].Or(sets[1]), oracles[0].or(oracles[1]))
		checkEqual(t, "fuzz-andnot", sets[0].AndNot(sets[1]), oracles[0].andNot(oracles[1]))
	})
}

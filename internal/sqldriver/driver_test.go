package sqldriver

import (
	"database/sql"
	"testing"

	"github.com/gridmeta/hybridcat/internal/relstore"
)

func openTestDB(t *testing.T, dsn string) *sql.DB {
	t.Helper()
	db, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		db.Close()
		Unregister(dsn)
	})
	return db
}

func TestDriverEndToEnd(t *testing.T) {
	db := openTestDB(t, "t-e2e")
	if _, err := db.Exec("CREATE TABLE kv (k TEXT NOT NULL, v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO kv VALUES ('a', 1), ('b', 2), ('c', NULL)")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 3 {
		t.Errorf("RowsAffected = %d", n)
	}
	rows, err := db.Query("SELECT k, v FROM kv ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []string
	for rows.Next() {
		var k string
		var v sql.NullInt64
		if err := rows.Scan(&k, &v); err != nil {
			t.Fatal(err)
		}
		if v.Valid {
			got = append(got, k+"=?")
			got[len(got)-1] = k
		} else {
			got = append(got, k+"-null")
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != "c-null" {
		t.Errorf("rows = %v", got)
	}
}

func TestDriverPlaceholders(t *testing.T) {
	db := openTestDB(t, "t-params")
	if _, err := db.Exec("CREATE TABLE p (a BIGINT, b TEXT, c DOUBLE, d BOOLEAN)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO p VALUES (?, ?, ?, ?)", int64(7), "hi", 2.5, true); err != nil {
		t.Fatal(err)
	}
	var a int64
	var b string
	var c float64
	var d bool
	err := db.QueryRow("SELECT a, b, c, d FROM p WHERE a = ?", int64(7)).Scan(&a, &b, &c, &d)
	if err != nil {
		t.Fatal(err)
	}
	if a != 7 || b != "hi" || c != 2.5 || !d {
		t.Errorf("scanned %v %v %v %v", a, b, c, d)
	}
}

func TestDriverPreparedStatementReuse(t *testing.T) {
	db := openTestDB(t, "t-prep")
	if _, err := db.Exec("CREATE TABLE s (n BIGINT)"); err != nil {
		t.Fatal(err)
	}
	st, err := db.Prepare("INSERT INTO s VALUES (?)")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 10; i++ {
		if _, err := st.Exec(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var n int64
	if err := db.QueryRow("SELECT COUNT(*) FROM s").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("count = %d", n)
	}
}

func TestDriverSharedRegistration(t *testing.T) {
	shared := relstore.NewDatabase()
	Register("t-shared", shared)
	defer Unregister("t-shared")
	db1, err := sql.Open(DriverName, "t-shared")
	if err != nil {
		t.Fatal(err)
	}
	defer db1.Close()
	if _, err := db1.Exec("CREATE TABLE x (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	// The table is visible through the relstore handle directly.
	if shared.Table("x") == nil {
		t.Error("table not visible through the shared relstore handle")
	}
	db2, err := sql.Open(DriverName, "t-shared")
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Exec("INSERT INTO x VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := db1.QueryRow("SELECT COUNT(*) FROM x").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("count = %d", n)
	}
}

func TestDriverErrorsSurface(t *testing.T) {
	db := openTestDB(t, "t-errs")
	if _, err := db.Exec("CREATE TABLEE oops (a INT)"); err == nil {
		t.Error("syntax error should surface")
	}
	if _, err := db.Query("SELECT * FROM missing"); err == nil {
		t.Error("missing table should surface")
	}
	// Rollback is unsupported and must error rather than silently pass.
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err == nil {
		t.Error("Rollback should report lack of support")
	}
}

func TestDriverNullScan(t *testing.T) {
	db := openTestDB(t, "t-null")
	if _, err := db.Exec("CREATE TABLE n (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO n VALUES (NULL)"); err != nil {
		t.Fatal(err)
	}
	var v sql.NullInt64
	if err := db.QueryRow("SELECT a FROM n").Scan(&v); err != nil {
		t.Fatal(err)
	}
	if v.Valid {
		t.Error("NULL scanned as valid")
	}
}

// Package sqldriver exposes the relstore engine through database/sql as
// driver name "hybridcat". Databases are registered under a DSN name with
// Register, so several components can share one in-memory instance:
//
//	db := relstore.NewDatabase()
//	sqldriver.Register("catalog", db)
//	sqlDB, _ := sql.Open("hybridcat", "catalog")
//
// Opening an unregistered DSN creates a fresh private database, which is
// convenient for tests and examples.
//
// Transactions are accepted but not isolated: Begin/Commit are no-ops and
// Rollback returns an error, matching the engine's auto-commit semantics.
package sqldriver

import (
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/sqlparser"
)

// DriverName is the name registered with database/sql.
const DriverName = "hybridcat"

var (
	registryMu sync.Mutex
	registry   = make(map[string]*relstore.Database)
)

func init() {
	sql.Register(DriverName, &Driver{})
}

// Register binds a relstore database to a DSN name. Re-registering a name
// replaces the binding.
func Register(dsn string, db *relstore.Database) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[dsn] = db
}

// Unregister removes a DSN binding.
func Unregister(dsn string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	delete(registry, dsn)
}

// Driver implements driver.Driver.
type Driver struct{}

// Open returns a connection to the database registered under the DSN,
// creating and registering an empty one when absent.
func (Driver) Open(dsn string) (driver.Conn, error) {
	registryMu.Lock()
	db, ok := registry[dsn]
	if !ok {
		db = relstore.NewDatabase()
		registry[dsn] = db
	}
	registryMu.Unlock()
	return &conn{engine: sqlparser.NewEngine(db)}, nil
}

type conn struct {
	engine *sqlparser.Engine
}

// Prepare implements driver.Conn.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	n, err := sqlparser.NumParams(query)
	if err != nil {
		return nil, err
	}
	return &stmt{conn: c, query: query, numInput: n}, nil
}

// Close implements driver.Conn.
func (c *conn) Close() error { return nil }

// Begin implements driver.Conn. The engine auto-commits; Begin returns a
// transaction whose Commit is a no-op and whose Rollback fails.
func (c *conn) Begin() (driver.Tx, error) { return noopTx{}, nil }

type noopTx struct{}

func (noopTx) Commit() error { return nil }

func (noopTx) Rollback() error {
	return errors.New("hybridcat: rollback unsupported (auto-commit engine)")
}

type stmt struct {
	conn     *conn
	query    string
	numInput int
}

// Close implements driver.Stmt.
func (s *stmt) Close() error { return nil }

// NumInput implements driver.Stmt.
func (s *stmt) NumInput() int { return s.numInput }

func convertArgs(args []driver.Value) ([]relstore.Value, error) {
	out := make([]relstore.Value, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case nil:
			out[i] = relstore.Null()
		case int64:
			out[i] = relstore.Int(v)
		case float64:
			out[i] = relstore.Float(v)
		case bool:
			out[i] = relstore.Bool(v)
		case string:
			out[i] = relstore.Str(v)
		case []byte:
			out[i] = relstore.Bytes(append([]byte(nil), v...))
		case time.Time:
			out[i] = relstore.Str(v.UTC().Format(time.RFC3339Nano))
		default:
			return nil, fmt.Errorf("hybridcat: unsupported argument type %T", a)
		}
	}
	return out, nil
}

// Exec implements driver.Stmt.
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	vals, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	n, err := s.conn.engine.Exec(s.query, vals)
	if err != nil {
		return nil, err
	}
	return result{rowsAffected: n}, nil
}

// Query implements driver.Stmt.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	vals, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	it, err := s.conn.engine.Query(s.query, vals)
	if err != nil {
		return nil, err
	}
	return &rows{it: it}, nil
}

type result struct{ rowsAffected int64 }

// LastInsertId implements driver.Result; the engine has no auto-increment
// rowids to report.
func (result) LastInsertId() (int64, error) {
	return 0, errors.New("hybridcat: LastInsertId unsupported")
}

// RowsAffected implements driver.Result.
func (r result) RowsAffected() (int64, error) { return r.rowsAffected, nil }

type rows struct {
	it relstore.Iterator
}

// Columns implements driver.Rows.
func (r *rows) Columns() []string { return r.it.Columns() }

// Close implements driver.Rows.
func (r *rows) Close() error { return nil }

// Next implements driver.Rows.
func (r *rows) Next(dest []driver.Value) error {
	row, ok := r.it.Next()
	if !ok {
		return io.EOF
	}
	for i, v := range row {
		switch v.K {
		case relstore.KNull:
			dest[i] = nil
		case relstore.KInt:
			dest[i] = v.I
		case relstore.KFloat:
			dest[i] = v.F
		case relstore.KString:
			dest[i] = v.S
		case relstore.KBytes:
			dest[i] = v.B
		case relstore.KBool:
			dest[i] = v.I != 0
		}
	}
	return nil
}

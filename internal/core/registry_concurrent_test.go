package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// TestRegistryConcurrentEnsureAndLookup exercises the registry the way
// the catalog's concurrent read path does: many goroutines racing
// EnsureAttr/EnsureElem on overlapping identities against a steady
// stream of lookups. Every goroutine ensuring the same identity must see
// the same definition, and lookups must never observe a half-registered
// one. Runs meaningfully only under -race, but the ID agreement checks
// hold regardless.
func TestRegistryConcurrentEnsureAndLookup(t *testing.T) {
	r := newLEADRegistry(t)
	order := 0
	for _, a := range xmlschema.MustLEAD().Attributes {
		if a.IsDynamic {
			order = a.Order
			break
		}
	}
	if order == 0 {
		t.Fatal("LEAD schema has no dynamic container")
	}

	const goroutines = 8
	const attrs = 5
	ids := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]int64, attrs)
			for a := 0; a < attrs; a++ {
				name := fmt.Sprintf("shared-attr-%d", a)
				def, err := r.EnsureAttr(name, "RACE", 0, order, "user")
				if err != nil {
					t.Errorf("goroutine %d: EnsureAttr: %v", g, err)
					return
				}
				ids[g][a] = def.ID
				if _, err := r.EnsureElem("val", "RACE", def.ID, DTString, "user"); err != nil {
					t.Errorf("goroutine %d: EnsureElem: %v", g, err)
					return
				}
				// Interleave reads of both dynamic and structural defs.
				if got := r.LookupAttr(name, "RACE", 0, "user"); got == nil || got.ID != def.ID {
					t.Errorf("goroutine %d: lookup of %s diverged: %v vs %v", g, name, got, def)
					return
				}
				if r.LookupAttr("theme", "", 0, "") == nil {
					t.Errorf("goroutine %d: structural def vanished", g)
					return
				}
				for _, d := range r.Attrs() {
					if d.Name == "" {
						t.Errorf("goroutine %d: half-registered def %+v", g, d)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		for a := 0; a < attrs; a++ {
			if ids[g][a] != ids[0][a] {
				t.Fatalf("attr %d: goroutine %d got ID %d, goroutine 0 got %d — duplicate registration",
					a, g, ids[g][a], ids[0][a])
			}
		}
	}
}

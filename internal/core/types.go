// Package core implements the paper's primary contribution: the hybrid
// shredding of schema-based XML metadata into per-attribute CLOBs plus
// queryable attribute/element rows and sub-attribute inverted lists (§2,
// §3), with validated dynamic metadata attributes resolved by (name,
// source) rather than by document structure.
package core

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// DataType is the declared type of a metadata element, used to validate
// dynamic attribute values on insert (§3).
type DataType uint8

// Element data types.
const (
	// DTString accepts any text.
	DTString DataType = iota
	// DTInt requires an integer.
	DTInt
	// DTFloat requires a number.
	DTFloat
	// DTBool requires true/false (or 0/1, yes/no).
	DTBool
	// DTDate requires YYYY-MM-DD or RFC3339.
	DTDate
)

// String returns the type's catalog name.
func (d DataType) String() string {
	switch d {
	case DTString:
		return "string"
	case DTInt:
		return "int"
	case DTFloat:
		return "float"
	case DTBool:
		return "bool"
	case DTDate:
		return "date"
	}
	return fmt.Sprintf("DataType(%d)", uint8(d))
}

// ParseDataType parses a catalog type name.
func ParseDataType(s string) (DataType, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "string", "text", "":
		return DTString, nil
	case "int", "integer":
		return DTInt, nil
	case "float", "double", "number":
		return DTFloat, nil
	case "bool", "boolean":
		return DTBool, nil
	case "date":
		return DTDate, nil
	}
	return 0, fmt.Errorf("core: unknown data type %q", s)
}

// ValidateValue checks text against the type and returns its numeric
// shadow (used for the typed nval column) when one exists.
func (d DataType) ValidateValue(text string) (num float64, hasNum bool, err error) {
	t := strings.TrimSpace(text)
	switch d {
	case DTString:
		if f, perr := strconv.ParseFloat(t, 64); perr == nil {
			return f, true, nil
		}
		return 0, false, nil
	case DTInt:
		i, perr := strconv.ParseInt(t, 10, 64)
		if perr != nil {
			return 0, false, fmt.Errorf("core: %q is not an integer", text)
		}
		return float64(i), true, nil
	case DTFloat:
		f, perr := strconv.ParseFloat(t, 64)
		if perr != nil {
			return 0, false, fmt.Errorf("core: %q is not a number", text)
		}
		return f, true, nil
	case DTBool:
		switch strings.ToLower(t) {
		case "true", "1", "yes":
			return 1, true, nil
		case "false", "0", "no":
			return 0, true, nil
		}
		return 0, false, fmt.Errorf("core: %q is not a boolean", text)
	case DTDate:
		for _, layout := range []string{"2006-01-02", time.RFC3339} {
			if ts, perr := time.Parse(layout, t); perr == nil {
				return float64(ts.Unix()), true, nil
			}
		}
		return 0, false, fmt.Errorf("core: %q is not a date (want YYYY-MM-DD or RFC3339)", text)
	}
	return 0, false, fmt.Errorf("core: invalid data type %d", d)
}

// AttrDef is a metadata attribute definition (§2): a unique internal ID,
// the (name, source) identity, the parent definition for sub-attributes,
// and the schema order locating the attribute's CLOBs in the global
// ordering. Structural definitions come from the annotated schema (Source
// is empty: "the element tag was used for the name, but the source was
// not necessary"); dynamic definitions are registered by administrators
// (Owner empty) or privately by users.
type AttrDef struct {
	ID          int64
	Name        string
	Source      string
	ParentID    int64 // 0 for top-level attributes
	SchemaOrder int   // global order of the schema node whose CLOBs carry it
	Queryable   bool
	Dynamic     bool
	Owner       string // "" = admin-level (visible to everyone)
}

// TopLevel reports whether the definition is a top-level attribute.
func (d *AttrDef) TopLevel() bool { return d.ParentID == 0 }

// ElemDef is a metadata element definition (§2): each element belongs to
// exactly one attribute definition and carries a data type used for
// insert-time validation.
type ElemDef struct {
	ID     int64
	AttrID int64
	Name   string
	Source string
	Type   DataType
	Owner  string
}

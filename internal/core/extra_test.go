package core

import (
	"strings"
	"sync"
	"testing"

	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

func TestShredAttributeContinuesSequences(t *testing.T) {
	s, reg := newFig3Shredder(t)
	schema := s.Schema
	theme := schema.AttributeByTag("theme")
	frag, _ := xmldoc.ParseString("<theme><themekt>CF</themekt><themekey>added</themekey></theme>")

	// Simulate an object that already has two theme instances.
	themeDef := reg.LookupAttr("theme", "", 0, "")
	res, err := s.ShredAttribute(frag, theme, Options{},
		map[int]int{theme.Order: 2}, map[int64]int{themeDef.ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clobs) != 1 || res.Clobs[0].ClobSeq != 3 {
		t.Fatalf("clob seq = %+v", res.Clobs)
	}
	if len(res.Attrs) != 1 || res.Attrs[0].Seq != 3 {
		t.Fatalf("attr seq = %+v", res.Attrs)
	}

	// Wrong declaration kinds fail.
	if _, err := s.ShredAttribute(frag, schema.Root, Options{}, nil, nil); err == nil {
		t.Error("non-attribute decl should fail")
	}
	other, _ := xmldoc.ParseString("<place><placekt>x</placekt></place>")
	if _, err := s.ShredAttribute(other, theme, Options{}, nil, nil); err == nil {
		t.Error("mismatched fragment tag should fail")
	}
	// Validation problems surface.
	bad, _ := xmldoc.ParseString("<theme><mystery>x</mystery></theme>")
	if _, err := s.ShredAttribute(bad, theme, Options{}, nil, nil); err == nil {
		t.Error("unknown element should fail in strict mode")
	}
}

func TestRegistryRestore(t *testing.T) {
	r := newLEADRegistry(t)
	grid, err := r.RegisterAttr("grid", "ARPS", 0, 19, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RegisterElem("dx", "ARPS", grid.ID, DTFloat, ""); err != nil {
		t.Fatal(err)
	}
	attrs := make([]AttrDef, 0)
	for _, d := range r.Attrs() {
		attrs = append(attrs, *d)
	}
	elems := make([]ElemDef, 0)
	for _, d := range r.Elems() {
		elems = append(elems, *d)
	}

	fresh := newLEADRegistry(t)
	if err := fresh.Restore(attrs, elems); err != nil {
		t.Fatal(err)
	}
	got := fresh.LookupAttr("grid", "ARPS", 0, "")
	if got == nil || got.ID != grid.ID {
		t.Fatalf("restored grid = %+v", got)
	}
	// Counters resume above restored IDs.
	next, err := fresh.RegisterAttr("later", "X", 0, 19, "")
	if err != nil {
		t.Fatal(err)
	}
	if next.ID <= grid.ID {
		t.Errorf("post-restore ID %d <= %d", next.ID, grid.ID)
	}
	// Bad restores fail.
	if err := fresh.Restore([]AttrDef{{ID: 0, Name: "x"}}, nil); err == nil {
		t.Error("zero ID should fail")
	}
	if err := fresh.Restore([]AttrDef{{ID: 1, Name: "a"}, {ID: 1, Name: "b"}}, nil); err == nil {
		t.Error("duplicate ID should fail")
	}
	if err := fresh.Restore([]AttrDef{{ID: 1, Name: "a"}, {ID: 2, Name: "a"}}, nil); err == nil {
		t.Error("duplicate identity should fail")
	}
	if err := fresh.Restore([]AttrDef{{ID: 1, Name: "a"}},
		[]ElemDef{{ID: 1, AttrID: 99, Name: "e"}}); err == nil {
		t.Error("dangling element should fail")
	}
}

func TestEnsureConcurrent(t *testing.T) {
	r := newLEADRegistry(t)
	var wg sync.WaitGroup
	ids := make([]int64, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			def, err := r.EnsureAttr("racy", "SRC", 0, 19, "")
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = def.ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < 16; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("EnsureAttr returned different IDs: %v", ids)
		}
	}
	// EnsureElem the same.
	var ewg sync.WaitGroup
	eids := make([]int64, 8)
	for i := 0; i < 8; i++ {
		ewg.Add(1)
		go func(i int) {
			defer ewg.Done()
			def, err := r.EnsureElem("p", "SRC", ids[0], DTString, "")
			if err != nil {
				t.Error(err)
				return
			}
			eids[i] = def.ID
		}(i)
	}
	ewg.Wait()
	for i := 1; i < 8; i++ {
		if eids[i] != eids[0] {
			t.Fatalf("EnsureElem returned different IDs: %v", eids)
		}
	}
	// Ensure prefers a user-private definition when one exists.
	priv, err := r.RegisterAttr("racy", "SRC", 0, 19, "alice")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.EnsureAttr("racy", "SRC", 0, 19, "alice")
	if err != nil || got.ID != priv.ID {
		t.Errorf("EnsureAttr(alice) = %+v, %v", got, err)
	}
}

func TestAttrDefTopLevelAndValidationErrorText(t *testing.T) {
	d := &AttrDef{ID: 1}
	if !d.TopLevel() {
		t.Error("ParentID 0 should be top level")
	}
	d.ParentID = 5
	if d.TopLevel() {
		t.Error("ParentID != 0 should not be top level")
	}
	err := &ValidationError{Problems: []string{"a", "b"}}
	if !strings.Contains(err.Error(), "a; b") {
		t.Errorf("error text = %q", err.Error())
	}
	_ = xmlschema.MustLEAD()
}

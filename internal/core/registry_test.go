package core

import (
	"testing"

	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

func newLEADRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := NewRegistry(xmlschema.MustLEAD())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegistrySeedsStructuralDefs(t *testing.T) {
	r := newLEADRegistry(t)
	theme := r.LookupAttr("theme", "", 0, "")
	if theme == nil || theme.Dynamic || !theme.Queryable || theme.ParentID != 0 {
		t.Fatalf("theme def = %+v", theme)
	}
	if theme.SchemaOrder == 0 {
		t.Error("structural def should carry its schema order")
	}
	kt := r.LookupElem("themekt", "", theme.ID, "")
	key := r.LookupElem("themekey", "", theme.ID, "")
	if kt == nil || key == nil {
		t.Fatal("theme elements missing")
	}
	// Sub-attributes of spdom.
	spdom := r.LookupAttr("spdom", "", 0, "")
	bounding := r.LookupAttr("bounding", "", spdom.ID, "")
	if bounding == nil || bounding.ParentID != spdom.ID {
		t.Fatalf("bounding = %+v", bounding)
	}
	if west := r.LookupElem("westbc", "", bounding.ID, ""); west == nil {
		t.Error("westbc should be owned by bounding")
	}
	// The dynamic container itself owns no structural def.
	if d := r.LookupAttr("detailed", "", 0, ""); d != nil {
		t.Errorf("detailed should not be a structural def: %+v", d)
	}
	// resourceID is its own element.
	rid := r.LookupAttr("resourceID", "", 0, "")
	if rid == nil || r.LookupElem("resourceID", "", rid.ID, "") == nil {
		t.Error("resourceID self-element missing")
	}
}

func TestRegisterDynamicDefs(t *testing.T) {
	r := newLEADRegistry(t)
	grid, err := r.RegisterAttr("grid", "ARPS", 0, 19, "")
	if err != nil {
		t.Fatal(err)
	}
	if !grid.Dynamic || grid.SchemaOrder != 19 {
		t.Errorf("grid = %+v", grid)
	}
	if _, err := r.RegisterAttr("grid", "ARPS", 0, 19, ""); err == nil {
		t.Error("duplicate registration should fail")
	}
	// Same name, different source, is a different definition.
	if _, err := r.RegisterAttr("grid", "WRF", 0, 19, ""); err != nil {
		t.Errorf("grid/WRF should register: %v", err)
	}
	dx, err := r.RegisterElem("dx", "ARPS", grid.ID, DTFloat, "")
	if err != nil {
		t.Fatal(err)
	}
	if dx.Type != DTFloat {
		t.Errorf("dx type = %v", dx.Type)
	}
	// Sub-attribute under grid.
	gs, err := r.RegisterAttr("grid-stretching", "ARPS", grid.ID, 19, "")
	if err != nil {
		t.Fatal(err)
	}
	if gs.ParentID != grid.ID {
		t.Errorf("gs parent = %d", gs.ParentID)
	}
	// Bad parents fail.
	if _, err := r.RegisterAttr("x", "y", 99999, 19, ""); err == nil {
		t.Error("unknown parent should fail")
	}
	if _, err := r.RegisterElem("x", "y", 99999, DTString, ""); err == nil {
		t.Error("unknown attribute for element should fail")
	}
}

func TestUserScopedResolution(t *testing.T) {
	r := newLEADRegistry(t)
	admin, err := r.RegisterAttr("model", "WRF", 0, 19, "")
	if err != nil {
		t.Fatal(err)
	}
	private, err := r.RegisterAttr("model", "WRF", 0, 19, "alice")
	if err != nil {
		t.Fatal(err)
	}
	// Alice sees her private definition; Bob sees the admin one.
	if got := r.LookupAttr("model", "WRF", 0, "alice"); got.ID != private.ID {
		t.Errorf("alice resolved %d, want private %d", got.ID, private.ID)
	}
	if got := r.LookupAttr("model", "WRF", 0, "bob"); got.ID != admin.ID {
		t.Errorf("bob resolved %d, want admin %d", got.ID, admin.ID)
	}
	if got := r.LookupAttr("model", "WRF", 0, ""); got.ID != admin.ID {
		t.Errorf("anonymous resolved %d, want admin %d", got.ID, admin.ID)
	}
	// Element scoping mirrors attribute scoping.
	if _, err := r.RegisterElem("dt", "WRF", admin.ID, DTFloat, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RegisterElem("dt", "WRF", admin.ID, DTInt, "alice"); err != nil {
		t.Fatal(err)
	}
	if got := r.LookupElem("dt", "WRF", admin.ID, "alice"); got.Type != DTInt {
		t.Error("alice should see her private element type")
	}
	if got := r.LookupElem("dt", "WRF", admin.ID, "bob"); got.Type != DTFloat {
		t.Error("bob should see the admin element type")
	}
}

func TestRegistryListings(t *testing.T) {
	r := newLEADRegistry(t)
	attrs := r.Attrs()
	elems := r.Elems()
	if len(attrs) == 0 || len(elems) == 0 {
		t.Fatal("registry should be seeded")
	}
	for i := 1; i < len(attrs); i++ {
		if attrs[i].ID <= attrs[i-1].ID {
			t.Fatal("Attrs not sorted by ID")
		}
	}
	if r.AttrByID(attrs[0].ID) != attrs[0] {
		t.Error("AttrByID mismatch")
	}
	if r.ElemByID(elems[0].ID) != elems[0] {
		t.Error("ElemByID mismatch")
	}
	if r.AttrByID(999999) != nil || r.ElemByID(999999) != nil {
		t.Error("missing IDs should return nil")
	}
}

package core

import (
	"strings"
	"testing"

	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// newFig3Shredder builds a shredder over the LEAD schema with the
// Figure 3 dynamic definitions registered (grid/ARPS with dx, dz and the
// grid-stretching sub-attribute with dzmin, reference-height).
func newFig3Shredder(t *testing.T) (*Shredder, *Registry) {
	t.Helper()
	schema := xmlschema.MustLEAD()
	reg, err := NewRegistry(schema)
	if err != nil {
		t.Fatal(err)
	}
	detailed := schema.AttributeByTag("detailed")
	grid, err := reg.RegisterAttr("grid", "ARPS", 0, detailed.Order, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []string{"dx", "dz"} {
		if _, err := reg.RegisterElem(e, "ARPS", grid.ID, DTFloat, ""); err != nil {
			t.Fatal(err)
		}
	}
	gs, err := reg.RegisterAttr("grid-stretching", "ARPS", grid.ID, detailed.Order, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []string{"dzmin", "reference-height"} {
		if _, err := reg.RegisterElem(e, "ARPS", gs.ID, DTFloat, ""); err != nil {
			t.Fatal(err)
		}
	}
	return NewShredder(schema, reg), reg
}

func fig3Doc(t *testing.T) *xmldoc.Node {
	t.Helper()
	doc, err := xmldoc.ParseString(xmlschema.Figure3Document)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestFigure3Shred pins the paper's worked shredding example: the two
// theme attributes become CLOBs at the theme node order with sequence 1
// and 2, the detailed element resolves to the dynamic grid/ARPS
// definition, dx and dz shred as its elements, and grid-stretching
// becomes a sub-attribute whose inverted list links it to grid.
func TestFigure3Shred(t *testing.T) {
	s, reg := newFig3Shredder(t)
	res, err := s.Shred(fig3Doc(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skipped) != 0 {
		t.Fatalf("skipped = %+v", res.Skipped)
	}

	// CLOBs: resourceID, theme x2, detailed.
	if len(res.Clobs) != 4 {
		t.Fatalf("clobs = %d, want 4", len(res.Clobs))
	}
	themeOrder := s.Schema.AttributeByTag("theme").Order
	var themeClobs []ClobRec
	for _, c := range res.Clobs {
		if c.NodeOrder == themeOrder {
			themeClobs = append(themeClobs, c)
		}
	}
	if len(themeClobs) != 2 || themeClobs[0].ClobSeq != 1 || themeClobs[1].ClobSeq != 2 {
		t.Fatalf("theme clobs = %+v", themeClobs)
	}
	if !strings.Contains(themeClobs[0].XML, "convective_precipitation_amount") {
		t.Error("first theme CLOB content wrong")
	}
	if !strings.Contains(themeClobs[1].XML, "air_pressure_at_cloud_base") {
		t.Error("second theme CLOB content wrong")
	}

	// Attribute instances: resourceID, theme x2, grid, grid-stretching.
	grid := reg.LookupAttr("grid", "ARPS", 0, "")
	gs := reg.LookupAttr("grid-stretching", "ARPS", grid.ID, "")
	theme := reg.LookupAttr("theme", "", 0, "")
	counts := map[int64]int{}
	for _, a := range res.Attrs {
		counts[a.AttrID]++
	}
	if counts[theme.ID] != 2 || counts[grid.ID] != 1 || counts[gs.ID] != 1 {
		t.Fatalf("attr counts = %v", counts)
	}

	// The detailed CLOB carries the resolved dynamic attribute identity.
	detailedOrder := s.Schema.AttributeByTag("detailed").Order
	for _, c := range res.Clobs {
		if c.NodeOrder == detailedOrder && c.AttrID != grid.ID {
			t.Errorf("detailed CLOB attr = %d, want grid %d", c.AttrID, grid.ID)
		}
	}

	// Elements: themekt+2 themekey per theme instance; dx, dz on grid;
	// dzmin, reference-height on grid-stretching.
	elems := map[string][]ElemRec{}
	for _, e := range res.Elems {
		def := reg.ElemByID(e.ElemID)
		elems[def.Name] = append(elems[def.Name], e)
	}
	if len(elems["themekt"]) != 2 || len(elems["themekey"]) != 4 {
		t.Fatalf("theme elems: kt=%d key=%d", len(elems["themekt"]), len(elems["themekey"]))
	}
	if len(elems["dx"]) != 1 || elems["dx"][0].Value != "1000.000" || elems["dx"][0].Num != 1000 {
		t.Fatalf("dx = %+v", elems["dx"])
	}
	if elems["dx"][0].AttrID != grid.ID {
		t.Error("dx should be owned by the grid instance")
	}
	if len(elems["dzmin"]) != 1 || elems["dzmin"][0].AttrID != gs.ID || elems["dzmin"][0].Num != 100 {
		t.Fatalf("dzmin = %+v", elems["dzmin"])
	}
	// Element sequence: within the first theme instance, themekt=1 then
	// themekey 2,3.
	first := elems["themekt"][0]
	if first.ElemSeq != 1 {
		t.Errorf("themekt seq = %d", first.ElemSeq)
	}
	var keySeqs []int
	for _, e := range elems["themekey"] {
		if e.AttrSeq == first.AttrSeq {
			keySeqs = append(keySeqs, e.ElemSeq)
		}
	}
	if len(keySeqs) != 2 || keySeqs[0] != 2 || keySeqs[1] != 3 {
		t.Errorf("themekey seqs = %v", keySeqs)
	}

	// Inverted list: grid-stretching instance linked to grid at depth 1.
	if len(res.SubAttrs) != 1 {
		t.Fatalf("sub attrs = %+v", res.SubAttrs)
	}
	sa := res.SubAttrs[0]
	if sa.ChildAttrID != gs.ID || sa.AncAttrID != grid.ID || sa.Depth != 1 {
		t.Errorf("sub attr link = %+v", sa)
	}
}

func TestShredUnknownDynamicAttrSkipped(t *testing.T) {
	s, _ := newFig3Shredder(t)
	doc := fig3Doc(t)
	// Rename the entity so it matches no definition.
	entity := doc.FindAll("enttypl")[0]
	entity.Text = "unknown-model"
	res, err := s.Shred(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The CLOB is still stored (paper: retained but not shredded) with no
	// attribute identity.
	detailedOrder := s.Schema.AttributeByTag("detailed").Order
	found := false
	for _, c := range res.Clobs {
		if c.NodeOrder == detailedOrder {
			found = true
			if c.AttrID != 0 {
				t.Error("unmatched dynamic CLOB should carry no attr id")
			}
		}
	}
	if !found {
		t.Fatal("detailed CLOB missing")
	}
	if len(res.Skipped) != 1 || res.Skipped[0].Name != "unknown-model" {
		t.Errorf("skipped = %+v", res.Skipped)
	}
	// No grid rows were shredded.
	for _, e := range res.Elems {
		if e.Value == "1000.000" {
			t.Error("unmatched dynamic attribute must not shred elements")
		}
	}
}

func TestShredAutoRegister(t *testing.T) {
	s, reg := newFig3Shredder(t)
	doc := fig3Doc(t)
	doc.FindAll("enttypl")[0].Text = "fresh-model"
	res, err := s.Shred(doc, Options{AutoRegister: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skipped) != 0 {
		t.Fatalf("skipped = %+v", res.Skipped)
	}
	def := reg.LookupAttr("fresh-model", "ARPS", 0, "")
	if def == nil || !def.Dynamic {
		t.Fatal("auto-registration should create the definition")
	}
	// Elements and the sub-attribute were registered too.
	if reg.LookupElem("dx", "ARPS", def.ID, "") == nil {
		t.Error("dx should be auto-registered")
	}
	if reg.LookupAttr("grid-stretching", "ARPS", def.ID, "") == nil {
		t.Error("grid-stretching should be auto-registered")
	}
}

func TestShredValidationFailures(t *testing.T) {
	s, _ := newFig3Shredder(t)

	// Wrong root.
	if _, err := s.Shred(xmldoc.NewNode("wrong"), Options{}); err == nil {
		t.Error("wrong root should fail")
	}

	// Type violation: dx declared float, value not numeric.
	doc := fig3Doc(t)
	for _, a := range doc.FindAll("attr") {
		if a.ChildText("attrlabl") == "dx" {
			a.Child("attrv").Text = "not-a-number"
		}
	}
	_, err := s.Shred(doc, Options{})
	var verr *ValidationError
	if err == nil {
		t.Fatal("type violation should fail")
	}
	if !strings.Contains(err.Error(), "not-a-number") {
		t.Errorf("err = %v", err)
	}
	if ok := errorsAs(err, &verr); !ok || len(verr.Problems) == 0 {
		t.Errorf("expected ValidationError, got %T", err)
	}

	// Unknown structural tag fails strict, passes lenient.
	doc = fig3Doc(t)
	doc.Child("data").Append(xmldoc.NewLeaf("bogus", "x"))
	if _, err := s.Shred(doc, Options{}); err == nil {
		t.Error("unknown structural tag should fail in strict mode")
	}
	if _, err := s.Shred(doc, Options{Lenient: true}); err != nil {
		t.Errorf("lenient mode should accept: %v", err)
	}

	// Dynamic node mixing value and children.
	doc = fig3Doc(t)
	for _, a := range doc.FindAll("attr") {
		if a.ChildText("attrlabl") == "grid-stretching" {
			a.Append(xmldoc.NewLeaf("attrv", "7"))
		}
	}
	if _, err := s.Shred(doc, Options{}); err == nil {
		t.Error("mixed dynamic node should fail")
	}

	// Dynamic attribute without its identity element.
	doc = fig3Doc(t)
	det := doc.FindAll("detailed")[0]
	var kept []*xmldoc.Node
	for _, ch := range det.Children {
		if ch.Tag != "enttyp" {
			kept = append(kept, ch)
		}
	}
	det.Children = kept
	if _, err := s.Shred(doc, Options{}); err == nil {
		t.Error("dynamic attribute without identity should fail")
	}

	// Document with no metadata attributes at all.
	empty, _ := xmldoc.ParseString("<LEADresource><data><idinfo></idinfo></data></LEADresource>")
	if _, err := s.Shred(empty, Options{}); err == nil {
		t.Error("document without attributes should fail")
	}
}

// errorsAs is a tiny local wrapper to avoid importing errors just for As.
func errorsAs(err error, target **ValidationError) bool {
	v, ok := err.(*ValidationError)
	if ok {
		*target = v
	}
	return ok
}

func TestShredStructuralSubAttributes(t *testing.T) {
	s, reg := newFig3Shredder(t)
	doc, err := xmldoc.ParseString(`<LEADresource>
	  <resourceID>r1</resourceID>
	  <data>
	    <geospatial>
	      <spdom>
	        <bounding>
	          <westbc>-98.5</westbc>
	          <eastbc>-96.5</eastbc>
	        </bounding>
	        <vertdom>
	          <vertmin>0</vertmin>
	          <vertmax>20000</vertmax>
	        </vertdom>
	      </spdom>
	    </geospatial>
	  </data>
	</LEADresource>`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Shred(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spdom := reg.LookupAttr("spdom", "", 0, "")
	bounding := reg.LookupAttr("bounding", "", spdom.ID, "")
	vertdom := reg.LookupAttr("vertdom", "", spdom.ID, "")
	// Inverted list links bounding and vertdom to spdom.
	links := map[int64]int64{}
	for _, sa := range res.SubAttrs {
		links[sa.ChildAttrID] = sa.AncAttrID
		if sa.Depth != 1 {
			t.Errorf("depth = %d", sa.Depth)
		}
	}
	if links[bounding.ID] != spdom.ID || links[vertdom.ID] != spdom.ID {
		t.Errorf("links = %v", links)
	}
	// westbc owned by the bounding instance with numeric shadow.
	west := reg.LookupElem("westbc", "", bounding.ID, "")
	found := false
	for _, e := range res.Elems {
		if e.ElemID == west.ID {
			found = true
			if e.AttrID != bounding.ID || !e.HasNum || e.Num != -98.5 {
				t.Errorf("westbc rec = %+v", e)
			}
		}
	}
	if !found {
		t.Error("westbc not shredded")
	}
}

func TestShredDeepDynamicNesting(t *testing.T) {
	s, reg := newFig3Shredder(t)
	grid := reg.LookupAttr("grid", "ARPS", 0, "")
	gs := reg.LookupAttr("grid-stretching", "ARPS", grid.ID, "")
	lvl3, err := reg.RegisterAttr("level3", "ARPS", gs.ID, 19, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.RegisterElem("deep", "ARPS", lvl3.ID, DTInt, ""); err != nil {
		t.Fatal(err)
	}
	doc, err := xmldoc.ParseString(`<LEADresource><resourceID>r</resourceID><data><geospatial><eainfo>
	  <detailed>
	    <enttyp><enttypl>grid</enttypl><enttypds>ARPS</enttypds></enttyp>
	    <attr><attrlabl>grid-stretching</attrlabl><attrdefs>ARPS</attrdefs>
	      <attr><attrlabl>level3</attrlabl><attrdefs>ARPS</attrdefs>
	        <attr><attrlabl>deep</attrlabl><attrdefs>ARPS</attrdefs><attrv>7</attrv></attr>
	      </attr>
	    </attr>
	  </detailed>
	</eainfo></geospatial></data></LEADresource>`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Shred(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// level3 must link to both grid-stretching (depth 1) and grid
	// (depth 2) — the full inverted list, not just direct parents.
	var gotDepths []int
	for _, sa := range res.SubAttrs {
		if sa.ChildAttrID == lvl3.ID {
			gotDepths = append(gotDepths, sa.Depth)
			if sa.Depth == 2 && sa.AncAttrID != grid.ID {
				t.Errorf("depth-2 ancestor = %d, want grid %d", sa.AncAttrID, grid.ID)
			}
		}
	}
	if len(gotDepths) != 2 {
		t.Fatalf("level3 links = %v, want depths {1,2}", gotDepths)
	}
}

func TestShredSeqNumbering(t *testing.T) {
	s, reg := newFig3Shredder(t)
	res, err := s.Shred(fig3Doc(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	theme := reg.LookupAttr("theme", "", 0, "")
	var seqs []int
	for _, a := range res.Attrs {
		if a.AttrID == theme.ID {
			seqs = append(seqs, a.Seq)
		}
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Errorf("theme same-sibling seqs = %v", seqs)
	}
}

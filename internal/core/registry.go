package core

import (
	"fmt"
	"maps"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// Registry holds the catalog's metadata attribute and element
// definitions. Structural definitions are derived from the annotated
// schema at construction; dynamic definitions are registered at admin
// level (visible to everyone) or user level (private, §3). The registry
// is safe for concurrent use.
//
// Like the relational store, the registry is multi-version: one
// immutable regVersion is published behind an atomic pointer, writers
// (serialized by a mutex) clone the maps, apply the registration, and
// swap the pointer, and readers resolve against whatever version they
// load — lock-free, with Snapshot pinning one version across several
// resolutions. The definition set is small (tens to a few hundred
// entries), so a full map copy per registration costs far less than the
// reader-side locking it removes.
type Registry struct {
	wmu     sync.Mutex // serializes writers
	current atomic.Pointer[regVersion]
}

// regVersion is one immutable published state of the registry. gen
// counts definition mutations (dynamic registration, restore):
// resolution caches stamp entries with it, and because the definition
// set only grows during normal operation, a cached positive resolution
// can never become wrong within one generation.
type regVersion struct {
	gen        uint64
	attrs      map[int64]*AttrDef
	elems      map[int64]*ElemDef
	attrByKey  map[attrKey]int64
	elemByKey  map[elemKey]int64
	nextAttrID int64
	nextElemID int64
}

// clone returns a private copy of v with fresh maps, for a writer to
// mutate before publishing.
func (v *regVersion) clone() *regVersion {
	c := *v
	c.attrs = maps.Clone(v.attrs)
	c.elems = maps.Clone(v.elems)
	c.attrByKey = maps.Clone(v.attrByKey)
	c.elemByKey = maps.Clone(v.elemByKey)
	return &c
}

// attrKey identifies an attribute definition: name and source, the parent
// definition (0 for top level), and the owner scope.
type attrKey struct {
	name, source string
	parentID     int64
	owner        string
}

// elemKey identifies an element definition within its attribute.
type elemKey struct {
	name, source string
	attrID       int64
	owner        string
}

// NewRegistry builds a registry seeded with the structural definitions of
// the schema: one attribute definition per annotated attribute node, one
// definition per interior sub-attribute node inside it, and one element
// definition per leaf (all admin-owned, type string).
func NewRegistry(schema *xmlschema.Schema) (*Registry, error) {
	v := &regVersion{
		attrs:     make(map[int64]*AttrDef),
		elems:     make(map[int64]*ElemDef),
		attrByKey: make(map[attrKey]int64),
		elemByKey: make(map[elemKey]int64),
	}
	for _, node := range schema.Attributes {
		if node.IsDynamic {
			// Dynamic containers own no structural definitions; dynamic
			// attribute definitions are registered with the container's
			// schema order as their location.
			continue
		}
		def, err := v.addAttr(node.Tag, "", 0, node.Order, node.Queryable, false, "")
		if err != nil {
			return nil, err
		}
		if err := v.seedStructural(node, def); err != nil {
			return nil, err
		}
	}
	r := &Registry{}
	r.current.Store(v)
	return r, nil
}

// seedStructural registers the sub-attribute and element definitions
// inside one structural attribute subtree.
func (v *regVersion) seedStructural(node *xmlschema.Node, owner *AttrDef) error {
	if len(node.Children) == 0 {
		// The attribute is its own element (e.g. resourceID).
		_, err := v.addElem(node.Tag, "", owner.ID, DTString, "")
		return err
	}
	for _, c := range node.Children {
		if len(c.Children) == 0 {
			if _, err := v.addElem(c.Tag, "", owner.ID, DTString, ""); err != nil {
				return err
			}
			continue
		}
		sub, err := v.addAttr(c.Tag, "", owner.ID, owner.SchemaOrder, owner.Queryable, false, "")
		if err != nil {
			return err
		}
		if err := v.seedStructural(c, sub); err != nil {
			return err
		}
	}
	return nil
}

// addAttr and addElem mutate a draft version private to the writer; each
// successful registration bumps gen, preserving the pre-MVCC per-
// definition generation semantics.

func (v *regVersion) addAttr(name, source string, parentID int64, schemaOrder int, queryable, dynamic bool, owner string) (*AttrDef, error) {
	key := attrKey{name, source, parentID, owner}
	if _, dup := v.attrByKey[key]; dup {
		return nil, fmt.Errorf("core: attribute %q (source %q) already defined", name, source)
	}
	v.nextAttrID++
	def := &AttrDef{
		ID: v.nextAttrID, Name: name, Source: source, ParentID: parentID,
		SchemaOrder: schemaOrder, Queryable: queryable, Dynamic: dynamic, Owner: owner,
	}
	v.attrs[def.ID] = def
	v.attrByKey[key] = def.ID
	v.gen++
	return def, nil
}

func (v *regVersion) addElem(name, source string, attrID int64, dt DataType, owner string) (*ElemDef, error) {
	key := elemKey{name, source, attrID, owner}
	if _, dup := v.elemByKey[key]; dup {
		return nil, fmt.Errorf("core: element %q (source %q) already defined in attribute %d", name, source, attrID)
	}
	v.nextElemID++
	def := &ElemDef{ID: v.nextElemID, AttrID: attrID, Name: name, Source: source, Type: dt, Owner: owner}
	v.elems[def.ID] = def
	v.elemByKey[key] = def.ID
	v.gen++
	return def, nil
}

// RegisterAttr registers a dynamic attribute definition. parentID is 0
// for a top-level dynamic attribute (one resolved from a dynamic
// container's entity identity), or the ID of the parent definition for a
// sub-attribute. schemaOrder must be the global order of the dynamic
// container whose documents carry it. owner is empty for admin-level
// definitions.
func (r *Registry) RegisterAttr(name, source string, parentID int64, schemaOrder int, owner string) (*AttrDef, error) {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	v := r.current.Load()
	if parentID != 0 {
		if _, ok := v.attrs[parentID]; !ok {
			return nil, fmt.Errorf("core: parent attribute %d not defined", parentID)
		}
	}
	draft := v.clone()
	def, err := draft.addAttr(name, source, parentID, schemaOrder, true, true, owner)
	if err != nil {
		return nil, err
	}
	r.current.Store(draft)
	return def, nil
}

// RegisterElem registers a dynamic element definition under an attribute
// definition, with a data type enforced on insert.
func (r *Registry) RegisterElem(name, source string, attrID int64, dt DataType, owner string) (*ElemDef, error) {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	v := r.current.Load()
	if _, ok := v.attrs[attrID]; !ok {
		return nil, fmt.Errorf("core: attribute %d not defined", attrID)
	}
	draft := v.clone()
	def, err := draft.addElem(name, source, attrID, dt, owner)
	if err != nil {
		return nil, err
	}
	r.current.Store(draft)
	return def, nil
}

// EnsureAttr atomically looks up or registers an admin-level dynamic
// attribute definition; used by auto-registering shreds, which may race
// on the same identity.
func (r *Registry) EnsureAttr(name, source string, parentID int64, schemaOrder int, user string) (*AttrDef, error) {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	v := r.current.Load()
	if user != "" {
		if id, ok := v.attrByKey[attrKey{name, source, parentID, user}]; ok {
			return v.attrs[id], nil
		}
	}
	if id, ok := v.attrByKey[attrKey{name, source, parentID, ""}]; ok {
		return v.attrs[id], nil
	}
	draft := v.clone()
	def, err := draft.addAttr(name, source, parentID, schemaOrder, true, true, "")
	if err != nil {
		return nil, err
	}
	r.current.Store(draft)
	return def, nil
}

// EnsureElem atomically looks up or registers an admin-level element
// definition.
func (r *Registry) EnsureElem(name, source string, attrID int64, dt DataType, user string) (*ElemDef, error) {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	v := r.current.Load()
	if user != "" {
		if id, ok := v.elemByKey[elemKey{name, source, attrID, user}]; ok {
			return v.elems[id], nil
		}
	}
	if id, ok := v.elemByKey[elemKey{name, source, attrID, ""}]; ok {
		return v.elems[id], nil
	}
	draft := v.clone()
	def, err := draft.addElem(name, source, attrID, dt, "")
	if err != nil {
		return nil, err
	}
	r.current.Store(draft)
	return def, nil
}

// lookupAttr resolves within one version, preferring a user-private
// definition over an admin one.
func (v *regVersion) lookupAttr(name, source string, parentID int64, user string) *AttrDef {
	if user != "" {
		if id, ok := v.attrByKey[attrKey{name, source, parentID, user}]; ok {
			return v.attrs[id]
		}
	}
	if id, ok := v.attrByKey[attrKey{name, source, parentID, ""}]; ok {
		return v.attrs[id]
	}
	return nil
}

// lookupElem resolves an element within one version, preferring a
// user-private definition.
func (v *regVersion) lookupElem(name, source string, attrID int64, user string) *ElemDef {
	if user != "" {
		if id, ok := v.elemByKey[elemKey{name, source, attrID, user}]; ok {
			return v.elems[id]
		}
	}
	if id, ok := v.elemByKey[elemKey{name, source, attrID, ""}]; ok {
		return v.elems[id]
	}
	return nil
}

func (v *regVersion) sortedAttrs() []*AttrDef {
	out := make([]*AttrDef, 0, len(v.attrs))
	for _, d := range v.attrs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (v *regVersion) sortedElems() []*ElemDef {
	out := make([]*ElemDef, 0, len(v.elems))
	for _, d := range v.elems {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LookupAttr resolves an attribute definition by identity, preferring a
// user-private definition over an admin one.
func (r *Registry) LookupAttr(name, source string, parentID int64, user string) *AttrDef {
	return r.current.Load().lookupAttr(name, source, parentID, user)
}

// LookupElem resolves an element definition within an attribute,
// preferring a user-private definition.
func (r *Registry) LookupElem(name, source string, attrID int64, user string) *ElemDef {
	return r.current.Load().lookupElem(name, source, attrID, user)
}

// Generation returns the registry's definition-mutation counter.
func (r *Registry) Generation() uint64 { return r.current.Load().gen }

// Snapshot pins the current version for lock-free resolution. All
// lookups through the snapshot observe exactly one definition set, even
// while writers publish later versions.
func (r *Registry) Snapshot() *RegSnap {
	return &RegSnap{v: r.current.Load()}
}

// RegSnap is a pinned, immutable view of the registry as of one
// version; see Registry.Snapshot.
type RegSnap struct {
	v *regVersion
}

// Generation returns the pinned version's definition-mutation counter.
func (s *RegSnap) Generation() uint64 { return s.v.gen }

// LookupAttr resolves an attribute definition in the pinned version,
// preferring a user-private definition over an admin one.
func (s *RegSnap) LookupAttr(name, source string, parentID int64, user string) *AttrDef {
	return s.v.lookupAttr(name, source, parentID, user)
}

// LookupElem resolves an element definition in the pinned version,
// preferring a user-private definition.
func (s *RegSnap) LookupElem(name, source string, attrID int64, user string) *ElemDef {
	return s.v.lookupElem(name, source, attrID, user)
}

// AttrByID returns the pinned version's attribute definition with the
// given ID, or nil.
func (s *RegSnap) AttrByID(id int64) *AttrDef { return s.v.attrs[id] }

// ElemByID returns the pinned version's element definition with the
// given ID, or nil.
func (s *RegSnap) ElemByID(id int64) *ElemDef { return s.v.elems[id] }

// Attrs returns the pinned version's attribute definitions sorted by ID.
func (s *RegSnap) Attrs() []*AttrDef { return s.v.sortedAttrs() }

// Elems returns the pinned version's element definitions sorted by ID.
func (s *RegSnap) Elems() []*ElemDef { return s.v.sortedElems() }

// Restore replaces the registry's contents with the given definitions
// (used when loading a catalog snapshot). Definitions are copied; the ID
// counters resume above the highest restored IDs.
func (r *Registry) Restore(attrs []AttrDef, elems []ElemDef) error {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	old := r.current.Load()
	v := &regVersion{
		// Restore may shrink or rewrite the definition set, so the
		// grow-only assumption behind resolution caching does not hold
		// across it; the bump forces every cached resolution stale.
		gen:       old.gen + 1,
		attrs:     make(map[int64]*AttrDef, len(attrs)),
		elems:     make(map[int64]*ElemDef, len(elems)),
		attrByKey: make(map[attrKey]int64, len(attrs)),
		elemByKey: make(map[elemKey]int64, len(elems)),
	}
	for i := range attrs {
		d := attrs[i]
		key := attrKey{d.Name, d.Source, d.ParentID, d.Owner}
		if _, dup := v.attrByKey[key]; dup {
			return fmt.Errorf("core: restore: duplicate attribute %q (source %q)", d.Name, d.Source)
		}
		if _, dup := v.attrs[d.ID]; dup || d.ID == 0 {
			return fmt.Errorf("core: restore: bad attribute id %d", d.ID)
		}
		v.attrs[d.ID] = &d
		v.attrByKey[key] = d.ID
		if d.ID > v.nextAttrID {
			v.nextAttrID = d.ID
		}
	}
	for i := range elems {
		d := elems[i]
		if _, ok := v.attrs[d.AttrID]; !ok {
			return fmt.Errorf("core: restore: element %q references missing attribute %d", d.Name, d.AttrID)
		}
		key := elemKey{d.Name, d.Source, d.AttrID, d.Owner}
		if _, dup := v.elemByKey[key]; dup {
			return fmt.Errorf("core: restore: duplicate element %q (source %q)", d.Name, d.Source)
		}
		if _, dup := v.elems[d.ID]; dup || d.ID == 0 {
			return fmt.Errorf("core: restore: bad element id %d", d.ID)
		}
		v.elems[d.ID] = &d
		v.elemByKey[key] = d.ID
		if d.ID > v.nextElemID {
			v.nextElemID = d.ID
		}
	}
	r.current.Store(v)
	return nil
}

// AttrByID returns the attribute definition with the given ID, or nil.
func (r *Registry) AttrByID(id int64) *AttrDef {
	return r.current.Load().attrs[id]
}

// ElemByID returns the element definition with the given ID, or nil.
func (r *Registry) ElemByID(id int64) *ElemDef {
	return r.current.Load().elems[id]
}

// Attrs returns all attribute definitions sorted by ID.
func (r *Registry) Attrs() []*AttrDef {
	return r.current.Load().sortedAttrs()
}

// Elems returns all element definitions sorted by ID.
func (r *Registry) Elems() []*ElemDef {
	return r.current.Load().sortedElems()
}

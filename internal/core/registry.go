package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// Registry holds the catalog's metadata attribute and element
// definitions. Structural definitions are derived from the annotated
// schema at construction; dynamic definitions are registered at admin
// level (visible to everyone) or user level (private, §3). The registry
// is safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	attrs      map[int64]*AttrDef
	elems      map[int64]*ElemDef
	attrByKey  map[attrKey]int64
	elemByKey  map[elemKey]int64
	nextAttrID int64
	nextElemID int64

	// gen counts definition mutations (dynamic registration, restore).
	// Resolution caches stamp entries with it; because the definition set
	// only grows during normal operation, a cached positive resolution can
	// never become wrong within one generation.
	gen atomic.Uint64
}

// attrKey identifies an attribute definition: name and source, the parent
// definition (0 for top level), and the owner scope.
type attrKey struct {
	name, source string
	parentID     int64
	owner        string
}

// elemKey identifies an element definition within its attribute.
type elemKey struct {
	name, source string
	attrID       int64
	owner        string
}

// NewRegistry builds a registry seeded with the structural definitions of
// the schema: one attribute definition per annotated attribute node, one
// definition per interior sub-attribute node inside it, and one element
// definition per leaf (all admin-owned, type string).
func NewRegistry(schema *xmlschema.Schema) (*Registry, error) {
	r := &Registry{
		attrs:     make(map[int64]*AttrDef),
		elems:     make(map[int64]*ElemDef),
		attrByKey: make(map[attrKey]int64),
		elemByKey: make(map[elemKey]int64),
	}
	for _, node := range schema.Attributes {
		if node.IsDynamic {
			// Dynamic containers own no structural definitions; dynamic
			// attribute definitions are registered with the container's
			// schema order as their location.
			continue
		}
		def, err := r.addAttr(node.Tag, "", 0, node.Order, node.Queryable, false, "")
		if err != nil {
			return nil, err
		}
		if err := r.seedStructural(node, def); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// seedStructural registers the sub-attribute and element definitions
// inside one structural attribute subtree.
func (r *Registry) seedStructural(node *xmlschema.Node, owner *AttrDef) error {
	if len(node.Children) == 0 {
		// The attribute is its own element (e.g. resourceID).
		_, err := r.addElem(node.Tag, "", owner.ID, DTString, "")
		return err
	}
	for _, c := range node.Children {
		if len(c.Children) == 0 {
			if _, err := r.addElem(c.Tag, "", owner.ID, DTString, ""); err != nil {
				return err
			}
			continue
		}
		sub, err := r.addAttr(c.Tag, "", owner.ID, owner.SchemaOrder, owner.Queryable, false, "")
		if err != nil {
			return err
		}
		if err := r.seedStructural(c, sub); err != nil {
			return err
		}
	}
	return nil
}

func (r *Registry) addAttr(name, source string, parentID int64, schemaOrder int, queryable, dynamic bool, owner string) (*AttrDef, error) {
	key := attrKey{name, source, parentID, owner}
	if _, dup := r.attrByKey[key]; dup {
		return nil, fmt.Errorf("core: attribute %q (source %q) already defined", name, source)
	}
	r.nextAttrID++
	def := &AttrDef{
		ID: r.nextAttrID, Name: name, Source: source, ParentID: parentID,
		SchemaOrder: schemaOrder, Queryable: queryable, Dynamic: dynamic, Owner: owner,
	}
	r.attrs[def.ID] = def
	r.attrByKey[key] = def.ID
	r.gen.Add(1)
	return def, nil
}

func (r *Registry) addElem(name, source string, attrID int64, dt DataType, owner string) (*ElemDef, error) {
	key := elemKey{name, source, attrID, owner}
	if _, dup := r.elemByKey[key]; dup {
		return nil, fmt.Errorf("core: element %q (source %q) already defined in attribute %d", name, source, attrID)
	}
	r.nextElemID++
	def := &ElemDef{ID: r.nextElemID, AttrID: attrID, Name: name, Source: source, Type: dt, Owner: owner}
	r.elems[def.ID] = def
	r.elemByKey[key] = def.ID
	r.gen.Add(1)
	return def, nil
}

// RegisterAttr registers a dynamic attribute definition. parentID is 0
// for a top-level dynamic attribute (one resolved from a dynamic
// container's entity identity), or the ID of the parent definition for a
// sub-attribute. schemaOrder must be the global order of the dynamic
// container whose documents carry it. owner is empty for admin-level
// definitions.
func (r *Registry) RegisterAttr(name, source string, parentID int64, schemaOrder int, owner string) (*AttrDef, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if parentID != 0 {
		if _, ok := r.attrs[parentID]; !ok {
			return nil, fmt.Errorf("core: parent attribute %d not defined", parentID)
		}
	}
	return r.addAttr(name, source, parentID, schemaOrder, true, true, owner)
}

// RegisterElem registers a dynamic element definition under an attribute
// definition, with a data type enforced on insert.
func (r *Registry) RegisterElem(name, source string, attrID int64, dt DataType, owner string) (*ElemDef, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.attrs[attrID]; !ok {
		return nil, fmt.Errorf("core: attribute %d not defined", attrID)
	}
	return r.addElem(name, source, attrID, dt, owner)
}

// EnsureAttr atomically looks up or registers an admin-level dynamic
// attribute definition; used by auto-registering shreds, which may race
// on the same identity.
func (r *Registry) EnsureAttr(name, source string, parentID int64, schemaOrder int, user string) (*AttrDef, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if user != "" {
		if id, ok := r.attrByKey[attrKey{name, source, parentID, user}]; ok {
			return r.attrs[id], nil
		}
	}
	if id, ok := r.attrByKey[attrKey{name, source, parentID, ""}]; ok {
		return r.attrs[id], nil
	}
	return r.addAttr(name, source, parentID, schemaOrder, true, true, "")
}

// EnsureElem atomically looks up or registers an admin-level element
// definition.
func (r *Registry) EnsureElem(name, source string, attrID int64, dt DataType, user string) (*ElemDef, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if user != "" {
		if id, ok := r.elemByKey[elemKey{name, source, attrID, user}]; ok {
			return r.elems[id], nil
		}
	}
	if id, ok := r.elemByKey[elemKey{name, source, attrID, ""}]; ok {
		return r.elems[id], nil
	}
	return r.addElem(name, source, attrID, dt, "")
}

// LookupAttr resolves an attribute definition by identity, preferring a
// user-private definition over an admin one.
func (r *Registry) LookupAttr(name, source string, parentID int64, user string) *AttrDef {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if user != "" {
		if id, ok := r.attrByKey[attrKey{name, source, parentID, user}]; ok {
			return r.attrs[id]
		}
	}
	if id, ok := r.attrByKey[attrKey{name, source, parentID, ""}]; ok {
		return r.attrs[id]
	}
	return nil
}

// LookupElem resolves an element definition within an attribute,
// preferring a user-private definition.
func (r *Registry) LookupElem(name, source string, attrID int64, user string) *ElemDef {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if user != "" {
		if id, ok := r.elemByKey[elemKey{name, source, attrID, user}]; ok {
			return r.elems[id]
		}
	}
	if id, ok := r.elemByKey[elemKey{name, source, attrID, ""}]; ok {
		return r.elems[id]
	}
	return nil
}

// Generation returns the registry's definition-mutation counter.
func (r *Registry) Generation() uint64 { return r.gen.Load() }

// Restore replaces the registry's contents with the given definitions
// (used when loading a catalog snapshot). Definitions are copied; the ID
// counters resume above the highest restored IDs.
func (r *Registry) Restore(attrs []AttrDef, elems []ElemDef) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.attrs = make(map[int64]*AttrDef, len(attrs))
	r.elems = make(map[int64]*ElemDef, len(elems))
	r.attrByKey = make(map[attrKey]int64, len(attrs))
	r.elemByKey = make(map[elemKey]int64, len(elems))
	r.nextAttrID, r.nextElemID = 0, 0
	// Restore may shrink or rewrite the definition set, so the grow-only
	// assumption behind resolution caching does not hold across it; the
	// bump forces every cached resolution stale.
	r.gen.Add(1)
	for i := range attrs {
		d := attrs[i]
		key := attrKey{d.Name, d.Source, d.ParentID, d.Owner}
		if _, dup := r.attrByKey[key]; dup {
			return fmt.Errorf("core: restore: duplicate attribute %q (source %q)", d.Name, d.Source)
		}
		if _, dup := r.attrs[d.ID]; dup || d.ID == 0 {
			return fmt.Errorf("core: restore: bad attribute id %d", d.ID)
		}
		r.attrs[d.ID] = &d
		r.attrByKey[key] = d.ID
		if d.ID > r.nextAttrID {
			r.nextAttrID = d.ID
		}
	}
	for i := range elems {
		d := elems[i]
		if _, ok := r.attrs[d.AttrID]; !ok {
			return fmt.Errorf("core: restore: element %q references missing attribute %d", d.Name, d.AttrID)
		}
		key := elemKey{d.Name, d.Source, d.AttrID, d.Owner}
		if _, dup := r.elemByKey[key]; dup {
			return fmt.Errorf("core: restore: duplicate element %q (source %q)", d.Name, d.Source)
		}
		if _, dup := r.elems[d.ID]; dup || d.ID == 0 {
			return fmt.Errorf("core: restore: bad element id %d", d.ID)
		}
		r.elems[d.ID] = &d
		r.elemByKey[key] = d.ID
		if d.ID > r.nextElemID {
			r.nextElemID = d.ID
		}
	}
	return nil
}

// AttrByID returns the attribute definition with the given ID, or nil.
func (r *Registry) AttrByID(id int64) *AttrDef {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.attrs[id]
}

// ElemByID returns the element definition with the given ID, or nil.
func (r *Registry) ElemByID(id int64) *ElemDef {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.elems[id]
}

// Attrs returns all attribute definitions sorted by ID.
func (r *Registry) Attrs() []*AttrDef {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*AttrDef, 0, len(r.attrs))
	for _, d := range r.attrs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Elems returns all element definitions sorted by ID.
func (r *Registry) Elems() []*ElemDef {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*ElemDef, 0, len(r.elems))
	for _, d := range r.elems {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

package core

import (
	"testing"
)

func TestDataTypeStringRoundTrip(t *testing.T) {
	for _, d := range []DataType{DTString, DTInt, DTFloat, DTBool, DTDate} {
		got, err := ParseDataType(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDataType(%s) = %v, %v", d, got, err)
		}
	}
	if _, err := ParseDataType("complex"); err == nil {
		t.Error("unknown type should fail")
	}
	// Aliases.
	for alias, want := range map[string]DataType{
		"text": DTString, "integer": DTInt, "double": DTFloat,
		"number": DTFloat, "boolean": DTBool, "": DTString,
	} {
		if got, err := ParseDataType(alias); err != nil || got != want {
			t.Errorf("ParseDataType(%q) = %v, %v", alias, got, err)
		}
	}
}

func TestValidateValue(t *testing.T) {
	cases := []struct {
		dt      DataType
		text    string
		wantNum float64
		hasNum  bool
		wantErr bool
	}{
		{DTString, "anything", 0, false, false},
		{DTString, "100.000", 100, true, false}, // numeric shadow for strings
		{DTInt, "42", 42, true, false},
		{DTInt, "4.2", 0, false, true},
		{DTInt, "abc", 0, false, true},
		{DTFloat, "100.000", 100, true, false},
		{DTFloat, "1e3", 1000, true, false},
		{DTFloat, "xyz", 0, false, true},
		{DTBool, "true", 1, true, false},
		{DTBool, "0", 0, true, false},
		{DTBool, "maybe", 0, false, true},
		{DTDate, "2006-05-12", 1147392000, true, false},
		{DTDate, "not-a-date", 0, false, true},
	}
	for _, c := range cases {
		num, hasNum, err := c.dt.ValidateValue(c.text)
		if (err != nil) != c.wantErr {
			t.Errorf("%s.Validate(%q) err = %v", c.dt, c.text, err)
			continue
		}
		if err == nil && (hasNum != c.hasNum || (hasNum && num != c.wantNum)) {
			t.Errorf("%s.Validate(%q) = %g, %v; want %g, %v", c.dt, c.text, num, hasNum, c.wantNum, c.hasNum)
		}
	}
}

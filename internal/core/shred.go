package core

import (
	"fmt"
	"strings"

	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// ClobRec is one per-attribute CLOB (§3): the serialized attribute
// subtree, its position in the schema's global ordering, and its
// same-sibling sequence among CLOBs at that position.
type ClobRec struct {
	NodeOrder int
	ClobSeq   int
	AttrID    int64 // 0 when the instance was stored but not shredded
	AttrSeq   int
	XML       string
}

// AttrRec is one shredded attribute instance: (AttrID, Seq) is its key
// within the document.
type AttrRec struct {
	AttrID int64
	Seq    int
}

// ElemRec is one shredded element value, keyed by its owning attribute
// instance, with the element's local order within that instance and the
// dual string/numeric representation.
type ElemRec struct {
	AttrID  int64
	AttrSeq int
	ElemID  int64
	ElemSeq int
	Value   string
	Num     float64
	HasNum  bool
}

// SubAttrRec is one entry of the sub-attribute inverted list (§3): a
// sub-attribute instance related to one of its ancestor attribute
// instances, at the given depth distance (1 = direct parent).
type SubAttrRec struct {
	ChildAttrID int64
	ChildSeq    int
	AncAttrID   int64
	AncSeq      int
	Depth       int
}

// SkipRec records a dynamic attribute or element that had no definition:
// it is retained in the CLOB but not shredded for querying (§3).
type SkipRec struct {
	Name   string
	Source string
	Reason string
}

// ShredResult is the full shredding of one document.
type ShredResult struct {
	Clobs    []ClobRec
	Attrs    []AttrRec
	Elems    []ElemRec
	SubAttrs []SubAttrRec
	Skipped  []SkipRec
}

// Options configures shredding.
type Options struct {
	// Owner scopes dynamic definition resolution (user-private
	// definitions are preferred over admin ones).
	Owner string
	// AutoRegister creates admin-level definitions for unknown dynamic
	// attributes and elements instead of skipping them.
	AutoRegister bool
	// Lenient accepts unknown structural tags (they are ignored) instead
	// of failing the document.
	Lenient bool
}

// ValidationError aggregates insert-time validation failures.
type ValidationError struct {
	Problems []string
}

// Error implements error.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("core: document failed validation: %s", strings.Join(e.Problems, "; "))
}

// Shredder shreds documents against one schema and registry.
type Shredder struct {
	Schema *xmlschema.Schema
	Reg    *Registry
}

// NewShredder pairs a finalized schema with its registry.
func NewShredder(schema *xmlschema.Schema, reg *Registry) *Shredder {
	return &Shredder{Schema: schema, Reg: reg}
}

// shredState carries per-document counters.
type shredState struct {
	res      ShredResult
	clobSeq  map[int]int   // node order -> next sequence
	attrSeq  map[int64]int // attr def -> next sequence
	problems []string
	opts     Options
}

func (st *shredState) nextClobSeq(order int) int {
	st.clobSeq[order]++
	return st.clobSeq[order]
}

func (st *shredState) nextAttrSeq(id int64) int {
	st.attrSeq[id]++
	return st.attrSeq[id]
}

func (st *shredState) problemf(format string, args ...any) {
	st.problems = append(st.problems, fmt.Sprintf(format, args...))
}

// instRef names an attribute instance for inverted-list linking.
type instRef struct {
	attrID int64
	seq    int
}

// ShredAttribute shreds a single metadata attribute instance to be
// appended to an existing object (§5: "as metadata attributes were
// inserted later"). decl must be the attribute's schema declaration.
// clobSeqStart and attrSeqStart carry the object's current same-sibling
// counters so sequences continue rather than restart.
func (s *Shredder) ShredAttribute(node *xmldoc.Node, decl *xmlschema.Node, opts Options, clobSeqStart map[int]int, attrSeqStart map[int64]int) (*ShredResult, error) {
	if !decl.IsAttribute {
		return nil, fmt.Errorf("core: <%s> is not a metadata attribute", decl.Tag)
	}
	if node.Tag != decl.Tag {
		return nil, fmt.Errorf("core: fragment root <%s> does not match attribute <%s>", node.Tag, decl.Tag)
	}
	st := &shredState{
		clobSeq: make(map[int]int, len(clobSeqStart)),
		attrSeq: make(map[int64]int, len(attrSeqStart)),
		opts:    opts,
	}
	for k, v := range clobSeqStart {
		st.clobSeq[k] = v
	}
	for k, v := range attrSeqStart {
		st.attrSeq[k] = v
	}
	s.shredAttribute(node, decl, st)
	if len(st.problems) > 0 {
		return nil, &ValidationError{Problems: st.problems}
	}
	return &st.res, nil
}

// Shred validates the document against the schema partitioning and
// produces the hybrid representation: one CLOB per metadata attribute
// instance plus shredded rows for the queryable attributes.
func (s *Shredder) Shred(doc *xmldoc.Node, opts Options) (*ShredResult, error) {
	if doc == nil {
		return nil, fmt.Errorf("core: nil document")
	}
	if doc.Tag != s.Schema.Root.Tag {
		return nil, fmt.Errorf("core: document root <%s> does not match schema root <%s>", doc.Tag, s.Schema.Root.Tag)
	}
	st := &shredState{
		clobSeq: make(map[int]int),
		attrSeq: make(map[int64]int),
		opts:    opts,
	}
	if err := s.walkAbove(doc, s.Schema.Root, st); err != nil {
		return nil, err
	}
	if len(st.problems) > 0 {
		return nil, &ValidationError{Problems: st.problems}
	}
	if len(st.res.Clobs) == 0 {
		return nil, fmt.Errorf("core: document contains no metadata attributes")
	}
	return &st.res, nil
}

// walkAbove descends the region of the document above metadata
// attributes, aligned with the schema graph.
func (s *Shredder) walkAbove(docNode *xmldoc.Node, schemaNode *xmlschema.Node, st *shredState) error {
	for _, child := range docNode.Children {
		var decl *xmlschema.Node
		for _, sc := range schemaNode.Children {
			if sc.Tag == child.Tag {
				decl = sc
				break
			}
		}
		if decl == nil {
			if st.opts.Lenient {
				continue
			}
			return fmt.Errorf("core: element <%s> under <%s> is not declared in schema %s", child.Tag, docNode.Tag, s.Schema.Name)
		}
		if decl.IsAttribute {
			s.shredAttribute(child, decl, st)
			continue
		}
		if err := s.walkAbove(child, decl, st); err != nil {
			return err
		}
	}
	// Leaf-attribute case: a document leaf matching an attribute node is
	// handled by the loop above; text directly under a non-attribute
	// interior node would be mixed content, which xmldoc already rejects.
	return nil
}

// shredAttribute emits the CLOB for one metadata attribute instance and,
// when the attribute is queryable, its shredded rows.
func (s *Shredder) shredAttribute(docNode *xmldoc.Node, decl *xmlschema.Node, st *shredState) {
	clob := ClobRec{
		NodeOrder: decl.Order,
		ClobSeq:   st.nextClobSeq(decl.Order),
		XML:       docNode.String(),
	}
	switch {
	case decl.IsDynamic:
		if ref, ok := s.shredDynamic(docNode, decl, st); ok {
			clob.AttrID, clob.AttrSeq = ref.attrID, ref.seq
		}
	case decl.Queryable:
		ref := s.shredStructural(docNode, decl, st)
		clob.AttrID, clob.AttrSeq = ref.attrID, ref.seq
	}
	st.res.Clobs = append(st.res.Clobs, clob)
}

// shredStructural shreds a structural attribute instance: tags resolve
// definitions directly (§3).
func (s *Shredder) shredStructural(docNode *xmldoc.Node, decl *xmlschema.Node, st *shredState) instRef {
	def := s.Reg.LookupAttr(decl.Tag, "", 0, st.opts.Owner)
	if def == nil {
		// Structural definitions are seeded from the schema, so this is a
		// programming error rather than a data error.
		panic(fmt.Sprintf("core: structural attribute %q missing from registry", decl.Tag))
	}
	self := instRef{attrID: def.ID, seq: st.nextAttrSeq(def.ID)}
	st.res.Attrs = append(st.res.Attrs, AttrRec{AttrID: self.attrID, Seq: self.seq})
	if len(decl.Children) == 0 {
		// The attribute is its own element.
		s.emitElem(def.ID, self, decl.Tag, "", docNode.Text, 1, st)
		return self
	}
	elemSeq := 0
	s.walkStructuralBody(docNode, decl, def, []instRef{self}, &elemSeq, st)
	return self
}

// walkStructuralBody shreds the interior of a structural attribute:
// interior schema nodes are sub-attributes, leaves are elements.
func (s *Shredder) walkStructuralBody(docNode *xmldoc.Node, decl *xmlschema.Node, ownerDef *AttrDef, ancestors []instRef, elemSeq *int, st *shredState) {
	for _, child := range docNode.Children {
		var cdecl *xmlschema.Node
		for _, sc := range decl.Children {
			if sc.Tag == child.Tag {
				cdecl = sc
				break
			}
		}
		if cdecl == nil {
			if !st.opts.Lenient {
				st.problemf("element <%s> under <%s> is not declared in the schema", child.Tag, docNode.Tag)
			}
			continue
		}
		if len(cdecl.Children) == 0 {
			*elemSeq++
			s.emitElem(ownerDef.ID, ancestors[len(ancestors)-1], child.Tag, "", child.Text, *elemSeq, st)
			continue
		}
		subDef := s.Reg.LookupAttr(cdecl.Tag, "", ownerDef.ID, st.opts.Owner)
		if subDef == nil {
			st.problemf("sub-attribute <%s> of %s missing from registry", cdecl.Tag, ownerDef.Name)
			continue
		}
		self := instRef{attrID: subDef.ID, seq: st.nextAttrSeq(subDef.ID)}
		st.res.Attrs = append(st.res.Attrs, AttrRec{AttrID: self.attrID, Seq: self.seq})
		for i, anc := range ancestors {
			st.res.SubAttrs = append(st.res.SubAttrs, SubAttrRec{
				ChildAttrID: self.attrID, ChildSeq: self.seq,
				AncAttrID: anc.attrID, AncSeq: anc.seq,
				Depth: len(ancestors) - i,
			})
		}
		subSeq := 0
		s.walkStructuralBody(child, cdecl, subDef, append(ancestors, self), &subSeq, st)
	}
}

// emitElem resolves an element definition under ownerID, validates the
// value, and records the element row on the owning instance.
func (s *Shredder) emitElem(ownerID int64, owner instRef, name, source, value string, elemSeq int, st *shredState) {
	edef := s.Reg.LookupElem(name, source, ownerID, st.opts.Owner)
	if edef == nil {
		if st.opts.AutoRegister {
			var err error
			edef, err = s.Reg.EnsureElem(name, source, ownerID, DTString, st.opts.Owner)
			if err != nil {
				st.problemf("auto-register element %s/%s: %v", name, source, err)
				return
			}
		} else {
			st.res.Skipped = append(st.res.Skipped, SkipRec{Name: name, Source: source, Reason: "no element definition"})
			return
		}
	}
	num, hasNum, err := edef.Type.ValidateValue(value)
	if err != nil {
		st.problemf("element %s (source %q): %v", name, source, err)
		return
	}
	st.res.Elems = append(st.res.Elems, ElemRec{
		AttrID: owner.attrID, AttrSeq: owner.seq,
		ElemID: edef.ID, ElemSeq: elemSeq,
		Value: value, Num: num, HasNum: hasNum,
	})
}

// shredDynamic shreds a dynamic attribute container instance (§3): the
// attribute's identity comes from the entity name/source elements, its
// sub-attributes and elements from the recursive node convention. The
// recursion in the schema "disappears" here — resolution is by (name,
// source) against the registry, and the inverted list flattens the
// hierarchy.
func (s *Shredder) shredDynamic(docNode *xmldoc.Node, decl *xmlschema.Node, st *shredState) (instRef, bool) {
	spec := decl.Dynamic
	entity := docNode.Child(spec.EntityTag)
	if entity == nil {
		st.problemf("dynamic attribute <%s> missing <%s> identity", decl.Tag, spec.EntityTag)
		return instRef{}, false
	}
	name := entity.ChildText(spec.NameTag)
	source := entity.ChildText(spec.SourceTag)
	if name == "" {
		st.problemf("dynamic attribute <%s> has empty <%s>", decl.Tag, spec.NameTag)
		return instRef{}, false
	}
	def := s.Reg.LookupAttr(name, source, 0, st.opts.Owner)
	if def == nil {
		if st.opts.AutoRegister {
			var err error
			def, err = s.Reg.EnsureAttr(name, source, 0, decl.Order, st.opts.Owner)
			if err != nil {
				st.problemf("auto-register attribute %s/%s: %v", name, source, err)
				return instRef{}, false
			}
		} else {
			st.res.Skipped = append(st.res.Skipped, SkipRec{Name: name, Source: source, Reason: "no attribute definition"})
			return instRef{}, false
		}
	}
	self := instRef{attrID: def.ID, seq: st.nextAttrSeq(def.ID)}
	st.res.Attrs = append(st.res.Attrs, AttrRec{AttrID: self.attrID, Seq: self.seq})
	elemSeq := 0
	for _, node := range docNode.ChildrenByTag(spec.NodeTag) {
		s.shredDynamicNode(node, spec, def, []instRef{self}, &elemSeq, st)
	}
	return self, true
}

// shredDynamicNode handles one recursive node: a leaf with a value
// element is a metadata element; a node with nested nodes is a
// sub-attribute.
func (s *Shredder) shredDynamicNode(node *xmldoc.Node, spec xmlschema.DynamicSpec, parentDef *AttrDef, ancestors []instRef, elemSeq *int, st *shredState) {
	name := node.ChildText(spec.NodeNameTag)
	source := node.ChildText(spec.NodeSourceTag)
	if name == "" {
		st.problemf("dynamic node under %s has empty <%s>", parentDef.Name, spec.NodeNameTag)
		return
	}
	valueNode := node.Child(spec.ValueTag)
	nested := node.ChildrenByTag(spec.NodeTag)
	switch {
	case valueNode != nil && len(nested) > 0:
		st.problemf("dynamic node %s (source %q) mixes a value with nested nodes", name, source)
	case valueNode != nil:
		*elemSeq++
		s.emitElem(parentDef.ID, ancestors[len(ancestors)-1], name, source, valueNode.Text, *elemSeq, st)
	case len(nested) > 0:
		subDef := s.Reg.LookupAttr(name, source, parentDef.ID, st.opts.Owner)
		if subDef == nil {
			if st.opts.AutoRegister {
				var err error
				subDef, err = s.Reg.EnsureAttr(name, source, parentDef.ID, parentDef.SchemaOrder, st.opts.Owner)
				if err != nil {
					st.problemf("auto-register sub-attribute %s/%s: %v", name, source, err)
					return
				}
			} else {
				st.res.Skipped = append(st.res.Skipped, SkipRec{Name: name, Source: source, Reason: "no sub-attribute definition"})
				return
			}
		}
		self := instRef{attrID: subDef.ID, seq: st.nextAttrSeq(subDef.ID)}
		st.res.Attrs = append(st.res.Attrs, AttrRec{AttrID: self.attrID, Seq: self.seq})
		for i, anc := range ancestors {
			st.res.SubAttrs = append(st.res.SubAttrs, SubAttrRec{
				ChildAttrID: self.attrID, ChildSeq: self.seq,
				AncAttrID: anc.attrID, AncSeq: anc.seq,
				Depth: len(ancestors) - i,
			})
		}
		subSeq := 0
		for _, child := range nested {
			s.shredDynamicNode(child, spec, subDef, append(ancestors, self), &subSeq, st)
		}
	default:
		st.problemf("dynamic node %s (source %q) has neither a value nor nested nodes", name, source)
	}
}

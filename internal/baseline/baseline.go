// Package baseline defines the common store interface the comparison
// systems implement — shared inlining, edge table, whole-document CLOB,
// and the native XML store — plus a DOM-level query evaluator that serves
// both as the CLOB/native query engine and as the correctness oracle for
// the hybrid catalog.
package baseline

import (
	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// Store is the uniform facade the benchmark harness drives: every
// baseline (and the hybrid catalog itself, via Adapter) ingests the same
// documents and answers the same attribute-criteria queries.
type Store interface {
	// Name identifies the approach in benchmark output.
	Name() string
	// Ingest stores one document, returning its object ID.
	Ingest(owner string, doc *xmldoc.Node) (int64, error)
	// Evaluate returns the IDs of objects matching the query, ascending.
	Evaluate(q *catalog.Query) ([]int64, error)
	// Fetch reconstructs the documents for the given IDs.
	Fetch(ids []int64) ([]catalog.Response, error)
	// StorageBytes estimates resident data size.
	StorageBytes() int64
}

// Adapter wraps the hybrid catalog as a Store.
type Adapter struct{ C *catalog.Catalog }

// Name implements Store.
func (a Adapter) Name() string { return "hybrid" }

// Ingest implements Store.
func (a Adapter) Ingest(owner string, doc *xmldoc.Node) (int64, error) {
	return a.C.Ingest(owner, doc)
}

// Evaluate implements Store.
func (a Adapter) Evaluate(q *catalog.Query) ([]int64, error) { return a.C.Evaluate(q) }

// Fetch implements Store.
func (a Adapter) Fetch(ids []int64) ([]catalog.Response, error) { return a.C.BuildResponse(ids) }

// StorageBytes implements Store.
func (a Adapter) StorageBytes() int64 { return a.C.StorageBytes() }

// DocMatches evaluates an attribute-criteria query directly against a
// document tree, using the schema's annotations to locate structural
// attributes and interpret dynamic containers. It is the query engine of
// the CLOB and native-XML baselines and the oracle the property tests
// compare every store against.
func DocMatches(schema *xmlschema.Schema, doc *xmldoc.Node, q *catalog.Query) bool {
	for _, crit := range q.Attrs {
		if len(findSatisfying(schema, doc, crit, nil)) == 0 {
			return false
		}
	}
	return true
}

// findSatisfying returns the document nodes that satisfy one criteria
// node. parent constrains the search to sub-attribute instances below a
// given instance node (nil = whole document).
func findSatisfying(schema *xmlschema.Schema, doc *xmldoc.Node, crit *catalog.AttrCriteria, parent *xmldoc.Node) []*xmldoc.Node {
	var candidates []candidate
	if parent == nil {
		candidates = topCandidates(schema, doc, crit)
	} else {
		candidates = subCandidates(schema, parent, crit)
	}
	var out []*xmldoc.Node
	for _, c := range candidates {
		if !elemsSatisfied(c, crit.Elems) {
			continue
		}
		ok := true
		for _, sub := range crit.Subs {
			if len(findSatisfying(schema, doc, sub, c.node)) == 0 {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c.node)
		}
	}
	return out
}

// candidate pairs an instance node with the element accessor appropriate
// to its kind (structural vs dynamic).
type candidate struct {
	node    *xmldoc.Node
	dynamic bool
	spec    xmlschema.DynamicSpec
}

// topCandidates finds top-level instances of the criteria's attribute.
func topCandidates(schema *xmlschema.Schema, doc *xmldoc.Node, crit *catalog.AttrCriteria) []candidate {
	var out []candidate
	if crit.Source == "" {
		if decl := schema.AttributeByTag(crit.Name); decl != nil && !decl.IsDynamic {
			for _, n := range doc.FindAll(crit.Name) {
				out = append(out, candidate{node: n})
			}
			return out
		}
	}
	// Dynamic: containers whose entity identity matches (name, source).
	for _, a := range schema.Attributes {
		if !a.IsDynamic {
			continue
		}
		spec := a.Dynamic
		for _, n := range doc.FindAll(a.Tag) {
			entity := n.Child(spec.EntityTag)
			if entity == nil {
				continue
			}
			if entity.ChildText(spec.NameTag) == crit.Name && entity.ChildText(spec.SourceTag) == crit.Source {
				out = append(out, candidate{node: n, dynamic: true, spec: spec})
			}
		}
	}
	return out
}

// subCandidates finds sub-attribute instances below a parent instance.
func subCandidates(schema *xmlschema.Schema, parent *xmldoc.Node, crit *catalog.AttrCriteria) []candidate {
	var out []candidate
	// Dynamic sub-attribute: nested NodeTag children with matching
	// name/source, at any depth (the inverted list matches any depth).
	for _, a := range schema.Attributes {
		if !a.IsDynamic {
			continue
		}
		spec := a.Dynamic
		var walk func(n *xmldoc.Node)
		walk = func(n *xmldoc.Node) {
			for _, c := range n.ChildrenByTag(spec.NodeTag) {
				if c.ChildText(spec.NodeNameTag) == crit.Name && c.ChildText(spec.NodeSourceTag) == crit.Source &&
					len(c.ChildrenByTag(spec.NodeTag)) > 0 {
					out = append(out, candidate{node: c, dynamic: true, spec: spec})
				}
				walk(c)
			}
		}
		walk(parent)
	}
	if crit.Source == "" {
		// Structural sub-attribute: interior descendants with the tag.
		for _, n := range parent.FindAll(crit.Name) {
			if n != parent && !n.IsLeaf() {
				out = append(out, candidate{node: n})
			}
		}
	}
	return out
}

// elemsSatisfied checks every element predicate against one instance.
func elemsSatisfied(c candidate, preds []catalog.ElemPred) bool {
	for _, p := range preds {
		if !elemSatisfied(c, p) {
			return false
		}
	}
	return true
}

func elemSatisfied(c candidate, p catalog.ElemPred) bool {
	if c.dynamic {
		for _, n := range c.node.ChildrenByTag(c.spec.NodeTag) {
			if n.ChildText(c.spec.NodeNameTag) != p.Name || n.ChildText(c.spec.NodeSourceTag) != p.Source {
				continue
			}
			v := n.Child(c.spec.ValueTag)
			if v != nil && valueMatches(v.Text, p) {
				return true
			}
		}
		return false
	}
	// Structural: direct leaf children with the tag; the attribute may
	// also be its own element (leaf attribute).
	if c.node.IsLeaf() && c.node.Tag == p.Name {
		return valueMatches(c.node.Text, p)
	}
	for _, ch := range c.node.Children {
		if ch.Tag == p.Name && ch.IsLeaf() && valueMatches(ch.Text, p) {
			return true
		}
	}
	return false
}

// valueMatches applies a predicate with the catalog's typed semantics:
// numeric query values compare against the numeric interpretation of the
// text; strings compare textually. OneOf predicates match any listed
// value.
func valueMatches(text string, p catalog.ElemPred) bool {
	if len(p.OneOf) > 0 {
		for _, v := range p.OneOf {
			single := p
			single.OneOf = nil
			single.Value = v
			if valueMatches(text, single) {
				return true
			}
		}
		return false
	}
	if f, ok := p.Value.AsFloat(); ok && isNumericKind(p) {
		tf, ok2 := parseFloat(text)
		if !ok2 {
			return false
		}
		return p.Op.Holds(floatVal(tf), floatVal(f))
	}
	return p.Op.Holds(strVal(text), strVal(p.Value.AsString()))
}

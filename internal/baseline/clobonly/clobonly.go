// Package clobonly implements the whole-document CLOB baseline (the
// DB2/Oracle "XML column" mode the paper's §6 describes): each document
// is stored as one character large object, queries must parse and
// evaluate every candidate document, and retrieval returns the stored
// text unchanged.
package clobonly

import (
	"fmt"
	"sort"
	"sync"

	"github.com/gridmeta/hybridcat/internal/baseline"
	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// Store is a whole-document CLOB store.
type Store struct {
	Schema *xmlschema.Schema
	DB     *relstore.Database

	mu     sync.Mutex
	nextID int64
}

// New creates the docs table.
func New(schema *xmlschema.Schema) (*Store, error) {
	db := relstore.NewDatabase()
	if _, err := db.CreateTable("docs",
		relstore.Column{Name: "doc_id", Type: relstore.KInt, NotNull: true},
		relstore.Column{Name: "clob", Type: relstore.KString, NotNull: true},
	); err != nil {
		return nil, err
	}
	if _, err := db.MustTable("docs").CreateIndex("docs_pk", relstore.BTreeIndex, true, "doc_id"); err != nil {
		return nil, err
	}
	return &Store{Schema: schema, DB: db}, nil
}

// Name implements baseline.Store.
func (s *Store) Name() string { return "clob" }

// Ingest implements baseline.Store.
func (s *Store) Ingest(owner string, doc *xmldoc.Node) (int64, error) {
	_ = owner
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	_, err := s.DB.MustTable("docs").Insert(relstore.Row{relstore.Int(id), relstore.Str(doc.String())})
	return id, err
}

// Evaluate implements baseline.Store: a full scan that parses and
// DOM-evaluates every document — the cost profile the hybrid approach is
// designed to avoid.
func (s *Store) Evaluate(q *catalog.Query) ([]int64, error) {
	if len(q.Attrs) == 0 {
		return nil, fmt.Errorf("clobonly: empty query")
	}
	var out []int64
	var scanErr error
	s.DB.MustTable("docs").Scan(func(_ int64, r relstore.Row) bool {
		doc, err := xmldoc.ParseString(r[1].S)
		if err != nil {
			scanErr = fmt.Errorf("clobonly: stored document %d corrupt: %w", r[0].I, err)
			return false
		}
		if baseline.DocMatches(s.Schema, doc, q) {
			out = append(out, r[0].I)
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Fetch implements baseline.Store: the CLOB is returned as stored.
func (s *Store) Fetch(ids []int64) ([]catalog.Response, error) {
	docs := s.DB.MustTable("docs")
	var out []catalog.Response
	for _, id := range ids {
		rowIDs, err := docs.LookupEqual("docs_pk", relstore.Int(id))
		if err != nil {
			return nil, err
		}
		for _, rid := range rowIDs {
			if r := docs.Get(rid); r != nil {
				out = append(out, catalog.Response{ObjectID: id, XML: r[1].S})
			}
		}
	}
	return out, nil
}

// StorageBytes implements baseline.Store.
func (s *Store) StorageBytes() int64 { return s.DB.StorageBytes() }

package clobonly

import (
	"strings"
	"testing"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := New(xmlschema.MustLEAD())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFetchReturnsStoredBytesUnchanged(t *testing.T) {
	s := newStore(t)
	doc, _ := xmldoc.ParseString(xmlschema.Figure3Document)
	id, err := s.Ingest("u", doc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Fetch([]int64{id})
	if err != nil || len(resp) != 1 {
		t.Fatalf("%v %d", err, len(resp))
	}
	if resp[0].XML != doc.String() {
		t.Error("CLOB store must return the exact stored serialization")
	}
}

func TestEvaluateScansAndParses(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 5; i++ {
		doc, _ := xmldoc.ParseString(xmlschema.Figure3Document)
		if i != 2 {
			for _, a := range doc.FindAll("attr") {
				if a.ChildText("attrlabl") == "dx" {
					a.Child("attrv").Text = "999"
				}
			}
		}
		if _, err := s.Ingest("u", doc); err != nil {
			t.Fatal(err)
		}
	}
	q := &catalog.Query{}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(1000))
	ids, err := s.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("ids = %v", ids)
	}
	if _, err := s.Evaluate(&catalog.Query{}); err == nil {
		t.Error("empty query should fail")
	}
}

func TestCorruptClobSurfacesError(t *testing.T) {
	s := newStore(t)
	if _, err := s.DB.MustTable("docs").Insert(relstore.Row{relstore.Int(1), relstore.Str("<broken")}); err != nil {
		t.Fatal(err)
	}
	q := &catalog.Query{}
	q.Attr("theme", "")
	if _, err := s.Evaluate(q); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("err = %v", err)
	}
}

// Package edgetable implements the edge-table baseline (Florescu &
// Kossman [17], as characterized in the paper's §6): the document is a
// directed graph stored as one row per edge, queries become self-joins —
// one per path level — and reconstruction chases parent pointers.
package edgetable

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// Store is an edge-table document store.
type Store struct {
	Schema *xmlschema.Schema
	DB     *relstore.Database

	mu     sync.Mutex
	nextID int64
}

// New creates the edge table and its indexes.
func New(schema *xmlschema.Schema) (*Store, error) {
	db := relstore.NewDatabase()
	_, err := db.CreateTable("edges",
		relstore.Column{Name: "doc_id", Type: relstore.KInt, NotNull: true},
		relstore.Column{Name: "node_id", Type: relstore.KInt, NotNull: true},
		relstore.Column{Name: "parent_id", Type: relstore.KInt, NotNull: false},
		relstore.Column{Name: "ord", Type: relstore.KInt, NotNull: true},
		relstore.Column{Name: "tag", Type: relstore.KString, NotNull: true},
		relstore.Column{Name: "sval", Type: relstore.KString, NotNull: false},
		relstore.Column{Name: "nval", Type: relstore.KFloat, NotNull: false},
	)
	if err != nil {
		return nil, err
	}
	edges := db.MustTable("edges")
	for name, cols := range map[string][]string{
		"edges_by_tag_sval": {"tag", "sval"},
		"edges_by_tag_nval": {"tag", "nval"},
	} {
		if _, err := edges.CreateIndex(name, relstore.BTreeIndex, false, cols...); err != nil {
			return nil, err
		}
	}
	for name, cols := range map[string][]string{
		"edges_by_doc":    {"doc_id"},
		"edges_by_parent": {"doc_id", "parent_id"},
		"edges_by_tag":    {"tag"},
	} {
		if _, err := edges.CreateIndex(name, relstore.HashIndex, false, cols...); err != nil {
			return nil, err
		}
	}
	return &Store{Schema: schema, DB: db}, nil
}

// Name implements baseline.Store.
func (s *Store) Name() string { return "edge" }

// Ingest implements baseline.Store: one row per element.
func (s *Store) Ingest(owner string, doc *xmldoc.Node) (int64, error) {
	_ = owner
	s.mu.Lock()
	s.nextID++
	docID := s.nextID
	s.mu.Unlock()
	edges := s.DB.MustTable("edges")
	nodeID := int64(0)
	var insert func(n *xmldoc.Node, parent int64, ord int) error
	insert = func(n *xmldoc.Node, parent int64, ord int) error {
		nodeID++
		id := nodeID
		sval := relstore.Null()
		nval := relstore.Null()
		if n.IsLeaf() {
			sval = relstore.Str(n.Text)
			if f, ok := parseFloat(n.Text); ok {
				nval = relstore.Float(f)
			}
		}
		parentVal := relstore.Null()
		if parent != 0 {
			parentVal = relstore.Int(parent)
		}
		_, err := edges.Insert(relstore.Row{
			relstore.Int(docID), relstore.Int(id), parentVal,
			relstore.Int(int64(ord)), relstore.Str(n.Tag), sval, nval,
		})
		if err != nil {
			return err
		}
		for i, c := range n.Children {
			if err := insert(c, id, i); err != nil {
				return err
			}
		}
		return nil
	}
	if err := insert(doc, 0, 0); err != nil {
		return 0, err
	}
	return docID, nil
}

// nodeRef identifies one element row.
type nodeRef struct {
	docID, nodeID int64
}

// Evaluate implements baseline.Store: each criteria level and element
// predicate becomes another probe into the edge table joined through
// parent pointers — the self-join chain the hybrid approach avoids.
func (s *Store) Evaluate(q *catalog.Query) ([]int64, error) {
	if len(q.Attrs) == 0 {
		return nil, fmt.Errorf("edgetable: empty query")
	}
	docs := map[int64]int{}
	for _, crit := range q.Attrs {
		matches, err := s.satisfying(crit, nil)
		if err != nil {
			return nil, err
		}
		seen := map[int64]bool{}
		for _, m := range matches {
			if !seen[m.docID] {
				seen[m.docID] = true
				docs[m.docID]++
			}
		}
	}
	var out []int64
	for d, n := range docs {
		if n == len(q.Attrs) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// satisfying returns instance nodes satisfying one criteria node, scoped
// below parents when given (nil = anywhere).
func (s *Store) satisfying(crit *catalog.AttrCriteria, parents []nodeRef) ([]nodeRef, error) {
	edges := s.DB.MustTable("edges")
	var cands []nodeRef
	var dynSpec *xmlschema.DynamicSpec
	for _, a := range s.Schema.Attributes {
		if a.IsDynamic {
			spec := a.Dynamic
			dynSpec = &spec
			break
		}
	}
	decl := s.Schema.AttributeByTag(crit.Name)
	structuralTop := crit.Source == "" && decl != nil && !decl.IsDynamic
	switch {
	case parents == nil && structuralTop:
		// Structural: nodes with the attribute tag.
		ids, err := edges.LookupEqual("edges_by_tag", relstore.Str(crit.Name))
		if err != nil {
			return nil, err
		}
		for _, rid := range ids {
			r := edges.Get(rid)
			if r == nil {
				continue
			}
			cands = append(cands, nodeRef{r[0].I, r[1].I})
		}
	case parents == nil:
		// Dynamic top: self-join chain container -> entity -> name/source.
		if dynSpec != nil {
			for _, a := range s.Schema.Attributes {
				if !a.IsDynamic {
					continue
				}
				found, err := s.dynamicTops(a.Tag, a.Dynamic, crit.Name, crit.Source)
				if err != nil {
					return nil, err
				}
				cands = append(cands, found...)
				break
			}
		}
	default:
		// Sub-attribute: structural interior descendants with the tag
		// (one parent-chase join per level) and/or dynamic node rows.
		if crit.Source == "" {
			ids, err := edges.LookupEqual("edges_by_tag", relstore.Str(crit.Name))
			if err != nil {
				return nil, err
			}
			var structural []nodeRef
			for _, rid := range ids {
				r := edges.Get(rid)
				if r == nil || !r[5].IsNull() { // leaf rows carry sval
					continue
				}
				structural = append(structural, nodeRef{r[0].I, r[1].I})
			}
			cands = append(cands, s.filterDescendants(structural, parents)...)
		}
		if dynSpec != nil {
			found, err := s.dynamicSubs(*dynSpec, crit.Name, crit.Source, parents)
			if err != nil {
				return nil, err
			}
			cands = append(cands, found...)
		}
	}
	// Element predicates: one more self-join per predicate.
	var out []nodeRef
	for _, c := range cands {
		ok := true
		for _, p := range crit.Elems {
			holds, err := s.elemHolds(c, p, dynSpec)
			if err != nil {
				return nil, err
			}
			if !holds {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, sub := range crit.Subs {
			subs, err := s.satisfying(sub, []nodeRef{c})
			if err != nil {
				return nil, err
			}
			if len(subs) == 0 {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out, nil
}

// children returns the child rows of a node, ordered.
func (s *Store) children(ref nodeRef) []relstore.Row {
	edges := s.DB.MustTable("edges")
	ids, _ := edges.LookupEqual("edges_by_parent", relstore.Int(ref.docID), relstore.Int(ref.nodeID))
	rows := make([]relstore.Row, 0, len(ids))
	for _, rid := range ids {
		if r := edges.Get(rid); r != nil {
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][3].I < rows[j][3].I })
	return rows
}

func (s *Store) childByTag(ref nodeRef, tag string) (relstore.Row, bool) {
	for _, r := range s.children(ref) {
		if r[4].S == tag {
			return r, true
		}
	}
	return nil, false
}

// dynamicTops finds container nodes whose entity name/source match.
func (s *Store) dynamicTops(containerTag string, spec xmlschema.DynamicSpec, name, source string) ([]nodeRef, error) {
	edges := s.DB.MustTable("edges")
	// Probe by the name value (most selective), then join upward:
	// nameTag row -> entity parent -> container parent.
	ids, err := edges.LookupEqual("edges_by_tag_sval", relstore.Str(spec.NameTag), relstore.Str(name))
	if err != nil {
		return nil, err
	}
	var out []nodeRef
	for _, rid := range ids {
		r := edges.Get(rid)
		if r == nil || r[2].IsNull() {
			continue
		}
		entity := nodeRef{r[0].I, r[2].I}
		er := s.getNode(entity)
		if er == nil || er[4].S != spec.EntityTag || er[2].IsNull() {
			continue
		}
		container := nodeRef{entity.docID, er[2].I}
		cr := s.getNode(container)
		if cr == nil || cr[4].S != containerTag {
			continue
		}
		if sr, ok := s.childByTag(entity, spec.SourceTag); !ok || sr[5].S != source {
			continue
		}
		out = append(out, container)
	}
	return out, nil
}

// dynamicSubs finds NodeTag descendants of the parents whose name/source
// match and which have nested NodeTag children.
func (s *Store) dynamicSubs(spec xmlschema.DynamicSpec, name, source string, parents []nodeRef) ([]nodeRef, error) {
	var out []nodeRef
	var walk func(ref nodeRef)
	walk = func(ref nodeRef) {
		for _, r := range s.children(ref) {
			if r[4].S != spec.NodeTag {
				continue
			}
			child := nodeRef{r[0].I, r[1].I}
			nm, _ := s.childByTag(child, spec.NodeNameTag)
			src, _ := s.childByTag(child, spec.NodeSourceTag)
			hasNested := false
			for _, cr := range s.children(child) {
				if cr[4].S == spec.NodeTag {
					hasNested = true
					break
				}
			}
			if hasNested && nm != nil && nm[5].S == name && (src == nil && source == "" || src != nil && src[5].S == source) {
				out = append(out, child)
			}
			walk(child)
		}
	}
	for _, p := range parents {
		walk(p)
	}
	return out, nil
}

func (s *Store) getNode(ref nodeRef) relstore.Row {
	edges := s.DB.MustTable("edges")
	ids, _ := edges.LookupEqual("edges_by_doc", relstore.Int(ref.docID))
	for _, rid := range ids {
		r := edges.Get(rid)
		if r != nil && r[1].I == ref.nodeID {
			return r
		}
	}
	return nil
}

// filterDescendants keeps candidates that are strict descendants of one
// of the parents (chasing parent pointers upward).
func (s *Store) filterDescendants(cands, parents []nodeRef) []nodeRef {
	parentSet := make(map[nodeRef]bool, len(parents))
	for _, p := range parents {
		parentSet[p] = true
	}
	var out []nodeRef
	for _, c := range cands {
		cur := c
		for {
			r := s.getNode(cur)
			if r == nil || r[2].IsNull() {
				break
			}
			up := nodeRef{cur.docID, r[2].I}
			if parentSet[up] {
				out = append(out, c)
				break
			}
			cur = up
		}
	}
	return out
}

// elemHolds checks one element predicate on one instance node.
func (s *Store) elemHolds(ref nodeRef, p catalog.ElemPred, dyn *xmlschema.DynamicSpec) (bool, error) {
	isDyn := false
	if dyn != nil {
		tag := ref.tagOf(s)
		decl := s.Schema.AttributeByTag(tag)
		isDyn = (decl != nil && decl.IsDynamic) || tag == dyn.NodeTag
	}
	if isDyn {
		// Dynamic instance: NodeTag children carrying name/source/value.
		for _, r := range s.children(ref) {
			if r[4].S != dyn.NodeTag {
				continue
			}
			child := nodeRef{r[0].I, r[1].I}
			nm, _ := s.childByTag(child, dyn.NodeNameTag)
			src, _ := s.childByTag(child, dyn.NodeSourceTag)
			if nm == nil || nm[5].S != p.Name {
				continue
			}
			if !(src == nil && p.Source == "" || src != nil && src[5].S == p.Source) {
				continue
			}
			if v, ok := s.childByTag(child, dyn.ValueTag); ok && valueRowMatches(v, p) {
				return true, nil
			}
		}
		return false, nil
	}
	// Structural: leaf children with the element tag; or the instance is
	// itself the leaf element.
	self := s.getNode(ref)
	if self != nil && !self[5].IsNull() && self[4].S == p.Name {
		return valueRowMatches(self, p), nil
	}
	for _, r := range s.children(ref) {
		if r[4].S == p.Name && !r[5].IsNull() && valueRowMatches(r, p) {
			return true, nil
		}
	}
	return false, nil
}

func (ref nodeRef) tagOf(s *Store) string {
	if r := s.getNode(ref); r != nil {
		return r[4].S
	}
	return ""
}

// valueRowMatches applies the predicate with the catalog's typed
// semantics (numeric query values use nval). OneOf matches any listed
// value.
func valueRowMatches(r relstore.Row, p catalog.ElemPred) bool {
	if len(p.OneOf) > 0 {
		for _, v := range p.OneOf {
			single := p
			single.OneOf = nil
			single.Value = v
			if valueRowMatches(r, single) {
				return true
			}
		}
		return false
	}
	if p.Value.K == relstore.KInt || p.Value.K == relstore.KFloat {
		if r[6].IsNull() {
			return false
		}
		f, _ := p.Value.AsFloat()
		return p.Op.Holds(relstore.Float(r[6].F), relstore.Float(f))
	}
	return p.Op.Holds(relstore.Str(r[5].S), relstore.Str(p.Value.AsString()))
}

// Fetch implements baseline.Store: reconstruct each document by grouping
// its edges and chasing parent pointers.
func (s *Store) Fetch(ids []int64) ([]catalog.Response, error) {
	edges := s.DB.MustTable("edges")
	var out []catalog.Response
	for _, docID := range ids {
		rowIDs, err := edges.LookupEqual("edges_by_doc", relstore.Int(docID))
		if err != nil {
			return nil, err
		}
		if len(rowIDs) == 0 {
			continue
		}
		nodes := make(map[int64]*xmldoc.Node, len(rowIDs))
		type link struct {
			parent int64
			ord    int64
			id     int64
		}
		var links []link
		var rootID int64
		for _, rid := range rowIDs {
			r := edges.Get(rid)
			if r == nil {
				continue
			}
			n := xmldoc.NewNode(r[4].S)
			if !r[5].IsNull() {
				n.Text = r[5].S
			}
			nodes[r[1].I] = n
			if r[2].IsNull() {
				rootID = r[1].I
			} else {
				links = append(links, link{parent: r[2].I, ord: r[3].I, id: r[1].I})
			}
		}
		sort.Slice(links, func(i, j int) bool {
			if links[i].parent != links[j].parent {
				return links[i].parent < links[j].parent
			}
			return links[i].ord < links[j].ord
		})
		for _, l := range links {
			nodes[l.parent].Append(nodes[l.id])
		}
		out = append(out, catalog.Response{ObjectID: docID, XML: nodes[rootID].String()})
	}
	return out, nil
}

// StorageBytes implements baseline.Store.
func (s *Store) StorageBytes() int64 { return s.DB.StorageBytes() }

func parseFloat(text string) (float64, bool) {
	f, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
	return f, err == nil
}

package edgetable

import (
	"testing"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := New(xmlschema.MustLEAD())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func ingest(t *testing.T, s *Store, xml string) int64 {
	t.Helper()
	doc, err := xmldoc.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Ingest("u", doc)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestIngestAssignsSequentialDocIDs(t *testing.T) {
	s := newStore(t)
	if id := ingest(t, s, xmlschema.Figure3Document); id != 1 {
		t.Errorf("first id = %d", id)
	}
	if id := ingest(t, s, xmlschema.Figure3Document); id != 2 {
		t.Errorf("second id = %d", id)
	}
}

func TestEdgeRowsCarryValuesAndNumericShadow(t *testing.T) {
	s := newStore(t)
	ingest(t, s, xmlschema.Figure3Document)
	edges := s.DB.MustTable("edges")
	// dx's attrv row: sval "1000.000", nval 1000.
	ids, err := edges.LookupEqual("edges_by_tag_sval", relstore.Str("attrv"), relstore.Str("1000.000"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("attrv rows = %d", len(ids))
	}
	r := edges.Get(ids[0])
	if r[6].IsNull() || r[6].F != 1000 {
		t.Errorf("nval = %v", r[6])
	}
	// Interior rows have NULL sval.
	ids, _ = edges.LookupEqual("edges_by_tag", relstore.Str("enttyp"))
	if len(ids) != 1 || !edges.Get(ids[0])[5].IsNull() {
		t.Error("interior node should have NULL sval")
	}
}

func TestStructuralQueryScopedBelowParent(t *testing.T) {
	s := newStore(t)
	// Two docs; only one has the bounding box west of -100.
	ingest(t, s, `<LEADresource><resourceID>a</resourceID><data><geospatial><spdom>
	  <bounding><westbc>-103</westbc></bounding></spdom></geospatial></data></LEADresource>`)
	ingest(t, s, `<LEADresource><resourceID>b</resourceID><data><geospatial><spdom>
	  <bounding><westbc>-95</westbc></bounding></spdom></geospatial></data></LEADresource>`)
	q := &catalog.Query{}
	sp := q.Attr("spdom", "")
	box := &catalog.AttrCriteria{Name: "bounding"}
	box.AddElem("westbc", "", relstore.OpLe, relstore.Int(-100))
	sp.AddSub(box)
	ids, err := s.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestDynamicQuerySelfJoinChain(t *testing.T) {
	s := newStore(t)
	ingest(t, s, xmlschema.Figure3Document)
	// Same name, wrong source must not match.
	q := &catalog.Query{}
	q.Attr("grid", "WRF")
	if ids, err := s.Evaluate(q); err != nil || len(ids) != 0 {
		t.Fatalf("wrong-source = %v, %v", ids, err)
	}
	q = &catalog.Query{}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(1000))
	if ids, err := s.Evaluate(q); err != nil || len(ids) != 1 {
		t.Fatalf("grid dx = %v, %v", ids, err)
	}
}

func TestFetchPreservesSiblingOrder(t *testing.T) {
	s := newStore(t)
	const xml = `<LEADresource><resourceID>r</resourceID><data><idinfo><keywords>
	  <theme><themekt>A</themekt><themekey>k1</themekey><themekey>k2</themekey><themekey>k3</themekey></theme>
	  <theme><themekt>B</themekt><themekey>k4</themekey></theme>
	</keywords></idinfo></data></LEADresource>`
	id := ingest(t, s, xml)
	resp, err := s.Fetch([]int64{id})
	if err != nil || len(resp) != 1 {
		t.Fatalf("%v %d", err, len(resp))
	}
	got, err := xmldoc.ParseString(resp[0].XML)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := xmldoc.ParseString(xml)
	if !xmldoc.Equal(want, got) {
		t.Errorf("order lost: %s", xmldoc.Diff(want, got))
	}
}

func TestFetchUnknownAndEmptyQuery(t *testing.T) {
	s := newStore(t)
	ingest(t, s, xmlschema.Figure3Document)
	resp, err := s.Fetch([]int64{42})
	if err != nil || len(resp) != 0 {
		t.Errorf("unknown fetch = %v, %v", resp, err)
	}
	if _, err := s.Evaluate(&catalog.Query{}); err == nil {
		t.Error("empty query should fail")
	}
}

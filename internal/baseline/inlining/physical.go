// Package inlining implements the shared-inlining baseline
// (Shanmugasundaram et al. [14], as characterized in the paper's §2/§6):
// the schema is partitioned into relational fragments split at set-valued
// and recursive elements, single-occurrence leaves inline as columns of
// their nearest fragment, queries join fragments level by level, and
// documents are reconstructed by re-joining the fragments.
//
// The dynamic metadata region (the LEAD "detailed" subtree) has no
// explicit element declarations in the annotated schema, so the physical
// mapping synthesizes them from the container's DynamicSpec: an entity
// wrapper with name/source leaves and a recursive, repeating node
// element — precisely the shape that fragments badly under inlining,
// which is the paper's argument.
package inlining

import (
	"strings"

	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// physNode is one element of the physical (inlining-visible) schema tree.
type physNode struct {
	tag      string
	children []*physNode
	repeats  bool
	selfRec  bool // the node recurs into itself (dynamic node element)
}

func (p *physNode) leaf() bool { return len(p.children) == 0 && !p.selfRec }

// buildPhysical expands the annotated schema into the physical tree,
// synthesizing the dynamic container's interior from its spec.
func buildPhysical(n *xmlschema.Node) *physNode {
	p := &physNode{tag: n.Tag, repeats: n.Repeats}
	if n.IsDynamic {
		spec := n.Dynamic
		entity := &physNode{tag: spec.EntityTag, children: []*physNode{
			{tag: spec.NameTag},
			{tag: spec.SourceTag},
		}}
		node := &physNode{tag: spec.NodeTag, repeats: true, selfRec: true, children: []*physNode{
			{tag: spec.NodeNameTag},
			{tag: spec.NodeSourceTag},
			{tag: spec.ValueTag},
		}}
		p.children = []*physNode{entity, node}
		return p
	}
	for _, c := range n.Children {
		p.children = append(p.children, buildPhysical(c))
	}
	return p
}

// fragment is one relational fragment: a table holding rows for every
// instance of its root element, with single-occurrence leaf descendants
// inlined as columns.
type fragment struct {
	name           string // unique table name
	parent         *fragment
	pathFromParent []string // tags from parent's root (exclusive) to this root (inclusive)
	node           *physNode
	valueFrag      bool // repeating leaf: one "value" column
	recursive      bool

	// cols maps a relative leaf path ("a/b/c") to the position of its
	// string column; the numeric shadow is at position+1.
	cols map[string]int
	// colOrder lists relative paths in schema order (for reconstruction).
	colOrder []string
	// children in schema order, each reachable at childPath[i].
	children  []*fragment
	childPath []string // relative path of each child's root, "a/b/frag"
}

// fixed column positions in every fragment table.
const (
	cDocID = iota
	cFragID
	cParentTable
	cParentID
	cOrd
	cFirstData
)

// buildFragments partitions the physical tree into fragments.
func buildFragments(root *physNode) []*fragment {
	var all []*fragment
	names := map[string]int{}
	uniqueName := func(tag string) string {
		names[tag]++
		if names[tag] == 1 {
			return tag
		}
		return tag + strings.Repeat("_", names[tag]-1)
	}
	var newFragment func(n *physNode, parent *fragment, pathFromParent []string) *fragment
	var fill func(f *fragment, n *physNode, rel []string)
	fill = func(f *fragment, n *physNode, rel []string) {
		for _, c := range n.children {
			crel := append(append([]string{}, rel...), c.tag)
			switch {
			case c.selfRec:
				child := newFragment(c, f, crel)
				child.recursive = true
				f.children = append(f.children, child)
				f.childPath = append(f.childPath, strings.Join(crel, "/"))
			case c.repeats && c.leaf():
				child := newFragment(c, f, crel)
				child.valueFrag = true
				child.cols["value"] = cFirstData
				child.colOrder = []string{"value"}
				f.children = append(f.children, child)
				f.childPath = append(f.childPath, strings.Join(crel, "/"))
			case c.repeats:
				child := newFragment(c, f, crel)
				fill(child, c, nil)
				f.children = append(f.children, child)
				f.childPath = append(f.childPath, strings.Join(crel, "/"))
			case c.leaf():
				key := strings.Join(crel, "/")
				f.cols[key] = cFirstData + 2*len(f.colOrder)
				f.colOrder = append(f.colOrder, key)
			default:
				fill(f, c, crel)
			}
		}
	}
	newFragment = func(n *physNode, parent *fragment, pathFromParent []string) *fragment {
		f := &fragment{
			name:           uniqueName(n.tag),
			parent:         parent,
			pathFromParent: pathFromParent,
			node:           n,
			cols:           map[string]int{},
		}
		all = append(all, f)
		return f
	}
	rootFrag := newFragment(root, nil, nil)
	fill(rootFrag, root, nil)
	// The recursive fragment's own interior: leaves inline, the self
	// reference becomes a child fragment pointing back at itself.
	for _, f := range all {
		if !f.recursive {
			continue
		}
		for _, c := range f.node.children {
			if c.tag == f.node.tag {
				continue
			}
			key := c.tag
			f.cols[key] = cFirstData + 2*len(f.colOrder)
			f.colOrder = append(f.colOrder, key)
		}
		// Self-recursion: the fragment is its own child.
		f.children = append(f.children, f)
		f.childPath = append(f.childPath, f.node.tag)
	}
	return all
}

package inlining

import (
	"strings"
	"testing"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := New(xmlschema.MustLEAD())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func ingest(t *testing.T, s *Store, xml string) int64 {
	t.Helper()
	doc, err := xmldoc.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Ingest("u", doc)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestPhysicalTreeSynthesizesDynamicRegion(t *testing.T) {
	phys := buildPhysical(xmlschema.MustLEAD().Root)
	var detailed *physNode
	var walk func(*physNode)
	walk = func(n *physNode) {
		if n.tag == "detailed" {
			detailed = n
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(phys)
	if detailed == nil || len(detailed.children) != 2 {
		t.Fatalf("detailed = %+v", detailed)
	}
	if detailed.children[0].tag != "enttyp" || !detailed.children[1].selfRec {
		t.Errorf("synth children = %s, %s", detailed.children[0].tag, detailed.children[1].tag)
	}
}

func TestFragmentationSplitsAtCardinalityNotAttributes(t *testing.T) {
	s := newStore(t)
	names := s.FragmentNames()
	joined := strings.Join(names, ",")
	// Single-occurrence attributes (citation, status, spdom) inline into
	// the root fragment — inlining ignores attribute annotations.
	for _, not := range []string{"citation", "status", "spdom", "bounding"} {
		if strings.Contains(joined, not) {
			t.Errorf("%s should be inlined, fragments = %v", not, names)
		}
	}
	// Set-valued and recursive nodes split.
	for _, want := range []string{"theme", "themekey", "detailed", "attr"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing fragment %s in %v", want, names)
		}
	}
}

func TestRootFragmentColumnsCoverInlinedPaths(t *testing.T) {
	s := newStore(t)
	root := s.DB.MustTable("LEADresource")
	found := 0
	for _, c := range root.Schema.Columns {
		switch c.Name {
		case "resourceID", "data_idinfo_citation_origin", "data_geospatial_spdom_bounding_westbc":
			found++
		}
	}
	if found != 3 {
		t.Errorf("inlined columns missing, have %v", root.Schema.Columns)
	}
}

func TestInlinedAttributePresenceSemantics(t *testing.T) {
	s := newStore(t)
	// Document WITHOUT a citation; the root row still exists.
	ingest(t, s, `<LEADresource><resourceID>r</resourceID><data><idinfo>
	  <status><progress>Complete</progress><update>None</update></status>
	</idinfo></data></LEADresource>`)
	q := &catalog.Query{}
	q.Attr("citation", "")
	ids, err := s.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("absent inlined attribute matched: %v", ids)
	}
	q = &catalog.Query{}
	q.Attr("status", "")
	if ids, _ = s.Evaluate(q); len(ids) != 1 {
		t.Fatalf("present inlined attribute missed: %v", ids)
	}
}

func TestRepeatingLeafQueriesThroughValueFragment(t *testing.T) {
	s := newStore(t)
	ingest(t, s, `<LEADresource><resourceID>r</resourceID><data><idinfo><keywords>
	  <theme><themekt>CF</themekt><themekey>alpha</themekey><themekey>beta</themekey></theme>
	</keywords></idinfo></data></LEADresource>`)
	for _, key := range []string{"alpha", "beta"} {
		q := &catalog.Query{}
		q.Attr("theme", "").AddElem("themekey", "", relstore.OpEq, relstore.Str(key))
		ids, err := s.Evaluate(q)
		if err != nil || len(ids) != 1 {
			t.Fatalf("themekey=%s: %v, %v", key, ids, err)
		}
	}
	q := &catalog.Query{}
	q.Attr("theme", "").AddElem("themekey", "", relstore.OpEq, relstore.Str("gamma"))
	if ids, _ := s.Evaluate(q); len(ids) != 0 {
		t.Fatalf("missing key matched: %v", ids)
	}
}

func TestRecursiveFragmentRoundTrip(t *testing.T) {
	s := newStore(t)
	const xml = `<LEADresource><resourceID>r</resourceID><data><geospatial><eainfo><detailed>
	  <enttyp><enttypl>grid</enttypl><enttypds>ARPS</enttypds></enttyp>
	  <attr><attrlabl>a</attrlabl><attrdefs>S</attrdefs>
	    <attr><attrlabl>b</attrlabl><attrdefs>S</attrdefs>
	      <attr><attrlabl>c</attrlabl><attrdefs>S</attrdefs><attrv>1</attrv></attr>
	    </attr>
	  </attr>
	  <attr><attrlabl>d</attrlabl><attrdefs>S</attrdefs><attrv>2</attrv></attr>
	</detailed></eainfo></geospatial></data></LEADresource>`
	id := ingest(t, s, xml)
	resp, err := s.Fetch([]int64{id})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := xmldoc.ParseString(xml)
	got, err := xmldoc.ParseString(resp[0].XML)
	if err != nil {
		t.Fatal(err)
	}
	if !xmldoc.Equal(want, got) {
		t.Errorf("recursive round trip: %s", xmldoc.Diff(want, got))
	}
}

func TestDynamicDepthQueryJoinsPerLevel(t *testing.T) {
	s := newStore(t)
	ingest(t, s, xmlschema.Figure3Document)
	q := &catalog.Query{}
	g := q.Attr("grid", "ARPS")
	sub := &catalog.AttrCriteria{Name: "grid-stretching", Source: "ARPS"}
	sub.AddElem("dzmin", "ARPS", relstore.OpEq, relstore.Int(100))
	g.AddSub(sub)
	ids, err := s.Evaluate(q)
	if err != nil || len(ids) != 1 {
		t.Fatalf("nested = %v, %v", ids, err)
	}
	// Wrong nested value.
	sub.Elems[0].Value = relstore.Int(999)
	if ids, _ := s.Evaluate(q); len(ids) != 0 {
		t.Fatalf("wrong nested value matched: %v", ids)
	}
}

func TestIngestRejectsWrongRoot(t *testing.T) {
	s := newStore(t)
	if _, err := s.Ingest("u", xmldoc.NewNode("other")); err == nil {
		t.Error("wrong root should fail")
	}
}

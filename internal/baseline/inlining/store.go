package inlining

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// Store is a shared-inlining document store.
type Store struct {
	Schema *xmlschema.Schema
	DB     *relstore.Database

	frags  []*fragment
	byName map[string]*fragment
	root   *fragment

	mu     sync.Mutex
	nextID int64 // doc IDs
	fragID int64 // fragment row IDs, global
}

// New derives the fragment tables from the schema and creates them with
// per-column B-tree indexes (string and numeric shadow).
func New(schema *xmlschema.Schema) (*Store, error) {
	s := &Store{
		Schema: schema,
		DB:     relstore.NewDatabase(),
		byName: make(map[string]*fragment),
	}
	s.frags = buildFragments(buildPhysical(schema.Root))
	s.root = s.frags[0]
	for _, f := range s.frags {
		s.byName[f.name] = f
		cols := []relstore.Column{
			{Name: "doc_id", Type: relstore.KInt, NotNull: true},
			{Name: "frag_id", Type: relstore.KInt, NotNull: true},
			{Name: "parent_table", Type: relstore.KString},
			{Name: "parent_id", Type: relstore.KInt},
			{Name: "ord", Type: relstore.KInt, NotNull: true},
		}
		for _, key := range f.colOrder {
			base := colName(key)
			cols = append(cols,
				relstore.Column{Name: base, Type: relstore.KString},
				relstore.Column{Name: base + "__n", Type: relstore.KFloat},
			)
		}
		t, err := s.DB.CreateTable(f.name, cols...)
		if err != nil {
			return nil, err
		}
		if _, err := t.CreateIndex(f.name+"_pk", relstore.BTreeIndex, true, "frag_id"); err != nil {
			return nil, err
		}
		if _, err := t.CreateIndex(f.name+"_by_doc", relstore.HashIndex, false, "doc_id"); err != nil {
			return nil, err
		}
		if _, err := t.CreateIndex(f.name+"_by_parent", relstore.HashIndex, false, "parent_table", "parent_id"); err != nil {
			return nil, err
		}
		for _, key := range f.colOrder {
			base := colName(key)
			if _, err := t.CreateIndex(f.name+"_ix_"+base, relstore.BTreeIndex, false, base); err != nil {
				return nil, err
			}
			if _, err := t.CreateIndex(f.name+"_ixn_"+base, relstore.BTreeIndex, false, base+"__n"); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

func colName(relPath string) string {
	return strings.NewReplacer("/", "_", "-", "_").Replace(relPath)
}

// Name implements baseline.Store.
func (s *Store) Name() string { return "inlining" }

// FragmentNames lists the derived fragment tables (benchmark reporting:
// the paper's point is how many fragments the dynamic region forces).
func (s *Store) FragmentNames() []string {
	out := make([]string, len(s.frags))
	for i, f := range s.frags {
		out[i] = f.name
	}
	return out
}

// Ingest implements baseline.Store: the document shreds losslessly into
// the fragment tables, with per-document sibling order in ord.
func (s *Store) Ingest(owner string, doc *xmldoc.Node) (int64, error) {
	_ = owner
	if doc.Tag != s.Schema.Root.Tag {
		return 0, fmt.Errorf("inlining: root <%s> does not match schema", doc.Tag)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	docID := s.nextID
	if err := s.insertFragment(s.root, docID, "", 0, 0, doc); err != nil {
		return 0, err
	}
	return docID, nil
}

// insertFragment stores one instance of fragment f rooted at docNode.
func (s *Store) insertFragment(f *fragment, docID int64, parentTable string, parentID int64, ord int, docNode *xmldoc.Node) error {
	s.fragID++
	id := s.fragID
	t := s.DB.MustTable(f.name)
	row := make(relstore.Row, len(t.Schema.Columns))
	row[cDocID] = relstore.Int(docID)
	row[cFragID] = relstore.Int(id)
	row[cOrd] = relstore.Int(int64(ord))
	if parentTable != "" {
		row[cParentTable] = relstore.Str(parentTable)
		row[cParentID] = relstore.Int(parentID)
	}
	if f.valueFrag {
		setValue(row, cFirstData, docNode.Text)
	} else {
		// Inlined leaf columns: resolve each relative path.
		for _, key := range f.colOrder {
			if leaf := resolvePath(docNode, strings.Split(key, "/")); leaf != nil {
				setValue(row, f.cols[key], leaf.Text)
			}
		}
	}
	if _, err := t.Insert(row); err != nil {
		return err
	}
	// Child fragments: all instances at their relative paths, in sibling
	// order.
	for i, child := range f.children {
		rel := strings.Split(f.childPath[i], "/")
		for j, inst := range resolveAll(docNode, rel) {
			if err := s.insertFragment(child, docID, f.name, id, j, inst); err != nil {
				return err
			}
		}
	}
	return nil
}

func setValue(row relstore.Row, pos int, text string) {
	row[pos] = relstore.Str(text)
	if fl, err := strconv.ParseFloat(strings.TrimSpace(text), 64); err == nil {
		row[pos+1] = relstore.Float(fl)
	}
}

// resolvePath returns the first node at the relative path below n.
func resolvePath(n *xmldoc.Node, path []string) *xmldoc.Node {
	cur := n
	for _, tag := range path {
		cur = cur.Child(tag)
		if cur == nil {
			return nil
		}
	}
	return cur
}

// resolveAll returns every node at the relative path, in document order.
func resolveAll(n *xmldoc.Node, path []string) []*xmldoc.Node {
	cur := []*xmldoc.Node{n}
	for _, tag := range path {
		var next []*xmldoc.Node
		for _, c := range cur {
			next = append(next, c.ChildrenByTag(tag)...)
		}
		cur = next
	}
	return cur
}

// instance identifies one fragment row during query evaluation. For
// attributes inlined into a larger fragment, prefix carries the relative
// path from the fragment root to the attribute element.
type instance struct {
	frag    *fragment
	fragID  int64
	docID   int64
	prefix  string
	dynamic bool
}

// Evaluate implements baseline.Store: structural criteria resolve to
// fragment columns or child value fragments; dynamic criteria walk the
// recursive node fragment with one join per level.
func (s *Store) Evaluate(q *catalog.Query) ([]int64, error) {
	if len(q.Attrs) == 0 {
		return nil, fmt.Errorf("inlining: empty query")
	}
	docs := map[int64]int{}
	for _, crit := range q.Attrs {
		insts, err := s.satisfying(crit, nil)
		if err != nil {
			return nil, err
		}
		seen := map[int64]bool{}
		for _, in := range insts {
			if !seen[in.docID] {
				seen[in.docID] = true
				docs[in.docID]++
			}
		}
	}
	var out []int64
	for d, n := range docs {
		if n == len(q.Attrs) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// locateStructural finds the fragment and in-fragment prefix of a
// structural attribute tag.
func (s *Store) locateStructural(tag string) (f *fragment, prefix string, ok bool) {
	decl := s.Schema.AttributeByTag(tag)
	if decl == nil || decl.IsDynamic {
		return nil, "", false
	}
	// Absolute path below the root element.
	var path []string
	for n := decl; n.Parent != nil; n = n.Parent {
		path = append([]string{n.Tag}, path...)
	}
	f = s.root
	for {
		// Does a child fragment's path prefix the remaining path?
		advanced := false
		for i, childPath := range f.childPath {
			cp := strings.Split(childPath, "/")
			if len(cp) <= len(path) && strings.Join(path[:len(cp)], "/") == childPath {
				f = f.children[i]
				path = path[len(cp):]
				advanced = true
				break
			}
		}
		if !advanced {
			return f, strings.Join(path, "/"), true
		}
		if len(path) == 0 {
			return f, "", true
		}
	}
}

// satisfying returns the instances satisfying one criteria node. parents
// scopes the search below given instances (nil = whole store).
func (s *Store) satisfying(crit *catalog.AttrCriteria, parents []instance) ([]instance, error) {
	var cands []instance
	if parents == nil {
		if f, prefix, ok := s.locateStructural(crit.Name); ok && crit.Source == "" {
			t := s.DB.MustTable(f.name)
			t.Scan(func(_ int64, r relstore.Row) bool {
				in := instance{frag: f, fragID: r[cFragID].I, docID: r[cDocID].I, prefix: prefix}
				// An attribute inlined into a wider fragment is present
				// only when data exists under its prefix (optional
				// sections leave the columns NULL).
				if prefix == "" || s.present(in, r) {
					cands = append(cands, in)
				}
				return true
			})
		} else {
			found, err := s.dynamicTops(crit)
			if err != nil {
				return nil, err
			}
			cands = found
		}
	} else {
		// Sub-attribute below parents.
		found, err := s.subCandidates(crit, parents)
		if err != nil {
			return nil, err
		}
		cands = found
	}
	var out []instance
	for _, c := range cands {
		ok := true
		for _, p := range crit.Elems {
			holds, err := s.elemHolds(c, p, c.dynamic)
			if err != nil {
				return nil, err
			}
			if !holds {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, sub := range crit.Subs {
			subs, err := s.satisfying(sub, []instance{c})
			if err != nil {
				return nil, err
			}
			if len(subs) == 0 {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out, nil
}

// dynamicFragments returns the container fragment and its recursive node
// fragment.
func (s *Store) dynamicFragments() (container, node *fragment, spec xmlschema.DynamicSpec, err error) {
	for _, a := range s.Schema.Attributes {
		if !a.IsDynamic {
			continue
		}
		spec = a.Dynamic
		f, _, okk := func() (*fragment, string, bool) {
			// The container fragment is the one whose node tag matches.
			for _, fr := range s.frags {
				if fr.node.tag == a.Tag {
					return fr, "", true
				}
			}
			return nil, "", false
		}()
		if !okk {
			return nil, nil, spec, fmt.Errorf("inlining: no fragment for dynamic container %s", a.Tag)
		}
		for _, child := range f.children {
			if child.recursive {
				return f, child, spec, nil
			}
		}
		return nil, nil, spec, fmt.Errorf("inlining: dynamic container %s has no recursive fragment", a.Tag)
	}
	return nil, nil, spec, fmt.Errorf("inlining: schema has no dynamic container")
}

// dynamicTops finds container rows whose entity identity matches.
func (s *Store) dynamicTops(crit *catalog.AttrCriteria) ([]instance, error) {
	container, _, spec, err := s.dynamicFragments()
	if err != nil {
		return nil, err
	}
	t := s.DB.MustTable(container.name)
	nameCol := colName(spec.EntityTag + "/" + spec.NameTag)
	ids, err := t.LookupEqual(container.name+"_ix_"+nameCol, relstore.Str(crit.Name))
	if err != nil {
		return nil, err
	}
	srcPos, okSrc := container.cols[spec.EntityTag+"/"+spec.SourceTag]
	var out []instance
	for _, rid := range ids {
		r := t.Get(rid)
		if r == nil {
			continue
		}
		if okSrc && r[srcPos].AsString() != crit.Source {
			continue
		}
		out = append(out, instance{frag: container, fragID: r[cFragID].I, docID: r[cDocID].I, dynamic: true})
	}
	return out, nil
}

// subCandidates finds sub-attribute instances below parents: dynamic node
// rows (any depth, one join per level) when the parent is dynamic, or
// structural inlined prefixes otherwise.
func (s *Store) subCandidates(crit *catalog.AttrCriteria, parents []instance) ([]instance, error) {
	var out []instance
	var dynParents, structParents []instance
	for _, p := range parents {
		if p.dynamic {
			dynParents = append(dynParents, p)
		} else {
			structParents = append(structParents, p)
		}
	}
	if len(dynParents) > 0 {
		_, nodeFrag, spec, err := s.dynamicFragments()
		if err != nil {
			return nil, err
		}
		t := s.DB.MustTable(nodeFrag.name)
		namePos := nodeFrag.cols[spec.NodeNameTag]
		srcPos := nodeFrag.cols[spec.NodeSourceTag]
		frontier := dynParents
		for len(frontier) > 0 {
			var next []instance
			for _, p := range frontier {
				ids, err := t.LookupEqual(nodeFrag.name+"_by_parent", relstore.Str(p.frag.name), relstore.Int(p.fragID))
				if err != nil {
					return nil, err
				}
				for _, rid := range ids {
					r := t.Get(rid)
					if r == nil {
						continue
					}
					child := instance{frag: nodeFrag, fragID: r[cFragID].I, docID: r[cDocID].I, dynamic: true}
					if r[namePos].AsString() == crit.Name && r[srcPos].AsString() == crit.Source && s.hasNodeChildren(nodeFrag, child) {
						out = append(out, child)
					}
					next = append(next, child)
				}
			}
			frontier = next
		}
	}
	// Structural sub-attribute: a deeper inlined prefix of the same
	// fragment row (single-occurrence interiors inline with their
	// parent).
	if crit.Source == "" {
		for _, p := range structParents {
			prefix := crit.Name
			if p.prefix != "" {
				prefix = p.prefix + "/" + crit.Name
			}
			// The prefix must exist in the schema and carry data in this
			// row.
			in := instance{frag: p.frag, fragID: p.fragID, docID: p.docID, prefix: prefix}
			if s.prefixExists(p.frag, prefix) && s.present(in, nil) {
				out = append(out, in)
			}
		}
	}
	return out, nil
}

// present reports whether the instance's inlined prefix carries any data:
// a non-NULL column under the prefix or a child-fragment row anchored
// below it. row may be pre-fetched or nil.
func (s *Store) present(in instance, row relstore.Row) bool {
	if row == nil {
		row = s.rowByFragID(in.frag, in.fragID)
		if row == nil {
			return false
		}
	}
	pre := in.prefix + "/"
	for _, key := range in.frag.colOrder {
		if strings.HasPrefix(key, pre) && !row[in.frag.cols[key]].IsNull() {
			return true
		}
	}
	for i, cp := range in.frag.childPath {
		if !strings.HasPrefix(cp, pre) {
			continue
		}
		child := in.frag.children[i]
		ct := s.DB.MustTable(child.name)
		ids, _ := ct.LookupEqual(child.name+"_by_parent", relstore.Str(in.frag.name), relstore.Int(in.fragID))
		if len(ids) > 0 {
			return true
		}
	}
	return false
}

func (s *Store) prefixExists(f *fragment, prefix string) bool {
	pre := prefix + "/"
	for _, key := range f.colOrder {
		if strings.HasPrefix(key, pre) {
			return true
		}
	}
	for _, cp := range f.childPath {
		if strings.HasPrefix(cp, pre) {
			return true
		}
	}
	return false
}

func (s *Store) hasNodeChildren(nodeFrag *fragment, in instance) bool {
	t := s.DB.MustTable(nodeFrag.name)
	ids, _ := t.LookupEqual(nodeFrag.name+"_by_parent", relstore.Str(nodeFrag.name), relstore.Int(in.fragID))
	return len(ids) > 0
}

// elemHolds applies one element predicate to an instance.
func (s *Store) elemHolds(in instance, p catalog.ElemPred, dynamic bool) (bool, error) {
	if dynamic {
		_, nodeFrag, spec, err := s.dynamicFragments()
		if err != nil {
			return false, err
		}
		t := s.DB.MustTable(nodeFrag.name)
		ids, err := t.LookupEqual(nodeFrag.name+"_by_parent", relstore.Str(in.frag.name), relstore.Int(in.fragID))
		if err != nil {
			return false, err
		}
		namePos := nodeFrag.cols[spec.NodeNameTag]
		srcPos := nodeFrag.cols[spec.NodeSourceTag]
		valPos := nodeFrag.cols[spec.ValueTag]
		for _, rid := range ids {
			r := t.Get(rid)
			if r == nil || r[namePos].AsString() != p.Name || r[srcPos].AsString() != p.Source {
				continue
			}
			if predOnValue(r[valPos], r[valPos+1], p) {
				return true, nil
			}
		}
		return false, nil
	}
	key := p.Name
	if in.prefix != "" {
		key = in.prefix + "/" + p.Name
	}
	if pos, ok := in.frag.cols[key]; ok {
		r := s.rowByFragID(in.frag, in.fragID)
		if r == nil {
			return false, nil
		}
		return predOnValue(r[pos], r[pos+1], p), nil
	}
	// A repeating leaf lives in a child value fragment.
	for i, cp := range in.frag.childPath {
		if cp != key || !in.frag.children[i].valueFrag {
			continue
		}
		child := in.frag.children[i]
		ct := s.DB.MustTable(child.name)
		ids, err := ct.LookupEqual(child.name+"_by_parent", relstore.Str(in.frag.name), relstore.Int(in.fragID))
		if err != nil {
			return false, err
		}
		for _, rid := range ids {
			r := ct.Get(rid)
			if r != nil && predOnValue(r[cFirstData], r[cFirstData+1], p) {
				return true, nil
			}
		}
		return false, nil
	}
	return false, nil
}

func (s *Store) rowByFragID(f *fragment, fragID int64) relstore.Row {
	t := s.DB.MustTable(f.name)
	ids, _ := t.LookupEqual(f.name+"_pk", relstore.Int(fragID))
	for _, rid := range ids {
		if r := t.Get(rid); r != nil {
			return r
		}
	}
	return nil
}

func predOnValue(sval, nval relstore.Value, p catalog.ElemPred) bool {
	if sval.IsNull() {
		return false
	}
	if len(p.OneOf) > 0 {
		for _, v := range p.OneOf {
			single := p
			single.OneOf = nil
			single.Value = v
			if predOnValue(sval, nval, single) {
				return true
			}
		}
		return false
	}
	if p.Value.K == relstore.KInt || p.Value.K == relstore.KFloat {
		if nval.IsNull() {
			return false
		}
		f, _ := p.Value.AsFloat()
		return p.Op.Holds(relstore.Float(nval.F), relstore.Float(f))
	}
	return p.Op.Holds(relstore.Str(sval.AsString()), relstore.Str(p.Value.AsString()))
}

// Fetch implements baseline.Store: documents are reconstructed by
// re-joining the fragments in schema order with per-document sibling
// order.
func (s *Store) Fetch(ids []int64) ([]catalog.Response, error) {
	var out []catalog.Response
	for _, docID := range ids {
		t := s.DB.MustTable(s.root.name)
		rowIDs, err := t.LookupEqual(s.root.name+"_by_doc", relstore.Int(docID))
		if err != nil {
			return nil, err
		}
		if len(rowIDs) == 0 {
			continue
		}
		r := t.Get(rowIDs[0])
		node, err := s.reconstruct(s.root, r, docID)
		if err != nil {
			return nil, err
		}
		out = append(out, catalog.Response{ObjectID: docID, XML: node.String()})
	}
	return out, nil
}

// reconstruct rebuilds the subtree for one fragment row by walking the
// physical schema tree, so inlined leaves and child-fragment instances
// interleave in schema order; per-document sibling order of repeated
// instances comes from the ord column.
func (s *Store) reconstruct(f *fragment, row relstore.Row, docID int64) (*xmldoc.Node, error) {
	root := xmldoc.NewNode(f.node.tag)
	if f.valueFrag {
		root.Text = row[cFirstData].AsString()
		return root, nil
	}
	if err := s.fillNode(f, row, f.node, root, nil); err != nil {
		return nil, err
	}
	if f.node.selfRec {
		if err := s.appendFragmentRows(f, row, f.node.tag, root); err != nil {
			return nil, err
		}
	}
	return root, nil
}

// fillNode emits the children of physical node pn into element el. rel is
// the path from the fragment root to pn.
func (s *Store) fillNode(f *fragment, row relstore.Row, pn *physNode, el *xmldoc.Node, rel []string) error {
	for _, c := range pn.children {
		crel := append(append([]string{}, rel...), c.tag)
		key := strings.Join(crel, "/")
		switch {
		case c.selfRec || c.repeats:
			if err := s.appendFragmentRows(f, row, key, el); err != nil {
				return err
			}
		case c.leaf():
			if pos, ok := f.cols[key]; ok && !row[pos].IsNull() {
				el.Append(xmldoc.NewLeaf(c.tag, row[pos].S))
			}
		default:
			childEl := xmldoc.NewNode(c.tag)
			if err := s.fillNode(f, row, c, childEl, crel); err != nil {
				return err
			}
			// Absent optional sections leave no children; skip them.
			if len(childEl.Children) > 0 {
				el.Append(childEl)
			}
		}
	}
	return nil
}

// appendFragmentRows appends the instances of the child fragment at the
// given relative path, in per-document sibling order.
func (s *Store) appendFragmentRows(f *fragment, row relstore.Row, key string, el *xmldoc.Node) error {
	idx := -1
	for i, cp := range f.childPath {
		if cp == key {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	child := f.children[idx]
	ct := s.DB.MustTable(child.name)
	ids, err := ct.LookupEqual(child.name+"_by_parent", relstore.Str(f.name), relstore.Int(row[cFragID].I))
	if err != nil {
		return err
	}
	rows := make([]relstore.Row, 0, len(ids))
	for _, rid := range ids {
		if r := ct.Get(rid); r != nil {
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a][cOrd].I < rows[b][cOrd].I })
	for _, cr := range rows {
		sub, err := s.reconstruct(child, cr, row[cDocID].I)
		if err != nil {
			return err
		}
		el.Append(sub)
	}
	return nil
}

// StorageBytes implements baseline.Store.
func (s *Store) StorageBytes() int64 { return s.DB.StorageBytes() }

package baseline_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/gridmeta/hybridcat/internal/baseline"
	"github.com/gridmeta/hybridcat/internal/baseline/clobonly"
	"github.com/gridmeta/hybridcat/internal/baseline/edgetable"
	"github.com/gridmeta/hybridcat/internal/baseline/inlining"
	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/nativexml"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// randSchema generates a random annotated schema satisfying the §2
// partitioning rules, plus the dynamic definitions to register (when the
// schema includes a dynamic container).
type randSchema struct {
	schema   *xmlschema.Schema
	attrs    []*xmlschema.Node // structural attribute decls
	dynamic  bool
	dynDefs  []dynDef
	valPool  []string
	numPool  []int
	rng      *rand.Rand
	tagCount int
}

type dynDef struct {
	name, source string
	elems        []string
	sub          string // one nested sub-attribute name ("" = none)
	subElems     []string
}

func newRandSchema(seed int64) (*randSchema, error) {
	rs := &randSchema{
		rng:     rand.New(rand.NewSource(seed)),
		valPool: []string{"alpha", "beta", "gamma", "delta", "omega"},
		numPool: []int{10, 20, 30, 40},
	}
	s, root := xmlschema.New(fmt.Sprintf("rand%d", seed), rs.tag("root"))
	// 1-3 sections, each with 1-3 attributes.
	sections := 1 + rs.rng.Intn(3)
	for i := 0; i < sections; i++ {
		section := root.Add(rs.tag("sec"))
		nAttrs := 1 + rs.rng.Intn(3)
		for j := 0; j < nAttrs; j++ {
			attr := section.Add(rs.tag("att")).Attribute()
			if rs.rng.Intn(3) == 0 {
				attr.Repeat()
			}
			nElems := 1 + rs.rng.Intn(3)
			for k := 0; k < nElems; k++ {
				leaf := attr.Add(rs.tag("el"))
				if rs.rng.Intn(4) == 0 {
					leaf.Repeat()
				}
			}
			if rs.rng.Intn(2) == 0 {
				sub := attr.Add(rs.tag("sub"))
				for k := 0; k < 1+rs.rng.Intn(2); k++ {
					sub.Add(rs.tag("sel"))
				}
			}
			rs.attrs = append(rs.attrs, attr)
		}
	}
	// Optionally a dynamic container with two definitions.
	if rs.rng.Intn(2) == 0 {
		rs.dynamic = true
		root.Add(rs.tag("dynsec")).Add("detailed").Repeat().DynamicContainer(xmlschema.FGDCDynamicSpec)
		for d := 0; d < 2; d++ {
			def := dynDef{
				name:   fmt.Sprintf("model%d", d),
				source: []string{"ARPS", "WRF"}[d%2],
				elems:  []string{"p0", "p1"},
			}
			if rs.rng.Intn(2) == 0 {
				def.sub = "nested"
				def.subElems = []string{"q0"}
			}
			rs.dynDefs = append(rs.dynDefs, def)
		}
	}
	if err := s.Finalize(); err != nil {
		return nil, err
	}
	rs.schema = s
	return rs, nil
}

func (rs *randSchema) tag(prefix string) string {
	rs.tagCount++
	return fmt.Sprintf("%s%02d", prefix, rs.tagCount)
}

func (rs *randSchema) value() string {
	if rs.rng.Intn(2) == 0 {
		return rs.valPool[rs.rng.Intn(len(rs.valPool))]
	}
	return fmt.Sprint(rs.numPool[rs.rng.Intn(len(rs.numPool))])
}

// document generates one random conforming document. Interior sections
// that would be empty are pruned: the hybrid design reconstructs
// documents from attribute CLOBs plus required ancestors, so an interior
// element with no attribute content leaves no trace (and carries no
// metadata).
func (rs *randSchema) document() *xmldoc.Node {
	var build func(decl *xmlschema.Node) *xmldoc.Node
	build = func(decl *xmlschema.Node) *xmldoc.Node {
		n := xmldoc.NewNode(decl.Tag)
		if decl.IsDynamic {
			// Pick a registered definition.
			def := rs.dynDefs[rs.rng.Intn(len(rs.dynDefs))]
			ent := xmldoc.NewNode("enttyp")
			ent.Append(xmldoc.NewLeaf("enttypl", def.name), xmldoc.NewLeaf("enttypds", def.source))
			n.Append(ent)
			for _, e := range def.elems {
				if rs.rng.Intn(4) == 0 {
					continue
				}
				a := xmldoc.NewNode("attr")
				a.Append(xmldoc.NewLeaf("attrlabl", e),
					xmldoc.NewLeaf("attrdefs", def.source),
					xmldoc.NewLeaf("attrv", rs.value()))
				n.Append(a)
			}
			if def.sub != "" && rs.rng.Intn(2) == 0 {
				sub := xmldoc.NewNode("attr")
				sub.Append(xmldoc.NewLeaf("attrlabl", def.sub), xmldoc.NewLeaf("attrdefs", def.source))
				for _, e := range def.subElems {
					a := xmldoc.NewNode("attr")
					a.Append(xmldoc.NewLeaf("attrlabl", e),
						xmldoc.NewLeaf("attrdefs", def.source),
						xmldoc.NewLeaf("attrv", rs.value()))
					sub.Append(a)
				}
				n.Append(sub)
			}
			return n
		}
		for _, c := range decl.Children {
			if len(c.Children) == 0 && !c.IsAttribute && !c.IsDynamic {
				// Leaf element: include with 80% probability, repeat when
				// allowed.
				count := 0
				if rs.rng.Intn(5) != 0 {
					count = 1
					if c.Repeats && rs.rng.Intn(2) == 0 {
						count = 2
					}
				}
				for i := 0; i < count; i++ {
					n.Append(xmldoc.NewLeaf(c.Tag, rs.value()))
				}
				continue
			}
			count := 1
			if c.IsAttribute || c.IsDynamic {
				if rs.rng.Intn(5) == 0 {
					count = 0 // optional attribute absent
				} else if c.Repeats && rs.rng.Intn(2) == 0 {
					count = 2
				}
			}
			for i := 0; i < count; i++ {
				if sub := build(c); sub != nil {
					n.Append(sub)
				}
			}
		}
		if decl.Parent != nil && len(n.Children) == 0 && n.Text == "" {
			// Prune empty instances: an empty interior or attribute
			// carries no metadata, and the inlining baseline cannot even
			// represent present-but-empty for inlined sections.
			return nil
		}
		return n
	}
	doc := build(rs.schema.Root)
	if doc == nil {
		doc = xmldoc.NewNode(rs.schema.Root.Tag)
	}
	return doc
}

// query generates a random query against the schema.
func (rs *randSchema) query() *catalog.Query {
	q := &catalog.Query{}
	nTop := 1 + rs.rng.Intn(2)
	for i := 0; i < nTop; i++ {
		if rs.dynamic && rs.rng.Intn(3) == 0 {
			def := rs.dynDefs[rs.rng.Intn(len(rs.dynDefs))]
			crit := q.Attr(def.name, def.source)
			if rs.rng.Intn(2) == 0 {
				crit.AddElem(def.elems[rs.rng.Intn(len(def.elems))], def.source, rs.op(), rs.queryValue())
			}
			if def.sub != "" && rs.rng.Intn(2) == 0 {
				sub := &catalog.AttrCriteria{Name: def.sub, Source: def.source}
				if rs.rng.Intn(2) == 0 {
					sub.AddElem(def.subElems[0], def.source, rs.op(), rs.queryValue())
				}
				crit.AddSub(sub)
			}
			continue
		}
		decl := rs.attrs[rs.rng.Intn(len(rs.attrs))]
		crit := q.Attr(decl.Tag, "")
		// Element predicates on the attribute's leaves.
		var leaves []*xmlschema.Node
		var subs []*xmlschema.Node
		for _, c := range decl.Children {
			if len(c.Children) == 0 {
				leaves = append(leaves, c)
			} else {
				subs = append(subs, c)
			}
		}
		if len(leaves) > 0 && rs.rng.Intn(3) != 0 {
			crit.AddElem(leaves[rs.rng.Intn(len(leaves))].Tag, "", rs.op(), rs.queryValue())
		}
		if len(subs) > 0 && rs.rng.Intn(3) == 0 {
			sub := &catalog.AttrCriteria{Name: subs[0].Tag}
			if rs.rng.Intn(2) == 0 {
				sub.AddElem(subs[0].Children[0].Tag, "", rs.op(), rs.queryValue())
			}
			crit.AddSub(sub)
		}
	}
	return q
}

func (rs *randSchema) op() relstore.CmpOp {
	return []relstore.CmpOp{relstore.OpEq, relstore.OpEq, relstore.OpGe, relstore.OpLe, relstore.OpNe}[rs.rng.Intn(5)]
}

func (rs *randSchema) queryValue() relstore.Value {
	if rs.rng.Intn(2) == 0 {
		return relstore.Str(rs.valPool[rs.rng.Intn(len(rs.valPool))])
	}
	return relstore.Int(int64(rs.numPool[rs.rng.Intn(len(rs.numPool))]))
}

// buildCatalog instantiates the hybrid catalog over the random schema
// and registers the dynamic definitions.
func (rs *randSchema) buildCatalog(opts catalog.Options) (*catalog.Catalog, error) {
	cat, err := catalog.Open(rs.schema, opts)
	if err != nil {
		return nil, err
	}
	for _, def := range rs.dynDefs {
		d, err := cat.RegisterAttr(def.name, def.source, 0, "")
		if err != nil {
			return nil, err
		}
		for _, e := range def.elems {
			if _, err := cat.RegisterElem(e, def.source, d.ID, core.DTString, ""); err != nil {
				return nil, err
			}
		}
		if def.sub != "" {
			sd, err := cat.RegisterAttr(def.sub, def.source, d.ID, "")
			if err != nil {
				return nil, err
			}
			for _, e := range def.subElems {
				if _, err := cat.RegisterElem(e, def.source, sd.ID, core.DTString, ""); err != nil {
					return nil, err
				}
			}
		}
	}
	return cat, nil
}

// buildAllStores instantiates every store over the random schema,
// registering the dynamic definitions on the hybrid catalog.
func (rs *randSchema) buildAllStores(t *testing.T) []baseline.Store {
	t.Helper()
	cat, err := rs.buildCatalog(catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inl, err := inlining.New(rs.schema)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := edgetable.New(rs.schema)
	if err != nil {
		t.Fatal(err)
	}
	clob, err := clobonly.New(rs.schema)
	if err != nil {
		t.Fatal(err)
	}
	return []baseline.Store{
		baseline.Adapter{C: cat}, inl, edge, clob, nativexml.New(rs.schema),
	}
}

// hasAttrContent reports whether the document carries at least one
// schema attribute instance; documents without one are rejected by the
// hybrid shredder.
func (rs *randSchema) hasAttrContent(doc *xmldoc.Node) bool {
	found := false
	doc.Walk(func(n *xmldoc.Node) bool {
		if d := rs.schema.AttributeByTag(n.Tag); d != nil {
			found = true
			return false
		}
		return true
	})
	return found
}

// FuzzConcurrentIngestEvaluate interleaves a writer — ingesting random
// conforming documents as "alice" and publishing a byte-selected subset
// — with concurrent Figure-4 evaluations on the forced-parallel read
// path. The invariants are the privacy and progress guarantees the
// reader/writer lock split must preserve under race: no evaluation
// panics or errors, a superuser evaluation never reports an object ID
// that no ingest could have produced yet, and an evaluation by a
// stranger who owns nothing only ever reports objects whose publication
// had already been initiated.
func FuzzConcurrentIngestEvaluate(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(int64(3), []byte{0xff, 0x00, 0x81, 0x42, 0x10, 0x3c})
	f.Add(int64(7), []byte("publish everything"))
	f.Add(int64(11), []byte{1})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) == 0 {
			t.Skip("no operations")
		}
		if len(ops) > 24 {
			ops = ops[:24]
		}
		rs, err := newRandSchema(seed)
		if err != nil {
			t.Skip("degenerate schema")
		}
		cat, err := rs.buildCatalog(catalog.Options{QueryWorkers: 4, ParallelRowThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}

		// Pre-generate documents and queries: rs.rng is not safe for
		// concurrent use, so all randomness happens before the race.
		var docs []*xmldoc.Node
		var queries []*catalog.Query
		for attempts := 0; len(docs) < len(ops) && attempts < 50*len(ops); attempts++ {
			if doc := rs.document(); rs.hasAttrContent(doc) {
				docs = append(docs, doc)
			}
		}
		if len(docs) == 0 {
			t.Skip("schema generates no shreddable documents")
		}
		for i := 0; i < len(ops); i++ {
			queries = append(queries, rs.query())
		}
		// Per-goroutine query copies: Owner differs and the shared
		// criteria trees are read-only during evaluation.
		super := make([]*catalog.Query, len(queries))
		stranger := make([]*catalog.Query, len(queries))
		for i, q := range queries {
			sq, xq := *q, *q
			sq.Owner, xq.Owner = "", "mallory"
			super[i], stranger[i] = &sq, &xq
		}

		var (
			started    atomic.Int64 // upper bound on assigned object IDs
			pubMu      sync.Mutex
			publishing = map[int64]bool{} // marked before SetPublished commits
		)
		done := make(chan struct{})
		var wwg sync.WaitGroup
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			defer close(done)
			for i, b := range ops {
				started.Add(1)
				id, err := cat.Ingest("alice", docs[i%len(docs)].Clone())
				if err != nil {
					t.Errorf("ingest %d: %v", i, err)
					return
				}
				if b&1 == 1 {
					pubMu.Lock()
					publishing[id] = true
					pubMu.Unlock()
					if err := cat.SetPublished(id, true); err != nil {
						t.Errorf("publish %d: %v", id, err)
						return
					}
				}
			}
		}()

		var rwg sync.WaitGroup
		for r := 0; r < 2; r++ {
			rwg.Add(1)
			go func(r int) {
				defer rwg.Done()
				for i := 0; ; i++ {
					select {
					case <-done:
						return
					default:
					}
					q := super[(i+r)%len(super)]
					ids, err := cat.Evaluate(q)
					if err != nil {
						t.Errorf("reader %d: superuser evaluate: %v", r, err)
						return
					}
					bound := started.Load()
					for _, id := range ids {
						if id < 1 || id > bound {
							t.Errorf("reader %d: result ID %d outside any started ingest (bound %d)", r, id, bound)
							return
						}
					}
					xids, err := cat.Evaluate(stranger[(i+r)%len(stranger)])
					if err != nil {
						t.Errorf("reader %d: stranger evaluate: %v", r, err)
						return
					}
					pubMu.Lock()
					for _, id := range xids {
						if !publishing[id] {
							t.Errorf("reader %d: stranger saw unpublished object %d", r, id)
						}
					}
					pubMu.Unlock()
				}
			}(r)
		}
		rwg.Wait()
		wwg.Wait()
	})
}

// TestRandomSchemasAllStoresAgree is the repository's strongest
// correctness property: over randomly generated schemas, corpora, and
// query trees, every store must answer identically to the DOM oracle and
// every store must reproduce the ingested documents.
func TestRandomSchemasAllStoresAgree(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 5
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rs, err := newRandSchema(seed)
			if err != nil {
				t.Fatalf("schema generation: %v", err)
			}
			stores := rs.buildAllStores(t)
			nDocs := 8 + rs.rng.Intn(8)
			docs := make([]*xmldoc.Node, 0, nDocs)
			for i := 0; i < nDocs; i++ {
				doc := rs.document()
				// Documents with no attribute content are rejected by the
				// hybrid shredder; regenerate those.
				hasClob := false
				doc.Walk(func(n *xmldoc.Node) bool {
					if d := rs.schema.AttributeByTag(n.Tag); d != nil {
						hasClob = true
						return false
					}
					return true
				})
				if !hasClob {
					i--
					continue
				}
				docs = append(docs, doc)
			}
			for _, st := range stores {
				for i, d := range docs {
					if _, err := st.Ingest("u", d.Clone()); err != nil {
						t.Fatalf("%s: ingest %d: %v\n%s", st.Name(), i, err, d.Pretty())
					}
				}
			}
			// Round trips.
			for _, st := range stores {
				for i, d := range docs {
					resp, err := st.Fetch([]int64{int64(i + 1)})
					if err != nil || len(resp) != 1 {
						t.Fatalf("%s: fetch %d: %v", st.Name(), i+1, err)
					}
					got, err := xmldoc.ParseString(resp[0].XML)
					if err != nil {
						t.Fatalf("%s: doc %d: %v", st.Name(), i+1, err)
					}
					if !xmldoc.Equal(d, got) {
						t.Fatalf("%s: doc %d round trip: %s\nwant:\n%s\ngot:\n%s",
							st.Name(), i+1, xmldoc.Diff(d, got), d.Pretty(), got.Pretty())
					}
				}
			}
			// Query agreement with the oracle.
			for qi := 0; qi < 12; qi++ {
				q := rs.query()
				var want []int64
				for i, d := range docs {
					if baseline.DocMatches(rs.schema, d, q) {
						want = append(want, int64(i+1))
					}
				}
				for _, st := range stores {
					got, err := st.Evaluate(q)
					if err != nil {
						t.Fatalf("%s: query %d: %v", st.Name(), qi, err)
					}
					if fmt.Sprint(got) != fmt.Sprint(want) {
						data, _ := catalog.MarshalQueryJSON(q)
						t.Fatalf("%s: query %d: got %v, oracle %v\nquery: %s",
							st.Name(), qi, got, want, data)
					}
				}
			}
		})
	}
}

package baseline_test

import (
	"fmt"
	"testing"

	"github.com/gridmeta/hybridcat/internal/baseline"
	"github.com/gridmeta/hybridcat/internal/baseline/clobonly"
	"github.com/gridmeta/hybridcat/internal/baseline/edgetable"
	"github.com/gridmeta/hybridcat/internal/baseline/inlining"
	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/nativexml"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
	"github.com/gridmeta/hybridcat/internal/xpath"
)

// newHybrid builds the hybrid catalog with the Figure 3 dynamic
// definitions.
func newHybrid(t *testing.T) *catalog.Catalog {
	t.Helper()
	c, err := catalog.Open(xmlschema.MustLEAD(), catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := c.RegisterAttr("grid", "ARPS", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []string{"dx", "dz"} {
		if _, err := c.RegisterElem(e, "ARPS", grid.ID, core.DTFloat, ""); err != nil {
			t.Fatal(err)
		}
	}
	gs, err := c.RegisterAttr("grid-stretching", "ARPS", grid.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []string{"dzmin", "reference-height"} {
		if _, err := c.RegisterElem(e, "ARPS", gs.ID, core.DTFloat, ""); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// allStores builds one of each store kind over the LEAD schema.
func allStores(t *testing.T) []baseline.Store {
	t.Helper()
	schema := xmlschema.MustLEAD()
	inl, err := inlining.New(schema)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := edgetable.New(schema)
	if err != nil {
		t.Fatal(err)
	}
	clob, err := clobonly.New(schema)
	if err != nil {
		t.Fatal(err)
	}
	native := nativexml.New(schema, "themekey", "attrlabl", "enttypl")
	return []baseline.Store{
		baseline.Adapter{C: newHybrid(t)},
		inl,
		edge,
		clob,
		native,
	}
}

// corpus builds a small varied corpus: Figure 3 plus dx variants, a
// structural-only document, and a multi-detailed document.
func corpus(t *testing.T) []*xmldoc.Node {
	t.Helper()
	var docs []*xmldoc.Node
	add := func(xml string) {
		doc, err := xmldoc.ParseString(xml)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, doc)
	}
	add(xmlschema.Figure3Document)
	for _, dx := range []string{"500", "2000"} {
		doc, _ := xmldoc.ParseString(xmlschema.Figure3Document)
		for _, a := range doc.FindAll("attr") {
			if a.ChildText("attrlabl") == "dx" {
				a.Child("attrv").Text = dx
			}
		}
		docs = append(docs, doc)
	}
	add(`<LEADresource><resourceID>struct-only</resourceID><data><idinfo>
	  <citation><origin>NWS</origin><pubdate>2006-05-01</pubdate><title>Radar composite</title></citation>
	  <status><progress>Complete</progress><update>None</update></status>
	  <keywords>
	    <theme><themekt>CF</themekt><themekey>radar_reflectivity</themekey></theme>
	    <place><placekt>GNS</placekt><placekey>Oklahoma</placekey><placekey>Kansas</placekey></place>
	  </keywords>
	  <accconst>none</accconst>
	</idinfo><geospatial><spdom>
	  <bounding><westbc>-103</westbc><eastbc>-94</eastbc><northbc>37</northbc><southbc>33</southbc></bounding>
	</spdom></geospatial></data></LEADresource>`)
	add(`<LEADresource><resourceID>multi</resourceID><data><geospatial><eainfo>
	  <detailed><enttyp><enttypl>grid</enttypl><enttypds>ARPS</enttypds></enttyp>
	    <attr><attrlabl>dx</attrlabl><attrdefs>ARPS</attrdefs><attrv>1000</attrv></attr></detailed>
	  <detailed><enttyp><enttypl>grid</enttypl><enttypds>ARPS</enttypds></enttyp>
	    <attr><attrlabl>dx</attrlabl><attrdefs>ARPS</attrdefs><attrv>3000</attrv></attr>
	    <attr><attrlabl>grid-stretching</attrlabl><attrdefs>ARPS</attrdefs>
	      <attr><attrlabl>dzmin</attrlabl><attrdefs>ARPS</attrdefs><attrv>50</attrv></attr></attr></detailed>
	</eainfo></geospatial></data></LEADresource>`)
	return docs
}

// queries returns the cross-store query suite with a human label each.
func queries() map[string]*catalog.Query {
	qs := map[string]*catalog.Query{}
	q := &catalog.Query{}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(1000))
	qs["dx=1000"] = q

	q = &catalog.Query{}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", relstore.OpGe, relstore.Int(1000))
	qs["dx>=1000"] = q

	q = &catalog.Query{}
	g := q.Attr("grid", "ARPS")
	g.AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(1000))
	st := &catalog.AttrCriteria{Name: "grid-stretching", Source: "ARPS"}
	st.AddElem("dzmin", "ARPS", relstore.OpEq, relstore.Int(100))
	g.AddSub(st)
	qs["paper-worked-query"] = q

	q = &catalog.Query{}
	q.Attr("theme", "").AddElem("themekey", "", relstore.OpEq, relstore.Str("radar_reflectivity"))
	qs["theme-radar"] = q

	q = &catalog.Query{}
	q.Attr("theme", "").AddElem("themekt", "", relstore.OpEq, relstore.Str("CF NetCDF")).
		AddElem("themekey", "", relstore.OpEq, relstore.Str("air_pressure_at_cloud_base"))
	qs["theme-same-instance"] = q

	q = &catalog.Query{}
	q.Attr("place", "").AddElem("placekey", "", relstore.OpEq, relstore.Str("Kansas"))
	qs["place-kansas"] = q

	q = &catalog.Query{}
	sp := q.Attr("spdom", "")
	b := &catalog.AttrCriteria{Name: "bounding"}
	b.AddElem("westbc", "", relstore.OpLe, relstore.Int(-100))
	sp.AddSub(b)
	qs["bounding-west"] = q

	q = &catalog.Query{}
	q.Attr("citation", "").AddElem("title", "", relstore.OpEq, relstore.Str("Radar composite"))
	qs["citation-title"] = q

	q = &catalog.Query{}
	q.Attr("grid", "ARPS")
	qs["grid-exists"] = q
	return qs
}

// TestCrossStoreQueryEquivalence ingests the same corpus into every store
// and requires identical query answers — the hybrid pipeline, the three
// relational baselines, and the native XML store must agree with the DOM
// oracle.
func TestCrossStoreQueryEquivalence(t *testing.T) {
	stores := allStores(t)
	docs := corpus(t)
	schema := xmlschema.MustLEAD()

	// IDs are assigned per store; all stores see the same order so IDs
	// align 1..n.
	for _, st := range stores {
		for i, d := range docs {
			id, err := st.Ingest("user", d.Clone())
			if err != nil {
				t.Fatalf("%s: ingest doc %d: %v", st.Name(), i, err)
			}
			if id != int64(i+1) {
				t.Fatalf("%s: doc %d got id %d", st.Name(), i, id)
			}
		}
	}

	for label, q := range queries() {
		// Oracle answer from the DOM evaluator.
		var want []int64
		for i, d := range docs {
			if baseline.DocMatches(schema, d, q) {
				want = append(want, int64(i+1))
			}
		}
		for _, st := range stores {
			got, err := st.Evaluate(q)
			if err != nil {
				t.Errorf("%s: %s: %v", st.Name(), label, err)
				continue
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("%s: %s: got %v, want %v", st.Name(), label, got, want)
			}
		}
		if want == nil {
			t.Errorf("query %s matches nothing; weak test", label)
		}
	}
}

// TestCrossStoreFetchRoundTrip requires every store to reproduce the
// ingested documents structurally.
func TestCrossStoreFetchRoundTrip(t *testing.T) {
	stores := allStores(t)
	docs := corpus(t)
	for _, st := range stores {
		for _, d := range docs {
			if _, err := st.Ingest("user", d.Clone()); err != nil {
				t.Fatalf("%s: %v", st.Name(), err)
			}
		}
		for i, d := range docs {
			resp, err := st.Fetch([]int64{int64(i + 1)})
			if err != nil {
				t.Fatalf("%s: fetch %d: %v", st.Name(), i+1, err)
			}
			if len(resp) != 1 {
				t.Fatalf("%s: fetch %d returned %d docs", st.Name(), i+1, len(resp))
			}
			got, err := xmldoc.ParseString(resp[0].XML)
			if err != nil {
				t.Fatalf("%s: doc %d not well-formed: %v", st.Name(), i+1, err)
			}
			if !xmldoc.Equal(d, got) {
				t.Errorf("%s: doc %d differs: %s", st.Name(), i+1, xmldoc.Diff(d, got))
			}
		}
	}
}

func TestStorageBytesPositiveAndOrdered(t *testing.T) {
	stores := allStores(t)
	docs := corpus(t)
	for _, st := range stores {
		for _, d := range docs {
			if _, err := st.Ingest("user", d.Clone()); err != nil {
				t.Fatal(err)
			}
		}
		if st.StorageBytes() <= 0 {
			t.Errorf("%s: StorageBytes = %d", st.Name(), st.StorageBytes())
		}
	}
}

func TestInliningFragmentation(t *testing.T) {
	inl, err := inlining.New(xmlschema.MustLEAD())
	if err != nil {
		t.Fatal(err)
	}
	frags := inl.FragmentNames()
	// The repeating keyword groups, their repeating keys, the dynamic
	// container and its recursive node each force a fragment.
	want := map[string]bool{"LEADresource": true, "theme": true, "themekey": true,
		"place": true, "stratum": true, "temporal": true, "detailed": true,
		"attr": true, "overview": true, "procstep": true}
	got := map[string]bool{}
	for _, f := range frags {
		got[f] = true
	}
	for w := range want {
		if !got[w] {
			t.Errorf("missing fragment %q in %v", w, frags)
		}
	}
	if len(frags) < len(want) {
		t.Errorf("fragments = %v", frags)
	}
}

func TestEdgeTableRowCounts(t *testing.T) {
	edge, err := edgetable.New(xmlschema.MustLEAD())
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmldoc.ParseString(xmlschema.Figure3Document)
	if _, err := edge.Ingest("u", doc); err != nil {
		t.Fatal(err)
	}
	// One edge row per element.
	if got, want := edge.DB.MustTable("edges").Len(), doc.CountNodes(); got != want {
		t.Errorf("edge rows = %d, want %d", got, want)
	}
}

func TestNativeXMLIndexAndPathQuery(t *testing.T) {
	schema := xmlschema.MustLEAD()
	st := nativexml.New(schema, "themekey")
	docs := corpus(t)
	for _, d := range docs {
		if _, err := st.Ingest("u", d); err != nil {
			t.Fatal(err)
		}
	}
	// Indexed equality narrows candidates but answers stay correct.
	q := &catalog.Query{}
	q.Attr("theme", "").AddElem("themekey", "", relstore.OpEq, relstore.Str("radar_reflectivity"))
	ids, err := st.Evaluate(q)
	if err != nil || len(ids) != 1 {
		t.Fatalf("indexed query = %v, %v", ids, err)
	}
	// XPath interface.
	hits := st.SelectPath(xpath.MustCompile("//attr[attrlabl='dx'][attrv=1000]"))
	if len(hits) != 2 { // Figure 3 doc and the multi-detailed doc
		t.Errorf("SelectPath hits = %v", hits)
	}
}

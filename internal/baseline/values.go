package baseline

import (
	"strconv"
	"strings"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/relstore"
)

// isNumericKind reports whether the predicate's value is a typed number
// (the hybrid catalog routes those through the nval column).
func isNumericKind(p catalog.ElemPred) bool {
	return p.Value.K == relstore.KInt || p.Value.K == relstore.KFloat
}

func parseFloat(s string) (float64, bool) {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	return f, err == nil
}

func floatVal(f float64) relstore.Value { return relstore.Float(f) }

func strVal(s string) relstore.Value { return relstore.Str(s) }

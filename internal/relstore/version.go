package relstore

import (
	"fmt"
	"maps"
	"slices"
	"sync/atomic"

	"github.com/gridmeta/hybridcat/internal/obs"
)

// This file holds the MVCC-lite machinery: immutable database versions
// published behind a single atomic pointer, the copy-on-write
// transaction builder that produces them, and the pinned snapshots
// readers run against.
//
// Version lifecycle: Database.current always points at one immutable
// dbVersion. A writer opens a Tx (serialized by Database.wmu), builds
// the next version off the current one with structural sharing — table
// map and per-table spines are cloned lazily, row pages and B-tree
// nodes are path-copied only when first written in the transaction —
// and Commit publishes it with one atomic store. Readers pin whatever
// version is current at query start and never take a lock; versions
// are reclaimed by the garbage collector once the last pinned snapshot
// referencing them is dropped, so there is no epoch-based reclamation
// protocol to get wrong.
//
// Epochs: every committed transaction's version carries epoch =
// previous epoch + 1, and Database.Generation reports the current
// epoch. The PR 2 generation-stamped caches therefore keep working
// unchanged: a cache entry stamped with the pinned epoch is valid
// exactly for that version's contents. Aborted transactions discard
// their builder outright (nothing they allocated is reachable from a
// published version), so their epoch is safely reused by the next
// transaction.

// pageSize is the number of row slots per copy-on-write page. 64 rows
// keeps the page array copy on first write small (~1.5KB of row
// headers) while bounding the per-transaction spine clone at
// rows/64 pointers.
const pageSize = 64

// rowPage is one fixed-size block of row slots. The epoch records which
// transaction allocated this copy: a transaction writing into a page
// from an older epoch first replaces it with a private copy.
type rowPage struct {
	epoch uint64
	rows  [pageSize]Row
}

// tableState is the identity of a table that is stable across versions:
// its schema, the monotonic auto-ID counter, and instrument handles.
// The auto-ID deliberately lives outside the versioned state — IDs
// handed out by an aborted transaction are simply skipped, exactly as
// the pre-MVCC rollback behaved.
type tableState struct {
	schema  *Schema
	autoID  atomic.Int64
	metrics atomic.Pointer[tableMetrics]
}

// tableMetrics bundles the per-table instrument handles (see
// Database.SetMetrics). Nil obs handles are no-ops, so a zero value is
// never stored — absence of metrics is a nil tableMetrics pointer.
type tableMetrics struct {
	reads   *obs.Counter // rows surfaced by Get and Scan
	writes  *obs.Counter // successful Insert/Update/Delete
	lookups *obs.Counter // index probes (LookupEqual/LookupRange calls)
}

func (st *tableState) countReads(n uint64) {
	if m := st.metrics.Load(); m != nil {
		m.reads.Add(n)
	}
}

func (st *tableState) countWrite() {
	if m := st.metrics.Load(); m != nil {
		m.writes.Inc()
	}
}

func (st *tableState) countLookup() {
	if m := st.metrics.Load(); m != nil {
		m.lookups.Inc()
	}
}

// tableVersion is the immutable per-version state of one table: paged
// row storage, the free list, and the secondary indexes. The epoch
// records which transaction built this copy, so a transaction clones
// the spine at most once per table.
type tableVersion struct {
	epoch   uint64
	state   *tableState
	pages   []*rowPage
	nrows   int64 // allocated row-ID space, including freed slots
	free    []int64
	live    int
	indexes map[string]*Index
}

// row returns the row stored under id in this version, or nil.
func (tv *tableVersion) row(id int64) Row {
	if id < 0 || id >= tv.nrows {
		return nil
	}
	return tv.pages[id/pageSize].rows[id%pageSize]
}

// scan visits every live row in row-ID order until fn returns false.
func (tv *tableVersion) scan(fn func(id int64, r Row) bool) {
	var visited uint64
	defer func() { tv.state.countReads(visited) }()
	for p, pg := range tv.pages {
		base := int64(p) * pageSize
		for s := range pg.rows {
			id := base + int64(s)
			if id >= tv.nrows {
				return
			}
			r := pg.rows[s]
			if r == nil {
				continue
			}
			visited++
			if !fn(id, r) {
				return
			}
		}
	}
}

// setRow stores r under id, allocating or copy-on-writing the page as
// needed. Only called from a transaction that owns this tableVersion.
func (tv *tableVersion) setRow(epoch uint64, id int64, r Row) {
	p := id / pageSize
	for p >= int64(len(tv.pages)) {
		tv.pages = append(tv.pages, &rowPage{epoch: epoch})
	}
	pg := tv.pages[p]
	if pg.epoch != epoch {
		c := &rowPage{epoch: epoch, rows: pg.rows}
		tv.pages[p] = c
		pg = c
	}
	pg.rows[id%pageSize] = r
}

// dbVersion is one immutable published state of the whole database.
type dbVersion struct {
	epoch  uint64
	tables map[string]*tableVersion
	temp   map[string]bool
}

// Tx is a write transaction: a private builder for the next database
// version. At most one Tx is open at a time (Begin blocks on the
// database's writer mutex); Commit publishes the built version with one
// atomic pointer swap and Abort discards it. Reads through tx-bound
// table handles observe the transaction's own writes.
type Tx struct {
	db     *Database
	base   *dbVersion
	epoch  uint64
	tables map[string]*tableVersion
	temp   map[string]bool
	done   bool
}

// Begin opens a write transaction against the newest version — the
// latest staged one when a group-commit chain is pending (see
// Precommit), the published one otherwise — blocking until any other
// writer commits, precommits, or aborts.
func (db *Database) Begin() *Tx {
	db.wmu.Lock()
	base := db.current.Load()
	if h := db.head.Load(); h != nil && h.epoch > base.epoch {
		base = h
	}
	return &Tx{
		db:     db,
		base:   base,
		epoch:  base.epoch + 1,
		tables: maps.Clone(base.tables),
		temp:   maps.Clone(base.temp),
	}
}

// Epoch returns the epoch the transaction will publish on Commit.
func (tx *Tx) Epoch() uint64 { return tx.epoch }

// Commit publishes the built version and releases the writer mutex.
func (tx *Tx) Commit() {
	if tx.done {
		panic("relstore: Commit on finished transaction")
	}
	tx.done = true
	tx.db.current.Store(&dbVersion{epoch: tx.epoch, tables: tx.tables, temp: tx.temp})
	tx.db.wmu.Unlock()
}

// Abort discards the built version and releases the writer mutex.
// Nothing the transaction allocated is reachable from a published
// version, so there is nothing to undo.
func (tx *Tx) Abort() {
	if tx.done {
		panic("relstore: Abort on finished transaction")
	}
	tx.done = true
	tx.db.wmu.Unlock()
}

// Staged is a built version frozen by Precommit: it is the base for the
// next transaction, but readers cannot see it until Publish. The
// catalog's group-commit path stages each mutation's version while its
// write-ahead record waits for the shared batch fsync, then publishes in
// epoch order once the batch is durable.
type Staged struct {
	db *Database
	v  *dbVersion
}

// Epoch returns the staged version's epoch.
func (s *Staged) Epoch() uint64 { return s.v.epoch }

// Precommit freezes the built version as the base for the next Begin
// without making it visible to readers, then releases the writer mutex.
// The caller must eventually either Publish the staged version (after
// its log record is durable) or abandon the whole staged chain with
// ResetHead (after a durability failure).
func (tx *Tx) Precommit() *Staged {
	if tx.done {
		panic("relstore: Precommit on finished transaction")
	}
	tx.done = true
	v := &dbVersion{epoch: tx.epoch, tables: tx.tables, temp: tx.temp}
	tx.db.head.Store(v)
	tx.db.wmu.Unlock()
	return &Staged{db: tx.db, v: v}
}

// Publish makes a precommitted version visible to readers. It is
// idempotent and monotonic: a version at or below the published epoch is
// a no-op, so out-of-order calls from concurrent group committers are
// safe — staged versions chain (each is built on the previous one), so
// publishing epoch E also reveals every staged epoch below it.
func (db *Database) Publish(s *Staged) {
	for {
		cur := db.current.Load()
		if cur.epoch >= s.v.epoch {
			return
		}
		if db.current.CompareAndSwap(cur, s.v) {
			return
		}
	}
}

// ResetHead abandons any staged-but-unpublished versions: the next Begin
// bases on the published version again. The group-commit failure path
// uses it to discard versions whose write-ahead records never became
// durable (after publishing the durable prefix of the chain).
func (db *Database) ResetHead() {
	db.wmu.Lock()
	db.head.Store(db.current.Load())
	db.wmu.Unlock()
}

// Table returns a handle bound to this transaction, observing its
// uncommitted writes, or nil if the table does not exist.
func (tx *Tx) Table(name string) *Table {
	tv := tx.tables[name]
	if tv == nil {
		return nil
	}
	return &Table{Schema: tv.state.schema, name: name, state: tv.state, db: tx.db, tx: tx}
}

// MustTable is Table or panic, for schemas guaranteed at startup.
func (tx *Tx) MustTable(name string) *Table {
	t := tx.Table(name)
	if t == nil {
		panic(fmt.Sprintf("relstore: missing table %q", name))
	}
	return t
}

// writable returns the transaction-private tableVersion for name,
// cloning the spine (page pointers, free list, index map) off the base
// version on first touch.
func (tx *Tx) writable(name string) *tableVersion {
	tv := tx.tables[name]
	if tv == nil || tv.epoch == tx.epoch {
		return tv
	}
	c := &tableVersion{
		epoch:   tx.epoch,
		state:   tv.state,
		pages:   slices.Clone(tv.pages),
		nrows:   tv.nrows,
		free:    slices.Clone(tv.free),
		live:    tv.live,
		indexes: maps.Clone(tv.indexes),
	}
	tx.tables[name] = c
	return c
}

// writableIndex returns a transaction-private copy of the named index
// of tv, cloning it off the shared version on first touch.
func (tx *Tx) writableIndex(tv *tableVersion, name string) *Index {
	ix := tv.indexes[name]
	if ix.tree.epoch == tx.epoch {
		return ix
	}
	c := *ix
	c.tree = ix.tree.clone(tx.epoch)
	tv.indexes[name] = &c
	return &c
}

// journalFire reports one applied mutation to the database journal.
// Temp tables are scratch space and are not reported. Runs under the
// writer mutex, in apply order; a transaction that later aborts has
// still reported its ops — the durability layer discards its capture
// buffer on abort.
func (tx *Tx) journalFire(name string, kind OpKind, rowID int64, row, prev Row) {
	if tx.temp[name] {
		return
	}
	if fn := tx.db.journal.Load(); fn != nil {
		(*fn)(TableOp{Table: name, Kind: kind, RowID: rowID, Row: row, Prev: prev})
	}
}

// insertRow validates and inserts r into the named table, maintaining
// all indexes, and returns the new row ID.
func (tx *Tx) insertRow(name string, r Row) (int64, error) {
	tv := tx.writable(name)
	if tv == nil {
		return 0, fmt.Errorf("relstore: no table %q", name)
	}
	nr, err := tv.state.schema.CheckRow(r)
	if err != nil {
		return 0, err
	}
	var id int64
	if n := len(tv.free); n > 0 {
		id = tv.free[n-1]
		tv.free = tv.free[:n-1]
	} else {
		id = tv.nrows
		tv.nrows++
	}
	tv.setRow(tx.epoch, id, nr)
	// Track the indexes actually updated: map iteration order is random,
	// so a unique violation must un-apply exactly what was applied, so
	// the builder stays consistent for the transaction's remaining ops.
	added := make([]*Index, 0, len(tv.indexes))
	for ixName := range tv.indexes {
		ix := tx.writableIndex(tv, ixName)
		if err := ix.add(KeyOfColumns(nr, ix.Cols), id); err != nil {
			for _, ix2 := range added {
				ix2.remove(KeyOfColumns(nr, ix2.Cols), id)
			}
			tv.setRow(tx.epoch, id, nil)
			tv.free = append(tv.free, id)
			return 0, err
		}
		added = append(added, ix)
	}
	tv.live++
	tv.state.countWrite()
	tx.journalFire(name, OpInsert, id, nr, nil)
	return id, nil
}

// deleteRow removes the row under id, reporting whether it existed.
func (tx *Tx) deleteRow(name string, id int64) bool {
	tv := tx.writable(name)
	if tv == nil {
		return false
	}
	r := tv.row(id)
	if r == nil {
		return false
	}
	for ixName := range tv.indexes {
		ix := tx.writableIndex(tv, ixName)
		ix.remove(KeyOfColumns(r, ix.Cols), id)
	}
	tv.setRow(tx.epoch, id, nil)
	tv.free = append(tv.free, id)
	tv.live--
	tv.state.countWrite()
	tx.journalFire(name, OpDelete, id, nil, r)
	return true
}

// updateRow replaces the row under id, maintaining indexes.
func (tx *Tx) updateRow(name string, id int64, r Row) error {
	tv := tx.writable(name)
	if tv == nil {
		return fmt.Errorf("relstore: no table %q", name)
	}
	nr, err := tv.state.schema.CheckRow(r)
	if err != nil {
		return err
	}
	old := tv.row(id)
	if old == nil {
		return fmt.Errorf("relstore: table %s: update of missing row %d", name, id)
	}
	for ixName := range tv.indexes {
		ix := tx.writableIndex(tv, ixName)
		ix.remove(KeyOfColumns(old, ix.Cols), id)
	}
	added := make([]*Index, 0, len(tv.indexes))
	for ixName := range tv.indexes {
		ix := tx.writableIndex(tv, ixName)
		if err := ix.add(KeyOfColumns(nr, ix.Cols), id); err != nil {
			// Un-apply exactly the new entries applied, then restore the
			// old ones (which cannot conflict: they coexisted before).
			for _, ix2 := range added {
				ix2.remove(KeyOfColumns(nr, ix2.Cols), id)
			}
			for ixName2 := range tv.indexes {
				ix2 := tx.writableIndex(tv, ixName2)
				_ = ix2.add(KeyOfColumns(old, ix2.Cols), id)
			}
			return err
		}
		added = append(added, ix)
	}
	tv.setRow(tx.epoch, id, nr)
	tv.state.countWrite()
	tx.journalFire(name, OpUpdate, id, nr, old)
	return nil
}

// createIndex builds an index over the named columns of the table,
// indexing existing rows.
func (tx *Tx) createIndex(table, name string, kind IndexKind, unique bool, cols ...string) (*Index, error) {
	tv := tx.writable(table)
	if tv == nil {
		return nil, fmt.Errorf("relstore: no table %q", table)
	}
	if _, dup := tv.indexes[name]; dup {
		return nil, fmt.Errorf("relstore: table %s: index %q already exists", table, name)
	}
	idx, err := tv.state.schema.ColIndexes(cols...)
	if err != nil {
		return nil, err
	}
	ix := &Index{Name: name, Cols: idx, Kind: kind, Unique: unique, tree: newBtree()}
	ix.tree.epoch = tx.epoch
	var addErr error
	tv.scan(func(id int64, r Row) bool {
		if err := ix.add(KeyOfColumns(r, ix.Cols), id); err != nil {
			addErr = err
			return false
		}
		return true
	})
	if addErr != nil {
		return nil, addErr
	}
	tv.indexes[name] = ix
	return ix, nil
}

// createTable adds a table to the building version.
func (tx *Tx) createTable(s *Schema, temp bool) (*Table, error) {
	if _, dup := tx.tables[s.Name]; dup {
		return nil, fmt.Errorf("relstore: table %q already exists", s.Name)
	}
	state := &tableState{schema: s}
	if !temp {
		if reg := tx.db.metrics.Load(); reg != nil {
			state.setMetrics(reg)
		}
	}
	tx.tables[s.Name] = &tableVersion{
		epoch:   tx.epoch,
		state:   state,
		indexes: make(map[string]*Index),
	}
	if temp {
		tx.temp[s.Name] = true
	}
	return &Table{Schema: s, name: s.Name, state: state, db: tx.db, tx: tx}, nil
}

// dropTable removes a table from the building version.
func (tx *Tx) dropTable(name string) error {
	if _, ok := tx.tables[name]; !ok {
		return fmt.Errorf("relstore: no table %q", name)
	}
	delete(tx.tables, name)
	delete(tx.temp, name)
	return nil
}

// dropTemp removes every temp table from the building version.
func (tx *Tx) dropTemp() {
	for name := range tx.temp {
		delete(tx.tables, name)
		delete(tx.temp, name)
	}
}

// Snapshot is a pinned, immutable view of the database as of one
// committed version. All reads through it are lock-free and observe
// exactly the pinned epoch: no torn reads, no later writes. Snapshots
// are cheap (one atomic load) and need no release — dropping the last
// reference lets the garbage collector reclaim the version.
type Snapshot struct {
	db *Database
	v  *dbVersion
}

// Snapshot pins the current version.
func (db *Database) Snapshot() *Snapshot {
	return &Snapshot{db: db, v: db.current.Load()}
}

// Epoch returns the pinned version's epoch (its Generation reading).
func (s *Snapshot) Epoch() uint64 { return s.v.epoch }

// Table returns a read-only handle for the named table in the pinned
// version, or nil. Mutating methods on the handle panic.
func (s *Snapshot) Table(name string) *Table {
	tv := s.v.tables[name]
	if tv == nil {
		return nil
	}
	return &Table{Schema: tv.state.schema, name: name, state: tv.state, db: s.db, pin: s.v}
}

// MustTable is Table or panic, for schemas guaranteed at startup.
func (s *Snapshot) MustTable(name string) *Table {
	t := s.Table(name)
	if t == nil {
		panic(fmt.Sprintf("relstore: missing table %q", name))
	}
	return t
}

// TableNames returns the pinned version's sorted table names.
func (s *Snapshot) TableNames() []string {
	names := make([]string, 0, len(s.v.tables))
	for n := range s.v.tables {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}

package relstore

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func newTestTable(t *testing.T) *Table {
	t.Helper()
	s, err := NewSchema("people",
		Column{Name: "id", Type: KInt, NotNull: true},
		Column{Name: "name", Type: KString, NotNull: true},
		Column{Name: "age", Type: KInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	return NewTable(s)
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema("t", Column{Name: "a", Type: KInt}, Column{Name: "a", Type: KInt}); err == nil {
		t.Error("duplicate column should fail")
	}
	if _, err := NewSchema("t", Column{Name: "", Type: KInt}); err == nil {
		t.Error("empty column name should fail")
	}
	s := MustSchema("t", Column{Name: "a", Type: KInt}, Column{Name: "b", Type: KString})
	if s.ColIndex("b") != 1 || s.ColIndex("missing") != -1 {
		t.Error("ColIndex misbehaved")
	}
	if _, err := s.ColIndexes("a", "zzz"); err == nil {
		t.Error("ColIndexes with unknown column should fail")
	}
}

func TestTableInsertGetDelete(t *testing.T) {
	tab := newTestTable(t)
	id1, err := tab.Insert(Row{Int(1), Str("ada"), Int(36)})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := tab.Insert(Row{Int(2), Str("grace"), Null()})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if r := tab.Get(id1); r == nil || r[1].S != "ada" {
		t.Errorf("Get(id1) = %v", r)
	}
	if !tab.Delete(id1) || tab.Delete(id1) {
		t.Error("Delete semantics wrong")
	}
	if tab.Get(id1) != nil {
		t.Error("deleted row still visible")
	}
	// Row ID reuse after free.
	id3, _ := tab.Insert(Row{Int(3), Str("edsger"), Int(40)})
	if id3 != id1 {
		t.Logf("row id not reused (got %d), acceptable but unexpected", id3)
	}
	_ = id2
}

func TestTableSchemaEnforcement(t *testing.T) {
	tab := newTestTable(t)
	if _, err := tab.Insert(Row{Int(1), Str("x")}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := tab.Insert(Row{Int(1), Null(), Int(3)}); err == nil {
		t.Error("NOT NULL violation should fail")
	}
	// Coercion: string "5" into INT column.
	id, err := tab.Insert(Row{Str("5"), Str("x"), Null()})
	if err != nil {
		t.Fatal(err)
	}
	if r := tab.Get(id); r[0].K != KInt || r[0].I != 5 {
		t.Errorf("coerced value = %v", r[0])
	}
	if _, err := tab.Insert(Row{Str("abc"), Str("x"), Null()}); err == nil {
		t.Error("uncoercible value should fail")
	}
}

func TestHashIndexLookup(t *testing.T) {
	tab := newTestTable(t)
	if _, err := tab.CreateIndex("by_name", HashIndex, false, "name"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		name := "even"
		if i%2 == 1 {
			name = "odd"
		}
		if _, err := tab.Insert(Row{Int(int64(i)), Str(name), Int(int64(i * 10))}); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := tab.LookupEqual("by_name", Str("even"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 {
		t.Fatalf("lookup(even) returned %d rows", len(ids))
	}
	for _, id := range ids {
		if tab.Get(id)[1].S != "even" {
			t.Error("lookup returned wrong row")
		}
	}
	ids, _ = tab.LookupEqual("by_name", Str("missing"))
	if len(ids) != 0 {
		t.Error("lookup of missing key should be empty")
	}
}

func TestBTreeIndexRange(t *testing.T) {
	tab := newTestTable(t)
	if _, err := tab.CreateIndex("by_age", BTreeIndex, false, "age"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := tab.Insert(Row{Int(int64(i)), Str(fmt.Sprint("p", i)), Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := tab.LookupRange("by_age",
		RangeBound{Vals: []Value{Int(10)}, Inclusive: true, Set: true},
		RangeBound{Vals: []Value{Int(15)}, Inclusive: false, Set: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 {
		t.Fatalf("range [10,15) returned %d rows", len(ids))
	}
	// Exclusive low bound.
	ids, _ = tab.LookupRange("by_age",
		RangeBound{Vals: []Value{Int(10)}, Inclusive: false, Set: true},
		RangeBound{Vals: []Value{Int(15)}, Inclusive: true, Set: true})
	if len(ids) != 5 { // 11..15
		t.Fatalf("range (10,15] returned %d rows", len(ids))
	}
	// Unbounded high.
	ids, _ = tab.LookupRange("by_age",
		RangeBound{Vals: []Value{Int(45)}, Inclusive: true, Set: true}, RangeBound{})
	if len(ids) != 5 {
		t.Fatalf("range [45,∞) returned %d rows", len(ids))
	}
	// Range scan on a hash index must fail.
	if _, err := tab.CreateIndex("hash_age", HashIndex, false, "age"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.LookupRange("hash_age", RangeBound{}, RangeBound{}); err == nil {
		t.Error("range scan on hash index should fail")
	}
}

func TestUniqueIndexViolationRollsBack(t *testing.T) {
	tab := newTestTable(t)
	if _, err := tab.CreateIndex("pk", BTreeIndex, true, "id"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateIndex("by_name", HashIndex, false, "name"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(Row{Int(1), Str("ada"), Null()}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(Row{Int(1), Str("dup"), Null()}); err == nil {
		t.Fatal("duplicate pk should fail")
	}
	if tab.Len() != 1 {
		t.Errorf("failed insert left the table with %d rows", tab.Len())
	}
	// The secondary index must not retain an entry for the rejected row.
	ids, _ := tab.LookupEqual("by_name", Str("dup"))
	if len(ids) != 0 {
		t.Error("failed insert leaked a secondary index entry")
	}
}

func TestIndexMaintainedAcrossUpdateDelete(t *testing.T) {
	tab := newTestTable(t)
	if _, err := tab.CreateIndex("by_name", BTreeIndex, false, "name"); err != nil {
		t.Fatal(err)
	}
	id, _ := tab.Insert(Row{Int(1), Str("before"), Null()})
	if err := tab.Update(id, Row{Int(1), Str("after"), Int(5)}); err != nil {
		t.Fatal(err)
	}
	if ids, _ := tab.LookupEqual("by_name", Str("before")); len(ids) != 0 {
		t.Error("stale index entry after update")
	}
	if ids, _ := tab.LookupEqual("by_name", Str("after")); len(ids) != 1 {
		t.Error("missing index entry after update")
	}
	tab.Delete(id)
	if ids, _ := tab.LookupEqual("by_name", Str("after")); len(ids) != 0 {
		t.Error("stale index entry after delete")
	}
}

func TestCreateIndexOverExistingRows(t *testing.T) {
	tab := newTestTable(t)
	for i := 0; i < 20; i++ {
		if _, err := tab.Insert(Row{Int(int64(i)), Str("n"), Int(int64(i % 4))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tab.CreateIndex("late", HashIndex, false, "age"); err != nil {
		t.Fatal(err)
	}
	ids, _ := tab.LookupEqual("late", Int(2))
	if len(ids) != 5 {
		t.Errorf("late index lookup returned %d rows, want 5", len(ids))
	}
	// Duplicate index name fails.
	if _, err := tab.CreateIndex("late", HashIndex, false, "age"); err == nil {
		t.Error("duplicate index name should fail")
	}
	// Unique index over duplicate data fails.
	if _, err := tab.CreateIndex("uniq", BTreeIndex, true, "name"); err == nil {
		t.Error("unique index over duplicates should fail")
	}
}

func TestTableConcurrentAccess(t *testing.T) {
	tab := newTestTable(t)
	if _, err := tab.CreateIndex("by_age", BTreeIndex, false, "age"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id, err := tab.Insert(Row{Int(int64(w*1000 + i)), Str("w"), Int(int64(i))})
				if err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					tab.Delete(id)
				}
				if i%5 == 0 {
					_, _ = tab.LookupEqual("by_age", Int(int64(i)))
					tab.Scan(func(_ int64, _ Row) bool { return false })
				}
			}
		}(w)
	}
	wg.Wait()
	want := 8 * (200 - 67) // 67 deletions per worker (i%3==0 for 0..199)
	if tab.Len() != want {
		t.Errorf("Len = %d, want %d", tab.Len(), want)
	}
}

func TestDatabaseLifecycle(t *testing.T) {
	db := NewDatabase()
	if _, err := db.CreateTable("a", Column{Name: "x", Type: KInt}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("a", Column{Name: "x", Type: KInt}); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, err := db.CreateTempTable("tmp1", Column{Name: "x", Type: KInt}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(db.TableNames(), ","); got != "a,tmp1" {
		t.Errorf("TableNames = %s", got)
	}
	db.DropTemp()
	if db.Table("tmp1") != nil {
		t.Error("temp table survived DropTemp")
	}
	if db.Table("a") == nil {
		t.Error("DropTemp removed a regular table")
	}
	if err := db.DropTable("a"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("a"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestStorageBytesGrows(t *testing.T) {
	db := NewDatabase()
	tab, _ := db.CreateTable("t", Column{Name: "s", Type: KString})
	before := db.StorageBytes()
	if _, err := tab.Insert(Row{Str(strings.Repeat("x", 1000))}); err != nil {
		t.Fatal(err)
	}
	after := db.StorageBytes()
	if after-before < 1000 {
		t.Errorf("StorageBytes grew by %d, want >= 1000", after-before)
	}
}

package relstore

import (
	"fmt"
	"strings"
)

// Expr is a compiled scalar expression evaluated against a row. Column
// references are resolved to positions at compile time, so Eval performs
// no name lookups.
type Expr interface {
	Eval(r Row) Value
	String() string
}

// ColRef reads a column by position.
type ColRef struct {
	Idx  int
	Name string
}

// Eval implements Expr.
func (c ColRef) Eval(r Row) Value { return r[c.Idx] }

func (c ColRef) String() string { return c.Name }

// Const is a literal value.
type Const struct{ V Value }

// Eval implements Expr.
func (c Const) Eval(Row) Value { return c.V }

func (c Const) String() string { return c.V.String() }

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var cmpNames = map[CmpOp]string{OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}

// ParseCmpOp parses a SQL comparison token.
func ParseCmpOp(s string) (CmpOp, error) {
	switch s {
	case "=", "==":
		return OpEq, nil
	case "<>", "!=":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	}
	return 0, fmt.Errorf("relstore: unknown comparison operator %q", s)
}

// String returns the SQL spelling of the operator.
func (o CmpOp) String() string { return cmpNames[o] }

// Holds reports whether "a o b" holds under the engine's total order, with
// SQL NULL semantics: any comparison with NULL is false.
func (o CmpOp) Holds(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	c := Compare(a, b)
	switch o {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// Cmp compares two subexpressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr; NULL operands yield NULL (treated as false by
// filters).
func (c Cmp) Eval(r Row) Value {
	l, rt := c.L.Eval(r), c.R.Eval(r)
	if l.IsNull() || rt.IsNull() {
		return Null()
	}
	return Bool(c.Op.Holds(l, rt))
}

func (c Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R)
}

// LogicOp enumerates boolean connectives.
type LogicOp uint8

// Boolean connectives.
const (
	OpAnd LogicOp = iota
	OpOr
	OpNot
)

// Logic combines boolean subexpressions with three-valued NULL logic.
type Logic struct {
	Op   LogicOp
	Args []Expr
}

// Eval implements Expr.
func (l Logic) Eval(r Row) Value {
	switch l.Op {
	case OpNot:
		v := l.Args[0].Eval(r)
		if v.IsNull() {
			return Null()
		}
		return Bool(!v.AsBool())
	case OpAnd:
		sawNull := false
		for _, a := range l.Args {
			v := a.Eval(r)
			if v.IsNull() {
				sawNull = true
			} else if !v.AsBool() {
				return Bool(false)
			}
		}
		if sawNull {
			return Null()
		}
		return Bool(true)
	case OpOr:
		sawNull := false
		for _, a := range l.Args {
			v := a.Eval(r)
			if v.IsNull() {
				sawNull = true
			} else if v.AsBool() {
				return Bool(true)
			}
		}
		if sawNull {
			return Null()
		}
		return Bool(false)
	}
	return Null()
}

func (l Logic) String() string {
	switch l.Op {
	case OpNot:
		return fmt.Sprintf("(NOT %s)", l.Args[0])
	case OpAnd:
		return logicJoin(l.Args, " AND ")
	case OpOr:
		return logicJoin(l.Args, " OR ")
	}
	return "?"
}

func logicJoin(args []Expr, sep string) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

var arithNames = map[ArithOp]string{OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%"}

// Arith computes integer arithmetic when both operands are ints (except
// division by zero, which yields NULL), and float arithmetic otherwise.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval implements Expr.
func (a Arith) Eval(r Row) Value {
	l, rt := a.L.Eval(r), a.R.Eval(r)
	if l.IsNull() || rt.IsNull() {
		return Null()
	}
	if l.K == KInt && rt.K == KInt {
		switch a.Op {
		case OpAdd:
			return Int(l.I + rt.I)
		case OpSub:
			return Int(l.I - rt.I)
		case OpMul:
			return Int(l.I * rt.I)
		case OpDiv:
			if rt.I == 0 {
				return Null()
			}
			return Int(l.I / rt.I)
		case OpMod:
			if rt.I == 0 {
				return Null()
			}
			return Int(l.I % rt.I)
		}
	}
	lf, ok1 := l.AsFloat()
	rf, ok2 := rt.AsFloat()
	if !ok1 || !ok2 {
		return Null()
	}
	switch a.Op {
	case OpAdd:
		return Float(lf + rf)
	case OpSub:
		return Float(lf - rf)
	case OpMul:
		return Float(lf * rf)
	case OpDiv:
		if rf == 0 {
			return Null()
		}
		return Float(lf / rf)
	case OpMod:
		if rf == 0 {
			return Null()
		}
		return Float(float64(int64(lf) % int64(rf)))
	}
	return Null()
}

func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, arithNames[a.Op], a.R)
}

// IsNullExpr tests for (non-)NULL.
type IsNullExpr struct {
	Arg Expr
	Neg bool // IS NOT NULL
}

// Eval implements Expr.
func (e IsNullExpr) Eval(r Row) Value {
	isNull := e.Arg.Eval(r).IsNull()
	if e.Neg {
		return Bool(!isNull)
	}
	return Bool(isNull)
}

func (e IsNullExpr) String() string {
	if e.Neg {
		return fmt.Sprintf("(%s IS NOT NULL)", e.Arg)
	}
	return fmt.Sprintf("(%s IS NULL)", e.Arg)
}

// LikeExpr implements SQL LIKE with % and _ wildcards.
type LikeExpr struct {
	Arg     Expr
	Pattern string
}

// Eval implements Expr.
func (e LikeExpr) Eval(r Row) Value {
	v := e.Arg.Eval(r)
	if v.IsNull() {
		return Null()
	}
	return Bool(likeMatch(v.AsString(), e.Pattern))
}

func (e LikeExpr) String() string {
	return fmt.Sprintf("(%s LIKE %q)", e.Arg, e.Pattern)
}

// likeMatch matches s against a SQL LIKE pattern using an iterative
// two-pointer algorithm (no backtracking blowup).
func likeMatch(s, pattern string) bool {
	var si, pi int
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			ss++
			si = ss
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// FuncExpr applies a named scalar function.
type FuncExpr struct {
	Name string // upper-cased
	Args []Expr
}

// Eval implements Expr.
func (f FuncExpr) Eval(r Row) Value {
	switch f.Name {
	case "UPPER":
		return Str(strings.ToUpper(f.Args[0].Eval(r).AsString()))
	case "LOWER":
		return Str(strings.ToLower(f.Args[0].Eval(r).AsString()))
	case "LENGTH":
		return Int(int64(len(f.Args[0].Eval(r).AsString())))
	case "ABS":
		v := f.Args[0].Eval(r)
		switch v.K {
		case KInt:
			if v.I < 0 {
				return Int(-v.I)
			}
			return v
		case KFloat:
			if v.F < 0 {
				return Float(-v.F)
			}
			return v
		}
		return Null()
	case "COALESCE":
		for _, a := range f.Args {
			if v := a.Eval(r); !v.IsNull() {
				return v
			}
		}
		return Null()
	}
	return Null()
}

func (f FuncExpr) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

// PredOf converts a boolean expression into a filter predicate (NULL is
// false).
func PredOf(e Expr) func(Row) bool {
	return func(r Row) bool {
		v := e.Eval(r)
		return !v.IsNull() && v.AsBool()
	}
}

package relstore

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Order-preserving key encoding. Composite keys built from Values encode to
// byte strings whose bytewise order matches the Compare order of the value
// tuples. B-tree indexes key on these encodings so a single byte comparison
// replaces a per-column Compare loop on the hot path.
//
// Layout per value: one tag byte (the comparison rank, so cross-type order
// is preserved), then a kind-specific payload:
//
//	NULL    tag only
//	BOOL    1 byte
//	INT     tag for number + marker byte 0x00 + big-endian uint64 with the
//	        sign bit flipped
//	FLOAT   tag for number + marker byte 0x00 + IEEE bits transformed so
//	        bytewise order equals numeric order
//	STRING  escaped bytes (0x00 -> 0x00 0xFF) terminated by 0x00 0x00
//	BYTES   same escaping as STRING
//
// Ints and floats share a tag and are both encoded through the float
// transform when they interact; to keep exact int ordering beyond 2^53 the
// int payload carries the original value after a float-ordered prefix.

const (
	tagNull   byte = 0x01
	tagBool   byte = 0x02
	tagNumber byte = 0x03
	tagString byte = 0x04
	tagBytes  byte = 0x05
)

// AppendKey appends the order-preserving encoding of v to dst.
func AppendKey(dst []byte, v Value) []byte {
	switch v.K {
	case KNull:
		return append(dst, tagNull)
	case KBool:
		dst = append(dst, tagBool)
		if v.I != 0 {
			return append(dst, 1)
		}
		return append(dst, 0)
	case KInt:
		dst = append(dst, tagNumber)
		dst = appendFloatOrdered(dst, float64(v.I))
		// Disambiguate ints that collapse to the same float64 so exact
		// ordering and equality survive beyond 2^53.
		return appendUint64Ordered(dst, uint64(v.I)^(1<<63))
	case KFloat:
		dst = append(dst, tagNumber)
		dst = appendFloatOrdered(dst, v.F)
		// Pad so an int and an equal float encode identically in length;
		// the midpoint pad keeps float(x) sorting with int(x).
		return appendUint64Ordered(dst, floatIntPad(v.F))
	case KString:
		dst = append(dst, tagString)
		return appendEscaped(dst, []byte(v.S))
	case KBytes:
		dst = append(dst, tagBytes)
		return appendEscaped(dst, v.B)
	}
	panic(fmt.Sprintf("relstore: AppendKey: unknown kind %d", v.K))
}

// floatIntPad returns the int-payload stand-in for a float so that when a
// float is numerically equal to an integer the two encodings are equal, and
// otherwise the float-ordered prefix already decided the comparison.
func floatIntPad(f float64) uint64 {
	if f == math.Trunc(f) && f >= -9.2233720368547758e18 && f <= 9.2233720368547758e18 {
		return uint64(int64(f)) ^ (1 << 63)
	}
	return 1 << 63
}

func appendUint64Ordered(dst []byte, u uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], u)
	return append(dst, buf[:]...)
}

// appendFloatOrdered writes f as 8 bytes whose bytewise order matches the
// cmpFloat order (NaN first, then -Inf .. +Inf).
func appendFloatOrdered(dst []byte, f float64) []byte {
	if math.IsNaN(f) {
		return appendUint64Ordered(dst, 0)
	}
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits // negative: flip all bits
	} else {
		bits ^= 1 << 63 // positive: flip sign bit
	}
	// Reserve 0 for NaN by nudging everything up; the max value cannot
	// overflow because ^(-0.0) leaves headroom at the top.
	return appendUint64Ordered(dst, bits+1)
}

// appendEscaped writes b with 0x00 escaped as 0x00 0xFF and a 0x00 0x00
// terminator, preserving prefix ordering across variable-length keys.
func appendEscaped(dst, b []byte) []byte {
	for _, c := range b {
		if c == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, 0x00, 0x00)
}

// EncodeKey encodes a composite key from vals.
func EncodeKey(vals ...Value) []byte {
	var dst []byte
	for _, v := range vals {
		dst = AppendKey(dst, v)
	}
	return dst
}

// KeyOfColumns encodes the projection of row onto cols.
func KeyOfColumns(row Row, cols []int) []byte {
	var dst []byte
	for _, c := range cols {
		dst = AppendKey(dst, row[c])
	}
	return dst
}

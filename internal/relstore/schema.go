package relstore

import "fmt"

// Column describes one table column.
type Column struct {
	Name    string
	Type    Kind
	NotNull bool
}

// Schema describes a table's columns. Column names are unique,
// case-sensitive, and resolved by ColIndex.
type Schema struct {
	Name    string
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema, validating column-name uniqueness.
func NewSchema(name string, cols ...Column) (*Schema, error) {
	s := &Schema{Name: name, Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relstore: table %s: empty column name at position %d", name, i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("relstore: table %s: duplicate column %q", name, c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for static schemas.
func MustSchema(name string, cols ...Column) *Schema {
	s, err := NewSchema(name, cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// ColIndex returns the position of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	i, ok := s.byName[name]
	if !ok {
		return -1
	}
	return i
}

// ColIndexes resolves several names, failing on the first unknown one.
func (s *Schema) ColIndexes(names ...string) ([]int, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		j := s.ColIndex(n)
		if j < 0 {
			return nil, fmt.Errorf("relstore: table %s: unknown column %q", s.Name, n)
		}
		idx[i] = j
	}
	return idx, nil
}

// CheckRow validates arity, NOT NULL constraints, and coerces values to the
// column types, returning the normalized row.
func (s *Schema) CheckRow(r Row) (Row, error) {
	if len(r) != len(s.Columns) {
		return nil, fmt.Errorf("relstore: table %s: row has %d values, want %d", s.Name, len(r), len(s.Columns))
	}
	out := make(Row, len(r))
	for i, v := range r {
		c := s.Columns[i]
		if v.IsNull() {
			if c.NotNull {
				return nil, fmt.Errorf("relstore: table %s: column %q is NOT NULL", s.Name, c.Name)
			}
			out[i] = v
			continue
		}
		cv, err := Coerce(v, c.Type)
		if err != nil {
			return nil, fmt.Errorf("relstore: table %s column %q: %w", s.Name, c.Name, err)
		}
		out[i] = cv
	}
	return out, nil
}

package relstore

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v       Value
		kind    Kind
		str     string
		boolean bool
	}{
		{Null(), KNull, "", false},
		{Int(42), KInt, "42", true},
		{Int(0), KInt, "0", false},
		{Int(-7), KInt, "-7", true},
		{Float(2.5), KFloat, "2.5", true},
		{Float(0), KFloat, "0", false},
		{Str("hello"), KString, "hello", true},
		{Str(""), KString, "", false},
		{Bytes([]byte{1, 2}), KBytes, "\x01\x02", true},
		{Bool(true), KBool, "true", true},
		{Bool(false), KBool, "false", false},
	}
	for _, c := range cases {
		if c.v.K != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.K, c.kind)
		}
		if got := c.v.AsString(); got != c.str {
			t.Errorf("%v: AsString = %q, want %q", c.v, got, c.str)
		}
		if got := c.v.AsBool(); got != c.boolean {
			t.Errorf("%v: AsBool = %v, want %v", c.v, got, c.boolean)
		}
	}
}

func TestValueAsIntAsFloat(t *testing.T) {
	if i, ok := Int(9).AsInt(); !ok || i != 9 {
		t.Errorf("Int(9).AsInt = %d, %v", i, ok)
	}
	if i, ok := Float(9.9).AsInt(); !ok || i != 9 {
		t.Errorf("Float(9.9).AsInt = %d, %v", i, ok)
	}
	if i, ok := Str("123").AsInt(); !ok || i != 123 {
		t.Errorf("Str(123).AsInt = %d, %v", i, ok)
	}
	if _, ok := Str("abc").AsInt(); ok {
		t.Error("Str(abc).AsInt should fail")
	}
	if f, ok := Str("2.5").AsFloat(); !ok || f != 2.5 {
		t.Errorf("Str(2.5).AsFloat = %g, %v", f, ok)
	}
	if _, ok := Null().AsFloat(); ok {
		t.Error("Null().AsFloat should fail")
	}
}

func TestCompareTotalOrderAcrossKinds(t *testing.T) {
	// NULL < bool < numbers < string < bytes.
	ordered := []Value{
		Null(), Bool(false), Bool(true),
		Float(math.Inf(-1)), Int(-5), Float(-1.5), Int(0), Float(0.5),
		Int(1), Int(2), Float(math.Inf(1)),
		Str(""), Str("a"), Str("ab"), Str("b"),
		Bytes(nil), Bytes([]byte{0}), Bytes([]byte{0, 1}), Bytes([]byte{1}),
	}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareIntFloatMixed(t *testing.T) {
	if Compare(Int(3), Float(3.0)) != 0 {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Compare(Int(3), Float(3.5)) != -1 {
		t.Error("Int(3) should sort below Float(3.5)")
	}
	if Compare(Float(2.9), Int(3)) != -1 {
		t.Error("Float(2.9) should sort below Int(3)")
	}
	// NaN sorts first among numbers and equals itself.
	if Compare(Float(math.NaN()), Float(math.NaN())) != 0 {
		t.Error("NaN should equal NaN in the total order")
	}
	if Compare(Float(math.NaN()), Float(math.Inf(-1))) != -1 {
		t.Error("NaN should sort before -Inf")
	}
}

func TestCoerce(t *testing.T) {
	v, err := Coerce(Str("42"), KInt)
	if err != nil || v.I != 42 || v.K != KInt {
		t.Errorf("Coerce(\"42\", Int) = %v, %v", v, err)
	}
	v, err = Coerce(Int(7), KFloat)
	if err != nil || v.F != 7 {
		t.Errorf("Coerce(7, Float) = %v, %v", v, err)
	}
	v, err = Coerce(Int(7), KString)
	if err != nil || v.S != "7" {
		t.Errorf("Coerce(7, String) = %v, %v", v, err)
	}
	if _, err = Coerce(Str("xyz"), KInt); err == nil {
		t.Error("Coerce(xyz, Int) should fail")
	}
	// NULL coerces to anything.
	v, err = Coerce(Null(), KInt)
	if err != nil || !v.IsNull() {
		t.Errorf("Coerce(NULL, Int) = %v, %v", v, err)
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64, fa, fb float64, sa, sb string) bool {
		vals := []Value{Int(a), Int(b), Float(fa), Float(fb), Str(sa), Str(sb), Null()}
		for _, x := range vals {
			for _, y := range vals {
				if Compare(x, y) != -Compare(y, x) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	f := func(a, b, c int64, fa, fb, fc float64) bool {
		vals := []Value{Int(a), Float(fb), Int(c), Float(fa), Int(b), Float(fc)}
		for _, x := range vals {
			for _, y := range vals {
				for _, z := range vals {
					if Compare(x, y) <= 0 && Compare(y, z) <= 0 && Compare(x, z) > 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCloneRowIndependence(t *testing.T) {
	r := Row{Int(1), Str("x")}
	c := CloneRow(r)
	c[0] = Int(2)
	if r[0].I != 1 {
		t.Error("CloneRow should not alias the original")
	}
}

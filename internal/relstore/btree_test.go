package relstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestBtreeBasicOps(t *testing.T) {
	bt := newBtree()
	if bt.Len() != 0 {
		t.Fatal("new tree not empty")
	}
	bt.Insert([]byte("b"), 2)
	bt.Insert([]byte("a"), 1)
	bt.Insert([]byte("c"), 3)
	if bt.Len() != 3 {
		t.Fatalf("Len = %d, want 3", bt.Len())
	}
	if v, ok := bt.Get([]byte("b")); !ok || v != 2 {
		t.Errorf("Get(b) = %d, %v", v, ok)
	}
	if _, ok := bt.Get([]byte("z")); ok {
		t.Error("Get(z) should miss")
	}
	// Replacement keeps Len stable.
	bt.Insert([]byte("b"), 20)
	if bt.Len() != 3 {
		t.Errorf("Len after replace = %d, want 3", bt.Len())
	}
	if v, _ := bt.Get([]byte("b")); v != 20 {
		t.Errorf("replaced value = %d, want 20", v)
	}
	if !bt.Delete([]byte("a")) {
		t.Error("Delete(a) should succeed")
	}
	if bt.Delete([]byte("a")) {
		t.Error("second Delete(a) should fail")
	}
	if bt.Len() != 2 {
		t.Errorf("Len after delete = %d, want 2", bt.Len())
	}
}

func TestBtreeAscendRange(t *testing.T) {
	bt := newBtree()
	for i := 0; i < 100; i++ {
		bt.Insert([]byte(fmt.Sprintf("k%03d", i)), int64(i))
	}
	var got []int64
	bt.Ascend([]byte("k010"), []byte("k015"), func(_ []byte, v int64) bool {
		got = append(got, v)
		return true
	})
	want := []int64{10, 11, 12, 13, 14}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Ascend range = %v, want %v", got, want)
	}
	// Unbounded scan returns everything in order.
	got = got[:0]
	bt.Ascend(nil, nil, func(_ []byte, v int64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 100 {
		t.Fatalf("full scan returned %d entries", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("scan out of order at %d: %d", i, v)
		}
	}
	// Early stop.
	n := 0
	bt.Ascend(nil, nil, func(_ []byte, _ int64) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("early stop visited %d, want 7", n)
	}
}

func TestBtreeAscendPrefix(t *testing.T) {
	bt := newBtree()
	for i := 0; i < 10; i++ {
		bt.Insert([]byte(fmt.Sprintf("a%d", i)), int64(i))
		bt.Insert([]byte(fmt.Sprintf("b%d", i)), int64(100+i))
	}
	var got []int64
	bt.AscendPrefix([]byte("b"), func(_ []byte, v int64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 10 || got[0] != 100 || got[9] != 109 {
		t.Errorf("AscendPrefix(b) = %v", got)
	}
}

// TestBtreeAgainstReference drives random operations against a Go map +
// sorted-slice reference model and checks full agreement plus structural
// invariants.
func TestBtreeAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bt := newBtree()
	ref := make(map[string]int64)
	for op := 0; op < 20000; op++ {
		key := []byte(fmt.Sprintf("key-%05d", rng.Intn(5000)))
		switch rng.Intn(10) {
		case 0, 1, 2:
			delete(ref, string(key))
			bt.Delete(key)
		default:
			v := rng.Int63()
			ref[string(key)] = v
			bt.Insert(key, v)
		}
	}
	if bt.Len() != len(ref) {
		t.Fatalf("Len = %d, reference has %d", bt.Len(), len(ref))
	}
	if err := bt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// All reference entries retrievable.
	for k, v := range ref {
		got, ok := bt.Get([]byte(k))
		if !ok || got != v {
			t.Fatalf("Get(%s) = %d,%v want %d", k, got, ok, v)
		}
	}
	// Full scan equals sorted reference.
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	bt.Ascend(nil, nil, func(k []byte, v int64) bool {
		if i >= len(keys) || string(k) != keys[i] || v != ref[keys[i]] {
			t.Fatalf("scan mismatch at %d: got %s", i, k)
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("scan visited %d of %d", i, len(keys))
	}
}

// TestBtreeRandomRangesAgainstReference compares arbitrary [lo,hi) scans
// with the reference after heavy mixed operations.
func TestBtreeRandomRangesAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bt := newBtree()
	ref := make(map[string]int64)
	for op := 0; op < 5000; op++ {
		key := []byte(fmt.Sprintf("%04d", rng.Intn(2000)))
		if rng.Intn(4) == 0 {
			delete(ref, string(key))
			bt.Delete(key)
		} else {
			ref[string(key)] = int64(op)
			bt.Insert(key, int64(op))
		}
	}
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for trial := 0; trial < 200; trial++ {
		lo := []byte(fmt.Sprintf("%04d", rng.Intn(2000)))
		hi := []byte(fmt.Sprintf("%04d", rng.Intn(2000)))
		if bytes.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		var want []string
		for _, k := range keys {
			if k >= string(lo) && k < string(hi) {
				want = append(want, k)
			}
		}
		var got []string
		bt.Ascend(lo, hi, func(k []byte, _ int64) bool {
			got = append(got, string(k))
			return true
		})
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("range [%s,%s): got %v want %v", lo, hi, got, want)
		}
	}
}

func TestBtreeSequentialAndReverseInsertion(t *testing.T) {
	for _, dir := range []string{"asc", "desc"} {
		bt := newBtree()
		for i := 0; i < 3000; i++ {
			k := i
			if dir == "desc" {
				k = 2999 - i
			}
			bt.Insert([]byte(fmt.Sprintf("%06d", k)), int64(k))
		}
		if err := bt.checkInvariants(); err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		if bt.Len() != 3000 {
			t.Fatalf("%s: Len = %d", dir, bt.Len())
		}
		prev := int64(-1)
		bt.Ascend(nil, nil, func(_ []byte, v int64) bool {
			if v != prev+1 {
				t.Fatalf("%s: sequence broken at %d", dir, v)
			}
			prev = v
			return true
		})
	}
}

// TestBtreeDrainMaintainsBalance deletes every key from a large tree,
// checking the occupancy/ordering invariants as the tree shrinks and
// that the root collapses back to a leaf.
func TestBtreeDrainMaintainsBalance(t *testing.T) {
	bt := newBtree()
	const n = 5000
	for i := 0; i < n; i++ {
		bt.Insert([]byte(fmt.Sprintf("%06d", i)), int64(i))
	}
	rng := rand.New(rand.NewSource(3))
	order := rng.Perm(n)
	for step, k := range order {
		if !bt.Delete([]byte(fmt.Sprintf("%06d", k))) {
			t.Fatalf("delete %d failed", k)
		}
		if step%500 == 0 {
			if err := bt.checkInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", step+1, err)
			}
		}
	}
	if bt.Len() != 0 {
		t.Fatalf("Len = %d after drain", bt.Len())
	}
	if !bt.root.leaf || len(bt.root.keys) != 0 {
		t.Error("root should collapse to an empty leaf")
	}
	// The tree remains usable.
	bt.Insert([]byte("again"), 1)
	if v, ok := bt.Get([]byte("again")); !ok || v != 1 {
		t.Error("tree unusable after drain")
	}
}

// TestBtreeChurnKeepsLeafChainIntact interleaves inserts and deletes and
// verifies range scans see exactly the live keys (the leaf chain must
// survive merges).
func TestBtreeChurnKeepsLeafChainIntact(t *testing.T) {
	bt := newBtree()
	ref := map[string]int64{}
	rng := rand.New(rand.NewSource(11))
	for op := 0; op < 30000; op++ {
		k := fmt.Sprintf("%05d", rng.Intn(3000))
		if rng.Intn(3) == 0 {
			delete(ref, k)
			bt.Delete([]byte(k))
		} else {
			ref[k] = int64(op)
			bt.Insert([]byte(k), int64(op))
		}
		if op%5000 == 4999 {
			if err := bt.checkInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	var got []string
	bt.Ascend(nil, nil, func(k []byte, v int64) bool {
		got = append(got, string(k))
		if ref[string(k)] != v {
			t.Fatalf("value mismatch at %s", k)
		}
		return true
	})
	if len(got) != len(ref) {
		t.Fatalf("scan saw %d keys, reference has %d", len(got), len(ref))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("scan out of order after churn")
		}
	}
}

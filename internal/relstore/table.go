package relstore

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/gridmeta/hybridcat/internal/obs"
)

// IndexKind selects the physical index structure.
type IndexKind uint8

const (
	// HashIndex supports equality probes only.
	HashIndex IndexKind = iota
	// BTreeIndex supports equality and range scans in key order.
	BTreeIndex
)

// Index is a secondary index over one or more columns of a table. Indexes
// are maintained synchronously by Insert/Update/Delete under the table
// lock.
type Index struct {
	Name   string
	Cols   []int
	Kind   IndexKind
	Unique bool

	hash map[string][]int64
	tree *btree
}

func rowIDSuffix(key []byte, rowID int64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(rowID))
	return append(key, buf[:]...)
}

func (ix *Index) add(key []byte, rowID int64) error {
	switch ix.Kind {
	case HashIndex:
		k := string(key)
		if ix.Unique && len(ix.hash[k]) > 0 {
			return fmt.Errorf("relstore: unique index %s violated", ix.Name)
		}
		ix.hash[k] = append(ix.hash[k], rowID)
	case BTreeIndex:
		if ix.Unique {
			if _, exists := ix.tree.Get(key); exists {
				return fmt.Errorf("relstore: unique index %s violated", ix.Name)
			}
			ix.tree.Insert(append([]byte(nil), key...), rowID)
		} else {
			ix.tree.Insert(rowIDSuffix(append([]byte(nil), key...), rowID), rowID)
		}
	}
	return nil
}

func (ix *Index) remove(key []byte, rowID int64) {
	switch ix.Kind {
	case HashIndex:
		k := string(key)
		ids := ix.hash[k]
		for i, id := range ids {
			if id == rowID {
				ix.hash[k] = append(ids[:i], ids[i+1:]...)
				break
			}
		}
		if len(ix.hash[k]) == 0 {
			delete(ix.hash, k)
		}
	case BTreeIndex:
		if ix.Unique {
			ix.tree.Delete(key)
		} else {
			ix.tree.Delete(rowIDSuffix(append([]byte(nil), key...), rowID))
		}
	}
}

// Table is an in-memory heap of rows with secondary indexes. Row IDs are
// stable for the life of the row and may be reused after deletion. A Table
// is safe for concurrent use.
type Table struct {
	mu      sync.RWMutex
	Schema  *Schema
	rows    []Row // nil slot = deleted
	free    []int64
	live    int
	indexes map[string]*Index
	autoID  int64 // monotonically increasing helper for AUTO columns

	// gen is bumped on every successful mutation. Tables created through
	// a Database share its generation counter; standalone tables get
	// their own.
	gen *atomic.Uint64

	// journal, when non-nil, points at the owning database's journal
	// hook; permanent tables report every successful mutation through it
	// (see Database.SetJournal). Standalone and temp tables never report.
	journal *atomic.Pointer[func(TableOp)]

	// Instrument handles (nil when the owning database has no metrics
	// registry; nil handles are no-ops). Installed by setMetrics and only
	// ever touched under t.mu, so no extra synchronization is needed.
	mReads   *obs.Counter // rows surfaced by Get and Scan
	mWrites  *obs.Counter // successful Insert/Update/Delete
	mLookups *obs.Counter // index probes (LookupEqual/LookupRange calls)
}

// setMetrics attaches the table's per-table counters from reg, labeled
// with the table name (see Database.SetMetrics).
func (t *Table) setMetrics(reg *obs.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := obs.L("table", t.Schema.Name)
	t.mReads = reg.Counter("relstore_row_reads_total", l)
	t.mWrites = reg.Counter("relstore_row_writes_total", l)
	t.mLookups = reg.Counter("relstore_index_lookups_total", l)
}

// record reports one applied mutation to the database journal, if any.
// Called under t.mu after the mutation succeeded.
func (t *Table) record(kind OpKind, rowID int64, row, prev Row) {
	if t.journal == nil {
		return
	}
	if fn := t.journal.Load(); fn != nil {
		(*fn)(TableOp{Table: t.Schema.Name, Kind: kind, RowID: rowID, Row: row, Prev: prev})
	}
}

// NewTable creates an empty table with the given schema.
func NewTable(s *Schema) *Table {
	return &Table{Schema: s, indexes: make(map[string]*Index), gen: new(atomic.Uint64)}
}

// CreateIndex builds an index over the named columns, indexing existing
// rows. It fails if the name is taken, a column is unknown, or a unique
// constraint is already violated.
func (t *Table) CreateIndex(name string, kind IndexKind, unique bool, cols ...string) (*Index, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.indexes[name]; dup {
		return nil, fmt.Errorf("relstore: table %s: index %q already exists", t.Schema.Name, name)
	}
	idx, err := t.Schema.ColIndexes(cols...)
	if err != nil {
		return nil, err
	}
	ix := &Index{Name: name, Cols: idx, Kind: kind, Unique: unique}
	if kind == HashIndex {
		ix.hash = make(map[string][]int64)
	} else {
		ix.tree = newBtree()
	}
	for id, r := range t.rows {
		if r == nil {
			continue
		}
		if err := ix.add(KeyOfColumns(r, ix.Cols), int64(id)); err != nil {
			return nil, err
		}
	}
	t.indexes[name] = ix
	return ix, nil
}

// Index returns the named index, or nil.
func (t *Table) Index(name string) *Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexes[name]
}

// Indexes returns the table's indexes (unordered).
func (t *Table) Indexes() []*Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Index, 0, len(t.indexes))
	for _, ix := range t.indexes {
		out = append(out, ix)
	}
	return out
}

// NextAutoID returns a monotonically increasing int64, 1-based; used for
// synthetic primary keys.
func (t *Table) NextAutoID() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.autoID++
	return t.autoID
}

// EnsureAutoID advances the auto-ID counter to at least min, so IDs
// assigned after restoring a snapshot never collide with restored rows.
func (t *Table) EnsureAutoID(min int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.autoID < min {
		t.autoID = min
	}
}

// Insert validates the row against the schema, appends it, and maintains
// all indexes. It returns the new row ID.
func (t *Table) Insert(r Row) (int64, error) {
	nr, err := t.Schema.CheckRow(r)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var id int64
	if n := len(t.free); n > 0 {
		id = t.free[n-1]
		t.free = t.free[:n-1]
		t.rows[id] = nr
	} else {
		id = int64(len(t.rows))
		t.rows = append(t.rows, nr)
	}
	// Track the indexes actually updated: map iteration order is random,
	// so rollback must replay exactly what was applied, not re-iterate.
	added := make([]*Index, 0, len(t.indexes))
	for _, ix := range t.indexes {
		if err := ix.add(KeyOfColumns(nr, ix.Cols), id); err != nil {
			for _, ix2 := range added {
				ix2.remove(KeyOfColumns(nr, ix2.Cols), id)
			}
			t.rows[id] = nil
			t.free = append(t.free, id)
			return 0, err
		}
		added = append(added, ix)
	}
	t.live++
	t.gen.Add(1)
	t.mWrites.Inc()
	t.record(OpInsert, id, nr, nil)
	return id, nil
}

// Get returns the row stored under id, or nil if deleted/never existed.
func (t *Table) Get(id int64) Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || id >= int64(len(t.rows)) {
		return nil
	}
	if t.rows[id] != nil {
		t.mReads.Inc()
	}
	return t.rows[id]
}

// Delete removes the row under id, reporting whether it existed.
func (t *Table) Delete(id int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= int64(len(t.rows)) || t.rows[id] == nil {
		return false
	}
	r := t.rows[id]
	for _, ix := range t.indexes {
		ix.remove(KeyOfColumns(r, ix.Cols), id)
	}
	t.rows[id] = nil
	t.free = append(t.free, id)
	t.live--
	t.gen.Add(1)
	t.mWrites.Inc()
	t.record(OpDelete, id, nil, r)
	return true
}

// Update replaces the row under id, maintaining indexes.
func (t *Table) Update(id int64, r Row) error {
	nr, err := t.Schema.CheckRow(r)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= int64(len(t.rows)) || t.rows[id] == nil {
		return fmt.Errorf("relstore: table %s: update of missing row %d", t.Schema.Name, id)
	}
	old := t.rows[id]
	for _, ix := range t.indexes {
		ix.remove(KeyOfColumns(old, ix.Cols), id)
	}
	added := make([]*Index, 0, len(t.indexes))
	for _, ix := range t.indexes {
		if err := ix.add(KeyOfColumns(nr, ix.Cols), id); err != nil {
			// Roll back exactly the new entries applied, then restore the
			// old ones (which cannot conflict: they coexisted before).
			for _, ix2 := range added {
				ix2.remove(KeyOfColumns(nr, ix2.Cols), id)
			}
			for _, ix2 := range t.indexes {
				_ = ix2.add(KeyOfColumns(old, ix2.Cols), id)
			}
			return err
		}
		added = append(added, ix)
	}
	t.rows[id] = nr
	t.gen.Add(1)
	t.mWrites.Inc()
	t.record(OpUpdate, id, nr, old)
	return nil
}

// Len returns the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// Scan calls fn for every live row in row-ID order until fn returns false.
// The row must not be mutated.
func (t *Table) Scan(fn func(id int64, r Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var visited uint64
	defer func() { t.mReads.Add(visited) }()
	for id, r := range t.rows {
		if r == nil {
			continue
		}
		visited++
		if !fn(int64(id), r) {
			return
		}
	}
}

// LookupEqual returns the row IDs whose indexed columns equal vals, using
// the named index.
func (t *Table) LookupEqual(indexName string, vals ...Value) ([]int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix := t.indexes[indexName]
	if ix == nil {
		return nil, fmt.Errorf("relstore: table %s: no index %q", t.Schema.Name, indexName)
	}
	if len(vals) != len(ix.Cols) {
		return nil, fmt.Errorf("relstore: index %s: got %d key values, want %d", indexName, len(vals), len(ix.Cols))
	}
	t.mLookups.Inc()
	key := EncodeKey(vals...)
	switch ix.Kind {
	case HashIndex:
		ids := ix.hash[string(key)]
		return append([]int64(nil), ids...), nil
	case BTreeIndex:
		if ix.Unique {
			if id, ok := ix.tree.Get(key); ok {
				return []int64{id}, nil
			}
			return nil, nil
		}
		var out []int64
		ix.tree.AscendPrefix(key, func(_ []byte, v int64) bool {
			out = append(out, v)
			return true
		})
		return out, nil
	}
	return nil, nil
}

// RangeBound describes one end of an index range scan.
type RangeBound struct {
	Vals      []Value // prefix of the index columns
	Inclusive bool
	Set       bool // false = unbounded
}

// LookupRange returns row IDs whose indexed key falls within [lo, hi] per
// the bounds' inclusivity, in key order. Requires a B-tree index.
func (t *Table) LookupRange(indexName string, lo, hi RangeBound) ([]int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix := t.indexes[indexName]
	if ix == nil {
		return nil, fmt.Errorf("relstore: table %s: no index %q", t.Schema.Name, indexName)
	}
	if ix.Kind != BTreeIndex {
		return nil, fmt.Errorf("relstore: index %s: range scan requires a B-tree index", indexName)
	}
	t.mLookups.Inc()
	var loKey, hiKey []byte
	if lo.Set {
		loKey = EncodeKey(lo.Vals...)
		if !lo.Inclusive {
			// Skip every key with this exact prefix.
			loKey = prefixEnd(loKey)
		}
	}
	if hi.Set {
		hiKey = EncodeKey(hi.Vals...)
		if hi.Inclusive {
			hiKey = prefixEnd(hiKey)
		}
	}
	var out []int64
	ix.tree.Ascend(loKey, hiKey, func(_ []byte, v int64) bool {
		out = append(out, v)
		return true
	})
	return out, nil
}

package relstore

import (
	"encoding/binary"
	"fmt"

	"github.com/gridmeta/hybridcat/internal/obs"
)

// IndexKind selects the logical index contract.
type IndexKind uint8

const (
	// HashIndex supports equality probes only.
	HashIndex IndexKind = iota
	// BTreeIndex supports equality and range scans in key order.
	BTreeIndex
)

// Index is a secondary index over one or more columns of a table.
// Indexes are maintained synchronously by Insert/Update/Delete inside
// the writing transaction. Both kinds are physically backed by the
// copy-on-write B-tree — the order-preserving key encoding makes an
// equality probe a prefix scan — so the Kind only gates LookupRange,
// preserving the paper's distinction between equality-only and ordered
// access paths.
type Index struct {
	Name   string
	Cols   []int
	Kind   IndexKind
	Unique bool

	tree *btree
}

func rowIDSuffix(key []byte, rowID int64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(rowID))
	return append(key, buf[:]...)
}

func (ix *Index) add(key []byte, rowID int64) error {
	if ix.Unique {
		if _, exists := ix.tree.Get(key); exists {
			return fmt.Errorf("relstore: unique index %s violated", ix.Name)
		}
		ix.tree.Insert(append([]byte(nil), key...), rowID)
		return nil
	}
	ix.tree.Insert(rowIDSuffix(append([]byte(nil), key...), rowID), rowID)
	return nil
}

func (ix *Index) remove(key []byte, rowID int64) {
	if ix.Unique {
		ix.tree.Delete(key)
		return
	}
	ix.tree.Delete(rowIDSuffix(append([]byte(nil), key...), rowID))
}

// lookupEqual collects the row IDs whose indexed columns encode to key.
func (ix *Index) lookupEqual(key []byte) []int64 {
	if ix.Unique {
		if id, ok := ix.tree.Get(key); ok {
			return []int64{id}
		}
		return nil
	}
	var out []int64
	ix.tree.AscendPrefix(key, func(_ []byte, v int64) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Table is a handle onto one table of a Database. Row IDs are stable
// for the life of the row and may be reused after deletion.
//
// A handle is one of three bindings, fixed at creation:
//
//   - live (Database.Table): each read observes the version current at
//     that call; each mutation auto-commits one transaction. Safe for
//     concurrent use — reads are lock-free, writes serialize on the
//     database's writer mutex.
//   - pinned (Snapshot.Table): reads observe exactly the pinned
//     version; mutations panic.
//   - transactional (Tx.Table): reads observe the transaction's own
//     uncommitted writes; mutations apply to its building version.
type Table struct {
	// Schema is the table's column layout; immutable.
	Schema *Schema

	name  string
	state *tableState
	db    *Database
	pin   *dbVersion // non-nil: read-only pinned version
	tx    *Tx        // non-nil: bound transaction
}

// version resolves the tableVersion this handle currently reads, or nil
// if the table has been dropped from that version.
func (t *Table) version() *tableVersion {
	switch {
	case t.tx != nil:
		return t.tx.tables[t.name]
	case t.pin != nil:
		return t.pin.tables[t.name]
	default:
		return t.db.current.Load().tables[t.name]
	}
}

// write runs fn against a writable transaction: the handle's own when
// transaction-bound, otherwise one auto-committed around the call.
// Pinned handles reject writes.
func (t *Table) write(fn func(tx *Tx) error) error {
	if t.pin != nil {
		panic(fmt.Sprintf("relstore: write to snapshot-pinned table %q", t.name))
	}
	if t.tx != nil {
		return fn(t.tx)
	}
	tx := t.db.Begin()
	if err := fn(tx); err != nil {
		tx.Abort()
		return err
	}
	tx.Commit()
	return nil
}

// setMetrics attaches the table's per-table counters from reg, labeled
// with the table name (see Database.SetMetrics).
func (st *tableState) setMetrics(reg *obs.Registry) {
	l := obs.L("table", st.schema.Name)
	st.metrics.Store(&tableMetrics{
		reads:   reg.Counter("relstore_row_reads_total", l),
		writes:  reg.Counter("relstore_row_writes_total", l),
		lookups: reg.Counter("relstore_index_lookups_total", l),
	})
}

// NewTable creates an empty standalone table with the given schema. It
// is backed by a private single-table database, so it shares the
// versioned concurrency story of Database-owned tables.
func NewTable(s *Schema) *Table {
	db := NewDatabase()
	tx := db.Begin()
	t, err := tx.createTable(s, false)
	if err != nil {
		// Impossible: the private database is empty, so the only failure
		// (duplicate name) cannot occur.
		tx.Abort()
		panic(err)
	}
	tx.Commit()
	t.tx = nil
	return t
}

// CreateIndex builds an index over the named columns, indexing existing
// rows. It fails if the name is taken, a column is unknown, or a unique
// constraint is already violated.
func (t *Table) CreateIndex(name string, kind IndexKind, unique bool, cols ...string) (*Index, error) {
	var ix *Index
	err := t.write(func(tx *Tx) error {
		var err error
		ix, err = tx.createIndex(t.name, name, kind, unique, cols...)
		return err
	})
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// Index returns the named index, or nil.
func (t *Table) Index(name string) *Index {
	tv := t.version()
	if tv == nil {
		return nil
	}
	return tv.indexes[name]
}

// Indexes returns the table's indexes (unordered).
func (t *Table) Indexes() []*Index {
	tv := t.version()
	if tv == nil {
		return nil
	}
	out := make([]*Index, 0, len(tv.indexes))
	for _, ix := range tv.indexes {
		out = append(out, ix)
	}
	return out
}

// NextAutoID returns a monotonically increasing int64, 1-based; used for
// synthetic primary keys. The counter is shared across versions of the
// table and never rewinds on abort, so IDs are unique but not dense.
func (t *Table) NextAutoID() int64 {
	return t.state.autoID.Add(1)
}

// EnsureAutoID advances the auto-ID counter to at least min, so IDs
// assigned after restoring a snapshot never collide with restored rows.
func (t *Table) EnsureAutoID(min int64) {
	for {
		cur := t.state.autoID.Load()
		if cur >= min || t.state.autoID.CompareAndSwap(cur, min) {
			return
		}
	}
}

// Insert validates the row against the schema, appends it, and maintains
// all indexes. It returns the new row ID.
func (t *Table) Insert(r Row) (int64, error) {
	var id int64
	err := t.write(func(tx *Tx) error {
		var err error
		id, err = tx.insertRow(t.name, r)
		return err
	})
	if err != nil {
		return 0, err
	}
	return id, nil
}

// Get returns the row stored under id, or nil if deleted/never existed.
// The row must not be mutated.
func (t *Table) Get(id int64) Row {
	tv := t.version()
	if tv == nil {
		return nil
	}
	r := tv.row(id)
	if r != nil {
		tv.state.countReads(1)
	}
	return r
}

// Delete removes the row under id, reporting whether it existed.
func (t *Table) Delete(id int64) bool {
	var ok bool
	_ = t.write(func(tx *Tx) error {
		ok = tx.deleteRow(t.name, id)
		return nil
	})
	return ok
}

// Update replaces the row under id, maintaining indexes.
func (t *Table) Update(id int64, r Row) error {
	return t.write(func(tx *Tx) error {
		return tx.updateRow(t.name, id, r)
	})
}

// Len returns the number of live rows.
func (t *Table) Len() int {
	tv := t.version()
	if tv == nil {
		return 0
	}
	return tv.live
}

// Scan calls fn for every live row in row-ID order until fn returns
// false. The rows must not be mutated. The whole scan observes one
// version, even on a live handle.
func (t *Table) Scan(fn func(id int64, r Row) bool) {
	tv := t.version()
	if tv == nil {
		return
	}
	tv.scan(fn)
}

// LookupEqual returns the row IDs whose indexed columns equal vals, using
// the named index.
func (t *Table) LookupEqual(indexName string, vals ...Value) ([]int64, error) {
	tv := t.version()
	if tv == nil {
		return nil, fmt.Errorf("relstore: no table %q", t.name)
	}
	ix := tv.indexes[indexName]
	if ix == nil {
		return nil, fmt.Errorf("relstore: table %s: no index %q", t.name, indexName)
	}
	if len(vals) != len(ix.Cols) {
		return nil, fmt.Errorf("relstore: index %s: got %d key values, want %d", indexName, len(vals), len(ix.Cols))
	}
	tv.state.countLookup()
	return ix.lookupEqual(EncodeKey(vals...)), nil
}

// RangeBound describes one end of an index range scan.
type RangeBound struct {
	Vals      []Value // prefix of the index columns
	Inclusive bool
	Set       bool // false = unbounded
}

// LookupRange returns row IDs whose indexed key falls within [lo, hi] per
// the bounds' inclusivity, in key order. Requires a B-tree index.
func (t *Table) LookupRange(indexName string, lo, hi RangeBound) ([]int64, error) {
	tv := t.version()
	if tv == nil {
		return nil, fmt.Errorf("relstore: no table %q", t.name)
	}
	ix := tv.indexes[indexName]
	if ix == nil {
		return nil, fmt.Errorf("relstore: table %s: no index %q", t.name, indexName)
	}
	if ix.Kind != BTreeIndex {
		return nil, fmt.Errorf("relstore: index %s: range scan requires a B-tree index", indexName)
	}
	tv.state.countLookup()
	var loKey, hiKey []byte
	if lo.Set {
		loKey = EncodeKey(lo.Vals...)
		if !lo.Inclusive {
			// Skip every key with this exact prefix.
			loKey = prefixEnd(loKey)
		}
	}
	if hi.Set {
		hiKey = EncodeKey(hi.Vals...)
		if hi.Inclusive {
			hiKey = prefixEnd(hiKey)
		}
	}
	var out []int64
	ix.tree.Ascend(loKey, hiKey, func(_ []byte, v int64) bool {
		out = append(out, v)
		return true
	})
	return out, nil
}

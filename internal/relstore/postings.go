package relstore

import (
	"fmt"

	"github.com/gridmeta/hybridcat/internal/bitset"
)

// Posting-list emission: the bitmap twins of LookupEqual/LookupRange.
// Instead of materializing an intermediate []int64, each matching row
// ID streams from the B-tree callback straight into a compressed
// bitset. Sequentially assigned row IDs arrive in nearly ascending
// clustered order, so the set's last-chunk fast path makes each insert
// O(1) and the result compresses to run containers under Optimize.
// These feed the catalog's Figure-4 bitmap pipeline (posting lists per
// criterion probe); the slice forms remain the row-at-a-time oracle.

// LookupEqualPostings adds to dst the row IDs whose indexed columns
// equal vals, using the named index. Validation and index-lookup
// accounting match LookupEqual exactly.
func (t *Table) LookupEqualPostings(indexName string, dst *bitset.Set, vals ...Value) error {
	tv := t.version()
	if tv == nil {
		return fmt.Errorf("relstore: no table %q", t.name)
	}
	ix := tv.indexes[indexName]
	if ix == nil {
		return fmt.Errorf("relstore: table %s: no index %q", t.name, indexName)
	}
	if len(vals) != len(ix.Cols) {
		return fmt.Errorf("relstore: index %s: got %d key values, want %d", indexName, len(vals), len(ix.Cols))
	}
	tv.state.countLookup()
	key := EncodeKey(vals...)
	if ix.Unique {
		if id, ok := ix.tree.Get(key); ok {
			dst.Add(uint64(id))
		}
		return nil
	}
	ix.tree.AscendPrefix(key, func(_ []byte, v int64) bool {
		dst.Add(uint64(v))
		return true
	})
	return nil
}

// LookupRangePostings adds to dst the row IDs whose indexed key falls
// within [lo, hi] per the bounds' inclusivity. Requires a B-tree index;
// bound encoding matches LookupRange exactly.
func (t *Table) LookupRangePostings(indexName string, dst *bitset.Set, lo, hi RangeBound) error {
	tv := t.version()
	if tv == nil {
		return fmt.Errorf("relstore: no table %q", t.name)
	}
	ix := tv.indexes[indexName]
	if ix == nil {
		return fmt.Errorf("relstore: table %s: no index %q", t.name, indexName)
	}
	if ix.Kind != BTreeIndex {
		return fmt.Errorf("relstore: index %s: range scan requires a B-tree index", indexName)
	}
	tv.state.countLookup()
	var loKey, hiKey []byte
	if lo.Set {
		loKey = EncodeKey(lo.Vals...)
		if !lo.Inclusive {
			loKey = prefixEnd(loKey)
		}
	}
	if hi.Set {
		hiKey = EncodeKey(hi.Vals...)
		if hi.Inclusive {
			hiKey = prefixEnd(hiKey)
		}
	}
	ix.tree.Ascend(loKey, hiKey, func(_ []byte, v int64) bool {
		dst.Add(uint64(v))
		return true
	})
	return nil
}

// ScanRowIDPostings adds every live row ID to dst in row-ID order —
// the full-table posting list, used when a criterion has no usable
// index. The whole scan observes one version, even on a live handle.
func (t *Table) ScanRowIDPostings(dst *bitset.Set) {
	tv := t.version()
	if tv == nil {
		return
	}
	tv.scan(func(id int64, _ Row) bool {
		dst.Add(uint64(id))
		return true
	})
}

// ScanTextPostings calls fn(doc, text) for every live row whose textCol
// holds a string, keyed by docCol's integer value — the emission hook
// the catalog's text index builds from (one call per elem_data sval).
// The whole scan observes one version, even on a live handle.
func (t *Table) ScanTextPostings(docCol, textCol int, fn func(doc int64, text string)) {
	tv := t.version()
	if tv == nil {
		return
	}
	tv.scan(func(_ int64, r Row) bool {
		if textCol < len(r) && docCol < len(r) && r[textCol].K == KString {
			fn(r[docCol].I, r[textCol].S)
		}
		return true
	})
}

package relstore

import (
	"testing"
	"testing/quick"
)

func TestCmpOpHolds(t *testing.T) {
	cases := []struct {
		op   CmpOp
		a, b Value
		want bool
	}{
		{OpEq, Int(1), Int(1), true},
		{OpEq, Int(1), Float(1.0), true},
		{OpNe, Int(1), Int(2), true},
		{OpLt, Str("a"), Str("b"), true},
		{OpLe, Int(2), Int(2), true},
		{OpGt, Float(2.5), Int(2), true},
		{OpGe, Int(2), Int(3), false},
		// NULL never compares.
		{OpEq, Null(), Null(), false},
		{OpNe, Null(), Int(1), false},
	}
	for _, c := range cases {
		if got := c.op.Holds(c.a, c.b); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestParseCmpOp(t *testing.T) {
	for s, want := range map[string]CmpOp{"=": OpEq, "==": OpEq, "<>": OpNe, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe} {
		got, err := ParseCmpOp(s)
		if err != nil || got != want {
			t.Errorf("ParseCmpOp(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseCmpOp("~"); err == nil {
		t.Error("ParseCmpOp(~) should fail")
	}
}

func TestExprEval(t *testing.T) {
	row := Row{Int(10), Str("hello"), Float(2.5), Null()}
	e := Cmp{Op: OpGt, L: ColRef{Idx: 0, Name: "a"}, R: Const{V: Int(5)}}
	if v := e.Eval(row); !v.AsBool() {
		t.Error("10 > 5 should hold")
	}
	and := Logic{Op: OpAnd, Args: []Expr{
		Cmp{Op: OpEq, L: ColRef{Idx: 1}, R: Const{V: Str("hello")}},
		Cmp{Op: OpLt, L: ColRef{Idx: 2}, R: Const{V: Float(3)}},
	}}
	if v := and.Eval(row); !v.AsBool() {
		t.Error("AND should hold")
	}
	not := Logic{Op: OpNot, Args: []Expr{and}}
	if v := not.Eval(row); v.AsBool() {
		t.Error("NOT should invert")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	row := Row{Null(), Int(1)}
	nullCmp := Cmp{Op: OpEq, L: ColRef{Idx: 0}, R: Const{V: Int(1)}}
	trueCmp := Cmp{Op: OpEq, L: ColRef{Idx: 1}, R: Const{V: Int(1)}}
	falseCmp := Cmp{Op: OpEq, L: ColRef{Idx: 1}, R: Const{V: Int(2)}}

	// NULL AND false = false; NULL AND true = NULL.
	if v := (Logic{Op: OpAnd, Args: []Expr{nullCmp, falseCmp}}).Eval(row); v.IsNull() || v.AsBool() {
		t.Errorf("NULL AND false = %v, want false", v)
	}
	if v := (Logic{Op: OpAnd, Args: []Expr{nullCmp, trueCmp}}).Eval(row); !v.IsNull() {
		t.Errorf("NULL AND true = %v, want NULL", v)
	}
	// NULL OR true = true; NULL OR false = NULL.
	if v := (Logic{Op: OpOr, Args: []Expr{nullCmp, trueCmp}}).Eval(row); v.IsNull() || !v.AsBool() {
		t.Errorf("NULL OR true = %v, want true", v)
	}
	if v := (Logic{Op: OpOr, Args: []Expr{nullCmp, falseCmp}}).Eval(row); !v.IsNull() {
		t.Errorf("NULL OR false = %v, want NULL", v)
	}
	// NOT NULL = NULL.
	if v := (Logic{Op: OpNot, Args: []Expr{nullCmp}}).Eval(row); !v.IsNull() {
		t.Errorf("NOT NULL = %v, want NULL", v)
	}
}

func TestArith(t *testing.T) {
	row := Row{Int(7), Int(2), Float(0.5)}
	a, b, c := ColRef{Idx: 0}, ColRef{Idx: 1}, ColRef{Idx: 2}
	cases := []struct {
		e    Expr
		want Value
	}{
		{Arith{OpAdd, a, b}, Int(9)},
		{Arith{OpSub, a, b}, Int(5)},
		{Arith{OpMul, a, b}, Int(14)},
		{Arith{OpDiv, a, b}, Int(3)},
		{Arith{OpMod, a, b}, Int(1)},
		{Arith{OpAdd, a, c}, Float(7.5)},
		{Arith{OpDiv, a, Const{V: Int(0)}}, Null()},
		{Arith{OpAdd, a, Const{V: Null()}}, Null()},
	}
	for _, tc := range cases {
		if got := tc.e.Eval(row); Compare(got, tc.want) != 0 || got.IsNull() != tc.want.IsNull() {
			t.Errorf("%s = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestIsNullAndLike(t *testing.T) {
	row := Row{Null(), Str("metadata catalog")}
	if !(IsNullExpr{Arg: ColRef{Idx: 0}}).Eval(row).AsBool() {
		t.Error("IS NULL failed")
	}
	if !(IsNullExpr{Arg: ColRef{Idx: 1}, Neg: true}).Eval(row).AsBool() {
		t.Error("IS NOT NULL failed")
	}
	like := func(p string) bool {
		return (LikeExpr{Arg: ColRef{Idx: 1}, Pattern: p}).Eval(row).AsBool()
	}
	if !like("meta%") || !like("%catalog") || !like("%data cat%") || !like("metadata catalog") {
		t.Error("LIKE positive cases failed")
	}
	if like("meta") || like("x%") || like("%xyz%") {
		t.Error("LIKE negative cases matched")
	}
	if !like("met_data%") || like("met__data%") {
		t.Error("LIKE underscore handling wrong")
	}
	if v := (LikeExpr{Arg: ColRef{Idx: 0}, Pattern: "%"}).Eval(row); !v.IsNull() {
		t.Error("NULL LIKE should be NULL")
	}
}

func TestLikeMatchProperty(t *testing.T) {
	// s LIKE s, s LIKE "%", s LIKE s+"%" always hold.
	f := func(s string) bool {
		if len(s) > 30 {
			s = s[:30]
		}
		// Avoid wildcard bytes inside s for the self-match case.
		clean := []byte(s)
		for i, c := range clean {
			if c == '%' || c == '_' {
				clean[i] = 'a'
			}
		}
		cs := string(clean)
		return likeMatch(cs, cs) && likeMatch(cs, "%") && likeMatch(cs, cs+"%") && likeMatch(cs, "%"+cs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFuncExpr(t *testing.T) {
	row := Row{Str("MiXeD"), Int(-5), Null(), Float(-2.5)}
	cases := []struct {
		name string
		args []Expr
		want Value
	}{
		{"UPPER", []Expr{ColRef{Idx: 0}}, Str("MIXED")},
		{"LOWER", []Expr{ColRef{Idx: 0}}, Str("mixed")},
		{"LENGTH", []Expr{ColRef{Idx: 0}}, Int(5)},
		{"ABS", []Expr{ColRef{Idx: 1}}, Int(5)},
		{"ABS", []Expr{ColRef{Idx: 3}}, Float(2.5)},
		{"COALESCE", []Expr{ColRef{Idx: 2}, ColRef{Idx: 1}}, Int(-5)},
	}
	for _, tc := range cases {
		got := (FuncExpr{Name: tc.name, Args: tc.args}).Eval(row)
		if Compare(got, tc.want) != 0 {
			t.Errorf("%s = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPredOf(t *testing.T) {
	p := PredOf(Cmp{Op: OpEq, L: ColRef{Idx: 0}, R: Const{V: Int(1)}})
	if !p(Row{Int(1)}) || p(Row{Int(2)}) || p(Row{Null()}) {
		t.Error("PredOf misbehaved")
	}
}

package relstore

import (
	"slices"
	"testing"

	"github.com/gridmeta/hybridcat/internal/bitset"
)

// newPostingsTable builds a table with hash, B-tree, and unique indexes
// populated with enough rows to exercise multi-row postings.
func newPostingsTable(t *testing.T) *Table {
	t.Helper()
	tab := newTestTable(t)
	if _, err := tab.CreateIndex("by_name", HashIndex, false, "name"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateIndex("by_age", BTreeIndex, false, "age"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateIndex("pk", BTreeIndex, true, "id"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		name := "even"
		if i%2 == 1 {
			name = "odd"
		}
		if _, err := tab.Insert(Row{Int(int64(i)), Str(name), Int(int64(i % 25))}); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// asUint64 converts the slice-path row IDs for comparison; the posting
// path yields sorted keys, so sort here too.
func asUint64(ids []int64) []uint64 {
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	slices.Sort(out)
	return out
}

func TestLookupEqualPostingsMatchesSlicePath(t *testing.T) {
	tab := newPostingsTable(t)
	for _, name := range []string{"even", "odd", "missing"} {
		ids, err := tab.LookupEqual("by_name", Str(name))
		if err != nil {
			t.Fatal(err)
		}
		set := bitset.New()
		if err := tab.LookupEqualPostings("by_name", set, Str(name)); err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(set.Slice(), asUint64(ids)) {
			t.Fatalf("name=%q: postings %v != slice path %v", name, set.Slice(), ids)
		}
	}
	// Unique-index probe: zero or one posting.
	for _, id := range []int64{7, 9999} {
		ids, err := tab.LookupEqual("pk", Int(id))
		if err != nil {
			t.Fatal(err)
		}
		set := bitset.New()
		if err := tab.LookupEqualPostings("pk", set, Int(id)); err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(set.Slice(), asUint64(ids)) {
			t.Fatalf("pk=%d: postings %v != slice path %v", id, set.Slice(), ids)
		}
	}
	// Validation parity with the slice path.
	if err := tab.LookupEqualPostings("nope", bitset.New(), Str("x")); err == nil {
		t.Error("unknown index should fail")
	}
	if err := tab.LookupEqualPostings("by_name", bitset.New()); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestLookupRangePostingsMatchesSlicePath(t *testing.T) {
	tab := newPostingsTable(t)
	bounds := []struct {
		name   string
		lo, hi RangeBound
	}{
		{"unbounded", RangeBound{}, RangeBound{}},
		{"ge", RangeBound{Vals: []Value{Int(10)}, Inclusive: true, Set: true}, RangeBound{}},
		{"gt", RangeBound{Vals: []Value{Int(10)}, Set: true}, RangeBound{}},
		{"le", RangeBound{}, RangeBound{Vals: []Value{Int(10)}, Inclusive: true, Set: true}},
		{"lt", RangeBound{}, RangeBound{Vals: []Value{Int(10)}, Set: true}},
		{"window", RangeBound{Vals: []Value{Int(5)}, Inclusive: true, Set: true}, RangeBound{Vals: []Value{Int(9)}, Inclusive: true, Set: true}},
		{"empty", RangeBound{Vals: []Value{Int(90)}, Inclusive: true, Set: true}, RangeBound{Vals: []Value{Int(95)}, Inclusive: true, Set: true}},
	}
	for _, b := range bounds {
		ids, err := tab.LookupRange("by_age", b.lo, b.hi)
		if err != nil {
			t.Fatal(err)
		}
		set := bitset.New()
		if err := tab.LookupRangePostings("by_age", set, b.lo, b.hi); err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(set.Slice(), asUint64(ids)) {
			t.Fatalf("%s: postings card %d != slice path %d rows", b.name, set.Card(), len(ids))
		}
	}
	if err := tab.LookupRangePostings("by_name", bitset.New(), RangeBound{}, RangeBound{}); err == nil {
		t.Error("range over hash index should fail")
	}
}

func TestScanRowIDPostings(t *testing.T) {
	tab := newPostingsTable(t)
	var want []uint64
	tab.Scan(func(id int64, _ Row) bool {
		want = append(want, uint64(id))
		return true
	})
	set := bitset.New()
	tab.ScanRowIDPostings(set)
	if !slices.Equal(set.Slice(), want) {
		t.Fatalf("scan postings card %d != %d live rows", set.Card(), len(want))
	}
	// Sequential row IDs should compress to a single run container.
	set.Optimize()
	if st := set.Stats(); st.Run != 1 || st.Containers() != 1 {
		t.Fatalf("sequential row IDs: stats %v, want one run container", st)
	}
}

package relstore

import (
	"fmt"
	"sort"
)

// Iterator is the volcano-style row stream produced by the executor.
// Next returns rows until ok is false. Rows are read-only; operators that
// buffer copy them. Iterators are single-use and not goroutine-safe.
type Iterator interface {
	// Columns names the output columns, positionally.
	Columns() []string
	// Next returns the next row, or ok=false at end of stream.
	Next() (row Row, ok bool)
}

// sliceIter streams a materialized row slice.
type sliceIter struct {
	cols []string
	rows []Row
	pos  int
}

func (s *sliceIter) Columns() []string { return s.cols }

func (s *sliceIter) Next() (Row, bool) {
	if s.pos >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true
}

// NewSliceIter wraps rows in an Iterator.
func NewSliceIter(cols []string, rows []Row) Iterator {
	return &sliceIter{cols: cols, rows: rows}
}

// Collect drains an iterator into a slice.
func Collect(it Iterator) []Row {
	var out []Row
	for {
		r, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// ScanTable snapshots the table's live rows into an iterator. The snapshot
// copies row headers only, so a scan is stable under concurrent mutation.
func ScanTable(t *Table) Iterator {
	rows := make([]Row, 0, t.Len())
	t.Scan(func(_ int64, r Row) bool {
		rows = append(rows, r)
		return true
	})
	return NewSliceIter(colNames(t.Schema), rows)
}

// ScanRowIDs streams the rows stored under ids (skipping deleted ones), in
// the given order.
func ScanRowIDs(t *Table, ids []int64) Iterator {
	rows := make([]Row, 0, len(ids))
	for _, id := range ids {
		if r := t.Get(id); r != nil {
			rows = append(rows, r)
		}
	}
	return NewSliceIter(colNames(t.Schema), rows)
}

func colNames(s *Schema) []string {
	cols := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = c.Name
	}
	return cols
}

// filterIter applies a predicate lazily.
type filterIter struct {
	in   Iterator
	pred func(Row) bool
}

func (f *filterIter) Columns() []string { return f.in.Columns() }

func (f *filterIter) Next() (Row, bool) {
	for {
		r, ok := f.in.Next()
		if !ok {
			return nil, false
		}
		if f.pred(r) {
			return r, true
		}
	}
}

// Filter returns the rows of in satisfying pred.
func Filter(in Iterator, pred func(Row) bool) Iterator {
	return &filterIter{in: in, pred: pred}
}

// projectIter remaps columns lazily.
type projectIter struct {
	in   Iterator
	cols []string
	idx  []int
}

func (p *projectIter) Columns() []string { return p.cols }

func (p *projectIter) Next() (Row, bool) {
	r, ok := p.in.Next()
	if !ok {
		return nil, false
	}
	out := make(Row, len(p.idx))
	for i, j := range p.idx {
		out[i] = r[j]
	}
	return out, true
}

// Project keeps the given input column positions under new names. names
// may be nil to reuse the input names.
func Project(in Iterator, idx []int, names []string) Iterator {
	if names == nil {
		inCols := in.Columns()
		names = make([]string, len(idx))
		for i, j := range idx {
			names[i] = inCols[j]
		}
	}
	return &projectIter{in: in, cols: names, idx: idx}
}

// JoinKind selects join semantics.
type JoinKind uint8

const (
	// InnerJoin emits concatenated left+right rows for every match.
	InnerJoin JoinKind = iota
	// LeftJoin additionally emits left rows with NULL right columns when
	// unmatched.
	LeftJoin
	// SemiJoin emits each left row at most once when a match exists.
	SemiJoin
	// AntiJoin emits each left row only when no match exists.
	AntiJoin
)

// HashJoin joins left and right on equality of the keyed columns. The
// right side is built into a hash table; the left side streams. NULL keys
// never match (SQL semantics).
func HashJoin(left, right Iterator, leftKey, rightKey []int, kind JoinKind) Iterator {
	build := make(map[string][]Row)
	rightCols := right.Columns()
	for {
		r, ok := right.Next()
		if !ok {
			break
		}
		if hasNull(r, rightKey) {
			continue
		}
		k := string(KeyOfColumns(r, rightKey))
		build[k] = append(build[k], r)
	}
	leftCols := left.Columns()
	var outCols []string
	switch kind {
	case SemiJoin, AntiJoin:
		outCols = leftCols
	default:
		outCols = append(append([]string{}, leftCols...), rightCols...)
	}
	return &hashJoinIter{
		left: left, build: build, leftKey: leftKey, kind: kind,
		cols: outCols, nright: len(rightCols),
	}
}

type hashJoinIter struct {
	left    Iterator
	build   map[string][]Row
	leftKey []int
	kind    JoinKind
	cols    []string
	nright  int

	pendingLeft  Row
	pendingMatch []Row
	pendingPos   int
}

func (h *hashJoinIter) Columns() []string { return h.cols }

func (h *hashJoinIter) Next() (Row, bool) {
	for {
		if h.pendingLeft != nil && h.pendingPos < len(h.pendingMatch) {
			r := concatRows(h.pendingLeft, h.pendingMatch[h.pendingPos])
			h.pendingPos++
			return r, true
		}
		h.pendingLeft = nil
		l, ok := h.left.Next()
		if !ok {
			return nil, false
		}
		var matches []Row
		if !hasNull(l, h.leftKey) {
			matches = h.build[string(KeyOfColumns(l, h.leftKey))]
		}
		switch h.kind {
		case SemiJoin:
			if len(matches) > 0 {
				return l, true
			}
		case AntiJoin:
			if len(matches) == 0 {
				return l, true
			}
		case LeftJoin:
			if len(matches) == 0 {
				return concatRows(l, make(Row, h.nright)), true
			}
			h.pendingLeft, h.pendingMatch, h.pendingPos = l, matches, 0
		case InnerJoin:
			if len(matches) > 0 {
				h.pendingLeft, h.pendingMatch, h.pendingPos = l, matches, 0
			}
		}
	}
}

func concatRows(a, b Row) Row {
	out := make(Row, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func hasNull(r Row, cols []int) bool {
	for _, c := range cols {
		if r[c].IsNull() {
			return true
		}
	}
	return false
}

// SortSpec orders by one column.
type SortSpec struct {
	Col  int
	Desc bool
}

// Sort materializes and sorts the input (stable).
func Sort(in Iterator, specs ...SortSpec) Iterator {
	rows := Collect(in)
	sort.SliceStable(rows, func(i, j int) bool {
		for _, s := range specs {
			c := Compare(rows[i][s.Col], rows[j][s.Col])
			if c == 0 {
				continue
			}
			if s.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return NewSliceIter(in.Columns(), rows)
}

// AggFunc enumerates the supported aggregates.
type AggFunc uint8

const (
	// AggCount counts rows (ignores Col).
	AggCount AggFunc = iota
	// AggCountCol counts non-NULL values of Col (SQL COUNT(col)).
	AggCountCol
	// AggCountDistinct counts distinct non-NULL values of Col.
	AggCountDistinct
	// AggSum sums numeric values of Col.
	AggSum
	// AggMin takes the minimum of Col.
	AggMin
	// AggMax takes the maximum of Col.
	AggMax
	// AggAvg averages numeric values of Col.
	AggAvg
)

// AggSpec describes one output aggregate.
type AggSpec struct {
	Func AggFunc
	Col  int
	Name string
}

type aggState struct {
	count    int64
	sum      float64
	sumInt   int64
	intOnly  bool
	min, max Value
	distinct map[string]struct{}
	seen     bool
}

// GroupBy groups the input on keyCols and computes aggs per group. Output
// columns are the key columns (input names) followed by the aggregate
// names. Groups are emitted in first-seen order.
func GroupBy(in Iterator, keyCols []int, aggs []AggSpec) Iterator {
	type group struct {
		key    Row
		states []*aggState
	}
	index := make(map[string]*group)
	var order []*group
	for {
		r, ok := in.Next()
		if !ok {
			break
		}
		k := string(KeyOfColumns(r, keyCols))
		g := index[k]
		if g == nil {
			key := make(Row, len(keyCols))
			for i, c := range keyCols {
				key[i] = r[c]
			}
			g = &group{key: key, states: make([]*aggState, len(aggs))}
			for i := range aggs {
				g.states[i] = &aggState{intOnly: true}
				if aggs[i].Func == AggCountDistinct {
					g.states[i].distinct = make(map[string]struct{})
				}
			}
			index[k] = g
			order = append(order, g)
		}
		for i, a := range aggs {
			updateAgg(g.states[i], a, r)
		}
	}
	inCols := in.Columns()
	cols := make([]string, 0, len(keyCols)+len(aggs))
	for _, c := range keyCols {
		cols = append(cols, inCols[c])
	}
	for _, a := range aggs {
		cols = append(cols, a.Name)
	}
	rows := make([]Row, 0, len(order))
	for _, g := range order {
		out := make(Row, 0, len(cols))
		out = append(out, g.key...)
		for i, a := range aggs {
			out = append(out, finishAgg(g.states[i], a))
		}
		rows = append(rows, out)
	}
	return NewSliceIter(cols, rows)
}

func updateAgg(st *aggState, a AggSpec, r Row) {
	switch a.Func {
	case AggCount:
		st.count++
	case AggCountCol:
		if !r[a.Col].IsNull() {
			st.count++
		}
	case AggCountDistinct:
		v := r[a.Col]
		if !v.IsNull() {
			st.distinct[string(EncodeKey(v))] = struct{}{}
		}
	case AggSum, AggAvg:
		v := r[a.Col]
		if v.IsNull() {
			return
		}
		st.count++
		if v.K == KInt {
			st.sumInt += v.I
			st.sum += float64(v.I)
		} else if f, ok := v.AsFloat(); ok {
			st.intOnly = false
			st.sum += f
		}
	case AggMin, AggMax:
		v := r[a.Col]
		if v.IsNull() {
			return
		}
		if !st.seen {
			st.min, st.max, st.seen = v, v, true
			return
		}
		if Compare(v, st.min) < 0 {
			st.min = v
		}
		if Compare(v, st.max) > 0 {
			st.max = v
		}
	}
}

func finishAgg(st *aggState, a AggSpec) Value {
	switch a.Func {
	case AggCount, AggCountCol:
		return Int(st.count)
	case AggCountDistinct:
		return Int(int64(len(st.distinct)))
	case AggSum:
		if st.count == 0 {
			return Null()
		}
		if st.intOnly {
			return Int(st.sumInt)
		}
		return Float(st.sum)
	case AggAvg:
		if st.count == 0 {
			return Null()
		}
		return Float(st.sum / float64(st.count))
	case AggMin:
		if !st.seen {
			return Null()
		}
		return st.min
	case AggMax:
		if !st.seen {
			return Null()
		}
		return st.max
	}
	return Null()
}

// Distinct removes duplicate rows (whole-row), keeping first occurrences.
func Distinct(in Iterator) Iterator {
	seen := make(map[string]struct{})
	var rows []Row
	for {
		r, ok := in.Next()
		if !ok {
			break
		}
		all := make([]int, len(r))
		for i := range all {
			all[i] = i
		}
		k := string(KeyOfColumns(r, all))
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		rows = append(rows, r)
	}
	return NewSliceIter(in.Columns(), rows)
}

// Limit truncates the stream after n rows (skipping offset rows first).
func Limit(in Iterator, offset, n int64) Iterator {
	return &limitIter{in: in, skip: offset, n: n}
}

type limitIter struct {
	in   Iterator
	skip int64
	n    int64
}

func (l *limitIter) Columns() []string { return l.in.Columns() }

func (l *limitIter) Next() (Row, bool) {
	for l.skip > 0 {
		if _, ok := l.in.Next(); !ok {
			return nil, false
		}
		l.skip--
	}
	if l.n <= 0 {
		return nil, false
	}
	l.n--
	return l.in.Next()
}

// Union concatenates streams with identical arity.
func Union(its ...Iterator) Iterator {
	if len(its) == 0 {
		return NewSliceIter(nil, nil)
	}
	return &unionIter{its: its}
}

type unionIter struct {
	its []Iterator
	pos int
}

func (u *unionIter) Columns() []string { return u.its[0].Columns() }

func (u *unionIter) Next() (Row, bool) {
	for u.pos < len(u.its) {
		if r, ok := u.its[u.pos].Next(); ok {
			return r, true
		}
		u.pos++
	}
	return nil, false
}

// InsertFrom drains it into table t, returning the number of rows
// inserted.
func InsertFrom(t *Table, it Iterator) (int64, error) {
	var n int64
	for {
		r, ok := it.Next()
		if !ok {
			return n, nil
		}
		if _, err := t.Insert(r); err != nil {
			return n, fmt.Errorf("insert into %s: %w", t.Schema.Name, err)
		}
		n++
	}
}

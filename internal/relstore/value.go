// Package relstore implements the embedded in-memory relational engine that
// backs the hybrid metadata catalog. It provides typed tables, hash and
// B-tree indexes, and a volcano-style iterator executor with filters,
// projections, hash joins, grouping, sorting, and set operations.
//
// The engine stands in for the commercial RDBMS the myLEAD catalog ran on:
// the paper's contribution is how metadata maps onto relational set
// operations, and relstore preserves those asymptotics (index lookups,
// joins, group-by counting) with stdlib-only Go.
package relstore

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// Value kinds. KNull is the zero Kind so that a zero Value is SQL NULL.
const (
	KNull Kind = iota
	KInt
	KFloat
	KString
	KBytes
	KBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KNull:
		return "NULL"
	case KInt:
		return "BIGINT"
	case KFloat:
		return "DOUBLE"
	case KString:
		return "TEXT"
	case KBytes:
		return "BLOB"
	case KBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a tagged union holding a single SQL value. The zero Value is
// NULL. Values are compared with Compare, which defines a total order used
// by indexes and ORDER BY: NULL < booleans < numbers < strings < blobs,
// with ints and floats compared numerically against each other.
type Value struct {
	K Kind
	I int64   // KInt; KBool stores 0 or 1 here
	F float64 // KFloat
	S string  // KString
	B []byte  // KBytes
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int wraps an int64.
func Int(i int64) Value { return Value{K: KInt, I: i} }

// Float wraps a float64.
func Float(f float64) Value { return Value{K: KFloat, F: f} }

// Str wraps a string.
func Str(s string) Value { return Value{K: KString, S: s} }

// Bytes wraps a byte slice. The slice is not copied.
func Bytes(b []byte) Value { return Value{K: KBytes, B: b} }

// Bool wraps a bool.
func Bool(b bool) Value {
	v := Value{K: KBool}
	if b {
		v.I = 1
	}
	return v
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KNull }

// AsInt returns the value as an int64, truncating floats and parsing
// numeric strings. ok is false when no numeric interpretation exists.
func (v Value) AsInt() (i int64, ok bool) {
	switch v.K {
	case KInt, KBool:
		return v.I, true
	case KFloat:
		return int64(v.F), true
	case KString:
		n, err := strconv.ParseInt(v.S, 10, 64)
		return n, err == nil
	}
	return 0, false
}

// AsFloat returns the value as a float64 when a numeric interpretation
// exists.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.K {
	case KInt, KBool:
		return float64(v.I), true
	case KFloat:
		return v.F, true
	case KString:
		n, err := strconv.ParseFloat(v.S, 64)
		return n, err == nil
	}
	return 0, false
}

// AsString renders the value as a string. NULL renders as the empty string.
func (v Value) AsString() string {
	switch v.K {
	case KNull:
		return ""
	case KInt:
		return strconv.FormatInt(v.I, 10)
	case KFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KString:
		return v.S
	case KBytes:
		return string(v.B)
	case KBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	}
	return ""
}

// AsBool interprets the value as a truth value: NULL and zero values are
// false, everything else true.
func (v Value) AsBool() bool {
	switch v.K {
	case KNull:
		return false
	case KInt, KBool:
		return v.I != 0
	case KFloat:
		return v.F != 0
	case KString:
		return v.S != ""
	case KBytes:
		return len(v.B) > 0
	}
	return false
}

// String implements fmt.Stringer for debugging output.
func (v Value) String() string {
	if v.K == KNull {
		return "NULL"
	}
	if v.K == KString {
		return strconv.Quote(v.S)
	}
	return v.AsString()
}

// typeRank orders kinds for cross-type comparison. Ints and floats share a
// rank so they compare numerically.
func typeRank(k Kind) int {
	switch k {
	case KNull:
		return 0
	case KBool:
		return 1
	case KInt, KFloat:
		return 2
	case KString:
		return 3
	case KBytes:
		return 4
	}
	return 5
}

// Compare defines the engine's total order over values, returning -1, 0, or
// +1. NULL sorts before everything and equals only NULL.
func Compare(a, b Value) int {
	ra, rb := typeRank(a.K), typeRank(b.K)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch a.K {
	case KNull:
		return 0
	case KBool:
		return cmpInt(a.I, b.I)
	case KInt:
		if b.K == KInt {
			return cmpInt(a.I, b.I)
		}
		return cmpFloat(float64(a.I), b.F)
	case KFloat:
		if b.K == KInt {
			return cmpFloat(a.F, float64(b.I))
		}
		return cmpFloat(a.F, b.F)
	case KString:
		if a.S < b.S {
			return -1
		} else if a.S > b.S {
			return 1
		}
		return 0
	case KBytes:
		return cmpBytes(a.B, b.B)
	}
	return 0
}

// Equal reports whether a and b compare as equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	}
	// NaNs sort before all other floats and equal each other, keeping the
	// order total.
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	}
	return 1
}

func cmpBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return cmpInt(int64(len(a)), int64(len(b)))
}

// Coerce converts v to kind k when a lossless-enough conversion exists;
// it returns an error otherwise. NULL coerces to any kind (staying NULL).
func Coerce(v Value, k Kind) (Value, error) {
	if v.K == KNull || v.K == k {
		return v, nil
	}
	switch k {
	case KInt:
		if i, ok := v.AsInt(); ok {
			return Int(i), nil
		}
	case KFloat:
		if f, ok := v.AsFloat(); ok {
			return Float(f), nil
		}
	case KString:
		return Str(v.AsString()), nil
	case KBytes:
		return Bytes([]byte(v.AsString())), nil
	case KBool:
		return Bool(v.AsBool()), nil
	}
	return Value{}, fmt.Errorf("relstore: cannot coerce %s value %s to %s", v.K, v, k)
}

// Row is a tuple of values. Rows returned by iterators must be treated as
// read-only; operators that buffer rows copy them first.
type Row []Value

// CloneRow returns a copy of r sharing string/byte backing storage.
func CloneRow(r Row) Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

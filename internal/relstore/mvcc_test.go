package relstore

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// Snapshot-isolation oracle suite. A randomized op log of small
// transactions runs against the multi-version database while a
// single-threaded reference interpreter — a plain map, no relstore code
// — replays the same log and records the expected logical contents
// after every commit. Committed transactions advance the epoch by
// exactly one, so the interpreter's i-th state is the ground truth for
// epoch base+i; every pinned snapshot must fingerprint to exactly its
// epoch's state, no matter how many later versions have been published
// (structural sharing must never leak a newer page or index into an
// older version) and no matter how the reads interleave with writers
// (a pinned reader can see neither torn state nor future writes).

// mvccOp addresses rows by the logical key column, not by row ID — row
// IDs are an artifact the oracle deliberately ignores.
type mvccOp struct {
	del     bool
	key     int64
	payload string
	n       float64
}

// mvccTx is one transaction of the op log; aborted transactions must
// leave no trace.
type mvccTx struct {
	ops   []mvccOp
	abort bool
}

type mvccRef struct {
	payload string
	n       float64
}

// mvccModel is the reference interpreter's state: logical key → value.
type mvccModel map[int64]mvccRef

func (m mvccModel) apply(tx mvccTx) {
	if tx.abort {
		return
	}
	for _, op := range tx.ops {
		if op.del {
			delete(m, op.key)
		} else {
			m[op.key] = mvccRef{payload: op.payload, n: op.n}
		}
	}
}

func (m mvccModel) fingerprint() string {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var b strings.Builder
	for _, k := range keys {
		r := m[k]
		fmt.Fprintf(&b, "%d=%s/%g;", k, r.payload, r.n)
	}
	return b.String()
}

// tableFingerprint serializes a table binding's logical contents in key
// order, row IDs excluded.
func tableFingerprint(t *Table) string {
	type kv struct {
		k       int64
		payload string
		n       float64
	}
	var rows []kv
	t.Scan(func(_ int64, r Row) bool {
		rows = append(rows, kv{k: r[0].I, payload: r[1].S, n: r[2].F})
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].k < rows[j].k })
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%d=%s/%g;", r.k, r.payload, r.n)
	}
	return b.String()
}

// genMvccLog builds a deterministic op log: keys drawn from a small
// space so inserts, updates, deletes, and key reuse all occur; roughly
// one transaction in eight aborts.
func genMvccLog(rng *rand.Rand, txs, keySpace int) []mvccTx {
	payloads := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	log := make([]mvccTx, txs)
	for i := range log {
		n := 1 + rng.Intn(4)
		ops := make([]mvccOp, n)
		for j := range ops {
			key := int64(rng.Intn(keySpace))
			if rng.Intn(3) == 0 {
				ops[j] = mvccOp{del: true, key: key}
			} else {
				ops[j] = mvccOp{
					key:     key,
					payload: payloads[rng.Intn(len(payloads))],
					n:       float64(rng.Intn(1000)),
				}
			}
		}
		log[i] = mvccTx{ops: ops, abort: rng.Intn(8) == 0}
	}
	return log
}

// newMvccDB creates the suite's table: unique B-tree on the key, a
// non-unique index on the payload so index maintenance is exercised on
// both kinds.
func newMvccDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	tab, err := db.CreateTable("acct",
		Column{Name: "k", Type: KInt, NotNull: true},
		Column{Name: "payload", Type: KString, NotNull: true},
		Column{Name: "n", Type: KFloat, NotNull: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateIndex("pk", BTreeIndex, true, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateIndex("by_payload", HashIndex, false, "payload"); err != nil {
		t.Fatal(err)
	}
	return db
}

// applyMvccTx runs one log transaction through a real Tx, addressing
// rows by key via the transaction's own index state (read-your-writes).
func applyMvccTx(db *Database, mtx mvccTx) error {
	tx := db.Begin()
	tab := tx.MustTable("acct")
	for _, op := range mtx.ops {
		ids, err := tab.LookupEqual("pk", Int(op.key))
		if err != nil {
			tx.Abort()
			return err
		}
		switch {
		case op.del:
			if len(ids) > 0 {
				tab.Delete(ids[0])
			}
		case len(ids) > 0:
			if err := tab.Update(ids[0], Row{Int(op.key), Str(op.payload), Float(op.n)}); err != nil {
				tx.Abort()
				return err
			}
		default:
			if _, err := tab.Insert(Row{Int(op.key), Str(op.payload), Float(op.n)}); err != nil {
				tx.Abort()
				return err
			}
		}
	}
	if mtx.abort {
		tx.Abort()
		return nil
	}
	tx.Commit()
	return nil
}

// TestSnapshotIsolationOracle replays the op log sequentially, pinning
// a snapshot after every transaction and keeping all of them alive. At
// the end, every retained snapshot must still fingerprint to exactly
// the reference state of the commit that produced its epoch — the
// torn-read / future-write check, and the proof that structural sharing
// never mutated a published version in place.
func TestSnapshotIsolationOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := newMvccDB(t)
	log := genMvccLog(rng, 300, 40)

	model := make(mvccModel)
	base := db.Generation()
	type pinned struct {
		snap *Snapshot
		want string
	}
	var pins []pinned
	pins = append(pins, pinned{snap: db.Snapshot(), want: model.fingerprint()})

	committed := uint64(0)
	for i, mtx := range log {
		if err := applyMvccTx(db, mtx); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
		model.apply(mtx)
		if !mtx.abort {
			committed++
		}
		snap := db.Snapshot()
		if got, want := snap.Epoch(), base+committed; got != want {
			t.Fatalf("tx %d: epoch %d, want %d (committed txs advance the epoch by exactly one; aborts not at all)", i, got, want)
		}
		pins = append(pins, pinned{snap: snap, want: model.fingerprint()})

		// Spot-check the unique index agrees with the scan inside the
		// same snapshot.
		if i%37 == 0 {
			tab := snap.MustTable("acct")
			for k, ref := range model {
				ids, err := tab.LookupEqual("pk", Int(k))
				if err != nil {
					t.Fatal(err)
				}
				if len(ids) != 1 {
					t.Fatalf("tx %d: key %d: pk lookup returned %d rows, want 1", i, k, len(ids))
				}
				if r := tab.Get(ids[0]); r[1].S != ref.payload {
					t.Fatalf("tx %d: key %d: payload %q, want %q", i, k, r[1].S, ref.payload)
				}
			}
		}
	}

	// Every retained snapshot must still match the state it pinned.
	for i, p := range pins {
		if got := tableFingerprint(p.snap.MustTable("acct")); got != p.want {
			t.Fatalf("pinned snapshot %d (epoch %d) drifted:\n got  %s\n want %s", i, p.snap.Epoch(), got, p.want)
		}
	}
}

// TestSnapshotIsolationConcurrent is the concurrent half of the oracle:
// the same deterministic op log runs from a writer goroutine while
// readers continuously pin snapshots and verify each against the
// reference state for its epoch, reading each snapshot twice with reads
// interleaving arbitrarily with commits. Run under -race (make mvcc).
func TestSnapshotIsolationConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := newMvccDB(t)
	log := genMvccLog(rng, 400, 32)

	// Dry-run the interpreter to build the epoch → expected-state table.
	model := make(mvccModel)
	expected := []string{model.fingerprint()}
	for _, mtx := range log {
		model.apply(mtx)
		if !mtx.abort {
			expected = append(expected, model.fingerprint())
		}
	}
	base := db.Generation()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i, mtx := range log {
			if err := applyMvccTx(db, mtx); err != nil {
				t.Errorf("writer: tx %d: %v", i, err)
				return
			}
		}
	}()

	const readers = 4
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			var lastEpoch uint64
			running := true
			for running {
				select {
				case <-done:
					// One final verification pass after the writer stops.
					running = false
				default:
				}
				snap := db.Snapshot()
				e := snap.Epoch()
				if e < lastEpoch {
					t.Errorf("reader %d: epoch went backwards: %d after %d", r, e, lastEpoch)
					return
				}
				lastEpoch = e
				idx := int(e - base)
				if idx < 0 || idx >= len(expected) {
					t.Errorf("reader %d: epoch %d outside the committed range [%d, %d]", r, e, base, base+uint64(len(expected))-1)
					return
				}
				tab := snap.MustTable("acct")
				first := tableFingerprint(tab)
				if first != expected[idx] {
					t.Errorf("reader %d: epoch %d state mismatch:\n got  %s\n want %s", r, e, first, expected[idx])
					return
				}
				// Re-read the same pinned snapshot: with the writer racing,
				// any in-place mutation of a published version shows up as
				// the two reads disagreeing.
				if again := tableFingerprint(tab); again != first {
					t.Errorf("reader %d: pinned snapshot (epoch %d) changed between reads", r, e)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	rg.Wait()
}

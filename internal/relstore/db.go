package relstore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/gridmeta/hybridcat/internal/obs"
)

// Database is a named collection of tables. Temp tables share the
// namespace but are tracked so DropTemp can clear them between queries,
// mirroring the paper's use of temporary tables for shredded query
// criteria (§4).
//
// Concurrency: the database is multi-version. One immutable version is
// published behind an atomic pointer; readers pin it (directly via
// Snapshot, or implicitly per call on plain table handles) and never
// take a lock, while writers — serialized by a single writer mutex —
// build the next version copy-on-write and publish it with one pointer
// swap (see version.go). Mutating methods on Database and on db-bound
// Table handles auto-commit one transaction per call; multi-op atomic
// batches go through Begin/Commit. Temp tables are scratch space within
// that story: they belong to the goroutine that created them between
// creation and DropTable/DropTemp, because DropTemp clears all of them
// at once.
type Database struct {
	// current is the published version. Load to read, store only while
	// holding wmu.
	current atomic.Pointer[dbVersion]

	// head is the group-commit staging head: the newest precommitted
	// version, which the next Begin bases on even though readers cannot
	// see it yet. Stored under wmu (by Precommit and ResetHead); nil or
	// behind current when no staged chain is pending.
	head atomic.Pointer[dbVersion]

	// wmu serializes writers: held from Begin to Commit/Abort.
	wmu sync.Mutex

	// journal, when set, receives every successful row mutation on the
	// database's permanent tables (temp tables are scratch space and are
	// not reported), in apply order under the writer mutex. The
	// write-ahead capture in the catalog uses it to turn a multi-table
	// transaction into one replayable log record. The hook must not call
	// back into the database's write path.
	journal atomic.Pointer[func(TableOp)]

	// metrics, when non-nil, supplies per-table row read/write/lookup
	// counters for permanent tables.
	metrics atomic.Pointer[obs.Registry]
}

// SetMetrics attaches per-table instrumentation from reg to every
// existing and future permanent table of the database, under the
// relstore_row_reads_total / relstore_row_writes_total /
// relstore_index_lookups_total families labeled {table="..."}. Temp
// tables are scratch space and are not instrumented. Passing nil is a
// no-op (the disabled default).
func (db *Database) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	db.metrics.Store(reg)
	v := db.current.Load()
	for name, tv := range v.tables {
		if !v.temp[name] {
			tv.state.setMetrics(reg)
		}
	}
}

// OpKind tags one journaled row mutation.
type OpKind uint8

// Journaled mutation kinds.
const (
	OpInsert OpKind = iota
	OpDelete
	OpUpdate
)

// TableOp describes one applied row mutation, as reported to the
// database journal. Row is the inserted row (insert) or the new row
// (update); Prev is the removed row (delete) or the old row (update).
// RowID identifies the row within this process; it is not stable
// across restarts, so replay locates rows by content instead.
type TableOp struct {
	Table string
	Kind  OpKind
	RowID int64
	Row   Row
	Prev  Row
}

// SetJournal installs (or, with nil, removes) the database's mutation
// journal hook.
func (db *Database) SetJournal(fn func(TableOp)) {
	if fn == nil {
		db.journal.Store(nil)
		return
	}
	db.journal.Store(&fn)
}

// NewDatabase returns an empty database at epoch zero.
func NewDatabase() *Database {
	db := &Database{}
	db.current.Store(&dbVersion{
		tables: make(map[string]*tableVersion),
		temp:   make(map[string]bool),
	})
	return db
}

// CreateTable creates a table from column definitions.
func (db *Database) CreateTable(name string, cols ...Column) (*Table, error) {
	return db.createTable(name, false, cols...)
}

// CreateTempTable creates a table that DropTemp will remove.
func (db *Database) CreateTempTable(name string, cols ...Column) (*Table, error) {
	return db.createTable(name, true, cols...)
}

func (db *Database) createTable(name string, temp bool, cols ...Column) (*Table, error) {
	s, err := NewSchema(name, cols...)
	if err != nil {
		return nil, err
	}
	tx := db.Begin()
	t, err := tx.createTable(s, temp)
	if err != nil {
		tx.Abort()
		return nil, err
	}
	tx.Commit()
	// Rebind the handle from the finished transaction to the live
	// database, so further use reads published versions.
	t.tx = nil
	return t, nil
}

// Table returns a handle for the named table, or nil. The handle reads
// whatever version is current at each call; pin a Snapshot for a
// consistent multi-read view.
func (db *Database) Table(name string) *Table {
	tv := db.current.Load().tables[name]
	if tv == nil {
		return nil
	}
	return &Table{Schema: tv.state.schema, name: name, state: tv.state, db: db}
}

// MustTable returns the named table or panics; for internal schemas whose
// creation is guaranteed at startup.
func (db *Database) MustTable(name string) *Table {
	t := db.Table(name)
	if t == nil {
		panic(fmt.Sprintf("relstore: missing table %q", name))
	}
	return t
}

// DropTable removes a table.
func (db *Database) DropTable(name string) error {
	tx := db.Begin()
	if err := tx.dropTable(name); err != nil {
		tx.Abort()
		return err
	}
	tx.Commit()
	return nil
}

// DropTemp removes every temp table — from all goroutines, not just the
// caller's; see the Database comment before using temp tables from
// concurrent queries.
func (db *Database) DropTemp() {
	tx := db.Begin()
	tx.dropTemp()
	tx.Commit()
}

// Generation returns the database's mutation generation: the epoch of
// the published version, which advances by one on every committed
// transaction (including auto-committed single mutations). Two equal
// readings guarantee the same immutable version, hence identical table
// contents.
func (db *Database) Generation() uint64 { return db.current.Load().epoch }

// TableNames returns the sorted table names of the current version.
func (db *Database) TableNames() []string {
	return db.Snapshot().TableNames()
}

// StorageBytes estimates the resident bytes of all live rows across all
// tables of the current version: value payloads plus per-row slice
// overhead. Used by the storage experiment (E5).
func (db *Database) StorageBytes() int64 {
	var total int64
	for _, tv := range db.current.Load().tables {
		tv.scan(func(_ int64, r Row) bool {
			total += rowBytes(r)
			return true
		})
	}
	return total
}

func rowBytes(r Row) int64 {
	// 16 bytes of slice header + per-value struct size approximation.
	b := int64(16)
	for _, v := range r {
		b += 40 // Value struct
		b += int64(len(v.S)) + int64(len(v.B))
	}
	return b
}

package relstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/gridmeta/hybridcat/internal/obs"
)

// Database is a named collection of tables. Temp tables share the
// namespace but are tracked so DropTemp can clear them between queries,
// mirroring the paper's use of temporary tables for shredded query
// criteria (§4).
//
// Concurrency: the table map is guarded by an RWMutex, so lookups,
// creation, and drops may race freely; each Table additionally guards
// its own rows and indexes. Temp tables are the one exception to the
// many-readers story — they share the global namespace and DropTemp
// clears all of them at once, so they belong to a single goroutine
// between creation and cleanup. Concurrent queries that need scratch
// space must use distinct names and DropTable, or (as the catalog's
// pipeline does) materialize into per-query slices instead.
type Database struct {
	mu     sync.RWMutex
	tables map[string]*Table
	temp   map[string]bool

	// gen counts mutations: every successful Insert/Update/Delete on any
	// table of the database bumps it. Read caches stamp entries with the
	// generation they were computed under and compare on lookup, so
	// invalidating all derived state after a write is one atomic add (the
	// catalog's generation-stamped cache scheme).
	gen atomic.Uint64

	// journal, when set, receives every successful row mutation on the
	// database's permanent tables (temp tables are scratch space and are
	// not reported). The write-ahead capture in the catalog uses it to
	// turn a multi-table operation into one replayable log record. The
	// hook runs under the mutated table's lock and must not call back
	// into the table.
	journal atomic.Pointer[func(TableOp)]

	// metrics, when non-nil, supplies per-table row read/write/lookup
	// counters for permanent tables. Guarded by mu.
	metrics *obs.Registry
}

// SetMetrics attaches per-table instrumentation from reg to every
// existing and future permanent table of the database, under the
// relstore_row_reads_total / relstore_row_writes_total /
// relstore_index_lookups_total families labeled {table="..."}. Temp
// tables are scratch space and are not instrumented. Passing nil is a
// no-op (the disabled default).
func (db *Database) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	db.mu.Lock()
	db.metrics = reg
	tables := make([]*Table, 0, len(db.tables))
	for name, t := range db.tables {
		if !db.temp[name] {
			tables = append(tables, t)
		}
	}
	db.mu.Unlock()
	for _, t := range tables {
		t.setMetrics(reg)
	}
}

// OpKind tags one journaled row mutation.
type OpKind uint8

// Journaled mutation kinds.
const (
	OpInsert OpKind = iota
	OpDelete
	OpUpdate
)

// TableOp describes one applied row mutation, as reported to the
// database journal. Row is the inserted row (insert) or the new row
// (update); Prev is the removed row (delete) or the old row (update).
// RowID identifies the row for same-process rollback; it is not stable
// across restarts, so replay locates rows by content instead.
type TableOp struct {
	Table string
	Kind  OpKind
	RowID int64
	Row   Row
	Prev  Row
}

// SetJournal installs (or, with nil, removes) the database's mutation
// journal hook.
func (db *Database) SetJournal(fn func(TableOp)) {
	if fn == nil {
		db.journal.Store(nil)
		return
	}
	db.journal.Store(&fn)
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table), temp: make(map[string]bool)}
}

// CreateTable creates a table from column definitions.
func (db *Database) CreateTable(name string, cols ...Column) (*Table, error) {
	return db.createTable(name, false, cols...)
}

// CreateTempTable creates a table that DropTemp will remove.
func (db *Database) CreateTempTable(name string, cols ...Column) (*Table, error) {
	return db.createTable(name, true, cols...)
}

func (db *Database) createTable(name string, temp bool, cols ...Column) (*Table, error) {
	s, err := NewSchema(name, cols...)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("relstore: table %q already exists", name)
	}
	t := NewTable(s)
	t.gen = &db.gen
	if !temp {
		t.journal = &db.journal
		if db.metrics != nil {
			t.setMetrics(db.metrics)
		}
	}
	db.tables[name] = t
	if temp {
		db.temp[name] = true
	}
	return t, nil
}

// Table returns the named table, or nil.
func (db *Database) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// MustTable returns the named table or panics; for internal schemas whose
// creation is guaranteed at startup.
func (db *Database) MustTable(name string) *Table {
	t := db.Table(name)
	if t == nil {
		panic(fmt.Sprintf("relstore: missing table %q", name))
	}
	return t
}

// DropTable removes a table.
func (db *Database) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("relstore: no table %q", name)
	}
	delete(db.tables, name)
	delete(db.temp, name)
	return nil
}

// DropTemp removes every temp table — from all goroutines, not just the
// caller's; see the Database comment before using temp tables from
// concurrent queries.
func (db *Database) DropTemp() {
	db.mu.Lock()
	defer db.mu.Unlock()
	for name := range db.temp {
		delete(db.tables, name)
		delete(db.temp, name)
	}
}

// Generation returns the database's mutation generation: a counter that
// advances on every successful row mutation in any table. Two equal
// readings with no writer in between guarantee identical table contents.
func (db *Database) Generation() uint64 { return db.gen.Load() }

// TableNames returns the sorted table names.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// StorageBytes estimates the resident bytes of all live rows across all
// tables: value payloads plus per-row slice overhead. Used by the storage
// experiment (E5).
func (db *Database) StorageBytes() int64 {
	db.mu.RLock()
	names := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t)
	}
	db.mu.RUnlock()
	var total int64
	for _, t := range names {
		t.Scan(func(_ int64, r Row) bool {
			total += rowBytes(r)
			return true
		})
	}
	return total
}

func rowBytes(r Row) int64 {
	// 16 bytes of slice header + per-value struct size approximation.
	b := int64(16)
	for _, v := range r {
		b += 40 // Value struct
		b += int64(len(v.S)) + int64(len(v.B))
	}
	return b
}

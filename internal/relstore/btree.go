package relstore

import "bytes"

// btree is a B+ tree mapping order-preserving encoded keys to row IDs.
// Keys are unique: non-unique indexes append the row ID to the encoded
// column key. Leaves are chained for range scans. Deletion rebalances by
// borrowing from or merging with siblings, keeping every non-root node at
// least half full.
type btree struct {
	root *bnode
	size int
}

// maxKeys is the fan-out bound: nodes split when they exceed maxKeys
// keys; minKeys is the occupancy floor deletion maintains for non-root
// nodes.
const (
	maxKeys = 64
	minKeys = maxKeys / 2
)

type bnode struct {
	leaf     bool
	keys     [][]byte
	vals     []int64  // leaf only, parallel to keys
	children []*bnode // internal only, len(children) == len(keys)+1
	next     *bnode   // leaf chain
}

func newBtree() *btree {
	return &btree{root: &bnode{leaf: true}}
}

// Len returns the number of entries.
func (t *btree) Len() int { return t.size }

// search returns the index of the first key in n >= key.
func searchKeys(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under key.
func (t *btree) Get(key []byte) (int64, bool) {
	n := t.root
	for !n.leaf {
		i := searchKeys(n.keys, key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			i++ // separator equal to key: key lives in the right subtree
		}
		n = n.children[i]
	}
	i := searchKeys(n.keys, key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return n.vals[i], true
	}
	return 0, false
}

// Insert stores val under key, replacing any existing entry.
func (t *btree) Insert(key []byte, val int64) {
	promoted, right, replaced := t.insert(t.root, key, val)
	if !replaced {
		t.size++
	}
	if right != nil {
		t.root = &bnode{
			keys:     [][]byte{promoted},
			children: []*bnode{t.root, right},
		}
	}
}

// insert adds key to the subtree at n. When n splits it returns the
// promoted separator and the new right sibling.
func (t *btree) insert(n *bnode, key []byte, val int64) (promoted []byte, right *bnode, replaced bool) {
	if n.leaf {
		i := searchKeys(n.keys, key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			n.vals[i] = val
			return nil, nil, true
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
	} else {
		i := searchKeys(n.keys, key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			i++
		}
		p, r, rep := t.insert(n.children[i], key, val)
		replaced = rep
		if r != nil {
			n.keys = append(n.keys, nil)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = p
			n.children = append(n.children, nil)
			copy(n.children[i+2:], n.children[i+1:])
			n.children[i+1] = r
		}
	}
	if len(n.keys) <= maxKeys {
		return nil, nil, replaced
	}
	return t.split(n, replaced)
}

func (t *btree) split(n *bnode, replaced bool) ([]byte, *bnode, bool) {
	mid := len(n.keys) / 2
	if n.leaf {
		r := &bnode{leaf: true, next: n.next}
		r.keys = append(r.keys, n.keys[mid:]...)
		r.vals = append(r.vals, n.vals[mid:]...)
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		n.next = r
		// For leaves the separator is the first key of the right node and
		// stays in the leaf (B+ tree style).
		return r.keys[0], r, replaced
	}
	r := &bnode{}
	r.keys = append(r.keys, n.keys[mid+1:]...)
	r.children = append(r.children, n.children[mid+1:]...)
	promoted := n.keys[mid]
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return promoted, r, replaced
}

// Delete removes key, reporting whether it was present. Underfull nodes
// rebalance on the way back up; a root left with a single child is
// collapsed.
func (t *btree) Delete(key []byte) bool {
	deleted := t.del(t.root, key)
	if !t.root.leaf && len(t.root.keys) == 0 {
		t.root = t.root.children[0]
	}
	if deleted {
		t.size--
	}
	return deleted
}

func (t *btree) del(n *bnode, key []byte) bool {
	if n.leaf {
		i := searchKeys(n.keys, key)
		if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	i := searchKeys(n.keys, key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		i++
	}
	deleted := t.del(n.children[i], key)
	if len(n.children[i].keys) < minKeys {
		t.rebalance(n, i)
	}
	return deleted
}

// rebalance restores the occupancy floor of parent.children[i] by
// borrowing from a sibling with spare keys, or merging with one.
func (t *btree) rebalance(parent *bnode, i int) {
	c := parent.children[i]
	if i > 0 && len(parent.children[i-1].keys) > minKeys {
		left := parent.children[i-1]
		if c.leaf {
			last := len(left.keys) - 1
			c.keys = append([][]byte{left.keys[last]}, c.keys...)
			c.vals = append([]int64{left.vals[last]}, c.vals...)
			left.keys = left.keys[:last]
			left.vals = left.vals[:last]
			parent.keys[i-1] = c.keys[0]
		} else {
			last := len(left.keys) - 1
			c.keys = append([][]byte{parent.keys[i-1]}, c.keys...)
			c.children = append([]*bnode{left.children[last+1]}, c.children...)
			parent.keys[i-1] = left.keys[last]
			left.keys = left.keys[:last]
			left.children = left.children[:last+1]
		}
		return
	}
	if i < len(parent.children)-1 && len(parent.children[i+1].keys) > minKeys {
		right := parent.children[i+1]
		if c.leaf {
			c.keys = append(c.keys, right.keys[0])
			c.vals = append(c.vals, right.vals[0])
			right.keys = right.keys[1:]
			right.vals = right.vals[1:]
			parent.keys[i] = right.keys[0]
		} else {
			c.keys = append(c.keys, parent.keys[i])
			c.children = append(c.children, right.children[0])
			parent.keys[i] = right.keys[0]
			right.keys = right.keys[1:]
			right.children = right.children[1:]
		}
		return
	}
	// No sibling can spare a key: merge with one.
	if i > 0 {
		t.merge(parent, i-1)
	} else {
		t.merge(parent, i)
	}
}

// merge folds parent.children[i+1] into parent.children[i].
func (t *btree) merge(parent *bnode, i int) {
	l, r := parent.children[i], parent.children[i+1]
	if l.leaf {
		l.keys = append(l.keys, r.keys...)
		l.vals = append(l.vals, r.vals...)
		l.next = r.next
	} else {
		l.keys = append(l.keys, parent.keys[i])
		l.keys = append(l.keys, r.keys...)
		l.children = append(l.children, r.children...)
	}
	parent.keys = append(parent.keys[:i], parent.keys[i+1:]...)
	parent.children = append(parent.children[:i+1], parent.children[i+2:]...)
}

// Ascend visits entries with lo <= key < hi in key order. A nil lo starts
// at the smallest key; a nil hi runs to the end. fn returning false stops
// the scan.
func (t *btree) Ascend(lo, hi []byte, fn func(key []byte, val int64) bool) {
	n := t.root
	for !n.leaf {
		i := 0
		if lo != nil {
			i = searchKeys(n.keys, lo)
			if i < len(n.keys) && bytes.Equal(n.keys[i], lo) {
				i++
			}
		}
		n = n.children[i]
	}
	i := 0
	if lo != nil {
		i = searchKeys(n.keys, lo)
	}
	for n != nil {
		for ; i < len(n.keys); i++ {
			if hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// AscendPrefix visits all entries whose key begins with prefix.
func (t *btree) AscendPrefix(prefix []byte, fn func(key []byte, val int64) bool) {
	if len(prefix) == 0 {
		t.Ascend(nil, nil, fn)
		return
	}
	t.Ascend(prefix, prefixEnd(prefix), fn)
}

// prefixEnd returns the smallest key greater than every key with the given
// prefix, or nil when the prefix is all 0xFF.
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// checkInvariants validates ordering, uniform leaf depth, and the
// occupancy floor of non-root nodes; used by tests.
func (t *btree) checkInvariants() error {
	var prev []byte
	first := true
	depth := -1
	var walk func(n *bnode, d int) error
	var errf error
	walk = func(n *bnode, d int) error {
		if d > 0 && len(n.keys) < minKeys {
			return errInvariant("non-root node below minimum occupancy")
		}
		if n.leaf {
			if depth == -1 {
				depth = d
			} else if depth != d {
				return errInvariant("leaf depth not uniform")
			}
			for _, k := range n.keys {
				if !first && bytes.Compare(prev, k) >= 0 {
					return errInvariant("keys out of order")
				}
				prev, first = k, false
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return errInvariant("child count mismatch")
		}
		for i, c := range n.children {
			if err := walk(c, d+1); err != nil {
				return err
			}
			if i < len(n.keys) {
				// keys in left subtree < separator <= keys in right subtree
				if !first && bytes.Compare(prev, n.keys[i]) > 0 {
					return errInvariant("separator below left subtree max")
				}
			}
		}
		return nil
	}
	errf = walk(t.root, 0)
	return errf
}

type errInvariant string

func (e errInvariant) Error() string { return "btree: " + string(e) }
